// Committed fault scenarios (DESIGN.md §5, EXPERIMENTS.md "Fault
// scenarios"): each scenario is a one-line fault plan, replayed against a
// fixed 32-node NewsWire deployment while a publisher streams articles.
// After the plan's recovery tail and a repair/gossip settle phase, the full
// invariant suite from src/testing/invariants.h must hold.
//
// Topology of the 32-node system (branching 4, most-significant digit
// first): node 0 is the publisher, nodes 1..31 are subscribers; nodes
// 0..15 form top-level zone one, 16..31 zone two, and each aligned block
// of 4 (0..3, 4..7, ...) is a second-level zone.
//
// A failing random run from FaultPlan::Random can be committed here
// verbatim: paste its ToString() as a new table row.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "newswire/system.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

struct Scenario {
  const char* name;
  // What §5 failure mode the scenario exercises / which invariant guards it.
  const char* guards;
  const char* plan;
  bool scoped_publish;  // alternate root-scoped and zone-scoped items
};

// Times are seconds relative to the start of the 30 s publishing phase.
const Scenario kScenarios[] = {
    {"CrashDuringPublish",
     "completeness: crashed nodes recover all items published while down",
     "crash@5 node=3; crash@6 node=17; restart@40 node=3; restart@42 node=17",
     false},
    {"RepresentativeCrash",
     "robustness: killing the likely zone representatives reroutes delivery",
     "crash@3 node=1; crash@3.5 node=2; restart@35 node=1; restart@36 node=2",
     false},
    {"ZonePartition",
     "§10 reliability: a whole top-level zone partitions away and re-merges",
     "partition@10 groups=16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31; "
     "heal@35",
     false},
    {"DoublePartition",
     "membership: two second-level zones split into separate islands",
     "partition@8 groups=4,5,6,7|8,9,10,11; heal@30", false},
    {"LossBurstDuringRepair",
     "repair under loss: anti-entropy itself runs over a lossy network",
     "crash@5 node=9; restart@15 node=9; loss@14..30 p=0.3", false},
    {"LossWithCrash",
     "compound faults: ambient loss while a node crashes and rejoins",
     "loss@5..20 p=0.25; crash@10 node=13; restart@25 node=13", false},
    {"RestartStorm",
     "churn: overlapping crash/restart waves never exceed f=2 dead nodes",
     "crash@2 node=1; crash@4 node=2; restart@10 node=1; crash@12 node=11; "
     "restart@14 node=2; restart@20 node=11; crash@22 node=21; "
     "restart@30 node=21",
     false},
    {"FlappingNode",
     "incarnation handling: a flapping node repeatedly loses and rebuilds "
     "its cache without duplicate deliveries",
     "crash@5 node=7; restart@8 node=7; crash@11 node=7; restart@14 node=7; "
     "crash@17 node=7; restart@20 node=7",
     false},
    {"PublisherSlowUplink",
     "flow: a congested publisher uplink delays but never loses items",
     "slow@5..25 node=0 rate=200000", false},
    {"ScopedPublishDuringPartition",
     "no-scope-leak: zone-scoped items stay inside their zone even while "
     "the other zone partitions and heals",
     "partition@10 groups=16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31; "
     "heal@35",
     true},
};

class ScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ScenarioTest, InvariantsHoldAfterRecovery) {
  const Scenario& scenario = GetParam();

  // The committed string must itself be a valid, stable plan.
  auto plan = sim::FaultPlan::Parse(scenario.plan);
  ASSERT_TRUE(plan.has_value()) << scenario.plan;
  auto reparsed = sim::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan) << "text form is unstable";

  SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = 20260805;
  NewswireSystem sys(cfg);
  ASSERT_NE(plan->MaxNode(), sim::kInvalidNode);
  ASSERT_LT(plan->MaxNode(), sys.node_count()) << "plan targets ghost nodes";

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);  // subscriptions aggregate before the stream starts

  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);

  // Zone-scoped items target the publisher's own top-level zone.
  const astrolabe::ZonePath zone = sys.publisher_agent(0).path().Prefix(1);
  std::vector<testing::PublishedItem> published;
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&, k] {
      const bool scoped = scenario.scoped_publish && k % 2 == 1;
      const std::string id =
          sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3],
                             scoped ? zone : astrolabe::ZonePath::Root());
      if (!id.empty()) {
        published.push_back({id, sys.catalog()[std::size_t(k) % 3],
                             scoped ? zone.ToString() : "/"});
      }
    });
  }

  // Stream, recovery tail, then repair/gossip quiescence.
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);
  ASSERT_GE(published.size(), 30u);

  const auto membership = testing::CheckMembershipAgreement(sys);
  EXPECT_TRUE(membership.ok()) << membership.Summary();

  auto completeness =
      testing::CheckSubscriberCompleteness(sys, published, 0.999);
  EXPECT_TRUE(completeness.ok()) << completeness.Summary();
  EXPECT_GE(completeness.completeness, 0.999);

  const auto duplicates = testing::CheckNoDuplicateDelivery(sys, recorder);
  EXPECT_TRUE(duplicates.ok()) << duplicates.Summary();

  const auto scope = testing::CheckNoScopeLeak(sys, recorder);
  EXPECT_TRUE(scope.ok()) << scope.Summary();

  const auto soundness = testing::CheckSubscriptionSoundness(sys, recorder);
  EXPECT_TRUE(soundness.ok()) << soundness.Summary();

  EXPECT_GT(recorder.trace().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Committed, ScenarioTest,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---- reliable-forwarding scenarios -------------------------------------
//
// These scenarios run with the subscriber repair layer OFF and redundancy
// 1: the only recovery machinery is the hop-by-hop ack/retransmit/failover
// discipline. The faulted run must converge to exactly the same set of
// (subscriber, item) deliveries as a fault-free run of the same
// configuration — reliability alone closes the gap the fault opened.
//
// Fault windows are kept under the membership fail-timeout (6 gossip
// rounds at 1 s): once a victim's row expires from the zone tables,
// nothing is forwarded toward it at all, and without repair no mechanism
// would owe it the items published while it was absent.

struct ReliableScenario {
  const char* name;
  const char* guards;
  const char* plan;  // nullptr = fault-free baseline
};

const ReliableScenario kReliableScenarios[] = {
    {"RepCrashMidDissemination",
     "failover: a likely representative of the publisher's own zone dies "
     "mid-stream; relays retransmit, fail over to a sibling, and settle "
     "the victim's backlog after its restart",
     "crash@5 node=1; restart@9 node=1"},
    {"ChildZonePartition",
     "retransmission through a partition: one second-level zone is cut "
     "off; pending hops back off through the outage and deliver on heal",
     "partition@8 groups=4,5,6,7; heal@12"},
};

std::vector<testing::DeliveryRecord> RunReliableScenario(
    const char* plan_text) {
  SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 1;     // no redundant paths to lean on
  cfg.subscriber.repair_interval = 0;  // anti-entropy repair disabled
  cfg.gossip_period = 1.0;
  cfg.seed = 20260806;
  NewswireSystem sys(cfg);

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);
  const double base = sys.Now();

  double plan_end = 0;
  if (plan_text != nullptr) {
    auto plan = sim::FaultPlan::Parse(plan_text);
    EXPECT_TRUE(plan.has_value()) << plan_text;
    if (!plan) return {};
    plan->ApplyTo(sys.deployment().net(), base);
    plan_end = plan->EndTime();
  }

  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  // Stream, outage tail, and enough settle time for capped-backoff
  // retransmissions to land after the heal/restart.
  sys.RunFor(std::max(20.0, plan_end) + 60);

  const auto duplicates = testing::CheckNoDuplicateDelivery(sys, recorder);
  EXPECT_TRUE(duplicates.ok()) << duplicates.Summary();
  const auto soundness = testing::CheckSubscriptionSoundness(sys, recorder);
  EXPECT_TRUE(soundness.ok()) << soundness.Summary();
  const auto membership = testing::CheckMembershipAgreement(sys);
  EXPECT_TRUE(membership.ok()) << membership.Summary();
  EXPECT_EQ(sys.MulticastTotals().abandoned, 0u)
      << "no hop may be given up inside these short fault windows";
  return recorder.trace();
}

class ReliableScenarioTest
    : public ::testing::TestWithParam<ReliableScenario> {};

TEST_P(ReliableScenarioTest, DeliverySetMatchesFaultFreeRunWithoutRepair) {
  const ReliableScenario& scenario = GetParam();

  auto plan = sim::FaultPlan::Parse(scenario.plan);
  ASSERT_TRUE(plan.has_value()) << scenario.plan;
  auto reparsed = sim::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan) << "text form is unstable";

  const auto faulted = RunReliableScenario(scenario.plan);
  const auto baseline = RunReliableScenario(nullptr);
  ASSERT_FALSE(baseline.empty());

  const auto equal = testing::CheckSameDeliverySets(faulted, baseline);
  EXPECT_TRUE(equal.ok()) << equal.Summary();
}

INSTANTIATE_TEST_SUITE_P(Committed, ReliableScenarioTest,
                         ::testing::ValuesIn(kReliableScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace nw::newswire
