// Committed fault scenarios (DESIGN.md §5, EXPERIMENTS.md "Fault
// scenarios"): each scenario is a one-line fault plan, replayed against a
// fixed 32-node NewsWire deployment while a publisher streams articles.
// After the plan's recovery tail and a repair/gossip settle phase, the full
// invariant suite from src/testing/invariants.h must hold.
//
// The scenario tables and deployment configs live in tests/scenarios.h,
// shared with parallel_equivalence_test.cc which replays the same plans
// under the parallel engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "newswire/system.h"
#include "scenarios.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

using testing::kReliableScenarios;
using testing::kScenarios;
using testing::ReliableScenario;
using testing::Scenario;

class ScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ScenarioTest, InvariantsHoldAfterRecovery) {
  const Scenario& scenario = GetParam();

  // The committed string must itself be a valid, stable plan.
  auto plan = sim::FaultPlan::Parse(scenario.plan);
  ASSERT_TRUE(plan.has_value()) << scenario.plan;
  auto reparsed = sim::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan) << "text form is unstable";

  NewswireSystem sys(testing::CommittedScenarioConfig());
  ASSERT_NE(plan->MaxNode(), sim::kInvalidNode);
  ASSERT_LT(plan->MaxNode(), sys.node_count()) << "plan targets ghost nodes";

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);  // subscriptions aggregate before the stream starts

  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);

  // Zone-scoped items target the publisher's own top-level zone.
  const astrolabe::ZonePath zone = sys.publisher_agent(0).path().Prefix(1);
  std::vector<testing::PublishedItem> published;
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&, k] {
      const bool scoped = scenario.scoped_publish && k % 2 == 1;
      const std::string id =
          sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3],
                             scoped ? zone : astrolabe::ZonePath::Root());
      if (!id.empty()) {
        published.push_back({id, sys.catalog()[std::size_t(k) % 3],
                             scoped ? zone.ToString() : "/"});
      }
    });
  }

  // Stream, recovery tail, then repair/gossip quiescence.
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);
  ASSERT_GE(published.size(), 30u);

  const auto membership = testing::CheckMembershipAgreement(sys);
  EXPECT_TRUE(membership.ok()) << membership.Summary();

  auto completeness =
      testing::CheckSubscriberCompleteness(sys, published, 0.999);
  EXPECT_TRUE(completeness.ok()) << completeness.Summary();
  EXPECT_GE(completeness.completeness, 0.999);

  const auto duplicates = testing::CheckNoDuplicateDelivery(sys, recorder);
  EXPECT_TRUE(duplicates.ok()) << duplicates.Summary();

  const auto scope = testing::CheckNoScopeLeak(sys, recorder);
  EXPECT_TRUE(scope.ok()) << scope.Summary();

  const auto soundness = testing::CheckSubscriptionSoundness(sys, recorder);
  EXPECT_TRUE(soundness.ok()) << soundness.Summary();

  EXPECT_GT(recorder.trace().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Committed, ScenarioTest,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---- reliable-forwarding scenarios -------------------------------------

std::vector<testing::DeliveryRecord> RunReliableScenario(
    const char* plan_text) {
  NewswireSystem sys(testing::ReliableScenarioConfig());

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);
  const double base = sys.Now();

  double plan_end = 0;
  if (plan_text != nullptr) {
    auto plan = sim::FaultPlan::Parse(plan_text);
    EXPECT_TRUE(plan.has_value()) << plan_text;
    if (!plan) return {};
    plan->ApplyTo(sys.deployment().net(), base);
    plan_end = plan->EndTime();
  }

  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  // Stream, outage tail, and enough settle time for capped-backoff
  // retransmissions to land after the heal/restart.
  sys.RunFor(std::max(20.0, plan_end) + 60);

  const auto duplicates = testing::CheckNoDuplicateDelivery(sys, recorder);
  EXPECT_TRUE(duplicates.ok()) << duplicates.Summary();
  const auto soundness = testing::CheckSubscriptionSoundness(sys, recorder);
  EXPECT_TRUE(soundness.ok()) << soundness.Summary();
  const auto membership = testing::CheckMembershipAgreement(sys);
  EXPECT_TRUE(membership.ok()) << membership.Summary();
  EXPECT_EQ(sys.MulticastTotals().abandoned, 0u)
      << "no hop may be given up inside these short fault windows";
  return recorder.trace();
}

class ReliableScenarioTest
    : public ::testing::TestWithParam<ReliableScenario> {};

TEST_P(ReliableScenarioTest, DeliverySetMatchesFaultFreeRunWithoutRepair) {
  const ReliableScenario& scenario = GetParam();

  auto plan = sim::FaultPlan::Parse(scenario.plan);
  ASSERT_TRUE(plan.has_value()) << scenario.plan;
  auto reparsed = sim::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan) << "text form is unstable";

  const auto faulted = RunReliableScenario(scenario.plan);
  const auto baseline = RunReliableScenario(nullptr);
  ASSERT_FALSE(baseline.empty());

  const auto equal = testing::CheckSameDeliverySets(faulted, baseline);
  EXPECT_TRUE(equal.ok()) << equal.Summary();
}

INSTANTIATE_TEST_SUITE_P(Committed, ReliableScenarioTest,
                         ::testing::ValuesIn(kReliableScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace nw::newswire
