// Unit tests for the discrete-event simulator and network model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace nw::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(3.0, [&] { order.push_back(3); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(2.0, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(1.0, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.After(1.0, recurse);
  };
  sim.After(1.0, recurse);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

class Recorder : public Node {
 public:
  void OnMessage(const Message& msg) override {
    received.push_back(msg);
    receive_times.push_back(Now());
  }
  std::vector<Message> received;
  std::vector<Time> receive_times;
  using Node::Schedule;
  using Node::Send;
};

struct Ping {
  int value = 0;
};

class Env {
 public:
  explicit Env(NetworkConfig cfg, std::size_t n, std::uint64_t seed = 7)
      : sim(seed), net(sim, cfg) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Recorder>());
      net.AddNode(nodes.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<Recorder>> nodes;
};

TEST(Network, DeliversWithLatency) {
  NetworkConfig cfg;
  cfg.base_latency = 0.1;
  cfg.jitter_frac = 0.0;
  Env env(cfg, 2);
  env.sim.At(1.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {42}, 10));
  });
  env.sim.RunUntilIdle();
  ASSERT_EQ(env.nodes[1]->received.size(), 1u);
  EXPECT_EQ(env.nodes[1]->received[0].As<Ping>().value, 42);
  EXPECT_NEAR(env.nodes[1]->receive_times[0], 1.1, 1e-6);
}

TEST(Network, UplinkSerializesBackToBackSends) {
  NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter_frac = 0.0;
  cfg.uplink_bytes_per_sec = 1000;  // 1 KB/s
  cfg.per_message_overhead = 0;
  Env env(cfg, 2);
  env.sim.At(0.0, [&] {
    // Two 500-byte messages: second must wait for the first to serialize.
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 500));
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {2}, 500));
  });
  env.sim.RunUntilIdle();
  ASSERT_EQ(env.nodes[1]->receive_times.size(), 2u);
  EXPECT_NEAR(env.nodes[1]->receive_times[0], 0.5, 1e-6);
  EXPECT_NEAR(env.nodes[1]->receive_times[1], 1.0, 1e-6);
}

TEST(Network, LossDropsApproximatelyTheConfiguredFraction) {
  NetworkConfig cfg;
  cfg.loss_prob = 0.3;
  Env env(cfg, 2);
  constexpr int kSends = 2000;
  env.sim.At(0.0, [&] {
    for (int i = 0; i < kSends; ++i) {
      env.net.Send(Message::Make<Ping>(0, 1, "ping", {i}, 8));
    }
  });
  env.sim.RunUntilIdle();
  const double delivered = double(env.nodes[1]->received.size()) / kSends;
  EXPECT_NEAR(delivered, 0.7, 0.05);
}

TEST(Network, DeadNodeReceivesNothing) {
  Env env(NetworkConfig{}, 2);
  env.net.Kill(1);
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 8));
  });
  env.sim.RunUntilIdle();
  EXPECT_TRUE(env.nodes[1]->received.empty());
  EXPECT_EQ(env.net.StatsFor(1).messages_dropped, 1u);
}

TEST(Network, MessageInFlightAtKillTimeIsDropped) {
  NetworkConfig cfg;
  cfg.base_latency = 1.0;
  cfg.jitter_frac = 0.0;
  Env env(cfg, 2);
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 8));
  });
  env.sim.At(0.5, [&] { env.net.Kill(1); });
  env.sim.RunUntilIdle();
  EXPECT_TRUE(env.nodes[1]->received.empty());
}

TEST(Network, RestartDeliversAgainButOldTimersStaySuppressed) {
  Env env(NetworkConfig{}, 2);
  int timer_fired = 0;
  env.sim.At(0.0, [&] {
    env.nodes[1]->Schedule(1.0, [&] { ++timer_fired; });
  });
  env.sim.At(0.5, [&] { env.net.Kill(1); });
  env.sim.At(0.6, [&] { env.net.Restart(1); });
  env.sim.At(2.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {5}, 8));
  });
  env.sim.RunUntilIdle();
  EXPECT_EQ(timer_fired, 0);  // timer belonged to the previous incarnation
  ASSERT_EQ(env.nodes[1]->received.size(), 1u);
}

TEST(Network, MessageInFlightAcrossRestartIsDroppedAsStaleIncarnation) {
  NetworkConfig cfg;
  cfg.base_latency = 1.0;
  cfg.jitter_frac = 0.0;
  Env env(cfg, 2);
  // The message departs toward incarnation 0, but the receiver dies and
  // is reborn (incarnation 2) before it lands: the reborn process must
  // not see a delivery addressed to its previous life.
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 8));
  });
  env.sim.At(0.3, [&] { env.net.Kill(1); });
  env.sim.At(0.5, [&] { env.net.Restart(1); });
  env.sim.RunUntilIdle();
  EXPECT_TRUE(env.net.IsAlive(1));
  EXPECT_EQ(env.net.Incarnation(1), 2u);
  EXPECT_TRUE(env.nodes[1]->received.empty());
  EXPECT_EQ(env.net.StatsFor(1).messages_dropped, 1u);
}

TEST(Network, RebornNodeReceivesNewTrafficExactlyOnce) {
  NetworkConfig cfg;
  cfg.base_latency = 1.0;
  cfg.jitter_frac = 0.0;
  Env env(cfg, 2);
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 8));  // pre-crash
  });
  env.sim.At(0.3, [&] { env.net.Kill(1); });
  env.sim.At(0.5, [&] { env.net.Restart(1); });
  env.sim.At(2.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {2}, 8));  // post-restart
  });
  env.sim.RunUntilIdle();
  // The stale in-flight message was dropped, the fresh one delivered once:
  // no duplicate, no resurrection of the old delivery.
  ASSERT_EQ(env.nodes[1]->received.size(), 1u);
  EXPECT_EQ(env.nodes[1]->received[0].As<Ping>().value, 2);
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  Env env(NetworkConfig{}, 3);
  env.net.SetPartitionGroup(2, 1);
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 8));
    env.net.Send(Message::Make<Ping>(0, 2, "ping", {2}, 8));
  });
  env.sim.RunUntilIdle();
  EXPECT_EQ(env.nodes[1]->received.size(), 1u);
  EXPECT_TRUE(env.nodes[2]->received.empty());
  env.net.HealPartitions();
  env.sim.At(env.sim.Now(), [&] {
    env.net.Send(Message::Make<Ping>(0, 2, "ping", {3}, 8));
  });
  env.sim.RunUntilIdle();
  EXPECT_EQ(env.nodes[2]->received.size(), 1u);
}

TEST(Network, TrafficStatsAccount) {
  NetworkConfig cfg;
  cfg.per_message_overhead = 10;
  Env env(cfg, 2);
  env.sim.At(0.0, [&] {
    env.net.Send(Message::Make<Ping>(0, 1, "ping", {1}, 90));
  });
  env.sim.RunUntilIdle();
  EXPECT_EQ(env.net.StatsFor(0).messages_sent, 1u);
  EXPECT_EQ(env.net.StatsFor(0).bytes_sent, 100u);
  EXPECT_EQ(env.net.StatsFor(1).bytes_received, 100u);
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.loss_prob = 0.5;
    cfg.jitter_frac = 0.5;
    Env env(cfg, 2, seed);
    env.sim.At(0.0, [&] {
      for (int i = 0; i < 100; ++i) {
        env.net.Send(Message::Make<Ping>(0, 1, "ping", {i}, 8));
      }
    });
    env.sim.RunUntilIdle();
    std::vector<int> got;
    for (const auto& m : env.nodes[1]->received) {
      got.push_back(m.As<Ping>().value);
    }
    return got;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // different seed, different loss pattern
}

}  // namespace
}  // namespace nw::sim
