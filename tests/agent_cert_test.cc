// Agent-side certificate handling: expiry, rogue authorities, gossiped
// zone-authority chains, and randomized tamper detection.
#include <gtest/gtest.h>

#include "astrolabe/deployment.h"
#include "util/rng.h"

namespace nw::astrolabe {
namespace {

DeploymentConfig Cfg(std::size_t n = 8) {
  DeploymentConfig cfg;
  cfg.num_agents = n;
  cfg.branching = 8;
  cfg.seed = 4;
  return cfg;
}

TEST(AgentCerts, ExpiredFunctionCertificateRejected) {
  Deployment d(Cfg());
  d.StartAll();
  d.RunFor(100);  // now ~100s
  Certificate expired = d.root_authority().Issue(
      CertKind::kFunction, "old", 0,
      {{"code", "SELECT COUNT(*) AS c"}, {"version", "1"}}, 0, 50);
  EXPECT_FALSE(d.agent(0).InstallFunction(expired));
  Certificate current = d.root_authority().Issue(
      CertKind::kFunction, "new", 0,
      {{"code", "SELECT COUNT(*) AS c"}, {"version", "1"}}, 0, 1e18);
  EXPECT_TRUE(d.agent(0).InstallFunction(current));
}

TEST(AgentCerts, FunctionFromRogueAuthorityRejectedEverywhere) {
  Deployment d(Cfg());
  d.StartAll();
  util::DeterministicRng rng(123);
  Authority rogue("rogue", GenerateKeyPair(rng));
  Certificate bad = rogue.Issue(
      CertKind::kFunction, "evil", 0,
      {{"code", "SELECT MAX(x) AS x"}, {"version", "9"}}, 0, 1e18);
  EXPECT_FALSE(d.agent(3).InstallFunction(bad));
  d.RunFor(60);
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto names = d.agent(i).InstalledFunctionNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(), "evil") == names.end());
  }
}

TEST(AgentCerts, ZoneAuthorityChainEnablesDelegatedFunctions) {
  Deployment d(Cfg());
  // A zone authority whose own certificate chains to the root can issue
  // functions; agents learn the intermediate via gossip.
  util::DeterministicRng rng(55);
  const KeyPair zone_keys = GenerateKeyPair(rng);
  Authority zone_auth("usa", zone_keys);
  Certificate zone_cert = d.root_authority().Issue(
      CertKind::kZoneAuthority, "usa", zone_auth.public_key(), {}, 0, 1e18);
  Certificate fn = zone_auth.Issue(
      CertKind::kFunction, "delegated", 0,
      {{"code", "SELECT MIN(load) AS minload"}, {"version", "1"}}, 0, 1e18);

  // Without the intermediate, the function is refused.
  EXPECT_FALSE(d.agent(0).InstallFunction(fn));
  // With it, accepted; and both spread epidemically to everyone.
  ASSERT_TRUE(d.agent(0).AddZoneAuthority(zone_cert));
  ASSERT_TRUE(d.agent(0).InstallFunction(fn));
  d.StartAll();
  d.RunFor(80);
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto names = d.agent(i).InstalledFunctionNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(), "delegated") !=
                names.end())
        << "agent " << i;
  }
}

TEST(AgentCerts, RogueZoneAuthorityNotAdded) {
  Deployment d(Cfg());
  util::DeterministicRng rng(77);
  Authority rogue("rogue", GenerateKeyPair(rng));
  Certificate self_signed = rogue.Issue(CertKind::kZoneAuthority, "rogue",
                                        rogue.public_key(), {}, 0, 1e18);
  EXPECT_FALSE(d.agent(0).AddZoneAuthority(self_signed));
}

// Regression for the per-round cert re-broadcast fixed with wire format
// v2: gossip used to attach every installed certificate body to every
// message, so a 2-node pair re-shipped the same certs forever. With the
// id-inventory dedup, a cert body crosses a steady-state link exactly once.
TEST(AgentCerts, CertBodyCrossesATwoNodeLinkExactlyOnce) {
  DeploymentConfig cfg;
  cfg.num_agents = 2;
  cfg.branching = 2;
  cfg.seed = 9;
  Deployment d(cfg);
  d.StartAll();
  d.RunFor(30);  // bootstrap: core function cert disseminated both ways

  auto bodies_sent = [&d] {
    return d.agent(0).gossip_stats().certs_sent +
           d.agent(1).gossip_stats().certs_sent;
  };
  const std::uint64_t steady = bodies_sent();
  d.RunFor(60);
  // Steady state: both inventories are mutually known, so sixty more
  // rounds of gossip move zero certificate bodies.
  EXPECT_EQ(bodies_sent(), steady);

  // A certificate installed on one side crosses the link exactly once —
  // the id advertisement suppresses the echo and every re-send.
  Certificate fresh = d.root_authority().Issue(
      CertKind::kFunction, "fresh", 0,
      {{"code", "SELECT COUNT(*) AS fresh_count"}, {"version", "1"}}, 0, 1e18);
  ASSERT_TRUE(d.agent(0).InstallFunction(fresh));
  d.RunFor(60);
  EXPECT_EQ(bodies_sent(), steady + 1);
  const auto names = d.agent(1).InstalledFunctionNames();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "fresh") != names.end());
}

// Randomized tamper detection: flip any field of a valid certificate and
// the signature must break.
class TamperProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TamperProperty, AnyFieldMutationBreaksTheSignature) {
  util::DeterministicRng rng(GetParam());
  Authority root("root", GenerateKeyPair(rng));
  Certificate cert = root.Issue(
      CertKind::kFunction, "fn" + std::to_string(rng.NextBelow(100)),
      rng.NextU64(),
      {{"code", "SELECT SUM(a) AS a"},
       {"version", std::to_string(rng.NextBelow(10))}},
      0, 1000 + double(rng.NextBelow(1000)));
  ASSERT_TRUE(cert.VerifySignature());
  Certificate mutated = cert;
  switch (rng.NextBelow(6)) {
    case 0: mutated.subject += "x"; break;
    case 1: mutated.subject_key ^= 1; break;
    case 2: mutated.claims["code"] += " "; break;
    case 3: mutated.not_before += 1; break;
    case 4: mutated.not_after += 1; break;
    case 5: mutated.claims["extra"] = "field"; break;
  }
  EXPECT_FALSE(mutated.VerifySignature());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

}  // namespace
}  // namespace nw::astrolabe
