// Tests for the Deployment harness: path layout, named regions, warm
// start vs. gossip equivalence, and function installation.
#include <gtest/gtest.h>

#include "astrolabe/deployment.h"

namespace nw::astrolabe {
namespace {

TEST(Deployment, UniformLayoutAssignsDistinctLeafPaths) {
  DeploymentConfig cfg;
  cfg.num_agents = 27;
  cfg.branching = 3;
  Deployment dep(cfg);
  EXPECT_EQ(dep.Depth(), 3u);
  std::set<std::string> paths;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    EXPECT_EQ(dep.PathFor(i).Depth(), 3u);
    paths.insert(dep.PathFor(i).ToString());
  }
  EXPECT_EQ(paths.size(), 27u);
}

TEST(Deployment, BranchingBoundsZoneFanout) {
  DeploymentConfig cfg;
  cfg.num_agents = 100;
  cfg.branching = 5;
  Deployment dep(cfg);
  dep.WarmStart();
  // No table may exceed the branching factor (paper §3: tables "limited
  // to some small size").
  for (std::size_t i = 0; i < dep.size(); ++i) {
    for (std::size_t level = 0; level < dep.Depth(); ++level) {
      EXPECT_LE(dep.agent(i).TableAt(level).size(), 5u)
          << "agent " << i << " level " << level;
    }
  }
}

TEST(Deployment, RegionNamesApplyToTopLevel) {
  DeploymentConfig cfg;
  cfg.num_agents = 16;
  cfg.branching = 4;
  cfg.top_level_names = {"asia", "europe", "americas", "africa"};
  Deployment dep(cfg);
  std::set<std::string> tops;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    tops.insert(dep.PathFor(i).Component(0));
  }
  EXPECT_EQ(tops, (std::set<std::string>{"asia", "europe", "americas",
                                         "africa"}));
}

TEST(Deployment, WarmStartMatchesGossipedConvergence) {
  // The same configuration converged by real gossip and installed by
  // WarmStart must agree on the root summary.
  DeploymentConfig cfg;
  cfg.num_agents = 16;
  cfg.branching = 4;
  cfg.seed = 5;

  Deployment gossiped(cfg);
  gossiped.StartAll();
  gossiped.RunFor(80);

  Deployment warmed(cfg);
  warmed.WarmStart();

  for (std::size_t i = 0; i < 16; ++i) {
    Row a = gossiped.agent(i).ZoneSummary(0);
    Row b = warmed.agent(i).ZoneSummary(0);
    ASSERT_TRUE(a.contains(kAttrMembers));
    ASSERT_TRUE(b.contains(kAttrMembers));
    EXPECT_TRUE(a.at(kAttrMembers).Equals(b.at(kAttrMembers)));
    // Same number of top-level zones visible.
    EXPECT_EQ(gossiped.agent(i).TableAt(0).size(),
              warmed.agent(i).TableAt(0).size());
  }
}

TEST(Deployment, WarmStartSharesTablesAcrossAgents) {
  DeploymentConfig cfg;
  cfg.num_agents = 64;
  cfg.branching = 4;
  Deployment dep(cfg);
  dep.WarmStart();
  // All agents share one physical root table (copy-on-write), so the
  // address must coincide.
  const Table* root = &dep.agent(0).TableAt(0);
  for (std::size_t i = 1; i < dep.size(); ++i) {
    EXPECT_EQ(&dep.agent(i).TableAt(0), root) << "agent " << i;
  }
}

TEST(Deployment, FunctionInstalledEverywhereIsPresent) {
  DeploymentConfig cfg;
  cfg.num_agents = 8;
  Deployment dep(cfg);
  dep.InstallFunctionEverywhere("probe", "SELECT COUNT(*) AS probe_count");
  for (std::size_t i = 0; i < dep.size(); ++i) {
    auto names = dep.agent(i).InstalledFunctionNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(), "probe") != names.end());
  }
}

TEST(Deployment, CowClonesOnLocalMutationOnly) {
  DeploymentConfig cfg;
  cfg.num_agents = 8;
  cfg.branching = 8;
  Deployment dep(cfg);
  dep.WarmStart();
  const Table* shared = &dep.agent(1).TableAt(0);
  ASSERT_EQ(&dep.agent(0).TableAt(0), shared);
  // Starting agent 0 refreshes its own row -> its replica clones; agent
  // 1's replica must be untouched.
  dep.agent(0).Start();
  EXPECT_NE(&dep.agent(0).TableAt(0), shared);
  EXPECT_EQ(&dep.agent(1).TableAt(0), shared);
}

TEST(Deployment, SingleAndTwoAgentEdgeCases) {
  for (std::size_t n : {1u, 2u}) {
    DeploymentConfig cfg;
    cfg.num_agents = n;
    cfg.branching = 4;
    Deployment dep(cfg);
    dep.StartAll();
    dep.RunFor(30);
    for (std::size_t i = 0; i < n; ++i) {
      Row summary = dep.agent(i).ZoneSummary(0);
      ASSERT_TRUE(summary.contains(kAttrMembers));
      EXPECT_EQ(summary.at(kAttrMembers).AsInt(), std::int64_t(n));
    }
  }
}

}  // namespace
}  // namespace nw::astrolabe
