// Unit tests for the fault-plan engine: text round-trip, parser
// strictness, random-plan constraints, application to a sim::Network, and
// whole-system replay determinism (the same plan + seed must produce a
// bit-identical delivery trace).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "newswire/system.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "testing/invariants.h"

namespace nw::sim {
namespace {

TEST(FaultPlan, RoundTripsThroughTextSerialization) {
  FaultPlan plan;
  plan.Crash(5, 3)
      .Restart(12.5, 3)
      .Partition(20, {{0, 1, 2}, {3, 4}})
      .Heal(30)
      .LossBurst(35, 45.5, 0.3)
      .SlowUplink(50, 55, 2, 1e5)
      .SlowUplink(56, 58, kInvalidNode, 12500);

  const std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(*parsed, plan) << text;
  // And the text form is stable (Parse . ToString is the identity).
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(FaultPlan, ParsesHandwrittenStrings) {
  auto plan = FaultPlan::Parse(
      "  crash@5 node=3;restart@12 node=3 ; heal@20;  loss@1..4 p=0.25 ;"
      "slow@6..9 rate=5e4");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 5u);
  EXPECT_EQ(plan->events()[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan->events()[0].node, 3u);
  EXPECT_DOUBLE_EQ(plan->events()[3].value, 0.25);
  EXPECT_EQ(plan->events()[4].node, kInvalidNode);  // all-node slow uplink
  EXPECT_DOUBLE_EQ(plan->events()[4].value, 5e4);
  EXPECT_DOUBLE_EQ(plan->EndTime(), 20.0);
  EXPECT_EQ(plan->MaxNode(), 3u);
}

TEST(FaultPlan, EmptyStringIsTheEmptyPlan) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToString(), "");
}

TEST(FaultPlan, RejectsMalformedStrings) {
  const char* bad[] = {
      "crash@5",                      // missing node
      "crash@5 node=x",               // non-numeric node
      "crash@-1 node=2",              // negative time
      "crash@5..9 node=2",            // window on a point event
      "loss@5 p=0.3",                 // loss needs a window
      "loss@5..9 p=1.5",              // probability out of range
      "loss@9..5 p=0.5",              // inverted window
      "slow@5..9 rate=0",             // zero rate
      "partition@5",                  // missing groups
      "explode@5 node=1",             // unknown kind
      "crash@5 node=1 frobnicate=2",  // unknown key
      "crash 5 node=1",               // missing '@'
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultPlan::Parse(text).has_value()) << text;
  }
}

TEST(FaultPlan, RandomPlanRespectsConstraints) {
  FaultPlan::RandomOptions opt;
  opt.horizon = 100;
  opt.min_quiescence = 25;
  opt.max_dead = 3;
  opt.max_events = 30;
  opt.loss_bursts = true;
  opt.slow_uplinks = true;
  std::vector<NodeId> victims;
  for (NodeId n = 1; n <= 16; ++n) victims.push_back(n);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::Random(seed, victims, opt);
    std::set<NodeId> dead;
    for (const FaultEvent& ev : plan.events()) {
      EXPECT_LE(std::max(ev.at, ev.until), opt.horizon) << plan.ToString();
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
          EXPECT_TRUE(dead.insert(ev.node).second) << "double-kill";
          EXPECT_LE(dead.size(), opt.max_dead) << plan.ToString();
          // Chaos stays out of the quiescence tail.
          EXPECT_LT(ev.at, opt.horizon - opt.min_quiescence);
          break;
        case FaultEvent::Kind::kRestart:
          EXPECT_EQ(dead.erase(ev.node), 1u) << "restart of a live node";
          break;
        case FaultEvent::Kind::kLossBurst:
          EXPECT_LE(ev.value, opt.max_loss);
          EXPECT_LE(ev.until, opt.horizon - opt.min_quiescence);
          break;
        default:
          break;
      }
    }
    EXPECT_TRUE(dead.empty()) << "plan leaves nodes dead: " << plan.ToString();
    // Every random plan must be committable: round-trip exactly.
    auto reparsed = FaultPlan::Parse(plan.ToString());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, plan);
  }
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  FaultPlan::RandomOptions opt;
  std::vector<NodeId> victims{1, 2, 3, 4, 5};
  EXPECT_EQ(FaultPlan::Random(7, victims, opt),
            FaultPlan::Random(7, victims, opt));
  EXPECT_NE(FaultPlan::Random(7, victims, opt).ToString(),
            FaultPlan::Random(8, victims, opt).ToString());
}

// ---- application to a network ------------------------------------------

class Sink : public Node {
 public:
  void OnMessage(const Message& msg) override {
    received.push_back(msg);
    receive_times.push_back(Now());
  }
  std::vector<Message> received;
  std::vector<Time> receive_times;
  using Node::Send;
};

struct Probe {
  int value = 0;
};

TEST(FaultPlan, ApplyDrivesKillRestartAndPartition) {
  Simulator sim(3);
  NetworkConfig cfg;
  Network net(sim, cfg);
  std::vector<std::unique_ptr<Sink>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<Sink>());
    net.AddNode(nodes.back().get());
  }

  auto plan = FaultPlan::Parse(
      "crash@1 node=1; restart@2 node=1; partition@3 groups=2|3; heal@4");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);

  sim.At(1.5, [&] {
    EXPECT_FALSE(net.IsAlive(1));
    EXPECT_TRUE(net.IsAlive(2));
  });
  sim.At(2.5, [&] { EXPECT_TRUE(net.IsAlive(1)); });
  sim.At(3.5, [&] {
    // Nodes 2 and 3 are in different groups; 0 stays in the default group.
    net.Send(Message::Make<Probe>(2, 3, "probe", {1}, 8));
    net.Send(Message::Make<Probe>(0, 3, "probe", {2}, 8));
  });
  sim.At(4.5, [&] { net.Send(Message::Make<Probe>(2, 3, "probe", {3}, 8)); });
  sim.RunUntilIdle();
  // Only the post-heal message (and nothing cross-partition) arrived at 3.
  ASSERT_EQ(nodes[3]->received.size(), 1u);
  EXPECT_EQ(nodes[3]->received[0].As<Probe>().value, 3);
}

TEST(FaultPlan, LossBurstRaisesAndRestoresLossProbability) {
  Simulator sim(3);
  NetworkConfig cfg;
  cfg.loss_prob = 0.05;
  Network net(sim, cfg);
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("loss@10..20 p=0.8");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);
  sim.At(5, [&] { EXPECT_DOUBLE_EQ(net.LossProb(), 0.05); });
  sim.At(15, [&] { EXPECT_DOUBLE_EQ(net.LossProb(), 0.8); });
  sim.At(25, [&] { EXPECT_DOUBLE_EQ(net.LossProb(), 0.05); });
  sim.RunUntilIdle();
}

TEST(FaultPlan, SlowUplinkStretchesSerializationThenRecovers) {
  Simulator sim(3);
  NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter_frac = 0.0;
  cfg.uplink_bytes_per_sec = 1e6;
  cfg.per_message_overhead = 0;
  Network net(sim, cfg);
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("slow@10..20 node=0 rate=1000");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);

  auto send_at = [&](Time t) {
    sim.At(t, [&net] {
      net.Send(Message::Make<Probe>(0, 1, "probe", {0}, 1000));
    });
  };
  send_at(5);   // fast link: 1 ms serialization
  send_at(15);  // throttled: 1 s serialization
  send_at(25);  // restored: 1 ms again
  sim.RunUntilIdle();
  ASSERT_EQ(b.receive_times.size(), 3u);
  EXPECT_NEAR(b.receive_times[0], 5.001, 1e-6);
  EXPECT_NEAR(b.receive_times[1], 16.0, 1e-6);
  EXPECT_NEAR(b.receive_times[2], 25.001, 1e-6);
}

// ---- gray-failure fault kinds (DESIGN.md §10) ---------------------------

TEST(FaultPlan, GrayFailureKindsRoundTripThroughText) {
  FaultPlan plan;
  plan.GraySlow(10, 40, 3, 8, 0.05)
      .AsymPartition(20, 30, {0, 1}, {2, 3})
      .CorruptBurst(35, 45, 0.05)
      .DupReorder(50, 60, 0.1);
  const std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(*parsed, plan) << text;
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(FaultPlan, ParsesHandwrittenGrayFailureStrings) {
  auto plan = FaultPlan::Parse(
      "gray@10..40 node=3 factor=8 delay=0.05; asym@20..30 groups=0,1|2,3; "
      "corrupt@35..45 p=0.05; dup@50..60 p=0.1");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 4u);
  EXPECT_EQ(plan->events()[0].kind, FaultEvent::Kind::kGraySlow);
  EXPECT_EQ(plan->events()[0].node, 3u);
  EXPECT_DOUBLE_EQ(plan->events()[0].value, 8.0);
  EXPECT_DOUBLE_EQ(plan->events()[0].value2, 0.05);
  EXPECT_EQ(plan->events()[1].kind, FaultEvent::Kind::kAsymPartition);
  ASSERT_EQ(plan->events()[1].groups.size(), 2u);
  EXPECT_EQ(plan->events()[2].kind, FaultEvent::Kind::kCorruptBurst);
  EXPECT_DOUBLE_EQ(plan->events()[2].value, 0.05);
  EXPECT_EQ(plan->events()[3].kind, FaultEvent::Kind::kDupReorder);
  EXPECT_DOUBLE_EQ(plan->EndTime(), 60.0);
}

TEST(FaultPlan, RejectsMalformedGrayFailureStrings) {
  const char* bad[] = {
      "gray@5..9 node=1",              // missing factor
      "gray@5 node=1 factor=2",        // window required
      "gray@5..9 node=1 factor=0.5",   // slowdown below 1 is a speedup
      "gray@5..9 node=1 factor=2 delay=-1",  // negative inbound delay
      "asym@5..9 groups=1",            // needs exactly two groups
      "asym@5..9 groups=1|2|3",        // three groups is ambiguous
      "asym@5 groups=1|2",             // window required
      "corrupt@5..9 p=1.5",            // probability out of range
      "corrupt@5..9",                  // missing p
      "dup@5 p=0.1",                   // window required
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultPlan::Parse(text).has_value()) << text;
  }
}

TEST(FaultPlan, GraySlowStretchesProcessingThenRecovers) {
  Simulator sim(3);
  Network net(sim, NetworkConfig{});
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("gray@10..20 node=1 factor=8 delay=0.05");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);
  sim.At(5, [&] {
    EXPECT_DOUBLE_EQ(net.ProcSlowdown(1), 1.0);
    EXPECT_DOUBLE_EQ(net.ProcDelay(1), 0.0);
  });
  sim.At(15, [&] {
    EXPECT_DOUBLE_EQ(net.ProcSlowdown(1), 8.0);
    EXPECT_DOUBLE_EQ(net.ProcDelay(1), 0.05);
  });
  sim.At(25, [&] {
    EXPECT_DOUBLE_EQ(net.ProcSlowdown(1), 1.0);
    EXPECT_DOUBLE_EQ(net.ProcDelay(1), 0.0);
  });
  sim.RunUntilIdle();
}

TEST(FaultPlan, AsymCutBlocksOneDirectionOnly) {
  Simulator sim(3);
  Network net(sim, NetworkConfig{});
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("asym@1..5 groups=0|1");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);
  sim.At(2, [&] {
    net.Send(Message::Make<Probe>(0, 1, "probe", {1}, 8));  // cut direction
    net.Send(Message::Make<Probe>(1, 0, "probe", {2}, 8));  // reverse: open
  });
  sim.At(6, [&] {
    net.Send(Message::Make<Probe>(0, 1, "probe", {3}, 8));  // healed
  });
  sim.RunUntilIdle();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].As<Probe>().value, 2);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].As<Probe>().value, 3);
  EXPECT_EQ(net.StatsFor(1).messages_dropped, 1u)
      << "the cut-direction frame is accounted as a drop at the receiver";
}

TEST(FaultPlan, CorruptBurstFlipsChecksumsButStillDeliversFrames) {
  Simulator sim(3);
  NetworkConfig cfg;
  cfg.jitter_frac = 0.0;
  Network net(sim, cfg);
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("corrupt@1..5 p=1");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);
  sim.At(2, [&] { net.Send(Message::Make<Probe>(0, 1, "probe", {1}, 8)); });
  sim.At(6, [&] { net.Send(Message::Make<Probe>(0, 1, "probe", {2}, 8)); });
  sim.RunUntilIdle();
  // The corrupted frame is delivered — detection is the receiver's job —
  // but its checksum no longer verifies; the clean one does.
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_FALSE(IntegrityOk(b.received[0]));
  EXPECT_TRUE(IntegrityOk(b.received[1]));
  EXPECT_EQ(net.StatsFor(1).messages_corrupted, 1u);
}

TEST(FaultPlan, DupReorderDeliversACleanExtraCopy) {
  Simulator sim(3);
  NetworkConfig cfg;
  cfg.jitter_frac = 0.0;
  Network net(sim, cfg);
  Sink a, b;
  net.AddNode(&a);
  net.AddNode(&b);
  auto plan = FaultPlan::Parse("dup@1..5 p=1");
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(net, 0);
  sim.At(2, [&] { net.Send(Message::Make<Probe>(0, 1, "probe", {7}, 8)); });
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 2u);
  for (const Message& msg : b.received) {
    EXPECT_TRUE(IntegrityOk(msg));
    EXPECT_EQ(msg.As<Probe>().value, 7);
  }
  EXPECT_EQ(net.StatsFor(0).messages_duplicated, 1u);
}

TEST(FaultPlan, RandomPlanWithGrayOptionsRoundTrips) {
  FaultPlan::RandomOptions opt;
  opt.horizon = 100;
  opt.gray_slow = true;
  opt.asym_partitions = true;
  opt.corrupt_bursts = true;
  opt.dup_reorder = true;
  std::vector<NodeId> victims;
  for (NodeId n = 1; n <= 16; ++n) victims.push_back(n);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultPlan plan = FaultPlan::Random(seed, victims, opt);
    auto reparsed = FaultPlan::Parse(plan.ToString());
    ASSERT_TRUE(reparsed.has_value()) << plan.ToString();
    EXPECT_EQ(*reparsed, plan);
    EXPECT_EQ(FaultPlan::Random(seed, victims, opt), plan) << "seed-stable";
  }
}

// ---- whole-system replay determinism -----------------------------------

struct TraceRun {
  std::uint64_t hash = 0;
  std::vector<nw::testing::DeliveryRecord> trace;
};

TraceRun RunScenario(std::uint64_t seed, const std::string& plan_text) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 15;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  newswire::NewswireSystem sys(cfg);
  nw::testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);

  auto plan = FaultPlan::Parse(plan_text);
  EXPECT_TRUE(plan.has_value()) << plan_text;
  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);
  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  sys.RunFor(std::max(20.0, plan->EndTime()) + 60);
  return {recorder.TraceHash(), recorder.trace()};
}

TEST(FaultPlan, SamePlanAndSeedGiveBitIdenticalDeliveryTraces) {
  const std::string plan =
      "crash@3 node=5; loss@6..10 p=0.3; restart@12 node=5";
  const TraceRun a = RunScenario(42, plan);
  const TraceRun b = RunScenario(42, plan);
  EXPECT_GT(a.trace.size(), 0u);
  const auto report = nw::testing::CheckReplayIdentical(a.trace, b.trace);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(a.hash, b.hash);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const std::string plan = "crash@3 node=5; restart@12 node=5";
  EXPECT_NE(RunScenario(1, plan).hash, RunScenario(2, plan).hash);
}

}  // namespace
}  // namespace nw::sim
