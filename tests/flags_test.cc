// Tests for the command-line flag parser used by the scenario tools.
#include <gtest/gtest.h>

#include "util/flags.h"

namespace nw::util {
namespace {

Flags Make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(int(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceSyntax) {
  Flags f = Make({"--count=5", "--rate", "2.5", "--name", "hello"});
  EXPECT_EQ(f.GetInt("count", 0), 5);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0), 2.5);
  EXPECT_EQ(f.GetString("name", ""), "hello");
}

TEST(Flags, BareFlagIsBooleanTrue) {
  Flags f = Make({"--verbose", "--count=3"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("quiet", false));
}

TEST(Flags, BooleanFalseSpellings) {
  EXPECT_FALSE(Make({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(Make({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(Make({"--x=no"}).GetBool("x", true));
  EXPECT_TRUE(Make({"--x=yes"}).GetBool("x", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 1.5), 1.5);
  EXPECT_EQ(f.GetString("s", "dft"), "dft");
}

TEST(Flags, BareFlagFollowedByFlagDoesNotSwallow) {
  Flags f = Make({"--verbose", "--count=3"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("count", 0), 3);
}

TEST(Flags, UnknownFlagsReported) {
  Flags f = Make({"--known=1", "--typo=2"});
  EXPECT_EQ(f.GetInt("known", 0), 1);
  const auto unknown = f.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, PositionalArguments) {
  Flags f = Make({"run", "--n=1", "fast"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"run", "fast"}));
}

}  // namespace
}  // namespace nw::util
