// Tests for the remote query service (Astrolabe's monitoring /
// data-mining face, paper §3/§4).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "astrolabe/deployment.h"
#include "astrolabe/query.h"

namespace nw::astrolabe {
namespace {

class QueryEnv {
 public:
  explicit QueryEnv(std::size_t n, std::size_t branching) : dep_([&] {
    DeploymentConfig cfg;
    cfg.num_agents = n;
    cfg.branching = branching;
    cfg.seed = 8;
    return cfg;
  }()) {
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      qs_.push_back(std::make_unique<QueryService>(dep_.agent(i)));
    }
    dep_.WarmStart();
  }

  Deployment& dep() { return dep_; }
  QueryService& qs(std::size_t i) { return *qs_[i]; }

  // Runs one query to completion and returns its result.
  QueryService::Result Ask(std::size_t from, std::size_t to,
                           std::size_t level, const std::string& sql) {
    std::optional<QueryService::Result> got;
    qs(from).QueryZone(dep_.agent(to).id(), level, sql,
                       [&got](const QueryService::Result& r) { got = r; });
    dep_.RunFor(10);
    EXPECT_TRUE(got.has_value()) << "callback never fired";
    return got.value_or(QueryService::Result{});
  }

 private:
  Deployment dep_;
  std::vector<std::unique_ptr<QueryService>> qs_;
};

TEST(QueryService, RemoteRootSummary) {
  QueryEnv env(27, 3);
  auto result =
      env.Ask(0, 26, 0, "SELECT SUM(nmembers) AS total, COUNT(*) AS zones");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.row.at("total").AsInt(), 27);
  EXPECT_EQ(result.row.at("zones").AsInt(), 3);
}

TEST(QueryService, CustomAttributesAndWhere) {
  QueryEnv env(9, 3);
  env.dep().agent(4).SetLocalAttr("disk", std::int64_t{500});
  env.dep().agent(5).SetLocalAttr("disk", std::int64_t{90});
  env.dep().WarmStart();  // refresh the warm replicas with the new attrs
  // Query agent 4's own leaf-zone table (level = depth-1) from agent 0.
  const std::size_t leaf_level = env.dep().Depth() - 1;
  auto result = env.Ask(0, 4, leaf_level,
                        "SELECT MAX(disk) AS d, COUNT(disk) AS n "
                        "WHERE disk > 100");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.row.at("d").AsInt(), 500);
  EXPECT_EQ(result.row.at("n").AsInt(), 1);
}

TEST(QueryService, MalformedQueryRejectedRemotely) {
  QueryEnv env(9, 3);
  auto result = env.Ask(0, 8, 0, "SELEC nonsense(");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(env.qs(8).stats().rejected, 1u);
}

TEST(QueryService, LevelOutOfRangeRejected) {
  QueryEnv env(9, 3);
  auto result = env.Ask(0, 8, 99, "SELECT COUNT(*)");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "level out of range");
}

TEST(QueryService, DeadPeerTimesOut) {
  QueryEnv env(9, 3);
  env.dep().net().Kill(env.dep().agent(8).id());
  auto result = env.Ask(0, 8, 0, "SELECT COUNT(*)");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  EXPECT_EQ(env.qs(0).stats().timeouts, 1u);
}

TEST(QueryService, LateResponseAfterTimeoutIsDropped) {
  // Tight timeout + high latency: the answer arrives after the timeout
  // fired; the callback must run exactly once (with the timeout).
  DeploymentConfig cfg;
  cfg.num_agents = 4;
  cfg.branching = 4;
  cfg.net.base_latency = 2.0;  // RTT 4s
  Deployment dep(cfg);
  QueryService::Config qc;
  qc.timeout = 1.0;
  std::vector<std::unique_ptr<QueryService>> qs;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    qs.push_back(std::make_unique<QueryService>(dep.agent(i), qc));
  }
  dep.WarmStart();
  int calls = 0;
  bool last_ok = true;
  qs[0]->QueryZone(dep.agent(1).id(), 0, "SELECT COUNT(*)",
                   [&](const QueryService::Result& r) {
                     ++calls;
                     last_ok = r.ok;
                   });
  dep.RunFor(20);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(last_ok);
}

TEST(QueryService, ManyConcurrentQueries) {
  QueryEnv env(16, 4);
  int answered = 0;
  for (int k = 0; k < 20; ++k) {
    env.qs(0).QueryZone(env.dep().agent(std::size_t(1 + k % 15)).id(), 0,
                        "SELECT SUM(nmembers) AS total",
                        [&answered](const QueryService::Result& r) {
                          if (r.ok && r.row.at("total").AsInt() == 16) {
                            ++answered;
                          }
                        });
  }
  env.dep().RunFor(10);
  EXPECT_EQ(answered, 20);
}

}  // namespace
}  // namespace nw::astrolabe
