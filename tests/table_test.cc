// Unit tests for the digest/delta primitives of Table (gossip wire format
// v2, PROTOCOLS.md): MakeDigest, DeltaAgainst, MergeRefresh, and their
// interaction with row expiry. These are the building blocks the agent's
// three-leg reconciliation trusts blindly, so the edge cases — empty
// digests, version ties, heartbeat-only advances, rows the failure
// detector just evicted — are pinned here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "astrolabe/table.h"

namespace nw::astrolabe {
namespace {

// Builds a table with rows a/b/c at versions 10/20/30, each last changed
// in content at its own version (content_version == version).
Table ThreeRows() {
  Table t;
  for (const auto& [key, version] :
       {std::pair<const char*, std::uint64_t>{"a", 10},
        {"b", 20},
        {"c", 30}}) {
    RowEntry& e = t.Upsert(key);
    e.attrs["name"] = std::string(key);
    e.version = version;
    e.content_version = version;
    e.last_refresh = 1.0;
  }
  return t;
}

std::vector<std::string> Keys(
    const std::vector<std::pair<std::string, RowEntry>>& rows) {
  std::vector<std::string> keys;
  for (const auto& [key, entry] : rows) keys.push_back(key);
  return keys;
}

TEST(TableDigest, DigestCoversEveryRowWithItsVersions) {
  const Table t = ThreeRows();
  const TableDigest digest = t.MakeDigest();
  ASSERT_EQ(digest.size(), 3u);
  EXPECT_EQ(digest.at("a").version, 10u);
  EXPECT_EQ(digest.at("b").version, 20u);
  EXPECT_EQ(digest.at("c").version, 30u);
  EXPECT_EQ(digest.at("c").content_version, 30u);
}

TEST(TableDigest, EmptyDigestRequestsEveryRow) {
  // A peer with no replica (fresh restart) digests nothing, so the delta
  // must be the whole table, as full row bodies.
  const Table t = ThreeRows();
  const auto delta = t.DeltaAgainst(TableDigest{});
  EXPECT_EQ(Keys(delta.rows), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, StaleDigestGetsOnlyTheNewerRows) {
  const Table t = ThreeRows();
  // The peer is current on "a", behind the content change on "b", and
  // missing "c": both come back as full bodies.
  const TableDigest peer{{"a", {10, 10}}, {"b", {15, 15}}};
  const auto delta = t.DeltaAgainst(peer);
  EXPECT_EQ(Keys(delta.rows), (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, EqualVersionsAreNeverResent) {
  // Versions are owner-issued and totally ordered: a tie proves the peer
  // holds the identical row, so re-sending it is pure waste. This is the
  // suppression the bandwidth bench banks on.
  const Table t = ThreeRows();
  const auto delta = t.DeltaAgainst(t.MakeDigest());
  EXPECT_TRUE(delta.rows.empty());
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, PeerAheadOfUsYieldsNothing) {
  const Table t = ThreeRows();
  const TableDigest peer{{"a", {11, 10}}, {"b", {21, 20}}, {"c", {31, 30}}};
  const auto delta = t.DeltaAgainst(peer);
  EXPECT_TRUE(delta.rows.empty());
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, DigestIgnoresRowsOnlyThePeerHas) {
  // Keys in the digest that we do not hold are the *peer's* business: the
  // reply leg answers them from the peer's own digest, not ours.
  const Table t = ThreeRows();
  const TableDigest peer{
      {"a", {10, 10}}, {"b", {20, 20}}, {"c", {30, 30}}, {"zz", {99, 99}}};
  const auto delta = t.DeltaAgainst(peer);
  EXPECT_TRUE(delta.rows.empty());
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, HeartbeatOnlyAdvanceShipsARefreshNotTheBody) {
  // The peer holds the current content ("b" last changed at version 20,
  // the peer has seen version 25 of the same content stream) but is behind
  // on the liveness heartbeat: a ~20-byte RowRefresh suffices.
  Table t = ThreeRows();
  RowEntry& b = t.Upsert("b");
  b.version = 40;  // re-versioned by heartbeats; content unchanged since 20
  const TableDigest peer{{"a", {10, 10}}, {"b", {25, 20}}, {"c", {30, 30}}};
  const auto delta = t.DeltaAgainst(peer);
  EXPECT_TRUE(delta.rows.empty());
  ASSERT_EQ(delta.refreshes.size(), 1u);
  EXPECT_EQ(delta.refreshes[0].key, "b");
  EXPECT_EQ(delta.refreshes[0].version, 40u);
  EXPECT_EQ(delta.refreshes[0].content_version, 20u);
}

TEST(TableDigest, DivergentContentStreamForcesTheFullBody) {
  // Two concurrent authors (an election flap) can issue interleaved
  // versions with different content. The peer's content_version differs
  // from ours, so a heartbeat could silently freeze the wrong body — the
  // full row must ship instead.
  Table t = ThreeRows();
  t.Upsert("b").version = 40;  // our content stream: changed at 20
  // Peer current on a/c; its "b" body came from another author stream.
  const TableDigest peer{{"a", {10, 10}}, {"b", {25, 22}}, {"c", {30, 30}}};
  const auto delta = t.DeltaAgainst(peer);
  ASSERT_EQ(Keys(delta.rows), (std::vector<std::string>{"b"}));
  EXPECT_TRUE(delta.refreshes.empty());
}

TEST(TableDigest, MergeRefreshAdvancesVersionWithoutTouchingAttrs) {
  Table t = ThreeRows();
  EXPECT_TRUE(t.MergeRefresh(RowRefresh{"b", 45, 20}, /*now=*/9.0));
  const RowEntry* b = t.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->version, 45u);
  EXPECT_EQ(b->attrs.at("name").AsString(), "b");  // body untouched
  EXPECT_EQ(b->last_refresh, 9.0);  // failure detector sees the heartbeat
}

TEST(TableDigest, MergeRefreshNeverCreatesOrResurrectsARow) {
  Table t = ThreeRows();
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"ghost", 99, 99}, /*now=*/9.0));
  EXPECT_FALSE(t.Has("ghost"));
  // An evicted row stays evicted: only a full body (which passes the
  // agent-level deletion-stability check) can bring it back.
  t.Erase("c");
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"c", 35, 30}, /*now=*/9.0));
  EXPECT_FALSE(t.Has("c"));
}

TEST(TableDigest, MergeRefreshRejectsStaleOrDivergentHeartbeats) {
  Table t = ThreeRows();
  // Not newer than what we hold: no-op.
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"b", 20, 20}, /*now=*/9.0));
  // Newer version but a different content stream: our body may be wrong
  // for that version, so the refresh is dropped (the digest exchange will
  // ship the full row).
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"b", 45, 33}, /*now=*/9.0));
  EXPECT_EQ(t.Find("b")->version, 20u);
}

TEST(TableDigest, ExpiredRowsLeaveTheDigestAndTheDelta) {
  // Interplay with the failure detector: once ExpireOlderThan (driven by
  // fail_timeout_rounds) evicts a row, the digest stops advertising it and
  // the delta stops shipping it — the eviction propagates by silence, not
  // by a tombstone. A peer still holding the row will offer it back; the
  // agent-level deletion-stability check (agent.cc MergeRows) decides
  // whether that is a resurrection or a legitimate rebirth.
  Table t = ThreeRows();
  RowEntry& stale = t.Upsert("b");
  stale.last_refresh = 0.1;  // older than the cutoff below
  const std::size_t evicted = t.ExpireOlderThan(0.5, /*keep=*/"a");
  EXPECT_EQ(evicted, 1u);
  const TableDigest digest = t.MakeDigest();
  EXPECT_FALSE(digest.contains("b"));
  EXPECT_EQ(Keys(t.DeltaAgainst(TableDigest{}).rows),
            (std::vector<std::string>{"a", "c"}));
}

TEST(TableDigest, KeepRowSurvivesExpiryAndStaysInTheDigest) {
  // The caller's own row is never expired (it alone refreshes it), so it
  // must keep appearing in digests even when its refresh time is ancient.
  Table t = ThreeRows();
  t.Upsert("a").last_refresh = 0.0;
  t.Upsert("b").last_refresh = 0.0;
  t.Upsert("c").last_refresh = 0.0;
  t.ExpireOlderThan(0.5, /*keep=*/"a");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.MakeDigest().contains("a"));
}

TEST(TableDigest, DeltaCarriesFullRowEntries) {
  // The delta ships the entry verbatim — attributes and the owner versions —
  // so the receiver can merge it exactly as it would a snapshot row.
  const Table t = ThreeRows();
  const auto delta =
      t.DeltaAgainst(TableDigest{{"a", {10, 10}}, {"b", {20, 20}}});
  ASSERT_EQ(delta.rows.size(), 1u);
  EXPECT_EQ(delta.rows[0].first, "c");
  EXPECT_EQ(delta.rows[0].second.version, 30u);
  EXPECT_EQ(delta.rows[0].second.content_version, 30u);
  EXPECT_EQ(delta.rows[0].second.attrs.at("name").AsString(), "c");
}

TEST(TableDigest, DigestWireBytesGrowsWithRows) {
  Table t;
  const std::size_t empty = DigestWireBytes(t.MakeDigest());
  t.Upsert("node1").version = 1;
  const std::size_t one = DigestWireBytes(t.MakeDigest());
  EXPECT_GT(one, empty);
  // A digest entry costs key + fixed version/length overhead — an order of
  // magnitude below a realistic row body (RowWireBytes counts attributes).
  EXPECT_EQ(one - empty, std::string("node1").size() + 18);
}

}  // namespace
}  // namespace nw::astrolabe
