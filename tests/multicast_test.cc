// Tests for the application-level multicast: full dissemination, duplicate
// suppression, redundancy under loss and failures, filtering, scoped
// sends, and overload behavior of the forwarding queues.
#include <gtest/gtest.h>

#include <memory>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"

namespace nw::multicast {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

class MulticastEnv {
 public:
  MulticastEnv(std::size_t n, std::size_t branching, MulticastConfig mc = {},
               sim::NetworkConfig net = {}, std::uint64_t seed = 1)
      : dep_([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.net = net;
          cfg.seed = seed;
          return cfg;
        }()) {
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      services_.push_back(
          std::make_unique<MulticastService>(dep_.agent(i), mc));
      services_.back()->SetDeliveryCallback(
          [this, i](const Item& item) { deliveries_[i].push_back(item.id); });
      deliveries_.emplace_back();
    }
    dep_.WarmStart();
  }

  Deployment& dep() { return dep_; }
  MulticastService& svc(std::size_t i) { return *services_[i]; }
  const std::vector<std::string>& delivered(std::size_t i) const {
    return deliveries_[i];
  }
  std::size_t TotalDeliveries() const {
    std::size_t n = 0;
    for (const auto& d : deliveries_) n += d.size();
    return n;
  }

  Item MakeItem(const std::string& id, std::size_t body = 256) {
    Item item;
    item.id = id;
    item.body_bytes = body;
    item.published_at = dep_.sim().Now();
    return item;
  }

 private:
  Deployment dep_;
  std::vector<std::unique_ptr<MulticastService>> services_;
  std::vector<std::vector<std::string>> deliveries_;
};

TEST(Multicast, RootSendReachesEveryLeafExactlyOnce) {
  MulticastEnv env(27, 3);
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    ASSERT_EQ(env.delivered(i).size(), 1u) << "leaf " << i;
    EXPECT_EQ(env.delivered(i)[0], "a#1");
  }
}

TEST(Multicast, ManyItemsAllDelivered) {
  MulticastEnv env(16, 4);
  for (int k = 0; k < 10; ++k) {
    env.svc(0).SendToZone(ZonePath::Root(),
                          env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(env.delivered(i).size(), 10u) << "leaf " << i;
  }
}

TEST(Multicast, RedundantForwardingSuppressesDuplicates) {
  MulticastConfig mc;
  mc.redundancy = 3;
  MulticastEnv env(27, 3, mc);
  env.svc(5).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  std::uint64_t dups = 0;
  for (std::size_t i = 0; i < 27; ++i) {
    EXPECT_EQ(env.delivered(i).size(), 1u) << "leaf " << i;
    dups += env.svc(i).stats().duplicates;
  }
  EXPECT_GT(dups, 0u);  // redundancy produced suppressed extra copies
}

TEST(Multicast, ScopedSendStaysInsideZone) {
  MulticastEnv env(27, 3);
  // Sender 0 lives in the first top-level zone.
  const ZonePath scope = env.dep().PathFor(0).Prefix(1);
  env.svc(0).SendToZone(scope, env.MakeItem("a#1"));
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    const bool inside = scope.IsPrefixOf(env.dep().PathFor(i));
    EXPECT_EQ(env.delivered(i).size(), inside ? 1u : 0u) << "leaf " << i;
  }
}

TEST(Multicast, NonMemberCanPublishIntoRemoteZone) {
  MulticastEnv env(27, 3);
  // Sender 0 publishes into the top-level zone of agent 26.
  const ZonePath scope = env.dep().PathFor(26).Prefix(1);
  ASSERT_FALSE(scope.IsPrefixOf(env.dep().PathFor(0)));
  env.svc(0).SendToZone(scope, env.MakeItem("a#1"));
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    const bool inside = scope.IsPrefixOf(env.dep().PathFor(i));
    EXPECT_EQ(env.delivered(i).size(), inside ? 1u : 0u) << "leaf " << i;
  }
}

TEST(Multicast, ForwardFilterPrunesSubtrees) {
  MulticastEnv env(16, 4);
  // Filter: never forward into child zones/leaves whose row has 2 members
  // or fewer... use a simpler rule: block every child whose key is "z0"
  // by marking with nmembers. Instead filter on leaf rows: only leaves
  // with contacts containing an even node id would be unreachable to
  // verify; keep it simple and block everything -> only local delivery.
  for (std::size_t i = 0; i < 16; ++i) {
    env.svc(i).SetForwardFilter(
        [](const Item&, const astrolabe::Row&) { return false; });
  }
  env.svc(3).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  EXPECT_EQ(env.TotalDeliveries(), 1u);  // only the sender itself
  EXPECT_GT(env.svc(3).stats().filtered, 0u);
}

TEST(Multicast, SurvivesModerateLossWithRedundancy) {
  sim::NetworkConfig net;
  net.loss_prob = 0.1;
  MulticastConfig mc;
  mc.redundancy = 2;
  MulticastEnv env(64, 4, mc, net);
  for (int k = 0; k < 5; ++k) {
    env.svc(0).SendToZone(ZonePath::Root(),
                          env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep().RunFor(60);
  // With 10% loss and 2x redundancy the expected delivery rate is high.
  const double rate = double(env.TotalDeliveries()) / (64 * 5);
  EXPECT_GT(rate, 0.95);
}

TEST(Multicast, DeadRepresentativeLosesOnlyItsSubtreeWithoutRedundancy) {
  MulticastEnv env(16, 4);
  // Kill one agent that represents its leaf zone; items forwarded through
  // it are lost (k=1), but other zones still receive.
  env.dep().net().Kill(env.dep().agent(5).id());
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  std::size_t received = 0;
  for (std::size_t i = 0; i < 16; ++i) received += env.delivered(i).size();
  EXPECT_GE(received, 16u - 5u);  // at worst the victim's whole zone (4) + self
  EXPECT_LT(received, 16u);       // the dead node itself cannot receive
}

TEST(Multicast, OverloadDropsInQueuesNotCrash) {
  MulticastConfig mc;
  mc.forward_bytes_per_sec = 5'000;  // tiny forwarding budget
  mc.forward_burst_bytes = 5'000;
  mc.max_queue_items = 10;
  MulticastEnv env(16, 4, mc);
  for (int k = 0; k < 300; ++k) {
    env.svc(0).SendToZone(ZonePath::Root(),
                          env.MakeItem("flood#" + std::to_string(k), 1000));
  }
  env.dep().RunFor(120);
  EXPECT_GT(env.svc(0).stats().queue_drops, 0u);
  // The system still delivered something.
  EXPECT_GT(env.TotalDeliveries(), 16u);
}

TEST(Multicast, StatsCountForwardBytes) {
  MulticastEnv env(16, 4);
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1", 500));
  env.dep().RunFor(30);
  EXPECT_GT(env.svc(0).stats().forwards, 0u);
  EXPECT_GT(env.svc(0).stats().forward_bytes,
            env.svc(0).stats().forwards * 500);
}

TEST(Multicast, HopCountsGrowWithDepth) {
  MulticastEnv env(64, 4);  // depth 3
  Item item = env.MakeItem("a#1");
  std::vector<int> hops(64, -1);
  for (std::size_t i = 0; i < 64; ++i) {
    env.svc(i).SetDeliveryCallback(
        [&hops, i](const Item& it) { hops[i] = it.hops; });
  }
  env.svc(0).SendToZone(ZonePath::Root(), item);
  env.dep().RunFor(30);
  int max_hops = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_GE(hops[i], 0) << "leaf " << i << " missed the item";
    max_hops = std::max(max_hops, hops[i]);
  }
  EXPECT_GE(max_hops, 2);  // at least two forwarding stages in a 3-level tree
  EXPECT_LE(max_hops, 4);
}

}  // namespace
}  // namespace nw::multicast
