// Randomized churn ("torture") test: a NewsWire system endures a long
// run of interleaved crashes, restarts, partitions, heals, subscription
// changes, and publications. At the end, the system-level invariants
// must hold: the membership views of live agents match reality, every
// live subscriber holds every item it was entitled to (within the repair
// window), no scoped item leaked, and the run is replayable.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "newswire/system.h"
#include "util/rng.h"

namespace nw::newswire {
namespace {

struct ChurnOutcome {
  std::size_t live = 0;
  std::uint64_t delivered = 0;
  double completeness = 0;
  std::int64_t membership_view = 0;
};

ChurnOutcome RunChurn(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.num_subscribers = 63;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  NewswireSystem sys(cfg);
  sys.RunFor(10);

  util::DeterministicRng rng(seed * 31 + 7);
  std::vector<std::pair<std::string, std::string>> published;
  std::set<std::size_t> down;

  // 120 seconds of chaos.
  for (int step = 0; step < 120; ++step) {
    sys.deployment().sim().At(sys.Now() + step, [&, step] {
      // Publish roughly every second.
      const std::string id = sys.PublishArticle(
          0, sys.catalog()[std::size_t(step) % 3]);
      if (!id.empty()) published.emplace_back(id, sys.catalog()[step % 3]);

      const double dice = rng.NextDouble();
      if (dice < 0.10 && down.size() < 12) {
        // Crash someone.
        const std::size_t i =
            std::size_t(rng.NextBelow(sys.subscriber_count()));
        if (!down.contains(i)) {
          sys.deployment().net().Kill(sys.subscriber_agent(i).id());
          down.insert(i);
        }
      } else if (dice < 0.20 && !down.empty()) {
        // Restart someone.
        const std::size_t i = *down.begin();
        down.erase(down.begin());
        sys.deployment().net().Restart(sys.subscriber_agent(i).id());
      } else if (dice < 0.24) {
        // Partition a random top-level zone for a while...
        const std::size_t victim =
            std::size_t(rng.NextBelow(sys.subscriber_count()));
        const std::string zone =
            sys.subscriber_agent(victim).path().Component(0);
        for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
          if (sys.subscriber_agent(i).path().Component(0) == zone) {
            sys.deployment().net().SetPartitionGroup(
                sys.subscriber_agent(i).id(), 1);
          }
        }
      } else if (dice < 0.32) {
        sys.deployment().net().HealPartitions();
      }
    });
  }
  sys.deployment().sim().At(sys.Now() + 121, [&] {
    sys.deployment().net().HealPartitions();
    for (std::size_t i : down) {
      sys.deployment().net().Restart(sys.subscriber_agent(i).id());
    }
    down.clear();
  });
  // Quiescence: every repair and gossip round settles.
  sys.RunFor(121 + 180);

  ChurnOutcome out;
  std::size_t got = 0, expected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (!sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
      continue;
    }
    ++out.live;
    const auto& mine = sys.SubjectsOf(i);  // Zipf draw may skip a subject
    for (const auto& [id, subject] : published) {
      if (std::find(mine.begin(), mine.end(), subject) == mine.end()) {
        continue;
      }
      ++expected;
      if (sys.subscriber(i).cache().Contains(id)) ++got;
    }
  }
  out.completeness = expected ? double(got) / double(expected) : 1.0;
  out.delivered = sys.total_delivered();
  astrolabe::Row summary = sys.subscriber_agent(0).ZoneSummary(0);
  out.membership_view = summary.contains(astrolabe::kAttrMembers)
                            ? summary.at(astrolabe::kAttrMembers).AsInt()
                            : 0;
  return out;
}

class TortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TortureTest, SurvivesChurnWithFullRecovery) {
  ChurnOutcome out = RunChurn(GetParam());
  EXPECT_EQ(out.live, 63u) << "everyone was restarted at the end";
  // After quiescence the membership view must see the whole system again.
  EXPECT_EQ(out.membership_view, 64);
  // And the caches must be complete: repair + redundancy recovered
  // everything published during the chaos. Restarted nodes recover only
  // the repair window, which covers the whole run here.
  EXPECT_GE(out.completeness, 0.999)
      << "live subscribers missing items after quiescence";
}

TEST_P(TortureTest, ChurnRunsAreReplayable) {
  ChurnOutcome a = RunChurn(GetParam());
  ChurnOutcome b = RunChurn(GetParam());
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.completeness, b.completeness);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace nw::newswire
