// Tests for the phi-accrual failure detector (DESIGN.md §10): cold start,
// steady state at a constant gossip rhythm, adaptation to a step change in
// the observed period (the gray-slow case the fixed timeout mishandles),
// and behavior at simulation time zero.
#include <gtest/gtest.h>

#include <string>

#include "astrolabe/failure_detector.h"

namespace nw::astrolabe {
namespace {

PhiAccrualConfig TestConfig() {
  PhiAccrualConfig cfg;  // library defaults; spelled out where asserted
  return cfg;
}

// ---- cold start --------------------------------------------------------

TEST(PhiAccrualDetector, UnknownPeerIsNeverSuspected) {
  PhiAccrualDetector det(TestConfig());
  EXPECT_FALSE(det.Known("0/n3"));
  EXPECT_DOUBLE_EQ(det.Phi("0/n3", 100.0), 0.0);
  EXPECT_FALSE(det.Suspect("0/n3", 100.0, 1.0));
}

TEST(PhiAccrualDetector, FirstHeartbeatAnchorsWithoutRecordingAnInterval) {
  PhiAccrualDetector det(TestConfig());
  det.Heartbeat("0/n3", 5.0);
  EXPECT_TRUE(det.Known("0/n3"));
  EXPECT_EQ(det.SampleCount("0/n3"), 0u);
  EXPECT_DOUBLE_EQ(det.LastArrival("0/n3"), 5.0);
  // No model yet: only the cap-rounds fallback can suspect.
  EXPECT_FALSE(det.Suspect("0/n3", 5.0 + 2.0, 1.0));
}

TEST(PhiAccrualDetector, CapRoundsFallbackCoversTheColdStart) {
  PhiAccrualConfig cfg = TestConfig();
  cfg.cap_rounds = 16;
  PhiAccrualDetector det(cfg);
  det.Heartbeat("0/n3", 0.0);
  // One anchor, zero intervals: below the cap the peer gets the benefit of
  // the doubt, beyond it the silence is conclusive regardless of model.
  EXPECT_FALSE(det.Suspect("0/n3", 15.9, 1.0));
  EXPECT_TRUE(det.Suspect("0/n3", 16.1, 1.0));
}

TEST(PhiAccrualDetector, WorksFromSimulationTimeZero) {
  PhiAccrualDetector det(TestConfig());
  det.Heartbeat("0/n0", 0.0);
  det.Heartbeat("0/n0", 1.0);
  det.Heartbeat("0/n0", 2.0);
  det.Heartbeat("0/n0", 3.0);
  EXPECT_EQ(det.SampleCount("0/n0"), 3u);
  EXPECT_FALSE(det.Suspect("0/n0", 3.5, 1.0));
}

// ---- steady state ------------------------------------------------------

TEST(PhiAccrualDetector, ConstantRhythmIsNotSuspectedAtItsOwnPeriod) {
  PhiAccrualDetector det(TestConfig());
  double t = 0;
  for (int i = 0; i < 20; ++i, t += 1.0) det.Heartbeat("0/n7", t);
  const double last = t - 1.0;
  // Shortly after the expected next beat phi is still small...
  EXPECT_LT(det.Phi("0/n7", last + 1.0), 1.0);
  EXPECT_FALSE(det.Suspect("0/n7", last + 1.0, 1.0));
  // ...but phi grows monotonically with silence (probed inside the
  // unsaturated region; far out it clamps at -log10(1e-15)).
  const double p1 = det.Phi("0/n7", last + 1.0);
  const double p2 = det.Phi("0/n7", last + 1.15);
  const double p3 = det.Phi("0/n7", last + 1.3);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  // Well past the floor, a multi-period silence is conclusive.
  EXPECT_TRUE(det.Suspect("0/n7", last + 7.0, 1.0));
}

TEST(PhiAccrualDetector, FloorRoundsShieldJitterEvenWithATightModel) {
  PhiAccrualConfig cfg = TestConfig();
  cfg.floor_rounds = 3;
  PhiAccrualDetector det(cfg);
  double t = 0;
  for (int i = 0; i < 20; ++i, t += 1.0) det.Heartbeat("0/n7", t);
  const double last = t - 1.0;
  // The zero-variance model would make phi explode at 2 periods of
  // silence, but inside floor_rounds * period suspicion is withheld.
  EXPECT_GT(det.Phi("0/n7", last + 2.5), cfg.threshold);
  EXPECT_FALSE(det.Suspect("0/n7", last + 2.5, 1.0));
}

TEST(PhiAccrualDetector, MinSamplesGateBeforeTheModelDecides)  {
  PhiAccrualConfig cfg = TestConfig();
  cfg.min_samples = 3;
  PhiAccrualDetector det(cfg);
  det.Heartbeat("0/n9", 0.0);
  det.Heartbeat("0/n9", 1.0);  // one interval recorded
  EXPECT_EQ(det.SampleCount("0/n9"), 1u);
  // Phi over one sample would be conclusive; the gate withholds judgment
  // (only the cap fallback applies until min_samples accumulate). Probed
  // past the floor so the gate, not the floor, is what declines.
  EXPECT_FALSE(det.Suspect("0/n9", 9.0, 1.0));
}

// ---- adaptation (the gray-slow case) -----------------------------------

TEST(PhiAccrualDetector, AdaptsToAStepChangeInTheGossipPeriod) {
  PhiAccrualDetector det(TestConfig());
  double t = 0;
  for (int i = 0; i < 10; ++i, t += 1.0) det.Heartbeat("0/n3", t);
  // The node turns gray: same protocol, 8x slower. Fill the window with
  // the new rhythm.
  for (int i = 0; i < 20; ++i, t += 8.0) det.Heartbeat("0/n3", t);
  const double last = t - 8.0;
  // A fixed 6-round timeout at period 1.0 would have expired this row ~6 s
  // into every 8 s gap. The adapted model treats 8 s of silence as normal.
  EXPECT_LT(det.Phi("0/n3", last + 8.0), 1.0);
  EXPECT_FALSE(det.Suspect("0/n3", last + 8.0, 1.0));
  // Genuine death still gets caught: silence far beyond the learned
  // rhythm pushes phi over any threshold.
  EXPECT_TRUE(det.Suspect("0/n3", last + 40.0, 1.0));
}

TEST(PhiAccrualDetector, NegativeIntervalsAreIgnored) {
  PhiAccrualDetector det(TestConfig());
  det.Heartbeat("0/n1", 10.0);
  det.Heartbeat("0/n1", 9.0);  // out-of-order merge: no negative interval
  EXPECT_EQ(det.SampleCount("0/n1"), 0u);
  EXPECT_DOUBLE_EQ(det.LastArrival("0/n1"), 10.0);
}

// ---- bookkeeping -------------------------------------------------------

TEST(PhiAccrualDetector, ForgetAndClearDropHistory) {
  PhiAccrualDetector det(TestConfig());
  det.Heartbeat("0/n1", 0.0);
  det.Heartbeat("1/z2", 0.0);
  det.Forget("0/n1");
  EXPECT_FALSE(det.Known("0/n1"));
  EXPECT_TRUE(det.Known("1/z2"));
  det.Clear();
  EXPECT_FALSE(det.Known("1/z2"));
}

TEST(PhiAccrualDetector, WindowIsARingOldSamplesAgeOut) {
  PhiAccrualConfig cfg = TestConfig();
  cfg.window = 4;
  PhiAccrualDetector det(cfg);
  double t = 0;
  for (int i = 0; i < 3; ++i, t += 1.0) det.Heartbeat("0/n5", t);
  for (int i = 0; i < 8; ++i, t += 5.0) det.Heartbeat("0/n5", t);
  const double last = t - 5.0;
  // The 1 s intervals fell out of the 4-slot window; the model is pure
  // 5 s rhythm now.
  EXPECT_LT(det.Phi("0/n5", last + 5.0), 1.0);
}

}  // namespace
}  // namespace nw::astrolabe
