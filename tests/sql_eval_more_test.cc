// Additional evaluator coverage: an operator/behavior table driven by
// TEST_P, plus aggregation edge cases not covered by sql_test.cc.
#include <gtest/gtest.h>

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"

namespace nw::astrolabe::sql {
namespace {

Row FixtureRow() {
  Row r;
  r["i"] = std::int64_t{7};
  r["j"] = std::int64_t{-3};
  r["d"] = 2.5;
  r["s"] = "news";
  r["t"] = true;
  r["f"] = false;
  return r;
}

// ---- scalar operator table ----

struct ExprCase {
  const char* expr;
  const char* expected;  // ToString of the result; "null" for null
};

class ScalarTable : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ScalarTable, EvaluatesToExpected) {
  const ExprCase& c = GetParam();
  AttrValue v = EvalScalar(*ParseExpression(c.expr), FixtureRow());
  EXPECT_EQ(v.ToString(), c.expected) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ScalarTable,
    ::testing::Values(ExprCase{"i + j", "4"}, ExprCase{"i - j", "10"},
                      ExprCase{"i * j", "-21"}, ExprCase{"j * j", "9"},
                      ExprCase{"i / 2", "3.5"},   // division is real-valued
                      ExprCase{"i % 4", "3"}, ExprCase{"j % 2", "-1"},
                      ExprCase{"-d", "-2.5"}, ExprCase{"i + d", "9.5"},
                      ExprCase{"1/0", "null"}, ExprCase{"i % 0", "null"}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, ScalarTable,
    ::testing::Values(ExprCase{"i > j", "true"}, ExprCase{"i < j", "false"},
                      ExprCase{"i >= 7", "true"}, ExprCase{"i <= 6", "false"},
                      ExprCase{"i = 7", "true"}, ExprCase{"i != 7", "false"},
                      ExprCase{"d = 2.5", "true"},
                      ExprCase{"i = d", "false"},  // 7 vs 2.5
                      ExprCase{"s = 'news'", "true"},
                      ExprCase{"s < 'z'", "true"},
                      ExprCase{"s > 'news'", "false"}));

INSTANTIATE_TEST_SUITE_P(
    Logic, ScalarTable,
    ::testing::Values(ExprCase{"t AND f", "false"}, ExprCase{"t OR f", "true"},
                      ExprCase{"NOT t", "false"}, ExprCase{"NOT f", "true"},
                      ExprCase{"f AND missing", "false"},  // 3VL short-circuit
                      ExprCase{"t OR missing", "true"},
                      ExprCase{"t AND missing", "null"},
                      ExprCase{"f OR missing", "null"},
                      ExprCase{"NOT missing", "null"}));

INSTANTIATE_TEST_SUITE_P(
    Builtins, ScalarTable,
    ::testing::Values(ExprCase{"COALESCE(missing, missing, i)", "7"},
                      ExprCase{"COALESCE(missing, missing)", "null"},
                      ExprCase{"IF(t, 'yes', 'no')", "'yes'"},
                      ExprCase{"IF(f, 'yes', 'no')", "'no'"},
                      ExprCase{"IF(missing, 1, 2)", "null"},
                      ExprCase{"MINOF(i, j)", "-3"},
                      ExprCase{"MAXOF(d, 9.5)", "9.5"},
                      ExprCase{"MINOF(missing, i)", "7"},
                      ExprCase{"ISNULL(missing)", "true"},
                      ExprCase{"ISNULL(i)", "false"},
                      ExprCase{"LEN(s)", "4"},
                      ExprCase{"CONTAINS(s, 'ew')", "true"},
                      ExprCase{"CONTAINS(s, 'x')", "false"},
                      ExprCase{"s + '!' ", "'news!'"}));

// ---- aggregation edge cases ----

Table TableOf(std::vector<Row> rows) {
  Table t;
  std::size_t k = 0;
  for (Row& r : rows) {
    RowEntry e;
    e.attrs = std::move(r);
    e.version = 1;
    t.MergeEntry("r" + std::to_string(k++), e, 0.0);
  }
  return t;
}

TEST(AggMore, TopWithFewerRowsThanK) {
  Table t = TableOf({{{"v", AttrValue(std::int64_t{1})},
                      {"k", AttrValue(std::int64_t{10})}},
                     {{"v", AttrValue(std::int64_t{2})},
                      {"k", AttrValue(std::int64_t{5})}}});
  Row r = EvalQuery(ParseQuery("SELECT TOP(9, v ORDER BY k) AS t"), t);
  const ValueList& top = r.at("t").AsList();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].AsInt(), 2);  // k=5 first
  EXPECT_EQ(top[1].AsInt(), 1);
}

TEST(AggMore, TopSkipsRowsWithNullKey) {
  Table t = TableOf({{{"v", AttrValue(std::int64_t{1})}},  // no key attr
                     {{"v", AttrValue(std::int64_t{2})},
                      {"k", AttrValue(std::int64_t{5})}}});
  Row r = EvalQuery(ParseQuery("SELECT TOP(5, v ORDER BY k) AS t"), t);
  EXPECT_EQ(r.at("t").AsList().size(), 1u);
}

TEST(AggMore, AvgOfIntsIsDouble) {
  Table t = TableOf({{{"v", AttrValue(std::int64_t{1})}},
                     {{"v", AttrValue(std::int64_t{2})}}});
  Row r = EvalQuery(ParseQuery("SELECT AVG(v) AS m"), t);
  EXPECT_EQ(r.at("m").type(), AttrValue::Type::kDouble);
  EXPECT_DOUBLE_EQ(r.at("m").AsDouble(), 1.5);
}

TEST(AggMore, SumMixesIntAndDoubleToDouble) {
  Table t = TableOf({{{"v", AttrValue(std::int64_t{1})}},
                     {{"v", AttrValue(0.5)}}});
  Row r = EvalQuery(ParseQuery("SELECT SUM(v) AS s"), t);
  EXPECT_DOUBLE_EQ(r.at("s").AsDouble(), 1.5);
}

TEST(AggMore, WhereOverComputedExpression) {
  Table t = TableOf({{{"a", AttrValue(std::int64_t{2})},
                      {"b", AttrValue(std::int64_t{3})}},
                     {{"a", AttrValue(std::int64_t{5})},
                      {"b", AttrValue(std::int64_t{5})}}});
  Row r = EvalQuery(ParseQuery("SELECT COUNT(*) AS c WHERE a * b > 10"), t);
  EXPECT_EQ(r.at("c").AsInt(), 1);
}

TEST(AggMore, AndBitsIntersectsBitVectors) {
  BitVector x(16), y(16);
  x.Set(1);
  x.Set(2);
  y.Set(2);
  y.Set(3);
  Table t = TableOf({{{"b", AttrValue(x)}}, {{"b", AttrValue(y)}}});
  Row r = EvalQuery(ParseQuery("SELECT AND(b) AS i"), t);
  EXPECT_EQ(r.at("i").AsBits().PopCount(), 1u);
  EXPECT_TRUE(r.at("i").AsBits().Test(2));
}

TEST(AggMore, AggregationOverExpression) {
  Table t = TableOf({{{"a", AttrValue(std::int64_t{2})}},
                     {{"a", AttrValue(std::int64_t{4})}}});
  Row r = EvalQuery(ParseQuery("SELECT MAX(a * a + 1) AS m"), t);
  EXPECT_EQ(r.at("m").AsInt(), 17);
}

TEST(AggMore, SelectManyColumns) {
  Table t = TableOf({{{"a", AttrValue(std::int64_t{1})}}});
  Row r = EvalQuery(
      ParseQuery("SELECT MIN(a) AS c0, MAX(a) AS c1, SUM(a) AS c2, "
                 "AVG(a) AS c3, COUNT(a) AS c4, COUNT(*) AS c5, "
                 "FIRST(1, a) AS c6"),
      t);
  EXPECT_EQ(r.size(), 7u);
}

TEST(AggMore, DeepExpressionNesting) {
  // The recursive-descent parser must handle deep nesting without issue.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + "+1)";
  AttrValue v = EvalScalar(*ParseExpression(expr), {});
  EXPECT_EQ(v.AsInt(), 201);
}

}  // namespace
}  // namespace nw::astrolabe::sql
