// Tests for the §9 forwarding-queue strategies and §5 load feedback.
#include <gtest/gtest.h>

#include <memory>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"
#include "newswire/system.h"

namespace nw::multicast {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

struct Arrival {
  std::size_t leaf;
  std::string id;
  double time;
};

struct StrategyEnv {
  StrategyEnv(std::size_t n, std::size_t branching, MulticastConfig mc)
      : dep([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.seed = 7;
          return cfg;
        }()) {
    for (std::size_t i = 0; i < dep.size(); ++i) {
      svc.push_back(std::make_unique<MulticastService>(dep.agent(i), mc));
      svc.back()->SetDeliveryCallback([this, i](const Item& item) {
        arrivals.push_back(Arrival{i, item.id, dep.sim().Now()});
      });
    }
    dep.WarmStart();
  }

  Item MakeItem(const std::string& id, std::int64_t urgency,
                std::size_t body = 2000) {
    Item item;
    item.id = id;
    item.metadata["urgency"] = urgency;
    item.body_bytes = body;
    item.published_at = dep.sim().Now();
    return item;
  }

  Deployment dep;
  std::vector<std::unique_ptr<MulticastService>> svc;
  std::vector<Arrival> arrivals;  // in delivery order
};

MulticastConfig Constrained(QueueStrategy strategy) {
  MulticastConfig mc;
  mc.queue_strategy = strategy;
  mc.forward_bytes_per_sec = 20'000;  // ~10 items/s of 2KB
  mc.forward_burst_bytes = 4'000;
  mc.report_load = false;
  return mc;
}

// Position of the first arrival of `id` in the global arrival order.
std::size_t FirstArrival(const StrategyEnv& env, const std::string& id) {
  for (std::size_t i = 0; i < env.arrivals.size(); ++i) {
    if (env.arrivals[i].id == id) return i;
  }
  return SIZE_MAX;
}

TEST(QueueStrategy, UrgencyFirstOvertakesBacklog) {
  StrategyEnv env(16, 4, Constrained(QueueStrategy::kUrgencyFirst));
  // 30 routine items queue up, then one flash item.
  for (int k = 0; k < 30; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("routine#" + std::to_string(k), 8));
  }
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("flash#1", 1));
  env.dep.RunFor(120);
  const std::size_t flash_pos = FirstArrival(env, "flash#1");
  ASSERT_NE(flash_pos, SIZE_MAX);
  // The flash item must beat most of the routine backlog.
  std::size_t later_routines = 0;
  for (std::size_t i = flash_pos + 1; i < env.arrivals.size(); ++i) {
    if (env.arrivals[i].id.rfind("routine", 0) == 0) ++later_routines;
  }
  EXPECT_GT(later_routines, 15u * 20u / 2)
      << "flash item did not overtake the backlog";
}

TEST(QueueStrategy, RoundRobinKeepsFifoOrderPerQueue) {
  StrategyEnv env(16, 4, Constrained(QueueStrategy::kRoundRobin));
  for (int k = 0; k < 10; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("item#" + std::to_string(k), 8));
  }
  env.dep.RunFor(120);
  // At any single leaf, items arrive in publication order (per-queue FIFO
  // + in-order simulated links).
  std::map<std::size_t, std::vector<std::string>> per_leaf;
  for (const auto& a : env.arrivals) per_leaf[a.leaf].push_back(a.id);
  for (const auto& [leaf, ids] : per_leaf) {
    for (std::size_t i = 1; i < ids.size(); ++i) {
      EXPECT_LT(ids[i - 1], ids[i]) << "reorder at leaf " << leaf;
    }
  }
}

TEST(QueueStrategy, WeightedRoundRobinFavorsLargerZones) {
  // 38 agents, branching 4, depth 3: top-level zones hold 16 (z0), 16
  // (z1) and 6 (z2) agents. The sender sits in z1, so its level-0 queues
  // are z0 (weight 16) and z2 (weight 6): under a starved budget, WRR
  // lets the backlog toward the 16-member zone complete first.
  StrategyEnv env(38, 4, Constrained(QueueStrategy::kWeightedRoundRobin));
  ASSERT_EQ(env.dep.Depth(), 3u);
  const std::size_t sender = 16;  // first agent of z1
  ASSERT_EQ(env.dep.PathFor(sender).Component(0), "z1");
  for (int k = 0; k < 20; ++k) {
    env.svc[sender]->SendToZone(ZonePath::Root(),
                                env.MakeItem("item#" + std::to_string(k), 8));
  }
  env.dep.RunFor(600);
  // Judge the *publisher's* drain order, not downstream fan-out: for each
  // item, the first arrival inside a zone is its representative receiving
  // it from the sender. The heavier zone's 20th such hand-off must come
  // first.
  std::map<std::string, double> first_in_z0, first_in_z2;
  std::size_t got_z0 = 0, got_z2 = 0;
  for (const auto& a : env.arrivals) {
    const auto& top = env.dep.PathFor(a.leaf).Component(0);
    if (top == "z0") {
      ++got_z0;
      auto [it, fresh] = first_in_z0.try_emplace(a.id, a.time);
      if (!fresh) it->second = std::min(it->second, a.time);
    } else if (top == "z2") {
      ++got_z2;
      auto [it, fresh] = first_in_z2.try_emplace(a.id, a.time);
      if (!fresh) it->second = std::min(it->second, a.time);
    }
  }
  EXPECT_EQ(got_z0, 16u * 20u);
  EXPECT_EQ(got_z2, 6u * 20u);
  double handoff_done_z0 = 0, handoff_done_z2 = 0;
  for (const auto& [id, t] : first_in_z0) {
    handoff_done_z0 = std::max(handoff_done_z0, t);
  }
  for (const auto& [id, t] : first_in_z2) {
    handoff_done_z2 = std::max(handoff_done_z2, t);
  }
  EXPECT_LT(handoff_done_z0, handoff_done_z2)
      << "the heavier zone's backlog should drain first under WRR";
}

TEST(LoadFeedback, ForwardingUpdatesTheLoadAttribute) {
  MulticastConfig mc;
  mc.report_load = true;
  mc.load_report_interval = 1.0;
  DeploymentConfig cfg;
  cfg.num_agents = 16;
  cfg.branching = 4;
  Deployment dep(cfg);
  std::vector<std::unique_ptr<MulticastService>> svc;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    svc.push_back(std::make_unique<MulticastService>(dep.agent(i), mc));
  }
  dep.WarmStart();
  // Saturate the sender with big items relative to its budget.
  MulticastConfig tight = mc;
  for (int k = 0; k < 50; ++k) {
    Item item;
    item.id = "x#" + std::to_string(k);
    item.body_bytes = 50'000;
    svc[0]->SendToZone(ZonePath::Root(), std::move(item));
  }
  dep.RunFor(10);
  const auto& row = dep.agent(0).LocalRow();
  ASSERT_TRUE(row.contains(astrolabe::kAttrLoad));
  EXPECT_GT(row.at(astrolabe::kAttrLoad).AsDouble(), 0.0);
  // An idle node reports (near) zero.
  const auto& idle = dep.agent(15).LocalRow();
  if (idle.contains(astrolabe::kAttrLoad)) {
    EXPECT_LT(idle.at(astrolabe::kAttrLoad).AsDouble(), 0.05);
  }
  (void)tight;
}

TEST(LoadFeedback, CanBeDisabled) {
  MulticastConfig mc;
  mc.report_load = false;
  DeploymentConfig cfg;
  cfg.num_agents = 4;
  Deployment dep(cfg);
  std::vector<std::unique_ptr<MulticastService>> svc;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    svc.push_back(std::make_unique<MulticastService>(dep.agent(i), mc));
  }
  dep.WarmStart();
  Item item;
  item.id = "y#1";
  item.body_bytes = 1000;
  svc[0]->SendToZone(ZonePath::Root(), std::move(item));
  dep.RunFor(20);
  EXPECT_FALSE(dep.agent(0).LocalRow().contains(astrolabe::kAttrLoad));
}

TEST(QueueStrategy, NamesAreStable) {
  EXPECT_STREQ(QueueStrategyName(QueueStrategy::kWeightedRoundRobin),
               "weighted-round-robin");
  EXPECT_STREQ(QueueStrategyName(QueueStrategy::kRoundRobin), "round-robin");
  EXPECT_STREQ(QueueStrategyName(QueueStrategy::kUrgencyFirst),
               "urgency-first");
}

}  // namespace
}  // namespace nw::multicast
