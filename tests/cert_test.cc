// Tests for the simulated certificate infrastructure: issuance, tamper
// detection, expiry, and chain validation.
#include <gtest/gtest.h>

#include "astrolabe/cert.h"

namespace nw::astrolabe {
namespace {

class CertTest : public ::testing::Test {
 protected:
  CertTest()
      : rng_(99),
        root_keys_(GenerateKeyPair(rng_)),
        root_("root", root_keys_),
        zone_keys_(GenerateKeyPair(rng_)),
        zone_("usa", zone_keys_) {}

  util::DeterministicRng rng_;
  KeyPair root_keys_;
  Authority root_;
  KeyPair zone_keys_;
  Authority zone_;
};

TEST_F(CertTest, IssueAndVerify) {
  Certificate c = root_.Issue(CertKind::kAgent, "n1", 12345,
                              {{"zone", "/usa"}}, 0, 100);
  EXPECT_TRUE(c.VerifySignature());
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 50), CertStatus::kOk);
}

TEST_F(CertTest, TamperedSubjectDetected) {
  Certificate c = root_.Issue(CertKind::kAgent, "n1", 12345, {}, 0, 100);
  c.subject = "evil";
  EXPECT_FALSE(c.VerifySignature());
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 50),
            CertStatus::kBadSignature);
}

TEST_F(CertTest, TamperedClaimsDetected) {
  Certificate c = root_.Issue(CertKind::kFunction, "core", 0,
                              {{"code", "SELECT COUNT(*)"}}, 0, 100);
  c.claims["code"] = "SELECT COUNT(*) AS hacked";
  EXPECT_FALSE(c.VerifySignature());
}

TEST_F(CertTest, TamperedValidityDetected) {
  Certificate c = root_.Issue(CertKind::kAgent, "n1", 1, {}, 0, 100);
  c.not_after = 1e9;
  EXPECT_FALSE(c.VerifySignature());
}

TEST_F(CertTest, ExpiryAndNotYetValid) {
  Certificate c = root_.Issue(CertKind::kAgent, "n1", 1, {}, 10, 100);
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 5),
            CertStatus::kNotYetValid);
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 50), CertStatus::kOk);
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 200),
            CertStatus::kExpired);
}

TEST_F(CertTest, UntrustedIssuerRejected) {
  util::DeterministicRng other_rng(7);
  Authority rogue("rogue", GenerateKeyPair(other_rng));
  Certificate c = rogue.Issue(CertKind::kAgent, "n1", 1, {}, 0, 100);
  EXPECT_TRUE(c.VerifySignature());  // internally consistent...
  EXPECT_EQ(ValidateChain(c, {}, root_.public_key(), 50),
            CertStatus::kUntrustedIssuer);  // ...but not trusted
}

TEST_F(CertTest, TwoLevelChainValidates) {
  // root -> zone authority -> agent cert.
  Certificate zone_cert = root_.Issue(CertKind::kZoneAuthority, "usa",
                                      zone_.public_key(), {}, 0, 1000);
  Certificate agent_cert = zone_.Issue(CertKind::kAgent, "n1", 1, {}, 0, 1000);
  EXPECT_EQ(ValidateChain(agent_cert, {zone_cert}, root_.public_key(), 50),
            CertStatus::kOk);
  // Without the intermediate the chain cannot be established.
  EXPECT_EQ(ValidateChain(agent_cert, {}, root_.public_key(), 50),
            CertStatus::kUntrustedIssuer);
}

TEST_F(CertTest, ExpiredIntermediateBreaksChain) {
  Certificate zone_cert = root_.Issue(CertKind::kZoneAuthority, "usa",
                                      zone_.public_key(), {}, 0, 10);
  Certificate agent_cert = zone_.Issue(CertKind::kAgent, "n1", 1, {}, 0, 1000);
  EXPECT_EQ(ValidateChain(agent_cert, {zone_cert}, root_.public_key(), 500),
            CertStatus::kUntrustedIssuer);
}

TEST_F(CertTest, DifferentPayloadsDifferentDigests) {
  Certificate a = root_.Issue(CertKind::kAgent, "n1", 1, {}, 0, 100);
  Certificate b = root_.Issue(CertKind::kAgent, "n2", 1, {}, 0, 100);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST_F(CertTest, SignaturesDependOnKey) {
  util::DeterministicRng rng2(123);
  const KeyPair k1 = GenerateKeyPair(rng2);
  const KeyPair k2 = GenerateKeyPair(rng2);
  const std::uint64_t digest = 0xabcdef;
  EXPECT_NE(SignDigest(k1.priv, digest), SignDigest(k2.priv, digest));
  EXPECT_TRUE(VerifyDigest(k1.pub, digest, SignDigest(k1.priv, digest)));
  EXPECT_FALSE(VerifyDigest(k2.pub, digest, SignDigest(k1.priv, digest)));
}

}  // namespace
}  // namespace nw::astrolabe
