// Tests for the SQL pretty-printer, including the parse -> print ->
// parse -> evaluate round-trip property over randomly generated
// expressions and queries.
#include <gtest/gtest.h>

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "astrolabe/sql/printer.h"
#include "util/rng.h"

namespace nw::astrolabe::sql {
namespace {

TEST(Printer, CanonicalizesExpressions) {
  EXPECT_EQ(ToString(*ParseExpression("1+2*3")), "(1 + (2 * 3))");
  EXPECT_EQ(ToString(*ParseExpression("(1+2)*3")), "((1 + 2) * 3)");
  EXPECT_EQ(ToString(*ParseExpression("NOT a AND b")),
            "((NOT a) AND b)");
  EXPECT_EQ(ToString(*ParseExpression("-x")), "(-x)");
  EXPECT_EQ(ToString(*ParseExpression("BIT(subs, 7)")), "BIT(subs, 7)");
  EXPECT_EQ(ToString(*ParseExpression("'a' + 'b'")), "('a' + 'b')");
  EXPECT_EQ(ToString(*ParseExpression("null")), "NULL");
  EXPECT_EQ(ToString(*ParseExpression("true OR false")), "(TRUE OR FALSE)");
}

TEST(Printer, CanonicalizesQueries) {
  const Query q = ParseQuery(
      "select top(3, contacts order by load) as contacts, sum(nmembers) as "
      "n, count(*) where load < 0.5");
  EXPECT_EQ(ToString(q),
            "SELECT TOP(3, contacts ORDER BY load ASC) AS contacts, "
            "SUM(nmembers) AS n, COUNT(*) AS col2 WHERE (load < 0.5)");
}

TEST(Printer, PrintedQueryReparses) {
  for (const char* src : {
           "SELECT MIN(a) AS lo, MAX(a) AS hi",
           "SELECT COUNT(*) AS c WHERE x = 'str' AND y >= 2",
           "SELECT FIRST(5, contacts) AS f, OR(subs) AS subs",
           "SELECT AVG(load) AS mean WHERE NOT (a OR b)",
           "SELECT TOP(2, v ORDER BY k DESC) AS t",
       }) {
    const Query q1 = ParseQuery(src);
    const std::string printed = ToString(q1);
    const Query q2 = ParseQuery(printed);
    EXPECT_EQ(printed, ToString(q2)) << src;  // fixpoint after one print
  }
}

// ---- randomized round-trip: print(parse(e)) evaluates identically ----

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ExprPtr RandomExpr(util::DeterministicRng& rng, int depth) {
    if (depth <= 0 || rng.NextBool(0.3)) {
      switch (rng.NextBelow(5)) {
        case 0: return Expr::Literal(AttrValue(std::int64_t(rng.NextBelow(100))));
        case 1: return Expr::Literal(AttrValue(rng.NextDouble() * 8));
        case 2: return Expr::Literal(AttrValue(rng.NextBool(0.5)));
        case 3: return Expr::Attr("a" + std::to_string(rng.NextBelow(4)));
        default: return Expr::Literal(AttrValue("s" + std::to_string(rng.NextBelow(3))));
      }
    }
    switch (rng.NextBelow(4)) {
      case 0: {
        static const BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                     BinOp::kDiv, BinOp::kEq, BinOp::kNe,
                                     BinOp::kLt, BinOp::kLe, BinOp::kGt,
                                     BinOp::kGe, BinOp::kAnd, BinOp::kOr};
        return Expr::Binary(kOps[rng.NextBelow(12)], RandomExpr(rng, depth - 1),
                            RandomExpr(rng, depth - 1));
      }
      case 1:
        return Expr::Unary(ExprKind::kUnaryNeg, RandomExpr(rng, depth - 1));
      case 2:
        return Expr::Unary(ExprKind::kNot, RandomExpr(rng, depth - 1));
      default: {
        std::vector<ExprPtr> args;
        args.push_back(RandomExpr(rng, depth - 1));
        args.push_back(RandomExpr(rng, depth - 1));
        return Expr::Call(rng.NextBool(0.5) ? "COALESCE" : "MINOF",
                          std::move(args));
      }
    }
  }

  Row RandomRow(util::DeterministicRng& rng) {
    Row row;
    for (int i = 0; i < 4; ++i) {
      const std::string name = "a" + std::to_string(i);
      switch (rng.NextBelow(4)) {
        case 0: row[name] = std::int64_t(rng.NextBelow(50)); break;
        case 1: row[name] = rng.NextDouble(); break;
        case 2: row[name] = rng.NextBool(0.5); break;
        default: break;  // leave missing -> null
      }
    }
    return row;
  }
};

TEST_P(RoundTripProperty, PrintedExpressionEvaluatesIdentically) {
  util::DeterministicRng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr original = RandomExpr(rng, 4);
    const std::string printed = ToString(*original);
    ExprPtr reparsed;
    ASSERT_NO_THROW(reparsed = ParseExpression(printed)) << printed;
    EXPECT_EQ(printed, ToString(*reparsed)) << "print not a fixpoint";
    for (int r = 0; r < 5; ++r) {
      Row row = RandomRow(rng);
      AttrValue a, b;
      bool threw_a = false, threw_b = false;
      try {
        a = EvalScalar(*original, row);
      } catch (const TypeError&) {
        threw_a = true;
      }
      try {
        b = EvalScalar(*reparsed, row);
      } catch (const TypeError&) {
        threw_b = true;
      }
      ASSERT_EQ(threw_a, threw_b) << printed;
      if (!threw_a) {
        EXPECT_TRUE((a.IsNull() && b.IsNull()) || a.Equals(b))
            << printed << " -> " << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(3u, 17u, 71u, 337u));

}  // namespace
}  // namespace nw::astrolabe::sql
