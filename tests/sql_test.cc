// Tests for the aggregation SQL dialect: lexer, parser, scalar evaluation
// and aggregation over tables.
#include <gtest/gtest.h>

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/lexer.h"
#include "astrolabe/sql/parser.h"
#include "astrolabe/table.h"

namespace nw::astrolabe::sql {
namespace {

// ---------- lexer ----------

TEST(Lexer, TokenizesKeywordsCaseInsensitively) {
  auto toks = Lex("SeLeCt min(x) As y");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::kSelect);
  EXPECT_EQ(toks[1].kind, TokKind::kMin);
  EXPECT_EQ(toks[3].kind, TokKind::kIdent);
  EXPECT_EQ(toks[3].text, "x");
  EXPECT_EQ(toks[5].kind, TokKind::kAs);
}

TEST(Lexer, NumbersAndStrings) {
  auto toks = Lex("42 3.25 1e3 'hello world'");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].dbl_val, 3.25);
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[2].dbl_val, 1000.0);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "hello world");
}

TEST(Lexer, Operators) {
  auto toks = Lex("<= >= != <> == = < >");
  EXPECT_EQ(toks[0].kind, TokKind::kLe);
  EXPECT_EQ(toks[1].kind, TokKind::kGe);
  EXPECT_EQ(toks[2].kind, TokKind::kNe);
  EXPECT_EQ(toks[3].kind, TokKind::kNe);
  EXPECT_EQ(toks[4].kind, TokKind::kEq);
  EXPECT_EQ(toks[5].kind, TokKind::kEq);
  EXPECT_EQ(toks[6].kind, TokKind::kLt);
  EXPECT_EQ(toks[7].kind, TokKind::kGt);
}

TEST(Lexer, RejectsMalformedInput) {
  EXPECT_THROW(Lex("'unterminated"), ParseError);
  EXPECT_THROW(Lex("a ! b"), ParseError);
  EXPECT_THROW(Lex("#"), ParseError);
}

// ---------- parser ----------

TEST(Parser, ParsesDefaultCoreShape) {
  Query q = ParseQuery(
      "SELECT TOP(3, contacts ORDER BY load ASC) AS contacts, "
      "SUM(nmembers) AS nmembers, AVG(load) AS load");
  ASSERT_EQ(q.items.size(), 3u);
  EXPECT_EQ(q.items[0].agg, AggKind::kTop);
  EXPECT_EQ(q.items[0].k, 3);
  EXPECT_EQ(q.items[0].out_name, "contacts");
  EXPECT_FALSE(q.items[0].descending);
  EXPECT_EQ(q.items[1].agg, AggKind::kSum);
  EXPECT_EQ(q.items[2].agg, AggKind::kAvg);
}

TEST(Parser, DefaultOutputNames) {
  Query q = ParseQuery("SELECT MAX(load), COUNT(*)");
  EXPECT_EQ(q.items[0].out_name, "load");
  EXPECT_EQ(q.items[1].out_name, "col1");
}

TEST(Parser, DuplicateOutputNamesRejected) {
  EXPECT_THROW(ParseQuery("SELECT MAX(x), MIN(x)"), ParseError);
  EXPECT_NO_THROW(ParseQuery("SELECT MAX(x) AS a, MIN(x) AS b"));
}

TEST(Parser, WhereClause) {
  Query q = ParseQuery("SELECT COUNT(*) WHERE load < 0.5 AND alive = true");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, ExprKind::kBinary);
  EXPECT_EQ(q.where->op, BinOp::kAnd);
}

TEST(Parser, RejectsMalformedQueries) {
  EXPECT_THROW(ParseQuery("MAX(x)"), ParseError);            // no SELECT
  EXPECT_THROW(ParseQuery("SELECT x"), ParseError);          // bare attr
  EXPECT_THROW(ParseQuery("SELECT MAX(x"), ParseError);      // unbalanced
  EXPECT_THROW(ParseQuery("SELECT FIRST(0, x)"), ParseError);  // k <= 0
  EXPECT_THROW(ParseQuery("SELECT TOP(2, x)"), ParseError);  // missing ORDER
  EXPECT_THROW(ParseQuery("SELECT MAX(x) trailing"), ParseError);
}

TEST(Parser, ExpressionPrecedence) {
  // 1 + 2 * 3 = 7, not 9.
  auto e = ParseExpression("1 + 2 * 3");
  EXPECT_EQ(EvalScalar(*e, {}).AsInt(), 7);
  e = ParseExpression("(1 + 2) * 3");
  EXPECT_EQ(EvalScalar(*e, {}).AsInt(), 9);
  e = ParseExpression("2 + 3 < 6 AND NOT false");
  EXPECT_TRUE(EvalScalar(*e, {}).AsBool());
}

// ---------- scalar evaluation ----------

Row MakeRow() {
  Row r;
  r["load"] = 0.25;
  r["n"] = std::int64_t{4};
  r["name"] = "ithaca";
  r["alive"] = true;
  BitVector bv(64);
  bv.Set(7);
  r["subs"] = bv;
  r["contacts"] = ValueList{AttrValue(std::int64_t{1}), AttrValue(std::int64_t{2})};
  return r;
}

TEST(Eval, AttributeLookupAndArithmetic) {
  Row r = MakeRow();
  EXPECT_DOUBLE_EQ(EvalScalar(*ParseExpression("load * 4"), r).AsDouble(), 1.0);
  EXPECT_EQ(EvalScalar(*ParseExpression("n + 1"), r).AsInt(), 5);
  EXPECT_EQ(EvalScalar(*ParseExpression("n % 3"), r).AsInt(), 1);
  EXPECT_EQ(EvalScalar(*ParseExpression("-n"), r).AsInt(), -4);
}

TEST(Eval, MissingAttributeIsNullAndPropagates) {
  Row r = MakeRow();
  EXPECT_TRUE(EvalScalar(*ParseExpression("missing"), r).IsNull());
  EXPECT_TRUE(EvalScalar(*ParseExpression("missing + 1"), r).IsNull());
  EXPECT_TRUE(EvalScalar(*ParseExpression("missing = 1"), r).IsNull());
}

TEST(Eval, ThreeValuedLogic) {
  Row r;  // everything missing
  // false AND null = false; true OR null = true.
  EXPECT_FALSE(EvalScalar(*ParseExpression("false AND missing"), r).AsBool());
  EXPECT_TRUE(EvalScalar(*ParseExpression("true OR missing"), r).AsBool());
  EXPECT_TRUE(EvalScalar(*ParseExpression("true AND missing"), r).IsNull());
}

TEST(Eval, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(EvalScalar(*ParseExpression("1 / 0"), {}).IsNull());
  EXPECT_TRUE(EvalScalar(*ParseExpression("1 % 0"), {}).IsNull());
}

TEST(Eval, StringOps) {
  Row r = MakeRow();
  EXPECT_TRUE(EvalScalar(*ParseExpression("name = 'ithaca'"), r).AsBool());
  EXPECT_EQ(EvalScalar(*ParseExpression("name + '-x'"), r).AsString(),
            "ithaca-x");
  EXPECT_TRUE(
      EvalScalar(*ParseExpression("CONTAINS(name, 'thac')"), r).AsBool());
  EXPECT_EQ(EvalScalar(*ParseExpression("LEN(name)"), r).AsInt(), 6);
}

TEST(Eval, Builtins) {
  Row r = MakeRow();
  EXPECT_TRUE(EvalScalar(*ParseExpression("BIT(subs, 7)"), r).AsBool());
  EXPECT_FALSE(EvalScalar(*ParseExpression("BIT(subs, 8)"), r).AsBool());
  EXPECT_FALSE(EvalScalar(*ParseExpression("BIT(subs, 9999)"), r).AsBool());
  EXPECT_TRUE(EvalScalar(*ParseExpression("CONTAINS(contacts, 2)"), r).AsBool());
  EXPECT_FALSE(EvalScalar(*ParseExpression("CONTAINS(contacts, 3)"), r).AsBool());
  EXPECT_EQ(EvalScalar(*ParseExpression("COALESCE(missing, n)"), r).AsInt(), 4);
  EXPECT_EQ(EvalScalar(*ParseExpression("IF(alive, 1, 2)"), r).AsInt(), 1);
  EXPECT_EQ(EvalScalar(*ParseExpression("MINOF(n, 2)"), r).AsInt(), 2);
  EXPECT_EQ(EvalScalar(*ParseExpression("MAXOF(n, 2)"), r).AsInt(), 4);
  EXPECT_TRUE(EvalScalar(*ParseExpression("ISNULL(missing)"), r).AsBool());
  EXPECT_THROW(EvalScalar(*ParseExpression("NOSUCHFN(1)"), r), TypeError);
}

TEST(Eval, PredicateMapsNullAndErrorsToFalse) {
  Row r = MakeRow();
  EXPECT_FALSE(EvalPredicate(*ParseExpression("missing > 1"), r));
  EXPECT_FALSE(EvalPredicate(*ParseExpression("name > 1"), r));  // type error
  EXPECT_TRUE(EvalPredicate(*ParseExpression("n > 1"), r));
}

// ---------- aggregation ----------

Table MakeTable() {
  Table t;
  auto add = [&](const std::string& key, double load, std::int64_t members,
                 std::int64_t contact) {
    RowEntry e;
    e.attrs["load"] = load;
    e.attrs["nmembers"] = members;
    e.attrs["contacts"] = ValueList{AttrValue(contact)};
    BitVector bv(16);
    bv.Set(static_cast<std::size_t>(contact));
    e.attrs["subs"] = bv;
    e.version = 1;
    t.MergeEntry(key, e, 0.0);
  };
  add("a", 0.9, 10, 1);
  add("b", 0.1, 20, 2);
  add("c", 0.5, 30, 3);
  return t;
}

TEST(Agg, MinMaxSumAvgCount) {
  Table t = MakeTable();
  Row r = EvalQuery(ParseQuery("SELECT MIN(load) AS lo, MAX(load) AS hi, "
                               "SUM(nmembers) AS n, AVG(load) AS avg, "
                               "COUNT(*) AS cnt"),
                    t);
  EXPECT_DOUBLE_EQ(r.at("lo").AsDouble(), 0.1);
  EXPECT_DOUBLE_EQ(r.at("hi").AsDouble(), 0.9);
  EXPECT_EQ(r.at("n").AsInt(), 60);
  EXPECT_NEAR(r.at("avg").AsDouble(), 0.5, 1e-9);
  EXPECT_EQ(r.at("cnt").AsInt(), 3);
}

TEST(Agg, WhereFiltersRows) {
  Table t = MakeTable();
  Row r = EvalQuery(
      ParseQuery("SELECT SUM(nmembers) AS n, COUNT(*) AS c WHERE load < 0.6"),
      t);
  EXPECT_EQ(r.at("n").AsInt(), 50);
  EXPECT_EQ(r.at("c").AsInt(), 2);
}

TEST(Agg, OrAggregatesBitVectors) {
  Table t = MakeTable();
  Row r = EvalQuery(ParseQuery("SELECT OR(subs) AS subs"), t);
  const BitVector& bv = r.at("subs").AsBits();
  EXPECT_TRUE(bv.Test(1));
  EXPECT_TRUE(bv.Test(2));
  EXPECT_TRUE(bv.Test(3));
  EXPECT_EQ(bv.PopCount(), 3u);
}

TEST(Agg, OrAndOverIntMasks) {
  Table t;
  RowEntry e1, e2;
  e1.attrs["mask"] = std::int64_t{0b0011};
  e2.attrs["mask"] = std::int64_t{0b0110};
  e1.version = e2.version = 1;
  t.MergeEntry("x", e1, 0.0);
  t.MergeEntry("y", e2, 0.0);
  Row r = EvalQuery(ParseQuery("SELECT OR(mask) AS u, AND(mask) AS i"), t);
  EXPECT_EQ(r.at("u").AsInt(), 0b0111);
  EXPECT_EQ(r.at("i").AsInt(), 0b0010);
}

TEST(Agg, TopOrdersAndFlattensContactLists) {
  Table t = MakeTable();
  Row r = EvalQuery(
      ParseQuery("SELECT TOP(2, contacts ORDER BY load ASC) AS reps"), t);
  const ValueList& reps = r.at("reps").AsList();
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].AsInt(), 2);  // load 0.1
  EXPECT_EQ(reps[1].AsInt(), 3);  // load 0.5
}

TEST(Agg, TopDescending) {
  Table t = MakeTable();
  Row r = EvalQuery(
      ParseQuery("SELECT TOP(1, contacts ORDER BY nmembers DESC) AS reps"), t);
  EXPECT_EQ(r.at("reps").AsList()[0].AsInt(), 3);  // 30 members
}

TEST(Agg, FirstCollectsUpToK) {
  Table t = MakeTable();
  Row r = EvalQuery(ParseQuery("SELECT FIRST(5, contacts) AS all_contacts"), t);
  EXPECT_EQ(r.at("all_contacts").AsList().size(), 3u);
  r = EvalQuery(ParseQuery("SELECT FIRST(2, contacts) AS some"), t);
  EXPECT_EQ(r.at("some").AsList().size(), 2u);
}

TEST(Agg, NullColumnsAreOmitted) {
  Table t = MakeTable();
  Row r = EvalQuery(ParseQuery("SELECT MAX(missing) AS m, SUM(missing) AS s"), t);
  EXPECT_FALSE(r.contains("m"));   // MAX of nothing -> omitted
  EXPECT_EQ(r.at("s").AsInt(), 0); // SUM of nothing -> 0
}

TEST(Agg, MixedTypeRowsSkippedNotFatal) {
  Table t = MakeTable();
  RowEntry bad;
  bad.attrs["load"] = "not-a-number";
  bad.version = 1;
  t.MergeEntry("weird", bad, 0.0);
  Row r = EvalQuery(ParseQuery("SELECT AVG(load) AS avg, COUNT(*) AS c"), t);
  EXPECT_NEAR(r.at("avg").AsDouble(), 0.5, 1e-9);  // bad row skipped
  EXPECT_EQ(r.at("c").AsInt(), 4);                 // but still counted by *
}

TEST(Agg, EmptyTable) {
  Table t;
  Row r = EvalQuery(ParseQuery("SELECT COUNT(*) AS c, SUM(x) AS s, MAX(x) AS m"), t);
  EXPECT_EQ(r.at("c").AsInt(), 0);
  EXPECT_EQ(r.at("s").AsInt(), 0);
  EXPECT_FALSE(r.contains("m"));
}

TEST(Agg, CountExprCountsNonNull) {
  Table t = MakeTable();
  RowEntry partial;
  partial.version = 1;  // no attrs at all
  t.MergeEntry("empty", partial, 0.0);
  Row r = EvalQuery(ParseQuery("SELECT COUNT(load) AS c, COUNT(*) AS all_c"), t);
  EXPECT_EQ(r.at("c").AsInt(), 3);
  EXPECT_EQ(r.at("all_c").AsInt(), 4);
}

}  // namespace
}  // namespace nw::astrolabe::sql
