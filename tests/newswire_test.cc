// Tests for the NewsWire application layer: item model, message cache,
// publisher flow control and authentication, subscriber repair and state
// transfer, feed agents, and the whole-system harness.
#include <gtest/gtest.h>

#include "newswire/feed_agent.h"
#include "newswire/message_cache.h"
#include "newswire/news_item.h"
#include "newswire/system.h"

namespace nw::newswire {
namespace {

// ---------- NewsItem ----------

NewsItem MakeItem(const std::string& pub, std::uint64_t seq,
                  const std::string& subject) {
  NewsItem item;
  item.publisher = pub;
  item.seq = seq;
  item.subject = subject;
  item.headline = "headline " + std::to_string(seq);
  item.published_at = 1.5;
  return item;
}

TEST(NewsItem, IdCombinesPublisherAndSeq) {
  EXPECT_EQ(MakeItem("ap", 7, "x").Id(), "ap#7");
}

TEST(NewsItem, MetadataRoundTrip) {
  NewsItem item = MakeItem("reuters", 42, "world.politics");
  item.categories = 0b101;
  item.revision = 3;
  item.supersedes = "reuters#40";
  item.urgency = 2;
  item.signature = 0xdeadbeef;
  astrolabe::Row row = item.ToMetadata();
  row["subject"] = item.subject;  // stamped by the pub/sub layer
  auto back = NewsItem::FromMetadata(row);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Id(), item.Id());
  EXPECT_EQ(back->subject, item.subject);
  EXPECT_EQ(back->categories, item.categories);
  EXPECT_EQ(back->revision, 3);
  EXPECT_EQ(back->supersedes, "reuters#40");
  EXPECT_EQ(back->urgency, 2);
  EXPECT_EQ(back->signature, 0xdeadbeefu);
}

TEST(NewsItem, MalformedMetadataRejected) {
  astrolabe::Row row;
  row["publisher"] = "ap";  // missing everything else
  EXPECT_FALSE(NewsItem::FromMetadata(row).has_value());
  row["seq"] = "not-an-int";
  EXPECT_FALSE(NewsItem::FromMetadata(row).has_value());
}

TEST(NewsItem, DigestCoversContent) {
  NewsItem a = MakeItem("ap", 1, "x");
  NewsItem b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  b.headline = "tampered";
  EXPECT_NE(a.Digest(), b.Digest());
}

// ---------- MessageCache ----------

TEST(MessageCache, InsertAndDuplicate) {
  MessageCache cache;
  EXPECT_TRUE(cache.Insert(MakeItem("ap", 1, "x"), 1.0));
  EXPECT_FALSE(cache.Insert(MakeItem("ap", 1, "x"), 2.0));
  EXPECT_EQ(cache.stats().duplicates, 1u);
  EXPECT_TRUE(cache.Contains("ap#1"));
}

TEST(MessageCache, RevisionFusionDropsSuperseded) {
  MessageCache cache;
  cache.Insert(MakeItem("ap", 1, "x"), 1.0);
  NewsItem rev2 = MakeItem("ap", 2, "x");
  rev2.supersedes = "ap#1";
  rev2.revision = 2;
  EXPECT_TRUE(cache.Insert(rev2, 2.0));
  EXPECT_FALSE(cache.Contains("ap#1"));  // fused away (§9)
  EXPECT_TRUE(cache.Contains("ap#2"));
  EXPECT_EQ(cache.stats().superseded_dropped, 1u);
}

TEST(MessageCache, LateStaleRevisionRejected) {
  MessageCache cache;
  NewsItem rev2 = MakeItem("ap", 2, "x");
  rev2.supersedes = "ap#1";
  EXPECT_TRUE(cache.Insert(rev2, 1.0));
  // The original arrives late (out of order): rejected.
  EXPECT_FALSE(cache.Insert(MakeItem("ap", 1, "x"), 2.0));
  EXPECT_EQ(cache.stats().stale_revisions_rejected, 1u);
}

TEST(MessageCache, FusionCanBeDisabled) {
  MessageCache::Config cfg;
  cfg.fuse_revisions = false;
  MessageCache cache(cfg);
  NewsItem rev2 = MakeItem("ap", 2, "x");
  rev2.supersedes = "ap#1";
  cache.Insert(rev2, 1.0);
  EXPECT_TRUE(cache.Insert(MakeItem("ap", 1, "x"), 2.0));
}

TEST(MessageCache, CapacityEvictsOldest) {
  MessageCache::Config cfg;
  cfg.capacity = 3;
  MessageCache cache(cfg);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    cache.Insert(MakeItem("ap", i, "x"), double(i));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Contains("ap#1"));
  EXPECT_FALSE(cache.Contains("ap#2"));
  EXPECT_TRUE(cache.Contains("ap#5"));
  EXPECT_EQ(cache.stats().evicted, 2u);
}

TEST(MessageCache, ItemsSinceFiltersByTimeAndSubject) {
  MessageCache cache;
  cache.Insert(MakeItem("ap", 1, "tech"), 1.0);
  cache.Insert(MakeItem("ap", 2, "sports"), 5.0);
  cache.Insert(MakeItem("ap", 3, "tech"), 9.0);
  EXPECT_EQ(cache.ItemsSince(0.0).size(), 3u);
  EXPECT_EQ(cache.ItemsSince(4.0).size(), 2u);
  EXPECT_EQ(cache.ItemsSince(0.0, {"tech"}).size(), 2u);
  EXPECT_EQ(cache.IdsSince(4.0).size(), 2u);
}

// ---------- the whole system ----------

SystemConfig SmallSystem(std::size_t subs, std::size_t pubs = 1,
                         std::uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.num_subscribers = subs;
  cfg.num_publishers = pubs;
  cfg.branching = 4;
  cfg.seed = seed;
  cfg.catalog_size = 8;
  cfg.subjects_per_subscriber = 2;
  return cfg;
}

TEST(System, PublishedItemsReachExactlyTheSubscribers) {
  NewswireSystem sys(SmallSystem(15));
  sys.RunFor(5);
  const std::string subject = sys.catalog()[0];
  const std::string id = sys.PublishArticle(0, subject);
  ASSERT_FALSE(id.empty());
  sys.RunFor(30);
  EXPECT_EQ(sys.DeliveredCount(id), sys.ExpectedRecipients(subject));
}

TEST(System, AllCatalogSubjectsRouteCorrectly) {
  NewswireSystem sys(SmallSystem(30));
  sys.RunFor(5);
  std::vector<std::pair<std::string, std::string>> published;
  for (const auto& subject : sys.catalog()) {
    const std::string id = sys.PublishArticle(0, subject);
    ASSERT_FALSE(id.empty());
    published.emplace_back(id, subject);
  }
  sys.RunFor(60);
  for (const auto& [id, subject] : published) {
    EXPECT_EQ(sys.DeliveredCount(id), sys.ExpectedRecipients(subject))
        << subject;
  }
}

TEST(System, LatencyIsSecondsNotMinutes) {
  NewswireSystem sys(SmallSystem(30));
  sys.RunFor(5);
  sys.PublishArticle(0, sys.catalog()[0]);
  sys.RunFor(60);
  ASSERT_GT(sys.latencies().Count(), 0u);
  EXPECT_LT(sys.latencies().Max(), 10.0);  // "tens of seconds" target (§1)
}

TEST(System, PublisherFlowControlThrottlesFlood) {
  SystemConfig cfg = SmallSystem(15);
  cfg.publisher_rate = 2.0;  // two items/s admitted
  cfg.publisher_burst = 2.0;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    if (!sys.PublishArticle(0, sys.catalog()[0]).empty()) ++admitted;
  }
  EXPECT_LE(admitted, 15);  // burst + accumulated tokens only
  EXPECT_GT(sys.publisher(0).stats().throttled, 30u);
}

TEST(System, ForgedItemsRejectedWhenVerificationOn) {
  SystemConfig cfg = SmallSystem(15);
  cfg.verify_publishers = true;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  // A legitimate item flows.
  const std::string subject = sys.catalog()[0];
  const std::string id = sys.PublishArticle(0, subject);
  sys.RunFor(30);
  EXPECT_EQ(sys.DeliveredCount(id), sys.ExpectedRecipients(subject));

  // An impostor publishes under the same name from a subscriber node
  // without the signing key: delivered items must not increase.
  NewsItem forged;
  forged.publisher = "pub0";
  forged.seq = 999;
  forged.subject = subject;
  forged.headline = "FAKE";
  forged.published_at = sys.Now();
  forged.signature = 0x1234;  // wrong key
  const std::size_t node = sys.subscriber_node(0);
  sys.pubsub_at(node).Publish(forged.ToMulticastItem(), subject);
  sys.RunFor(30);
  EXPECT_EQ(sys.DeliveredCount("pub0#999"), 0u);
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    rejected += sys.subscriber(i).stats().bad_signature;
  }
  EXPECT_GT(rejected, 0u);
}

TEST(System, RevisionsFuseInSubscriberCaches) {
  NewswireSystem sys(SmallSystem(15));
  sys.RunFor(5);
  const std::string subject = sys.catalog()[0];
  NewsItem story;
  story.subject = subject;
  story.headline = "v1";
  ASSERT_TRUE(sys.publisher(0).Publish(story));
  sys.RunFor(20);
  NewsItem prev;
  prev.publisher = "pub0";
  prev.seq = 1;
  prev.revision = 1;
  prev.subject = subject;
  NewsItem updated;
  updated.subject = subject;
  updated.headline = "v2";
  ASSERT_TRUE(sys.publisher(0).PublishRevision(prev, updated));
  sys.RunFor(30);
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    Subscriber& sub = sys.subscriber(i);
    if (sub.cache().Contains("pub0#2")) {
      EXPECT_FALSE(sub.cache().Contains("pub0#1"))
          << "subscriber " << i << " kept a superseded revision";
    }
  }
}

TEST(System, RepairRecoversItemsLostToMessageLoss) {
  SystemConfig cfg = SmallSystem(24, 1, 3);
  cfg.net.loss_prob = 0.25;  // heavy loss
  cfg.subscriber.repair_interval = 5.0;
  cfg.subscriber.repair_window = 300.0;
  cfg.catalog_size = 2;      // everyone shares subjects -> peers can repair
  cfg.subjects_per_subscriber = 2;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  std::vector<std::pair<std::string, std::string>> published;
  for (int k = 0; k < 10; ++k) {
    const std::string subject = sys.catalog()[k % 2];
    const std::string id = sys.PublishArticle(0, subject);
    if (!id.empty()) published.emplace_back(id, subject);
  }
  sys.RunFor(240);  // time for several repair rounds
  std::size_t missing = 0, expected_total = 0;
  for (const auto& [id, subject] : published) {
    expected_total += sys.ExpectedRecipients(subject);
    missing += sys.ExpectedRecipients(subject) - sys.DeliveredCount(id);
  }
  std::uint64_t repaired = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    repaired += sys.subscriber(i).stats().repaired;
  }
  EXPECT_GT(repaired, 0u);  // anti-entropy actually recovered items
  // End-to-end completeness despite 25% loss:
  EXPECT_GT(expected_total, 0u);
  EXPECT_LT(double(missing) / double(expected_total), 0.05);
}

TEST(System, StateTransferCatchesUpAJoiner) {
  SystemConfig cfg = SmallSystem(24);
  cfg.catalog_size = 4;  // > subjects per subscriber: some miss catalog[0]
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  for (int k = 0; k < 5; ++k) {
    sys.PublishArticle(0, sys.catalog()[0]);
  }
  sys.RunFor(20);
  // Find a donor holding the published items, and a joiner that was not
  // subscribed while they were published (its cache misses them).
  std::size_t donor = SIZE_MAX, joiner = SIZE_MAX;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (donor == SIZE_MAX && sys.subscriber(i).cache().size() >= 5) donor = i;
    if (joiner == SIZE_MAX && sys.subscriber(i).cache().size() == 0) joiner = i;
  }
  ASSERT_NE(donor, SIZE_MAX);
  ASSERT_NE(joiner, SIZE_MAX) << "every subscriber already holds the items";
  sys.subscriber(joiner).Subscribe(sys.catalog()[0]);
  const std::size_t before = sys.subscriber(joiner).cache().size();
  sys.subscriber(joiner).RequestStateTransfer(
      sys.subscriber_agent(donor).id());
  sys.RunFor(10);
  EXPECT_GE(sys.subscriber(joiner).cache().size(), before + 1);
  EXPECT_GT(sys.subscriber(joiner).stats().state_transfer, 0u);
}

TEST(System, ScopedPublishConfinesDelivery) {
  SystemConfig cfg = SmallSystem(30);
  cfg.catalog_size = 1;  // everyone subscribes to the same subject
  cfg.subjects_per_subscriber = 1;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  const astrolabe::ZonePath scope = sys.publisher_agent(0).path().Prefix(1);
  const std::string id = sys.PublishArticle(0, sys.catalog()[0], scope);
  ASSERT_FALSE(id.empty());
  sys.RunFor(30);
  std::size_t in_scope = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    const bool inside = scope.IsPrefixOf(sys.subscriber_agent(i).path());
    const bool got = sys.subscriber(i).cache().Contains(id);
    if (inside) ++in_scope;
    EXPECT_EQ(got, inside) << "subscriber " << i;
  }
  EXPECT_GT(in_scope, 0u);
  EXPECT_LT(in_scope, sys.subscriber_count());
}

TEST(System, PublisherPredicateTargetsPremiumSubscribers) {
  SystemConfig cfg = SmallSystem(30);
  cfg.catalog_size = 1;  // everyone subscribes the same subject
  cfg.subjects_per_subscriber = 1;
  NewswireSystem sys(cfg);
  // Half of the subscribers export premium=1 in their MIB; re-aggregate
  // with MAX so a zone advertises whether any premium subscriber exists.
  sys.deployment().InstallFunctionEverywhere("premium",
                                             "SELECT MAX(premium) AS premium");
  for (std::size_t i = 0; i < sys.subscriber_count(); i += 2) {
    sys.subscriber_agent(i).SetLocalAttr("premium", std::int64_t{1});
  }
  sys.deployment().WarmStart();  // refresh replicas with the new attribute
  sys.RunFor(5);
  NewsItem item;
  item.subject = sys.catalog()[0];
  item.headline = "premium only";
  item.forward_predicate = "premium = 1";
  ASSERT_TRUE(sys.publisher(0).Publish(item));
  sys.RunFor(30);
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    const bool premium = (i % 2 == 0);
    EXPECT_EQ(sys.subscriber(i).cache().Contains("pub0#1"), premium)
        << "subscriber " << i;
  }
}

TEST(System, PredicateSurvivesRepairPath) {
  // A repaired copy must not leak to a non-premium subscriber: the
  // predicate is re-evaluated against the local MIB row on repair arrival.
  SystemConfig cfg = SmallSystem(10);
  NewswireSystem sys(cfg);
  NewsItem item;
  item.publisher = "pub0";
  item.seq = 5;
  item.subject = sys.catalog()[0];
  item.forward_predicate = "premium = 1";
  item.published_at = 1.0;
  // Inject directly through the acceptance path via a fake repair batch.
  Subscriber& sub = sys.subscriber(0);
  sub.Subscribe(sys.catalog()[0]);
  Subscriber::ItemBatch batch;
  batch.items.push_back(item);
  const std::size_t wire = batch.WireBytes();
  auto& donor_agent = sys.subscriber_agent(1);
  donor_agent.Send(sim::Message::Make(donor_agent.id(),
                                      sys.subscriber_agent(0).id(),
                                      Subscriber::kRepairType, batch, wire));
  sys.RunFor(5);
  EXPECT_FALSE(sub.cache().Contains("pub0#5"));  // not premium
  sys.subscriber_agent(0).SetLocalAttr("premium", std::int64_t{1});
  donor_agent.Send(sim::Message::Make(donor_agent.id(),
                                      sys.subscriber_agent(0).id(),
                                      Subscriber::kRepairType, batch, wire));
  sys.RunFor(5);
  EXPECT_TRUE(sub.cache().Contains("pub0#5"));  // premium now
}

TEST(System, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    NewswireSystem sys(SmallSystem(15, 1, seed));
    sys.RunFor(5);
    sys.PublishArticle(0, sys.catalog()[0]);
    sys.RunFor(30);
    return sys.total_delivered();
  };
  EXPECT_EQ(run(7), run(7));
}

// ---------- feed agent ----------

TEST(FeedAgent, RepublishesLegacyArticlesIntoNewswire) {
  SystemConfig cfg = SmallSystem(15);
  cfg.catalog_size = 1;
  cfg.subjects_per_subscriber = 1;
  NewswireSystem sys(cfg);

  // A legacy pull site on the same simulated network.
  baseline::PullServer legacy(25);
  sys.deployment().net().AddNode(&legacy);

  FeedAgentConfig fc;
  fc.legacy_server = legacy.id();
  fc.poll_interval = 10.0;
  FeedAgent feed(sys.publisher_agent(0), sys.publisher(0), fc);
  feed.Start();
  sys.RunFor(5);

  // The legacy site posts articles on the catalog subject.
  sys.deployment().sim().At(sys.Now() + 1, [&] {
    legacy.AddArticle(1500, 90, sys.catalog()[0]);
    legacy.AddArticle(900, 90, sys.catalog()[0]);
  });
  sys.RunFor(60);
  EXPECT_EQ(feed.stats().republished, 2u);
  EXPECT_EQ(sys.DeliveredCount("pub0#1"),
            sys.ExpectedRecipients(sys.catalog()[0]));
  EXPECT_EQ(sys.DeliveredCount("pub0#2"),
            sys.ExpectedRecipients(sys.catalog()[0]));
}

}  // namespace
}  // namespace nw::newswire
