// Tests for the centralized pull/push baselines.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/pull.h"
#include "sim/simulator.h"

namespace nw::baseline {
namespace {

class BaselineEnv {
 public:
  explicit BaselineEnv(std::uint64_t seed = 1) : sim(seed), net(sim, cfg()) {}

  static sim::NetworkConfig cfg() {
    sim::NetworkConfig c;
    c.base_latency = 0.05;
    c.jitter_frac = 0.0;
    return c;
  }

  PullClient& AddClient(PullClient::Config config) {
    clients.push_back(std::make_unique<PullClient>(config));
    net.AddNode(clients.back().get());
    return *clients.back();
  }

  sim::Simulator sim;
  sim::Network net;
  std::vector<std::unique_ptr<PullClient>> clients;
};

TEST(PullBaseline, FullPageReturnsWholeFrontPage) {
  BaselineEnv env;
  PullServer server(3);  // tiny front page
  env.net.AddNode(&server);
  env.sim.At(1.0, [&] {
    for (int i = 0; i < 5; ++i) server.AddArticle(1000, 100, "s");
  });
  PullClient::Config cc;
  cc.server = server.id();
  cc.mode = PullMode::kFullPage;
  cc.poll_interval = 10.0;
  cc.start_offset = 2.0;
  auto& client = env.AddClient(cc);
  client.Start();
  env.sim.RunUntil(5.0);
  // One poll: the 3 front-page articles, all new.
  EXPECT_EQ(client.stats().new_articles, 3u);
  EXPECT_EQ(client.stats().redundant_bytes, 0u);
  env.sim.RunUntil(25.0);
  // Two more polls with no new content: everything redundant.
  EXPECT_EQ(client.stats().new_articles, 3u);
  EXPECT_EQ(client.stats().redundant_bytes, 2u * 3u * 1000u);
}

TEST(PullBaseline, DeltaModeSends304WhenNothingChanged) {
  BaselineEnv env;
  PullServer server(25);
  env.net.AddNode(&server);
  env.sim.At(0.5, [&] { server.AddArticle(1000, 100, "s"); });
  PullClient::Config cc;
  cc.server = server.id();
  cc.mode = PullMode::kDeltaSince;
  cc.poll_interval = 10.0;
  cc.start_offset = 1.0;
  auto& client = env.AddClient(cc);
  client.Start();
  env.sim.RunUntil(35.0);  // polls at t=1, 11, 21, 31
  EXPECT_EQ(client.stats().new_articles, 1u);
  EXPECT_EQ(client.stats().redundant_bytes, 0u);
  EXPECT_EQ(server.stats().not_modified, 3u);
}

TEST(PullBaseline, RssFetchesBodiesOnlyForNewArticles) {
  BaselineEnv env;
  PullServer server(25);
  env.net.AddNode(&server);
  env.sim.At(0.5, [&] {
    server.AddArticle(1000, 50, "s");
    server.AddArticle(1000, 50, "s");
  });
  PullClient::Config cc;
  cc.server = server.id();
  cc.mode = PullMode::kRssSummary;
  cc.poll_interval = 10.0;
  cc.start_offset = 1.0;
  auto& client = env.AddClient(cc);
  client.Start();
  env.sim.RunUntil(8.0);
  EXPECT_EQ(client.stats().new_articles, 2u);
  // Received: 2 summaries + 2 bodies.
  EXPECT_EQ(client.stats().bytes_received, 2u * 50u + 2u * 1000u);
  env.sim.RunUntil(18.0);
  // Second poll: summaries again (redundant), no body fetch.
  EXPECT_EQ(client.stats().new_articles, 2u);
  EXPECT_EQ(client.stats().bytes_received, 4u * 50u + 2u * 1000u);
  EXPECT_EQ(server.stats().requests, 3u);  // 2 summary polls + 1 body fetch
}

TEST(PullBaseline, StalenessBoundedByPollInterval) {
  BaselineEnv env;
  PullServer server(25);
  env.net.AddNode(&server);
  // One article appears right after a poll: it waits ~a full interval.
  env.sim.At(1.5, [&] { server.AddArticle(500, 50, "s"); });
  PullClient::Config cc;
  cc.server = server.id();
  cc.mode = PullMode::kDeltaSince;
  cc.poll_interval = 20.0;
  cc.start_offset = 1.0;
  auto& client = env.AddClient(cc);
  client.Start();
  env.sim.RunUntil(60.0);
  ASSERT_EQ(client.stats().staleness.Count(), 1u);
  EXPECT_NEAR(client.stats().staleness.Mean(), 19.5, 0.5);
}

TEST(PullBaseline, ServerBytesScaleWithClients) {
  BaselineEnv env;
  PullServer server(10);
  env.net.AddNode(&server);
  env.sim.At(0.1, [&] {
    for (int i = 0; i < 10; ++i) server.AddArticle(1000, 100, "s");
  });
  for (int c = 0; c < 20; ++c) {
    PullClient::Config cc;
    cc.server = server.id();
    cc.mode = PullMode::kFullPage;
    cc.poll_interval = 100.0;
    cc.start_offset = 1.0 + c * 0.01;
    env.AddClient(cc).Start();
  }
  env.sim.RunUntil(50.0);
  EXPECT_EQ(server.stats().requests, 20u);
  EXPECT_GE(server.stats().response_bytes, 20u * 10u * 1000u);
}

TEST(DirectPush, DeliversToAllWithUplinkSerialization) {
  sim::Simulator simulator(3);
  sim::NetworkConfig nc;
  nc.base_latency = 0.05;
  nc.jitter_frac = 0.0;
  nc.uplink_bytes_per_sec = 100'000;  // publisher uplink is the bottleneck
  nc.per_message_overhead = 0;
  sim::Network net(simulator, nc);
  DirectPushServer server;
  net.AddNode(&server);
  std::vector<std::unique_ptr<DirectPushClient>> clients;
  for (int i = 0; i < 50; ++i) {
    clients.push_back(std::make_unique<DirectPushClient>());
    net.AddNode(clients.back().get());
    server.AddSubscriber(clients.back()->id());
  }
  Article a;
  a.id = 1;
  a.created_at = 0.0;
  a.body_bytes = 10'000;  // 50 * 10KB at 100KB/s = 5s serialization
  simulator.At(0.0, [&] { server.Publish(a); });
  simulator.RunUntilIdle();
  std::size_t delivered = 0;
  double max_latency = 0;
  for (const auto& c : clients) {
    delivered += c->received();
    max_latency = std::max(max_latency, c->latency().Max());
  }
  EXPECT_EQ(delivered, 50u);
  // The last client waits for the whole fan-out to serialize.
  EXPECT_NEAR(max_latency, 5.05, 0.1);
}

}  // namespace
}  // namespace nw::baseline
