// Additional NewsWire coverage: signature scope binding, feed-agent edge
// cases, archive hook, and cache boundary behavior.
#include <gtest/gtest.h>

#include "newswire/feed_agent.h"
#include "newswire/system.h"

namespace nw::newswire {
namespace {

SystemConfig Small(std::size_t subs = 15, std::uint64_t seed = 2) {
  SystemConfig cfg;
  cfg.num_subscribers = subs;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 4;
  cfg.subjects_per_subscriber = 2;
  cfg.seed = seed;
  return cfg;
}

TEST(Signature, ScopeIsBoundIntoTheSignature) {
  // A valid item whose scope string is widened after signing must fail
  // verification: re-scoping a localized item is tampering.
  SystemConfig cfg = Small();
  cfg.verify_publishers = true;
  cfg.catalog_size = 1;
  cfg.subjects_per_subscriber = 1;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  const astrolabe::ZonePath scope = sys.publisher_agent(0).path().Prefix(1);
  const std::string id = sys.PublishArticle(0, sys.catalog()[0], scope);
  ASSERT_FALSE(id.empty());
  sys.RunFor(20);
  // Pick a subscriber inside scope: it verified and cached the item.
  std::size_t holder = SIZE_MAX;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (sys.subscriber(i).cache().Contains(id)) holder = i;
  }
  ASSERT_NE(holder, SIZE_MAX);
  NewsItem stolen = *sys.subscriber(holder).cache().Find(id);
  stolen.scope = "/";  // widen the scope without the signing key
  EXPECT_FALSE(astrolabe::VerifyDigest(
      /*pub key known to subscribers*/ 0, stolen.Digest(), stolen.signature))
      << "tampered digest should not verify under any key";
  // And re-injected through the pub/sub path, nobody outside accepts it.
  const std::size_t outside_node = sys.subscriber_node(
      (holder + 1) % sys.subscriber_count());
  sys.pubsub_at(outside_node).Publish(stolen.ToMulticastItem(),
                                      stolen.subject);
  sys.RunFor(20);
  std::uint64_t bad = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    bad += sys.subscriber(i).stats().bad_signature;
  }
  EXPECT_GT(bad, 0u);
}

TEST(Signature, ForwardPredicateIsBoundIntoTheSignature) {
  NewsItem item;
  item.publisher = "p";
  item.seq = 1;
  item.subject = "s";
  item.forward_predicate = "premium = 1";
  const auto digest_with = item.Digest();
  item.forward_predicate.clear();  // strip targeting after signing
  EXPECT_NE(item.Digest(), digest_with);
}

TEST(PublisherArchive, PublisherCachesItsOwnItems) {
  NewswireSystem sys(Small());
  sys.RunFor(5);
  const std::string id = sys.PublishArticle(0, sys.catalog()[0]);
  ASSERT_FALSE(id.empty());
  sys.RunFor(5);
  // The publisher core's cache can serve repair for its own output: ask
  // it for a state transfer from a fresh subscriber.
  Subscriber& joiner = sys.subscriber(0);
  joiner.Subscribe(sys.catalog()[0]);
  joiner.RequestStateTransfer(sys.publisher_agent(0).id());
  sys.RunFor(5);
  EXPECT_TRUE(joiner.cache().Contains(id));
}

TEST(FeedAgent, DoesNotRepublishDuplicates) {
  NewswireSystem sys(Small());
  baseline::PullServer legacy(10);
  sys.deployment().net().AddNode(&legacy);
  FeedAgentConfig fc;
  fc.legacy_server = legacy.id();
  fc.poll_interval = 5.0;
  FeedAgent feed(sys.publisher_agent(0), sys.publisher(0), fc);
  feed.Start();
  sys.deployment().sim().At(sys.Now() + 1, [&] {
    legacy.AddArticle(1000, 50, sys.catalog()[0]);
  });
  sys.RunFor(60);  // many polls over the same article
  EXPECT_GT(feed.stats().polls, 5u);
  EXPECT_EQ(feed.stats().republished, 1u);
}

TEST(FeedAgent, ThrottledByPublisherFlowControl) {
  SystemConfig cfg = Small();
  cfg.publisher_rate = 0.001;
  cfg.publisher_burst = 1.0;
  NewswireSystem sys(cfg);
  baseline::PullServer legacy(25);
  sys.deployment().net().AddNode(&legacy);
  FeedAgentConfig fc;
  fc.legacy_server = legacy.id();
  fc.poll_interval = 5.0;
  FeedAgent feed(sys.publisher_agent(0), sys.publisher(0), fc);
  feed.Start();
  sys.deployment().sim().At(sys.Now() + 1, [&] {
    for (int i = 0; i < 5; ++i) legacy.AddArticle(1000, 50, sys.catalog()[0]);
  });
  sys.RunFor(30);
  EXPECT_EQ(feed.stats().republished, 1u);  // burst of 1 admitted
  EXPECT_EQ(feed.stats().throttled, 4u);
}

TEST(Publisher, RevisionChainsSupersedesAndInheritsSubject) {
  NewswireSystem sys(Small());
  sys.RunFor(5);
  // Publish an original on a subject somebody subscribes to.
  const std::string subject = sys.SubjectsOf(0)[0];
  const std::string id1 = sys.PublishArticle(0, subject);
  ASSERT_FALSE(id1.empty());
  sys.RunFor(10);

  // PublishRevision only reads the chain fields of `prev`.
  NewsItem prev;
  prev.publisher = sys.publisher(0).name();
  prev.seq = 1;
  prev.subject = subject;
  prev.revision = 0;
  ASSERT_EQ(prev.Id(), id1);

  NewsItem update;
  update.headline = "corrected";
  update.body_bytes = 512;  // subject left empty: inherited from prev
  ASSERT_TRUE(sys.publisher(0).PublishRevision(prev, update));
  sys.RunFor(10);

  const std::string id2 = sys.publisher(0).name() + "#2";
  std::size_t holder = SIZE_MAX;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (sys.subscriber(i).cache().Contains(id2)) holder = i;
  }
  ASSERT_NE(holder, SIZE_MAX) << "revision was disseminated like any item";
  const NewsItem* rev = sys.subscriber(holder).cache().Find(id2);
  ASSERT_NE(rev, nullptr);
  EXPECT_EQ(rev->supersedes, id1);
  EXPECT_EQ(rev->revision, 1u);
  EXPECT_EQ(rev->subject, subject) << "empty subject inherits from prev";
  // fuse_revisions: accepting the successor evicted the original.
  EXPECT_FALSE(sys.subscriber(holder).cache().Contains(id1));
}

TEST(Publisher, FlowControlThrottlesAndKeepsSequenceGapFree) {
  SystemConfig cfg = Small();
  cfg.publisher_rate = 0.001;  // effectively no refill during the test
  cfg.publisher_burst = 2.0;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  int admitted = 0, refused = 0;
  for (int k = 0; k < 5; ++k) {
    if (sys.PublishArticle(0, sys.catalog()[0]).empty()) {
      ++refused;
    } else {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 2);  // the burst allowance
  EXPECT_EQ(refused, 3);
  const Publisher::Stats& stats = sys.publisher(0).stats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.throttled, 3u);
  // Refused items consume no sequence numbers: ids stay dense.
  EXPECT_EQ(sys.publisher(0).next_seq(), 3u);
}

TEST(CacheBoundary, IdsSinceIsInclusive) {
  MessageCache cache;
  NewsItem a;
  a.publisher = "p";
  a.seq = 1;
  cache.Insert(a, 5.0);
  EXPECT_EQ(cache.IdsSince(5.0).size(), 1u);   // >= since
  EXPECT_EQ(cache.IdsSince(5.01).size(), 0u);
}

TEST(CacheBoundary, FindReturnsStoredContent) {
  MessageCache cache;
  NewsItem a;
  a.publisher = "p";
  a.seq = 9;
  a.headline = "hello";
  a.body_bytes = 1234;
  cache.Insert(a, 1.0);
  const NewsItem* found = cache.Find("p#9");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->headline, "hello");
  EXPECT_EQ(found->body_bytes, 1234u);
  EXPECT_EQ(cache.Find("p#10"), nullptr);
}

TEST(SubscriberConfig, WrongCertKindIgnored) {
  NewswireSystem sys(Small());
  astrolabe::Certificate wrong;
  wrong.kind = astrolabe::CertKind::kAgent;
  wrong.subject = "pubX";
  wrong.subject_key = 42;
  sys.subscriber(0).AddPublisherCert(wrong);  // silently ignored
  // No crash, and behavior unchanged (nothing to assert beyond liveness).
  sys.RunFor(1);
}

TEST(MulticastItem, WireBytesIncludeBodyAndMetadata) {
  NewsItem item;
  item.publisher = "p";
  item.seq = 1;
  item.subject = "subject";
  item.headline = std::string(100, 'h');
  item.body_bytes = 5000;
  multicast::Item wire = item.ToMulticastItem();
  EXPECT_GT(wire.WireBytes(), 5100u);
  auto back = NewsItem::FromMulticastItem(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body_bytes, 5000u);
  EXPECT_EQ(back->headline, item.headline);
}

}  // namespace
}  // namespace nw::newswire
