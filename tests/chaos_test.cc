// Chaos harness (DESIGN.md §10): committed gray-failure fault cocktails —
// slowdowns, one-directional cuts, corruption and duplication bursts,
// applied together — replayed against the full NewsWire stack. Each
// cocktail must (a) converge to exactly the fault-free delivery set once
// repair and retransmission settle, (b) replay bit-identically across
// --sim-threads 1/2/4, and (c) leave the gossip layer's replicated state
// identical to a fault-free run after heal.
//
// A failing random cocktail from FaultPlan::Random (with the gray options
// on) can be committed here verbatim: paste its ToString() as a new row.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "astrolabe/deployment.h"
#include "newswire/system.h"
#include "scenarios.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

struct ChaosScenario {
  const char* name;
  // Which gray-failure mode the cocktail exercises.
  const char* guards;
  const char* plan;
};

// Topology reminder (tests/scenarios.h): 32 nodes, branching 4, node 0 is
// the publisher; aligned blocks of 4 are second-level zones. Times are
// relative to the start of the 24 s publishing phase.
constexpr ChaosScenario kChaosScenarios[] = {
    {"GrayTrio",
     "gray-slow: three nodes answer 6-8x late across overlapping windows; "
     "phi adapts, retransmission and repair close the gaps",
     "gray@5..35 node=3 factor=8 delay=0.05; gray@8..32 node=17 factor=6; "
     "gray@10..30 node=9 factor=8 delay=0.02"},
    {"AsymZoneCutWithDups",
     "asymmetric partition: one second-level zone can talk but not listen "
     "to another, while the network duplicates frames",
     "asym@8..22 groups=4,5,6,7|8,9,10,11; dup@10..30 p=0.1"},
    {"CorruptionStorm",
     "integrity: a corruption burst makes frames fail their envelope "
     "checksum and be verify-and-dropped while a node also runs gray",
     "corrupt@5..25 p=0.05; gray@12..28 node=21 factor=8"},
    {"FullCocktail",
     "compound gray failure: slowdown + corruption + duplication + an "
     "asymmetric cut, overlapping",
     "gray@5..30 node=2 factor=8 delay=0.05; corrupt@8..22 p=0.03; "
     "dup@12..26 p=0.08; asym@10..18 groups=24,25,26,27|28,29,30,31"},
};

struct ChaosRun {
  std::vector<testing::DeliveryRecord> trace;
  std::uint64_t integrity_drops = 0;
  multicast::MulticastStats totals;
};

ChaosRun RunChaos(const char* plan_text, unsigned sim_threads) {
  SystemConfig cfg = testing::CommittedScenarioConfig();
  cfg.seed = 20260808;
  cfg.sim_threads = sim_threads;
  NewswireSystem sys(cfg);

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);  // subscriptions aggregate before the stream starts
  const double base = sys.Now();

  double plan_end = 0;
  if (plan_text != nullptr) {
    auto plan = sim::FaultPlan::Parse(plan_text);
    EXPECT_TRUE(plan.has_value()) << plan_text;
    if (!plan) return {};
    plan->ApplyTo(sys.deployment().net(), base);
    plan_end = plan->EndTime();
  }

  for (int k = 0; k < 24; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  // Stream, fault tail, then enough settle time for capped-backoff
  // retransmissions and the repair layer to finish.
  sys.RunFor(std::max(24.0, plan_end) + 120);

  const auto duplicates = testing::CheckNoDuplicateDelivery(sys, recorder);
  EXPECT_TRUE(duplicates.ok()) << duplicates.Summary();
  const auto soundness = testing::CheckSubscriptionSoundness(sys, recorder);
  EXPECT_TRUE(soundness.ok()) << soundness.Summary();
  const auto membership = testing::CheckMembershipAgreement(sys);
  EXPECT_TRUE(membership.ok()) << membership.Summary();

  ChaosRun run;
  run.trace = recorder.trace();
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    run.integrity_drops +=
        sys.deployment().agent(i).gossip_stats().integrity_drops;
  }
  run.totals = sys.MulticastTotals();
  return run;
}

const std::vector<testing::DeliveryRecord>& FaultFreeBaseline() {
  static const ChaosRun* run = new ChaosRun(RunChaos(nullptr, 1));
  return run->trace;
}

class ChaosScenarioTest : public ::testing::TestWithParam<ChaosScenario> {};

TEST_P(ChaosScenarioTest, DeliverySetMatchesFaultFreeAndReplaysBitIdentical) {
  const ChaosScenario& scenario = GetParam();

  // The committed string must itself be a valid, stable plan.
  auto plan = sim::FaultPlan::Parse(scenario.plan);
  ASSERT_TRUE(plan.has_value()) << scenario.plan;
  auto reparsed = sim::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan) << "text form is unstable";

  const ChaosRun t1 = RunChaos(scenario.plan, 1);
  const ChaosRun t2 = RunChaos(scenario.plan, 2);
  const ChaosRun t4 = RunChaos(scenario.plan, 4);
  ASSERT_FALSE(t1.trace.empty());

  // (b) engine-mode independence: the cocktail replays bit-identically.
  const auto id2 = testing::CheckReplayIdentical(t1.trace, t2.trace);
  EXPECT_TRUE(id2.ok()) << "threads=2: " << id2.Summary();
  const auto id4 = testing::CheckReplayIdentical(t1.trace, t4.trace);
  EXPECT_TRUE(id4.ok()) << "threads=4: " << id4.Summary();

  // (a) the faulted run converges to exactly the fault-free delivery set.
  const auto equal = testing::CheckSameDeliverySets(t1.trace,
                                                    FaultFreeBaseline());
  EXPECT_TRUE(equal.ok()) << equal.Summary();

  // Corruption bursts must actually exercise the verify-and-drop path.
  if (std::strstr(scenario.plan, "corrupt@") != nullptr) {
    EXPECT_GT(t1.integrity_drops, 0u)
        << "cocktail advertises corruption but nothing was dropped";
  }
}

INSTANTIATE_TEST_SUITE_P(Committed, ChaosScenarioTest,
                         ::testing::ValuesIn(kChaosScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---- MIB convergence after heal (c) ------------------------------------

std::uint64_t RunGossipCocktail(const char* plan_text) {
  astrolabe::DeploymentConfig dc;
  dc.num_agents = 16;
  dc.branching = 4;
  dc.gossip_period = 1.0;
  dc.seed = 20260808;
  dc.sim_threads = 1;
  astrolabe::Deployment dep(dc);
  dep.StartAll();
  dep.RunFor(30);  // converge before the trouble starts

  if (plan_text != nullptr) {
    auto plan = sim::FaultPlan::Parse(plan_text);
    EXPECT_TRUE(plan.has_value()) << plan_text;
    if (!plan) return 0;
    plan->ApplyTo(dep.net(), dep.sim().Now());
  }
  dep.RunFor(120);  // fault window, heal, and re-convergence

  const auto membership = testing::CheckMembershipAgreement(dep, 16);
  EXPECT_TRUE(membership.ok()) << membership.Summary();
  return testing::MibContentHash(dep);
}

TEST(ChaosMibConvergence, ReplicatedStateMatchesFaultFreeContentAfterHeal) {
  const std::uint64_t faulted = RunGossipCocktail(
      "gray@0..30 node=3 factor=8 delay=0.05; asym@5..20 groups=1,2|5,6; "
      "corrupt@8..25 p=0.05");
  const std::uint64_t clean = RunGossipCocktail(nullptr);
  ASSERT_NE(clean, 0u);
  EXPECT_EQ(faulted, clean)
      << "gossip content must converge back to the fault-free state";
}

}  // namespace
}  // namespace nw::newswire
