// Property-based tests: protocol invariants checked across parameter
// sweeps (gtest TEST_P). These complement the example-based unit tests
// with the properties the design *must* uphold at any point in the
// parameter space.
#include <gtest/gtest.h>

#include <memory>

#include "astrolabe/deployment.h"
#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "multicast/multicast.h"
#include "newswire/message_cache.h"
#include "newswire/system.h"
#include "pubsub/bloom_filter.h"
#include "testing/invariants.h"
#include "util/rng.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------
// P1: gossip convergence — for any (n, branching, loss), every live agent
// eventually agrees on the full membership.
// ---------------------------------------------------------------------

struct GossipCase {
  std::size_t n;
  std::size_t branching;
  double loss;
  double run_seconds;
};

class GossipConvergenceProperty : public ::testing::TestWithParam<GossipCase> {};

TEST_P(GossipConvergenceProperty, AllAgentsAgreeOnMembership) {
  const GossipCase& param = GetParam();
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = param.n;
  cfg.branching = param.branching;
  cfg.net.loss_prob = param.loss;
  // Under sustained loss, rows occasionally flap near the failure timeout;
  // give them more slack so the steady state is clean.
  if (param.loss > 0) cfg.fail_timeout_rounds = 12;
  cfg.seed = 1234;
  astrolabe::Deployment dep(cfg);
  dep.StartAll();
  dep.RunFor(param.run_seconds);
  // Loss-free: exact agreement. Lossy steady state: at any instant a row
  // may be mid-refresh, but the view must stay essentially complete and
  // never over-count — both encoded in the shared membership checker.
  const std::int64_t min_members =
      param.loss == 0 ? std::int64_t(param.n)
                      : std::int64_t(double(param.n) * 0.95);
  const auto report = testing::CheckMembershipAgreement(
      dep, std::int64_t(param.n), min_members);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.checked, param.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GossipConvergenceProperty,
    ::testing::Values(GossipCase{8, 4, 0.0, 60}, GossipCase{27, 3, 0.0, 120},
                      GossipCase{64, 8, 0.1, 160},
                      GossipCase{32, 4, 0.2, 200},
                      GossipCase{81, 3, 0.05, 200},
                      GossipCase{16, 16, 0.0, 60}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.branching) + "_loss" +
             std::to_string(int(info.param.loss * 100));
    });

// ---------------------------------------------------------------------
// P2: multicast completeness — a root SendToZone reaches every leaf
// exactly once under no loss, and nearly all with redundancy under loss.
// ---------------------------------------------------------------------

struct MulticastCase {
  std::size_t n;
  std::size_t branching;
  int redundancy;
  double loss;
  double min_delivery_rate;
};

class MulticastCompletenessProperty
    : public ::testing::TestWithParam<MulticastCase> {};

TEST_P(MulticastCompletenessProperty, DeliversToLeavesOnce) {
  const MulticastCase& param = GetParam();
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = param.n;
  cfg.branching = param.branching;
  cfg.net.loss_prob = param.loss;
  cfg.seed = 77;
  astrolabe::Deployment dep(cfg);
  multicast::MulticastConfig mc;
  mc.redundancy = param.redundancy;
  std::vector<std::unique_ptr<multicast::MulticastService>> svc;
  std::vector<int> delivered(param.n, 0);
  for (std::size_t i = 0; i < dep.size(); ++i) {
    svc.push_back(
        std::make_unique<multicast::MulticastService>(dep.agent(i), mc));
    svc.back()->SetDeliveryCallback(
        [&delivered, i](const multicast::Item&) { ++delivered[i]; });
  }
  dep.WarmStart();
  constexpr int kItems = 5;
  for (int k = 0; k < kItems; ++k) {
    multicast::Item item;
    item.id = "i#" + std::to_string(k);
    item.body_bytes = 100;
    svc[0]->SendToZone(astrolabe::ZonePath::Root(), std::move(item));
  }
  dep.RunFor(60);
  std::size_t total = 0;
  for (std::size_t i = 0; i < param.n; ++i) {
    EXPECT_LE(delivered[i], kItems) << "duplicate delivery at leaf " << i;
    total += std::size_t(delivered[i]);
  }
  const double rate = double(total) / double(param.n * kItems);
  EXPECT_GE(rate, param.min_delivery_rate);
  if (param.loss == 0) EXPECT_DOUBLE_EQ(rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MulticastCompletenessProperty,
    ::testing::Values(MulticastCase{16, 4, 1, 0.0, 1.0},
                      MulticastCase{27, 3, 1, 0.0, 1.0},
                      MulticastCase{64, 8, 1, 0.0, 1.0},
                      MulticastCase{125, 5, 2, 0.0, 1.0},
                      MulticastCase{64, 4, 2, 0.05, 0.97},
                      MulticastCase{64, 4, 3, 0.10, 0.95}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.branching) + "_k" +
             std::to_string(info.param.redundancy) + "_loss" +
             std::to_string(int(info.param.loss * 100));
    });

// ---------------------------------------------------------------------
// P3: Bloom filter — no false negatives ever; false positives shrink as
// the array grows.
// ---------------------------------------------------------------------

struct BloomCase {
  std::size_t bits;
  std::size_t hashes;
  std::size_t subs;
};

class BloomProperty : public ::testing::TestWithParam<BloomCase> {};

TEST_P(BloomProperty, NeverForgetsASubscription) {
  const BloomCase& param = GetParam();
  pubsub::BloomConfig cfg;
  cfg.bits = param.bits;
  cfg.hashes = param.hashes;
  pubsub::BloomFilter f(cfg);
  for (std::size_t s = 0; s < param.subs; ++s) {
    f.Add("sub" + std::to_string(s));
  }
  for (std::size_t s = 0; s < param.subs; ++s) {
    EXPECT_TRUE(f.MightContain("sub" + std::to_string(s)));
    EXPECT_TRUE(
        pubsub::BloomFilter::Admits(f.bits(), f.Positions("sub" + std::to_string(s))));
  }
}

TEST_P(BloomProperty, LargerArrayNeverWorse) {
  const BloomCase& param = GetParam();
  auto fp_count = [&](std::size_t bits) {
    pubsub::BloomConfig cfg;
    cfg.bits = bits;
    cfg.hashes = param.hashes;
    pubsub::BloomFilter f(cfg);
    for (std::size_t s = 0; s < param.subs; ++s) {
      f.Add("sub" + std::to_string(s));
    }
    int fp = 0;
    for (int p = 0; p < 3000; ++p) {
      if (f.MightContain("probe" + std::to_string(p))) ++fp;
    }
    return fp;
  };
  EXPECT_GE(fp_count(param.bits), fp_count(param.bits * 8));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomProperty,
    ::testing::Values(BloomCase{128, 1, 20}, BloomCase{1024, 1, 100},
                      BloomCase{1024, 4, 100}, BloomCase{256, 2, 200},
                      BloomCase{4096, 1, 1000}),
    [](const auto& info) {
      return "bits" + std::to_string(info.param.bits) + "_k" +
             std::to_string(info.param.hashes) + "_s" +
             std::to_string(info.param.subs);
    });

// ---------------------------------------------------------------------
// P4: aggregation composition — Astrolabe's core correctness property:
// aggregating two half-tables and then aggregating the two summary rows
// equals aggregating the whole table directly (for the decomposable
// aggregates the system relies on).
// ---------------------------------------------------------------------

class AggregationCompositionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationCompositionProperty, TwoLevelEqualsFlat) {
  util::DeterministicRng rng(GetParam());
  astrolabe::Table whole, left, right;
  const std::size_t rows = 4 + rng.NextBelow(60);
  for (std::size_t r = 0; r < rows; ++r) {
    astrolabe::RowEntry e;
    e.attrs["nmembers"] = std::int64_t(1 + rng.NextBelow(50));
    e.attrs["load"] = rng.NextDouble();
    astrolabe::BitVector bv(128);
    for (int b = 0; b < 4; ++b) bv.Set(rng.NextBelow(128));
    e.attrs["subs"] = bv;
    e.version = 1;
    const std::string key = "n" + std::to_string(r);
    whole.MergeEntry(key, e, 0);
    (r % 2 ? left : right).MergeEntry(key, e, 0);
  }
  const auto query = astrolabe::sql::ParseQuery(
      "SELECT SUM(nmembers) AS nmembers, MIN(load) AS lo, MAX(load) AS hi, "
      "OR(subs) AS subs, COUNT(*) AS cnt");
  // COUNT at the second level must sum the first-level counts, so the
  // reaggregation query differs for COUNT (as in real Astrolabe, where
  // membership is counted via SUM(nmembers)).
  const auto requery = astrolabe::sql::ParseQuery(
      "SELECT SUM(nmembers) AS nmembers, MIN(lo) AS lo, MAX(hi) AS hi, "
      "OR(subs) AS subs, SUM(cnt) AS cnt");

  astrolabe::Row flat = astrolabe::sql::EvalQuery(query, whole);
  astrolabe::Table mid;
  astrolabe::RowEntry le, re;
  le.attrs = astrolabe::sql::EvalQuery(query, left);
  re.attrs = astrolabe::sql::EvalQuery(query, right);
  le.version = re.version = 1;
  mid.MergeEntry("left", le, 0);
  mid.MergeEntry("right", re, 0);
  astrolabe::Row composed = astrolabe::sql::EvalQuery(requery, mid);

  EXPECT_TRUE(flat.at("nmembers").Equals(composed.at("nmembers")));
  EXPECT_TRUE(flat.at("lo").Equals(composed.at("lo")));
  EXPECT_TRUE(flat.at("hi").Equals(composed.at("hi")));
  EXPECT_TRUE(flat.at("subs").Equals(composed.at("subs")));
  EXPECT_TRUE(flat.at("cnt").Equals(composed.at("cnt")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationCompositionProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------
// P5: message cache — capacity is never exceeded, a superseded revision
// never coexists with its successor, duplicates never double-count.
// ---------------------------------------------------------------------

class CacheProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheProperty, InvariantsUnderRandomWorkload) {
  const std::size_t capacity = GetParam();
  newswire::MessageCache::Config cfg;
  cfg.capacity = capacity;
  newswire::MessageCache cache(cfg);
  util::DeterministicRng rng(capacity * 7919);
  std::vector<newswire::NewsItem> history;
  for (int step = 0; step < 500; ++step) {
    newswire::NewsItem item;
    item.publisher = "p" + std::to_string(rng.NextBelow(3));
    // (publisher, seq) is unique in the real system (§9); keep it so.
    item.seq = std::uint64_t(step) + 1;
    item.subject = "s" + std::to_string(rng.NextBelow(5));
    if (!history.empty() && rng.NextBool(0.3)) {
      const auto& prev = history[rng.NextBelow(history.size())];
      item.supersedes = prev.Id();
      item.revision = prev.revision + 1;
    }
    cache.Insert(item, double(step));
    history.push_back(item);
    ASSERT_LE(cache.size(), capacity);
    if (!item.supersedes.empty() && cache.Contains(item.Id())) {
      EXPECT_FALSE(cache.Contains(item.supersedes))
          << "superseded revision coexists with successor";
    }
  }
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.inserted,
            cache.size() + stats.evicted + stats.superseded_dropped);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheProperty,
                         ::testing::Values(1u, 4u, 16u, 64u, 1024u));

// ---------------------------------------------------------------------
// P6: whole-system determinism and subscription soundness — for any seed,
// a run is replayable and every delivery went to an actual subscriber of
// the item's subject.
// ---------------------------------------------------------------------

class SystemProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemProperty, ReplayableAndSound) {
  struct Run {
    std::vector<testing::DeliveryRecord> trace;
    testing::InvariantReport soundness;
  };
  auto run = [&] {
    newswire::SystemConfig cfg;
    cfg.num_subscribers = 47;
    cfg.num_publishers = 2;
    cfg.branching = 4;
    cfg.catalog_size = 12;
    cfg.subjects_per_subscriber = 3;
    cfg.seed = GetParam();
    newswire::NewswireSystem sys(cfg);
    testing::DeliveryRecorder recorder(sys);
    sys.RunFor(10);
    for (int k = 0; k < 10; ++k) {
      sys.PublishArticle(k % 2, sys.RandomSubject());
    }
    sys.RunFor(40);
    return Run{recorder.trace(),
               testing::CheckSubscriptionSoundness(sys, recorder)};
  };
  const Run a = run();
  const Run b = run();
  EXPECT_TRUE(a.soundness.ok()) << a.soundness.Summary();
  const auto replay = testing::CheckReplayIdentical(a.trace, b.trace);
  EXPECT_TRUE(replay.ok()) << replay.Summary();
  EXPECT_GT(a.trace.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

// ---------------------------------------------------------------------
// P7: zone paths — Parse/ToString round-trip and prefix laws.
// ---------------------------------------------------------------------

class ZonePathProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZonePathProperty, RoundTripAndPrefixLaws) {
  util::DeterministicRng rng(GetParam());
  const std::size_t depth = 1 + rng.NextBelow(6);
  astrolabe::ZonePath path;
  for (std::size_t d = 0; d < depth; ++d) {
    path = path.Child("c" + std::to_string(rng.NextBelow(100)));
  }
  EXPECT_EQ(astrolabe::ZonePath::Parse(path.ToString()), path);
  EXPECT_EQ(path.Depth(), depth);
  for (std::size_t d = 0; d <= depth; ++d) {
    EXPECT_TRUE(path.Prefix(d).IsPrefixOf(path));
  }
  EXPECT_TRUE(astrolabe::ZonePath::Root().IsPrefixOf(path));
  if (depth >= 1) {
    EXPECT_EQ(path.Parent(), path.Prefix(depth - 1));
    EXPECT_FALSE(path.IsPrefixOf(path.Parent()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZonePathProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace nw
