// Tests for the Bloom-filter pub/sub layer and the §7 category-mask
// prototype.
#include <gtest/gtest.h>

#include <memory>

#include "astrolabe/deployment.h"
#include "pubsub/bloom_filter.h"
#include "pubsub/category_subscriptions.h"
#include "pubsub/pubsub.h"

namespace nw::pubsub {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

// ---------- BloomFilter unit tests ----------

TEST(BloomFilter, NoFalseNegatives) {
  BloomConfig cfg;
  cfg.bits = 256;
  cfg.hashes = 2;
  BloomFilter f(cfg);
  std::vector<std::string> subjects;
  for (int i = 0; i < 50; ++i) subjects.push_back("s" + std::to_string(i));
  for (const auto& s : subjects) f.Add(s);
  for (const auto& s : subjects) {
    EXPECT_TRUE(f.MightContain(s)) << s;  // Bloom property: never a miss
  }
}

TEST(BloomFilter, PositionsAreDeterministicAndShared) {
  BloomConfig cfg;
  BloomFilter a(cfg), b(cfg);
  EXPECT_EQ(a.Positions("tech.linux"), b.Positions("tech.linux"));
  EXPECT_NE(a.Positions("tech.linux"), a.Positions("tech.bsd"));
}

TEST(BloomFilter, SingleHashByDefaultMatchesPaper) {
  BloomFilter f(BloomConfig{});
  EXPECT_EQ(f.Positions("anything").size(), 1u);
}

TEST(BloomFilter, FalsePositiveRateShrinksWithArraySize) {
  auto fp_rate = [](std::size_t bits) {
    BloomConfig cfg;
    cfg.bits = bits;
    BloomFilter f(cfg);
    for (int i = 0; i < 100; ++i) f.Add("sub" + std::to_string(i));
    int fp = 0;
    const int kProbes = 2000;
    for (int i = 0; i < kProbes; ++i) {
      if (f.MightContain("other" + std::to_string(i))) ++fp;
    }
    return double(fp) / kProbes;
  };
  EXPECT_GT(fp_rate(128), fp_rate(1024));
  EXPECT_LT(fp_rate(4096), 0.05);
}

TEST(BloomFilter, AdmitsChecksAllStampedBits) {
  BloomConfig cfg;
  cfg.bits = 64;
  BloomFilter f(cfg);
  f.Add("a");
  const auto positions = f.Positions("a");
  EXPECT_TRUE(BloomFilter::Admits(f.bits(), positions));
  EXPECT_FALSE(BloomFilter::Admits(f.bits(), {63, positions[0]}));
  // Out-of-range bits never admit.
  EXPECT_FALSE(BloomFilter::Admits(f.bits(), {9999}));
}

// ---------- end-to-end pub/sub over the zone tree ----------

class PubSubEnv {
 public:
  explicit PubSubEnv(std::size_t n, std::size_t branching,
                     BloomConfig bloom = {}, std::uint64_t seed = 1)
      : dep_([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.seed = seed;
          return cfg;
        }()) {
    dep_.InstallFunctionEverywhere(kSubsFunctionName, SubsFunctionCode());
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      mc_.push_back(std::make_unique<multicast::MulticastService>(
          dep_.agent(i), multicast::MulticastConfig{}));
      ps_.push_back(std::make_unique<PubSubService>(dep_.agent(i), *mc_[i],
                                                    bloom));
      received_.emplace_back();
      ps_.back()->SetNewsCallback([this, i](const multicast::Item& item) {
        received_[i].push_back(item.id);
      });
    }
  }

  void Converge() { dep_.WarmStart(); }

  Deployment& dep() { return dep_; }
  PubSubService& ps(std::size_t i) { return *ps_[i]; }
  multicast::MulticastService& mc(std::size_t i) { return *mc_[i]; }
  const std::vector<std::string>& received(std::size_t i) const {
    return received_[i];
  }

  void Publish(std::size_t from, const std::string& id,
               const std::string& subject) {
    multicast::Item item;
    item.id = id;
    item.body_bytes = 512;
    ps_[from]->Publish(std::move(item), subject);
  }

 private:
  Deployment dep_;
  std::vector<std::unique_ptr<multicast::MulticastService>> mc_;
  std::vector<std::unique_ptr<PubSubService>> ps_;
  std::vector<std::vector<std::string>> received_;
};

TEST(PubSub, OnlySubscribersReceive) {
  PubSubEnv env(27, 3);
  env.ps(3).Subscribe("tech.linux");
  env.ps(17).Subscribe("tech.linux");
  env.ps(20).Subscribe("sports.chess");
  env.Converge();
  env.Publish(0, "p#1", "tech.linux");
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    const bool expect = (i == 3 || i == 17);
    EXPECT_EQ(env.received(i).size(), expect ? 1u : 0u) << "leaf " << i;
  }
}

TEST(PubSub, NoSubscribersMeansAlmostNoTraffic) {
  PubSubEnv env(27, 3);
  env.Converge();
  env.dep().net().ResetStats();
  env.Publish(0, "p#1", "nobody.cares");
  env.dep().RunFor(30);
  // The item may only cross links due to Bloom collisions; with an empty
  // subscription system the aggregated filters are empty, so nothing
  // is forwarded at all.
  const auto total = env.dep().net().TotalStats();
  EXPECT_EQ(total.messages_sent, 0u);
}

TEST(PubSub, SubscribersInEveryZoneReceive) {
  PubSubEnv env(27, 3);
  for (std::size_t i = 0; i < 27; i += 2) env.ps(i).Subscribe("world.news");
  env.Converge();
  env.Publish(1, "p#1", "world.news");
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    EXPECT_EQ(env.received(i).size(), (i % 2 == 0) ? 1u : 0u) << i;
  }
}

TEST(PubSub, LeafRecheckSuppressesBloomFalsePositives) {
  // A tiny filter forces collisions: subscriber A's subject collides with
  // the published subject's bit, but the exact re-check must reject it.
  BloomConfig bloom;
  bloom.bits = 2;  // everything collides
  PubSubEnv env(9, 3, bloom);
  env.ps(4).Subscribe("subject.a");
  env.Converge();
  env.Publish(0, "p#1", "subject.b");  // same bit with high probability
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_TRUE(env.received(i).empty()) << "leaf " << i;
  }
  // The item traveled (false-positive forwarding) but was rejected at a
  // leaf; with 2 bits the collision is near-certain but not guaranteed,
  // so only assert on deliveries above.
}

TEST(PubSub, PredicateRefinesSubscription) {
  PubSubEnv env(9, 3);
  env.ps(2).Subscribe("markets");
  env.ps(2).SetPredicate("urgency <= 2");
  env.ps(7).Subscribe("markets");
  env.Converge();
  multicast::Item urgent;
  urgent.id = "p#1";
  urgent.metadata["urgency"] = std::int64_t{1};
  env.ps(0).Publish(std::move(urgent), "markets");
  multicast::Item routine;
  routine.id = "p#2";
  routine.metadata["urgency"] = std::int64_t{8};
  env.ps(0).Publish(std::move(routine), "markets");
  env.dep().RunFor(30);
  EXPECT_EQ(env.received(2).size(), 1u);  // urgent only
  EXPECT_EQ(env.received(7).size(), 2u);  // no predicate: both
  EXPECT_EQ(env.ps(2).stats().predicate_rejected, 1u);
}

TEST(PubSub, SubscriptionChangePropagatesThroughGossip) {
  PubSubEnv env(16, 4);
  env.dep().StartAll();
  env.dep().RunFor(60);  // converge membership
  env.ps(9).Subscribe("late.subject");
  env.dep().RunFor(60);  // filter flows up within "tens of seconds"
  env.Publish(0, "p#1", "late.subject");
  env.dep().RunFor(30);
  EXPECT_EQ(env.received(9).size(), 1u);
}

TEST(PubSub, UnsubscribeEventuallyStopsDelivery) {
  PubSubEnv env(16, 4);
  env.ps(9).Subscribe("s.x");
  env.dep().StartAll();
  env.dep().RunFor(60);
  env.ps(9).Unsubscribe("s.x");
  env.dep().RunFor(90);  // old filter bits age out of the aggregates
  env.Publish(0, "p#1", "s.x");
  env.dep().RunFor(30);
  EXPECT_TRUE(env.received(9).empty());
}

TEST(PubSub, ChildAdmitsMissingFilterErrsTowardDelivery) {
  multicast::Item item;
  item.metadata[kAttrSubBits] =
      astrolabe::ValueList{astrolabe::AttrValue(std::int64_t{5})};
  astrolabe::Row child;  // no "subs" attribute yet
  EXPECT_TRUE(PubSubService::ChildAdmits(item, child));
}

TEST(PubSub, ChildAdmitsChecksBits) {
  multicast::Item item;
  item.metadata[kAttrSubBits] =
      astrolabe::ValueList{astrolabe::AttrValue(std::int64_t{5})};
  astrolabe::BitVector bv(64);
  astrolabe::Row child;
  bv.Set(5);
  child[kAttrSubs] = bv;
  EXPECT_TRUE(PubSubService::ChildAdmits(item, child));
  bv.Clear(5);
  bv.Set(6);
  child[kAttrSubs] = bv;
  EXPECT_FALSE(PubSubService::ChildAdmits(item, child));
}

// ---------- hierarchical subjects (§7 enriched subscription space) ----------

TEST(SubjectHierarchy, PrefixLaws) {
  EXPECT_TRUE(SubjectIsUnder("tech.linux", "tech"));
  EXPECT_TRUE(SubjectIsUnder("tech.linux.kernel", "tech.linux"));
  EXPECT_TRUE(SubjectIsUnder("tech", "tech"));
  EXPECT_FALSE(SubjectIsUnder("technology", "tech"));  // not a dot boundary
  EXPECT_FALSE(SubjectIsUnder("tech", "tech.linux"));
  EXPECT_EQ(SubjectPrefixes("a.b.c"),
            (std::vector<std::string>{"a", "a.b", "a.b.c"}));
  EXPECT_EQ(SubjectPrefixes("solo"), (std::vector<std::string>{"solo"}));
}

class HierarchicalEnv {
 public:
  explicit HierarchicalEnv(std::size_t n, std::size_t branching)
      : dep_([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.seed = 2;
          return cfg;
        }()) {
    dep_.InstallFunctionEverywhere(kSubsFunctionName, SubsFunctionCode());
    PubSubOptions opts;
    opts.hierarchical_subjects = true;
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      mc_.push_back(std::make_unique<multicast::MulticastService>(
          dep_.agent(i), multicast::MulticastConfig{}));
      ps_.push_back(
          std::make_unique<PubSubService>(dep_.agent(i), *mc_[i], opts));
      received_.emplace_back();
      ps_.back()->SetNewsCallback([this, i](const multicast::Item& item) {
        received_[i].push_back(item.id);
      });
    }
  }
  astrolabe::Deployment& dep() { return dep_; }
  PubSubService& ps(std::size_t i) { return *ps_[i]; }
  const std::vector<std::string>& received(std::size_t i) const {
    return received_[i];
  }

 private:
  astrolabe::Deployment dep_;
  std::vector<std::unique_ptr<multicast::MulticastService>> mc_;
  std::vector<std::unique_ptr<PubSubService>> ps_;
  std::vector<std::vector<std::string>> received_;
};

TEST(SubjectHierarchy, AncestorSubscriptionReceivesDescendants) {
  HierarchicalEnv env(16, 4);
  env.ps(3).Subscribe("tech");              // whole tech section
  env.ps(9).Subscribe("tech.linux");        // one subtree
  env.ps(12).Subscribe("sports");           // unrelated
  env.dep().WarmStart();
  multicast::Item item;
  item.id = "p#1";
  env.ps(0).Publish(std::move(item), "tech.linux.kernel");
  env.dep().RunFor(30);
  EXPECT_EQ(env.received(3).size(), 1u);   // via "tech"
  EXPECT_EQ(env.received(9).size(), 1u);   // via "tech.linux"
  EXPECT_TRUE(env.received(12).empty());
}

TEST(SubjectHierarchy, ExactSubjectStillWorks) {
  HierarchicalEnv env(16, 4);
  env.ps(5).Subscribe("tech.linux");
  env.dep().WarmStart();
  multicast::Item a;
  a.id = "p#1";
  env.ps(0).Publish(std::move(a), "tech.linux");
  multicast::Item b;
  b.id = "p#2";
  env.ps(0).Publish(std::move(b), "tech");  // ancestor only: no match
  env.dep().RunFor(30);
  EXPECT_EQ(env.received(5).size(), 1u);
  EXPECT_EQ(env.received(5)[0], "p#1");
}

TEST(SubjectHierarchy, NoDotCollisionFalseDelivery) {
  HierarchicalEnv env(9, 3);
  env.ps(2).Subscribe("tech");
  env.dep().WarmStart();
  multicast::Item item;
  item.id = "p#1";
  env.ps(0).Publish(std::move(item), "technology.news");
  env.dep().RunFor(30);
  EXPECT_TRUE(env.received(2).empty());  // "technology" is not under "tech"
}

TEST(SubjectHierarchy, FlatListStampStillAdmits) {
  // Backward compatibility of the wire format: a flat conjunctive group.
  multicast::Item item;
  item.metadata[kAttrSubBits] =
      astrolabe::ValueList{astrolabe::AttrValue(std::int64_t{3})};
  astrolabe::BitVector bv(8);
  bv.Set(3);
  astrolabe::Row child;
  child[kAttrSubs] = bv;
  EXPECT_TRUE(PubSubService::ChildAdmits(item, child));
  // Grouped format: second group matches even though first does not.
  astrolabe::ValueList g1{astrolabe::AttrValue(std::int64_t{7})};
  astrolabe::ValueList g2{astrolabe::AttrValue(std::int64_t{3})};
  item.metadata[kAttrSubBits] = astrolabe::ValueList{
      astrolabe::AttrValue(g1), astrolabe::AttrValue(g2)};
  EXPECT_TRUE(PubSubService::ChildAdmits(item, child));
}

// ---------- the §7 category-mask prototype ----------

class CategoryEnv {
 public:
  explicit CategoryEnv(std::size_t n, std::size_t branching,
                       const std::vector<std::string>& publishers)
      : dep_([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          return cfg;
        }()) {
    for (const auto& p : publishers) {
      dep_.InstallFunctionEverywhere(CategoryFunctionNameFor(p),
                                     CategoryFunctionCodeFor(p));
    }
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      mc_.push_back(std::make_unique<multicast::MulticastService>(
          dep_.agent(i), multicast::MulticastConfig{}));
      cs_.push_back(
          std::make_unique<CategorySubscriptions>(dep_.agent(i), *mc_[i]));
      received_.emplace_back();
      cs_.back()->SetNewsCallback([this, i](const multicast::Item& item) {
        received_[i].push_back(item.id);
      });
    }
  }

  astrolabe::Deployment& dep() { return dep_; }
  CategorySubscriptions& cs(std::size_t i) { return *cs_[i]; }
  const std::vector<std::string>& received(std::size_t i) const {
    return received_[i];
  }

 private:
  astrolabe::Deployment dep_;
  std::vector<std::unique_ptr<multicast::MulticastService>> mc_;
  std::vector<std::unique_ptr<CategorySubscriptions>> cs_;
  std::vector<std::vector<std::string>> received_;
};

TEST(CategoryScheme, MaskRoutingDeliversMatchingCategories) {
  CategoryEnv env(16, 4, {"reuters"});
  env.cs(3).Subscribe("reuters", 0b0001);   // category 0
  env.cs(10).Subscribe("reuters", 0b0110);  // categories 1,2
  env.dep().WarmStart();
  multicast::Item item;
  item.id = "r#1";
  env.cs(0).Publish(std::move(item), "reuters", 0b0010);  // category 1
  env.dep().RunFor(30);
  EXPECT_TRUE(env.received(3).empty());
  EXPECT_EQ(env.received(10).size(), 1u);
}

TEST(CategoryScheme, UnknownPublisherIsNotForwarded) {
  CategoryEnv env(16, 4, {"reuters"});
  env.cs(3).Subscribe("reuters", 1);
  env.dep().WarmStart();
  multicast::Item item;
  item.id = "x#1";
  env.cs(0).Publish(std::move(item), "upstart", 1);  // no aggregation fn
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(env.received(i).empty()) << i;
  }
}

TEST(CategoryScheme, ChildAdmitsIntersectsMasks) {
  multicast::Item item;
  item.metadata[kAttrPublisher] = std::string("reuters");
  item.metadata[kAttrCatMask] = std::int64_t{0b0101};
  astrolabe::Row child;
  child[CategoryAttrFor("reuters")] = std::int64_t{0b0100};
  EXPECT_TRUE(CategorySubscriptions::ChildAdmits(item, child));
  child[CategoryAttrFor("reuters")] = std::int64_t{0b1010};
  EXPECT_FALSE(CategorySubscriptions::ChildAdmits(item, child));
  astrolabe::Row empty;
  EXPECT_FALSE(CategorySubscriptions::ChildAdmits(item, empty));
}

}  // namespace
}  // namespace nw::pubsub
