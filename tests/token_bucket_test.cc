// Unit tests for the publisher flow-control token bucket (paper §8).
#include <gtest/gtest.h>

#include "util/token_bucket.h"

namespace nw::util {
namespace {

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket tb(1.0, 3.0);
  EXPECT_DOUBLE_EQ(tb.AvailableTokens(0), 3.0);
  EXPECT_TRUE(tb.TryConsume(0));
  EXPECT_TRUE(tb.TryConsume(0));
  EXPECT_TRUE(tb.TryConsume(0));
  EXPECT_FALSE(tb.TryConsume(0)) << "burst exhausted with no time passed";
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(2.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(tb.TryConsume(0));
  EXPECT_FALSE(tb.TryConsume(0));
  // 2 tokens/s: after 0.5 s exactly one token is back.
  EXPECT_TRUE(tb.TryConsume(0.5));
  EXPECT_FALSE(tb.TryConsume(0.5));
  EXPECT_TRUE(tb.TryConsume(1.0));
}

TEST(TokenBucket, RefillIsCappedAtBurst) {
  TokenBucket tb(1000.0, 2.0);
  EXPECT_TRUE(tb.TryConsume(0, 2.0));
  // An hour of refill still yields only `burst` tokens.
  EXPECT_DOUBLE_EQ(tb.AvailableTokens(3600), 2.0);
  EXPECT_TRUE(tb.TryConsume(3600, 2.0));
  EXPECT_FALSE(tb.TryConsume(3600, 2.0));
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket tb(0.0, 2.0);
  EXPECT_TRUE(tb.TryConsume(0));
  EXPECT_TRUE(tb.TryConsume(1));
  EXPECT_FALSE(tb.TryConsume(1e9)) << "burst-only bucket refilled";
  EXPECT_DOUBLE_EQ(tb.AvailableTokens(1e9), 0.0);
}

TEST(TokenBucket, FractionalCosts) {
  TokenBucket tb(1.0, 1.0);
  EXPECT_TRUE(tb.TryConsume(0, 0.25));
  EXPECT_TRUE(tb.TryConsume(0, 0.75));  // exactly drains, epsilon-tolerant
  EXPECT_FALSE(tb.TryConsume(0, 0.25));
}

TEST(TokenBucket, CostAboveBurstIsNeverAdmitted) {
  TokenBucket tb(10.0, 2.0);
  EXPECT_FALSE(tb.TryConsume(0, 3.0));
  EXPECT_FALSE(tb.TryConsume(100, 3.0)) << "even after a full refill";
  EXPECT_TRUE(tb.TryConsume(100, 2.0));
}

TEST(TokenBucket, TimeMovingBackwardDoesNotRefill) {
  TokenBucket tb(1.0, 1.0);
  EXPECT_TRUE(tb.TryConsume(10.0));
  // A stale timestamp must not mint tokens (Refill only advances).
  EXPECT_FALSE(tb.TryConsume(5.0));
  EXPECT_TRUE(tb.TryConsume(11.0));
}

TEST(TokenBucket, ReportsConfig) {
  TokenBucket tb(7.5, 15.0);
  EXPECT_DOUBLE_EQ(tb.rate(), 7.5);
  EXPECT_DOUBLE_EQ(tb.burst(), 15.0);
}

}  // namespace
}  // namespace nw::util
