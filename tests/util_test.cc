// Unit tests for hashing, RNG, statistics, and token-bucket utilities.
#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/token_bucket.h"

namespace nw::util {
namespace {

TEST(Hash, Fnv1aIsStableAndSensitive) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(Fnv1a64("sports"), Fnv1a64("sport"));
  EXPECT_EQ(Fnv1a64("sports"), Fnv1a64("sports"));
}

TEST(Hash, SeededHashesAreIndependent) {
  const auto a = HashWithSeed("politics", 1);
  const auto b = HashWithSeed("politics", 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, HashWithSeed("politics", 1));
}

TEST(Hash, Mix64HasNoObviousFixedPointAtZero) {
  EXPECT_NE(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(Rng, SameSeedSameSequence) {
  DeterministicRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, ForkedStreamsDiffer) {
  DeterministicRng a(42);
  auto c1 = a.Fork(1);
  auto c2 = a.Fork(2);
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

TEST(Rng, NextBelowStaysInRange) {
  DeterministicRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  // All values reachable.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  DeterministicRng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  DeterministicRng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  DeterministicRng rng(13);
  int low = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextZipf(100, 1.0) < 10) ++low;
  }
  // With s=1 the first 10 of 100 ranks carry well over a third of the mass.
  EXPECT_GT(double(low) / kN, 0.4);
}

TEST(Rng, ShuffleIsAPermutation) {
  DeterministicRng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Stats, SummaryQuantities) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
}

TEST(Stats, PercentileNearestRank) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
}

TEST(Stats, EmptyIsSafe) {
  SampleStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(TokenBucket, AllowsBurstThenThrottles) {
  TokenBucket tb(/*rate=*/1.0, /*burst=*/2.0);
  EXPECT_TRUE(tb.TryConsume(0.0));
  EXPECT_TRUE(tb.TryConsume(0.0));
  EXPECT_FALSE(tb.TryConsume(0.0));   // burst exhausted
  EXPECT_TRUE(tb.TryConsume(1.0));    // one token refilled after 1s
  EXPECT_FALSE(tb.TryConsume(1.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket tb(10.0, 3.0);
  ASSERT_TRUE(tb.TryConsume(0.0, 3.0));
  // After a long idle period only `burst` tokens are available.
  EXPECT_NEAR(tb.AvailableTokens(100.0), 3.0, 1e-9);
}

TEST(TokenBucket, FractionalCosts) {
  TokenBucket tb(1.0, 1.0);
  EXPECT_TRUE(tb.TryConsume(0.0, 0.5));
  EXPECT_TRUE(tb.TryConsume(0.0, 0.5));
  EXPECT_FALSE(tb.TryConsume(0.0, 0.5));
}

}  // namespace
}  // namespace nw::util
