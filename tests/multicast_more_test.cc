// Additional multicast coverage: duplicate-log bounds, affinity, filter
// placement, and traffic accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"

namespace nw::multicast {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

struct Env {
  Env(std::size_t n, std::size_t branching, MulticastConfig mc)
      : dep([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.seed = 5;
          return cfg;
        }()) {
    deliveries.assign(dep.size(), 0);
    for (std::size_t i = 0; i < dep.size(); ++i) {
      svc.push_back(std::make_unique<MulticastService>(dep.agent(i), mc));
      svc.back()->SetDeliveryCallback(
          [this, i](const Item&) { ++deliveries[i]; });
    }
    dep.WarmStart();
  }
  Item MakeItem(const std::string& id, std::size_t body = 128) {
    Item item;
    item.id = id;
    item.body_bytes = body;
    return item;
  }
  Deployment dep;
  std::vector<std::unique_ptr<MulticastService>> svc;
  std::vector<int> deliveries;
};

TEST(DupLog, BoundedLogForgetsAncientIds) {
  MulticastConfig mc;
  mc.dup_log_capacity = 4;  // tiny
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  const int first_round = env.deliveries[3];
  // Push 10 other ids through to evict "x#1" from every log...
  for (int k = 0; k < 10; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("y#" + std::to_string(k)));
  }
  env.dep.RunFor(5);
  // ...then replay it: with the id evicted, it is delivered again. This
  // documents the bounded-memory trade-off of the §9 duplicate log.
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  EXPECT_EQ(env.deliveries[3], first_round + 10 + 1);
}

TEST(DupLog, LargeLogSuppressesReplay) {
  MulticastConfig mc;
  mc.dup_log_capacity = 1 << 12;
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  const int before = env.deliveries[3];
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  EXPECT_EQ(env.deliveries[3], before);
  EXPECT_GT(env.svc[0]->stats().duplicates, 0u);
}

TEST(Affinity, RepeatedSendsReuseTheSameRepresentatives) {
  // With warm replicas and no failures, the affinity choice pins one
  // representative per child zone: the set of nodes that ever forward
  // stays fixed across batches.
  MulticastConfig mc;
  Env env(64, 4, mc);
  for (int k = 0; k < 3; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep.RunFor(10);
  std::set<std::size_t> forwarders_first;
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    if (env.svc[i]->stats().forwards > 0) forwarders_first.insert(i);
  }
  for (int k = 0; k < 7; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("b#" + std::to_string(k)));
  }
  env.dep.RunFor(10);
  std::set<std::size_t> forwarders_second;
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    if (env.svc[i]->stats().forwards > 0) forwarders_second.insert(i);
  }
  EXPECT_EQ(forwarders_first, forwarders_second)
      << "affinity should keep routing through the same representatives";
}

TEST(Filter, LeafRowsAreFilteredIndividually) {
  // The forwarding filter sees leaf MIB rows on the last hop, so a single
  // leaf can be excluded while its siblings receive.
  MulticastConfig mc;
  Env env(16, 4, mc);
  const std::string excluded_name = env.dep.PathFor(5).Leaf();
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    env.svc[i]->SetForwardFilter(
        [excluded_name](const Item&, const astrolabe::Row& child) {
          return !child.contains("blocked");
        });
  }
  env.dep.agent(5).SetLocalAttr("blocked", true);
  env.dep.WarmStart();  // refresh replicas with the marker
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("m#1"));
  env.dep.RunFor(10);
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    EXPECT_EQ(env.deliveries[i], i == 5 ? 0 : 1) << "leaf " << i;
  }
}

TEST(Stats, ForwardBytesMatchBodyPlusMetadata) {
  MulticastConfig mc;
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("b#1", 1000));
  env.dep.RunFor(5);
  const auto& stats = env.svc[0]->stats();
  ASSERT_EQ(stats.forwards, 3u);  // three siblings
  EXPECT_GE(stats.forward_bytes, 3u * 1000u);
  EXPECT_LT(stats.forward_bytes, 3u * 1400u);  // + metadata overhead only
}

TEST(Stats, MisroutedCountsUnknownZones) {
  MulticastConfig mc;
  Env env(16, 4, mc);
  Item item = env.MakeItem("m#1");
  // Not visible from the sender's path at all.
  env.svc[0]->SendToZone(ZonePath::Parse("/nowhere/at/all"), std::move(item));
  EXPECT_EQ(env.svc[0]->stats().misrouted, 1u);
}

}  // namespace
}  // namespace nw::multicast
