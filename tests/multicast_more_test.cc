// Additional multicast coverage: duplicate-log bounds, affinity, filter
// placement, and traffic accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"

namespace nw::multicast {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

struct Env {
  Env(std::size_t n, std::size_t branching, MulticastConfig mc)
      : dep([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.seed = 5;
          return cfg;
        }()) {
    deliveries.assign(dep.size(), 0);
    for (std::size_t i = 0; i < dep.size(); ++i) {
      svc.push_back(std::make_unique<MulticastService>(dep.agent(i), mc));
      svc.back()->SetDeliveryCallback(
          [this, i](const Item&) { ++deliveries[i]; });
    }
    dep.WarmStart();
  }
  Item MakeItem(const std::string& id, std::size_t body = 128) {
    Item item;
    item.id = id;
    item.body_bytes = body;
    return item;
  }
  Deployment dep;
  std::vector<std::unique_ptr<MulticastService>> svc;
  std::vector<int> deliveries;
};

TEST(DupLog, BoundedLogForgetsAncientIds) {
  MulticastConfig mc;
  mc.dup_log_capacity = 4;  // tiny
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  const int first_round = env.deliveries[3];
  // Push 10 other ids through to evict "x#1" from every log...
  for (int k = 0; k < 10; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("y#" + std::to_string(k)));
  }
  env.dep.RunFor(5);
  // ...then replay it: with the id evicted, it is delivered again. This
  // documents the bounded-memory trade-off of the §9 duplicate log.
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  EXPECT_EQ(env.deliveries[3], first_round + 10 + 1);
}

TEST(DupLog, LargeLogSuppressesReplay) {
  MulticastConfig mc;
  mc.dup_log_capacity = 1 << 12;
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  const int before = env.deliveries[3];
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("x#1"));
  env.dep.RunFor(5);
  EXPECT_EQ(env.deliveries[3], before);
  EXPECT_GT(env.svc[0]->stats().duplicates, 0u);
}

TEST(Affinity, RepeatedSendsReuseTheSameRepresentatives) {
  // With warm replicas and no failures, the affinity choice pins one
  // representative per child zone: the set of nodes that ever forward
  // stays fixed across batches.
  MulticastConfig mc;
  Env env(64, 4, mc);
  for (int k = 0; k < 3; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep.RunFor(10);
  std::set<std::size_t> forwarders_first;
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    if (env.svc[i]->stats().forwards > 0) forwarders_first.insert(i);
  }
  for (int k = 0; k < 7; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           env.MakeItem("b#" + std::to_string(k)));
  }
  env.dep.RunFor(10);
  std::set<std::size_t> forwarders_second;
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    if (env.svc[i]->stats().forwards > 0) forwarders_second.insert(i);
  }
  EXPECT_EQ(forwarders_first, forwarders_second)
      << "affinity should keep routing through the same representatives";
}

TEST(Filter, LeafRowsAreFilteredIndividually) {
  // The forwarding filter sees leaf MIB rows on the last hop, so a single
  // leaf can be excluded while its siblings receive.
  MulticastConfig mc;
  Env env(16, 4, mc);
  const std::string excluded_name = env.dep.PathFor(5).Leaf();
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    env.svc[i]->SetForwardFilter(
        [excluded_name](const Item&, const astrolabe::Row& child) {
          return !child.contains("blocked");
        });
  }
  env.dep.agent(5).SetLocalAttr("blocked", true);
  env.dep.WarmStart();  // refresh replicas with the marker
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("m#1"));
  env.dep.RunFor(10);
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    EXPECT_EQ(env.deliveries[i], i == 5 ? 0 : 1) << "leaf " << i;
  }
}

TEST(Stats, ForwardBytesMatchBodyPlusMetadata) {
  MulticastConfig mc;
  Env env(4, 4, mc);
  env.svc[0]->SendToZone(ZonePath::Root(), env.MakeItem("b#1", 1000));
  env.dep.RunFor(5);
  const auto& stats = env.svc[0]->stats();
  ASSERT_EQ(stats.forwards, 3u);  // three siblings
  EXPECT_GE(stats.forward_bytes, 3u * 1000u);
  EXPECT_LT(stats.forward_bytes, 3u * 1400u);  // + metadata overhead only
}

Item UrgentItem(Env& env, const std::string& id, int urgency,
                std::size_t body = 1000) {
  Item item = env.MakeItem(id, body);
  item.metadata["urgency"] = urgency;
  return item;
}

// Regression for the shed-policy bug: a full queue used to refuse the
// incoming item unconditionally, so a flash bulletin arriving behind a
// backlog of routine traffic was the one that got lost.
TEST(Shedding, FlashItemIsNeverShedInFavorOfRoutine) {
  MulticastConfig mc;
  mc.forward_bytes_per_sec = 1'500;  // throttle hard so queues back up
  mc.forward_burst_bytes = 1'500;
  mc.max_queue_items = 2;
  Env env(4, 4, mc);
  std::vector<std::set<std::string>> got(env.dep.size());
  for (std::size_t i = 0; i < env.dep.size(); ++i) {
    env.svc[i]->SetDeliveryCallback(
        [&got, i](const Item& item) { got[i].insert(item.id); });
  }
  // Back up every per-child queue with routine traffic (NITF urgency 8)...
  for (int k = 0; k < 12; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           UrgentItem(env, "routine#" + std::to_string(k), 8));
  }
  EXPECT_GT(env.svc[0]->stats().queue_drops, 0u);
  const auto shed_before = env.svc[0]->stats().queue_shed;
  // ...then a flash bulletin (urgency 1) arrives at the full queues.
  env.svc[0]->SendToZone(ZonePath::Root(), UrgentItem(env, "flash#1", 1));
  EXPECT_GT(env.svc[0]->stats().queue_shed, shed_before)
      << "the flash item must evict a routine entry, not be refused";
  env.dep.RunFor(120);
  // Every leaf received the flash item; only routine items were lost.
  for (std::size_t i = 1; i < env.dep.size(); ++i) {
    EXPECT_TRUE(got[i].contains("flash#1")) << "leaf " << i;
    EXPECT_LT(got[i].size(), 13u) << "leaf " << i;  // overflow really shed
  }
}

TEST(Shedding, RoutineNewcomerIsShedWhenQueueHoldsMoreUrgent) {
  MulticastConfig mc;
  mc.forward_bytes_per_sec = 1'500;
  mc.forward_burst_bytes = 1'500;
  mc.max_queue_items = 2;
  Env env(4, 4, mc);
  for (int k = 0; k < 12; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           UrgentItem(env, "flash#" + std::to_string(k), 1));
  }
  const auto drops_before = env.svc[0]->stats().queue_drops;
  EXPECT_GT(drops_before, 0u);
  env.svc[0]->SendToZone(ZonePath::Root(), UrgentItem(env, "routine#1", 8));
  EXPECT_GT(env.svc[0]->stats().queue_drops, drops_before);
  EXPECT_EQ(env.svc[0]->stats().queue_shed, 0u)
      << "nothing lower-urgency was queued, so nothing may be evicted";
}

TEST(Shedding, TieKeepsQueuedEntryAndShedsNewcomer) {
  MulticastConfig mc;
  mc.forward_bytes_per_sec = 1'500;
  mc.forward_burst_bytes = 1'500;
  mc.max_queue_items = 1;
  Env env(4, 4, mc);
  for (int k = 0; k < 8; ++k) {
    env.svc[0]->SendToZone(ZonePath::Root(),
                           UrgentItem(env, "even#" + std::to_string(k), 5));
  }
  // Equal urgency everywhere: overflow counts as a plain drop (FIFO
  // fairness keeps the older entry), never as an urgency eviction.
  EXPECT_GT(env.svc[0]->stats().queue_drops, 0u);
  EXPECT_EQ(env.svc[0]->stats().queue_shed, 0u);
}

TEST(Stats, MisroutedCountsUnknownZones) {
  MulticastConfig mc;
  Env env(16, 4, mc);
  Item item = env.MakeItem("m#1");
  // Not visible from the sender's path at all.
  env.svc[0]->SendToZone(ZonePath::Parse("/nowhere/at/all"), std::move(item));
  EXPECT_EQ(env.svc[0]->stats().misrouted, 1u);
}

}  // namespace
}  // namespace nw::multicast
