// Tests for the reliable hop-by-hop forwarding layer: backoff schedule,
// suspicion cache, ack/retransmit behavior, representative failover, and
// recovery of pending hops across peer restarts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"
#include "multicast/reliable.h"
#include "util/rng.h"

namespace nw::multicast {
namespace {

using astrolabe::Deployment;
using astrolabe::DeploymentConfig;
using astrolabe::ZonePath;

// ---- BackoffPolicy -----------------------------------------------------

TEST(BackoffPolicy, BaseDelayDoublesUpToCap) {
  ReliableConfig cfg;
  cfg.ack_timeout = 0.25;
  cfg.backoff_multiplier = 2.0;
  cfg.backoff_cap = 2.0;
  BackoffPolicy policy(cfg);
  EXPECT_DOUBLE_EQ(policy.BaseDelay(1), 0.25);
  EXPECT_DOUBLE_EQ(policy.BaseDelay(2), 0.5);
  EXPECT_DOUBLE_EQ(policy.BaseDelay(3), 1.0);
  EXPECT_DOUBLE_EQ(policy.BaseDelay(4), 2.0);
  EXPECT_DOUBLE_EQ(policy.BaseDelay(5), 2.0);   // capped
  EXPECT_DOUBLE_EQ(policy.BaseDelay(50), 2.0);  // stays capped forever
}

TEST(BackoffPolicy, JitterStaysWithinConfiguredBand) {
  ReliableConfig cfg;
  cfg.ack_timeout = 0.25;
  cfg.jitter_frac = 0.2;
  BackoffPolicy policy(cfg);
  util::DeterministicRng rng(7);
  double lo = 1e9, hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const double d = policy.DelayFor(1, rng);
    EXPECT_GE(d, 0.25 * 0.8 - 1e-12);
    EXPECT_LE(d, 0.25 * 1.2 + 1e-12);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // The jitter actually spreads the delays rather than collapsing to one
  // value (retransmissions from many nodes must not synchronize).
  EXPECT_LT(lo, 0.25 * 0.85);
  EXPECT_GT(hi, 0.25 * 1.15);
}

TEST(BackoffPolicy, ZeroJitterIsDeterministic) {
  ReliableConfig cfg;
  cfg.ack_timeout = 0.5;
  cfg.jitter_frac = 0.0;
  BackoffPolicy policy(cfg);
  util::DeterministicRng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(policy.DelayFor(1, rng), 0.5);
  }
}

// ---- SuspicionCache ----------------------------------------------------

TEST(SuspicionCache, SuspicionExpiresAfterTtl) {
  SuspicionCache cache(10.0);
  cache.Suspect(3, /*now=*/100.0);
  EXPECT_TRUE(cache.IsSuspected(3, 100.0));
  EXPECT_TRUE(cache.IsSuspected(3, 109.9));
  EXPECT_FALSE(cache.IsSuspected(3, 110.0));
  EXPECT_FALSE(cache.IsSuspected(4, 100.0));  // never suspected
}

TEST(SuspicionCache, ReSuspectExtendsButNeverShortens) {
  SuspicionCache cache(10.0);
  cache.Suspect(3, 100.0);  // until 110
  cache.Suspect(3, 105.0);  // until 115
  EXPECT_TRUE(cache.IsSuspected(3, 114.0));
  cache.Suspect(3, 90.0);  // stale evidence must not shorten the sentence
  EXPECT_TRUE(cache.IsSuspected(3, 114.0));
}

TEST(SuspicionCache, ClearOnLivenessProof) {
  SuspicionCache cache(10.0);
  cache.Suspect(3, 100.0);
  cache.Clear(3);
  EXPECT_FALSE(cache.IsSuspected(3, 100.0));
}

TEST(SuspicionCache, LiveCountPrunesExpiredEntries) {
  SuspicionCache cache(10.0);
  cache.Suspect(1, 100.0);
  cache.Suspect(2, 104.0);
  EXPECT_EQ(cache.LiveCount(105.0), 2u);
  EXPECT_EQ(cache.LiveCount(112.0), 1u);  // peer 1 expired and was pruned
  EXPECT_EQ(cache.LiveCount(120.0), 0u);
}

// ---- two-level suspicion (DESIGN.md §10) --------------------------------

TEST(SuspicionCache, LegacySuspectIsDeadLevel) {
  SuspicionCache cache(10.0);
  cache.Suspect(3, 100.0);
  EXPECT_EQ(cache.LevelOf(3, 100.0), SuspicionLevel::kDead);
  EXPECT_EQ(cache.LevelOf(3, 110.0), SuspicionLevel::kNone);
}

TEST(SuspicionCache, SlowSuspicionReadmitsAfterAShortQuarantine) {
  SuspicionCache cache(10.0);  // slow TTL defaults to ttl/4 = 2.5
  EXPECT_TRUE(cache.SuspectSlow(3, 100.0));
  EXPECT_EQ(cache.LevelOf(3, 100.0), SuspicionLevel::kSlow);
  EXPECT_TRUE(cache.IsSuspected(3, 102.4));
  // Re-admitted long before a dead suspicion would have expired: the gray
  // peer gets another chance instead of a 10 s sentence.
  EXPECT_FALSE(cache.IsSuspected(3, 102.5));
  EXPECT_EQ(cache.LevelOf(3, 102.5), SuspicionLevel::kNone);
}

TEST(SuspicionCache, RepeatSlowStrikesBackOffThenEscalateToDead) {
  SuspicionCache cache(10.0, /*slow_ttl=*/2.0, /*escalate_strikes=*/3);
  EXPECT_TRUE(cache.SuspectSlow(3, 100.0));   // strike 1: quarantine 2 s
  EXPECT_FALSE(cache.IsSuspected(3, 102.5));  // re-admitted
  EXPECT_TRUE(cache.SuspectSlow(3, 103.0));   // strike 2: quarantine 4 s
  EXPECT_EQ(cache.LevelOf(3, 103.0), SuspicionLevel::kSlow);
  EXPECT_TRUE(cache.IsSuspected(3, 106.9));
  EXPECT_FALSE(cache.IsSuspected(3, 107.0));
  EXPECT_EQ(cache.StrikesOf(3), 2);
  // Third strike: the peer has been retried and failed repeatedly — now
  // it is treated like a crashed one for the full TTL.
  EXPECT_TRUE(cache.SuspectSlow(3, 108.0));
  EXPECT_EQ(cache.LevelOf(3, 108.0), SuspicionLevel::kDead);
  EXPECT_TRUE(cache.IsSuspected(3, 117.9));
  EXPECT_FALSE(cache.IsSuspected(3, 118.0));
}

TEST(SuspicionCache, SlowQuarantineIsCappedAtTheDeadTtl) {
  SuspicionCache cache(10.0, /*slow_ttl=*/4.0, /*escalate_strikes=*/100);
  cache.SuspectSlow(3, 100.0);  // 4 s
  cache.SuspectSlow(3, 105.0);  // 8 s
  cache.SuspectSlow(3, 114.0);  // 16 s would exceed ttl: capped at 10 s
  EXPECT_EQ(cache.LevelOf(3, 114.0), SuspicionLevel::kSlow);
  EXPECT_TRUE(cache.IsSuspected(3, 123.9));
  EXPECT_FALSE(cache.IsSuspected(3, 124.0));
}

TEST(SuspicionCache, ClearResetsStrikesForAFreshStart) {
  SuspicionCache cache(10.0, /*slow_ttl=*/2.0, /*escalate_strikes=*/3);
  cache.SuspectSlow(3, 100.0);
  cache.SuspectSlow(3, 103.0);
  cache.Clear(3);  // liveness proof
  EXPECT_EQ(cache.StrikesOf(3), 0);
  // The next failure starts the ladder from the bottom again.
  EXPECT_TRUE(cache.SuspectSlow(3, 110.0));
  EXPECT_EQ(cache.LevelOf(3, 110.0), SuspicionLevel::kSlow);
  EXPECT_FALSE(cache.IsSuspected(3, 112.0));
}

TEST(SuspicionCache, SuspectSlowReturnsWhetherPeerWasNewlyQuarantined) {
  SuspicionCache cache(10.0, /*slow_ttl=*/2.0, /*escalate_strikes=*/10);
  EXPECT_TRUE(cache.SuspectSlow(3, 100.0));
  EXPECT_FALSE(cache.SuspectSlow(3, 101.0));  // already quarantined
  EXPECT_TRUE(cache.SuspectSlow(3, 110.0));   // re-entry after expiry
}

// ---- integration -------------------------------------------------------

class ReliableEnv {
 public:
  ReliableEnv(std::size_t n, std::size_t branching, MulticastConfig mc = {},
              sim::NetworkConfig net = {}, std::uint64_t seed = 1,
              unsigned sim_threads = 1)
      : dep_([&] {
          DeploymentConfig cfg;
          cfg.num_agents = n;
          cfg.branching = branching;
          cfg.net = net;
          cfg.seed = seed;
          cfg.sim_threads = sim_threads;
          return cfg;
        }()) {
    for (std::size_t i = 0; i < dep_.size(); ++i) {
      services_.push_back(
          std::make_unique<MulticastService>(dep_.agent(i), mc));
      services_.back()->SetDeliveryCallback(
          [this, i](const Item& item) { deliveries_[i].push_back(item.id); });
      deliveries_.emplace_back();
    }
    deliveries_.resize(dep_.size());
    dep_.WarmStart();
  }

  Deployment& dep() { return dep_; }
  MulticastService& svc(std::size_t i) { return *services_[i]; }
  const std::vector<std::string>& delivered(std::size_t i) const {
    return deliveries_[i];
  }
  std::size_t TotalDeliveries() const {
    std::size_t n = 0;
    for (const auto& d : deliveries_) n += d.size();
    return n;
  }
  MulticastStats Totals() const {
    MulticastStats t;
    for (const auto& s : services_) {
      t.retransmits += s->stats().retransmits;
      t.failovers += s->stats().failovers;
      t.acks_received += s->stats().acks_received;
      t.abandoned += s->stats().abandoned;
      t.pending_overflow += s->stats().pending_overflow;
      t.duplicates += s->stats().duplicates;
    }
    return t;
  }
  std::size_t TotalPending() {
    std::size_t n = 0;
    for (const auto& s : services_) n += s->pending_hops();
    return n;
  }

  Item MakeItem(const std::string& id, std::size_t body = 256) {
    Item item;
    item.id = id;
    item.body_bytes = body;
    item.published_at = dep_.sim().Now();
    return item;
  }

 private:
  Deployment dep_;
  std::vector<std::unique_ptr<MulticastService>> services_;
  std::vector<std::vector<std::string>> deliveries_;
};

TEST(ReliableForwarding, FaultFreeRunAcksEverythingNoRetransmits) {
  ReliableEnv env(16, 4);
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  EXPECT_EQ(env.TotalDeliveries(), 16u);
  const MulticastStats t = env.Totals();
  EXPECT_GT(t.acks_received, 0u);
  EXPECT_EQ(t.retransmits, 0u);  // every ack arrived before its timer
  EXPECT_EQ(t.failovers, 0u);
  EXPECT_EQ(env.TotalPending(), 0u);  // all timers canceled by acks
}

TEST(ReliableForwarding, RetransmitRecoversFromHeavyLoss) {
  sim::NetworkConfig net;
  net.loss_prob = 0.3;
  MulticastConfig mc;
  mc.redundancy = 1;  // no redundant paths: retransmission does all the work
  ReliableEnv env(16, 4, mc, net);
  for (int k = 0; k < 5; ++k) {
    env.svc(0).SendToZone(ZonePath::Root(),
                          env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep().RunFor(40);
  EXPECT_EQ(env.TotalDeliveries(), 16u * 5u);  // complete despite 30% loss
  EXPECT_GT(env.Totals().retransmits, 0u);
}

TEST(ReliableForwarding, FireAndForgetModeLosesUnderSameLoss) {
  sim::NetworkConfig net;
  net.loss_prob = 0.3;
  MulticastConfig mc;
  mc.redundancy = 1;
  mc.reliable.enabled = false;
  ReliableEnv env(16, 4, mc, net);
  for (int k = 0; k < 5; ++k) {
    env.svc(0).SendToZone(ZonePath::Root(),
                          env.MakeItem("a#" + std::to_string(k)));
  }
  env.dep().RunFor(40);
  EXPECT_LT(env.TotalDeliveries(), 16u * 5u);  // the legacy mode really loses
  const MulticastStats t = env.Totals();
  EXPECT_EQ(t.acks_received, 0u);
  EXPECT_EQ(t.retransmits, 0u);
  EXPECT_EQ(env.TotalPending(), 0u);
}

TEST(ReliableForwarding, FailsOverToAlternateRepresentative) {
  MulticastConfig mc;
  mc.redundancy = 1;
  ReliableEnv env(27, 3, mc);
  // Node 5 is a member (and candidate representative) of its leaf-parent
  // zone. With it dead, any relay that picked it times out and must fail
  // over to a sibling representative — without redundancy, only the
  // failover path can complete the dissemination.
  env.dep().net().Kill(env.dep().agent(5).id());
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  std::size_t received = 0;
  for (std::size_t i = 0; i < 27; ++i) {
    if (i == 5) continue;
    EXPECT_EQ(env.delivered(i).size(), 1u) << "leaf " << i;
    received += env.delivered(i).size();
  }
  EXPECT_EQ(received, 26u);
  EXPECT_GT(env.Totals().retransmits, 0u);
  // Some node suspects the dead peer after the timeouts.
  std::size_t suspected = 0;
  for (std::size_t i = 0; i < 27; ++i) {
    if (i == 5) continue;
    suspected += env.svc(i).suspected_peers();
  }
  EXPECT_GT(suspected, 0u);
}

TEST(ReliableForwarding, PendingHopSurvivesCrashAndDeliversAfterRestart) {
  MulticastConfig mc;
  mc.redundancy = 1;
  mc.reliable.give_up_after = 120.0;  // outlast the outage
  ReliableEnv env(27, 3, mc);
  env.dep().net().Kill(env.dep().agent(5).id());
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(10);
  EXPECT_EQ(env.delivered(5).size(), 0u);
  EXPECT_GT(env.TotalPending(), 0u);  // someone still owes node 5 this item
  env.dep().net().Restart(env.dep().agent(5).id());
  env.dep().RunFor(20);
  // The retransmission loop reached the restarted node; no hop left open.
  EXPECT_EQ(env.delivered(5).size(), 1u);
  EXPECT_EQ(env.TotalPending(), 0u);
}

TEST(ReliableForwarding, AbandonsAfterGiveUpDeadline) {
  MulticastConfig mc;
  mc.redundancy = 1;
  mc.reliable.give_up_after = 15.0;
  ReliableEnv env(27, 3, mc);
  env.dep().net().Kill(env.dep().agent(5).id());
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(60);
  EXPECT_GT(env.Totals().abandoned, 0u);  // the dead leaf's hop was given up
  EXPECT_EQ(env.TotalPending(), 0u);
}

TEST(ReliableForwarding, PendingOverflowFallsBackToFireAndForget) {
  MulticastConfig mc;
  mc.reliable.max_pending = 2;  // force the bound immediately
  ReliableEnv env(16, 4, mc);
  env.svc(0).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  EXPECT_EQ(env.TotalDeliveries(), 16u);  // overflow degrades, not drops
  EXPECT_GT(env.Totals().pending_overflow, 0u);
}

TEST(ReliableForwarding, DuplicateReliableHopsAreAckedAndSuppressed) {
  MulticastConfig mc;
  mc.redundancy = 3;  // redundant paths produce duplicate reliable hops
  ReliableEnv env(27, 3, mc);
  env.svc(5).SendToZone(ZonePath::Root(), env.MakeItem("a#1"));
  env.dep().RunFor(30);
  for (std::size_t i = 0; i < 27; ++i) {
    EXPECT_EQ(env.delivered(i).size(), 1u) << "leaf " << i;
  }
  const MulticastStats t = env.Totals();
  EXPECT_GT(t.duplicates, 0u);
  // Duplicates were acked too: nothing is left pending, nothing retried.
  EXPECT_EQ(env.TotalPending(), 0u);
  EXPECT_EQ(t.retransmits, 0u);
}

// ---- determinism across engine modes (DESIGN.md §9) --------------------
//
// BackoffPolicy and SuspicionCache feed retransmission timing and
// representative choice; any seed- or schedule-dependence here would make
// parallel replays diverge from sequential ones. The unit tests pin the
// pure primitives; the integration test replays a lossy reliable run under
// both engines and requires identical decisions end to end.

TEST(BackoffPolicy, JitterSequenceIdenticalForIdenticalSeeds) {
  ReliableConfig cfg;
  cfg.ack_timeout = 0.25;
  cfg.jitter_frac = 0.2;
  BackoffPolicy policy(cfg);
  util::DeterministicRng a(20260808), b(20260808), c(77);
  bool diverged_from_c = false;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    const double da = policy.DelayFor(attempt, a);
    EXPECT_DOUBLE_EQ(da, policy.DelayFor(attempt, b))
        << "same seed must give the same jitter at attempt " << attempt;
    if (da != policy.DelayFor(attempt, c)) diverged_from_c = true;
  }
  EXPECT_TRUE(diverged_from_c) << "jitter ignores the injected rng";
}

TEST(SuspicionCache, TtlDecisionsDeterministicUnderSeededChurn) {
  // Replay a seeded churn of suspect/clear/probe operations twice; every
  // observable decision (IsSuspected, LiveCount) must match step for step.
  auto run = [](std::uint64_t seed) {
    SuspicionCache cache(10.0);
    util::DeterministicRng rng(seed);
    std::vector<std::uint64_t> observations;
    double now = 0;
    for (int step = 0; step < 500; ++step) {
      now += rng.NextDouble() * 3.0;
      const sim::NodeId peer = sim::NodeId(rng.NextBelow(8));
      switch (rng.NextBelow(3)) {
        case 0: cache.Suspect(peer, now); break;
        case 1: cache.Clear(peer); break;
        default: break;
      }
      observations.push_back(cache.IsSuspected(peer, now) ? 1 : 0);
      observations.push_back(cache.LiveCount(now));
    }
    return observations;
  };
  EXPECT_EQ(run(20260808), run(20260808));
  EXPECT_NE(run(20260808), run(77)) << "churn ignores the seed";
}

TEST(ReliableForwarding, LossyRunBitIdenticalAcrossEngineModes) {
  // A retransmission-heavy run (30% loss, no redundancy) exercises the
  // full backoff/suspicion/failover machinery. Per-node delivery logs and
  // the hop-level counters must be identical at every thread count.
  auto run = [](unsigned threads) {
    sim::NetworkConfig net;
    net.loss_prob = 0.3;
    MulticastConfig mc;
    mc.redundancy = 1;
    ReliableEnv env(16, 4, mc, net, /*seed=*/20260808, threads);
    for (int k = 0; k < 5; ++k) {
      env.svc(0).SendToZone(ZonePath::Root(),
                            env.MakeItem("a#" + std::to_string(k)));
    }
    env.dep().RunFor(40);
    std::vector<std::vector<std::string>> logs;
    for (std::size_t i = 0; i < env.dep().size(); ++i) {
      logs.push_back(env.delivered(i));
    }
    const MulticastStats t = env.Totals();
    return std::pair(logs, std::tuple(t.retransmits, t.failovers,
                                      t.acks_received, t.duplicates));
  };
  const auto sequential = run(1);
  EXPECT_GT(std::get<0>(sequential.second), 0u) << "run exercised no backoff";
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(sequential.first, parallel.first) << "threads=" << threads;
    EXPECT_EQ(sequential.second, parallel.second) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace nw::multicast
