// Unit tests for AttrValue, BitVector, ZonePath and Table.
#include <gtest/gtest.h>

#include "astrolabe/bitvector.h"
#include "astrolabe/table.h"
#include "astrolabe/value.h"
#include "astrolabe/zone_path.h"

namespace nw::astrolabe {
namespace {

TEST(BitVector, SetTestClear) {
  BitVector bv(128);
  EXPECT_FALSE(bv.Test(0));
  bv.Set(0);
  bv.Set(127);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(127));
  EXPECT_FALSE(bv.Test(64));
  bv.Clear(0);
  EXPECT_FALSE(bv.Test(0));
  EXPECT_EQ(bv.PopCount(), 1u);
}

TEST(BitVector, OrAggregationMatchesUnion) {
  BitVector a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  BitVector u = a | b;
  EXPECT_TRUE(u.Test(3));
  EXPECT_TRUE(u.Test(50));
  EXPECT_TRUE(u.Test(99));
  EXPECT_EQ(u.PopCount(), 3u);
}

TEST(BitVector, OrGrowsToLargerOperand) {
  BitVector a(10), b(200);
  a.Set(1);
  b.Set(150);
  a |= b;
  EXPECT_EQ(a.size(), 200u);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(150));
}

TEST(BitVector, ContainsAll) {
  BitVector big(64), small(64);
  big.Set(1);
  big.Set(2);
  big.Set(3);
  small.Set(2);
  EXPECT_TRUE(big.ContainsAll(small));
  small.Set(9);
  EXPECT_FALSE(big.ContainsAll(small));
}

TEST(BitVector, AndIntersects) {
  BitVector a(64), b(64);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  BitVector i = a & b;
  EXPECT_EQ(i.PopCount(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(AttrValue, TypeAccessors) {
  EXPECT_TRUE(AttrValue().IsNull());
  EXPECT_EQ(AttrValue(std::int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(AttrValue(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(AttrValue(std::int64_t{4}).AsDouble(), 4.0);  // coercion
  EXPECT_EQ(AttrValue("hi").AsString(), "hi");
  EXPECT_TRUE(AttrValue(true).AsBool());
  EXPECT_THROW(AttrValue("hi").AsInt(), TypeError);
  EXPECT_THROW(AttrValue(std::int64_t{1}).AsString(), TypeError);
}

TEST(AttrValue, CompareNumericCrossType) {
  EXPECT_LT(AttrValue(std::int64_t{1}).Compare(AttrValue(1.5)), 0);
  EXPECT_EQ(AttrValue(std::int64_t{2}).Compare(AttrValue(2.0)), 0);
  EXPECT_GT(AttrValue(2.5).Compare(AttrValue(std::int64_t{2})), 0);
}

TEST(AttrValue, CompareStringsAndErrors) {
  EXPECT_LT(AttrValue("abc").Compare(AttrValue("abd")), 0);
  EXPECT_THROW(AttrValue("a").Compare(AttrValue(std::int64_t{1})), TypeError);
  EXPECT_THROW(AttrValue(BitVector(8)).Compare(AttrValue(BitVector(8))),
               TypeError);
}

TEST(AttrValue, EqualsDeepOnLists) {
  ValueList l1{AttrValue(std::int64_t{1}), AttrValue("x")};
  ValueList l2{AttrValue(std::int64_t{1}), AttrValue("x")};
  ValueList l3{AttrValue(std::int64_t{1}), AttrValue("y")};
  EXPECT_TRUE(AttrValue(l1).Equals(AttrValue(l2)));
  EXPECT_FALSE(AttrValue(l1).Equals(AttrValue(l3)));
}

TEST(AttrValue, WireBytesGrowWithContent) {
  EXPECT_LT(AttrValue(std::int64_t{1}).WireBytes(),
            AttrValue(std::string(100, 'x')).WireBytes());
  BitVector bv(1024);
  EXPECT_GE(AttrValue(bv).WireBytes(), 128u);
}

TEST(ZonePath, ParseAndToString) {
  EXPECT_EQ(ZonePath::Parse("/").ToString(), "/");
  EXPECT_EQ(ZonePath::Parse("/usa/ithaca/n3").ToString(), "/usa/ithaca/n3");
  EXPECT_EQ(ZonePath::Parse("/usa/ithaca/n3").Depth(), 3u);
  EXPECT_EQ(ZonePath::Parse("/usa/ithaca/n3").Leaf(), "n3");
}

TEST(ZonePath, ParentAndPrefix) {
  const auto p = ZonePath::Parse("/a/b/c");
  EXPECT_EQ(p.Parent().ToString(), "/a/b");
  EXPECT_EQ(p.Prefix(0).ToString(), "/");
  EXPECT_EQ(p.Prefix(2).ToString(), "/a/b");
  EXPECT_TRUE(ZonePath::Parse("/a").IsPrefixOf(p));
  EXPECT_TRUE(ZonePath::Root().IsPrefixOf(p));
  EXPECT_FALSE(ZonePath::Parse("/a/x").IsPrefixOf(p));
  EXPECT_FALSE(p.IsPrefixOf(ZonePath::Parse("/a/b")));
}

TEST(ZonePath, ChildAndEquality) {
  const auto p = ZonePath::Root().Child("x").Child("y");
  EXPECT_EQ(p, ZonePath::Parse("/x/y"));
  EXPECT_NE(p, ZonePath::Parse("/x"));
}

TEST(Table, MergePrefersHigherVersion) {
  Table t;
  RowEntry incoming;
  incoming.attrs["a"] = std::int64_t{1};
  incoming.version = 5;
  EXPECT_TRUE(t.MergeEntry("r", incoming, 1.0));
  // Lower version rejected.
  RowEntry older;
  older.attrs["a"] = std::int64_t{0};
  older.version = 4;
  EXPECT_FALSE(t.MergeEntry("r", older, 2.0));
  EXPECT_EQ(t.Find("r")->attrs.at("a").AsInt(), 1);
  // Higher version accepted and refresh time updated.
  RowEntry newer;
  newer.attrs["a"] = std::int64_t{9};
  newer.version = 6;
  EXPECT_TRUE(t.MergeEntry("r", newer, 3.0));
  EXPECT_EQ(t.Find("r")->attrs.at("a").AsInt(), 9);
  EXPECT_DOUBLE_EQ(t.Find("r")->last_refresh, 3.0);
}

TEST(Table, EqualVersionIsIdempotent) {
  Table t;
  RowEntry e;
  e.attrs["a"] = std::int64_t{1};
  e.version = 5;
  EXPECT_TRUE(t.MergeEntry("r", e, 1.0));
  EXPECT_FALSE(t.MergeEntry("r", e, 2.0));
}

TEST(Table, ExpiryKeepsOwnRow) {
  Table t;
  RowEntry e;
  e.version = 1;
  e.last_refresh = 0.0;
  t.MergeEntry("me", e, 0.0);
  t.MergeEntry("other", e, 0.0);
  const std::size_t evicted = t.ExpireOlderThan(10.0, "me");
  EXPECT_EQ(evicted, 1u);
  EXPECT_TRUE(t.Has("me"));
  EXPECT_FALSE(t.Has("other"));
}

TEST(Table, WireBytesTracksContent) {
  Table t;
  RowEntry e;
  e.attrs["payload"] = std::string(500, 'p');
  t.MergeEntry("r", e, 0.0);
  EXPECT_GT(t.WireBytes(), 500u);
}

}  // namespace
}  // namespace nw::astrolabe
