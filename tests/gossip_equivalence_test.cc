// Wire-format equivalence harness (gossip wire v2, PROTOCOLS.md): the
// digest/delta anti-entropy must be observationally equivalent to the
// full-snapshot protocol it replaces — same converged knowledge, same
// deliveries — while strictly cheaper on the wire.
//
// Two layers of evidence:
//  1. Randomized deployments (>= 20 seeds, each with a random crash /
//     partition plan): after recovery and quiescence, the content-only MIB
//     hash (testing::MibContentHash — versions and timing excluded) must
//     be identical between a full-mode and a delta-mode run of the same
//     seed, and the cumulative gossip wire bytes of the delta run may
//     never exceed the full run's at any one-second window boundary.
//  2. Committed scenario_test.cc fault plans on the full NewsWire stack:
//     the set of (subscriber, item) deliveries the DeliveryRecorder saw
//     must be identical across wire modes.
//
// The two runs of a seed consume the shared simulator RNG differently
// (delta sends three legs, full sends two), so message timing, row
// versions, and refresh clocks all diverge; only converged *content* is
// comparable. That is exactly what the protocol promises.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "astrolabe/deployment.h"
#include "newswire/system.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw {
namespace {

constexpr double kChaosSeconds = 40;
constexpr double kQuiescenceSeconds = 60;

struct DeploymentRun {
  std::uint64_t mib_hash = 0;
  // Cumulative "astro.gossip*" wire bytes sampled at every one-second
  // (= gossip period) boundary.
  std::vector<std::uint64_t> cumulative_bytes;
  std::string plan_text;
};

DeploymentRun RunDeployment(astrolabe::GossipWireMode mode,
                            std::uint64_t seed) {
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = 32;
  cfg.branching = 4;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  cfg.gossip_wire = mode;
  astrolabe::Deployment dep(cfg);
  dep.StartAll();

  std::vector<sim::NodeId> victims;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    victims.push_back(dep.agent(i).id());
  }
  sim::FaultPlan::RandomOptions opt;
  opt.horizon = kChaosSeconds;
  opt.min_quiescence = 15;
  opt.max_events = 24;
  opt.max_dead = 8;
  opt.loss_bursts = false;  // loss would decouple the two runs' coverage
  const sim::FaultPlan plan = sim::FaultPlan::Random(seed, victims, opt);
  plan.ApplyTo(dep.net(), dep.sim().Now());

  DeploymentRun out;
  out.plan_text = plan.ToString();
  const int windows = int(kChaosSeconds + kQuiescenceSeconds);
  for (int w = 0; w < windows; ++w) {
    dep.RunFor(1.0);
    out.cumulative_bytes.push_back(
        dep.net().StatsForTypePrefix("astro.gossip").bytes);
  }
  out.mib_hash = testing::MibContentHash(dep);
  return out;
}

class GossipEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GossipEquivalence, SameSeedSameFaultsSameConvergedState) {
  const DeploymentRun full =
      RunDeployment(astrolabe::GossipWireMode::kFull, GetParam());
  const DeploymentRun delta =
      RunDeployment(astrolabe::GossipWireMode::kDelta, GetParam());
  EXPECT_NE(full.mib_hash, 0u);
  EXPECT_EQ(full.mib_hash, delta.mib_hash) << "plan: " << full.plan_text;
}

TEST_P(GossipEquivalence, DeltaNeverCostsMoreWireBytesThanFull) {
  const DeploymentRun full =
      RunDeployment(astrolabe::GossipWireMode::kFull, GetParam());
  const DeploymentRun delta =
      RunDeployment(astrolabe::GossipWireMode::kDelta, GetParam());
  ASSERT_EQ(full.cumulative_bytes.size(), delta.cumulative_bytes.size());
  for (std::size_t w = 0; w < full.cumulative_bytes.size(); ++w) {
    // Cumulative at every boundary: the digest overhead delta pays must
    // always have been bought back by suppressed rows, churn or not.
    EXPECT_LE(delta.cumulative_bytes[w], full.cumulative_bytes[w])
        << "window " << w << " plan: " << full.plan_text;
  }
  // And in the fault-free steady-state tail the per-window gap is wide:
  // delta ships digests where full ships whole tables.
  const std::size_t n = full.cumulative_bytes.size();
  const std::uint64_t full_tail =
      full.cumulative_bytes[n - 1] - full.cumulative_bytes[n - 21];
  const std::uint64_t delta_tail =
      delta.cumulative_bytes[n - 1] - delta.cumulative_bytes[n - 21];
  EXPECT_LT(delta_tail * 2, full_tail) << "plan: " << full.plan_text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- full-stack delivery equivalence on committed scenario plans --------

// Verbatim from scenario_test.cc: a crash/recover plan and the two-island
// partition plan (the cases that stress resync after divergence).
constexpr const char* kCrashPlan =
    "crash@5 node=3; crash@6 node=17; restart@40 node=3; restart@42 node=17";
constexpr const char* kDoublePartitionPlan =
    "partition@8 groups=4,5,6,7|8,9,10,11; heal@30";

using AcceptedSet = std::set<std::pair<std::size_t, std::string>>;

AcceptedSet RunSystem(astrolabe::GossipWireMode mode, const char* plan_text) {
  auto plan = sim::FaultPlan::Parse(plan_text);
  EXPECT_TRUE(plan.has_value()) << plan_text;
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = 20260805;
  cfg.gossip_wire = mode;
  newswire::NewswireSystem sys(cfg);
  testing::DeliveryRecorder recorder(sys);

  sys.RunFor(10);
  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);
  std::vector<testing::PublishedItem> published;
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&, k] {
      const std::string& subject = sys.catalog()[std::size_t(k) % 3];
      const std::string id = sys.PublishArticle(0, subject);
      if (!id.empty()) published.push_back({id, subject, "/"});
    });
  }
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);

  // Full recovery is a precondition for set equality — assert it so a
  // completeness regression is reported as itself, not as a mode mismatch.
  const auto completeness =
      testing::CheckSubscriberCompleteness(sys, published, 1.0);
  EXPECT_TRUE(completeness.ok())
      << astrolabe::GossipWireModeName(mode) << ": "
      << completeness.Summary();

  AcceptedSet accepted;
  for (const auto& rec : recorder.trace()) {
    accepted.emplace(rec.subscriber, rec.item_id);
  }
  return accepted;
}

TEST(GossipEquivalenceSystem, CrashPlanDeliversTheSameSetInBothModes) {
  const AcceptedSet full =
      RunSystem(astrolabe::GossipWireMode::kFull, kCrashPlan);
  const AcceptedSet delta =
      RunSystem(astrolabe::GossipWireMode::kDelta, kCrashPlan);
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full, delta);
}

TEST(GossipEquivalenceSystem, PartitionPlanDeliversTheSameSetInBothModes) {
  const AcceptedSet full =
      RunSystem(astrolabe::GossipWireMode::kFull, kDoublePartitionPlan);
  const AcceptedSet delta =
      RunSystem(astrolabe::GossipWireMode::kDelta, kDoublePartitionPlan);
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full, delta);
}

}  // namespace
}  // namespace nw
