// Integration tests for the Astrolabe agent: gossip convergence,
// aggregation propagation, failure detection, representative re-election,
// mobile code distribution, restart re-join, and warm start.
#include <gtest/gtest.h>

#include "astrolabe/deployment.h"

namespace nw::astrolabe {
namespace {

DeploymentConfig SmallConfig(std::size_t n, std::size_t branching,
                             std::uint64_t seed = 1) {
  DeploymentConfig cfg;
  cfg.num_agents = n;
  cfg.branching = branching;
  cfg.gossip_period = 2.0;
  cfg.fail_timeout_rounds = 6;
  cfg.contacts_per_zone = 2;
  cfg.seed = seed;
  return cfg;
}

std::int64_t RootMembers(const Agent& agent) {
  Row summary = agent.ZoneSummary(0);
  auto it = summary.find(kAttrMembers);
  return it == summary.end() ? 0 : it->second.AsInt();
}

TEST(AgentGossip, FlatZoneConverges) {
  Deployment d(SmallConfig(8, 8));
  d.StartAll();
  d.RunFor(40);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.agent(i).TableAt(0).size(), 8u) << "agent " << i;
    EXPECT_EQ(RootMembers(d.agent(i)), 8) << "agent " << i;
  }
}

TEST(AgentGossip, ThreeLevelHierarchyConverges) {
  Deployment d(SmallConfig(27, 3));
  ASSERT_EQ(d.Depth(), 3u);
  d.StartAll();
  d.RunFor(120);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(RootMembers(d.agent(i)), 27) << "agent " << i;
    // Every agent sees all 3 top-level zones.
    EXPECT_EQ(d.agent(i).TableAt(0).size(), 3u) << "agent " << i;
  }
}

TEST(AgentGossip, AttributeChangePropagatesToRootSummary) {
  Deployment d(SmallConfig(16, 4));
  d.InstallFunctionEverywhere("maxtemp", "SELECT MAX(temp) AS temp");
  d.StartAll();
  d.RunFor(60);
  d.agent(5).SetLocalAttr("temp", 99.5);
  d.RunFor(60);
  for (std::size_t i = 0; i < d.size(); ++i) {
    Row summary = d.agent(i).ZoneSummary(0);
    ASSERT_TRUE(summary.contains("temp")) << "agent " << i;
    EXPECT_DOUBLE_EQ(summary.at("temp").AsDouble(), 99.5) << "agent " << i;
  }
}

TEST(AgentGossip, FailedAgentsExpireFromMembership) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.RunFor(60);
  ASSERT_EQ(RootMembers(d.agent(0)), 16);
  // Kill three agents in different zones.
  d.net().Kill(d.agent(5).id());
  d.net().Kill(d.agent(9).id());
  d.net().Kill(d.agent(14).id());
  d.RunFor(120);
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (!d.net().IsAlive(d.agent(i).id())) continue;
    EXPECT_EQ(RootMembers(d.agent(i)), 13) << "agent " << i;
  }
}

TEST(AgentGossip, RepresentativeFailoverElectsReplacement) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.RunFor(60);
  // Agent 0 lives in the first top-level zone; find that zone's contacts
  // as seen from an agent in a different zone.
  const std::string zone0 = d.PathFor(0).Prefix(1).Leaf();
  auto reps = d.agent(15).ContactsOf(0, zone0);
  ASSERT_FALSE(reps.empty());
  const sim::NodeId victim = reps[0];
  d.net().Kill(victim);
  d.RunFor(120);
  auto new_reps = d.agent(15).ContactsOf(0, zone0);
  ASSERT_FALSE(new_reps.empty());
  for (sim::NodeId r : new_reps) {
    EXPECT_NE(r, victim) << "dead representative still advertised";
  }
}

TEST(AgentGossip, LoadBasedElectionPrefersIdleNodes) {
  Deployment d(SmallConfig(4, 4));
  d.StartAll();
  // Make agents 0 and 1 heavily loaded; 2 and 3 idle.
  d.agent(0).SetLocalAttr(kAttrLoad, 0.9);
  d.agent(1).SetLocalAttr(kAttrLoad, 0.8);
  d.agent(2).SetLocalAttr(kAttrLoad, 0.01);
  d.agent(3).SetLocalAttr(kAttrLoad, 0.02);
  d.RunFor(60);
  // contacts_per_zone = 2: the two idle agents should be elected.
  Row summary = d.agent(0).ZoneSummary(0);
  ASSERT_TRUE(summary.contains(kAttrContacts));
  const ValueList& reps = summary.at(kAttrContacts).AsList();
  ASSERT_EQ(reps.size(), 2u);
  std::vector<std::int64_t> ids{reps[0].AsInt(), reps[1].AsInt()};
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), d.agent(2).id()) != ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), d.agent(3).id()) != ids.end());
}

TEST(AgentGossip, FunctionInstalledOnOneAgentSpreadsEverywhere) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.RunFor(40);
  Certificate cert = d.root_authority().Issue(
      CertKind::kFunction, "diskmax", 0,
      {{"code", "SELECT MAX(disk) AS disk"}, {"version", "1"}}, 0, 1e18);
  ASSERT_TRUE(d.agent(3).InstallFunction(cert));
  d.agent(3).SetLocalAttr("disk", std::int64_t{777});
  d.RunFor(120);
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto names = d.agent(i).InstalledFunctionNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(), "diskmax") != names.end())
        << "agent " << i;
    Row summary = d.agent(i).ZoneSummary(0);
    ASSERT_TRUE(summary.contains("disk")) << "agent " << i;
    EXPECT_EQ(summary.at("disk").AsInt(), 777);
  }
}

TEST(AgentGossip, TamperedFunctionCertificateRejectedEverywhere) {
  Deployment d(SmallConfig(8, 8));
  d.StartAll();
  Certificate cert = d.root_authority().Issue(
      CertKind::kFunction, "evil", 0,
      {{"code", "SELECT MAX(x) AS x"}, {"version", "1"}}, 0, 1e18);
  cert.claims["code"] = "SELECT MIN(x) AS x";  // tampered after signing
  EXPECT_FALSE(d.agent(0).InstallFunction(cert));
  d.RunFor(40);
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto names = d.agent(i).InstalledFunctionNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(), "evil") == names.end());
  }
}

TEST(AgentGossip, UnparsableFunctionRejected) {
  Deployment d(SmallConfig(4, 4));
  Certificate cert = d.root_authority().Issue(
      CertKind::kFunction, "broken", 0,
      {{"code", "SELEC garbage("}, {"version", "1"}}, 0, 1e18);
  EXPECT_FALSE(d.agent(0).InstallFunction(cert));
}

TEST(AgentGossip, FunctionVersionUpgradeWins) {
  Deployment d(SmallConfig(8, 8));
  d.StartAll();
  Certificate v1 = d.root_authority().Issue(
      CertKind::kFunction, "f", 0,
      {{"code", "SELECT MAX(a) AS a"}, {"version", "1"}}, 0, 1e18);
  Certificate v2 = d.root_authority().Issue(
      CertKind::kFunction, "f", 0,
      {{"code", "SELECT MIN(a) AS a_min"}, {"version", "2"}}, 0, 1e18);
  ASSERT_TRUE(d.agent(0).InstallFunction(v2));
  // Older version must not downgrade.
  EXPECT_FALSE(d.agent(0).InstallFunction(v1));
  // And a mixed system converges on v2.
  ASSERT_TRUE(d.agent(5).InstallFunction(v1));
  d.agent(1).SetLocalAttr("a", std::int64_t{5});
  d.RunFor(80);
  for (std::size_t i = 0; i < d.size(); ++i) {
    Row summary = d.agent(i).ZoneSummary(0);
    EXPECT_TRUE(summary.contains("a_min")) << "agent " << i;
  }
}

TEST(AgentGossip, RestartedAgentRejoins) {
  Deployment d(SmallConfig(8, 8));
  d.StartAll();
  d.RunFor(40);
  const sim::NodeId victim = d.agent(3).id();
  d.net().Kill(victim);
  d.RunFor(60);
  EXPECT_EQ(RootMembers(d.agent(0)), 7);
  d.net().Restart(victim);
  d.RunFor(60);
  EXPECT_EQ(RootMembers(d.agent(0)), 8);
  EXPECT_EQ(RootMembers(d.agent(3)), 8);  // the rejoined agent sees everyone
}

TEST(AgentGossip, SurvivesMessageLoss) {
  DeploymentConfig cfg = SmallConfig(16, 4);
  cfg.net.loss_prob = 0.2;  // every 5th message lost
  Deployment d(cfg);
  d.StartAll();
  d.RunFor(200);
  // Under sustained loss a membership row can legitimately be mid-refresh
  // at any single instant: give the lossy steady state a bounded window to
  // show full membership rather than pinning one unlucky sample.
  auto all_see_full = [&] {
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (RootMembers(d.agent(i)) != 16) return false;
    }
    return true;
  };
  for (int extra = 0; extra < 20 && !all_see_full(); ++extra) d.RunFor(10);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(RootMembers(d.agent(i)), 16) << "agent " << i;
  }
}

TEST(AgentGossip, WarmStartMatchesConvergedShape) {
  Deployment d(SmallConfig(27, 3));
  d.WarmStart();
  // Without a single gossip round, every agent already has the full view.
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(RootMembers(d.agent(i)), 27);
    EXPECT_EQ(d.agent(i).TableAt(0).size(), 3u);
    // Contacts resolve for every top-level zone.
    for (const auto& [key, entry] : d.agent(i).TableAt(0)) {
      EXPECT_FALSE(d.agent(i).ContactsOf(0, key).empty());
    }
  }
}

TEST(AgentGossip, WarmStartThenGossipStaysStable) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.WarmStart();
  d.RunFor(60);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(RootMembers(d.agent(i)), 16) << "agent " << i;
  }
}

TEST(AgentGossip, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Deployment d(SmallConfig(16, 4, seed));
    d.StartAll();
    d.RunFor(50);
    std::uint64_t total_sent = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      total_sent += d.net().StatsFor(d.agent(i).id()).messages_sent;
    }
    return total_sent;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(AgentGossip, GossipTrafficPerNodeIsBounded) {
  Deployment d(SmallConfig(64, 4));
  d.StartAll();
  d.RunFor(100);
  // Each agent gossips O(depth) exchanges per round; with replies that is
  // a handful of messages per period, independent of system size.
  const double rounds = 100 / 2.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& stats = d.net().StatsFor(d.agent(i).id());
    EXPECT_LT(stats.messages_sent, static_cast<std::uint64_t>(rounds * 20))
        << "agent " << i;
  }
}

TEST(AgentGossip, PartitionSplitsMembershipAndHeals) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.RunFor(60);
  ASSERT_EQ(RootMembers(d.agent(0)), 16);
  // Partition the first top-level zone (agents 0..3) away.
  for (std::size_t i = 0; i < 4; ++i) {
    d.net().SetPartitionGroup(d.agent(i).id(), 1);
  }
  d.RunFor(120);
  // Each side's membership view shrinks to its own partition.
  EXPECT_EQ(RootMembers(d.agent(1)), 4) << "minority side";
  EXPECT_EQ(RootMembers(d.agent(9)), 12) << "majority side";
  // Heal: both sides re-merge because live owners keep re-issuing fresh
  // row versions (the deletion-stability rule admits them again).
  d.net().HealPartitions();
  d.RunFor(120);
  EXPECT_EQ(RootMembers(d.agent(1)), 16);
  EXPECT_EQ(RootMembers(d.agent(9)), 16);
}

TEST(AgentGossip, MinorityPartitionKeepsItsOwnZoneAlive) {
  Deployment d(SmallConfig(16, 4));
  d.StartAll();
  d.RunFor(60);
  for (std::size_t i = 0; i < 4; ++i) {
    d.net().SetPartitionGroup(d.agent(i).id(), 1);
  }
  d.RunFor(120);
  // Within the isolated zone, gossip still works: leaf table intact.
  EXPECT_EQ(d.agent(0).TableAt(d.Depth() - 1).size(), 4u);
}

TEST(AgentGossip, SingleAgentSystemIsSane) {
  Deployment d(SmallConfig(1, 4));
  d.StartAll();
  d.RunFor(20);
  EXPECT_EQ(RootMembers(d.agent(0)), 1);
}

}  // namespace
}  // namespace nw::astrolabe
