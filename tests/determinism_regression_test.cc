// Determinism regression guard (ISSUE 8 satellite): rerun a randomized
// torture-style churn seed twice per engine mode and require bit-identical
// trace hashes — within a mode (no hash-container iteration order, no
// address-dependent ordering, no hidden global RNG draws leaked into the
// run) and across modes (the parallel engine reproduces the sequential
// interleaving exactly, DESIGN.md §9).
//
// This is the test that would have caught the historical failure classes
// audited for this suite: protocol decisions driven by unordered_map/
// unordered_set iteration order, and shared-RNG draws whose order depends
// on scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "newswire/system.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

struct ChurnDigest {
  std::uint64_t delivered = 0;
  std::uint64_t delivery_hash = 0;
  std::uint64_t event_hash = 0;
  std::uint64_t mib_hash = 0;
  std::string plan_text;
};

ChurnDigest RunChurn(std::uint64_t seed, unsigned threads) {
  obs::EventTracer tracer(1 << 18);
  SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  cfg.sim_threads = threads;
  cfg.tracer = &tracer;
  NewswireSystem sys(cfg);
  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);

  std::vector<sim::NodeId> victims;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    victims.push_back(sys.subscriber_agent(i).id());
  }
  sim::FaultPlan::RandomOptions opt;
  opt.horizon = 60;
  opt.min_quiescence = 15;
  opt.max_events = 24;
  opt.max_dead = 6;
  const sim::FaultPlan plan = sim::FaultPlan::Random(seed, victims, opt);

  const double base = sys.Now();
  plan.ApplyTo(sys.deployment().net(), base);
  for (int step = 0; step < 60; ++step) {
    sys.deployment().sim().At(base + step, [&sys, step] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(step) % 3]);
    });
  }
  sys.RunFor(60 + 180);

  ChurnDigest out;
  out.delivered = sys.total_delivered();
  out.delivery_hash = recorder.TraceHash();
  out.event_hash = tracer.SequenceHash();
  out.mib_hash = testing::MibContentHash(sys.deployment());
  out.plan_text = plan.ToString();
  return out;
}

void ExpectEqualDigests(const ChurnDigest& a, const ChurnDigest& b) {
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.delivered, b.delivered) << "plan: " << a.plan_text;
  EXPECT_EQ(a.delivery_hash, b.delivery_hash) << "plan: " << a.plan_text;
  EXPECT_EQ(a.event_hash, b.event_hash) << "plan: " << a.plan_text;
  EXPECT_EQ(a.mib_hash, b.mib_hash) << "plan: " << a.plan_text;
}

constexpr std::uint64_t kSeed = 0x20260808;

TEST(DeterminismRegression, TortureSeedReplaysIdenticallySequential) {
  const ChurnDigest a = RunChurn(kSeed, 1);
  const ChurnDigest b = RunChurn(kSeed, 1);
  EXPECT_GT(a.delivered, 0u);
  ExpectEqualDigests(a, b);
}

TEST(DeterminismRegression, TortureSeedReplaysIdenticallyParallel) {
  const ChurnDigest a = RunChurn(kSeed, 4);
  const ChurnDigest b = RunChurn(kSeed, 4);
  EXPECT_GT(a.delivered, 0u);
  ExpectEqualDigests(a, b);
}

TEST(DeterminismRegression, TortureSeedIdenticalAcrossEngineModes) {
  ExpectEqualDigests(RunChurn(kSeed, 1), RunChurn(kSeed, 4));
}

}  // namespace
}  // namespace nw::newswire
