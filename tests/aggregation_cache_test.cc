// Incremental aggregation engine (DESIGN.md §11): the dirty-tracked memo
// and the compiled query plans must be *behaviorally invisible* — the
// engine exists to skip provably redundant work, never to change a result.
//
// Layers of evidence, smallest to largest:
//  1. Table content-epoch units: heartbeat-only mutations (MergeRefresh,
//     Refresh, same-content_version MergeEntry) leave the epoch alone;
//     content mutations (Upsert, body-replacing MergeEntry, Erase, expiry)
//     bump it.
//  2. Compiled plans vs the reference interpreter: strict (type-exact)
//     result equality over adversarial mixed-type tables, for every
//     accumulator fast path and the generic fallback.
//  3. Memo accounting: every level of every RecomputeAggregates is either
//     evaluated or served from the memo — never both, never neither — and
//     force_full_recompute evaluates all of them.
//  4. A/B property over 20 random fault seeds: an incremental run and a
//     force-full run of the same seed are bit-identical — same MIB content
//     hash, same (kAggregation-masked) trace sequence hash, same per-agent
//     gossip counters.
//  5. Full NewsWire stack under a committed chaos cocktail: the delivery
//     trace is bit-identical across both engines and --sim-threads 1/4.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "astrolabe/deployment.h"
#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "astrolabe/sql/plan.h"
#include "astrolabe/table.h"
#include "newswire/system.h"
#include "obs/trace.h"
#include "scenarios.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw {
namespace {

using astrolabe::AttrValue;
using astrolabe::BitVector;
using astrolabe::Row;
using astrolabe::RowEntry;
using astrolabe::RowRefresh;
using astrolabe::Table;
using astrolabe::ValueList;
namespace sql = astrolabe::sql;

// ---- 1. content-epoch units --------------------------------------------

RowEntry MakeEntry(std::int64_t a, std::uint64_t version,
                   std::uint64_t content_version) {
  RowEntry e;
  e.attrs["a"] = a;
  e.version = version;
  e.content_version = content_version;
  return e;
}

TEST(ContentEpoch, UpsertEraseAndExpiryBump) {
  Table t;
  const std::uint64_t e0 = t.content_epoch();
  t.Upsert("r").attrs["a"] = std::int64_t{1};
  EXPECT_GT(t.content_epoch(), e0);

  const std::uint64_t e1 = t.content_epoch();
  t.Erase("r");
  EXPECT_GT(t.content_epoch(), e1);
  const std::uint64_t e2 = t.content_epoch();
  t.Erase("r");  // absent: nothing removed, nothing bumped
  EXPECT_EQ(t.content_epoch(), e2);

  RowEntry& doomed = t.Upsert("old");
  doomed.last_refresh = 1.0;
  t.Upsert("keep").last_refresh = 1.0;
  const std::uint64_t e3 = t.content_epoch();
  EXPECT_EQ(t.ExpireOlderThan(5.0, "keep"), 1u);
  EXPECT_GT(t.content_epoch(), e3);
  const std::uint64_t e4 = t.content_epoch();
  EXPECT_EQ(t.ExpireOlderThan(5.0, "keep"), 0u);  // nothing left to evict
  EXPECT_EQ(t.content_epoch(), e4);
}

TEST(ContentEpoch, MergeRefreshDoesNotBump) {
  Table t;
  ASSERT_TRUE(t.MergeEntry("r", MakeEntry(1, 5, 5), 1.0));
  const std::uint64_t epoch = t.content_epoch();
  EXPECT_TRUE(t.MergeRefresh(RowRefresh{"r", 6, 5}, 2.0));
  EXPECT_EQ(t.content_epoch(), epoch);
  EXPECT_EQ(t.Find("r")->version, 6u);
  EXPECT_DOUBLE_EQ(t.Find("r")->last_refresh, 2.0);
  // Rejected refreshes (stale version, different content stream) are also
  // epoch-neutral.
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"r", 6, 5}, 3.0));
  EXPECT_FALSE(t.MergeRefresh(RowRefresh{"r", 9, 4}, 3.0));
  EXPECT_EQ(t.content_epoch(), epoch);
}

TEST(ContentEpoch, RefreshIsEpochNeutral) {
  Table t;
  ASSERT_TRUE(t.MergeEntry("r", MakeEntry(1, 5, 5), 1.0));
  const std::uint64_t epoch = t.content_epoch();
  t.Refresh("r", 8, 4.0);
  EXPECT_EQ(t.content_epoch(), epoch);
  EXPECT_EQ(t.Find("r")->version, 8u);
  EXPECT_DOUBLE_EQ(t.Find("r")->last_refresh, 4.0);
  t.Refresh("absent", 9, 4.0);  // no row: no-op
  EXPECT_EQ(t.content_epoch(), epoch);
  EXPECT_FALSE(t.Has("absent"));
}

TEST(ContentEpoch, SameContentVersionMergeIsHeartbeatOnly) {
  Table t;
  ASSERT_TRUE(t.MergeEntry("r", MakeEntry(1, 5, 5), 1.0));
  const std::uint64_t epoch = t.content_epoch();
  // Same author content stream (content_version 5), newer heartbeat: the
  // merge is accepted but the body — and the epoch — stay put.
  ASSERT_TRUE(t.MergeEntry("r", MakeEntry(1, 7, 5), 2.0));
  EXPECT_EQ(t.content_epoch(), epoch);
  EXPECT_EQ(t.Find("r")->version, 7u);
  // A new content stream replaces the body and bumps the epoch.
  ASSERT_TRUE(t.MergeEntry("r", MakeEntry(9, 8, 8), 3.0));
  EXPECT_GT(t.content_epoch(), epoch);
  EXPECT_EQ(t.Find("r")->attrs.at("a").AsInt(), 9);
  // A brand-new row always bumps.
  const std::uint64_t e2 = t.content_epoch();
  ASSERT_TRUE(t.MergeEntry("s", MakeEntry(2, 3, 3), 3.0));
  EXPECT_GT(t.content_epoch(), e2);
  // A rejected (older) merge does not.
  const std::uint64_t e3 = t.content_epoch();
  EXPECT_FALSE(t.MergeEntry("r", MakeEntry(0, 4, 4), 4.0));
  EXPECT_EQ(t.content_epoch(), e3);
}

TEST(ContentEpoch, CopyConstructionPreservesEpoch) {
  Table t;
  t.Upsert("r").attrs["a"] = std::int64_t{1};
  const Table copy(t);  // COW clone: same content, same epoch
  EXPECT_EQ(copy.content_epoch(), t.content_epoch());
}

// ---- 2. compiled plans vs the reference interpreter --------------------

// Type-exact row equality: Equals() alone would accept int 1 == double 1.0,
// which is precisely the laxity a compiled fast path must not hide behind.
void ExpectRowsIdentical(const Row& expect, const Row& got,
                         const std::string& context) {
  ASSERT_EQ(expect.size(), got.size()) << context;
  auto ie = expect.begin();
  auto ig = got.begin();
  for (; ie != expect.end(); ++ie, ++ig) {
    EXPECT_EQ(ie->first, ig->first) << context;
    EXPECT_EQ(ie->second.type(), ig->second.type())
        << context << " attr " << ie->first;
    EXPECT_TRUE(ie->second.Equals(ig->second))
        << context << " attr " << ie->first << ": "
        << ie->second.ToString() << " vs " << ig->second.ToString();
    EXPECT_EQ(ie->second.ToString(), ig->second.ToString())
        << context << " attr " << ie->first;
  }
}

// An adversarial table: int/double/string/bits/list/null-typed values,
// missing attributes, ties in the TOP sort key, flattening lists.
Table MixedTable() {
  Table t;
  auto add = [&t](const std::string& key, Row attrs) {
    RowEntry& e = t.Upsert(key);
    e.attrs = std::move(attrs);
    e.version = 1;
  };
  BitVector b1(8), b2(8);
  b1.Set(1);
  b1.Set(3);
  b2.Set(3);
  b2.Set(6);
  add("r0", {{"load", AttrValue(std::int64_t{3})},
             {"nmembers", AttrValue(std::int64_t{1})},
             {"name", AttrValue("alpha")},
             {"contacts", AttrValue(ValueList{AttrValue(std::int64_t{10}),
                                              AttrValue(std::int64_t{11})})},
             {"tags", AttrValue(ValueList{AttrValue("x"), AttrValue("y")})},
             {"bits", AttrValue(b1)}});
  add("r1", {{"load", AttrValue(1.5)},  // double: SUM falls off the int path
             {"nmembers", AttrValue(std::int64_t{2})},
             {"name", AttrValue("beta")},
             {"contacts", AttrValue(ValueList{AttrValue(std::int64_t{20})})},
             {"bits", AttrValue(b2)}});
  add("r2", {{"load", AttrValue("busted")},  // string: per-row TypeError skip
             {"nmembers", AttrValue(std::int64_t{4})},
             {"name", AttrValue("gamma")},
             {"tags", AttrValue("solo")}});  // scalar into FIRST
  add("r3", {{"nmembers", AttrValue(std::int64_t{8})},  // load absent
             {"name", AttrValue("delta")},
             {"contacts", AttrValue(ValueList{AttrValue(std::int64_t{30}),
                                              AttrValue(std::int64_t{31}),
                                              AttrValue(std::int64_t{32})})}});
  add("r4", {{"load", AttrValue()},  // explicit null value
             {"nmembers", AttrValue(std::int64_t{16})},
             {"name", AttrValue("alpha")}});  // MIN/MAX tie
  add("r5", {{"load", AttrValue(std::int64_t{3})},  // TOP sort-key tie with r0
             {"nmembers", AttrValue(3.5)},
             {"name", AttrValue("epsilon")},
             {"contacts", AttrValue(std::int64_t{40})},  // scalar, not list
             {"bits", AttrValue(std::int64_t{0x30})}});  // int mask into OR/AND
  return t;
}

constexpr const char* kEquivalenceQueries[] = {
    // Simple-path accumulators over a bare attribute, plus COUNT(*).
    "SELECT SUM(load) AS s, AVG(load) AS a, MIN(load) AS mn, MAX(load) AS mx,"
    " COUNT(load) AS c, COUNT(*) AS n",
    // The core election function: the fast TOP path, list flattening, ties.
    "SELECT TOP(3, contacts ORDER BY load ASC) AS contacts,"
    " SUM(nmembers) AS nmembers, AVG(load) AS load",
    "SELECT TOP(2, name ORDER BY nmembers DESC) AS top_names",
    "SELECT TOP(100, contacts ORDER BY name ASC) AS all_contacts",
    // FIRST flattening and the bits/mask OR/AND accumulators.
    "SELECT FIRST(4, tags) AS t, COUNT(tags) AS ct",
    "SELECT OR(bits) AS ob, AND(bits) AS ab",
    // WHERE sharing, null-typed predicate rows.
    "SELECT SUM(nmembers) AS s WHERE load >= 1",
    "SELECT COUNT(*) AS n WHERE isnull(load)",
    // Generic fallback: computed aggregate args and computed TOP keys.
    "SELECT SUM(load * 2) AS s2, COUNT(coalesce(load, 0)) AS c2",
    "SELECT TOP(2, name ORDER BY load + 0.5 DESC) AS t2",
    "SELECT MIN(name) AS mn, MAX(name) AS mx, SUM(len(name)) AS lens",
};

TEST(CompiledPlan, MatchesInterpreterOnAdversarialTable) {
  const Table table = MixedTable();
  for (const char* code : kEquivalenceQueries) {
    sql::Query reference = sql::ParseQuery(code);
    const sql::CompiledQuery plan = sql::CompiledQuery::Compile(
        sql::ParseQuery(code));
    ExpectRowsIdentical(sql::EvalQuery(reference, table), plan.Eval(table),
                        code);
  }
}

TEST(CompiledPlan, MatchesInterpreterOnEmptyTable) {
  const Table empty;
  for (const char* code : kEquivalenceQueries) {
    sql::Query reference = sql::ParseQuery(code);
    const sql::CompiledQuery plan = sql::CompiledQuery::Compile(
        sql::ParseQuery(code));
    ExpectRowsIdentical(sql::EvalQuery(reference, empty), plan.Eval(empty),
                        std::string("empty: ") + code);
  }
}

TEST(CompiledPlan, IncomparableTopKeysThrowFromBothEngines) {
  // TOP's sort key comparison is allowed to throw out of Finish (the rows
  // fed int and string keys side by side); the compiled fast path must
  // not silently swallow what the interpreter propagates.
  const Table table = MixedTable();
  const char* code = "SELECT TOP(2, name ORDER BY load DESC) AS top_names";
  sql::Query reference = sql::ParseQuery(code);
  const sql::CompiledQuery plan =
      sql::CompiledQuery::Compile(sql::ParseQuery(code));
  EXPECT_THROW(sql::EvalQuery(reference, table), astrolabe::TypeError);
  EXPECT_THROW(plan.Eval(table), astrolabe::TypeError);
}

TEST(CompiledPlan, EvalIntoMergesLikeInsertOrAssign) {
  const Table table = MixedTable();
  const sql::CompiledQuery plan = sql::CompiledQuery::Compile(
      sql::ParseQuery("SELECT COUNT(*) AS n, MIN(name) AS mn"));
  Row out;
  out["n"] = AttrValue("overwritten");  // collision: plan output wins
  out["untouched"] = AttrValue(std::int64_t{7});
  plan.EvalInto(table, out);
  EXPECT_EQ(out.at("n").AsInt(), 6);
  EXPECT_EQ(out.at("mn").AsString(), "alpha");
  EXPECT_EQ(out.at("untouched").AsInt(), 7);
}

TEST(CompiledPlan, UnknownBuiltinStillThrowsTypeErrorAtEval) {
  // Unknown names must stay a parse-accepted, eval-time TypeError — the
  // aggregation layer then skips the row, in both engines.
  const Table table = MixedTable();
  const char* code = "SELECT COUNT(nosuchfn(load)) AS c, COUNT(*) AS n";
  sql::Query reference = sql::ParseQuery(code);
  const sql::CompiledQuery plan =
      sql::CompiledQuery::Compile(sql::ParseQuery(code));
  ExpectRowsIdentical(sql::EvalQuery(reference, table), plan.Eval(table),
                      code);
  EXPECT_EQ(plan.Eval(table).at("c").AsInt(), 0);
  EXPECT_THROW(
      sql::EvalScalar(*sql::ParseQuery("SELECT COUNT(nosuchfn(load)) AS c")
                           .items[0]
                           .arg,
                      table.Find("r0")->attrs),
      astrolabe::TypeError);
}

// ---- 3. memo accounting ------------------------------------------------

astrolabe::DeploymentConfig SmallDeploymentConfig(std::uint64_t seed,
                                                  bool force_full) {
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = 16;
  cfg.branching = 4;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  cfg.force_full_recompute = force_full;
  return cfg;
}

TEST(AggregationMemo, EveryLevelIsEvaluatedOrServedExactlyOnce) {
  astrolabe::Deployment dep(SmallDeploymentConfig(7, false));
  dep.StartAll();
  dep.RunFor(30);
  std::uint64_t hits = 0, evals = 0;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& st = dep.agent(i).agg_stats();
    const std::uint64_t aggregated_levels = dep.agent(i).Depth() - 1;
    EXPECT_EQ(st.levels_evaluated + st.cache_hits,
              st.recompute_calls * aggregated_levels)
        << "agent " << i;
    hits += st.cache_hits;
    evals += st.levels_evaluated;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(evals, 0u);
  // Steady state after convergence is heartbeat-dominated: epochs stop
  // moving, so the memo serves (nearly) every pass.
  dep.RunFor(20);
  std::uint64_t tail_hits = 0, tail_evals = 0;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& st = dep.agent(i).agg_stats();
    tail_hits += st.cache_hits;
    tail_evals += st.levels_evaluated;
  }
  tail_hits -= hits;
  tail_evals -= evals;
  EXPECT_GT(tail_hits, 4 * tail_evals)
      << "steady state should be memo-dominated: " << tail_hits << " hits vs "
      << tail_evals << " evals";
}

TEST(AggregationMemo, ForceFullEvaluatesEverything) {
  astrolabe::Deployment dep(SmallDeploymentConfig(7, true));
  dep.StartAll();
  dep.RunFor(30);
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& st = dep.agent(i).agg_stats();
    EXPECT_EQ(st.cache_hits, 0u) << "agent " << i;
    EXPECT_EQ(st.compare_skips, 0u) << "agent " << i;
    EXPECT_EQ(st.levels_evaluated,
              st.recompute_calls * (dep.agent(i).Depth() - 1))
        << "agent " << i;
  }
}

TEST(AggregationMemo, TraceHookRecordsHitsAndEvals) {
  obs::EventTracer tracer(
      1 << 14, obs::CategoryBit(obs::EventCategory::kAggregation));
  astrolabe::DeploymentConfig cfg = SmallDeploymentConfig(7, false);
  cfg.tracer = &tracer;
  astrolabe::Deployment dep(cfg);
  dep.StartAll();
  dep.RunFor(10);
  std::uint64_t hit_events = 0, eval_events = 0;
  for (const auto& ev : tracer.Events()) {
    ASSERT_EQ(ev.category, obs::EventCategory::kAggregation);
    if (std::string_view(ev.type) == "agg.cache_hit") ++hit_events;
    if (std::string_view(ev.type) == "agg.eval") ++eval_events;
  }
  EXPECT_GT(hit_events, 0u);
  EXPECT_GT(eval_events, 0u);
}

// ---- 4. A/B property: incremental vs force-full, 20 fault seeds --------

struct ABRun {
  std::uint64_t mib_hash = 0;
  std::uint64_t seq_hash = 0;
  // Per-agent gossip counters; bit-identical runs must match exactly.
  std::vector<std::array<std::uint64_t, 4>> gossip;
  std::uint64_t cache_hits = 0;
  std::uint64_t levels_evaluated = 0;
  std::string plan_text;
};

ABRun RunAB(bool force_full, std::uint64_t seed) {
  // kAggregation events are the one intentional observable difference
  // between the engines, so mask them out of the compared trace; every
  // other category must match event for event.
  obs::EventTracer tracer(
      1 << 15,
      obs::kAllCategories &
          ~obs::CategoryBit(obs::EventCategory::kAggregation));
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = 24;
  cfg.branching = 4;
  cfg.gossip_period = 1.0;
  cfg.seed = seed;
  cfg.force_full_recompute = force_full;
  cfg.tracer = &tracer;
  astrolabe::Deployment dep(cfg);
  dep.StartAll();

  std::vector<sim::NodeId> victims;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    victims.push_back(dep.agent(i).id());
  }
  sim::FaultPlan::RandomOptions opt;
  opt.horizon = 30;
  opt.min_quiescence = 12;
  opt.max_events = 24;
  opt.max_dead = 6;
  const sim::FaultPlan plan = sim::FaultPlan::Random(seed, victims, opt);
  plan.ApplyTo(dep.net(), dep.sim().Now());

  ABRun out;
  out.plan_text = plan.ToString();
  dep.RunFor(75);
  out.mib_hash = testing::MibContentHash(dep);
  out.seq_hash = tracer.SequenceHash();
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& gs = dep.agent(i).gossip_stats();
    out.gossip.push_back({gs.rounds, gs.exchanges_sent, gs.rows_merged,
                          gs.rows_expired});
    out.cache_hits += dep.agent(i).agg_stats().cache_hits;
    out.levels_evaluated += dep.agent(i).agg_stats().levels_evaluated;
  }
  return out;
}

class AggregationEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AggregationEquivalence, IncrementalIsBitIdenticalToForceFull) {
  const ABRun incremental = RunAB(false, GetParam());
  const ABRun full = RunAB(true, GetParam());
  EXPECT_NE(incremental.mib_hash, 0u);
  EXPECT_EQ(incremental.mib_hash, full.mib_hash)
      << "plan: " << incremental.plan_text;
  EXPECT_EQ(incremental.seq_hash, full.seq_hash)
      << "plan: " << incremental.plan_text;
  EXPECT_EQ(incremental.gossip, full.gossip)
      << "plan: " << incremental.plan_text;
  // And the equivalence is not vacuous: the incremental run actually
  // skipped work the full run performed.
  EXPECT_EQ(full.cache_hits, 0u);
  EXPECT_GT(incremental.cache_hits, 0u);
  EXPECT_LT(incremental.levels_evaluated, full.levels_evaluated)
      << "plan: " << incremental.plan_text;
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, AggregationEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- 5. full stack: chaos cocktail, both engines, 1 and 4 shards -------

constexpr const char* kCocktail =
    "gray@5..30 node=2 factor=8 delay=0.05; corrupt@8..22 p=0.03; "
    "dup@12..26 p=0.08; asym@10..18 groups=24,25,26,27|28,29,30,31";

std::vector<testing::DeliveryRecord> RunStack(bool force_full,
                                              unsigned sim_threads) {
  newswire::SystemConfig cfg = testing::CommittedScenarioConfig();
  cfg.seed = 20260808;
  cfg.sim_threads = sim_threads;
  cfg.force_full_recompute = force_full;
  newswire::NewswireSystem sys(cfg);
  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);
  const double base = sys.Now();
  auto plan = sim::FaultPlan::Parse(kCocktail);
  EXPECT_TRUE(plan.has_value());
  plan->ApplyTo(sys.deployment().net(), base);
  for (int k = 0; k < 24; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  sys.RunFor(std::max(24.0, plan->EndTime()) + 120);
  return recorder.trace();
}

TEST(AggregationEquivalenceSystem, ChaosDeliveryTraceIdenticalAcrossEngines) {
  const auto incremental = RunStack(false, 1);
  const auto full = RunStack(true, 1);
  EXPECT_FALSE(incremental.empty());
  const auto engines = testing::CheckReplayIdentical(incremental, full);
  EXPECT_TRUE(engines.ok()) << engines.Summary();
  // The incremental engine must also keep the parallel golden-trace
  // guarantee: 4 worker shards replay the 1-shard run bit-identically.
  const auto threaded = RunStack(false, 4);
  const auto shards = testing::CheckReplayIdentical(incremental, threaded);
  EXPECT_TRUE(shards.ok()) << shards.Summary();
}

}  // namespace
}  // namespace nw
