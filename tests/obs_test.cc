// Unit tests for the observability layer: MetricsRegistry (counters,
// gauges, histograms, snapshots, per-node scoping) and EventTracer (ring
// wraparound, category filtering, JSONL round-trip, sequence hashing).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nw::obs {
namespace {

// ---- MetricsRegistry --------------------------------------------------

TEST(MetricsRegistry, CounterAddAndTotals) {
  MetricsRegistry reg(3);
  const auto id = reg.Counter("sim.network.messages_sent");
  ASSERT_NE(id, MetricsRegistry::kInvalidMetric);
  reg.Add(id, 0);        // default delta 1
  reg.Add(id, 1, 5);
  reg.Add(id, 1);
  EXPECT_EQ(reg.CounterValue(id, 0), 1u);
  EXPECT_EQ(reg.CounterValue(id, 1), 6u);
  EXPECT_EQ(reg.CounterValue(id, 2), 0u);
  EXPECT_EQ(reg.CounterTotal(id), 7u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg(1);
  const auto a = reg.Counter("x.y.z");
  const auto b = reg.Counter("x.y.z");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(MetricsRegistry, KindMismatchReturnsInvalid) {
  MetricsRegistry reg(1);
  const auto c = reg.Counter("same.name");
  ASSERT_NE(c, MetricsRegistry::kInvalidMetric);
  EXPECT_EQ(reg.Gauge("same.name"), MetricsRegistry::kInvalidMetric);
  EXPECT_EQ(reg.Histogram("same.name", {1.0}),
            MetricsRegistry::kInvalidMetric);
  // Updates through the invalid id are harmless no-ops.
  reg.Add(MetricsRegistry::kInvalidMetric, 0);
  reg.Set(MetricsRegistry::kInvalidMetric, 0, 1.0);
  reg.Observe(MetricsRegistry::kInvalidMetric, 0, 1.0);
  EXPECT_EQ(reg.CounterTotal(c), 0u);
}

TEST(MetricsRegistry, OutOfRangeNodeIsNoOp) {
  MetricsRegistry reg(2);
  const auto id = reg.Counter("c");
  reg.Add(id, 99);  // node does not exist
  EXPECT_EQ(reg.CounterTotal(id), 0u);
}

TEST(MetricsRegistry, EnsureNodesGrowsAndPreserves) {
  MetricsRegistry reg(1);
  const auto c = reg.Counter("c");
  const auto g = reg.Gauge("g");
  reg.Add(c, 0, 3);
  reg.Set(g, 0, 2.5);
  reg.EnsureNodes(4);
  EXPECT_EQ(reg.node_count(), 4u);
  EXPECT_EQ(reg.CounterValue(c, 0), 3u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(g, 0), 2.5);
  reg.Add(c, 3, 2);  // the new node is writable
  EXPECT_EQ(reg.CounterTotal(c), 5u);
  reg.EnsureNodes(2);  // shrinking requests are ignored
  EXPECT_EQ(reg.node_count(), 4u);
}

TEST(MetricsRegistry, GaugeHoldsLastValuePerNode) {
  MetricsRegistry reg(2);
  const auto id = reg.Gauge("sim.network.uplink_backlog_s");
  reg.Set(id, 0, 1.0);
  reg.Set(id, 0, 0.25);
  reg.Set(id, 1, 9.0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(id, 0), 0.25);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(id, 1), 9.0);
}

TEST(MetricsRegistry, HistogramBucketsAndQuantiles) {
  MetricsRegistry reg(2);
  const auto id = reg.Histogram("lat", {0.1, 1.0, 10.0});
  ASSERT_NE(id, MetricsRegistry::kInvalidMetric);
  reg.Observe(id, 0, 0.05);   // bucket 0
  reg.Observe(id, 0, 0.5);    // bucket 1
  reg.Observe(id, 1, 5.0);    // bucket 2
  reg.Observe(id, 1, 100.0);  // overflow
  const auto snap = reg.Snap();
  const auto* m = snap.Find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  const auto& h = m->histogram;
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);  // overflow bucket
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, 0.05);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.Mean(), (0.05 + 0.5 + 5.0 + 100.0) / 4, 1e-12);
  // Quantiles report the holding bucket's upper edge (max for overflow).
  EXPECT_DOUBLE_EQ(h.Quantile(25), 0.1);
  EXPECT_DOUBLE_EQ(h.Quantile(50), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(75), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(100), 100.0);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry reg(1);
  const auto c = reg.Counter("c");
  const auto h = reg.Histogram("h", {1.0});
  reg.Add(c, 0, 10);
  reg.Observe(h, 0, 0.5);
  const auto snap = reg.Snap();
  reg.Add(c, 0, 90);
  reg.Observe(h, 0, 0.5);
  EXPECT_EQ(snap.Find("c")->counter_total, 10u);
  EXPECT_EQ(snap.Find("h")->histogram.count, 1u);
  EXPECT_EQ(reg.CounterTotal(c), 100u);
}

TEST(MetricsRegistry, SnapshotSortedByNameAndFindMisses) {
  MetricsRegistry reg(1);
  reg.Counter("zzz");
  reg.Counter("aaa");
  reg.Gauge("mmm");
  const auto snap = reg.Snap();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aaa");
  EXPECT_EQ(snap.metrics[1].name, "mmm");
  EXPECT_EQ(snap.metrics[2].name, "zzz");
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsIds) {
  MetricsRegistry reg(2);
  const auto c = reg.Counter("c");
  const auto g = reg.Gauge("g");
  const auto h = reg.Histogram("h", {1.0});
  reg.Add(c, 1, 7);
  reg.Set(g, 0, 3.0);
  reg.Observe(h, 0, 0.5);
  reg.Reset();
  EXPECT_EQ(reg.CounterTotal(c), 0u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(g, 0), 0.0);
  EXPECT_EQ(reg.Snap().Find("h")->histogram.count, 0u);
  // Same id still works after the reset.
  reg.Add(c, 1, 2);
  EXPECT_EQ(reg.CounterTotal(c), 2u);
}

TEST(MetricsRegistry, WriteJsonIsParseableShape) {
  MetricsRegistry reg(2);
  reg.Add(reg.Counter("c"), 0, 4);
  reg.Set(reg.Gauge("g"), 1, 1.5);
  reg.Observe(reg.Histogram("h", MetricsRegistry::LatencyBucketsSeconds()),
              0, 0.123);
  char buf[8192] = {};
  FILE* mem = tmpfile();
  ASSERT_NE(mem, nullptr);
  reg.Snap().WriteJson(mem);
  std::fflush(mem);
  std::rewind(mem);
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, mem);
  std::fclose(mem);
  const std::string json(buf, n);
  EXPECT_NE(json.find("\"nodes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"c\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

// ---- EventTracer ------------------------------------------------------

TEST(EventTracer, RecordsAndKeepsOrder) {
  EventTracer tracer(8);
  tracer.Record(1.0, 3, EventCategory::kSend, "net.send", 7, 100, "gossip");
  tracer.Record(2.0, 4, EventCategory::kDeliver, "net.deliver", 3, 100);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].category, EventCategory::kSend);
  EXPECT_STREQ(events[0].type, "net.send");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 100u);
  EXPECT_STREQ(events[0].detail, "gossip");
  EXPECT_EQ(events[1].node, 4u);
}

TEST(EventTracer, RingWrapsKeepingNewest) {
  EventTracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(double(i), std::uint32_t(i), EventCategory::kGossip,
                  "gossip.round", std::uint64_t(i));
  }
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.overwritten(), 6u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(EventTracer, CategoryMaskFiltersAtRecordTime) {
  EventTracer tracer(16, CategoryBit(EventCategory::kDrop));
  EXPECT_TRUE(tracer.Enabled(EventCategory::kDrop));
  EXPECT_FALSE(tracer.Enabled(EventCategory::kGossip));
  tracer.Record(1.0, 0, EventCategory::kGossip, "gossip.round");
  tracer.Record(2.0, 0, EventCategory::kDrop, "net.drop.loss");
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.Events()[0].category, EventCategory::kDrop);
}

TEST(EventTracer, DetailIsTruncatedNotOverflowed) {
  EventTracer tracer(4);
  const std::string longid(200, 'x');
  tracer.Record(0.0, 0, EventCategory::kCache, "cache.dup", 0, 0, longid);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  const std::string detail = events[0].detail;
  EXPECT_LT(detail.size(), sizeof(TraceEvent{}.detail));
  EXPECT_EQ(detail, std::string(detail.size(), 'x'));
}

TEST(EventTracer, CategoryNamesRoundTrip) {
  for (unsigned c = 0; c < unsigned(EventCategory::kCount_); ++c) {
    const auto cat = EventCategory(c);
    const auto back = CategoryFromName(CategoryName(cat));
    ASSERT_TRUE(back.has_value()) << CategoryName(cat);
    EXPECT_EQ(*back, cat);
  }
  EXPECT_FALSE(CategoryFromName("bogus").has_value());
}

TEST(EventTracer, ParseCategoryMaskLists) {
  EXPECT_EQ(ParseCategoryMask("all"), kAllCategories);
  const auto m = ParseCategoryMask("gossip,drop");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, CategoryBit(EventCategory::kGossip) |
                    CategoryBit(EventCategory::kDrop));
  EXPECT_FALSE(ParseCategoryMask("gossip,nope").has_value());
}

TEST(EventTracer, JsonlRoundTrip) {
  TraceEvent ev;
  ev.time = 12.5;
  ev.node = 42;
  ev.category = EventCategory::kDeliver;
  ev.type = "net.deliver";
  ev.a = 7;
  ev.b = 1024;
  std::snprintf(ev.detail, sizeof ev.detail, "%s", "news#3");
  const std::string line = EventTracer::ToJsonl(ev);
  const auto parsed = EventTracer::ParseJsonlLine(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_DOUBLE_EQ(parsed->time, 12.5);
  EXPECT_EQ(parsed->node, 42u);
  EXPECT_EQ(parsed->category, "deliver");
  EXPECT_EQ(parsed->type, "net.deliver");
  EXPECT_EQ(parsed->a, 7u);
  EXPECT_EQ(parsed->b, 1024u);
  EXPECT_EQ(parsed->detail, "news#3");
}

TEST(EventTracer, DumpJsonlEmitsOneParseableLinePerEvent) {
  EventTracer tracer(8);
  tracer.Record(1.0, 1, EventCategory::kPublish, "pub.item", 1, 2, "a#1");
  tracer.Record(2.0, 2, EventCategory::kFault, "net.kill", 1);
  FILE* mem = tmpfile();
  ASSERT_NE(mem, nullptr);
  tracer.DumpJsonl(mem);
  std::fflush(mem);
  std::rewind(mem);
  char line[512];
  int lines = 0;
  while (std::fgets(line, sizeof line, mem) != nullptr) {
    auto parsed = EventTracer::ParseJsonlLine(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    ++lines;
  }
  std::fclose(mem);
  EXPECT_EQ(lines, 2);
}

TEST(EventTracer, SequenceHashIsDeterministicAndSensitive) {
  EventTracer a(16), b(16), c(16);
  for (EventTracer* t : {&a, &b}) {
    t->Record(1.0, 0, EventCategory::kSend, "net.send", 1, 64, "m");
    t->Record(2.0, 1, EventCategory::kDeliver, "net.deliver", 0, 64, "m");
  }
  c.Record(1.0, 0, EventCategory::kSend, "net.send", 1, 65, "m");  // b differs
  c.Record(2.0, 1, EventCategory::kDeliver, "net.deliver", 0, 64, "m");
  EXPECT_EQ(a.SequenceHash(), b.SequenceHash());
  EXPECT_NE(a.SequenceHash(), c.SequenceHash());
  // Masked hashing folds in only the selected categories: a and c share
  // the deliver event but differ in the send event.
  EXPECT_EQ(a.SequenceHash(CategoryBit(EventCategory::kDeliver)),
            c.SequenceHash(CategoryBit(EventCategory::kDeliver)));
  EXPECT_NE(a.SequenceHash(CategoryBit(EventCategory::kSend)),
            c.SequenceHash(CategoryBit(EventCategory::kSend)));
  EXPECT_NE(a.SequenceHash(), 0u);
}

TEST(EventTracer, ClearEmptiesTheRing) {
  EventTracer tracer(4);
  tracer.Record(1.0, 0, EventCategory::kGossip, "gossip.round");
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

}  // namespace
}  // namespace nw::obs
