// Tests for the synthetic news workload generator.
#include <gtest/gtest.h>

#include <map>

#include "newswire/system.h"
#include "newswire/workload.h"

namespace nw::newswire {
namespace {

SystemConfig SmallSystem() {
  SystemConfig cfg;
  cfg.num_subscribers = 30;
  cfg.num_publishers = 2;
  cfg.branching = 4;
  cfg.catalog_size = 2;
  cfg.subjects_per_subscriber = 2;  // everyone gets everything
  cfg.seed = 6;
  return cfg;
}

TEST(Workload, RateAtFollowsDiurnalCurve) {
  NewswireSystem sys(SmallSystem());
  WorkloadConfig wl;
  wl.diurnal_amplitude = 0.5;
  wl.day_seconds = 1000;
  NewsWorkload workload(sys, wl);
  EXPECT_NEAR(workload.RateAt(0), 1.0, 1e-9);
  EXPECT_NEAR(workload.RateAt(250), 1.5, 1e-9);   // sin peak
  EXPECT_NEAR(workload.RateAt(750), 0.5, 1e-9);   // sin trough
}

TEST(Workload, SchedulesRoughlyTheConfiguredVolume) {
  NewswireSystem sys(SmallSystem());
  sys.RunFor(5);
  WorkloadConfig wl;
  wl.duration = 3600;
  wl.base_items_per_hour = 120;
  wl.bursts_per_hour = 0;
  wl.revision_prob = 0;
  wl.seed = 7;
  NewsWorkload workload(sys, wl);
  workload.ScheduleAll();
  EXPECT_NEAR(double(workload.stats().routine_scheduled), 120.0, 40.0);
  sys.RunFor(3700);
  EXPECT_EQ(workload.published().size(), workload.stats().routine_scheduled);
}

TEST(Workload, BurstsAreUrgentAndClustered) {
  NewswireSystem sys(SmallSystem());
  sys.RunFor(5);
  WorkloadConfig wl;
  wl.duration = 3600;
  wl.base_items_per_hour = 10;
  wl.bursts_per_hour = 4;
  wl.burst_items = 5;
  wl.burst_span = 60;
  wl.revision_prob = 0;
  wl.seed = 11;
  NewsWorkload workload(sys, wl);
  workload.ScheduleAll();
  ASSERT_GT(workload.stats().bursts, 0u);
  sys.RunFor(3700);
  // All burst items of one burst share a subject and fall within the span.
  std::map<std::string, std::vector<double>> burst_times_by_subject;
  for (const auto& p : workload.published()) {
    if (p.burst) burst_times_by_subject[p.subject].push_back(p.at);
  }
  EXPECT_FALSE(burst_times_by_subject.empty());
}

TEST(Workload, RevisionsSupersedeAndFuse) {
  NewswireSystem sys(SmallSystem());
  sys.RunFor(5);
  WorkloadConfig wl;
  wl.duration = 600;
  wl.base_items_per_hour = 120;
  wl.bursts_per_hour = 0;
  wl.revision_prob = 1.0;  // every item gets a revision
  wl.revision_delay_mean = 30;
  wl.seed = 13;
  NewsWorkload workload(sys, wl);
  workload.ScheduleAll();
  sys.RunFor(1200);
  ASSERT_GT(workload.stats().revisions_scheduled, 0u);
  std::uint64_t fused = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    fused += sys.subscriber(i).cache().stats().superseded_dropped;
  }
  EXPECT_GT(fused, 0u) << "revisions should displace their originals";
}

TEST(Workload, DeterministicSchedule) {
  auto run = [] {
    NewswireSystem sys(SmallSystem());
    sys.RunFor(5);
    WorkloadConfig wl;
    wl.duration = 600;
    wl.seed = 99;
    NewsWorkload workload(sys, wl);
    workload.ScheduleAll();
    sys.RunFor(700);
    return workload.published().size();
  };
  EXPECT_EQ(run(), run());
}

TEST(Workload, ThrottledPublishesAreCounted) {
  SystemConfig cfg = SmallSystem();
  cfg.publisher_rate = 0.01;  // nearly everything throttled
  cfg.publisher_burst = 1.0;
  NewswireSystem sys(cfg);
  sys.RunFor(5);
  WorkloadConfig wl;
  wl.duration = 600;
  wl.base_items_per_hour = 600;
  wl.revision_prob = 0;
  NewsWorkload workload(sys, wl);
  workload.ScheduleAll();
  sys.RunFor(700);
  EXPECT_GT(workload.stats().throttled, 0u);
  EXPECT_LT(workload.published().size(), workload.stats().routine_scheduled);
}

}  // namespace
}  // namespace nw::newswire
