// Unit tests for the sample-statistics helpers used by every bench report.
#include <gtest/gtest.h>

#include "util/stats.h"

namespace nw::util {
namespace {

TEST(SampleStats, EmptyIsAllZeros) {
  SampleStats s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.Add(4.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.Min(), 4.5);
  EXPECT_DOUBLE_EQ(s.Max(), 4.5);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0) << "undefined for n<2, reported as 0";
  // Every percentile of a single sample is that sample, including the
  // q=0 edge (nearest-rank clamps to the first sample).
  EXPECT_DOUBLE_EQ(s.Percentile(0), 4.5);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 4.5);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 4.5);
}

TEST(SampleStats, SummaryOfKnownSamples) {
  SampleStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 1e-3);  // sample (n-1) standard deviation
}

TEST(SampleStats, NearestRankPercentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(double(i));  // 1..100
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Median(), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
}

TEST(SampleStats, PercentileEdgeQuantilesTwoSamples) {
  SampleStats s;
  s.Add(1.0);
  s.Add(2.0);
  // Direct edge probes: rank must clamp to [1, n] on both ends, so q=0
  // returns the first sample and q=100 the last, never off-by-one.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.0);   // ceil(0.5*2)=1 -> first
  EXPECT_DOUBLE_EQ(s.Percentile(50.1), 2.0); // ceil(1.002)=2 -> second
}

TEST(SampleStats, PercentileClampsOutOfRangeQuantiles) {
  SampleStats s;
  for (double x : {3.0, 1.0, 2.0}) s.Add(x);
  // Out-of-range q is clamped instead of reading past the sample array
  // (the old ceil(q/100*n) indexed out of bounds for q > 100 in builds
  // without asserts).
  EXPECT_DOUBLE_EQ(s.Percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1000), 3.0);
}

TEST(SampleStats, PercentileOfUnsortedInput) {
  SampleStats s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 9.0);
}

TEST(SampleStats, AddAfterPercentileResorts) {
  SampleStats s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
  s.Add(5.0);  // arrives after a sorted query
  EXPECT_DOUBLE_EQ(s.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
  EXPECT_EQ(s.Count(), 3u);
}

TEST(SampleStats, DuplicateHeavySamples) {
  SampleStats s;
  for (int i = 0; i < 99; ++i) s.Add(1.0);
  s.Add(100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0) << "outlier only at the tail";
}

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value, 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value, 42u);
}

}  // namespace
}  // namespace nw::util
