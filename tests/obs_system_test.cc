// System-level observability tests:
//
// 1. Golden-trace regression: replaying a committed scenario_test.cc fault
//    plan twice under tracing yields the identical (non-trivial) event
//    sequence hash — the instrumentation neither perturbs the run nor
//    depends on host state.
// 2. Metrics-vs-invariants cross-check: after a faulted torture run, the
//    subscriber "accepted" counter must agree exactly with the delivery
//    trace the testing::DeliveryRecorder saw and with the system's own
//    delivery total — three independently maintained counts of one event.
//
// Golden runs are pinned to an explicit gossip wire mode (full or delta):
// the two formats schedule different message legs, so their traces hash
// differently by design and each mode carries its own golden. After a
// deliberate protocol change, regenerate expectations by re-running this
// binary and reading the printed hashes:
//   cmake --build build --target obs_system_test && \
//     ./build/tests/obs_system_test --gtest_filter='ObsGoldenTrace.*'
// (The goldens are run-to-run equalities, not committed constants, so
// "regeneration" is just confirming the suite is green again.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "newswire/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

SystemConfig ScenarioConfig(
    astrolabe::GossipWireMode wire = astrolabe::GossipWireMode::kFull) {
  // Mirrors the committed 32-node scenario_test.cc deployment. The wire
  // mode is pinned explicitly (default: the v1 full-snapshot format) so
  // golden hashes do not move when the system-wide default changes.
  SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = 20260805;
  cfg.gossip_wire = wire;
  return cfg;
}

// One committed CrashDuringPublish-style run with sinks attached; returns
// the tracer's sequence hash and fills the output counts.
struct RunOutcome {
  std::uint64_t trace_hash = 0;
  std::uint64_t total_recorded = 0;
  std::uint64_t accepted_counter = 0;
  std::uint64_t recorder_deliveries = 0;
  std::uint64_t system_delivered = 0;
  std::uint64_t fault_events = 0;
};

RunOutcome RunTracedScenario(
    const char* plan_text,
    astrolabe::GossipWireMode wire = astrolabe::GossipWireMode::kFull) {
  auto plan = sim::FaultPlan::Parse(plan_text);
  EXPECT_TRUE(plan.has_value()) << plan_text;

  obs::MetricsRegistry metrics;
  obs::EventTracer tracer(1 << 18);
  SystemConfig cfg = ScenarioConfig(wire);
  cfg.metrics = &metrics;
  cfg.tracer = &tracer;
  NewswireSystem sys(cfg);
  testing::DeliveryRecorder recorder(sys);

  sys.RunFor(10);
  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);

  RunOutcome out;
  out.trace_hash = tracer.SequenceHash();
  out.total_recorded = tracer.total_recorded();
  const auto snap = metrics.Snap();
  if (const auto* m = snap.Find("newswire.subscriber.accepted")) {
    out.accepted_counter = m->counter_total;
  }
  out.recorder_deliveries = recorder.trace().size();
  out.system_delivered = sys.total_delivered();
  for (const auto& ev : tracer.Events()) {
    if (ev.category == obs::EventCategory::kFault) ++out.fault_events;
  }
  return out;
}

// Committed plans, verbatim from scenario_test.cc.
constexpr const char* kCrashPlan =
    "crash@5 node=3; crash@6 node=17; restart@40 node=3; restart@42 node=17";
constexpr const char* kFlapPlan =
    "crash@5 node=7; restart@8 node=7; crash@11 node=7; restart@14 node=7; "
    "crash@17 node=7; restart@20 node=7";
constexpr const char* kLossPlan =
    "loss@5..20 p=0.25; crash@10 node=13; restart@25 node=13";

TEST(ObsGoldenTrace, SameSeedSameFaultPlanSameHash) {
  const RunOutcome first = RunTracedScenario(kCrashPlan);
  const RunOutcome second = RunTracedScenario(kCrashPlan);
  // The hash must cover a real run (events were recorded, faults traced).
  EXPECT_GT(first.total_recorded, 1000u);
  EXPECT_GE(first.fault_events, 4u) << "2 crashes + 2 restarts at minimum";
  EXPECT_NE(first.trace_hash, 0u);
  // Bitwise replay determinism, the property tier-1 regressions rely on.
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.total_recorded, second.total_recorded);
}

TEST(ObsGoldenTrace, DifferentPlansProduceDifferentHashes) {
  const RunOutcome crash = RunTracedScenario(kCrashPlan);
  const RunOutcome flap = RunTracedScenario(kFlapPlan);
  EXPECT_NE(crash.trace_hash, flap.trace_hash);
}

TEST(ObsGoldenTrace, DeltaWireModeHasItsOwnDeterministicGolden) {
  // The digest/delta wire format (v2) is a different protocol on the wire
  // — three legs instead of two — so its golden is separate from the full
  // mode's, but must be exactly as replayable.
  const RunOutcome first =
      RunTracedScenario(kCrashPlan, astrolabe::GossipWireMode::kDelta);
  const RunOutcome second =
      RunTracedScenario(kCrashPlan, astrolabe::GossipWireMode::kDelta);
  EXPECT_GT(first.total_recorded, 1000u);
  EXPECT_NE(first.trace_hash, 0u);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.total_recorded, second.total_recorded);
  const RunOutcome full =
      RunTracedScenario(kCrashPlan, astrolabe::GossipWireMode::kFull);
  EXPECT_NE(first.trace_hash, full.trace_hash)
      << "the two wire formats must not be trace-identical, or the mode "
         "knob is not reaching the agents";
}

TEST(ObsMetricsCrossCheck, AcceptedCounterMatchesInvariantTrace) {
  for (const char* plan : {kCrashPlan, kFlapPlan, kLossPlan}) {
    const RunOutcome out = RunTracedScenario(plan);
    SCOPED_TRACE(plan);
    EXPECT_GT(out.accepted_counter, 0u);
    // Subscriber::Accept fires the delivery handlers exactly when it bumps
    // the accepted counter, and NewswireSystem::total_delivered counts the
    // same handler calls — all three views must agree exactly.
    EXPECT_EQ(out.accepted_counter, out.recorder_deliveries);
    EXPECT_EQ(out.accepted_counter, out.system_delivered);
  }
}

TEST(ObsMetricsCrossCheck, NetworkCountersAreConsistent) {
  obs::MetricsRegistry metrics;
  SystemConfig cfg = ScenarioConfig();
  cfg.metrics = &metrics;
  NewswireSystem sys(cfg);
  sys.RunFor(10);
  const double base = sys.Now();
  auto plan = sim::FaultPlan::Parse(kCrashPlan);
  ASSERT_TRUE(plan.has_value());
  plan->ApplyTo(sys.deployment().net(), base);
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);

  const auto snap = metrics.Snap();
  const auto* sent = snap.Find("sim.network.messages_sent");
  const auto* delivered = snap.Find("sim.network.messages_delivered");
  ASSERT_NE(sent, nullptr);
  ASSERT_NE(delivered, nullptr);
  // Sends either deliver or drop for one of the four classified reasons;
  // nothing else may leak messages.
  std::uint64_t drops = 0;
  for (const char* name :
       {"sim.network.drops_loss", "sim.network.drops_dead_endpoint",
        "sim.network.drops_stale_incarnation",
        "sim.network.drops_partition"}) {
    const auto* m = snap.Find(name);
    ASSERT_NE(m, nullptr) << name;
    drops += m->counter_total;
  }
  EXPECT_GT(sent->counter_total, 0u);
  EXPECT_GT(delivered->counter_total, 0u);
  // Every send resolves to exactly one of delivered / the four drop
  // classes — except messages still in flight when RunFor's clock cutoff
  // hits (gossip and repair timers keep the queue non-empty forever), so
  // the residue must be small but need not be zero.
  ASSERT_GE(sent->counter_total, delivered->counter_total + drops);
  const std::uint64_t in_flight =
      sent->counter_total - delivered->counter_total - drops;
  EXPECT_LT(in_flight, 256u) << "more unresolved sends than one round of "
                                "gossip+repair traffic can explain";
  // The registry's totals must agree with the network's own TrafficStats.
  const auto total = sys.deployment().net().TotalStats();
  EXPECT_EQ(sent->counter_total, total.messages_sent);
  EXPECT_EQ(delivered->counter_total, total.messages_received);
  EXPECT_EQ(drops, total.messages_dropped);
  // Kill/restart events landed in the fault counters.
  EXPECT_EQ(snap.Find("sim.network.node_kills")->counter_total, 2u);
  EXPECT_EQ(snap.Find("sim.network.node_restarts")->counter_total, 2u);
}

}  // namespace
}  // namespace nw::newswire
