// Golden-trace equivalence suite for the parallel simulation engine
// (DESIGN.md §9): every committed fault-plan scenario from
// tests/scenarios.h is replayed at 1, 2, and 4 simulator threads, and the
// runs must be bit-identical — the same EventTracer sequence hash, the
// same MIB content hash, and the same delivery trace record for record.
//
// The 1-thread run uses the classic sequential engine; any divergence at
// 2 or 4 threads means the conservative-window machinery (event keys,
// per-shard queues, barrier merge, staged tracing) leaked scheduling
// nondeterminism into the simulation, which would silently invalidate
// every replay-based regression test in the repo.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "newswire/system.h"
#include "obs/trace.h"
#include "scenarios.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"

namespace nw::newswire {
namespace {

using testing::kReliableScenarios;
using testing::kScenarios;
using testing::ReliableScenario;
using testing::Scenario;

constexpr unsigned kThreadCounts[] = {1, 2, 4};

struct RunResult {
  unsigned threads = 1;
  std::uint64_t trace_hash = 0;      // EventTracer::SequenceHash
  std::uint64_t mib_hash = 0;        // MibContentHash after settle
  std::uint64_t delivery_hash = 0;   // DeliveryRecorder::TraceHash
  std::uint64_t events_recorded = 0; // total Record() calls that passed
  std::vector<testing::DeliveryRecord> deliveries;
};

// Replays one committed scenario exactly as scenario_test.cc does, at the
// given thread count, and digests everything observable about the run.
RunResult RunCommittedScenario(const Scenario& scenario, unsigned threads) {
  auto plan = sim::FaultPlan::Parse(scenario.plan);
  EXPECT_TRUE(plan.has_value()) << scenario.plan;

  obs::EventTracer tracer(1 << 18);
  SystemConfig cfg = testing::CommittedScenarioConfig();
  cfg.sim_threads = threads;
  cfg.tracer = &tracer;
  NewswireSystem sys(cfg);

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);
  const double base = sys.Now();
  plan->ApplyTo(sys.deployment().net(), base);

  const astrolabe::ZonePath zone = sys.publisher_agent(0).path().Prefix(1);
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(base + k, [&sys, &zone, &scenario, k] {
      const bool scoped = scenario.scoped_publish && k % 2 == 1;
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3],
                         scoped ? zone : astrolabe::ZonePath::Root());
    });
  }
  sys.RunFor(std::max(30.0, plan->EndTime()) + 120);

  RunResult r;
  r.threads = threads;
  r.trace_hash = tracer.SequenceHash();
  r.mib_hash = testing::MibContentHash(sys.deployment());
  r.delivery_hash = recorder.TraceHash();
  r.events_recorded = tracer.total_recorded();
  r.deliveries = recorder.trace();
  return r;
}

RunResult RunReliableScenario(const ReliableScenario& scenario,
                              unsigned threads) {
  obs::EventTracer tracer(1 << 18);
  SystemConfig cfg = testing::ReliableScenarioConfig();
  cfg.sim_threads = threads;
  cfg.tracer = &tracer;
  NewswireSystem sys(cfg);

  testing::DeliveryRecorder recorder(sys);
  sys.RunFor(10);
  const double base = sys.Now();

  auto plan = sim::FaultPlan::Parse(scenario.plan);
  EXPECT_TRUE(plan.has_value()) << scenario.plan;
  plan->ApplyTo(sys.deployment().net(), base);

  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 3]);
    });
  }
  sys.RunFor(std::max(20.0, plan->EndTime()) + 60);

  RunResult r;
  r.threads = threads;
  r.trace_hash = tracer.SequenceHash();
  r.mib_hash = testing::MibContentHash(sys.deployment());
  r.delivery_hash = recorder.TraceHash();
  r.events_recorded = tracer.total_recorded();
  r.deliveries = recorder.trace();
  return r;
}

void ExpectIdenticalRuns(const RunResult& base, const RunResult& other) {
  SCOPED_TRACE("threads=" + std::to_string(other.threads) + " vs " +
               std::to_string(base.threads));
  // Record-by-record first: on divergence this names the first differing
  // delivery instead of just two unequal hashes.
  const auto replay =
      testing::CheckReplayIdentical(base.deliveries, other.deliveries);
  EXPECT_TRUE(replay.ok()) << replay.Summary();
  EXPECT_EQ(base.delivery_hash, other.delivery_hash);
  EXPECT_EQ(base.events_recorded, other.events_recorded);
  EXPECT_EQ(base.trace_hash, other.trace_hash);
  EXPECT_EQ(base.mib_hash, other.mib_hash);
}

class ParallelScenarioEquivalence : public ::testing::TestWithParam<Scenario> {
};

TEST_P(ParallelScenarioEquivalence, BitIdenticalAcrossThreadCounts) {
  const Scenario& scenario = GetParam();
  const RunResult base = RunCommittedScenario(scenario, kThreadCounts[0]);
  EXPECT_GT(base.deliveries.size(), 0u);
  EXPECT_GT(base.events_recorded, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    ExpectIdenticalRuns(base,
                        RunCommittedScenario(scenario, kThreadCounts[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Committed, ParallelScenarioEquivalence,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

class ParallelReliableEquivalence
    : public ::testing::TestWithParam<ReliableScenario> {};

TEST_P(ParallelReliableEquivalence, BitIdenticalAcrossThreadCounts) {
  const ReliableScenario& scenario = GetParam();
  const RunResult base = RunReliableScenario(scenario, kThreadCounts[0]);
  EXPECT_GT(base.deliveries.size(), 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    ExpectIdenticalRuns(base,
                        RunReliableScenario(scenario, kThreadCounts[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Committed, ParallelReliableEquivalence,
                         ::testing::ValuesIn(kReliableScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace nw::newswire
