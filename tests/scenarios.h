// Committed fault-plan scenario tables, shared between scenario_test.cc
// (invariants after recovery) and parallel_equivalence_test.cc (the same
// scenarios replayed at several --sim-threads settings must produce
// bit-identical traces, DESIGN.md §9).
//
// Topology of the 32-node system (branching 4, most-significant digit
// first): node 0 is the publisher, nodes 1..31 are subscribers; nodes
// 0..15 form top-level zone one, 16..31 zone two, and each aligned block
// of 4 (0..3, 4..7, ...) is a second-level zone.
//
// A failing random run from FaultPlan::Random can be committed here
// verbatim: paste its ToString() as a new table row.
#pragma once

#include "newswire/system.h"

namespace nw::testing {

struct Scenario {
  const char* name;
  // What §5 failure mode the scenario exercises / which invariant guards it.
  const char* guards;
  const char* plan;
  bool scoped_publish;  // alternate root-scoped and zone-scoped items
};

// Times are seconds relative to the start of the 30 s publishing phase.
inline constexpr Scenario kScenarios[] = {
    {"CrashDuringPublish",
     "completeness: crashed nodes recover all items published while down",
     "crash@5 node=3; crash@6 node=17; restart@40 node=3; restart@42 node=17",
     false},
    {"RepresentativeCrash",
     "robustness: killing the likely zone representatives reroutes delivery",
     "crash@3 node=1; crash@3.5 node=2; restart@35 node=1; restart@36 node=2",
     false},
    {"ZonePartition",
     "§10 reliability: a whole top-level zone partitions away and re-merges",
     "partition@10 groups=16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31; "
     "heal@35",
     false},
    {"DoublePartition",
     "membership: two second-level zones split into separate islands",
     "partition@8 groups=4,5,6,7|8,9,10,11; heal@30", false},
    {"LossBurstDuringRepair",
     "repair under loss: anti-entropy itself runs over a lossy network",
     "crash@5 node=9; restart@15 node=9; loss@14..30 p=0.3", false},
    {"LossWithCrash",
     "compound faults: ambient loss while a node crashes and rejoins",
     "loss@5..20 p=0.25; crash@10 node=13; restart@25 node=13", false},
    {"RestartStorm",
     "churn: overlapping crash/restart waves never exceed f=2 dead nodes",
     "crash@2 node=1; crash@4 node=2; restart@10 node=1; crash@12 node=11; "
     "restart@14 node=2; restart@20 node=11; crash@22 node=21; "
     "restart@30 node=21",
     false},
    {"FlappingNode",
     "incarnation handling: a flapping node repeatedly loses and rebuilds "
     "its cache without duplicate deliveries",
     "crash@5 node=7; restart@8 node=7; crash@11 node=7; restart@14 node=7; "
     "crash@17 node=7; restart@20 node=7",
     false},
    {"PublisherSlowUplink",
     "flow: a congested publisher uplink delays but never loses items",
     "slow@5..25 node=0 rate=200000", false},
    {"ScopedPublishDuringPartition",
     "no-scope-leak: zone-scoped items stay inside their zone even while "
     "the other zone partitions and heals",
     "partition@10 groups=16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31; "
     "heal@35",
     true},
};

// The fixed 32-node deployment every committed scenario replays against.
inline newswire::SystemConfig CommittedScenarioConfig() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 4.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.gossip_period = 1.0;
  cfg.seed = 20260805;
  return cfg;
}

// ---- reliable-forwarding scenarios -------------------------------------
//
// These scenarios run with the subscriber repair layer OFF and redundancy
// 1: the only recovery machinery is the hop-by-hop ack/retransmit/failover
// discipline. The faulted run must converge to exactly the same set of
// (subscriber, item) deliveries as a fault-free run of the same
// configuration — reliability alone closes the gap the fault opened.
//
// Fault windows are kept under the membership fail-timeout (6 gossip
// rounds at 1 s): once a victim's row expires from the zone tables,
// nothing is forwarded toward it at all, and without repair no mechanism
// would owe it the items published while it was absent.

struct ReliableScenario {
  const char* name;
  const char* guards;
  const char* plan;  // nullptr = fault-free baseline
};

inline constexpr ReliableScenario kReliableScenarios[] = {
    {"RepCrashMidDissemination",
     "failover: a likely representative of the publisher's own zone dies "
     "mid-stream; relays retransmit, fail over to a sibling, and settle "
     "the victim's backlog after its restart",
     "crash@5 node=1; restart@9 node=1"},
    {"ChildZonePartition",
     "retransmission through a partition: one second-level zone is cut "
     "off; pending hops back off through the outage and deliver on heal",
     "partition@8 groups=4,5,6,7; heal@12"},
};

inline newswire::SystemConfig ReliableScenarioConfig() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 3;
  cfg.subjects_per_subscriber = 3;  // everyone subscribes everything
  cfg.multicast.redundancy = 1;     // no redundant paths to lean on
  cfg.subscriber.repair_interval = 0;  // anti-entropy repair disabled
  cfg.gossip_period = 1.0;
  cfg.seed = 20260806;
  return cfg;
}

}  // namespace nw::testing
