// newswire_sim — scenario driver for the NewsWire simulator.
//
// The paper (§10) envisions a downloadable application that inserts a
// machine into the collaborative delivery network; this tool is the
// operator-facing equivalent for the simulated system: describe a
// scenario on the command line, run it deterministically, read the
// delivery report.
//
// Examples:
//   newswire_sim --subscribers 5000 --branching 16 --duration 120 \
//                --items-per-sec 2
//   newswire_sim --subscribers 300 --loss 0.1 --redundancy 2 \
//                --kill-frac 0.2 --kill-at 30 --repair-interval 5
//   newswire_sim --subscribers 200 --hierarchical --catalog 50
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "newswire/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

void PrintUsage() {
  std::printf(
      "newswire_sim — deterministic NewsWire scenario driver\n\n"
      "  --subscribers N       leaf subscribers (default 256)\n"
      "  --publishers P        publishers (default 1)\n"
      "  --branching B         zone fan-out (default 8)\n"
      "  --gossip-period S     epidemic period in seconds (default 2)\n"
      "  --gossip-wire M       gossip wire format: full | delta (default "
      "delta)\n"
      "  --loss F              per-message loss probability (default 0)\n"
      "  --duration S          publishing phase length (default 60)\n"
      "  --items-per-sec R     publication rate across publishers (default 1)\n"
      "  --body-bytes B        article body size (default 2048)\n"
      "  --catalog N           distinct subjects (default 16)\n"
      "  --subs-per-node K     subscriptions per subscriber (default 3)\n"
      "  --redundancy K        representatives per forward (default 1)\n"
      "  --reliable-forwarding hop-by-hop acks + retransmit/failover\n"
      "                        (default true; =false for fire-and-forget)\n"
      "  --repair-interval S   cache anti-entropy period, 0=off (default 10)\n"
      "  --kill-frac F         fraction of subscribers to crash (default 0)\n"
      "  --kill-at S           crash time within the run (default 30)\n"
      "  --fault-plan P        fault plan: a file or an inline plan string,\n"
      "                        e.g. 'crash@5 node=3; restart@20 node=3'\n"
      "                        (times relative to publish start; see\n"
      "                        src/sim/fault_plan.h for the grammar)\n"
      "  --fault-cocktail      generate a random gray-failure cocktail\n"
      "                        (crashes + gray slowdowns + asymmetric cuts +\n"
      "                        corruption/duplication bursts) over the run\n"
      "  --chaos-seed N        seed for --fault-cocktail (default: --seed);\n"
      "                        the generated plan is printed and committable\n"
      "  --detector M          row-expiry failure detector: phi | fixed\n"
      "                        (default phi; fixed = legacy 6-round timeout)\n"
      "  --force-full-recompute  disable the dirty-tracked aggregation memo\n"
      "                        and re-evaluate every level every round\n"
      "                        (bit-identical output; DESIGN.md §11)\n"
      "  --hierarchical        subjects form a dot hierarchy (see §7)\n"
      "  --verify              publisher signature verification on\n"
      "  --bloom-bits N        subscription filter size (default 1024)\n"
      "  --seed N              replay seed (default 1)\n"
      "  --sim-threads N       simulator worker shards (default: the\n"
      "                        NEWSWIRE_SIM_THREADS env var, else 1); any\n"
      "                        value replays bit-identically (DESIGN.md §9)\n"
      "  --trace FILE          dump a JSONL event trace after the run\n"
      "  --trace-capacity N    trace ring-buffer size (default 262144)\n"
      "  --trace-categories L  comma list (gossip,send,drop,...; default all)\n"
      "  --metrics FILE        dump the metrics registry as JSON\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }

  newswire::SystemConfig cfg;
  cfg.num_subscribers = std::size_t(flags.GetInt("subscribers", 256));
  cfg.num_publishers = std::size_t(flags.GetInt("publishers", 1));
  cfg.branching = std::size_t(flags.GetInt("branching", 8));
  cfg.gossip_period = flags.GetDouble("gossip-period", 2.0);
  const std::string wire_name = flags.GetString("gossip-wire", "delta");
  if (const auto wire = astrolabe::GossipWireModeFromName(wire_name)) {
    cfg.gossip_wire = *wire;
  } else {
    std::fprintf(stderr, "--gossip-wire: expected full or delta, got \"%s\"\n",
                 wire_name.c_str());
    return 2;
  }
  const std::string detector_name = flags.GetString("detector", "phi");
  if (const auto det = astrolabe::DetectorModeFromName(detector_name)) {
    cfg.detector = *det;
  } else {
    std::fprintf(stderr, "--detector: expected phi or fixed, got \"%s\"\n",
                 detector_name.c_str());
    return 2;
  }
  cfg.force_full_recompute = flags.GetBool("force-full-recompute", false);
  cfg.net.loss_prob = flags.GetDouble("loss", 0.0);
  cfg.body_bytes = std::size_t(flags.GetInt("body-bytes", 2048));
  cfg.catalog_size = std::size_t(flags.GetInt("catalog", 16));
  cfg.subjects_per_subscriber = std::size_t(flags.GetInt("subs-per-node", 3));
  cfg.multicast.redundancy = int(flags.GetInt("redundancy", 1));
  cfg.multicast.reliable.enabled = flags.GetBool("reliable-forwarding", true);
  cfg.subscriber.repair_interval = flags.GetDouble("repair-interval", 10.0);
  cfg.subscriber.repair_window = 3600.0;
  cfg.hierarchical_subjects = flags.GetBool("hierarchical", false);
  cfg.verify_publishers = flags.GetBool("verify", false);
  cfg.bloom.bits = std::size_t(flags.GetInt("bloom-bits", 1024));
  cfg.seed = std::uint64_t(flags.GetInt("seed", 1));
  cfg.sim_threads = unsigned(flags.GetInt("sim-threads", 0));
  const double duration = flags.GetDouble("duration", 60.0);
  const double items_per_sec = flags.GetDouble("items-per-sec", 1.0);
  const double kill_frac = flags.GetDouble("kill-frac", 0.0);
  const double kill_at = flags.GetDouble("kill-at", 30.0);
  const std::string fault_plan_arg = flags.GetString("fault-plan", "");
  const bool fault_cocktail = flags.GetBool("fault-cocktail", false);
  const std::uint64_t chaos_seed =
      std::uint64_t(flags.GetInt("chaos-seed", long(cfg.seed)));
  const std::string trace_path = flags.GetString("trace", "");
  const std::size_t trace_capacity =
      std::size_t(flags.GetInt("trace-capacity", 1 << 18));
  const std::string trace_categories = flags.GetString("trace-categories", "all");
  const std::string metrics_path = flags.GetString("metrics", "");

  const auto unknown = flags.UnknownFlags();
  // Query all flags first (done above), then reject leftovers.
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    PrintUsage();
    return 2;
  }

  // --fault-plan: the argument names a file holding a plan, or is itself a
  // one-line plan string (the forms are unambiguous: plan text is never a
  // readable path).
  sim::FaultPlan fault_plan;
  if (!fault_plan_arg.empty()) {
    std::string text = fault_plan_arg;
    if (std::ifstream in(fault_plan_arg); in) {
      std::ostringstream contents;
      contents << in.rdbuf();
      text = contents.str();
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
      }
    }
    auto parsed = sim::FaultPlan::Parse(text);
    if (!parsed) {
      std::fprintf(stderr, "--fault-plan: cannot parse \"%s\"\n", text.c_str());
      return 2;
    }
    fault_plan = *parsed;
  }

  // Observability sinks (caller-owned; must outlive the system).
  obs::MetricsRegistry metrics;
  obs::EventTracer tracer(trace_capacity);
  if (const auto mask = obs::ParseCategoryMask(trace_categories); mask) {
    tracer.SetCategoryMask(*mask);
  } else {
    std::fprintf(stderr, "--trace-categories: unknown category in \"%s\"\n",
                 trace_categories.c_str());
    return 2;
  }
  const bool want_trace = !trace_path.empty();
  const bool want_metrics = !metrics_path.empty();
  if (want_trace) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;

  std::printf(
      "scenario: %zu subscribers, %zu publishers, branching %zu, loss %.0f%%, "
      "%.1f items/s for %.0fs%s%s\n",
      cfg.num_subscribers, cfg.num_publishers, cfg.branching,
      100 * cfg.net.loss_prob, items_per_sec, duration,
      kill_frac > 0 ? ", with crashes" : "",
      cfg.hierarchical_subjects ? ", hierarchical subjects" : "");
  std::printf("forwarding: %s\n", cfg.multicast.reliable.enabled
                                      ? "reliable (ack/retransmit/failover)"
                                      : "fire-and-forget");

  newswire::NewswireSystem sys(cfg);
  std::printf("tree depth %zu; converging subscriptions...\n",
              sys.deployment().Depth());
  sys.RunFor(15);

  // Publishing schedule.
  util::DeterministicRng rng(cfg.seed ^ 0xC11);
  const double t0 = sys.Now();
  if (!fault_plan.empty()) {
    if (fault_plan.MaxNode() != sim::kInvalidNode &&
        fault_plan.MaxNode() >= sys.node_count()) {
      std::fprintf(stderr, "--fault-plan targets node %u but only %zu exist\n",
                   fault_plan.MaxNode(), sys.node_count());
      return 2;
    }
    std::printf("fault plan: %s\n", fault_plan.ToString().c_str());
    fault_plan.ApplyTo(sys.deployment().net(), t0);
  }
  double fault_end = fault_plan.EndTime();
  if (fault_cocktail) {
    sim::FaultPlan::RandomOptions opt;
    opt.horizon = duration;
    // Short runs: shrink the quiescent tail so the chaos window [0,
    // horizon - quiescence) stays non-empty; the driver's +60 s settle
    // covers recovery regardless.
    opt.min_quiescence = std::min(opt.min_quiescence, duration / 2);
    opt.gray_slow = true;
    opt.asym_partitions = true;
    opt.corrupt_bursts = true;
    opt.dup_reorder = true;
    std::vector<sim::NodeId> victims;
    victims.reserve(sys.subscriber_count());
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      victims.push_back(sys.subscriber_agent(i).id());
    }
    const sim::FaultPlan cocktail =
        sim::FaultPlan::Random(chaos_seed, victims, opt);
    // The plan text round-trips through Parse; paste it into --fault-plan
    // (or tests/chaos_test.cc) to pin a failing cocktail down.
    std::printf("fault cocktail (seed %llu): %s\n",
                (unsigned long long)chaos_seed, cocktail.ToString().c_str());
    cocktail.ApplyTo(sys.deployment().net(), t0);
    fault_end = std::max(fault_end, cocktail.EndTime());
  }
  const int total_items = int(duration * items_per_sec);
  for (int k = 0; k < total_items; ++k) {
    sys.deployment().sim().At(t0 + k / items_per_sec, [&sys, &rng, k] {
      sys.PublishArticle(std::size_t(k) % sys.publisher_count(),
                         sys.RandomSubject());
      (void)rng;
    });
  }
  if (kill_frac > 0) {
    sys.deployment().sim().At(t0 + kill_at, [&] {
      util::DeterministicRng kill_rng(cfg.seed ^ 0xDEAD);
      std::size_t killed = 0;
      const std::size_t want =
          std::size_t(kill_frac * double(sys.subscriber_count()));
      while (killed < want) {
        const std::size_t i =
            std::size_t(kill_rng.NextBelow(sys.subscriber_count()));
        if (sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
          sys.deployment().net().Kill(sys.subscriber_agent(i).id());
          ++killed;
        }
      }
      std::printf("t=%.0fs: crashed %zu subscribers\n", sys.Now(), killed);
    });
  }
  // Stream + settle/repair time, covering the fault plan's recovery tail.
  sys.RunFor(std::max(duration, fault_end) + 60);

  // ---- report ----
  std::uint64_t published = 0, throttled = 0;
  double pub_bytes = 0;
  for (std::size_t j = 0; j < sys.publisher_count(); ++j) {
    published += sys.publisher(j).stats().published;
    throttled += sys.publisher(j).stats().throttled;
    pub_bytes += double(sys.PublisherTraffic(j).bytes_sent);
  }
  std::uint64_t repaired = 0, fp = 0, relays = 0;
  std::uint64_t integrity_drops = 0, rows_expired = 0;
  std::uint64_t agg_evals = 0, agg_memo_hits = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    repaired += sys.subscriber(i).stats().repaired;
  }
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    fp += sys.pubsub_at(i).stats().false_positives;
    relays += sys.pubsub_at(i).stats().relay_discards;
    integrity_drops += sys.deployment().agent(i).gossip_stats().integrity_drops;
    rows_expired += sys.deployment().agent(i).gossip_stats().rows_expired;
    agg_evals += sys.deployment().agent(i).agg_stats().levels_evaluated;
    agg_memo_hits += sys.deployment().agent(i).agg_stats().cache_hits;
  }
  const multicast::MulticastStats mc = sys.MulticastTotals();
  const auto total = sys.deployment().net().TotalStats();
  const auto& lat = sys.latencies();

  util::TablePrinter report({"metric", "value"});
  report.AddRow({"items published", util::TablePrinter::Int(long(published))});
  report.AddRow({"items throttled", util::TablePrinter::Int(long(throttled))});
  report.AddRow({"deliveries", util::TablePrinter::Int(long(sys.total_delivered()))});
  report.AddRow({"latency p50 ms", util::TablePrinter::Num(lat.Percentile(50) * 1e3, 0)});
  report.AddRow({"latency p99 ms", util::TablePrinter::Num(lat.Percentile(99) * 1e3, 0)});
  report.AddRow({"latency max s", util::TablePrinter::Num(lat.Max(), 2)});
  report.AddRow({"anti-entropy repairs", util::TablePrinter::Int(long(repaired))});
  report.AddRow({"bloom false positives", util::TablePrinter::Int(long(fp))});
  report.AddRow({"relay-only discards", util::TablePrinter::Int(long(relays))});
  report.AddRow({"duplicate suppressions", util::TablePrinter::Int(long(mc.duplicates))});
  report.AddRow({"forwarding sends", util::TablePrinter::Int(long(mc.forwards))});
  if (cfg.multicast.reliable.enabled) {
    report.AddRow({"hop acks", util::TablePrinter::Int(long(mc.acks_received))});
    report.AddRow({"hop retransmits", util::TablePrinter::Int(long(mc.retransmits))});
    report.AddRow({"hop failovers", util::TablePrinter::Int(long(mc.failovers))});
    report.AddRow({"hops abandoned", util::TablePrinter::Int(long(mc.abandoned))});
  }
  report.AddRow({"queue overflow drops", util::TablePrinter::Int(long(mc.queue_drops))});
  report.AddRow({"  of which urgency-shed", util::TablePrinter::Int(long(mc.queue_shed))});
  report.AddRow({"corrupted frames", util::TablePrinter::Int(long(total.messages_corrupted))});
  report.AddRow({"integrity drops", util::TablePrinter::Int(long(integrity_drops))});
  report.AddRow({"rows expired (suspicions)", util::TablePrinter::Int(long(rows_expired))});
  report.AddRow({"aggregate evaluations", util::TablePrinter::Int(long(agg_evals))});
  report.AddRow({"aggregate memo hits", util::TablePrinter::Int(long(agg_memo_hits))});
  report.AddRow({"dup hops received", util::TablePrinter::Int(long(mc.dup_hops_received))});
  report.AddRow({"gray quarantines", util::TablePrinter::Int(long(mc.quarantines))});
  report.AddRow({"publisher egress MB", util::TablePrinter::Num(pub_bytes / 1e6, 2)});
  report.AddRow({"total network GB", util::TablePrinter::Num(double(total.bytes_sent) / 1e9, 3)});
  report.Print();

  if (want_trace) {
    FILE* out = std::fopen(trace_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "--trace: cannot open %s for writing\n",
                   trace_path.c_str());
      return 1;
    }
    tracer.DumpJsonl(out);
    std::fclose(out);
    std::printf(
        "trace: %zu events (%llu recorded, %llu overwritten) -> %s\n"
        "trace sequence hash: %016llx\n",
        tracer.size(), (unsigned long long)tracer.total_recorded(),
        (unsigned long long)tracer.overwritten(), trace_path.c_str(),
        (unsigned long long)tracer.SequenceHash());
  }
  if (want_metrics) {
    FILE* out = std::fopen(metrics_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "--metrics: cannot open %s for writing\n",
                   metrics_path.c_str());
      return 1;
    }
    metrics.Snap().WriteJson(out);
    std::fclose(out);
    std::printf("metrics: %zu series -> %s\n", metrics.Snap().metrics.size(),
                metrics_path.c_str());
  }
  return 0;
}
