#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full ctest suite.
#
#   tools/run_tier1.sh              # RelWithDebInfo into build/
#   ASAN=1 tools/run_tier1.sh       # ASan+UBSan into build-asan/
#   BENCH=1 tools/run_tier1.sh      # also run every bench and validate
#                                   # its BENCH_<name>.json report
#
# Extra arguments are forwarded to ctest, e.g.:
#   tools/run_tier1.sh -L unit      # fast pre-commit loop
#   tools/run_tier1.sh -L gossip    # wire-format equivalence (runs every
#                                   # scenario in both full and delta mode)
#   tools/run_tier1.sh -L reliable  # hop-level ack/retransmit/failover suite
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${ASAN:-0}" == "1" ]]; then
  build="$repo/build-asan"
  extra=(-DNEWSWIRE_SANITIZE=ON)
else
  build="$repo/build"
  extra=()
fi

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo "${extra[@]}"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"

if [[ "${BENCH:-0}" == "1" ]]; then
  # Run every bench binary and check that each emits a machine-readable
  # BENCH_<name>.json report that a strict parser accepts.
  json_dir="$build/bench-json"
  rm -rf "$json_dir" && mkdir -p "$json_dir"
  for exe in "$build"/bench/bench_*; do
    [[ -f "$exe" && -x "$exe" ]] || continue
    echo "== bench: $(basename "$exe")"
    BENCH_JSON_DIR="$json_dir" "$exe"
  done
  shopt -s nullglob
  reports=("$json_dir"/BENCH_*.json)
  if [[ ${#reports[@]} -eq 0 ]]; then
    echo "BENCH=1: no BENCH_*.json reports produced" >&2
    exit 1
  fi
  for report in "${reports[@]}"; do
    python3 -m json.tool "$report" > /dev/null
    echo "ok: $(basename "$report")"
  done
  # The gossip bandwidth bench doubles as a regression gate: its exit code
  # asserts the delta wire format's >=5x steady-state saving, and its
  # report must be present by name.
  if [[ ! -f "$json_dir/BENCH_gossip_bandwidth.json" ]]; then
    echo "BENCH=1: BENCH_gossip_bandwidth.json missing" >&2
    exit 1
  fi
  # Likewise the reliable-forwarding bench: its exit code asserts the
  # >=99% prompt-delivery / >=2x p99 gates under churn (EXPERIMENTS.md
  # E15) and its report must be present by name.
  if [[ ! -f "$json_dir/BENCH_reliable_forwarding.json" ]]; then
    echo "BENCH=1: BENCH_reliable_forwarding.json missing" >&2
    exit 1
  fi
  echo "BENCH=1: ${#reports[@]} bench reports validated in $json_dir"
fi
