#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full ctest suite.
#
#   tools/run_tier1.sh              # RelWithDebInfo into build/
#   ASAN=1 tools/run_tier1.sh       # ASan+UBSan into build-asan/
#   TSAN=1 tools/run_tier1.sh       # ThreadSanitizer into build-tsan/ and
#                                   # run the unit + parallel labels (the
#                                   # suites that exercise worker threads)
#   BENCH=1 tools/run_tier1.sh      # also run every bench and validate
#                                   # its BENCH_<name>.json report
#
# Extra arguments are forwarded to ctest, e.g.:
#   tools/run_tier1.sh -L unit      # fast pre-commit loop
#   tools/run_tier1.sh -L gossip    # wire-format equivalence (runs every
#                                   # scenario in both full and delta mode)
#   tools/run_tier1.sh -L reliable  # hop-level ack/retransmit/failover suite
#   tools/run_tier1.sh -L parallel  # parallel-engine golden-trace equivalence
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${TSAN:-0}" == "1" || "${NEWSWIRE_SANITIZE:-}" == "thread" ]]; then
  build="$repo/build-tsan"
  extra=(-DNEWSWIRE_SANITIZE=thread)
elif [[ "${ASAN:-0}" == "1" ]]; then
  build="$repo/build-asan"
  extra=(-DNEWSWIRE_SANITIZE=ON)
else
  build="$repo/build"
  extra=()
fi

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo "${extra[@]}"
cmake --build "$build" -j "$jobs"

if [[ "${TSAN:-0}" == "1" || "${NEWSWIRE_SANITIZE:-}" == "thread" ]]; then
  # Under TSan, run the suites that actually spin up worker threads: the
  # unit label (engine primitives), the parallel label (full-system
  # replays at several --sim-threads settings), and the chaos label (the
  # gray-failure cocktails replay at --sim-threads 1/2/4 internally). The
  # replays also run once more with the whole scenario machinery forced
  # onto 4 shards so every cross-layer path executes on worker threads
  # under the sanitizer. The aggregation label rides along in both passes:
  # its A/B runs compare traces recorded through the staging tracer, which
  # is exactly the machinery TSan needs to see under worker threads.
  ctest --test-dir "$build" --output-on-failure -j "$jobs" \
    -L 'unit|parallel|chaos|aggregation' "$@"
  NEWSWIRE_SIM_THREADS=4 ctest --test-dir "$build" --output-on-failure \
    -j "$jobs" -L 'scenario|chaos|aggregation' "$@"
  exit 0
fi

ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"

# The scenario, chaos, and aggregation suites must replay identically
# under the parallel engine (DESIGN.md §9, §10, §11): rerun the committed
# fault-plan labels with the simulator sharded 4 ways. The 1-thread run
# already happened above (the env default).
NEWSWIRE_SIM_THREADS=4 ctest --test-dir "$build" --output-on-failure \
  -j "$jobs" -L 'scenario|chaos|aggregation'

if [[ "${BENCH:-0}" == "1" ]]; then
  # Run every bench binary and check that each emits a machine-readable
  # BENCH_<name>.json report that a strict parser accepts.
  json_dir="$build/bench-json"
  rm -rf "$json_dir" && mkdir -p "$json_dir"
  for exe in "$build"/bench/bench_*; do
    [[ -f "$exe" && -x "$exe" ]] || continue
    echo "== bench: $(basename "$exe")"
    BENCH_JSON_DIR="$json_dir" "$exe"
  done
  shopt -s nullglob
  reports=("$json_dir"/BENCH_*.json)
  if [[ ${#reports[@]} -eq 0 ]]; then
    echo "BENCH=1: no BENCH_*.json reports produced" >&2
    exit 1
  fi
  for report in "${reports[@]}"; do
    python3 -m json.tool "$report" > /dev/null
    echo "ok: $(basename "$report")"
  done
  # The gossip bandwidth bench doubles as a regression gate: its exit code
  # asserts the delta wire format's >=5x steady-state saving, and its
  # report must be present by name.
  if [[ ! -f "$json_dir/BENCH_gossip_bandwidth.json" ]]; then
    echo "BENCH=1: BENCH_gossip_bandwidth.json missing" >&2
    exit 1
  fi
  # Likewise the reliable-forwarding bench: its exit code asserts the
  # >=99% prompt-delivery / >=2x p99 gates under churn (EXPERIMENTS.md
  # E15) and its report must be present by name.
  if [[ ! -f "$json_dir/BENCH_reliable_forwarding.json" ]]; then
    echo "BENCH=1: BENCH_reliable_forwarding.json missing" >&2
    exit 1
  fi
  # And the parallel-engine scaling bench (EXPERIMENTS.md E16): its exit
  # code asserts 1-thread/4-thread trace-hash equality (always) and the
  # >=3x speedup gate (on hosts with >=4 hardware threads).
  if [[ ! -f "$json_dir/BENCH_sim_scale.json" ]]; then
    echo "BENCH=1: BENCH_sim_scale.json missing" >&2
    exit 1
  fi
  # And the gray-failure bench (EXPERIMENTS.md E17): its exit code asserts
  # the phi detector at most halves the fixed detector's false suspicions
  # with delivery complete and p99 inside the repair regime.
  if [[ ! -f "$json_dir/BENCH_gray_failure.json" ]]; then
    echo "BENCH=1: BENCH_gray_failure.json missing" >&2
    exit 1
  fi
  # And the incremental-aggregation bench (EXPERIMENTS.md E18): its exit
  # code asserts the >=5x steady-state eval-work reduction at 64-child
  # zones with bit-identical replicated state across both engines.
  if [[ ! -f "$json_dir/BENCH_aggregation.json" ]]; then
    echo "BENCH=1: BENCH_aggregation.json missing" >&2
    exit 1
  fi
  echo "BENCH=1: ${#reports[@]} bench reports validated in $json_dir"
fi
