#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full ctest suite.
#
#   tools/run_tier1.sh              # RelWithDebInfo into build/
#   ASAN=1 tools/run_tier1.sh       # ASan+UBSan into build-asan/
#
# Extra arguments are forwarded to ctest, e.g.:
#   tools/run_tier1.sh -L unit      # fast pre-commit loop
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${ASAN:-0}" == "1" ]]; then
  build="$repo/build-asan"
  extra=(-DNEWSWIRE_SANITIZE=ON)
else
  build="$repo/build"
  extra=()
fi

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo "${extra[@]}"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
