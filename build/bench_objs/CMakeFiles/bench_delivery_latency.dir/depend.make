# Empty dependencies file for bench_delivery_latency.
# This may be replaced when dependencies are built.
