file(REMOVE_RECURSE
  "../bench/bench_delivery_latency"
  "../bench/bench_delivery_latency.pdb"
  "CMakeFiles/bench_delivery_latency.dir/bench_delivery_latency.cc.o"
  "CMakeFiles/bench_delivery_latency.dir/bench_delivery_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delivery_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
