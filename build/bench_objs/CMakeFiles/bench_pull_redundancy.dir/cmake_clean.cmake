file(REMOVE_RECURSE
  "../bench/bench_pull_redundancy"
  "../bench/bench_pull_redundancy.pdb"
  "CMakeFiles/bench_pull_redundancy.dir/bench_pull_redundancy.cc.o"
  "CMakeFiles/bench_pull_redundancy.dir/bench_pull_redundancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pull_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
