# Empty compiler generated dependencies file for bench_queue_strategies.
# This may be replaced when dependencies are built.
