file(REMOVE_RECURSE
  "../bench/bench_queue_strategies"
  "../bench/bench_queue_strategies.pdb"
  "CMakeFiles/bench_queue_strategies.dir/bench_queue_strategies.cc.o"
  "CMakeFiles/bench_queue_strategies.dir/bench_queue_strategies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
