# Empty dependencies file for bench_cache_recovery.
# This may be replaced when dependencies are built.
