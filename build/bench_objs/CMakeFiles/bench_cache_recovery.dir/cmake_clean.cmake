file(REMOVE_RECURSE
  "../bench/bench_cache_recovery"
  "../bench/bench_cache_recovery.pdb"
  "CMakeFiles/bench_cache_recovery.dir/bench_cache_recovery.cc.o"
  "CMakeFiles/bench_cache_recovery.dir/bench_cache_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
