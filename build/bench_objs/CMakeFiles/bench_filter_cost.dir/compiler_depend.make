# Empty compiler generated dependencies file for bench_filter_cost.
# This may be replaced when dependencies are built.
