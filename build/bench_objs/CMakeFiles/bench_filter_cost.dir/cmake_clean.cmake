file(REMOVE_RECURSE
  "../bench/bench_filter_cost"
  "../bench/bench_filter_cost.pdb"
  "CMakeFiles/bench_filter_cost.dir/bench_filter_cost.cc.o"
  "CMakeFiles/bench_filter_cost.dir/bench_filter_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
