# Empty compiler generated dependencies file for bench_scoped_publish.
# This may be replaced when dependencies are built.
