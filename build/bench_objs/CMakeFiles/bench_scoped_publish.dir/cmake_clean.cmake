file(REMOVE_RECURSE
  "../bench/bench_scoped_publish"
  "../bench/bench_scoped_publish.pdb"
  "CMakeFiles/bench_scoped_publish.dir/bench_scoped_publish.cc.o"
  "CMakeFiles/bench_scoped_publish.dir/bench_scoped_publish.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scoped_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
