file(REMOVE_RECURSE
  "../bench/bench_branching"
  "../bench/bench_branching.pdb"
  "CMakeFiles/bench_branching.dir/bench_branching.cc.o"
  "CMakeFiles/bench_branching.dir/bench_branching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_branching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
