# Empty compiler generated dependencies file for bench_branching.
# This may be replaced when dependencies are built.
