# Empty compiler generated dependencies file for bench_flood_control.
# This may be replaced when dependencies are built.
