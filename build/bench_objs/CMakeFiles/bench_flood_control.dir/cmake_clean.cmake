file(REMOVE_RECURSE
  "../bench/bench_flood_control"
  "../bench/bench_flood_control.pdb"
  "CMakeFiles/bench_flood_control.dir/bench_flood_control.cc.o"
  "CMakeFiles/bench_flood_control.dir/bench_flood_control.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flood_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
