# Empty compiler generated dependencies file for bench_subscription_convergence.
# This may be replaced when dependencies are built.
