file(REMOVE_RECURSE
  "../bench/bench_subscription_convergence"
  "../bench/bench_subscription_convergence.pdb"
  "CMakeFiles/bench_subscription_convergence.dir/bench_subscription_convergence.cc.o"
  "CMakeFiles/bench_subscription_convergence.dir/bench_subscription_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subscription_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
