file(REMOVE_RECURSE
  "../bench/bench_publisher_load"
  "../bench/bench_publisher_load.pdb"
  "CMakeFiles/bench_publisher_load.dir/bench_publisher_load.cc.o"
  "CMakeFiles/bench_publisher_load.dir/bench_publisher_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_publisher_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
