# Empty compiler generated dependencies file for bench_publisher_load.
# This may be replaced when dependencies are built.
