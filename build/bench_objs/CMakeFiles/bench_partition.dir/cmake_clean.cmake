file(REMOVE_RECURSE
  "../bench/bench_partition"
  "../bench/bench_partition.pdb"
  "CMakeFiles/bench_partition.dir/bench_partition.cc.o"
  "CMakeFiles/bench_partition.dir/bench_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
