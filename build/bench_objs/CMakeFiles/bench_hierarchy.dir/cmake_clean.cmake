file(REMOVE_RECURSE
  "../bench/bench_hierarchy"
  "../bench/bench_hierarchy.pdb"
  "CMakeFiles/bench_hierarchy.dir/bench_hierarchy.cc.o"
  "CMakeFiles/bench_hierarchy.dir/bench_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
