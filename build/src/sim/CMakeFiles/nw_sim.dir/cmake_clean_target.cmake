file(REMOVE_RECURSE
  "libnw_sim.a"
)
