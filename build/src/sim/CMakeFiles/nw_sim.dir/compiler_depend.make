# Empty compiler generated dependencies file for nw_sim.
# This may be replaced when dependencies are built.
