file(REMOVE_RECURSE
  "CMakeFiles/nw_sim.dir/network.cc.o"
  "CMakeFiles/nw_sim.dir/network.cc.o.d"
  "libnw_sim.a"
  "libnw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
