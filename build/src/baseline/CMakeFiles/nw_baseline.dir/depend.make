# Empty dependencies file for nw_baseline.
# This may be replaced when dependencies are built.
