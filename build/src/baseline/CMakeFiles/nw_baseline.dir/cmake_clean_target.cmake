file(REMOVE_RECURSE
  "libnw_baseline.a"
)
