file(REMOVE_RECURSE
  "CMakeFiles/nw_baseline.dir/pull.cc.o"
  "CMakeFiles/nw_baseline.dir/pull.cc.o.d"
  "libnw_baseline.a"
  "libnw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
