file(REMOVE_RECURSE
  "libnw_astrolabe.a"
)
