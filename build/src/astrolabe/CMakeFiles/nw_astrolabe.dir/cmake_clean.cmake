file(REMOVE_RECURSE
  "CMakeFiles/nw_astrolabe.dir/agent.cc.o"
  "CMakeFiles/nw_astrolabe.dir/agent.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/cert.cc.o"
  "CMakeFiles/nw_astrolabe.dir/cert.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/deployment.cc.o"
  "CMakeFiles/nw_astrolabe.dir/deployment.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/query.cc.o"
  "CMakeFiles/nw_astrolabe.dir/query.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/sql/eval.cc.o"
  "CMakeFiles/nw_astrolabe.dir/sql/eval.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/sql/lexer.cc.o"
  "CMakeFiles/nw_astrolabe.dir/sql/lexer.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/sql/parser.cc.o"
  "CMakeFiles/nw_astrolabe.dir/sql/parser.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/sql/printer.cc.o"
  "CMakeFiles/nw_astrolabe.dir/sql/printer.cc.o.d"
  "CMakeFiles/nw_astrolabe.dir/value.cc.o"
  "CMakeFiles/nw_astrolabe.dir/value.cc.o.d"
  "libnw_astrolabe.a"
  "libnw_astrolabe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_astrolabe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
