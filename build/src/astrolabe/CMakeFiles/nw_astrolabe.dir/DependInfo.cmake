
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/astrolabe/agent.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/agent.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/agent.cc.o.d"
  "/root/repo/src/astrolabe/cert.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/cert.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/cert.cc.o.d"
  "/root/repo/src/astrolabe/deployment.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/deployment.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/deployment.cc.o.d"
  "/root/repo/src/astrolabe/query.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/query.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/query.cc.o.d"
  "/root/repo/src/astrolabe/sql/eval.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/eval.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/eval.cc.o.d"
  "/root/repo/src/astrolabe/sql/lexer.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/lexer.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/lexer.cc.o.d"
  "/root/repo/src/astrolabe/sql/parser.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/parser.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/parser.cc.o.d"
  "/root/repo/src/astrolabe/sql/printer.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/printer.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/sql/printer.cc.o.d"
  "/root/repo/src/astrolabe/value.cc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/value.cc.o" "gcc" "src/astrolabe/CMakeFiles/nw_astrolabe.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
