# Empty compiler generated dependencies file for nw_astrolabe.
# This may be replaced when dependencies are built.
