
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/newswire/feed_agent.cc" "src/newswire/CMakeFiles/nw_newswire.dir/feed_agent.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/feed_agent.cc.o.d"
  "/root/repo/src/newswire/message_cache.cc" "src/newswire/CMakeFiles/nw_newswire.dir/message_cache.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/message_cache.cc.o.d"
  "/root/repo/src/newswire/news_item.cc" "src/newswire/CMakeFiles/nw_newswire.dir/news_item.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/news_item.cc.o.d"
  "/root/repo/src/newswire/publisher.cc" "src/newswire/CMakeFiles/nw_newswire.dir/publisher.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/publisher.cc.o.d"
  "/root/repo/src/newswire/subscriber.cc" "src/newswire/CMakeFiles/nw_newswire.dir/subscriber.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/subscriber.cc.o.d"
  "/root/repo/src/newswire/system.cc" "src/newswire/CMakeFiles/nw_newswire.dir/system.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/system.cc.o.d"
  "/root/repo/src/newswire/workload.cc" "src/newswire/CMakeFiles/nw_newswire.dir/workload.cc.o" "gcc" "src/newswire/CMakeFiles/nw_newswire.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/nw_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/nw_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/astrolabe/CMakeFiles/nw_astrolabe.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
