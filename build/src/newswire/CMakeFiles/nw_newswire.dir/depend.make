# Empty dependencies file for nw_newswire.
# This may be replaced when dependencies are built.
