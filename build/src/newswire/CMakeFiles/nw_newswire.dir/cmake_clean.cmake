file(REMOVE_RECURSE
  "CMakeFiles/nw_newswire.dir/feed_agent.cc.o"
  "CMakeFiles/nw_newswire.dir/feed_agent.cc.o.d"
  "CMakeFiles/nw_newswire.dir/message_cache.cc.o"
  "CMakeFiles/nw_newswire.dir/message_cache.cc.o.d"
  "CMakeFiles/nw_newswire.dir/news_item.cc.o"
  "CMakeFiles/nw_newswire.dir/news_item.cc.o.d"
  "CMakeFiles/nw_newswire.dir/publisher.cc.o"
  "CMakeFiles/nw_newswire.dir/publisher.cc.o.d"
  "CMakeFiles/nw_newswire.dir/subscriber.cc.o"
  "CMakeFiles/nw_newswire.dir/subscriber.cc.o.d"
  "CMakeFiles/nw_newswire.dir/system.cc.o"
  "CMakeFiles/nw_newswire.dir/system.cc.o.d"
  "CMakeFiles/nw_newswire.dir/workload.cc.o"
  "CMakeFiles/nw_newswire.dir/workload.cc.o.d"
  "libnw_newswire.a"
  "libnw_newswire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_newswire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
