file(REMOVE_RECURSE
  "libnw_newswire.a"
)
