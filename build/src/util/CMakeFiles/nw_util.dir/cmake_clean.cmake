file(REMOVE_RECURSE
  "CMakeFiles/nw_util.dir/log.cc.o"
  "CMakeFiles/nw_util.dir/log.cc.o.d"
  "libnw_util.a"
  "libnw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
