# Empty compiler generated dependencies file for nw_pubsub.
# This may be replaced when dependencies are built.
