file(REMOVE_RECURSE
  "libnw_pubsub.a"
)
