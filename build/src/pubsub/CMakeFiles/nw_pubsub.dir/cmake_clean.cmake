file(REMOVE_RECURSE
  "CMakeFiles/nw_pubsub.dir/category_subscriptions.cc.o"
  "CMakeFiles/nw_pubsub.dir/category_subscriptions.cc.o.d"
  "CMakeFiles/nw_pubsub.dir/pubsub.cc.o"
  "CMakeFiles/nw_pubsub.dir/pubsub.cc.o.d"
  "libnw_pubsub.a"
  "libnw_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
