
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicast/multicast.cc" "src/multicast/CMakeFiles/nw_multicast.dir/multicast.cc.o" "gcc" "src/multicast/CMakeFiles/nw_multicast.dir/multicast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/astrolabe/CMakeFiles/nw_astrolabe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
