file(REMOVE_RECURSE
  "libnw_multicast.a"
)
