file(REMOVE_RECURSE
  "CMakeFiles/nw_multicast.dir/multicast.cc.o"
  "CMakeFiles/nw_multicast.dir/multicast.cc.o.d"
  "libnw_multicast.a"
  "libnw_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
