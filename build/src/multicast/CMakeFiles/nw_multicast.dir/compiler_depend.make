# Empty compiler generated dependencies file for nw_multicast.
# This may be replaced when dependencies are built.
