# Empty compiler generated dependencies file for news_day.
# This may be replaced when dependencies are built.
