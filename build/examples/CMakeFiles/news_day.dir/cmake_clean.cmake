file(REMOVE_RECURSE
  "CMakeFiles/news_day.dir/news_day.cpp.o"
  "CMakeFiles/news_day.dir/news_day.cpp.o.d"
  "news_day"
  "news_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
