file(REMOVE_RECURSE
  "CMakeFiles/resilient_delivery.dir/resilient_delivery.cpp.o"
  "CMakeFiles/resilient_delivery.dir/resilient_delivery.cpp.o.d"
  "resilient_delivery"
  "resilient_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
