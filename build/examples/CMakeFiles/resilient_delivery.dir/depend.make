# Empty dependencies file for resilient_delivery.
# This may be replaced when dependencies are built.
