file(REMOVE_RECURSE
  "CMakeFiles/tech_news_network.dir/tech_news_network.cpp.o"
  "CMakeFiles/tech_news_network.dir/tech_news_network.cpp.o.d"
  "tech_news_network"
  "tech_news_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_news_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
