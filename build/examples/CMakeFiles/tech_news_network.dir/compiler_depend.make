# Empty compiler generated dependencies file for tech_news_network.
# This may be replaced when dependencies are built.
