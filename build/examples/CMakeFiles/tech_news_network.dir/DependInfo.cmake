
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tech_news_network.cpp" "examples/CMakeFiles/tech_news_network.dir/tech_news_network.cpp.o" "gcc" "examples/CMakeFiles/tech_news_network.dir/tech_news_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/newswire/CMakeFiles/nw_newswire.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/nw_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/nw_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/astrolabe/CMakeFiles/nw_astrolabe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
