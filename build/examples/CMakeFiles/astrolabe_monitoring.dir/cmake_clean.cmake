file(REMOVE_RECURSE
  "CMakeFiles/astrolabe_monitoring.dir/astrolabe_monitoring.cpp.o"
  "CMakeFiles/astrolabe_monitoring.dir/astrolabe_monitoring.cpp.o.d"
  "astrolabe_monitoring"
  "astrolabe_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astrolabe_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
