# Empty compiler generated dependencies file for astrolabe_monitoring.
# This may be replaced when dependencies are built.
