# Empty dependencies file for scoped_publishing.
# This may be replaced when dependencies are built.
