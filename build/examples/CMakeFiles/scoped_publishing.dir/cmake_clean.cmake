file(REMOVE_RECURSE
  "CMakeFiles/scoped_publishing.dir/scoped_publishing.cpp.o"
  "CMakeFiles/scoped_publishing.dir/scoped_publishing.cpp.o.d"
  "scoped_publishing"
  "scoped_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoped_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
