# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/cert_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/newswire_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/torture_test[1]_include.cmake")
include("/root/repo/build/tests/sql_printer_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sql_eval_more_test[1]_include.cmake")
include("/root/repo/build/tests/newswire_more_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_more_test[1]_include.cmake")
include("/root/repo/build/tests/agent_cert_test[1]_include.cmake")
