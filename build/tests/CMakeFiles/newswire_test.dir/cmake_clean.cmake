file(REMOVE_RECURSE
  "CMakeFiles/newswire_test.dir/newswire_test.cc.o"
  "CMakeFiles/newswire_test.dir/newswire_test.cc.o.d"
  "newswire_test"
  "newswire_test.pdb"
  "newswire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newswire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
