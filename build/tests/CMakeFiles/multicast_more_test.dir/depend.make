# Empty dependencies file for multicast_more_test.
# This may be replaced when dependencies are built.
