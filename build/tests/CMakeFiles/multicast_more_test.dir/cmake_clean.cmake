file(REMOVE_RECURSE
  "CMakeFiles/multicast_more_test.dir/multicast_more_test.cc.o"
  "CMakeFiles/multicast_more_test.dir/multicast_more_test.cc.o.d"
  "multicast_more_test"
  "multicast_more_test.pdb"
  "multicast_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
