# Empty compiler generated dependencies file for sql_eval_more_test.
# This may be replaced when dependencies are built.
