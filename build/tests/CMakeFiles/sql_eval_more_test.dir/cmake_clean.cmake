file(REMOVE_RECURSE
  "CMakeFiles/sql_eval_more_test.dir/sql_eval_more_test.cc.o"
  "CMakeFiles/sql_eval_more_test.dir/sql_eval_more_test.cc.o.d"
  "sql_eval_more_test"
  "sql_eval_more_test.pdb"
  "sql_eval_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_eval_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
