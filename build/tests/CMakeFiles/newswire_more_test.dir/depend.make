# Empty dependencies file for newswire_more_test.
# This may be replaced when dependencies are built.
