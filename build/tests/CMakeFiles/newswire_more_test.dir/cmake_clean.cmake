file(REMOVE_RECURSE
  "CMakeFiles/newswire_more_test.dir/newswire_more_test.cc.o"
  "CMakeFiles/newswire_more_test.dir/newswire_more_test.cc.o.d"
  "newswire_more_test"
  "newswire_more_test.pdb"
  "newswire_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newswire_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
