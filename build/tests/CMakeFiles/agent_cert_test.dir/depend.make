# Empty dependencies file for agent_cert_test.
# This may be replaced when dependencies are built.
