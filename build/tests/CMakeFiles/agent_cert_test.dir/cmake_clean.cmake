file(REMOVE_RECURSE
  "CMakeFiles/agent_cert_test.dir/agent_cert_test.cc.o"
  "CMakeFiles/agent_cert_test.dir/agent_cert_test.cc.o.d"
  "agent_cert_test"
  "agent_cert_test.pdb"
  "agent_cert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_cert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
