# Empty dependencies file for newswire_sim.
# This may be replaced when dependencies are built.
