file(REMOVE_RECURSE
  "CMakeFiles/newswire_sim.dir/newswire_sim.cc.o"
  "CMakeFiles/newswire_sim.dir/newswire_sim.cc.o.d"
  "newswire_sim"
  "newswire_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newswire_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
