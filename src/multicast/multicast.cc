#include "multicast/multicast.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace nw::multicast {

using astrolabe::Agent;
using astrolabe::Row;
using astrolabe::ZonePath;

MulticastService::MulticastService(Agent& agent, MulticastConfig config)
    : agent_(agent),
      config_(config),
      budget_(config.forward_bytes_per_sec, config.forward_burst_bytes),
      backoff_(config.reliable),
      suspects_(config.reliable.suspicion_ttl,
                config.reliable.slow_suspicion_ttl,
                config.reliable.escalate_strikes) {
  agent_.RegisterHandler(kForwardType, [this](const sim::Message& msg) {
    HandleForward(msg);
  });
  agent_.RegisterHandler(kReliableType, [this](const sim::Message& msg) {
    HandleReliableForward(msg);
  });
  agent_.RegisterHandler(kAckType, [this](const sim::Message& msg) {
    HandleAck(msg);
  });
  agent_.AddRestartHook([this] { OnRestart(); });
  // Register metric ids up front: registration mutates the shared registry
  // and must not first happen inside a parallel-window event.
  (void)Metrics();
  if (config_.report_load && config_.load_report_interval > 0) {
    agent_.Schedule(config_.load_report_interval *
                        (0.5 + agent_.Rng().NextDouble()),
                    [this] { ReportLoad(); });
  }
}

void MulticastService::OnRestart() {
  // Everything here is process memory: a crashed-and-rebooted forwarding
  // component comes back with empty queues, no unacked hops, an empty
  // duplicate log, and no suspicions. Its timers died with the old
  // incarnation, so the load reporter must be re-armed.
  queues_.clear();
  pending_.clear();
  suspects_ = SuspicionCache(config_.reliable.suspicion_ttl,
                             config_.reliable.slow_suspicion_ttl,
                             config_.reliable.escalate_strikes);
  seen_.clear();
  seen_order_.clear();
  affinity_.clear();
  drain_scheduled_ = false;
  last_reported_bytes_ = stats_.forward_bytes;
  load_ewma_ = 0.0;
  health_ewma_ = 1.0;
  last_health_reported_ = -1.0;
  last_integrity_drops_ = agent_.gossip_stats().integrity_drops;
  last_dup_hops_ = stats_.dup_hops_received;
  if (config_.report_load && config_.load_report_interval > 0) {
    agent_.Schedule(config_.load_report_interval *
                        (0.5 + agent_.Rng().NextDouble()),
                    [this] { ReportLoad(); });
  }
}

obs::MetricsRegistry* MulticastService::Metrics() {
  auto* net = agent_.attached_network();
  auto* m = net != nullptr ? net->metrics() : nullptr;
  if (m != nullptr && !obs_.init) {
    obs_.delivered = m->Counter("multicast.forward.delivered");
    obs_.duplicates = m->Counter("multicast.forward.duplicates");
    obs_.forwards = m->Counter("multicast.forward.forwards");
    obs_.queue_drops = m->Counter("multicast.forward.queue_drops");
    obs_.queue_shed = m->Counter("multicast.forward.queue_shed");
    obs_.acks = m->Counter("multicast.forward.acks");
    obs_.retransmits = m->Counter("multicast.forward.retransmits");
    obs_.failovers = m->Counter("multicast.forward.failovers");
    obs_.abandoned = m->Counter("multicast.forward.abandoned");
    obs_.dup_hops = m->Counter("multicast.forward.dup_hops");
    obs_.quarantines = m->Counter("multicast.forward.quarantines");
    obs_.init = true;
  }
  return m;
}

obs::EventTracer* MulticastService::Tracer() const {
  auto* net = agent_.attached_network();
  return net != nullptr ? net->tracer() : nullptr;
}

void MulticastService::ReportLoad() {
  // Utilization of the forwarding budget since the last report, smoothed;
  // fed into representative election via the "load" MIB attribute (§5).
  const std::uint64_t bytes = stats_.forward_bytes - last_reported_bytes_;
  last_reported_bytes_ = stats_.forward_bytes;
  const double inst =
      double(bytes) /
      (config_.load_report_interval * config_.forward_bytes_per_sec);
  load_ewma_ = 0.7 * load_ewma_ + 0.3 * std::min(1.0, inst);

  double health = 1.0;
  if (config_.report_health) {
    // Self-assessed health (DESIGN.md §10): duplicate reliable hops mean
    // our acks were lost or too slow, and integrity drops mean inbound
    // frames arrive corrupted — both symptoms a gray node can observe
    // about itself, from its own counters, without any oracle.
    const std::uint64_t corrupt = agent_.gossip_stats().integrity_drops;
    const std::uint64_t bad = (corrupt - last_integrity_drops_) +
                              (stats_.dup_hops_received - last_dup_hops_);
    last_integrity_drops_ = corrupt;
    last_dup_hops_ = stats_.dup_hops_received;
    const double inst_health =
        1.0 - std::min(1.0, double(bad) /
                                std::max(1.0, config_.health_events_full_penalty));
    health_ewma_ = 0.7 * health_ewma_ + 0.3 * inst_health;
    // Quantized so small fluctuations do not churn MIB content versions.
    health = std::round(health_ewma_ * 20.0) / 20.0;
    if (health != last_health_reported_) {
      agent_.SetLocalAttr(astrolabe::kAttrHealth, health);
      last_health_reported_ = health;
    }
  }
  // Election sees the effective load: an unhealthy node inflates its
  // reported load so the least-loaded election (§5) steers around it.
  agent_.SetLocalAttr(
      astrolabe::kAttrLoad,
      load_ewma_ + (1.0 - health) * config_.health_load_penalty);
  agent_.Schedule(config_.load_report_interval, [this] { ReportLoad(); });
}

void MulticastService::SendToZone(const ZonePath& zone, Item item) {
  item.target_zone = zone.ToString();
  if (zone.IsPrefixOf(agent_.path())) {
    Disseminate(std::move(item));
    return;
  }
  // Publishing into a zone we are not a member of (paper §8: "disseminate
  // localized news items in Asia"): hand the item to a representative of
  // that zone, provided the zone is visible from our root path.
  if (zone.IsRoot() || zone.Depth() > agent_.Depth()) {
    ++stats_.misrouted;
    return;
  }
  const std::size_t level = zone.Depth() - 1;
  if (!(zone.Prefix(level) == agent_.path().Prefix(level))) {
    ++stats_.misrouted;
    util::LogWarn("multicast %s: zone %s is not visible from here",
                  agent_.path().ToString().c_str(), item.target_zone.c_str());
    return;
  }
  auto contacts = agent_.ContactsOf(level, zone.Leaf());
  if (contacts.empty()) {
    ++stats_.misrouted;
    return;
  }
  std::vector<sim::NodeId> reps = ChooseReps(item.target_zone, contacts);
  // Copy the key before the QueueEntry steals the item: evaluation order
  // of the arguments is unspecified, and a moved-from target_zone would
  // collapse every child into one ""-keyed queue.
  const std::string queue_key = item.target_zone;
  EnqueueForChild(queue_key, 1, QueueEntry{std::move(item), std::move(reps)});
  DrainQueues();
}

void MulticastService::HandleForward(const sim::Message& msg) {
  suspects_.Clear(msg.from);  // any inbound message proves the peer alive
  Disseminate(msg.As<Item>());
}

void MulticastService::HandleReliableForward(const sim::Message& msg) {
  const auto& hop = msg.As<ReliableHop>();
  suspects_.Clear(msg.from);
  // Always ack — including duplicates. The retransmission that produced a
  // duplicate means our previous ack was lost (or raced the timer); only a
  // fresh ack stops the sender.
  agent_.Send(sim::Message::Make(agent_.id(), msg.from, kAckType,
                                 HopAck{hop.hop_id}, kAckWireBytes));
  if (seen_.contains(hop.item.id)) {
    // A retransmission reaching us for an item we already processed means
    // our ack was lost or too slow — self-evidence of grayness, fed into
    // the health score by the next ReportLoad cycle.
    ++stats_.dup_hops_received;
    if (auto* m = Metrics()) m->Add(obs_.dup_hops, agent_.id());
  }
  Disseminate(hop.item);
}

void MulticastService::HandleAck(const sim::Message& msg) {
  const auto& ack = msg.As<HopAck>();
  suspects_.Clear(msg.from);
  auto it = pending_.find(ack.hop_id);
  if (it == pending_.end()) return;  // late ack after failover/abandon
  ++stats_.acks_received;
  if (auto* m = Metrics()) m->Add(obs_.acks, agent_.id());
  pending_.erase(it);
}

bool MulticastService::SeenBefore(const std::string& id) {
  if (seen_.contains(id)) return true;
  seen_.insert(id);
  seen_order_.push_back(id);
  if (seen_order_.size() > config_.dup_log_capacity) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

void MulticastService::Disseminate(Item item) {
  const ZonePath zone = ZonePath::Parse(item.target_zone);
  if (!zone.IsPrefixOf(agent_.path())) {
    // Stale contact information routed the item to a node outside the
    // target zone; drop (redundant paths cover the loss).
    ++stats_.misrouted;
    return;
  }
  if (SeenBefore(item.id)) {
    ++stats_.duplicates;
    if (auto* m = Metrics()) m->Add(obs_.duplicates, agent_.id());
    if (auto* t = Tracer();
        t != nullptr && t->Enabled(obs::EventCategory::kCache)) {
      t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kCache,
                "mc.dup", item.hops, 0, item.id);
    }
    return;
  }
  // Member of the target zone: deliver locally once.
  ++stats_.delivered;
  if (auto* m = Metrics()) m->Add(obs_.delivered, agent_.id());
  if (deliver_) deliver_(item);

  // Recursive expansion (§5): forward to representatives of every child
  // zone, deepest first when the target is an ancestor of ours.
  ++item.hops;
  for (std::size_t level = zone.Depth(); level < agent_.Depth(); ++level) {
    const astrolabe::Table& table = agent_.TableAt(level);
    const ZonePath prefix = agent_.path().Prefix(level);
    const std::string& own_child = agent_.path().Component(level);
    for (const auto& [child_key, entry] : table) {
      if (child_key == own_child) continue;  // we handle our own subtree
      if (filter_ && !filter_(item, entry.attrs)) {
        ++stats_.filtered;
        continue;
      }
      auto contacts = agent_.ContactsOf(level, child_key);
      if (contacts.empty()) continue;
      Item forwarded = item;
      forwarded.target_zone = prefix.Child(child_key).ToString();
      std::vector<sim::NodeId> reps =
          ChooseReps(forwarded.target_zone, contacts);
      std::uint64_t weight = 1;
      if (auto it = entry.attrs.find(astrolabe::kAttrMembers);
          it != entry.attrs.end() &&
          it->second.type() == astrolabe::AttrValue::Type::kInt) {
        weight = static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, it->second.AsInt()));
      }
      const std::string queue_key = forwarded.target_zone;  // see SendToZone
      EnqueueForChild(queue_key, weight,
                      QueueEntry{std::move(forwarded), std::move(reps)});
    }
    // Within our own subtree we recurse in place: the loop continues one
    // level deeper, so no self-addressed network message is needed.
  }
  DrainQueues();
}

std::vector<sim::NodeId> MulticastService::ChooseReps(
    const std::string& child_key, const std::vector<sim::NodeId>& contacts) {
  // Steer fresh sends away from suspected peers (negative cache). Tiered:
  // unsuspected first; if none, retry suspected-slow (gray) peers — they
  // answer eventually and their quarantine backs off on repeat failures —
  // and only when every contact is suspected dead fall back to the full
  // list rather than stalling the relay.
  const double now = agent_.Now();
  std::vector<sim::NodeId> candidates;
  candidates.reserve(contacts.size());
  for (sim::NodeId c : contacts) {
    if (suspects_.LevelOf(c, now) == SuspicionLevel::kNone) {
      candidates.push_back(c);
    }
  }
  if (candidates.empty()) {
    for (sim::NodeId c : contacts) {
      if (suspects_.LevelOf(c, now) == SuspicionLevel::kSlow) {
        candidates.push_back(c);
      }
    }
  }
  if (candidates.empty()) candidates = contacts;

  std::vector<sim::NodeId> reps;
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(config_.redundancy),
                            candidates.size());
  // Prefer the representative we already talk to ("where there currently
  // are open connections", §5), then fill randomly.
  if (auto it = affinity_.find(child_key); it != affinity_.end()) {
    if (std::find(candidates.begin(), candidates.end(), it->second) !=
        candidates.end()) {
      reps.push_back(it->second);
    }
  }
  std::size_t guard = 0;
  while (reps.size() < want && guard++ < candidates.size() * 4 + 8) {
    const sim::NodeId pick =
        candidates[agent_.Rng().NextBelow(candidates.size())];
    if (std::find(reps.begin(), reps.end(), pick) == reps.end()) {
      reps.push_back(pick);
    }
  }
  if (!reps.empty()) affinity_[child_key] = reps.front();
  return reps;
}

std::int64_t MulticastService::UrgencyOf(const Item& item) const {
  auto it = item.metadata.find(config_.urgency_attr);
  if (it == item.metadata.end() ||
      it->second.type() != astrolabe::AttrValue::Type::kInt) {
    return 5;  // NITF mid-range default
  }
  return it->second.AsInt();
}

void MulticastService::EnqueueForChild(const std::string& child_key,
                                       std::uint64_t weight,
                                       QueueEntry entry) {
  ChildQueue& q = queues_[child_key];
  q.weight = weight;
  if (q.entries.size() >= config_.max_queue_items) {
    // Graceful degradation: shed the lowest-urgency entry in the queue,
    // not blindly the newcomer — a flash item (urgency 1) must never be
    // lost in favor of a routine one. Ties keep the queued entry (FIFO
    // fairness: the newcomer is shed).
    auto worst = q.entries.begin();
    for (auto it = std::next(q.entries.begin()); it != q.entries.end(); ++it) {
      if (UrgencyOf(it->item) > UrgencyOf(worst->item)) worst = it;
    }
    obs::MetricsRegistry* m = Metrics();
    ++stats_.queue_drops;
    if (m != nullptr) m->Add(obs_.queue_drops, agent_.id());
    if (UrgencyOf(entry.item) < UrgencyOf(worst->item)) {
      ++stats_.queue_shed;
      if (m != nullptr) m->Add(obs_.queue_shed, agent_.id());
      if (auto* t = Tracer();
          t != nullptr && t->Enabled(obs::EventCategory::kDrop)) {
        t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kDrop,
                  "mc.queue_shed", std::uint64_t(UrgencyOf(worst->item)),
                  q.entries.size(), worst->item.id);
      }
      *worst = std::move(entry);
      // Preserve arrival order among survivors: the replacement slot keeps
      // the evicted entry's position, which is the best FIFO approximation
      // without an O(n) splice.
      return;
    }
    if (auto* t = Tracer();
        t != nullptr && t->Enabled(obs::EventCategory::kDrop)) {
      t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kDrop,
                "mc.queue_drop", std::uint64_t(UrgencyOf(entry.item)),
                q.entries.size(), entry.item.id);
    }
    return;
  }
  q.entries.push_back(std::move(entry));
}

bool MulticastService::SendEntry(QueueEntry& entry, double now) {
  const std::size_t wire = entry.item.WireBytes();
  const double cost = static_cast<double>(
      wire * std::max<std::size_t>(1, entry.destinations.size()));
  if (!budget_.TryConsume(now, cost)) return false;
  obs::MetricsRegistry* m = Metrics();
  for (sim::NodeId rep : entry.destinations) {
    ++stats_.forwards;
    if (m != nullptr) m->Add(obs_.forwards, agent_.id());
    stats_.forward_bytes += wire;
    if (config_.reliable.enabled &&
        pending_.size() < config_.reliable.max_pending) {
      const std::uint64_t hop_id = next_hop_id_++;
      PendingHop& hop = pending_[hop_id];
      hop.item = entry.item;
      hop.dest = rep;
      hop.attempt = 1;
      hop.first_sent = now;
      TransmitHop(hop_id, hop);
    } else {
      if (config_.reliable.enabled) ++stats_.pending_overflow;
      agent_.Send(sim::Message::Make(agent_.id(), rep, kForwardType,
                                     entry.item, wire));
    }
  }
  return true;
}

void MulticastService::TransmitHop(std::uint64_t hop_id, PendingHop& hop) {
  const std::size_t wire = hop.item.WireBytes() + 8;  // + hop id
  agent_.Send(sim::Message::Make(agent_.id(), hop.dest, kReliableType,
                                 ReliableHop{hop.item, hop_id}, wire));
  const double delay = backoff_.DelayFor(hop.attempt, agent_.Rng());
  agent_.Schedule(delay, [this, hop_id, expected = hop.attempt] {
    OnAckTimeout(hop_id, expected);
  });
}

std::vector<sim::NodeId> MulticastService::LiveContactsFor(
    const PendingHop& hop) const {
  // target_zone encodes the child zone exactly as Disseminate built it:
  // level = depth-1, row key = leaf. Looking it up afresh on every retry
  // means failover follows re-election instead of a stale snapshot.
  const ZonePath zone = ZonePath::Parse(hop.item.target_zone);
  if (zone.IsRoot() || zone.Depth() > agent_.Depth()) return {};
  return agent_.ContactsOf(zone.Depth() - 1, zone.Leaf());
}

void MulticastService::OnAckTimeout(std::uint64_t hop_id,
                                    int expected_attempt) {
  auto it = pending_.find(hop_id);
  if (it == pending_.end()) return;              // acked: timer canceled
  PendingHop& hop = it->second;
  if (hop.attempt != expected_attempt) return;   // superseded by a resend
  const double now = agent_.Now();
  obs::MetricsRegistry* m = Metrics();
  obs::EventTracer* t = Tracer();

  if (now - hop.first_sent >= config_.reliable.give_up_after) {
    ++stats_.abandoned;
    if (m != nullptr) m->Add(obs_.abandoned, agent_.id());
    if (t != nullptr && t->Enabled(obs::EventCategory::kReliable)) {
      t->Record(now, agent_.id(), obs::EventCategory::kReliable, "mc.abandon",
                hop.dest, std::uint64_t(hop.attempt), hop.item.id);
    }
    // Give-up is dead-level evidence: the peer failed every retransmission
    // and failover attempt for the whole give-up window.
    if (suspects_.Suspect(hop.dest, now)) {
      ++stats_.quarantines;
      if (m != nullptr) m->Add(obs_.quarantines, agent_.id());
    }
    pending_.erase(it);
    return;
  }

  const std::vector<sim::NodeId> contacts = LiveContactsFor(hop);
  const bool dest_is_current =
      contacts.empty() ||  // row expired/unknown: keep trying the last rep
      std::find(contacts.begin(), contacts.end(), hop.dest) != contacts.end();

  if (hop.attempt >= config_.reliable.attempts_per_peer || !dest_is_current) {
    // Fail over to an alternate representative of the same child zone.
    // Timing out is slow-level evidence, not death: gray peers re-admit
    // with backoff and only escalate to dead after repeated strikes.
    if (suspects_.SuspectSlow(hop.dest, now)) {
      ++stats_.quarantines;
      if (m != nullptr) m->Add(obs_.quarantines, agent_.id());
    }
    if (std::find(hop.tried.begin(), hop.tried.end(), hop.dest) ==
        hop.tried.end()) {
      hop.tried.push_back(hop.dest);
    }
    sim::NodeId next = hop.dest;
    // Preference order: untried & unsuspected, then unsuspected, then
    // untried & not-dead, then untried; keep the current peer only when it
    // is the sole option.
    auto pick = [&](auto&& admit) -> bool {
      std::vector<sim::NodeId> pool;
      for (sim::NodeId c : contacts) {
        if (c != hop.dest && admit(c)) pool.push_back(c);
      }
      if (pool.empty()) return false;
      next = pool[agent_.Rng().NextBelow(pool.size())];
      return true;
    };
    const auto untried = [&](sim::NodeId c) {
      return std::find(hop.tried.begin(), hop.tried.end(), c) ==
             hop.tried.end();
    };
    const auto unsuspected = [&](sim::NodeId c) {
      return suspects_.LevelOf(c, now) == SuspicionLevel::kNone;
    };
    const auto not_dead = [&](sim::NodeId c) {
      return suspects_.LevelOf(c, now) != SuspicionLevel::kDead;
    };
    (void)(pick([&](sim::NodeId c) { return untried(c) && unsuspected(c); }) ||
           pick(unsuspected) ||
           pick([&](sim::NodeId c) { return untried(c) && not_dead(c); }) ||
           pick(untried));
    if (next != hop.dest) {
      ++stats_.failovers;
      if (m != nullptr) m->Add(obs_.failovers, agent_.id());
      if (t != nullptr && t->Enabled(obs::EventCategory::kReliable)) {
        t->Record(now, agent_.id(), obs::EventCategory::kReliable,
                  "mc.failover", hop.dest, next, hop.item.id);
      }
      // The affinity "open connection" moves with the failover so later
      // items skip the dead peer immediately.
      affinity_[hop.item.target_zone] = next;
      hop.dest = next;
      hop.attempt = 1;
    } else {
      ++hop.attempt;  // sole contact: keep retrying at the backoff cap
    }
  } else {
    ++hop.attempt;
  }

  ++stats_.retransmits;
  if (m != nullptr) m->Add(obs_.retransmits, agent_.id());
  if (t != nullptr && t->Enabled(obs::EventCategory::kReliable)) {
    t->Record(now, agent_.id(), obs::EventCategory::kReliable, "mc.retx",
              hop.dest, std::uint64_t(hop.attempt), hop.item.id);
  }
  // Retransmissions bypass the token bucket: they are few (bounded by the
  // backoff schedule), and starving recovery behind fresh traffic would
  // invert the reliability priority. Bytes are still accounted.
  stats_.forward_bytes += hop.item.WireBytes();
  TransmitHop(hop_id, hop);
}

void MulticastService::DrainQueues() {
  const double now = agent_.Now();
  bool throttled = false;

  switch (config_.queue_strategy) {
    case QueueStrategy::kWeightedRoundRobin:
    case QueueStrategy::kRoundRobin: {
      // Each pass grants every non-empty queue credit — proportional to
      // its child zone's member count for WRR, one for plain RR — and
      // sends while the byte budget admits (§9).
      for (bool progress = true; progress && !throttled;) {
        progress = false;
        for (auto& [key, q] : queues_) {
          if (q.entries.empty()) continue;
          q.credit +=
              config_.queue_strategy == QueueStrategy::kWeightedRoundRobin
                  ? q.weight
                  : 1;
          while (!q.entries.empty() && q.credit > 0) {
            if (!SendEntry(q.entries.front(), now)) {
              throttled = true;
              break;
            }
            --q.credit;
            q.entries.pop_front();
            progress = true;
          }
          if (throttled) break;
        }
      }
      for (auto& [key, q] : queues_) q.credit = 0;
      break;
    }
    case QueueStrategy::kUrgencyFirst: {
      // Aggressive: always send the globally most-urgent queued entry
      // next — urgent items overtake backlogs inside their own queue too.
      for (;;) {
        ChildQueue* best_q = nullptr;
        std::deque<QueueEntry>::iterator best_it;
        std::int64_t best_urgency = 0;
        for (auto& [key, q] : queues_) {
          for (auto it = q.entries.begin(); it != q.entries.end(); ++it) {
            const std::int64_t u = UrgencyOf(it->item);
            if (best_q == nullptr || u < best_urgency) {
              best_q = &q;
              best_it = it;
              best_urgency = u;
            }
          }
        }
        if (best_q == nullptr) break;
        if (!SendEntry(*best_it, now)) {
          throttled = true;
          break;
        }
        best_q->entries.erase(best_it);
      }
      break;
    }
  }

  bool any_left = throttled;
  for (auto& [key, q] : queues_) {
    if (!q.entries.empty()) any_left = true;
  }
  if (any_left && !drain_scheduled_) {
    drain_scheduled_ = true;
    agent_.Schedule(config_.drain_interval, [this] {
      drain_scheduled_ = false;
      DrainQueues();
    });
  }
}

const char* QueueStrategyName(QueueStrategy s) noexcept {
  switch (s) {
    case QueueStrategy::kWeightedRoundRobin: return "weighted-round-robin";
    case QueueStrategy::kRoundRobin: return "round-robin";
    case QueueStrategy::kUrgencyFirst: return "urgency-first";
  }
  return "?";
}

}  // namespace nw::multicast
