#include "multicast/multicast.h"

#include <algorithm>

#include "util/log.h"

namespace nw::multicast {

using astrolabe::Agent;
using astrolabe::Row;
using astrolabe::ZonePath;

MulticastService::MulticastService(Agent& agent, MulticastConfig config)
    : agent_(agent),
      config_(config),
      budget_(config.forward_bytes_per_sec, config.forward_burst_bytes) {
  agent_.RegisterHandler(kForwardType, [this](const sim::Message& msg) {
    HandleForward(msg);
  });
  if (config_.report_load && config_.load_report_interval > 0) {
    agent_.Schedule(config_.load_report_interval *
                        (0.5 + agent_.Rng().NextDouble()),
                    [this] { ReportLoad(); });
  }
}

obs::MetricsRegistry* MulticastService::Metrics() {
  auto* net = agent_.attached_network();
  auto* m = net != nullptr ? net->metrics() : nullptr;
  if (m != nullptr && !obs_.init) {
    obs_.delivered = m->Counter("multicast.forward.delivered");
    obs_.duplicates = m->Counter("multicast.forward.duplicates");
    obs_.forwards = m->Counter("multicast.forward.forwards");
    obs_.queue_drops = m->Counter("multicast.forward.queue_drops");
    obs_.init = true;
  }
  return m;
}

void MulticastService::ReportLoad() {
  // Utilization of the forwarding budget since the last report, smoothed;
  // fed into representative election via the "load" MIB attribute (§5).
  const std::uint64_t bytes = stats_.forward_bytes - last_reported_bytes_;
  last_reported_bytes_ = stats_.forward_bytes;
  const double inst =
      double(bytes) /
      (config_.load_report_interval * config_.forward_bytes_per_sec);
  load_ewma_ = 0.7 * load_ewma_ + 0.3 * std::min(1.0, inst);
  agent_.SetLocalAttr(astrolabe::kAttrLoad, load_ewma_);
  agent_.Schedule(config_.load_report_interval, [this] { ReportLoad(); });
}

void MulticastService::SendToZone(const ZonePath& zone, Item item) {
  item.target_zone = zone.ToString();
  if (zone.IsPrefixOf(agent_.path())) {
    Disseminate(std::move(item));
    return;
  }
  // Publishing into a zone we are not a member of (paper §8: "disseminate
  // localized news items in Asia"): hand the item to a representative of
  // that zone, provided the zone is visible from our root path.
  if (zone.IsRoot() || zone.Depth() > agent_.Depth()) {
    ++stats_.misrouted;
    return;
  }
  const std::size_t level = zone.Depth() - 1;
  if (!(zone.Prefix(level) == agent_.path().Prefix(level))) {
    ++stats_.misrouted;
    util::LogWarn("multicast %s: zone %s is not visible from here",
                  agent_.path().ToString().c_str(), item.target_zone.c_str());
    return;
  }
  auto contacts = agent_.ContactsOf(level, zone.Leaf());
  if (contacts.empty()) {
    ++stats_.misrouted;
    return;
  }
  std::vector<sim::NodeId> reps = ChooseReps(item.target_zone, contacts);
  EnqueueForChild(item.target_zone, 1, QueueEntry{std::move(item), std::move(reps)});
  DrainQueues();
}

void MulticastService::HandleForward(const sim::Message& msg) {
  Disseminate(msg.As<Item>());
}

bool MulticastService::SeenBefore(const std::string& id) {
  if (seen_.contains(id)) return true;
  seen_.insert(id);
  seen_order_.push_back(id);
  if (seen_order_.size() > config_.dup_log_capacity) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

void MulticastService::Disseminate(Item item) {
  const ZonePath zone = ZonePath::Parse(item.target_zone);
  if (!zone.IsPrefixOf(agent_.path())) {
    // Stale contact information routed the item to a node outside the
    // target zone; drop (redundant paths cover the loss).
    ++stats_.misrouted;
    return;
  }
  if (SeenBefore(item.id)) {
    ++stats_.duplicates;
    if (auto* m = Metrics()) m->Add(obs_.duplicates, agent_.id());
    if (auto* net = agent_.attached_network(); net != nullptr) {
      if (auto* t = net->tracer();
          t != nullptr && t->Enabled(obs::EventCategory::kCache)) {
        t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kCache,
                  "mc.dup", item.hops, 0, item.id);
      }
    }
    return;
  }
  // Member of the target zone: deliver locally once.
  ++stats_.delivered;
  if (auto* m = Metrics()) m->Add(obs_.delivered, agent_.id());
  if (deliver_) deliver_(item);

  // Recursive expansion (§5): forward to representatives of every child
  // zone, deepest first when the target is an ancestor of ours.
  ++item.hops;
  for (std::size_t level = zone.Depth(); level < agent_.Depth(); ++level) {
    const astrolabe::Table& table = agent_.TableAt(level);
    const ZonePath prefix = agent_.path().Prefix(level);
    const std::string& own_child = agent_.path().Component(level);
    for (const auto& [child_key, entry] : table) {
      if (child_key == own_child) continue;  // we handle our own subtree
      if (filter_ && !filter_(item, entry.attrs)) {
        ++stats_.filtered;
        continue;
      }
      auto contacts = agent_.ContactsOf(level, child_key);
      if (contacts.empty()) continue;
      Item forwarded = item;
      forwarded.target_zone = prefix.Child(child_key).ToString();
      std::vector<sim::NodeId> reps =
          ChooseReps(forwarded.target_zone, contacts);
      std::uint64_t weight = 1;
      if (auto it = entry.attrs.find(astrolabe::kAttrMembers);
          it != entry.attrs.end() &&
          it->second.type() == astrolabe::AttrValue::Type::kInt) {
        weight = static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, it->second.AsInt()));
      }
      EnqueueForChild(forwarded.target_zone, weight,
                      QueueEntry{std::move(forwarded), std::move(reps)});
    }
    // Within our own subtree we recurse in place: the loop continues one
    // level deeper, so no self-addressed network message is needed.
  }
  DrainQueues();
}

std::vector<sim::NodeId> MulticastService::ChooseReps(
    const std::string& child_key, const std::vector<sim::NodeId>& contacts) {
  std::vector<sim::NodeId> reps;
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(config_.redundancy),
                            contacts.size());
  // Prefer the representative we already talk to ("where there currently
  // are open connections", §5), then fill randomly.
  if (auto it = affinity_.find(child_key); it != affinity_.end()) {
    if (std::find(contacts.begin(), contacts.end(), it->second) !=
        contacts.end()) {
      reps.push_back(it->second);
    }
  }
  std::size_t guard = 0;
  while (reps.size() < want && guard++ < contacts.size() * 4 + 8) {
    const sim::NodeId pick =
        contacts[agent_.Rng().NextBelow(contacts.size())];
    if (std::find(reps.begin(), reps.end(), pick) == reps.end()) {
      reps.push_back(pick);
    }
  }
  if (!reps.empty()) affinity_[child_key] = reps.front();
  return reps;
}

void MulticastService::EnqueueForChild(const std::string& child_key,
                                       std::uint64_t weight,
                                       QueueEntry entry) {
  ChildQueue& q = queues_[child_key];
  q.weight = weight;
  if (q.entries.size() >= config_.max_queue_items) {
    ++stats_.queue_drops;
    if (auto* m = Metrics()) m->Add(obs_.queue_drops, agent_.id());
    if (auto* net = agent_.attached_network(); net != nullptr) {
      if (auto* t = net->tracer();
          t != nullptr && t->Enabled(obs::EventCategory::kDrop)) {
        t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kDrop,
                  "mc.queue_drop", q.entries.size(), 0, entry.item.id);
      }
    }
    return;
  }
  q.entries.push_back(std::move(entry));
}

bool MulticastService::SendEntry(QueueEntry& entry, double now) {
  const std::size_t wire = entry.item.WireBytes();
  const double cost = static_cast<double>(
      wire * std::max<std::size_t>(1, entry.destinations.size()));
  if (!budget_.TryConsume(now, cost)) return false;
  obs::MetricsRegistry* m = Metrics();
  for (sim::NodeId rep : entry.destinations) {
    ++stats_.forwards;
    if (m != nullptr) m->Add(obs_.forwards, agent_.id());
    stats_.forward_bytes += wire;
    agent_.Send(
        sim::Message::Make(agent_.id(), rep, kForwardType, entry.item, wire));
  }
  return true;
}

std::int64_t MulticastService::UrgencyOf(const QueueEntry& entry) const {
  auto it = entry.item.metadata.find(config_.urgency_attr);
  if (it == entry.item.metadata.end() ||
      it->second.type() != astrolabe::AttrValue::Type::kInt) {
    return 5;  // NITF mid-range default
  }
  return it->second.AsInt();
}

void MulticastService::DrainQueues() {
  const double now = agent_.Now();
  bool throttled = false;

  switch (config_.queue_strategy) {
    case QueueStrategy::kWeightedRoundRobin:
    case QueueStrategy::kRoundRobin: {
      // Each pass grants every non-empty queue credit — proportional to
      // its child zone's member count for WRR, one for plain RR — and
      // sends while the byte budget admits (§9).
      for (bool progress = true; progress && !throttled;) {
        progress = false;
        for (auto& [key, q] : queues_) {
          if (q.entries.empty()) continue;
          q.credit +=
              config_.queue_strategy == QueueStrategy::kWeightedRoundRobin
                  ? q.weight
                  : 1;
          while (!q.entries.empty() && q.credit > 0) {
            if (!SendEntry(q.entries.front(), now)) {
              throttled = true;
              break;
            }
            --q.credit;
            q.entries.pop_front();
            progress = true;
          }
          if (throttled) break;
        }
      }
      for (auto& [key, q] : queues_) q.credit = 0;
      break;
    }
    case QueueStrategy::kUrgencyFirst: {
      // Aggressive: always send the globally most-urgent queued entry
      // next — urgent items overtake backlogs inside their own queue too.
      for (;;) {
        ChildQueue* best_q = nullptr;
        std::deque<QueueEntry>::iterator best_it;
        std::int64_t best_urgency = 0;
        for (auto& [key, q] : queues_) {
          for (auto it = q.entries.begin(); it != q.entries.end(); ++it) {
            const std::int64_t u = UrgencyOf(*it);
            if (best_q == nullptr || u < best_urgency) {
              best_q = &q;
              best_it = it;
              best_urgency = u;
            }
          }
        }
        if (best_q == nullptr) break;
        if (!SendEntry(*best_it, now)) {
          throttled = true;
          break;
        }
        best_q->entries.erase(best_it);
      }
      break;
    }
  }

  bool any_left = throttled;
  for (auto& [key, q] : queues_) {
    if (!q.entries.empty()) any_left = true;
  }
  if (any_left && !drain_scheduled_) {
    drain_scheduled_ = true;
    agent_.Schedule(config_.drain_interval, [this] {
      drain_scheduled_ = false;
      DrainQueues();
    });
  }
}

const char* QueueStrategyName(QueueStrategy s) noexcept {
  switch (s) {
    case QueueStrategy::kWeightedRoundRobin: return "weighted-round-robin";
    case QueueStrategy::kRoundRobin: return "round-robin";
    case QueueStrategy::kUrgencyFirst: return "urgency-first";
  }
  return "?";
}

}  // namespace nw::multicast
