// Application-level multicast on Astrolabe (paper §5 and §9).
//
// SendToZone(zone, item) disseminates an item to every leaf under `zone` as
// a recursive computation over the zone tables: at each hop the forwarding
// component looks up the representatives ("contacts") of every child zone,
// applies a pluggable forwarding filter (the pub/sub layer installs the
// Bloom-filter test here), and relays the item to `redundancy`
// representatives per child. Each forwarding component keeps a duplicate-
// suppression log and per-child forwarding queues drained by weighted
// round-robin under a byte budget (§9).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "astrolabe/agent.h"
#include "util/token_bucket.h"

namespace nw::multicast {

// How forwarding queues are filled/drained under a constrained budget
// (paper §9: "The best strategy to fill queues is still under research.
// We are experimenting with weighted round-robin strategies, as well as
// some more aggressive techniques").
enum class QueueStrategy {
  kWeightedRoundRobin,  // credit proportional to child-zone member count
  kRoundRobin,          // one item per non-empty queue per pass
  kUrgencyFirst,        // "aggressive": drain most-urgent items first
};

const char* QueueStrategyName(QueueStrategy s) noexcept;

struct MulticastConfig {
  int redundancy = 1;  // representatives per child zone (paper §9, MIT-style)
  double forward_bytes_per_sec = 1e9;   // forwarding budget (token bucket)
  double forward_burst_bytes = 256e3;
  double drain_interval = 0.05;         // re-check queues when throttled
  std::size_t max_queue_items = 10000;  // per child-zone queue bound
  std::size_t dup_log_capacity = 1 << 16;
  QueueStrategy queue_strategy = QueueStrategy::kWeightedRoundRobin;
  // Name of the metadata attribute consulted by kUrgencyFirst; lower
  // values drain first (NITF urgency semantics: 1 = flash).
  std::string urgency_attr = "urgency";
  // Paper §5: representative election "combines the local knowledge of
  // availability of independent network paths ... the load on those paths
  // and the load on each node". When enabled, the forwarding component
  // periodically publishes its forwarding utilization into the agent's
  // "load" MIB attribute, which the default core aggregation uses to
  // elect the least-loaded contacts.
  bool report_load = true;
  double load_report_interval = 5.0;
};

// The unit of dissemination. Metadata rides along for filtering; the body
// is modeled by its size only (content does not affect the protocols).
struct Item {
  std::string id;           // globally unique (publisher-assigned, §9)
  std::string target_zone;  // zone the item is being disseminated within
  astrolabe::Row metadata;
  std::size_t body_bytes = 0;
  double published_at = 0;
  int hops = 0;

  std::size_t WireBytes() const {
    return id.size() + target_zone.size() + 16 +
           astrolabe::RowWireBytes(metadata) + body_bytes;
  }
};

struct MulticastStats {
  std::uint64_t delivered = 0;       // handed to the delivery callback
  std::uint64_t duplicates = 0;      // suppressed by the dup log
  std::uint64_t forwards = 0;        // messages relayed downward
  std::uint64_t forward_bytes = 0;
  std::uint64_t filtered = 0;        // child zones skipped by the filter
  std::uint64_t queue_drops = 0;     // overload losses
  std::uint64_t misrouted = 0;       // received for a zone we are not in
};

// Attaches the forwarding component to an Astrolabe agent. The service
// registers a message handler on the agent; one service per agent.
class MulticastService {
 public:
  using DeliveryCallback = std::function<void(const Item&)>;
  // Decides whether `item` should be forwarded into the child zone
  // described by `child_row` (aggregated attributes). Leaf rows are agent
  // MIB rows, so the same filter performs leaf-level selection.
  using ForwardFilter =
      std::function<bool(const Item&, const astrolabe::Row& child_row)>;

  MulticastService(astrolabe::Agent& agent, MulticastConfig config);

  void SetDeliveryCallback(DeliveryCallback cb) { deliver_ = std::move(cb); }
  void SetForwardFilter(ForwardFilter filter) { filter_ = std::move(filter); }

  // Local entry point: disseminates `item` to all (filter-passing) leaves
  // under `zone`. The caller must be a member of `zone`.
  void SendToZone(const astrolabe::ZonePath& zone, Item item);

  const MulticastStats& stats() const { return stats_; }
  astrolabe::Agent& agent() { return agent_; }

  // Message type used on the wire; exposed for traffic accounting.
  static constexpr const char* kForwardType = "mc.fwd";

 private:
  struct QueueEntry {
    Item item;
    std::vector<sim::NodeId> destinations;
  };
  struct ChildQueue {
    std::deque<QueueEntry> entries;
    std::uint64_t weight = 1;  // nmembers of the child zone
    std::uint64_t credit = 0;  // WRR state
  };

  // Observability (null-safe; ids registered lazily on first use).
  obs::MetricsRegistry* Metrics();
  struct ObsIds {
    bool init = false;
    std::uint32_t delivered, duplicates, forwards, queue_drops;
  };

  void HandleForward(const sim::Message& msg);
  void Disseminate(Item item);
  bool SeenBefore(const std::string& id);
  void EnqueueForChild(const std::string& child_key, std::uint64_t weight,
                       QueueEntry entry);
  void DrainQueues();
  bool SendEntry(QueueEntry& entry, double now);
  std::int64_t UrgencyOf(const QueueEntry& entry) const;
  void ReportLoad();
  std::vector<sim::NodeId> ChooseReps(const std::string& child_key,
                                      const std::vector<sim::NodeId>& contacts);

  astrolabe::Agent& agent_;
  MulticastConfig config_;
  DeliveryCallback deliver_;
  ForwardFilter filter_;
  util::TokenBucket budget_;
  std::map<std::string, ChildQueue> queues_;
  bool drain_scheduled_ = false;
  // Bounded duplicate log: set + FIFO eviction order.
  std::unordered_set<std::string> seen_;
  std::deque<std::string> seen_order_;
  std::map<std::string, sim::NodeId> affinity_;  // "open connection" per child
  std::uint64_t last_reported_bytes_ = 0;
  double load_ewma_ = 0.0;
  MulticastStats stats_;
  ObsIds obs_{};
};

}  // namespace nw::multicast
