// Application-level multicast on Astrolabe (paper §5 and §9).
//
// SendToZone(zone, item) disseminates an item to every leaf under `zone` as
// a recursive computation over the zone tables: at each hop the forwarding
// component looks up the representatives ("contacts") of every child zone,
// applies a pluggable forwarding filter (the pub/sub layer installs the
// Bloom-filter test here), and relays the item to `redundancy`
// representatives per child. Each forwarding component keeps a duplicate-
// suppression log and per-child forwarding queues drained by weighted
// round-robin under a byte budget (§9).
//
// Two relay disciplines (PROTOCOLS.md "Reliable forwarding"):
//  * reliable (default) — every downward relay carries a hop id and the
//    receiver acknowledges it; on timeout the sender retransmits with
//    exponential backoff + jitter, and after `attempts_per_peer` failures
//    fails over to an alternate representative of the same child zone,
//    re-consulting the live contacts list at every retry so failover
//    tracks re-election. A per-peer suspicion cache steers fresh sends
//    away from peers that recently timed out.
//  * fire-and-forget (legacy) — one unacknowledged mc.fwd per hop; losses
//    are left to redundancy and the subscriber repair layer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "astrolabe/agent.h"
#include "multicast/reliable.h"
#include "util/token_bucket.h"

namespace nw::multicast {

// How forwarding queues are filled/drained under a constrained budget
// (paper §9: "The best strategy to fill queues is still under research.
// We are experimenting with weighted round-robin strategies, as well as
// some more aggressive techniques").
enum class QueueStrategy {
  kWeightedRoundRobin,  // credit proportional to child-zone member count
  kRoundRobin,          // one item per non-empty queue per pass
  kUrgencyFirst,        // "aggressive": drain most-urgent items first
};

const char* QueueStrategyName(QueueStrategy s) noexcept;

struct MulticastConfig {
  int redundancy = 1;  // representatives per child zone (paper §9, MIT-style)
  double forward_bytes_per_sec = 1e9;   // forwarding budget (token bucket)
  double forward_burst_bytes = 256e3;
  double drain_interval = 0.05;         // re-check queues when throttled
  std::size_t max_queue_items = 10000;  // per child-zone queue bound
  std::size_t dup_log_capacity = 1 << 16;
  QueueStrategy queue_strategy = QueueStrategy::kWeightedRoundRobin;
  // Name of the metadata attribute consulted by kUrgencyFirst and by the
  // overflow eviction policy; lower values drain first and are shed last
  // (NITF urgency semantics: 1 = flash).
  std::string urgency_attr = "urgency";
  // Paper §5: representative election "combines the local knowledge of
  // availability of independent network paths ... the load on those paths
  // and the load on each node". When enabled, the forwarding component
  // periodically publishes its forwarding utilization into the agent's
  // "load" MIB attribute, which the default core aggregation uses to
  // elect the least-loaded contacts.
  bool report_load = true;
  double load_report_interval = 5.0;
  // Gray-failure handling (DESIGN.md §10): alongside load, publish a
  // self-assessed health score into the "health" MIB attribute (1 =
  // healthy). Duplicate reliable hops reaching this node (our acks were
  // too slow or lost) and corrupted inbound frames are the symptoms; both
  // are things a gray node can observe about itself.
  bool report_health = true;
  // Election avoidance: the load reported for representative election is
  // load + (1 - health) * health_load_penalty, so SELECT TOP(k ... ORDER
  // BY load ASC) steers around unhealthy nodes without a schema change.
  double health_load_penalty = 0.5;
  // Bad events per report interval that drive instantaneous health to 0.
  double health_events_full_penalty = 20.0;
  // Hop-level ack/retransmit/failover discipline (see reliable.h).
  ReliableConfig reliable;
};

// The unit of dissemination. Metadata rides along for filtering; the body
// is modeled by its size only (content does not affect the protocols).
struct Item {
  std::string id;           // globally unique (publisher-assigned, §9)
  std::string target_zone;  // zone the item is being disseminated within
  astrolabe::Row metadata;
  std::size_t body_bytes = 0;
  double published_at = 0;
  int hops = 0;

  std::size_t WireBytes() const {
    return id.size() + target_zone.size() + 16 +
           astrolabe::RowWireBytes(metadata) + body_bytes;
  }
};

struct MulticastStats {
  std::uint64_t delivered = 0;       // handed to the delivery callback
  std::uint64_t duplicates = 0;      // suppressed by the dup log
  std::uint64_t forwards = 0;        // messages relayed downward
  std::uint64_t forward_bytes = 0;
  std::uint64_t filtered = 0;        // child zones skipped by the filter
  std::uint64_t queue_drops = 0;     // overload losses (shed or refused)
  std::uint64_t queue_shed = 0;      // of which: lower-urgency entry evicted
  std::uint64_t misrouted = 0;       // received for a zone we are not in
  // Reliable-mode accounting.
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;     // timed-out hops sent again
  std::uint64_t failovers = 0;       // hops redirected to an alternate rep
  std::uint64_t abandoned = 0;       // hops given up after give_up_after
  std::uint64_t pending_overflow = 0;  // hops sent unreliably: pending full
  // Gray-failure accounting (DESIGN.md §10).
  std::uint64_t dup_hops_received = 0;  // retransmitted rfwd hops seen again
  std::uint64_t quarantines = 0;        // peers newly entering suspicion

  std::uint64_t TotalOverflowLosses() const { return queue_drops; }
};

// Attaches the forwarding component to an Astrolabe agent. The service
// registers a message handler on the agent; one service per agent.
class MulticastService {
 public:
  using DeliveryCallback = std::function<void(const Item&)>;
  // Decides whether `item` should be forwarded into the child zone
  // described by `child_row` (aggregated attributes). Leaf rows are agent
  // MIB rows, so the same filter performs leaf-level selection.
  using ForwardFilter =
      std::function<bool(const Item&, const astrolabe::Row& child_row)>;

  MulticastService(astrolabe::Agent& agent, MulticastConfig config);

  void SetDeliveryCallback(DeliveryCallback cb) { deliver_ = std::move(cb); }
  void SetForwardFilter(ForwardFilter filter) { filter_ = std::move(filter); }

  // Local entry point: disseminates `item` to all (filter-passing) leaves
  // under `zone`. The caller must be a member of `zone`.
  void SendToZone(const astrolabe::ZonePath& zone, Item item);

  const MulticastStats& stats() const { return stats_; }
  astrolabe::Agent& agent() { return agent_; }

  // Unacked reliable hops currently awaiting ack or retransmission.
  std::size_t pending_hops() const { return pending_.size(); }
  // Peers currently under suspicion (negative cache, TTL-pruned).
  std::size_t suspected_peers() { return suspects_.LiveCount(agent_.Now()); }
  // Current suspicion level of `peer` (kSlow = gray-quarantined, retried
  // with backoff; kDead = avoided until the long TTL expires).
  SuspicionLevel SuspicionOf(sim::NodeId peer) {
    return suspects_.LevelOf(peer, agent_.Now());
  }
  // Smoothed self-assessed health score (1 = healthy), as last computed by
  // the load/health reporter.
  double health() const { return health_ewma_; }

  // Message types used on the wire; exposed for traffic accounting.
  static constexpr const char* kForwardType = "mc.fwd";    // fire-and-forget
  static constexpr const char* kReliableType = "mc.rfwd";  // hop id, acked
  static constexpr const char* kAckType = "mc.ack";
  // Modeled ack size: hop id + header-level framing.
  static constexpr std::size_t kAckWireBytes = 16;

  // Reliable relay payload: the item plus the hop id the ack echoes.
  struct ReliableHop {
    Item item;
    std::uint64_t hop_id = 0;
    std::size_t WireBytes() const { return item.WireBytes() + 8; }
  };
  struct HopAck {
    std::uint64_t hop_id = 0;
  };

 private:
  struct QueueEntry {
    Item item;
    std::vector<sim::NodeId> destinations;
  };
  struct ChildQueue {
    std::deque<QueueEntry> entries;
    std::uint64_t weight = 1;  // nmembers of the child zone
    std::uint64_t credit = 0;  // WRR state
  };
  // One unacked reliable relay. The child zone is recovered from
  // item.target_zone at every retry so the contacts lookup always sees the
  // live table (failover tracks re-election, not a snapshot).
  struct PendingHop {
    Item item;
    sim::NodeId dest = sim::kInvalidNode;
    int attempt = 1;        // sends to `dest` so far
    double first_sent = 0;  // give-up clock
    std::vector<sim::NodeId> tried;  // peers already failed over from
  };

  // Observability (null-safe; ids registered lazily on first use).
  obs::MetricsRegistry* Metrics();
  obs::EventTracer* Tracer() const;
  struct ObsIds {
    bool init = false;
    std::uint32_t delivered, duplicates, forwards, queue_drops, queue_shed,
        acks, retransmits, failovers, abandoned, dup_hops, quarantines;
  };

  void HandleForward(const sim::Message& msg);
  void HandleReliableForward(const sim::Message& msg);
  void HandleAck(const sim::Message& msg);
  void Disseminate(Item item);
  bool SeenBefore(const std::string& id);
  void EnqueueForChild(const std::string& child_key, std::uint64_t weight,
                       QueueEntry entry);
  void DrainQueues();
  bool SendEntry(QueueEntry& entry, double now);
  // Transmits one reliable hop (first send or retransmission) and arms its
  // ack timer.
  void TransmitHop(std::uint64_t hop_id, PendingHop& hop);
  void OnAckTimeout(std::uint64_t hop_id, int expected_attempt);
  // Representatives of the child zone `hop` targets, from the live tables.
  std::vector<sim::NodeId> LiveContactsFor(const PendingHop& hop) const;
  std::int64_t UrgencyOf(const Item& item) const;
  void ReportLoad();
  void OnRestart();
  std::vector<sim::NodeId> ChooseReps(const std::string& child_key,
                                      const std::vector<sim::NodeId>& contacts);

  astrolabe::Agent& agent_;
  MulticastConfig config_;
  DeliveryCallback deliver_;
  ForwardFilter filter_;
  util::TokenBucket budget_;
  BackoffPolicy backoff_;
  SuspicionCache suspects_;
  std::map<std::string, ChildQueue> queues_;
  std::map<std::uint64_t, PendingHop> pending_;  // hop id -> unacked relay
  std::uint64_t next_hop_id_ = 1;
  bool drain_scheduled_ = false;
  // Bounded duplicate log: set + FIFO eviction order. Ordered set rather
  // than a hash set so any future iteration is deterministic by
  // construction (ISSUE 8 audit: hash iteration order must never leak into
  // protocol decisions or trace output).
  std::set<std::string> seen_;
  std::deque<std::string> seen_order_;
  std::map<std::string, sim::NodeId> affinity_;  // "open connection" per child
  std::uint64_t last_reported_bytes_ = 0;
  double load_ewma_ = 0.0;
  // Health reporting state (DESIGN.md §10). The reported score is
  // quantized to 0.05 steps so noise does not churn MIB content versions;
  // -1 forces the first report out.
  double health_ewma_ = 1.0;
  double last_health_reported_ = -1.0;
  std::uint64_t last_integrity_drops_ = 0;
  std::uint64_t last_dup_hops_ = 0;
  MulticastStats stats_;
  ObsIds obs_{};
};

}  // namespace nw::multicast
