// Reliable hop-by-hop forwarding primitives (paper §5, §9 robustness).
//
// The multicast relay is only as reliable as its weakest hop: a forward to
// a crashed or partitioned representative silently loses the item for that
// whole subtree until subscriber-level anti-entropy repairs it seconds
// later. This header holds the small, independently testable pieces of the
// reliable forwarding mode: the retransmission backoff schedule and the
// per-peer suspicion cache (a negative cache with TTL that steers new
// sends away from peers that recently timed out). The forwarding component
// itself (MulticastService) wires them into the mc.rfwd/mc.ack exchange —
// see PROTOCOLS.md "Reliable forwarding".
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "sim/message.h"
#include "util/rng.h"

namespace nw::multicast {

// Knobs of the reliable forwarding mode. Defaults are tuned for the
// simulated WAN (30 ms one-way latency): the first retransmission fires
// after ~8 RTTs, well clear of jitter, and the whole schedule caps far
// below the subscriber repair interval so hop-level recovery always beats
// the repair path.
struct ReliableConfig {
  bool enabled = true;        // false = legacy fire-and-forget relays
  double ack_timeout = 0.25;  // initial retransmission timeout (seconds)
  double backoff_multiplier = 2.0;
  double backoff_cap = 2.0;   // ceiling on the (pre-jitter) delay
  double jitter_frac = 0.2;   // uniform jitter: delay * (1 ± jitter_frac)
  // Retransmissions to one peer before failing over to an alternate
  // representative of the same child zone.
  int attempts_per_peer = 3;
  // Total time a hop keeps being retried (across failovers) before the
  // item is abandoned to the repair layer. Must exceed the longest
  // crash/partition window the deployment is expected to ride out.
  double give_up_after = 60.0;
  double suspicion_ttl = 10.0;     // negative-cache TTL for kDead (seconds)
  // Initial quarantine for kSlow (gray) suspicions; doubles per strike up
  // to suspicion_ttl. 0 = suspicion_ttl / 4.
  double slow_suspicion_ttl = 0.0;
  // Slow strikes before a peer escalates to kDead.
  int escalate_strikes = 3;
  std::size_t max_pending = 8192;  // bound on unacked hops per node
};

// The retransmission schedule: exponential backoff with a cap and
// symmetric uniform jitter. Pure apart from the injected rng, so tests can
// assert the schedule deterministically.
class BackoffPolicy {
 public:
  explicit BackoffPolicy(const ReliableConfig& config) : config_(config) {}

  // Pre-jitter delay before the `attempt`-th retransmission (attempt >= 1):
  // min(ack_timeout * multiplier^(attempt-1), cap).
  double BaseDelay(int attempt) const;

  // BaseDelay with jitter applied: uniform in [base*(1-j), base*(1+j)].
  double DelayFor(int attempt, util::DeterministicRng& rng) const;

 private:
  ReliableConfig config_;
};

// Two-level suspicion of a peer (DESIGN.md §10): a hop that fails over
// after repeated ack timeouts is evidence of *slowness*, not death — gray
// nodes answer eventually. kSlow quarantines briefly and re-admits with
// backoff (the quarantine doubles per strike); only accumulated strikes or
// a full give-up escalate to kDead, which quarantines for the long TTL.
enum class SuspicionLevel { kNone, kSlow, kDead };

// Negative cache of suspected peers. A peer enters when a forward to it
// times out repeatedly and leaves either when its quarantine expires (it
// is then retried; another failure re-enters it with a longer sentence)
// or when any message from it proves it alive. Representative choice
// consults the cache so fresh sends prefer unsuspected peers, then
// suspected-slow ones, and avoid suspected-dead ones entirely.
class SuspicionCache {
 public:
  // `slow_ttl` <= 0 defaults to ttl / 4.
  explicit SuspicionCache(double ttl, double slow_ttl = 0,
                          int escalate_strikes = 3);

  // Suspected-dead (legacy single-level entry point): quarantine for the
  // full TTL. Returns true if the peer was not under suspicion before.
  bool Suspect(sim::NodeId peer, double now);
  // Suspected-slow: short quarantine, doubling per strike up to the dead
  // TTL; `escalate_strikes` strikes escalate to kDead. Returns true if the
  // peer was not under suspicion before.
  bool SuspectSlow(sim::NodeId peer, double now);
  // Liveness proof (an ack or any inbound message): drop the suspicion
  // and reset the strike count.
  void Clear(sim::NodeId peer);
  SuspicionLevel LevelOf(sim::NodeId peer, double now) const;
  // Any active suspicion (kSlow or kDead).
  bool IsSuspected(sim::NodeId peer, double now) const {
    return LevelOf(peer, now) != SuspicionLevel::kNone;
  }
  // Live (unexpired) entries; also prunes expired ones (which forgets
  // their strikes — a peer that behaves through a full prune cycle has
  // earned its clean slate).
  std::size_t LiveCount(double now);
  double ttl() const noexcept { return ttl_; }
  double slow_ttl() const noexcept { return slow_ttl_; }
  int StrikesOf(sim::NodeId peer) const;

 private:
  struct Entry {
    SuspicionLevel level = SuspicionLevel::kNone;
    double until = 0;  // quarantine expiry time
    int strikes = 0;   // slow strikes accumulated (drives the backoff)
  };

  double ttl_;
  double slow_ttl_;
  int escalate_strikes_;
  std::map<sim::NodeId, Entry> entries_;
};

}  // namespace nw::multicast
