#include "multicast/reliable.h"

#include <algorithm>

namespace nw::multicast {

double BackoffPolicy::BaseDelay(int attempt) const {
  double delay = config_.ack_timeout;
  for (int i = 1; i < attempt; ++i) {
    delay *= config_.backoff_multiplier;
    if (delay >= config_.backoff_cap) break;
  }
  return std::min(delay, config_.backoff_cap);
}

double BackoffPolicy::DelayFor(int attempt, util::DeterministicRng& rng) const {
  const double base = BaseDelay(attempt);
  const double spread = 2.0 * rng.NextDouble() - 1.0;  // uniform in [-1, 1]
  return base * (1.0 + config_.jitter_frac * spread);
}

void SuspicionCache::Suspect(sim::NodeId peer, double now) {
  double& until = until_[peer];
  until = std::max(until, now + ttl_);
}

void SuspicionCache::Clear(sim::NodeId peer) { until_.erase(peer); }

bool SuspicionCache::IsSuspected(sim::NodeId peer, double now) const {
  auto it = until_.find(peer);
  return it != until_.end() && it->second > now;
}

std::size_t SuspicionCache::LiveCount(double now) {
  for (auto it = until_.begin(); it != until_.end();) {
    it = it->second > now ? std::next(it) : until_.erase(it);
  }
  return until_.size();
}

}  // namespace nw::multicast
