#include "multicast/reliable.h"

#include <algorithm>

namespace nw::multicast {

double BackoffPolicy::BaseDelay(int attempt) const {
  double delay = config_.ack_timeout;
  for (int i = 1; i < attempt; ++i) {
    delay *= config_.backoff_multiplier;
    if (delay >= config_.backoff_cap) break;
  }
  return std::min(delay, config_.backoff_cap);
}

double BackoffPolicy::DelayFor(int attempt, util::DeterministicRng& rng) const {
  const double base = BaseDelay(attempt);
  const double spread = 2.0 * rng.NextDouble() - 1.0;  // uniform in [-1, 1]
  return base * (1.0 + config_.jitter_frac * spread);
}

SuspicionCache::SuspicionCache(double ttl, double slow_ttl,
                               int escalate_strikes)
    : ttl_(ttl),
      slow_ttl_(slow_ttl > 0 ? slow_ttl : ttl / 4.0),
      escalate_strikes_(std::max(1, escalate_strikes)) {}

bool SuspicionCache::Suspect(sim::NodeId peer, double now) {
  const bool fresh = LevelOf(peer, now) == SuspicionLevel::kNone;
  Entry& e = entries_[peer];
  e.level = SuspicionLevel::kDead;
  e.until = std::max(e.until, now + ttl_);
  e.strikes += 1;
  return fresh;
}

bool SuspicionCache::SuspectSlow(sim::NodeId peer, double now) {
  const bool fresh = LevelOf(peer, now) == SuspicionLevel::kNone;
  Entry& e = entries_[peer];
  e.strikes += 1;
  if (e.level == SuspicionLevel::kDead || e.strikes >= escalate_strikes_) {
    e.level = SuspicionLevel::kDead;
    e.until = std::max(e.until, now + ttl_);
    return fresh;
  }
  e.level = SuspicionLevel::kSlow;
  const double quarantine =
      std::min(slow_ttl_ * double(1u << std::min(e.strikes - 1, 20)), ttl_);
  e.until = std::max(e.until, now + quarantine);
  return fresh;
}

void SuspicionCache::Clear(sim::NodeId peer) { entries_.erase(peer); }

SuspicionLevel SuspicionCache::LevelOf(sim::NodeId peer, double now) const {
  auto it = entries_.find(peer);
  if (it == entries_.end() || it->second.until <= now) {
    return SuspicionLevel::kNone;
  }
  return it->second.level;
}

std::size_t SuspicionCache::LiveCount(double now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.until > now ? std::next(it) : entries_.erase(it);
  }
  return entries_.size();
}

int SuspicionCache::StrikesOf(sim::NodeId peer) const {
  auto it = entries_.find(peer);
  return it == entries_.end() ? 0 : it->second.strikes;
}

}  // namespace nw::multicast
