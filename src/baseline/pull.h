// The traditional web pull model the paper argues against (§1): clients
// periodically re-fetch a front page (or an RSS summary, or a
// last-modified delta) from a centralized server. Used by experiment E1
// (redundant-data ratio vs. poll rate) and E2 (publisher load), and by the
// NewsWire bootstrap feed agents (§10).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "baseline/article.h"
#include "sim/network.h"
#include "util/stats.h"

namespace nw::baseline {

enum class PullMode {
  kFullPage,    // every poll returns the whole front page
  kRssSummary,  // poll returns headlines; unseen bodies fetched separately
  kDeltaSince,  // if-modified-since + delta encoding (§1)
};

const char* PullModeName(PullMode mode) noexcept;

// Centralized news site. Front page shows the most recent `front_page_size`
// articles.
class PullServer : public sim::Node {
 public:
  explicit PullServer(std::size_t front_page_size = 25)
      : front_page_size_(front_page_size) {}

  // Adds a new article (workload generator calls this).
  const Article& AddArticle(std::size_t body_bytes, std::size_t summary_bytes,
                            std::string subject);

  void OnMessage(const sim::Message& msg) override;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t response_bytes = 0;   // application payload served
    std::uint64_t not_modified = 0;     // 304-style empty responses
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t article_count() const { return next_id_ - 1; }
  const std::vector<Article>& articles() const { return articles_; }

  // Wire protocol types (shared with PullClient).
  static constexpr const char* kRequestType = "pull.req";
  static constexpr const char* kResponseType = "pull.resp";

  struct Request {
    PullMode mode = PullMode::kFullPage;
    std::uint64_t last_seen_id = 0;  // kDeltaSince / body fetch floor
    bool bodies_only = false;        // RSS follow-up: fetch bodies > last_seen
  };
  struct Response {
    std::vector<Article> articles;  // bodies (or summaries for RSS)
    bool summaries = false;
    bool not_modified = false;
  };

 private:
  std::size_t front_page_size_;
  std::vector<Article> articles_;
  std::uint64_t next_id_ = 1;
  Stats stats_;
};

// A subscriber that polls the server on a fixed interval.
class PullClient : public sim::Node {
 public:
  struct Config {
    sim::NodeId server = 0;
    PullMode mode = PullMode::kFullPage;
    double poll_interval = 3600;  // seconds between polls
    double start_offset = 0;      // desynchronize clients
  };

  explicit PullClient(Config config) : config_(config) {}

  void Start();
  void OnMessage(const sim::Message& msg) override;

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t redundant_bytes = 0;  // content already seen
    std::uint64_t new_articles = 0;
    util::SampleStats staleness;  // article age at first sight (s)
  };
  const Stats& stats() const { return stats_; }

 private:
  void Poll();

  Config config_;
  std::set<std::uint64_t> seen_;
  std::uint64_t max_seen_ = 0;
  Stats stats_;
};

// The proprietary one-to-many push the paper contrasts with (§2): the
// publisher unicasts every article to every subscriber directly.
class DirectPushServer : public sim::Node {
 public:
  void AddSubscriber(sim::NodeId id) { subscribers_.push_back(id); }
  std::size_t subscriber_count() const { return subscribers_.size(); }

  // Unicasts the article to all subscribers.
  void Publish(const Article& article);

  void OnMessage(const sim::Message& /*msg*/) override {}

  static constexpr const char* kPushType = "push.item";

 private:
  std::vector<sim::NodeId> subscribers_;
};

class DirectPushClient : public sim::Node {
 public:
  void OnMessage(const sim::Message& msg) override;

  const util::SampleStats& latency() const { return latency_; }
  std::uint64_t received() const { return received_; }

 private:
  util::SampleStats latency_;
  std::uint64_t received_ = 0;
};

}  // namespace nw::baseline
