#include "baseline/pull.h"

#include <algorithm>

namespace nw::baseline {

const char* PullModeName(PullMode mode) noexcept {
  switch (mode) {
    case PullMode::kFullPage: return "full-page";
    case PullMode::kRssSummary: return "rss-summary";
    case PullMode::kDeltaSince: return "delta-since";
  }
  return "?";
}

namespace {

std::size_t ResponseWireBytes(const PullServer::Response& resp) {
  std::size_t n = 16;
  for (const Article& a : resp.articles) {
    n += resp.summaries ? a.summary_bytes : a.body_bytes;
  }
  return n;
}

}  // namespace

const Article& PullServer::AddArticle(std::size_t body_bytes,
                                      std::size_t summary_bytes,
                                      std::string subject) {
  Article a;
  a.id = next_id_++;
  a.created_at = Now();
  a.body_bytes = body_bytes;
  a.summary_bytes = summary_bytes;
  a.subject = std::move(subject);
  articles_.push_back(std::move(a));
  return articles_.back();
}

void PullServer::OnMessage(const sim::Message& msg) {
  if (msg.type != kRequestType) return;
  const auto& req = msg.As<Request>();
  ++stats_.requests;

  Response resp;
  const std::size_t page_start =
      articles_.size() > front_page_size_ ? articles_.size() - front_page_size_
                                          : 0;
  switch (req.mode) {
    case PullMode::kFullPage:
      if (req.bodies_only) {
        // RSS follow-up: bodies of front-page articles newer than last_seen.
        for (std::size_t i = page_start; i < articles_.size(); ++i) {
          if (articles_[i].id > req.last_seen_id) {
            resp.articles.push_back(articles_[i]);
          }
        }
      } else {
        resp.articles.assign(articles_.begin() + page_start, articles_.end());
      }
      break;
    case PullMode::kRssSummary:
      resp.summaries = true;
      resp.articles.assign(articles_.begin() + page_start, articles_.end());
      break;
    case PullMode::kDeltaSince: {
      for (std::size_t i = page_start; i < articles_.size(); ++i) {
        if (articles_[i].id > req.last_seen_id) {
          resp.articles.push_back(articles_[i]);
        }
      }
      if (resp.articles.empty()) {
        resp.not_modified = true;  // 304 Not Modified
        ++stats_.not_modified;
      }
      break;
    }
  }
  const std::size_t wire = resp.not_modified ? 4 : ResponseWireBytes(resp);
  stats_.response_bytes += wire;
  Send(sim::Message::Make(id(), msg.from, kResponseType, std::move(resp),
                          wire));
}

void PullClient::Start() {
  Schedule(config_.start_offset, [this] { Poll(); });
}

void PullClient::Poll() {
  ++stats_.polls;
  PullServer::Request req;
  req.mode = config_.mode == PullMode::kRssSummary ? PullMode::kRssSummary
                                                   : config_.mode;
  req.last_seen_id = max_seen_;
  Send(sim::Message::Make(id(), config_.server, PullServer::kRequestType, req,
                          32));
  Schedule(config_.poll_interval, [this] { Poll(); });
}

void PullClient::OnMessage(const sim::Message& msg) {
  if (msg.type != PullServer::kResponseType) return;
  const auto& resp = msg.As<PullServer::Response>();
  if (resp.not_modified) {
    stats_.bytes_received += 4;
    return;
  }
  std::uint64_t fresh_max = max_seen_;
  bool any_new = false;
  for (const Article& a : resp.articles) {
    const std::size_t bytes = resp.summaries ? a.summary_bytes : a.body_bytes;
    stats_.bytes_received += bytes;
    if (seen_.contains(a.id)) {
      stats_.redundant_bytes += bytes;
      continue;
    }
    any_new = true;
    fresh_max = std::max(fresh_max, a.id);
    if (!resp.summaries) {
      // Body in hand: the article is now "seen".
      seen_.insert(a.id);
      ++stats_.new_articles;
      stats_.staleness.Add(Now() - a.created_at);
    }
  }
  if (resp.summaries && any_new) {
    // RSS model: the summary told us something is new; fetch the bodies.
    PullServer::Request req;
    req.mode = PullMode::kFullPage;
    req.bodies_only = true;
    req.last_seen_id = max_seen_;
    Send(sim::Message::Make(id(), config_.server, PullServer::kRequestType,
                            req, 32));
  }
  if (!resp.summaries) max_seen_ = std::max(max_seen_, fresh_max);
}

void DirectPushServer::Publish(const Article& article) {
  for (sim::NodeId sub : subscribers_) {
    Send(sim::Message::Make(id(), sub, kPushType, article,
                            article.body_bytes));
  }
}

void DirectPushClient::OnMessage(const sim::Message& msg) {
  if (msg.type != DirectPushServer::kPushType) return;
  const auto& article = msg.As<Article>();
  ++received_;
  latency_.Add(Now() - article.created_at);
}

}  // namespace nw::baseline
