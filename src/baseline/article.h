// A published article as seen by the baseline (centralized) delivery
// models. Bodies are modeled by size; headlines by a small summary size.
#pragma once

#include <cstdint>
#include <string>

namespace nw::baseline {

struct Article {
  std::uint64_t id = 0;         // monotone per server
  double created_at = 0;
  std::size_t body_bytes = 2048;
  std::size_t summary_bytes = 96;  // headline + URL (RSS channel entry)
  std::string subject;
};

}  // namespace nw::baseline
