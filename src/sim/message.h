// Simulated network message. Payloads are carried by shared_ptr-to-const so
// a multicast fan-out of one item shares a single payload object, while the
// wire size used for bandwidth accounting is declared explicitly.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "util/hash.h"

namespace nw::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::string type;         // protocol discriminator, e.g. "gossip", "fwd"
  std::any payload;         // protocol-defined body (usually shared_ptr<const T>)
  std::size_t wire_bytes = 0;  // size charged against link bandwidth
  // Envelope checksum (wire-format v3, PROTOCOLS.md): stamped by
  // Network::Send, verified-and-dropped by receiving protocol layers.
  // Payloads are shared immutable objects, so in-flight corruption is
  // modeled by flipping bits here rather than mutating the body. 0 means
  // "unstamped" (a locally injected frame) and is accepted as intact.
  std::uint64_t checksum = 0;

  template <typename T>
  const T& As() const {
    return *std::any_cast<std::shared_ptr<const T>>(&payload)->get();
  }

  template <typename T>
  static Message Make(NodeId from, NodeId to, std::string type, T body,
                      std::size_t wire_bytes) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = std::move(type);
    m.payload = std::make_shared<const T>(std::move(body));
    m.wire_bytes = wire_bytes;
    return m;
  }

  // Re-addresses an existing message (payload shared, not copied).
  Message ReaddressedTo(NodeId new_from, NodeId new_to) const {
    Message m = *this;
    m.from = new_from;
    m.to = new_to;
    return m;
  }
};

// FNV/mix checksum over the envelope fields a real frame would carry in its
// header (addresses, discriminator, length). The simulated payload bytes are
// represented by wire_bytes; flipping any checksum bit models a corrupted
// frame that fails verification at the receiver.
inline std::uint64_t EnvelopeChecksum(const Message& msg) noexcept {
  std::uint64_t h = util::Fnv1a64(msg.type);
  h = util::HashCombine(h, msg.from);
  h = util::HashCombine(h, msg.to);
  h = util::HashCombine(h, msg.wire_bytes);
  return h;
}

// True when the frame passes envelope verification. Unstamped frames
// (checksum == 0: direct local injection in unit tests) are accepted.
inline bool IntegrityOk(const Message& msg) noexcept {
  return msg.checksum == 0 || msg.checksum == EnvelopeChecksum(msg);
}

}  // namespace nw::sim
