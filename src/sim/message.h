// Simulated network message. Payloads are carried by shared_ptr-to-const so
// a multicast fan-out of one item shares a single payload object, while the
// wire size used for bandwidth accounting is declared explicitly.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace nw::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::string type;         // protocol discriminator, e.g. "gossip", "fwd"
  std::any payload;         // protocol-defined body (usually shared_ptr<const T>)
  std::size_t wire_bytes = 0;  // size charged against link bandwidth

  template <typename T>
  const T& As() const {
    return *std::any_cast<std::shared_ptr<const T>>(&payload)->get();
  }

  template <typename T>
  static Message Make(NodeId from, NodeId to, std::string type, T body,
                      std::size_t wire_bytes) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = std::move(type);
    m.payload = std::make_shared<const T>(std::move(body));
    m.wire_bytes = wire_bytes;
    return m;
  }

  // Re-addresses an existing message (payload shared, not copied).
  Message ReaddressedTo(NodeId new_from, NodeId new_to) const {
    Message m = *this;
    m.from = new_from;
    m.to = new_to;
    return m;
  }
};

}  // namespace nw::sim
