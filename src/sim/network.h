// Simulated network: connects Nodes through a latency/bandwidth/loss model,
// supports node failure and restart, partitions, and per-node traffic
// accounting. This is the substitution for the Internet testbed the paper
// assumes (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace nw::sim {

class Node;

struct NetworkConfig {
  double base_latency = 0.030;   // one-way seconds between any two nodes
  double jitter_frac = 0.25;     // uniform jitter as a fraction of base
  double loss_prob = 0.0;        // i.i.d. per-message loss
  double uplink_bytes_per_sec = 1e9;  // per-node send serialization rate
  std::size_t per_message_overhead = 64;  // header bytes added to wire size
};

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_dropped = 0;  // loss, dead endpoint, partition, asym
  std::uint64_t messages_corrupted = 0;  // delivered with a flipped checksum
  std::uint64_t messages_duplicated = 0;  // extra copies injected by dup fault
};

class Network {
 public:
  // Registers the network's base latency as the simulator's conservative
  // lookahead: no message between nodes arrives sooner, so shards may
  // advance that far independently (DESIGN.md §9).
  Network(Simulator& sim, NetworkConfig config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node and returns its id. The caller retains ownership and
  // must keep the node alive for the lifetime of the network.
  NodeId AddNode(Node* node);

  // Delivers `msg` to msg.to subject to loss/partition/liveness. Charges
  // the sender's uplink: back-to-back sends serialize at uplink rate.
  void Send(Message msg);

  void Kill(NodeId id);
  void Restart(NodeId id);
  bool IsAlive(NodeId id) const { return alive_[id]; }
  std::uint32_t Incarnation(NodeId id) const { return incarnation_[id]; }

  // Partitions: nodes in different partition groups cannot exchange
  // messages. Default: everyone in group 0.
  void SetPartitionGroup(NodeId id, int group) { partition_[id] = group; }
  // Restores full connectivity: partition groups AND asymmetric cuts.
  void HealPartitions();

  // Asymmetric (one-directional) link cuts: messages from `from` to `to`
  // are dropped while the cut is active; the reverse direction still
  // works. Returns a handle for removal; removing an unknown handle is a
  // no-op (HealPartitions may have cleared it already).
  int AddAsymCut(NodeId from, NodeId to);
  void RemoveAsymCut(int cut_id);

  // Runtime fault knobs (driven by FaultPlan): the ambient loss probability
  // and per-node uplink rates can change mid-run, e.g. a loss burst or a
  // congested access link.
  void SetLossProb(double p) { config_.loss_prob = p; }
  double LossProb() const noexcept { return config_.loss_prob; }
  void SetUplinkRate(NodeId id, double bytes_per_sec) {
    uplink_rate_[id] = bytes_per_sec;
  }
  void ResetUplinkRate(NodeId id) {
    uplink_rate_[id] = config_.uplink_bytes_per_sec;
  }

  // Gray-failure knobs (DESIGN.md §10). All are mutated from plan timers
  // (global-context events, executed at window barriers), so shard-local
  // reads are race-free like the loss/partition state above.
  //
  // Processing slowdown: multiplies every Node::Schedule delay on the
  // node, so a gray node's own timers (gossip rounds, ack timeouts, queue
  // drains) stretch — the node stays alive but falls behind.
  void SetProcSlowdown(NodeId id, double factor) {
    proc_slowdown_[id] = factor;
  }
  void ResetProcSlowdown(NodeId id) { proc_slowdown_[id] = 1.0; }
  double ProcSlowdown(NodeId id) const { return proc_slowdown_[id]; }
  // Inbound processing delay: added to the delivery latency of every
  // message addressed to the node (a saturated receive path).
  void SetProcDelay(NodeId id, double seconds) { proc_delay_[id] = seconds; }
  void ResetProcDelay(NodeId id) { proc_delay_[id] = 0.0; }
  double ProcDelay(NodeId id) const { return proc_delay_[id]; }
  // Corruption: each non-lost frame independently gets one checksum bit
  // flipped with probability p (receivers verify-and-drop).
  void SetCorruptProb(double p) { corrupt_prob_ = p; }
  double CorruptProb() const noexcept { return corrupt_prob_; }
  // Duplicate-and-reorder: each non-lost frame is delivered a second time
  // with probability p, after an extra latency draw.
  void SetDupProb(double p) { dup_prob_ = p; }
  double DupProb() const noexcept { return dup_prob_; }

  std::size_t NodeCount() const noexcept { return nodes_.size(); }
  const TrafficStats& StatsFor(NodeId id) const { return stats_[id]; }
  TrafficStats TotalStats() const;
  void ResetStats();

  // Per-message-type accounting, charged at Send time (headers included):
  // lets protocol layers be costed independently, e.g. the gossip wire
  // bytes of "astro.gossip*" vs the article traffic of "mc.fwd".
  struct TypeStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  const std::map<std::string, TypeStats>& StatsByType() const;
  // Sum over every type whose name starts with `prefix`.
  TypeStats StatsForTypePrefix(const std::string& prefix) const;

  Simulator& simulator() noexcept { return sim_; }
  const NetworkConfig& config() const noexcept { return config_; }

  // ---- observability (optional; null by default) ------------------------
  // The registry/tracer are owned by the caller and must outlive the
  // network. Layers above reach them through node.network().metrics() etc.
  void SetMetrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }
  // Also registers the tracer with the simulator so parallel windows can
  // stage and merge its records deterministically; install before running.
  void SetTracer(obs::EventTracer* tracer) noexcept {
    tracer_ = tracer;
    sim_.SetTracer(tracer);
  }
  obs::EventTracer* tracer() const noexcept { return tracer_; }

 private:
  Simulator& sim_;
  NetworkConfig config_;
  std::vector<Node*> nodes_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> incarnation_;
  std::vector<int> partition_;
  std::vector<double> uplink_rate_;  // bytes/sec, default config value
  std::vector<Time> uplink_free_at_;
  std::vector<double> proc_slowdown_;  // timer stretch factor, default 1.0
  std::vector<double> proc_delay_;     // inbound delay seconds, default 0.0
  double corrupt_prob_ = 0.0;
  double dup_prob_ = 0.0;
  // Active one-directional cuts: handle -> directed pair, plus a per-pair
  // active count so overlapping group cuts compose.
  std::map<int, std::pair<NodeId, NodeId>> asym_cut_by_id_;
  std::map<std::pair<NodeId, NodeId>, int> asym_pair_count_;
  int next_asym_id_ = 0;
  std::vector<TrafficStats> stats_;
  // Per-sender RNG streams for jitter/loss draws: forked per node at
  // AddNode so stochastic outcomes depend only on that sender's own
  // (deterministic) send sequence, never on cross-node interleaving.
  std::vector<util::DeterministicRng> link_rng_;
  // Per-sender type accounting (single-writer under sharded execution),
  // folded into `by_type_merged_` on demand.
  std::vector<std::map<std::string, TypeStats>> by_type_per_node_;
  mutable std::map<std::string, TypeStats> by_type_merged_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  struct MetricIds {
    obs::MetricsRegistry::MetricId sent, bytes_sent, delivered,
        bytes_received, drops_loss, drops_dead, drops_stale, drops_partition,
        drops_asym, corruptions, dup_frames, uplink_backlog, kills, restarts;
  } ids_{};

  bool AsymBlocked(NodeId from, NodeId to) const {
    if (asym_pair_count_.empty()) return false;
    const auto it = asym_pair_count_.find({from, to});
    return it != asym_pair_count_.end() && it->second > 0;
  }
  // Schedules one delivery attempt of `msg` at `arrival` in the receiver's
  // context (Send may call it twice under the dup-reorder fault).
  void DeliverAt(Message msg, Time arrival, std::size_t wire, bool lost,
                 bool corrupt, std::uint32_t flip_bit);
};

// Base class for simulated hosts. Subclasses implement OnMessage and use
// Send/Schedule. Timers scheduled before a Kill are suppressed after it
// (the incarnation check), matching a crashed-and-rebooted process losing
// its in-memory timers.
class Node {
 public:
  virtual ~Node() = default;

  NodeId id() const noexcept { return id_; }
  bool alive() const { return net_ && net_->IsAlive(id_); }

  virtual void OnMessage(const Message& msg) = 0;

  // Called by Network::Restart so a node can reinitialize volatile state.
  virtual void OnRestart() {}

 protected:
  void Send(Message msg) {
    msg.from = id_;
    net_->Send(std::move(msg));
  }

  // Schedules fn after `delay`, suppressed if this node dies or restarts
  // in the meantime. A gray-slow fault stretches the delay: the node's
  // timers (and therefore everything it drives) run late.
  void Schedule(Time delay, std::function<void()> fn) {
    const std::uint32_t inc = net_->Incarnation(id_);
    net_->simulator().After(delay * net_->ProcSlowdown(id_),
                            [this, inc, fn = std::move(fn)]() {
      if (net_->IsAlive(id_) && net_->Incarnation(id_) == inc) fn();
    });
  }

  Time Now() const { return net_->simulator().Now(); }
  util::DeterministicRng& Rng() { return rng_; }
  Network& network() { return *net_; }
  // Null until the node is added to a network; lets instrumentation probe
  // for metrics()/tracer() without asserting attachment.
  Network* attached_network() const noexcept { return net_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = kInvalidNode;
  util::DeterministicRng rng_{0};
};

}  // namespace nw::sim
