#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "obs/trace.h"

namespace nw::sim {

// ---- heap ---------------------------------------------------------------

// Lexicographic event-key order: (time, gen, seq, src). See simulator.h for
// why this order is both a total order and equal to sequential pop order.
static inline bool EventKeyLess(const auto& a, const auto& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.gen != b.gen) return a.gen < b.gen;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.src < b.src;
}

// min-heap: front = smallest key
static constexpr auto kHeapLater = [](const auto& a, const auto& b) noexcept {
  return EventKeyLess(b, a);
};

void Simulator::Queue::push(Event e) {
  v.push_back(std::move(e));
  std::push_heap(v.begin(), v.end(), kHeapLater);
}

Simulator::Event Simulator::Queue::pop() {
  std::pop_heap(v.begin(), v.end(), kHeapLater);
  Event e = std::move(v.back());
  v.pop_back();
  return e;
}

// ---- execution-context TLS ----------------------------------------------

namespace {

// The event currently executing on this thread (if any): supplies the
// shard-local clock, the scheduling context for key assignment, and the
// stamp the tracer stages records under during parallel windows.
struct ExecTls {
  const Simulator* sim = nullptr;
  Time now = 0;
  Time time = 0;         // executing event's time
  std::uint32_t gen = 0;
  std::uint32_t owner = kGlobalContext;
  int shard = -1;        // -1: sequential / barrier execution
  bool active = false;
};

thread_local ExecTls tls_exec;

}  // namespace

// ---- worker pool --------------------------------------------------------

struct Simulator::Pool {
  Simulator& sim;
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  unsigned pending = 0;
  Time hi = 0;
  bool inclusive = false;
  bool stop = false;

  Pool(Simulator& s, unsigned n) : sim(s) {
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers.emplace_back([this, i] { Loop(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(m);
      stop = true;
      ++epoch;
    }
    cv_start.notify_all();
    for (auto& t : workers) t.join();
  }

  void RunWindow(Time h, bool inc) {
    {
      std::lock_guard<std::mutex> lk(m);
      hi = h;
      inclusive = inc;
      pending = static_cast<unsigned>(workers.size());
      ++epoch;
    }
    cv_start.notify_all();
    std::unique_lock<std::mutex> lk(m);
    cv_done.wait(lk, [this] { return pending == 0; });
  }

  void Loop(unsigned shard) {
    std::uint64_t seen = 0;
    for (;;) {
      Time h;
      bool inc;
      {
        std::unique_lock<std::mutex> lk(m);
        cv_start.wait(lk, [&] { return epoch != seen; });
        seen = epoch;
        if (stop) return;
        h = hi;
        inc = inclusive;
      }
      sim.RunShardWindow(shard, h, inc);
      {
        std::lock_guard<std::mutex> lk(m);
        if (--pending == 0) cv_done.notify_all();
      }
    }
  }
};

// ---- simulator ----------------------------------------------------------

Simulator::Simulator(std::uint64_t seed) : rng_(seed), shard_q_(1) {}

Simulator::~Simulator() = default;

Time Simulator::Now() const noexcept {
  if (tls_exec.active && tls_exec.sim == this) return tls_exec.now;
  return now_;
}

std::uint64_t Simulator::NextSeq(std::uint32_t src) {
  if (src == kGlobalContext) return global_seq_++;
  assert(src < ctx_seq_.size());
  return ctx_seq_[src]++;
}

void Simulator::Push(std::uint32_t owner, Time t, std::function<void()> fn) {
  Event e;
  e.time = t;
  e.owner = owner;
  e.fn = std::move(fn);
  if (tls_exec.active && tls_exec.sim == this) {
    assert(t >= tls_exec.now);
    e.src = tls_exec.owner;
    e.gen = (t == tls_exec.time) ? tls_exec.gen + 1 : 0;
  } else {
    assert(t >= now_);
    e.src = kGlobalContext;
    e.gen = 0;
  }
  e.seq = NextSeq(e.src);

  const int target =
      e.owner == kGlobalContext
          ? -1
          : static_cast<int>(e.owner % static_cast<std::uint32_t>(
                                           shard_q_.size()));
  if (tls_exec.active && tls_exec.sim == this && tls_exec.shard >= 0 &&
      target != tls_exec.shard) {
    // Cross-shard (or global) push from inside a parallel window: queue in
    // this shard's outbox; the barrier drains it before the next window.
    // Lookahead guarantees such events land at or after the window end.
    outbox_[static_cast<std::size_t>(tls_exec.shard)].push_back(std::move(e));
    return;
  }
  if (target < 0) {
    global_q_.push(std::move(e));
  } else {
    shard_q_[static_cast<std::size_t>(target)].push(std::move(e));
  }
}

void Simulator::RouteDirect(Event e) {
  if (e.owner == kGlobalContext) {
    global_q_.push(std::move(e));
    return;
  }
  shard_q_[e.owner % shard_q_.size()].push(std::move(e));
}

void Simulator::At(Time t, std::function<void()> fn) {
  const std::uint32_t owner = (tls_exec.active && tls_exec.sim == this)
                                  ? tls_exec.owner
                                  : kGlobalContext;
  Push(owner, t, std::move(fn));
}

void Simulator::After(Time delay, std::function<void()> fn) {
  assert(delay >= 0);
  At(Now() + delay, std::move(fn));
}

void Simulator::AtNode(std::uint32_t owner, Time t, std::function<void()> fn) {
  assert(owner == kGlobalContext || owner < ctx_seq_.size());
  Push(owner, t, std::move(fn));
}

void Simulator::SetThreads(unsigned n) {
  n = std::max(1u, n);
  if (n == threads_) return;
  assert(!(tls_exec.active && tls_exec.sim == this));
  pool_.reset();
  threads_ = n;
  // Re-route pending node events into the new shard layout.
  std::vector<Event> pending;
  for (auto& q : shard_q_) {
    for (auto& e : q.v) pending.push_back(std::move(e));
    q.v.clear();
  }
  shard_q_.clear();
  shard_q_.resize(n);
  outbox_.assign(n, {});
  for (auto& e : pending) RouteDirect(std::move(e));
  if (n > 1) pool_ = std::make_unique<Pool>(*this, n);
}

void Simulator::EnsureContexts(std::uint32_t count) {
  if (count > ctx_seq_.size()) ctx_seq_.resize(count, 0);
}

std::size_t Simulator::PendingEvents() const noexcept {
  std::size_t n = global_q_.size();
  for (const auto& q : shard_q_) n += q.size();
  for (const auto& ob : outbox_) n += ob.size();
  return n;
}

Simulator::Queue* Simulator::MinQueue() {
  Queue* best = global_q_.empty() ? nullptr : &global_q_;
  for (auto& q : shard_q_) {
    if (q.empty()) continue;
    if (best == nullptr || EventKeyLess(q.top(), best->top())) best = &q;
  }
  return best;
}

void Simulator::ExecSequential(Event e) {
  assert(e.time >= now_);
  now_ = e.time;
  const ExecTls saved = tls_exec;
  tls_exec = {this, e.time, e.time, e.gen, e.owner, -1, true};
  e.fn();
  tls_exec = saved;
}

bool Simulator::Step() {
  Queue* best = MinQueue();
  if (best == nullptr) return false;
  ExecSequential(best->pop());
  return true;
}

void Simulator::RunSequential(Time t, bool bounded) {
  for (;;) {
    Queue* best = MinQueue();
    if (best == nullptr) break;
    if (bounded && best->top().time > t) break;
    ExecSequential(best->pop());
  }
}

void Simulator::RunShardWindow(unsigned shard, Time hi, bool inclusive) {
  Queue& q = shard_q_[shard];
  tls_exec = {this, now_, now_, 0, kGlobalContext, static_cast<int>(shard),
              true};
  auto& stamp = obs::internal::TlsExecStamp();
  while (!q.empty()) {
    const Event& top = q.top();
    if (inclusive ? top.time > hi : top.time >= hi) break;
    Event e = q.pop();
    tls_exec.now = e.time;
    tls_exec.time = e.time;
    tls_exec.gen = e.gen;
    tls_exec.owner = e.owner;
    stamp = {e.time, e.gen, e.seq, e.src, static_cast<int>(shard), true};
    e.fn();
    stamp.active = false;
  }
  tls_exec = ExecTls{};
}

void Simulator::RunParallel(Time t, bool bounded) {
  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  for (;;) {
    Time tmin = global_q_.empty() ? kInf : global_q_.top().time;
    const Time tg = tmin;
    for (const auto& q : shard_q_) {
      if (!q.empty()) tmin = std::min(tmin, q.top().time);
    }
    if (tmin == kInf) break;
    if (bounded && tmin > t) break;

    if (tg <= tmin) {
      // A global event is (among the) earliest pending: global events read
      // and write whole-network state, so the instant tg executes fully
      // sequentially, interleaving global and node events in key order
      // exactly as the 1-thread engine would.
      for (;;) {
        Queue* best = MinQueue();
        if (best == nullptr || best->top().time != tg) break;
        ExecSequential(best->pop());
      }
      continue;
    }

    // Conservative window [tmin, hi): every shard advances independently;
    // cross-shard messages cannot arrive before tmin + lookahead.
    Time hi = std::min(tmin + lookahead_, tg);
    bool inclusive = false;
    if (bounded && hi > t) {
      hi = t;
      inclusive = true;  // final window: events at exactly t still fire
    }
    if (tracer_ != nullptr) tracer_->BeginStaging(shard_q_.size());
    pool_->RunWindow(hi, inclusive);
    // Barrier: drain cross-shard outboxes in canonical shard order (the
    // heaps re-sort by key, so drain order never shows), then merge the
    // staged trace records by event key.
    for (auto& ob : outbox_) {
      for (auto& e : ob) RouteDirect(std::move(e));
      ob.clear();
    }
    if (tracer_ != nullptr) tracer_->CommitStaging();
    now_ = std::max(now_, hi);
  }
}

void Simulator::RunCore(Time t, bool bounded) {
  if (threads_ <= 1 || lookahead_ <= 0 || pool_ == nullptr) {
    RunSequential(t, bounded);
  } else {
    RunParallel(t, bounded);
  }
  if (bounded && now_ < t) now_ = t;
}

void Simulator::RunUntil(Time t) { RunCore(t, /*bounded=*/true); }

void Simulator::RunUntilIdle() { RunCore(0, /*bounded=*/false); }

}  // namespace nw::sim
