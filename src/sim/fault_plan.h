// Declarative fault-injection plans (DESIGN.md §5): a schedule of timed
// fault events — crashes, restarts, partitions, heals, loss bursts, slow
// uplinks — applied to a sim::Network through simulator timers.
//
// Plans serialize to a one-line text format so that any failing random
// run can be committed verbatim as a regression scenario and replayed:
//
//   crash@5 node=3; restart@12 node=3; partition@20 groups=0,1|2,3;
//   heal@30; loss@35..45 p=0.3; slow@50..55 node=2 rate=1e5
//
// Gray-failure kinds (DESIGN.md §10) use the same grammar:
//
//   gray@10..40 node=3 factor=8 delay=0.05   (slow-but-alive node)
//   asym@20..30 groups=0,1|2,3               (one-way cut: 0,1 -/-> 2,3)
//   corrupt@35..45 p=0.05; dup@50..60 p=0.1  (bit flips / dup+reorder)
//
// Times are seconds relative to the instant the plan is applied. A seeded
// random generator produces constrained plans (bounded concurrent deaths,
// a fault-free quiescence tail) for torture-style tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace nw::sim {

struct FaultEvent {
  enum class Kind {
    kCrash, kRestart, kPartition, kHeal, kLossBurst, kSlowUplink,
    kGraySlow,       // slow-but-alive: timer stretch + inbound delay
    kAsymPartition,  // one-directional link cut between two groups
    kCorruptBurst,   // per-frame checksum bit flips with probability p
    kDupReorder,     // per-frame duplicate-and-reorder with probability p
  };

  Kind kind = Kind::kHeal;
  Time at = 0;     // start time (relative to plan application)
  Time until = 0;  // end time for windowed events (loss burst, slow uplink)
  NodeId node = kInvalidNode;  // crash/restart target; kInvalidNode on
                               // a slow-uplink/gray event means "all nodes"
  double value = 0;   // loss/corrupt/dup probability, uplink rate, or
                      // gray timer-stretch factor
  double value2 = 0;  // gray inbound processing delay (seconds)
  // Partition groups: listed nodes land in groups 1, 2, ...; nodes not
  // listed stay in group 0. For kAsymPartition: exactly two groups, and
  // the cut blocks messages from the first group to the second.
  std::vector<std::vector<NodeId>> groups;

  bool operator==(const FaultEvent& other) const;
};

class FaultPlan {
 public:
  // ---- builders (fluent, chronological order is not required) ----------
  FaultPlan& Crash(Time t, NodeId node);
  FaultPlan& Restart(Time t, NodeId node);
  FaultPlan& Partition(Time t, std::vector<std::vector<NodeId>> groups);
  FaultPlan& Heal(Time t);
  FaultPlan& LossBurst(Time t0, Time t1, double p);
  // node == kInvalidNode throttles every node's uplink.
  FaultPlan& SlowUplink(Time t0, Time t1, NodeId node, double bytes_per_sec);
  // Gray-slow window: the node's timers run `factor`x late and inbound
  // messages take `delay` extra seconds; node == kInvalidNode hits all.
  FaultPlan& GraySlow(Time t0, Time t1, NodeId node, double factor,
                      double delay = 0);
  // One-way cut: messages from any node in `from` to any node in `to` are
  // dropped during the window (the reverse direction keeps working).
  FaultPlan& AsymPartition(Time t0, Time t1, std::vector<NodeId> from,
                           std::vector<NodeId> to);
  FaultPlan& CorruptBurst(Time t0, Time t1, double p);
  FaultPlan& DupReorder(Time t0, Time t1, double p);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  // Time of the last scheduled action (the `until` edge of windowed
  // events). Tests run at least this long plus a recovery tail.
  Time EndTime() const;

  // Largest node id referenced, or kInvalidNode when none is.
  NodeId MaxNode() const;

  // ---- text form -------------------------------------------------------
  // One line, events joined by "; ". Parse(ToString()) reproduces the
  // plan exactly (operator==).
  std::string ToString() const;
  // Returns nullopt on any syntax error. Accepts the empty string (empty
  // plan) and arbitrary spacing around separators.
  static std::optional<FaultPlan> Parse(const std::string& text);

  bool operator==(const FaultPlan& other) const {
    return events_ == other.events_;
  }

  // ---- application -----------------------------------------------------
  // Schedules every event on net.simulator() at (base + event time).
  // Loss bursts and slow uplinks restore the rates captured from the
  // network config when the window closes. The plan object itself is not
  // needed afterwards.
  void ApplyTo(Network& net, Time base) const;
  // Convenience: base = net.simulator().Now().
  void ApplyTo(Network& net) const;

  // ---- random generation ----------------------------------------------
  struct RandomOptions {
    Time horizon = 120;        // plan covers [0, horizon)
    Time min_quiescence = 30;  // fault-free tail: every node restarted,
                               // every partition healed, every burst over
                               // by horizon - min_quiescence
    Time min_event_gap = 0.5;  // minimum spacing between event starts
    std::size_t max_events = 24;
    std::size_t max_dead = 2;  // never kill > f nodes at once
    double max_loss = 0.3;     // loss-burst probability cap
    double slow_rate = 1e5;    // throttled uplink bytes/sec
    bool partitions = true;
    bool loss_bursts = true;
    bool slow_uplinks = false;
    // Gray-failure cocktail ingredients (all default-off so existing
    // callers keep generating identical plans for a given seed).
    bool gray_slow = false;
    bool asym_partitions = false;
    bool corrupt_bursts = false;
    bool dup_reorder = false;
    double gray_factor = 8.0;   // timer-stretch factor for gray nodes
    double gray_delay = 0.05;   // inbound delay seconds for gray nodes
    double max_corrupt = 0.2;   // corrupt-burst probability cap
    double max_dup = 0.2;       // dup-reorder probability cap
  };

  // Generates a constrained random plan over `victims` (the node ids
  // eligible for crashes / partitions / slow uplinks). Deterministic in
  // (seed, victims, options). Generated times are quantized to 0.1 s so
  // the text form stays short and round-trips exactly.
  static FaultPlan Random(std::uint64_t seed, std::vector<NodeId> victims,
                          const RandomOptions& options);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace nw::sim
