// Deterministic discrete-event simulator core: a clock and an event queue.
//
// All protocol layers run on top of this. Events scheduled at equal times
// fire in scheduling order (a monotone sequence number breaks ties), which
// together with the seeded RNG makes whole-system runs exactly replayable.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace nw::sim {

using Time = double;  // seconds of simulated time

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const noexcept { return now_; }

  // Schedules fn at absolute time t (>= Now()).
  void At(Time t, std::function<void()> fn) {
    assert(t >= now_);
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  // Schedules fn after a relative delay (>= 0).
  void After(Time delay, std::function<void()> fn) {
    assert(delay >= 0);
    At(now_ + delay, std::move(fn));
  }

  // Runs events until the queue empties or the clock would pass `t`;
  // afterwards Now() == t unless the queue drained later than t.
  void RunUntil(Time t) {
    while (!queue_.empty() && queue_.top().time <= t) {
      Step();
    }
    if (now_ < t) now_ = t;
  }

  // Runs until no events remain. Only safe when no recurring timers exist.
  void RunUntilIdle() {
    while (!queue_.empty()) Step();
  }

  // Executes the single earliest event. Returns false if none remain.
  bool Step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    return true;
  }

  std::size_t PendingEvents() const noexcept { return queue_.size(); }

  util::DeterministicRng& Rng() noexcept { return rng_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  util::DeterministicRng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace nw::sim
