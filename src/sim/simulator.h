// Deterministic discrete-event simulator core: a clock and an event queue,
// optionally sharded across worker threads (DESIGN.md §9).
//
// Every event carries an engine-independent ordering key
// (time, gen, seq, src):
//   time  simulated seconds of the event
//   src   the execution context that *scheduled* it: the node whose event
//         was running at scheduling time, or kGlobalContext for harness /
//         fault-plan / setup code
//   seq   a per-src monotone counter, advanced only by that context's own
//         (deterministic, single-threaded) execution
//   gen   same-time generation: events scheduled at exactly the executing
//         event's time sort one generation later, so the sequential pop
//         order of the heap equals the global lexicographic key order
//
// Because the key never depends on cross-context interleaving, a run can be
// partitioned into per-node shards advanced in conservative time windows
// (lookahead = minimum cross-shard message latency) and still execute —
// and trace — every event in exactly the order the 1-thread engine would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace nw::obs {
class EventTracer;
}  // namespace nw::obs

namespace nw::sim {

using Time = double;  // seconds of simulated time

// Execution-context id used for events scheduled outside any node's event
// (test harness, fault plans, workload generators, setup code).
inline constexpr std::uint32_t kGlobalContext = 0xffffffffu;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time. Inside an event this is the event's time (in
  // parallel windows each shard carries its own clock).
  Time Now() const noexcept;

  // Schedules fn at absolute time t (>= Now()). The event executes in the
  // scheduling context's shard: a node's timer stays with that node, and
  // harness code schedules global events that act as window barriers.
  void At(Time t, std::function<void()> fn);

  // Schedules fn after a relative delay (>= 0).
  void After(Time delay, std::function<void()> fn);

  // Schedules fn at absolute time t to execute in `owner`'s context/shard.
  // Used by the network for deliveries addressed to `owner`; requires
  // t >= Now() + Lookahead() when `owner` lives in another shard (the
  // conservative-window safety condition — network latency provides it).
  void AtNode(std::uint32_t owner, Time t, std::function<void()> fn);

  // ---- parallel engine configuration ------------------------------------
  // Number of worker shards (1 = classic sequential engine). May be called
  // between runs; pending events are re-routed. Results are bit-identical
  // for any thread count.
  void SetThreads(unsigned n);
  unsigned Threads() const noexcept { return threads_; }

  // Minimum cross-shard message latency (the conservative lookahead).
  // Installed by the Network from its base latency; a lookahead of 0
  // disables parallel execution (the engine falls back to sequential).
  void SetLookahead(Time w) noexcept { lookahead_ = w; }
  Time Lookahead() const noexcept { return lookahead_; }

  // Pre-sizes the per-context sequence counters; every node id used with
  // AtNode or as a scheduling context must be registered (Network::AddNode
  // does this). Setup-time only.
  void EnsureContexts(std::uint32_t count);

  // Tracer whose staged records are merged at window barriers. Installed by
  // Network::SetTracer; must happen before the run starts.
  void SetTracer(obs::EventTracer* tracer) noexcept { tracer_ = tracer; }

  // ---- run loop ----------------------------------------------------------
  // Runs events until the queue empties or the clock would pass `t`
  // (events at exactly t fire); afterwards Now() == t unless the queue
  // drained later than t.
  void RunUntil(Time t);

  // Runs until no events remain. Only safe when no recurring timers exist.
  void RunUntilIdle();

  // Executes the single earliest event (sequentially, regardless of thread
  // configuration). Returns false if none remain.
  bool Step();

  std::size_t PendingEvents() const noexcept;

  util::DeterministicRng& Rng() noexcept { return rng_; }

 private:
  struct Event {
    Time time = 0;
    std::uint32_t gen = 0;
    std::uint64_t seq = 0;
    std::uint32_t src = kGlobalContext;
    std::uint32_t owner = kGlobalContext;
    std::function<void()> fn;
  };
  // Binary min-heap by (time, gen, seq, src); pop moves, never copies.
  struct Queue {
    std::vector<Event> v;
    void push(Event e);
    Event pop();
    const Event& top() const noexcept { return v.front(); }
    bool empty() const noexcept { return v.empty(); }
    std::size_t size() const noexcept { return v.size(); }
  };
  struct Pool;

  std::uint64_t NextSeq(std::uint32_t src);
  void Push(std::uint32_t owner, Time t, std::function<void()> fn);
  void RouteDirect(Event e);
  Queue* MinQueue();
  void ExecSequential(Event e);
  void RunShardWindow(unsigned shard, Time hi, bool inclusive);
  void RunSequential(Time t, bool bounded);
  void RunParallel(Time t, bool bounded);
  void RunCore(Time t, bool bounded);

  Time now_ = 0;
  util::DeterministicRng rng_;
  std::uint64_t global_seq_ = 0;
  std::vector<std::uint64_t> ctx_seq_;  // per-node scheduling counters

  unsigned threads_ = 1;
  Time lookahead_ = 0;
  Queue global_q_;
  std::vector<Queue> shard_q_;               // size == max(threads_, 1)
  std::vector<std::vector<Event>> outbox_;   // per-producing-shard, drained
                                             // at window barriers
  obs::EventTracer* tracer_ = nullptr;
  std::unique_ptr<Pool> pool_;

  friend struct Pool;
};

}  // namespace nw::sim
