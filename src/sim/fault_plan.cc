#include "sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string_view>

#include "util/rng.h"

namespace nw::sim {

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) next = s.size();
    parts.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

bool ParseDouble(std::string_view s, double* out) {
  const std::string copy(Trim(s));
  if (copy.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

bool ParseNode(std::string_view s, NodeId* out) {
  double v = 0;
  if (!ParseDouble(s, &v)) return false;
  if (v < 0 || v != std::floor(v) || v > double(kInvalidNode)) return false;
  *out = NodeId(v);
  return true;
}

}  // namespace

bool FaultEvent::operator==(const FaultEvent& other) const {
  return kind == other.kind && at == other.at && until == other.until &&
         node == other.node && value == other.value &&
         value2 == other.value2 && groups == other.groups;
}

FaultPlan& FaultPlan::Crash(Time t, NodeId node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kCrash;
  ev.at = t;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Restart(Time t, NodeId node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kRestart;
  ev.at = t;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Partition(Time t,
                                std::vector<std::vector<NodeId>> groups) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kPartition;
  ev.at = t;
  ev.groups = std::move(groups);
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Heal(Time t) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kHeal;
  ev.at = t;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::LossBurst(Time t0, Time t1, double p) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kLossBurst;
  ev.at = t0;
  ev.until = t1;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::SlowUplink(Time t0, Time t1, NodeId node,
                                 double bytes_per_sec) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kSlowUplink;
  ev.at = t0;
  ev.until = t1;
  ev.node = node;
  ev.value = bytes_per_sec;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::GraySlow(Time t0, Time t1, NodeId node, double factor,
                               double delay) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kGraySlow;
  ev.at = t0;
  ev.until = t1;
  ev.node = node;
  ev.value = factor;
  ev.value2 = delay;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::AsymPartition(Time t0, Time t1, std::vector<NodeId> from,
                                    std::vector<NodeId> to) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kAsymPartition;
  ev.at = t0;
  ev.until = t1;
  ev.groups.push_back(std::move(from));
  ev.groups.push_back(std::move(to));
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::CorruptBurst(Time t0, Time t1, double p) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kCorruptBurst;
  ev.at = t0;
  ev.until = t1;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::DupReorder(Time t0, Time t1, double p) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kDupReorder;
  ev.at = t0;
  ev.until = t1;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

Time FaultPlan::EndTime() const {
  Time end = 0;
  for (const FaultEvent& ev : events_) {
    end = std::max(end, std::max(ev.at, ev.until));
  }
  return end;
}

NodeId FaultPlan::MaxNode() const {
  NodeId max = kInvalidNode;
  auto consider = [&max](NodeId n) {
    if (n == kInvalidNode) return;
    if (max == kInvalidNode || n > max) max = n;
  };
  for (const FaultEvent& ev : events_) {
    consider(ev.node);
    for (const auto& group : ev.groups) {
      for (NodeId n : group) consider(n);
    }
  }
  return max;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out += "; ";
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        out += "crash@" + Num(ev.at) + " node=" + std::to_string(ev.node);
        break;
      case FaultEvent::Kind::kRestart:
        out += "restart@" + Num(ev.at) + " node=" + std::to_string(ev.node);
        break;
      case FaultEvent::Kind::kPartition: {
        out += "partition@" + Num(ev.at) + " groups=";
        for (std::size_t g = 0; g < ev.groups.size(); ++g) {
          if (g) out += "|";
          for (std::size_t i = 0; i < ev.groups[g].size(); ++i) {
            if (i) out += ",";
            out += std::to_string(ev.groups[g][i]);
          }
        }
        break;
      }
      case FaultEvent::Kind::kHeal:
        out += "heal@" + Num(ev.at);
        break;
      case FaultEvent::Kind::kLossBurst:
        out += "loss@" + Num(ev.at) + ".." + Num(ev.until) +
               " p=" + Num(ev.value);
        break;
      case FaultEvent::Kind::kSlowUplink:
        out += "slow@" + Num(ev.at) + ".." + Num(ev.until);
        if (ev.node != kInvalidNode) {
          out += " node=" + std::to_string(ev.node);
        }
        out += " rate=" + Num(ev.value);
        break;
      case FaultEvent::Kind::kGraySlow:
        out += "gray@" + Num(ev.at) + ".." + Num(ev.until);
        if (ev.node != kInvalidNode) {
          out += " node=" + std::to_string(ev.node);
        }
        out += " factor=" + Num(ev.value);
        if (ev.value2 != 0) out += " delay=" + Num(ev.value2);
        break;
      case FaultEvent::Kind::kAsymPartition: {
        out += "asym@" + Num(ev.at) + ".." + Num(ev.until) + " groups=";
        for (std::size_t g = 0; g < ev.groups.size(); ++g) {
          if (g) out += "|";
          for (std::size_t i = 0; i < ev.groups[g].size(); ++i) {
            if (i) out += ",";
            out += std::to_string(ev.groups[g][i]);
          }
        }
        break;
      }
      case FaultEvent::Kind::kCorruptBurst:
        out += "corrupt@" + Num(ev.at) + ".." + Num(ev.until) +
               " p=" + Num(ev.value);
        break;
      case FaultEvent::Kind::kDupReorder:
        out += "dup@" + Num(ev.at) + ".." + Num(ev.until) +
               " p=" + Num(ev.value);
        break;
    }
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  for (std::string_view raw : Split(text, ';')) {
    const std::string_view entry = Trim(raw);
    if (entry.empty()) continue;

    // "<kind>@<time>[..<time>] [key=value ...]"
    const std::size_t at_pos = entry.find('@');
    if (at_pos == std::string_view::npos) return std::nullopt;
    const std::string_view kind = entry.substr(0, at_pos);
    std::string_view rest = entry.substr(at_pos + 1);

    std::string_view time_part = rest;
    std::string_view args_part;
    const std::size_t space = rest.find(' ');
    if (space != std::string_view::npos) {
      time_part = rest.substr(0, space);
      args_part = rest.substr(space + 1);
    }

    FaultEvent ev;
    const std::size_t dots = time_part.find("..");
    if (dots != std::string_view::npos) {
      if (!ParseDouble(time_part.substr(0, dots), &ev.at) ||
          !ParseDouble(time_part.substr(dots + 2), &ev.until)) {
        return std::nullopt;
      }
      if (ev.until < ev.at) return std::nullopt;
    } else {
      if (!ParseDouble(time_part, &ev.at)) return std::nullopt;
    }
    if (ev.at < 0) return std::nullopt;

    // key=value arguments.
    bool have_node = false, have_p = false, have_rate = false,
         have_groups = false, have_factor = false;
    for (std::string_view tok : Split(args_part, ' ')) {
      tok = Trim(tok);
      if (tok.empty()) continue;
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) return std::nullopt;
      const std::string_view key = tok.substr(0, eq);
      const std::string_view val = tok.substr(eq + 1);
      if (key == "node") {
        if (!ParseNode(val, &ev.node)) return std::nullopt;
        have_node = true;
      } else if (key == "p" || key == "rate" || key == "factor") {
        if (!ParseDouble(val, &ev.value)) return std::nullopt;
        (key == "p" ? have_p : key == "rate" ? have_rate : have_factor) = true;
      } else if (key == "delay") {
        if (!ParseDouble(val, &ev.value2) || ev.value2 < 0) {
          return std::nullopt;
        }
      } else if (key == "groups") {
        for (std::string_view group : Split(val, '|')) {
          std::vector<NodeId> nodes;
          for (std::string_view n : Split(group, ',')) {
            NodeId id = kInvalidNode;
            if (!ParseNode(n, &id)) return std::nullopt;
            nodes.push_back(id);
          }
          if (nodes.empty()) return std::nullopt;
          ev.groups.push_back(std::move(nodes));
        }
        have_groups = !ev.groups.empty();
      } else {
        return std::nullopt;
      }
    }

    if (kind == "crash" || kind == "restart") {
      if (!have_node || dots != std::string_view::npos) return std::nullopt;
      ev.kind = kind == "crash" ? FaultEvent::Kind::kCrash
                                : FaultEvent::Kind::kRestart;
    } else if (kind == "partition") {
      if (!have_groups) return std::nullopt;
      ev.kind = FaultEvent::Kind::kPartition;
    } else if (kind == "heal") {
      ev.kind = FaultEvent::Kind::kHeal;
    } else if (kind == "loss") {
      if (!have_p || dots == std::string_view::npos) return std::nullopt;
      if (ev.value < 0 || ev.value > 1) return std::nullopt;
      ev.kind = FaultEvent::Kind::kLossBurst;
    } else if (kind == "slow") {
      if (!have_rate || dots == std::string_view::npos || ev.value <= 0) {
        return std::nullopt;
      }
      ev.kind = FaultEvent::Kind::kSlowUplink;
    } else if (kind == "gray") {
      if (!have_factor || dots == std::string_view::npos || ev.value < 1) {
        return std::nullopt;
      }
      ev.kind = FaultEvent::Kind::kGraySlow;
    } else if (kind == "asym") {
      if (!have_groups || ev.groups.size() != 2 ||
          dots == std::string_view::npos) {
        return std::nullopt;
      }
      ev.kind = FaultEvent::Kind::kAsymPartition;
    } else if (kind == "corrupt" || kind == "dup") {
      if (!have_p || dots == std::string_view::npos) return std::nullopt;
      if (ev.value < 0 || ev.value > 1) return std::nullopt;
      ev.kind = kind == "corrupt" ? FaultEvent::Kind::kCorruptBurst
                                  : FaultEvent::Kind::kDupReorder;
    } else {
      return std::nullopt;
    }
    plan.events_.push_back(std::move(ev));
  }
  return plan;
}

void FaultPlan::ApplyTo(Network& net, Time base) const {
  Simulator& sim = net.simulator();
  // Rates to restore when a fault window closes, captured now so a plan
  // applied to a tuned network puts things back the way it found them.
  const double base_loss = net.config().loss_prob;
  const double base_corrupt = net.CorruptProb();
  const double base_dup = net.DupProb();
  // Plan-driven network reconfiguration; Kill/Restart trace on their own.
  auto trace = [&net](const char* type, NodeId node, std::uint64_t a = 0,
                      std::uint64_t b = 0) {
    if (net.tracer() != nullptr) {
      net.tracer()->Record(net.simulator().Now(),
                           node == kInvalidNode ? 0 : node,
                           obs::EventCategory::kFault, type, a, b);
    }
  };
  for (const FaultEvent& ev : events_) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        sim.At(base + ev.at, [&net, node = ev.node] { net.Kill(node); });
        break;
      case FaultEvent::Kind::kRestart:
        sim.At(base + ev.at, [&net, node = ev.node] { net.Restart(node); });
        break;
      case FaultEvent::Kind::kPartition:
        sim.At(base + ev.at, [&net, trace, groups = ev.groups] {
          for (std::size_t g = 0; g < groups.size(); ++g) {
            for (NodeId n : groups[g]) {
              net.SetPartitionGroup(n, int(g) + 1);
              trace("fault.partition", n, g + 1);
            }
          }
        });
        break;
      case FaultEvent::Kind::kHeal:
        sim.At(base + ev.at, [&net, trace] {
          net.HealPartitions();
          trace("fault.heal", kInvalidNode);
        });
        break;
      case FaultEvent::Kind::kLossBurst:
        sim.At(base + ev.at, [&net, trace, p = ev.value] {
          net.SetLossProb(p);
          trace("fault.loss_begin", kInvalidNode,
                std::uint64_t(p * 1e6) /*ppm*/);
        });
        sim.At(base + ev.until, [&net, trace, base_loss] {
          net.SetLossProb(base_loss);
          trace("fault.loss_end", kInvalidNode,
                std::uint64_t(base_loss * 1e6));
        });
        break;
      case FaultEvent::Kind::kSlowUplink: {
        auto each = [&net](NodeId node, auto&& fn) {
          if (node != kInvalidNode) {
            fn(node);
          } else {
            for (NodeId n = 0; n < NodeId(net.NodeCount()); ++n) fn(n);
          }
        };
        sim.At(base + ev.at, [&net, each, trace, node = ev.node,
                              rate = ev.value] {
          each(node, [&net, rate](NodeId n) { net.SetUplinkRate(n, rate); });
          trace("fault.slow_begin", node, std::uint64_t(rate));
        });
        sim.At(base + ev.until, [&net, each, trace, node = ev.node] {
          each(node, [&net](NodeId n) { net.ResetUplinkRate(n); });
          trace("fault.slow_end", node);
        });
        break;
      }
      case FaultEvent::Kind::kGraySlow: {
        auto each = [&net](NodeId node, auto&& fn) {
          if (node != kInvalidNode) {
            fn(node);
          } else {
            for (NodeId n = 0; n < NodeId(net.NodeCount()); ++n) fn(n);
          }
        };
        sim.At(base + ev.at, [&net, each, trace, node = ev.node,
                              factor = ev.value, delay = ev.value2] {
          each(node, [&net, factor, delay](NodeId n) {
            net.SetProcSlowdown(n, factor);
            if (delay > 0) net.SetProcDelay(n, delay);
          });
          trace("fault.gray_begin", node, std::uint64_t(factor),
                std::uint64_t(delay * 1e6) /*us*/);
        });
        sim.At(base + ev.until, [&net, each, trace, node = ev.node] {
          each(node, [&net](NodeId n) {
            net.ResetProcSlowdown(n);
            net.ResetProcDelay(n);
          });
          trace("fault.gray_end", node);
        });
        break;
      }
      case FaultEvent::Kind::kAsymPartition: {
        // The begin timer records the cut handles for the end timer; a
        // heal@ in between clears the cuts and removal becomes a no-op.
        auto handles = std::make_shared<std::vector<int>>();
        sim.At(base + ev.at, [&net, trace, handles, groups = ev.groups] {
          for (NodeId a : groups[0]) {
            for (NodeId b : groups[1]) {
              handles->push_back(net.AddAsymCut(a, b));
            }
          }
          trace("fault.asym_begin", kInvalidNode, groups[0].size(),
                groups[1].size());
        });
        sim.At(base + ev.until, [&net, trace, handles] {
          for (int h : *handles) net.RemoveAsymCut(h);
          handles->clear();
          trace("fault.asym_end", kInvalidNode);
        });
        break;
      }
      case FaultEvent::Kind::kCorruptBurst:
        sim.At(base + ev.at, [&net, trace, p = ev.value] {
          net.SetCorruptProb(p);
          trace("fault.corrupt_begin", kInvalidNode,
                std::uint64_t(p * 1e6) /*ppm*/);
        });
        sim.At(base + ev.until, [&net, trace, base_corrupt] {
          net.SetCorruptProb(base_corrupt);
          trace("fault.corrupt_end", kInvalidNode,
                std::uint64_t(base_corrupt * 1e6));
        });
        break;
      case FaultEvent::Kind::kDupReorder:
        sim.At(base + ev.at, [&net, trace, p = ev.value] {
          net.SetDupProb(p);
          trace("fault.dup_begin", kInvalidNode,
                std::uint64_t(p * 1e6) /*ppm*/);
        });
        sim.At(base + ev.until, [&net, trace, base_dup] {
          net.SetDupProb(base_dup);
          trace("fault.dup_end", kInvalidNode, std::uint64_t(base_dup * 1e6));
        });
        break;
    }
  }
}

void FaultPlan::ApplyTo(Network& net) const {
  ApplyTo(net, net.simulator().Now());
}

FaultPlan FaultPlan::Random(std::uint64_t seed, std::vector<NodeId> victims,
                            const RandomOptions& options) {
  FaultPlan plan;
  if (victims.empty()) return plan;
  util::DeterministicRng rng(seed ^ 0xFA01A7ull);
  const Time chaos_end = options.horizon - options.min_quiescence;
  auto q = [](double t) { return std::round(t * 10.0) / 10.0; };

  std::set<NodeId> dead;
  bool partitioned = false;
  Time busy_until = 0;  // end of the latest loss burst / slow window
  Time t = q(options.min_event_gap + rng.NextDouble() * 2.0);
  std::size_t emitted = 0;

  enum Action {
    kCrash, kRestart, kPartition, kHeal, kLoss, kSlow,
    kGray, kAsym, kCorrupt, kDup,
  };
  while (t < chaos_end && emitted < options.max_events) {
    std::vector<Action> candidates;
    if (dead.size() < options.max_dead && dead.size() < victims.size()) {
      candidates.push_back(kCrash);
    }
    if (!dead.empty()) candidates.push_back(kRestart);
    if (options.partitions && !partitioned && victims.size() >= 2) {
      candidates.push_back(kPartition);
    }
    if (partitioned) candidates.push_back(kHeal);
    if (options.loss_bursts && t >= busy_until && t + 2.0 <= chaos_end) {
      candidates.push_back(kLoss);
    }
    if (options.slow_uplinks && t >= busy_until && t + 2.0 <= chaos_end) {
      candidates.push_back(kSlow);
    }
    // Gray-failure windows may overlap crashes/partitions (that is the
    // point of a cocktail) but reuse the busy gate for the frame-level
    // probability faults so corrupt and dup bursts never stack on a loss
    // burst (the restore timers would fight over the shared knobs).
    if (options.gray_slow && t + 2.0 <= chaos_end) {
      candidates.push_back(kGray);
    }
    if (options.asym_partitions && victims.size() >= 2 &&
        t + 2.0 <= chaos_end) {
      candidates.push_back(kAsym);
    }
    if (options.corrupt_bursts && t >= busy_until && t + 2.0 <= chaos_end) {
      candidates.push_back(kCorrupt);
    }
    if (options.dup_reorder && t >= busy_until && t + 2.0 <= chaos_end) {
      candidates.push_back(kDup);
    }
    if (candidates.empty()) break;

    switch (candidates[rng.NextBelow(candidates.size())]) {
      case kCrash: {
        NodeId victim;
        do {
          victim = victims[rng.NextBelow(victims.size())];
        } while (dead.contains(victim));
        plan.Crash(t, victim);
        dead.insert(victim);
        break;
      }
      case kRestart: {
        std::vector<NodeId> pool(dead.begin(), dead.end());
        const NodeId victim = pool[rng.NextBelow(pool.size())];
        plan.Restart(t, victim);
        dead.erase(victim);
        break;
      }
      case kPartition: {
        std::vector<NodeId> shuffled = victims;
        rng.Shuffle(shuffled);
        const std::size_t cut =
            1 + std::size_t(rng.NextBelow(shuffled.size() - 1));
        plan.Partition(
            t, {std::vector<NodeId>(shuffled.begin(), shuffled.begin() + long(cut))});
        partitioned = true;
        break;
      }
      case kHeal:
        plan.Heal(t);
        partitioned = false;
        break;
      case kLoss: {
        const Time dur =
            q(std::min(2.0 + rng.NextDouble() * 8.0, chaos_end - t));
        const double p = 0.05 + rng.NextDouble() * (options.max_loss - 0.05);
        plan.LossBurst(t, q(t + dur), std::round(p * 100.0) / 100.0);
        busy_until = t + dur;
        break;
      }
      case kSlow: {
        const Time dur =
            q(std::min(2.0 + rng.NextDouble() * 8.0, chaos_end - t));
        plan.SlowUplink(t, q(t + dur), victims[rng.NextBelow(victims.size())],
                        options.slow_rate);
        busy_until = t + dur;
        break;
      }
      case kGray: {
        const Time dur =
            q(std::min(4.0 + rng.NextDouble() * 12.0, chaos_end - t));
        plan.GraySlow(t, q(t + dur), victims[rng.NextBelow(victims.size())],
                      options.gray_factor, options.gray_delay);
        break;
      }
      case kAsym: {
        std::vector<NodeId> shuffled = victims;
        rng.Shuffle(shuffled);
        const std::size_t cut =
            1 + std::size_t(rng.NextBelow(shuffled.size() - 1));
        const Time dur =
            q(std::min(2.0 + rng.NextDouble() * 8.0, chaos_end - t));
        plan.AsymPartition(
            t, q(t + dur),
            std::vector<NodeId>(shuffled.begin(), shuffled.begin() + long(cut)),
            std::vector<NodeId>(shuffled.begin() + long(cut), shuffled.end()));
        break;
      }
      case kCorrupt: {
        const Time dur =
            q(std::min(2.0 + rng.NextDouble() * 8.0, chaos_end - t));
        const double p = 0.01 + rng.NextDouble() * (options.max_corrupt - 0.01);
        plan.CorruptBurst(t, q(t + dur), std::round(p * 100.0) / 100.0);
        busy_until = t + dur;
        break;
      }
      case kDup: {
        const Time dur =
            q(std::min(2.0 + rng.NextDouble() * 8.0, chaos_end - t));
        const double p = 0.01 + rng.NextDouble() * (options.max_dup - 0.01);
        plan.DupReorder(t, q(t + dur), std::round(p * 100.0) / 100.0);
        busy_until = t + dur;
        break;
      }
    }
    ++emitted;
    t = q(t + options.min_event_gap + rng.NextExponential(2.0));
  }

  // Recovery tail: heal everything, restart everyone, then quiescence.
  // Anchored at chaos_end (not t, which can overshoot it by the last
  // exponential gap) so the tail never eats into min_quiescence.
  Time r = q(chaos_end);
  if (partitioned) plan.Heal(r);
  for (NodeId n : dead) {
    r = q(r + 0.2);
    plan.Restart(r, n);
  }
  return plan;
}

}  // namespace nw::sim
