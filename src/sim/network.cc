#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace nw::sim {

NodeId Network::AddNode(Node* node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  alive_.push_back(true);
  incarnation_.push_back(0);
  partition_.push_back(0);
  uplink_rate_.push_back(config_.uplink_bytes_per_sec);
  uplink_free_at_.push_back(0.0);
  stats_.emplace_back();
  node->net_ = this;
  node->id_ = id;
  node->rng_ = sim_.Rng().Fork(0x4e6f6465u /*'Node'*/ + id);
  return id;
}

void Network::Send(Message msg) {
  assert(msg.from < nodes_.size());
  assert(msg.to < nodes_.size());
  const NodeId from = msg.from;
  const NodeId to = msg.to;

  const std::size_t wire = msg.wire_bytes + config_.per_message_overhead;
  stats_[from].messages_sent += 1;
  stats_[from].bytes_sent += wire;

  if (!alive_[from]) {
    stats_[from].messages_dropped += 1;
    return;
  }

  // Serialize on the sender's uplink.
  const Time start = std::max(sim_.Now(), uplink_free_at_[from]);
  const Time departure = start + double(wire) / uplink_rate_[from];
  uplink_free_at_[from] = departure;

  const double jitter =
      config_.base_latency * config_.jitter_frac * sim_.Rng().NextDouble();
  const Time arrival = departure + config_.base_latency + jitter;

  const bool lost = sim_.Rng().NextBool(config_.loss_prob);
  const std::uint32_t to_inc = incarnation_[to];

  sim_.At(arrival, [this, msg = std::move(msg), wire, lost, to, from,
                    to_inc]() mutable {
    if (lost || !alive_[to] || incarnation_[to] != to_inc ||
        partition_[from] != partition_[to]) {
      stats_[to].messages_dropped += 1;
      return;
    }
    stats_[to].messages_received += 1;
    stats_[to].bytes_received += wire;
    nodes_[to]->OnMessage(msg);
  });
}

void Network::Kill(NodeId id) {
  assert(id < nodes_.size());
  if (!alive_[id]) return;
  alive_[id] = false;
  incarnation_[id] += 1;  // invalidates in-flight deliveries and timers
  util::LogInfo("sim: node %u killed at t=%.2f", id, sim_.Now());
}

void Network::Restart(NodeId id) {
  assert(id < nodes_.size());
  if (alive_[id]) return;
  alive_[id] = true;
  incarnation_[id] += 1;
  uplink_free_at_[id] = sim_.Now();
  nodes_[id]->OnRestart();
  util::LogInfo("sim: node %u restarted at t=%.2f", id, sim_.Now());
}

void Network::HealPartitions() {
  std::fill(partition_.begin(), partition_.end(), 0);
}

TrafficStats Network::TotalStats() const {
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_received += s.messages_received;
    total.bytes_received += s.bytes_received;
    total.messages_dropped += s.messages_dropped;
  }
  return total;
}

void Network::ResetStats() {
  std::fill(stats_.begin(), stats_.end(), TrafficStats{});
}

}  // namespace nw::sim
