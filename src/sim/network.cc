#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace nw::sim {

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  sim_.SetLookahead(config_.base_latency);
}

NodeId Network::AddNode(Node* node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  alive_.push_back(true);
  incarnation_.push_back(0);
  partition_.push_back(0);
  uplink_rate_.push_back(config_.uplink_bytes_per_sec);
  uplink_free_at_.push_back(0.0);
  proc_slowdown_.push_back(1.0);
  proc_delay_.push_back(0.0);
  stats_.emplace_back();
  link_rng_.push_back(sim_.Rng().Fork(0x4c696e6bu /*'Link'*/ + id));
  by_type_per_node_.emplace_back();
  node->net_ = this;
  node->id_ = id;
  node->rng_ = sim_.Rng().Fork(0x4e6f6465u /*'Node'*/ + id);
  sim_.EnsureContexts(static_cast<std::uint32_t>(nodes_.size()));
  if (metrics_ != nullptr) metrics_->EnsureNodes(nodes_.size());
  return id;
}

void Network::SetMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  metrics_->EnsureNodes(std::max<std::size_t>(1, nodes_.size()));
  ids_.sent = metrics_->Counter("sim.network.messages_sent");
  ids_.bytes_sent = metrics_->Counter("sim.network.bytes_sent");
  ids_.delivered = metrics_->Counter("sim.network.messages_delivered");
  ids_.bytes_received = metrics_->Counter("sim.network.bytes_received");
  ids_.drops_loss = metrics_->Counter("sim.network.drops_loss");
  ids_.drops_dead = metrics_->Counter("sim.network.drops_dead_endpoint");
  ids_.drops_stale = metrics_->Counter("sim.network.drops_stale_incarnation");
  ids_.drops_partition = metrics_->Counter("sim.network.drops_partition");
  ids_.drops_asym = metrics_->Counter("sim.network.drops_asym");
  ids_.corruptions = metrics_->Counter("sim.network.corruptions");
  ids_.dup_frames = metrics_->Counter("sim.network.dup_frames");
  ids_.uplink_backlog = metrics_->Gauge("sim.network.uplink_backlog_s");
  ids_.kills = metrics_->Counter("sim.network.node_kills");
  ids_.restarts = metrics_->Counter("sim.network.node_restarts");
}

void Network::Send(Message msg) {
  assert(msg.from < nodes_.size());
  assert(msg.to < nodes_.size());
  const NodeId from = msg.from;
  const NodeId to = msg.to;
  msg.checksum = EnvelopeChecksum(msg);

  const std::size_t wire = msg.wire_bytes + config_.per_message_overhead;
  stats_[from].messages_sent += 1;
  stats_[from].bytes_sent += wire;
  TypeStats& ts = by_type_per_node_[from][msg.type];
  ts.messages += 1;
  ts.bytes += wire;
  if (metrics_ != nullptr) {
    metrics_->Add(ids_.sent, from);
    metrics_->Add(ids_.bytes_sent, from, wire);
  }
  if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kSend)) {
    tracer_->Record(sim_.Now(), from, obs::EventCategory::kSend, "net.send",
                    to, wire, msg.type);
  }

  if (!alive_[from]) {
    stats_[from].messages_dropped += 1;
    if (metrics_ != nullptr) metrics_->Add(ids_.drops_dead, from);
    if (tracer_ != nullptr) {
      tracer_->Record(sim_.Now(), from, obs::EventCategory::kDrop,
                      "net.drop.sender_dead", to, wire, msg.type);
    }
    return;
  }

  // Serialize on the sender's uplink.
  const Time start = std::max(sim_.Now(), uplink_free_at_[from]);
  const Time departure = start + double(wire) / uplink_rate_[from];
  uplink_free_at_[from] = departure;
  if (metrics_ != nullptr) {
    // Queueing delay a message sent right now would see on this uplink.
    metrics_->Set(ids_.uplink_backlog, from, departure - sim_.Now());
  }

  // Inbound gray delay (a saturated receive path at `to`) adds on top of
  // the propagation latency, so the conservative lookahead still holds.
  const double jitter =
      config_.base_latency * config_.jitter_frac * link_rng_[from].NextDouble();
  const Time arrival =
      departure + config_.base_latency + jitter + proc_delay_[to];

  const bool lost = link_rng_[from].NextBool(config_.loss_prob);
  // Gray-fault draws are guarded by their probabilities so the per-sender
  // RNG streams (and every committed golden trace) are unchanged while the
  // faults are inactive.
  bool corrupt = false;
  std::uint32_t flip_bit = 0;
  if (!lost && corrupt_prob_ > 0 && link_rng_[from].NextBool(corrupt_prob_)) {
    corrupt = true;
    flip_bit = std::uint32_t(link_rng_[from].NextBelow(64));
  }
  bool dup = false;
  Time dup_extra = 0;
  if (!lost && dup_prob_ > 0 && link_rng_[from].NextBool(dup_prob_)) {
    dup = true;
    dup_extra =
        config_.base_latency * (0.5 + 1.5 * link_rng_[from].NextDouble());
  }

  if (dup) {
    stats_[from].messages_duplicated += 1;
    if (metrics_ != nullptr) metrics_->Add(ids_.dup_frames, from);
    // The duplicate is a clean copy (payload shared) arriving late, i.e.
    // reordered past messages sent after the original.
    DeliverAt(msg, arrival + dup_extra, wire, /*lost=*/false,
              /*corrupt=*/false, 0);
  }
  DeliverAt(std::move(msg), arrival, wire, lost, corrupt, flip_bit);
}

void Network::DeliverAt(Message msg, Time arrival, std::size_t wire, bool lost,
                        bool corrupt, std::uint32_t flip_bit) {
  const NodeId from = msg.from;
  const NodeId to = msg.to;
  const std::uint32_t to_inc = incarnation_[to];

  // The delivery executes in the receiver's context/shard; the base
  // latency keeps `arrival` beyond the conservative lookahead window.
  sim_.AtNode(to, arrival, [this, msg = std::move(msg), wire, lost, to, from,
                            to_inc, corrupt, flip_bit]() mutable {
    const bool dead = !alive_[to];
    const bool stale = !dead && incarnation_[to] != to_inc;
    const bool partitioned =
        !lost && !dead && !stale && partition_[from] != partition_[to];
    const bool asym = !lost && !dead && !stale && !partitioned &&
                      AsymBlocked(from, to);
    if (lost || dead || stale || partitioned || asym) {
      stats_[to].messages_dropped += 1;
      if (metrics_ != nullptr) {
        metrics_->Add(lost    ? ids_.drops_loss
                      : dead  ? ids_.drops_dead
                      : stale ? ids_.drops_stale
                      : partitioned ? ids_.drops_partition
                              : ids_.drops_asym,
                      to);
      }
      if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kDrop)) {
        tracer_->Record(sim_.Now(), to, obs::EventCategory::kDrop,
                        lost    ? "net.drop.loss"
                        : dead  ? "net.drop.dead_endpoint"
                        : stale ? "net.drop.stale_incarnation"
                        : partitioned ? "net.drop.partition"
                                : "net.drop.asym",
                        from, wire, msg.type);
      }
      return;
    }
    if (corrupt) {
      msg.checksum ^= 1ull << flip_bit;
      stats_[to].messages_corrupted += 1;
      if (metrics_ != nullptr) metrics_->Add(ids_.corruptions, to);
      if (tracer_ != nullptr &&
          tracer_->Enabled(obs::EventCategory::kIntegrity)) {
        tracer_->Record(sim_.Now(), to, obs::EventCategory::kIntegrity,
                        "net.corrupt", from, flip_bit, msg.type);
      }
    }
    stats_[to].messages_received += 1;
    stats_[to].bytes_received += wire;
    if (metrics_ != nullptr) {
      metrics_->Add(ids_.delivered, to);
      metrics_->Add(ids_.bytes_received, to, wire);
    }
    if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kDeliver)) {
      tracer_->Record(sim_.Now(), to, obs::EventCategory::kDeliver,
                      "net.deliver", from, wire, msg.type);
    }
    nodes_[to]->OnMessage(msg);
  });
}

int Network::AddAsymCut(NodeId from, NodeId to) {
  const int id = next_asym_id_++;
  asym_cut_by_id_[id] = {from, to};
  asym_pair_count_[{from, to}] += 1;
  return id;
}

void Network::RemoveAsymCut(int cut_id) {
  const auto it = asym_cut_by_id_.find(cut_id);
  if (it == asym_cut_by_id_.end()) return;
  const auto pair_it = asym_pair_count_.find(it->second);
  if (pair_it != asym_pair_count_.end() && --pair_it->second <= 0) {
    asym_pair_count_.erase(pair_it);
  }
  asym_cut_by_id_.erase(it);
}

void Network::Kill(NodeId id) {
  assert(id < nodes_.size());
  if (!alive_[id]) return;
  alive_[id] = false;
  incarnation_[id] += 1;  // invalidates in-flight deliveries and timers
  if (metrics_ != nullptr) metrics_->Add(ids_.kills, id);
  if (tracer_ != nullptr) {
    tracer_->Record(sim_.Now(), id, obs::EventCategory::kFault, "net.kill",
                    incarnation_[id]);
  }
  util::LogInfo("sim: node %u killed at t=%.2f", id, sim_.Now());
}

void Network::Restart(NodeId id) {
  assert(id < nodes_.size());
  if (alive_[id]) return;
  alive_[id] = true;
  incarnation_[id] += 1;
  uplink_free_at_[id] = sim_.Now();
  if (metrics_ != nullptr) metrics_->Add(ids_.restarts, id);
  if (tracer_ != nullptr) {
    tracer_->Record(sim_.Now(), id, obs::EventCategory::kFault, "net.restart",
                    incarnation_[id]);
  }
  nodes_[id]->OnRestart();
  util::LogInfo("sim: node %u restarted at t=%.2f", id, sim_.Now());
}

void Network::HealPartitions() {
  std::fill(partition_.begin(), partition_.end(), 0);
  asym_cut_by_id_.clear();
  asym_pair_count_.clear();
}

TrafficStats Network::TotalStats() const {
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_received += s.messages_received;
    total.bytes_received += s.bytes_received;
    total.messages_dropped += s.messages_dropped;
    total.messages_corrupted += s.messages_corrupted;
    total.messages_duplicated += s.messages_duplicated;
  }
  return total;
}

void Network::ResetStats() {
  std::fill(stats_.begin(), stats_.end(), TrafficStats{});
  for (auto& per : by_type_per_node_) per.clear();
  by_type_merged_.clear();
}

const std::map<std::string, Network::TypeStats>& Network::StatsByType() const {
  by_type_merged_.clear();
  for (const auto& per : by_type_per_node_) {
    for (const auto& [type, ts] : per) {
      TypeStats& total = by_type_merged_[type];
      total.messages += ts.messages;
      total.bytes += ts.bytes;
    }
  }
  return by_type_merged_;
}

Network::TypeStats Network::StatsForTypePrefix(const std::string& prefix) const {
  TypeStats total;
  for (const auto& per : by_type_per_node_) {
    for (const auto& [type, ts] : per) {
      if (type.compare(0, prefix.size(), prefix) == 0) {
        total.messages += ts.messages;
        total.bytes += ts.bytes;
      }
    }
  }
  return total;
}

}  // namespace nw::sim
