#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace nw::sim {

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  sim_.SetLookahead(config_.base_latency);
}

NodeId Network::AddNode(Node* node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  alive_.push_back(true);
  incarnation_.push_back(0);
  partition_.push_back(0);
  uplink_rate_.push_back(config_.uplink_bytes_per_sec);
  uplink_free_at_.push_back(0.0);
  stats_.emplace_back();
  link_rng_.push_back(sim_.Rng().Fork(0x4c696e6bu /*'Link'*/ + id));
  by_type_per_node_.emplace_back();
  node->net_ = this;
  node->id_ = id;
  node->rng_ = sim_.Rng().Fork(0x4e6f6465u /*'Node'*/ + id);
  sim_.EnsureContexts(static_cast<std::uint32_t>(nodes_.size()));
  if (metrics_ != nullptr) metrics_->EnsureNodes(nodes_.size());
  return id;
}

void Network::SetMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  metrics_->EnsureNodes(std::max<std::size_t>(1, nodes_.size()));
  ids_.sent = metrics_->Counter("sim.network.messages_sent");
  ids_.bytes_sent = metrics_->Counter("sim.network.bytes_sent");
  ids_.delivered = metrics_->Counter("sim.network.messages_delivered");
  ids_.bytes_received = metrics_->Counter("sim.network.bytes_received");
  ids_.drops_loss = metrics_->Counter("sim.network.drops_loss");
  ids_.drops_dead = metrics_->Counter("sim.network.drops_dead_endpoint");
  ids_.drops_stale = metrics_->Counter("sim.network.drops_stale_incarnation");
  ids_.drops_partition = metrics_->Counter("sim.network.drops_partition");
  ids_.uplink_backlog = metrics_->Gauge("sim.network.uplink_backlog_s");
  ids_.kills = metrics_->Counter("sim.network.node_kills");
  ids_.restarts = metrics_->Counter("sim.network.node_restarts");
}

void Network::Send(Message msg) {
  assert(msg.from < nodes_.size());
  assert(msg.to < nodes_.size());
  const NodeId from = msg.from;
  const NodeId to = msg.to;

  const std::size_t wire = msg.wire_bytes + config_.per_message_overhead;
  stats_[from].messages_sent += 1;
  stats_[from].bytes_sent += wire;
  TypeStats& ts = by_type_per_node_[from][msg.type];
  ts.messages += 1;
  ts.bytes += wire;
  if (metrics_ != nullptr) {
    metrics_->Add(ids_.sent, from);
    metrics_->Add(ids_.bytes_sent, from, wire);
  }
  if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kSend)) {
    tracer_->Record(sim_.Now(), from, obs::EventCategory::kSend, "net.send",
                    to, wire, msg.type);
  }

  if (!alive_[from]) {
    stats_[from].messages_dropped += 1;
    if (metrics_ != nullptr) metrics_->Add(ids_.drops_dead, from);
    if (tracer_ != nullptr) {
      tracer_->Record(sim_.Now(), from, obs::EventCategory::kDrop,
                      "net.drop.sender_dead", to, wire, msg.type);
    }
    return;
  }

  // Serialize on the sender's uplink.
  const Time start = std::max(sim_.Now(), uplink_free_at_[from]);
  const Time departure = start + double(wire) / uplink_rate_[from];
  uplink_free_at_[from] = departure;
  if (metrics_ != nullptr) {
    // Queueing delay a message sent right now would see on this uplink.
    metrics_->Set(ids_.uplink_backlog, from, departure - sim_.Now());
  }

  const double jitter =
      config_.base_latency * config_.jitter_frac * link_rng_[from].NextDouble();
  const Time arrival = departure + config_.base_latency + jitter;

  const bool lost = link_rng_[from].NextBool(config_.loss_prob);
  const std::uint32_t to_inc = incarnation_[to];

  // The delivery executes in the receiver's context/shard; the base
  // latency keeps `arrival` beyond the conservative lookahead window.
  sim_.AtNode(to, arrival, [this, msg = std::move(msg), wire, lost, to, from,
                            to_inc]() mutable {
    const bool dead = !alive_[to];
    const bool stale = !dead && incarnation_[to] != to_inc;
    const bool partitioned =
        !lost && !dead && !stale && partition_[from] != partition_[to];
    if (lost || dead || stale || partitioned) {
      stats_[to].messages_dropped += 1;
      if (metrics_ != nullptr) {
        metrics_->Add(lost    ? ids_.drops_loss
                      : dead  ? ids_.drops_dead
                      : stale ? ids_.drops_stale
                              : ids_.drops_partition,
                      to);
      }
      if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kDrop)) {
        tracer_->Record(sim_.Now(), to, obs::EventCategory::kDrop,
                        lost    ? "net.drop.loss"
                        : dead  ? "net.drop.dead_endpoint"
                        : stale ? "net.drop.stale_incarnation"
                                : "net.drop.partition",
                        from, wire, msg.type);
      }
      return;
    }
    stats_[to].messages_received += 1;
    stats_[to].bytes_received += wire;
    if (metrics_ != nullptr) {
      metrics_->Add(ids_.delivered, to);
      metrics_->Add(ids_.bytes_received, to, wire);
    }
    if (tracer_ != nullptr && tracer_->Enabled(obs::EventCategory::kDeliver)) {
      tracer_->Record(sim_.Now(), to, obs::EventCategory::kDeliver,
                      "net.deliver", from, wire, msg.type);
    }
    nodes_[to]->OnMessage(msg);
  });
}

void Network::Kill(NodeId id) {
  assert(id < nodes_.size());
  if (!alive_[id]) return;
  alive_[id] = false;
  incarnation_[id] += 1;  // invalidates in-flight deliveries and timers
  if (metrics_ != nullptr) metrics_->Add(ids_.kills, id);
  if (tracer_ != nullptr) {
    tracer_->Record(sim_.Now(), id, obs::EventCategory::kFault, "net.kill",
                    incarnation_[id]);
  }
  util::LogInfo("sim: node %u killed at t=%.2f", id, sim_.Now());
}

void Network::Restart(NodeId id) {
  assert(id < nodes_.size());
  if (alive_[id]) return;
  alive_[id] = true;
  incarnation_[id] += 1;
  uplink_free_at_[id] = sim_.Now();
  if (metrics_ != nullptr) metrics_->Add(ids_.restarts, id);
  if (tracer_ != nullptr) {
    tracer_->Record(sim_.Now(), id, obs::EventCategory::kFault, "net.restart",
                    incarnation_[id]);
  }
  nodes_[id]->OnRestart();
  util::LogInfo("sim: node %u restarted at t=%.2f", id, sim_.Now());
}

void Network::HealPartitions() {
  std::fill(partition_.begin(), partition_.end(), 0);
}

TrafficStats Network::TotalStats() const {
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_received += s.messages_received;
    total.bytes_received += s.bytes_received;
    total.messages_dropped += s.messages_dropped;
  }
  return total;
}

void Network::ResetStats() {
  std::fill(stats_.begin(), stats_.end(), TrafficStats{});
  for (auto& per : by_type_per_node_) per.clear();
  by_type_merged_.clear();
}

const std::map<std::string, Network::TypeStats>& Network::StatsByType() const {
  by_type_merged_.clear();
  for (const auto& per : by_type_per_node_) {
    for (const auto& [type, ts] : per) {
      TypeStats& total = by_type_merged_[type];
      total.messages += ts.messages;
      total.bytes += ts.bytes;
    }
  }
  return by_type_merged_;
}

Network::TypeStats Network::StatsForTypePrefix(const std::string& prefix) const {
  TypeStats total;
  for (const auto& per : by_type_per_node_) {
    for (const auto& [type, ts] : per) {
      if (type.compare(0, prefix.size(), prefix) == 0) {
        total.messages += ts.messages;
        total.bytes += ts.bytes;
      }
    }
  }
  return total;
}

}  // namespace nw::sim
