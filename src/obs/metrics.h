// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the simulated stack. Registration (by name, idempotent) happens on slow
// paths and returns a small integer MetricId; the hot-path update calls
// (Add/Set/Observe) index pre-sized per-node vectors and never allocate, so
// instrumentation stays cheap even for deployments with thousands of nodes.
//
// Metric names follow the `layer.component.metric` convention documented in
// DESIGN.md §8, e.g. "sim.network.messages_sent" or
// "newswire.subscriber.latency_s".
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace nw::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* MetricKindName(MetricKind kind) noexcept;

class MetricsRegistry {
 public:
  using MetricId = std::uint32_t;
  static constexpr MetricId kInvalidMetric = 0xffffffffu;

  explicit MetricsRegistry(std::size_t num_nodes = 1);

  // ---- registration (slow path; idempotent by name) ---------------------
  // Re-registering an existing name returns the same id; a name registered
  // under a different kind returns kInvalidMetric (updates on it no-op).
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  // `bucket_bounds` are the inclusive upper edges of the value buckets,
  // strictly increasing; one implicit overflow bucket follows the last.
  MetricId Histogram(const std::string& name, std::vector<double> bucket_bounds);
  // Log-spaced latency edges (seconds) shared by the delivery histograms.
  static std::vector<double> LatencyBucketsSeconds();

  // Grows per-node storage; values of existing nodes are preserved.
  void EnsureNodes(std::size_t count);
  std::size_t node_count() const noexcept { return num_nodes_; }
  std::size_t metric_count() const noexcept { return metrics_.size(); }

  // ---- updates (hot path; no allocation, out-of-range is a no-op) -------
  void Add(MetricId id, std::uint32_t node, std::uint64_t delta = 1) noexcept;
  void Set(MetricId id, std::uint32_t node, double value) noexcept;
  void Observe(MetricId id, std::uint32_t node, double sample) noexcept;

  // ---- queries ----------------------------------------------------------
  std::uint64_t CounterValue(MetricId id, std::uint32_t node) const;
  std::uint64_t CounterTotal(MetricId id) const;
  double GaugeValue(MetricId id, std::uint32_t node) const;

  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double Mean() const;
    // Nearest-rank quantile estimated as the upper edge of the bucket that
    // holds the rank (the global max for the overflow bucket). q in [0,100].
    double Quantile(double q) const;
  };
  struct MetricSnapshot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    // kCounter:
    std::vector<std::uint64_t> counter_per_node;
    std::uint64_t counter_total = 0;
    // kGauge:
    std::vector<double> gauge_per_node;
    // kHistogram (aggregated across nodes):
    HistogramSnapshot histogram;
  };
  struct Snapshot {
    std::size_t num_nodes = 0;
    std::vector<MetricSnapshot> metrics;  // sorted by name
    const MetricSnapshot* Find(const std::string& name) const;
    // One JSON object; per-node arrays are included only for deployments
    // of at most `max_per_node_nodes` nodes (totals are always present).
    void WriteJson(FILE* out, std::size_t max_per_node_nodes = 1024) const;
  };
  // Deep copy: later updates to the registry do not affect the snapshot.
  Snapshot Snap() const;

  // Zeroes every value; registrations and ids survive.
  void Reset();

 private:
  struct Metric {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;  // index into the kind-specific storage below
  };
  // All slots are per-node so concurrent shards never write the same
  // word (each simulated node executes on exactly one shard); min/max are
  // folded across nodes at Snap() time.
  struct HistogramSlots {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // node-major, (bounds+1) per node
    std::vector<std::uint64_t> count_per_node;
    std::vector<double> sum_per_node;
    std::vector<double> min_per_node;
    std::vector<double> max_per_node;
  };

  std::vector<Metric> metrics_;
  std::map<std::string, MetricId> by_name_;
  std::size_t num_nodes_;
  std::vector<std::vector<std::uint64_t>> counters_;  // [slot][node]
  std::vector<std::vector<double>> gauges_;           // [slot][node]
  std::vector<HistogramSlots> histograms_;
};

}  // namespace nw::obs
