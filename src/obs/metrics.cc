#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nw::obs {

namespace {

// JSON-safe number formatting ("%.17g" round-trips doubles but is noisy;
// metrics are reports, not archives, so ten significant digits suffice).
void PrintNum(FILE* out, double v) {
  if (std::isfinite(v)) {
    std::fprintf(out, "%.10g", v);
  } else {
    std::fputs("null", out);
  }
}

void PrintEscaped(FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", c);
        } else {
          std::fputc(c, out);
        }
    }
  }
  std::fputc('"', out);
}

}  // namespace

const char* MetricKindName(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(std::size_t num_nodes)
    : num_nodes_(std::max<std::size_t>(1, num_nodes)) {}

MetricsRegistry::MetricId MetricsRegistry::Counter(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return metrics_[it->second].kind == MetricKind::kCounter ? it->second
                                                             : kInvalidMetric;
  }
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back({name, MetricKind::kCounter,
                      static_cast<std::uint32_t>(counters_.size())});
  counters_.emplace_back(num_nodes_, 0);
  by_name_[name] = id;
  return id;
}

MetricsRegistry::MetricId MetricsRegistry::Gauge(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return metrics_[it->second].kind == MetricKind::kGauge ? it->second
                                                           : kInvalidMetric;
  }
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back({name, MetricKind::kGauge,
                      static_cast<std::uint32_t>(gauges_.size())});
  gauges_.emplace_back(num_nodes_, 0.0);
  by_name_[name] = id;
  return id;
}

MetricsRegistry::MetricId MetricsRegistry::Histogram(
    const std::string& name, std::vector<double> bucket_bounds) {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return metrics_[it->second].kind == MetricKind::kHistogram ? it->second
                                                               : kInvalidMetric;
  }
  assert(std::is_sorted(bucket_bounds.begin(), bucket_bounds.end()));
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back({name, MetricKind::kHistogram,
                      static_cast<std::uint32_t>(histograms_.size())});
  HistogramSlots slots;
  slots.bounds = std::move(bucket_bounds);
  slots.counts.assign((slots.bounds.size() + 1) * num_nodes_, 0);
  slots.count_per_node.assign(num_nodes_, 0);
  slots.sum_per_node.assign(num_nodes_, 0.0);
  slots.min_per_node.assign(num_nodes_, 0.0);
  slots.max_per_node.assign(num_nodes_, 0.0);
  histograms_.push_back(std::move(slots));
  by_name_[name] = id;
  return id;
}

std::vector<double> MetricsRegistry::LatencyBucketsSeconds() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 60, 120, 300};
}

void MetricsRegistry::EnsureNodes(std::size_t count) {
  if (count <= num_nodes_) return;
  for (auto& v : counters_) v.resize(count, 0);
  for (auto& v : gauges_) v.resize(count, 0.0);
  for (auto& h : histograms_) {
    // Node-major bucket storage: growing appends zeroed per-node blocks.
    h.counts.resize((h.bounds.size() + 1) * count, 0);
    h.count_per_node.resize(count, 0);
    h.sum_per_node.resize(count, 0.0);
    h.min_per_node.resize(count, 0.0);
    h.max_per_node.resize(count, 0.0);
  }
  num_nodes_ = count;
}

void MetricsRegistry::Add(MetricId id, std::uint32_t node,
                          std::uint64_t delta) noexcept {
  if (id >= metrics_.size() || node >= num_nodes_) return;
  const Metric& m = metrics_[id];
  if (m.kind != MetricKind::kCounter) return;
  counters_[m.slot][node] += delta;
}

void MetricsRegistry::Set(MetricId id, std::uint32_t node,
                          double value) noexcept {
  if (id >= metrics_.size() || node >= num_nodes_) return;
  const Metric& m = metrics_[id];
  if (m.kind != MetricKind::kGauge) return;
  gauges_[m.slot][node] = value;
}

void MetricsRegistry::Observe(MetricId id, std::uint32_t node,
                              double sample) noexcept {
  if (id >= metrics_.size() || node >= num_nodes_) return;
  const Metric& m = metrics_[id];
  if (m.kind != MetricKind::kHistogram) return;
  HistogramSlots& h = histograms_[m.slot];
  // Linear scan: bucket lists are short (~16) and branch-predictable.
  std::size_t bucket = h.bounds.size();
  for (std::size_t b = 0; b < h.bounds.size(); ++b) {
    if (sample <= h.bounds[b]) {
      bucket = b;
      break;
    }
  }
  h.counts[node * (h.bounds.size() + 1) + bucket] += 1;
  if (h.count_per_node[node] == 0 || sample < h.min_per_node[node]) {
    h.min_per_node[node] = sample;
  }
  if (h.count_per_node[node] == 0 || sample > h.max_per_node[node]) {
    h.max_per_node[node] = sample;
  }
  h.count_per_node[node] += 1;
  h.sum_per_node[node] += sample;
}

std::uint64_t MetricsRegistry::CounterValue(MetricId id,
                                            std::uint32_t node) const {
  if (id >= metrics_.size() || node >= num_nodes_) return 0;
  const Metric& m = metrics_[id];
  return m.kind == MetricKind::kCounter ? counters_[m.slot][node] : 0;
}

std::uint64_t MetricsRegistry::CounterTotal(MetricId id) const {
  if (id >= metrics_.size()) return 0;
  const Metric& m = metrics_[id];
  if (m.kind != MetricKind::kCounter) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t v : counters_[m.slot]) total += v;
  return total;
}

double MetricsRegistry::GaugeValue(MetricId id, std::uint32_t node) const {
  if (id >= metrics_.size() || node >= num_nodes_) return 0.0;
  const Metric& m = metrics_[id];
  return m.kind == MetricKind::kGauge ? gauges_[m.slot][node] : 0.0;
}

double MetricsRegistry::HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0 : sum / double(count);
}

double MetricsRegistry::HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * double(count) / 100.0));
  rank = std::clamp<std::size_t>(rank, 1, count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum >= rank) return b < bounds.size() ? bounds[b] : max;
  }
  return max;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  snap.num_nodes = num_nodes_;
  snap.metrics.reserve(metrics_.size());
  // by_name_ iterates sorted, which keeps the JSON output stable.
  for (const auto& [name, id] : by_name_) {
    const Metric& m = metrics_[id];
    MetricSnapshot out;
    out.name = name;
    out.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        out.counter_per_node = counters_[m.slot];
        for (std::uint64_t v : out.counter_per_node) out.counter_total += v;
        break;
      case MetricKind::kGauge:
        out.gauge_per_node = gauges_[m.slot];
        break;
      case MetricKind::kHistogram: {
        const HistogramSlots& h = histograms_[m.slot];
        out.histogram.bounds = h.bounds;
        out.histogram.counts.assign(h.bounds.size() + 1, 0);
        bool any = false;
        for (std::size_t node = 0; node < num_nodes_; ++node) {
          for (std::size_t b = 0; b <= h.bounds.size(); ++b) {
            out.histogram.counts[b] += h.counts[node * (h.bounds.size() + 1) + b];
          }
          out.histogram.count += h.count_per_node[node];
          out.histogram.sum += h.sum_per_node[node];
          if (h.count_per_node[node] == 0) continue;
          if (!any || h.min_per_node[node] < out.histogram.min) {
            out.histogram.min = h.min_per_node[node];
          }
          if (!any || h.max_per_node[node] > out.histogram.max) {
            out.histogram.max = h.max_per_node[node];
          }
          any = true;
        }
        if (!any) out.histogram.min = out.histogram.max = 0.0;
        break;
      }
    }
    snap.metrics.push_back(std::move(out));
  }
  return snap;
}

const MetricsRegistry::MetricSnapshot* MetricsRegistry::Snapshot::Find(
    const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void MetricsRegistry::Snapshot::WriteJson(FILE* out,
                                          std::size_t max_per_node_nodes) const {
  const bool per_node = num_nodes <= max_per_node_nodes;
  std::fprintf(out, "{\n  \"nodes\": %zu,\n  \"metrics\": [", num_nodes);
  bool first = true;
  for (const auto& m : metrics) {
    std::fputs(first ? "\n    {" : ",\n    {", out);
    first = false;
    std::fputs("\"name\": ", out);
    PrintEscaped(out, m.name);
    std::fprintf(out, ", \"kind\": \"%s\"", MetricKindName(m.kind));
    switch (m.kind) {
      case MetricKind::kCounter:
        std::fprintf(out, ", \"total\": %llu",
                     static_cast<unsigned long long>(m.counter_total));
        if (per_node) {
          std::fputs(", \"per_node\": [", out);
          for (std::size_t i = 0; i < m.counter_per_node.size(); ++i) {
            std::fprintf(out, "%s%llu", i ? "," : "",
                         static_cast<unsigned long long>(m.counter_per_node[i]));
          }
          std::fputc(']', out);
        }
        break;
      case MetricKind::kGauge: {
        double lo = 0, hi = 0, sum = 0;
        for (std::size_t i = 0; i < m.gauge_per_node.size(); ++i) {
          const double v = m.gauge_per_node[i];
          if (i == 0 || v < lo) lo = v;
          if (i == 0 || v > hi) hi = v;
          sum += v;
        }
        std::fputs(", \"mean\": ", out);
        PrintNum(out, m.gauge_per_node.empty()
                          ? 0.0
                          : sum / double(m.gauge_per_node.size()));
        std::fputs(", \"min\": ", out);
        PrintNum(out, lo);
        std::fputs(", \"max\": ", out);
        PrintNum(out, hi);
        if (per_node) {
          std::fputs(", \"per_node\": [", out);
          for (std::size_t i = 0; i < m.gauge_per_node.size(); ++i) {
            if (i) std::fputc(',', out);
            PrintNum(out, m.gauge_per_node[i]);
          }
          std::fputc(']', out);
        }
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        std::fprintf(out, ", \"count\": %llu",
                     static_cast<unsigned long long>(h.count));
        std::fputs(", \"sum\": ", out);
        PrintNum(out, h.sum);
        std::fputs(", \"min\": ", out);
        PrintNum(out, h.min);
        std::fputs(", \"max\": ", out);
        PrintNum(out, h.max);
        std::fputs(", \"mean\": ", out);
        PrintNum(out, h.Mean());
        std::fputs(", \"p50\": ", out);
        PrintNum(out, h.Quantile(50));
        std::fputs(", \"p90\": ", out);
        PrintNum(out, h.Quantile(90));
        std::fputs(", \"p99\": ", out);
        PrintNum(out, h.Quantile(99));
        std::fputs(", \"buckets\": [", out);
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          if (b) std::fputc(',', out);
          std::fputs("{\"le\": ", out);
          if (b < h.bounds.size()) {
            PrintNum(out, h.bounds[b]);
          } else {
            std::fputs("\"inf\"", out);
          }
          std::fprintf(out, ", \"count\": %llu}",
                       static_cast<unsigned long long>(h.counts[b]));
        }
        std::fputc(']', out);
        break;
      }
    }
    std::fputc('}', out);
  }
  std::fputs("\n  ]\n}\n", out);
}

void MetricsRegistry::Reset() {
  for (auto& v : counters_) std::fill(v.begin(), v.end(), 0);
  for (auto& v : gauges_) std::fill(v.begin(), v.end(), 0.0);
  for (auto& h : histograms_) {
    std::fill(h.counts.begin(), h.counts.end(), 0);
    std::fill(h.count_per_node.begin(), h.count_per_node.end(), 0);
    std::fill(h.sum_per_node.begin(), h.sum_per_node.end(), 0.0);
    std::fill(h.min_per_node.begin(), h.min_per_node.end(), 0.0);
    std::fill(h.max_per_node.begin(), h.max_per_node.end(), 0.0);
  }
}

}  // namespace nw::obs
