// EventTracer: a sim-time, category-filtered ring buffer of typed events.
//
// Every layer of the stack records what it is doing (gossip rounds, table
// merges, sends/drops/deliveries, representative elections, fault-plan
// events, publications, cache pulls) as fixed-size TraceEvent records —
// Record() never allocates, so tracing a deterministic run does not perturb
// it. The buffer can be dumped as human-readable text or as JSONL, and its
// content folds into a 64-bit sequence hash so regression tests can assert
// replay determinism without committing megabytes of golden traces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nw::obs {

namespace internal {

// The ordering key of the simulator event executing on this thread, set by
// the parallel engine around each event. When the tracer is staging (see
// EventTracer::BeginStaging), records are buffered per worker shard under
// this stamp and merged into the ring in key order at the window barrier,
// reproducing the exact record order of a 1-thread run.
struct ExecStamp {
  double time = 0;
  std::uint32_t gen = 0;
  std::uint64_t seq = 0;
  std::uint32_t src = 0;
  int shard = -1;
  bool active = false;
};
ExecStamp& TlsExecStamp() noexcept;

}  // namespace internal

enum class EventCategory : std::uint8_t {
  kGossip,    // epidemic rounds and exchanges
  kMerge,     // MIB / zone-table merges
  kCert,      // certificate verification results
  kElection,  // representative set changes
  kSend,      // network sends
  kDeliver,   // network deliveries
  kDrop,      // network drops (loss, dead, stale incarnation, partition)
  kFault,     // fault-plan events and node kill/restart
  kPublish,   // publisher output
  kCache,     // message-cache activity (duplicate suppression)
  kRepair,    // anti-entropy pull repair and state transfer
  kReliable,  // hop-level acks, retransmissions, failovers
  kIntegrity, // frame corruption and checksum verify-and-drop
  kAggregation, // dirty-tracked recompute memo hits and evaluations
  kCount_,    // sentinel
};

inline constexpr std::uint32_t CategoryBit(EventCategory c) noexcept {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kAllCategories =
    (1u << static_cast<unsigned>(EventCategory::kCount_)) - 1;

const char* CategoryName(EventCategory c) noexcept;
std::optional<EventCategory> CategoryFromName(std::string_view name);
// Parses a comma-separated category list ("gossip,send,drop"; "all" for
// everything) into a bitmask; nullopt on an unknown name.
std::optional<std::uint32_t> ParseCategoryMask(std::string_view list);

struct TraceEvent {
  double time = 0;          // simulated seconds
  std::uint32_t node = 0;   // acting node id
  EventCategory category = EventCategory::kFault;
  const char* type = "";    // static string literal, e.g. "net.drop.loss"
  std::uint64_t a = 0;      // type-specific operands (peer id, count, ...)
  std::uint64_t b = 0;
  char detail[24] = {};     // truncated free-form tag (message type, item id)
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 1 << 16,
                       std::uint32_t category_mask = kAllCategories);

  bool Enabled(EventCategory c) const noexcept {
    return (mask_ & CategoryBit(c)) != 0;
  }
  void SetCategoryMask(std::uint32_t mask) noexcept { mask_ = mask; }
  std::uint32_t category_mask() const noexcept { return mask_; }

  // Records an event unless its category is masked out. Copies `detail`
  // (truncated to the inline buffer); `type` must be a static literal.
  // While staging is active and an ExecStamp is set for this thread, the
  // record is buffered in that shard's stage instead of the shared ring.
  void Record(double time, std::uint32_t node, EventCategory category,
              const char* type, std::uint64_t a = 0, std::uint64_t b = 0,
              std::string_view detail = {}) noexcept;

  // ---- parallel-window staging (driven by sim::Simulator) ---------------
  // Between BeginStaging and CommitStaging, worker threads append records
  // to per-shard buffers (each shard is single-threaded, so no locking);
  // CommitStaging merges them into the ring sorted by the executing event's
  // (time, gen, seq, src) key and the within-event record index — the order
  // the sequential engine would have written them in.
  void BeginStaging(std::size_t shards);
  void CommitStaging();
  bool staging() const noexcept { return staging_; }

  std::size_t capacity() const noexcept { return ring_.size(); }
  std::size_t size() const noexcept { return std::min(total_, ring_.size()); }
  // All Record() calls that passed the filter, including overwritten ones.
  std::uint64_t total_recorded() const noexcept { return total_; }
  std::uint64_t overwritten() const noexcept {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  void Clear() noexcept { total_ = 0; }

  // Buffer contents in record order (oldest surviving event first).
  std::vector<TraceEvent> Events() const;

  void DumpText(FILE* out) const;
  void DumpJsonl(FILE* out) const;

  // Order-sensitive 64-bit digest of the buffered events whose category is
  // in `mask`. Two identical runs produce identical hashes.
  std::uint64_t SequenceHash(std::uint32_t mask = kAllCategories) const;

  static std::string ToJsonl(const TraceEvent& ev);

  // Parsed form of one JSONL line (owned strings, for tests and tooling).
  struct ParsedEvent {
    double time = 0;
    std::uint32_t node = 0;
    std::string category;
    std::string type;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::string detail;
  };
  static std::optional<ParsedEvent> ParseJsonlLine(std::string_view line);

 private:
  struct StagedEvent {
    internal::ExecStamp stamp;
    std::uint64_t idx = 0;  // per-stage record index (within-event order)
    TraceEvent ev;
  };

  void WriteToRing(const TraceEvent& ev) noexcept;

  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // next write position = total_ % capacity
  std::uint32_t mask_;
  bool staging_ = false;
  std::vector<std::vector<StagedEvent>> stages_;  // one per worker shard
};

}  // namespace nw::obs
