#include "obs/trace.h"

#include <cstdlib>
#include <cstring>

#include "util/hash.h"

namespace nw::obs {

namespace {

constexpr const char* kCategoryNames[] = {
    "gossip", "merge",   "cert",  "election", "send",   "deliver",
    "drop",   "fault",   "publish", "cache",  "repair", "reliable",
    "integrity", "aggregation",
};
static_assert(sizeof(kCategoryNames) / sizeof(kCategoryNames[0]) ==
                  static_cast<std::size_t>(EventCategory::kCount_),
              "category name table out of sync");

std::uint64_t BitsOf(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Minimal extractor for the flat JSONL objects ToJsonl emits; not a
// general-purpose JSON parser.
bool FindField(std::string_view line, std::string_view key,
               std::string_view* value) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return false;
  std::size_t pos = at + pattern.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    std::size_t end = pos + 1;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    if (end >= line.size()) return false;
    *value = line.substr(pos + 1, end - pos - 1);
  } else {
    std::size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    *value = line.substr(pos, end - pos);
  }
  return true;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          if (i + 4 < s.size()) {
            out.push_back(static_cast<char>(
                std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr,
                             16)));
            i += 4;
          }
          break;
        default: out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

const char* CategoryName(EventCategory c) noexcept {
  const auto i = static_cast<std::size_t>(c);
  return i < static_cast<std::size_t>(EventCategory::kCount_)
             ? kCategoryNames[i]
             : "?";
}

std::optional<EventCategory> CategoryFromName(std::string_view name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventCategory::kCount_);
       ++i) {
    if (name == kCategoryNames[i]) return static_cast<EventCategory>(i);
  }
  return std::nullopt;
}

std::optional<std::uint32_t> ParseCategoryMask(std::string_view list) {
  if (list.empty() || list == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t next = list.find(',', pos);
    if (next == std::string_view::npos) next = list.size();
    std::string_view name = list.substr(pos, next - pos);
    while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
    while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
    if (!name.empty()) {
      const auto cat = CategoryFromName(name);
      if (!cat) return std::nullopt;
      mask |= CategoryBit(*cat);
    }
    pos = next + 1;
  }
  return mask;
}

namespace internal {

ExecStamp& TlsExecStamp() noexcept {
  thread_local ExecStamp stamp;
  return stamp;
}

}  // namespace internal

EventTracer::EventTracer(std::size_t capacity, std::uint32_t category_mask)
    : ring_(std::max<std::size_t>(1, capacity)), mask_(category_mask) {}

void EventTracer::WriteToRing(const TraceEvent& src) noexcept {
  ring_[total_ % ring_.size()] = src;
  ++total_;
}

void EventTracer::Record(double time, std::uint32_t node,
                         EventCategory category, const char* type,
                         std::uint64_t a, std::uint64_t b,
                         std::string_view detail) noexcept {
  if (!Enabled(category)) return;
  TraceEvent ev;
  ev.time = time;
  ev.node = node;
  ev.category = category;
  ev.type = type;
  ev.a = a;
  ev.b = b;
  const std::size_t n = std::min(detail.size(), sizeof ev.detail - 1);
  std::memcpy(ev.detail, detail.data(), n);
  ev.detail[n] = '\0';
  if (staging_) {
    const internal::ExecStamp& stamp = internal::TlsExecStamp();
    if (stamp.active) {
      auto& stage = stages_[static_cast<std::size_t>(stamp.shard)];
      stage.push_back({stamp, stage.size(), ev});
      return;
    }
  }
  WriteToRing(ev);
}

void EventTracer::BeginStaging(std::size_t shards) {
  if (stages_.size() < shards) stages_.resize(shards);
  staging_ = true;
}

void EventTracer::CommitStaging() {
  staging_ = false;
  std::size_t n = 0;
  for (const auto& s : stages_) n += s.size();
  if (n == 0) return;
  std::vector<const StagedEvent*> merged;
  merged.reserve(n);
  for (const auto& s : stages_) {
    for (const auto& rec : s) merged.push_back(&rec);
  }
  // Records of one event share a stamp and live in one stage, so `idx`
  // preserves within-event emission order; distinct events have distinct
  // (time, gen, seq, src) keys.
  std::sort(merged.begin(), merged.end(),
            [](const StagedEvent* a, const StagedEvent* b) {
              if (a->stamp.time != b->stamp.time)
                return a->stamp.time < b->stamp.time;
              if (a->stamp.gen != b->stamp.gen) return a->stamp.gen < b->stamp.gen;
              if (a->stamp.seq != b->stamp.seq) return a->stamp.seq < b->stamp.seq;
              if (a->stamp.src != b->stamp.src) return a->stamp.src < b->stamp.src;
              return a->idx < b->idx;
            });
  for (const StagedEvent* rec : merged) WriteToRing(rec->ev);
  for (auto& s : stages_) s.clear();
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = total_ - n;
  for (std::uint64_t i = start; i < total_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void EventTracer::DumpText(FILE* out) const {
  for (const TraceEvent& ev : Events()) {
    std::fprintf(out, "%12.6f n%-5u %-8s %-24s a=%llu b=%llu%s%s\n", ev.time,
                 ev.node, CategoryName(ev.category), ev.type,
                 static_cast<unsigned long long>(ev.a),
                 static_cast<unsigned long long>(ev.b),
                 ev.detail[0] ? " " : "", ev.detail);
  }
}

std::string EventTracer::ToJsonl(const TraceEvent& ev) {
  char buf[96];
  std::string out = "{\"t\": ";
  std::snprintf(buf, sizeof buf, "%.9f", ev.time);
  out += buf;
  std::snprintf(buf, sizeof buf, ", \"node\": %u, \"cat\": \"%s\", \"type\": ",
                ev.node, CategoryName(ev.category));
  out += buf;
  AppendEscaped(out, ev.type);
  std::snprintf(buf, sizeof buf, ", \"a\": %llu, \"b\": %llu, \"detail\": ",
                static_cast<unsigned long long>(ev.a),
                static_cast<unsigned long long>(ev.b));
  out += buf;
  AppendEscaped(out, ev.detail);
  out += "}";
  return out;
}

void EventTracer::DumpJsonl(FILE* out) const {
  for (const TraceEvent& ev : Events()) {
    const std::string line = ToJsonl(ev);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
}

std::uint64_t EventTracer::SequenceHash(std::uint32_t mask) const {
  std::uint64_t h = util::Fnv1a64("nw.trace");
  for (const TraceEvent& ev : Events()) {
    if ((mask & CategoryBit(ev.category)) == 0) continue;
    h = util::HashCombine(h, BitsOf(ev.time));
    h = util::HashCombine(h, ev.node);
    h = util::HashCombine(h, static_cast<std::uint64_t>(ev.category));
    h = util::HashCombine(h, util::Fnv1a64(ev.type));
    h = util::HashCombine(h, ev.a);
    h = util::HashCombine(h, ev.b);
    h = util::HashCombine(h, util::Fnv1a64(ev.detail));
  }
  return h;
}

std::optional<EventTracer::ParsedEvent> EventTracer::ParseJsonlLine(
    std::string_view line) {
  ParsedEvent ev;
  std::string_view field;
  if (!FindField(line, "t", &field)) return std::nullopt;
  ev.time = std::strtod(std::string(field).c_str(), nullptr);
  if (!FindField(line, "node", &field)) return std::nullopt;
  ev.node = static_cast<std::uint32_t>(
      std::strtoul(std::string(field).c_str(), nullptr, 10));
  if (!FindField(line, "cat", &field)) return std::nullopt;
  ev.category = Unescape(field);
  if (!FindField(line, "type", &field)) return std::nullopt;
  ev.type = Unescape(field);
  if (!FindField(line, "a", &field)) return std::nullopt;
  ev.a = std::strtoull(std::string(field).c_str(), nullptr, 10);
  if (!FindField(line, "b", &field)) return std::nullopt;
  ev.b = std::strtoull(std::string(field).c_str(), nullptr, 10);
  if (!FindField(line, "detail", &field)) return std::nullopt;
  ev.detail = Unescape(field);
  return ev;
}

}  // namespace nw::obs
