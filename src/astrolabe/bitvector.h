// Dynamic bit vector with the operations the subscription layer needs:
// set/test, binary OR (the paper's aggregation of subscription arrays,
// §6), population count, and wire-size estimation.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace nw::astrolabe {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  void Set(std::size_t i) {
    assert(i < nbits_);
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void Clear(std::size_t i) {
    assert(i < nbits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  bool Test(std::size_t i) const {
    assert(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  std::size_t PopCount() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  // In-place OR. Grows to the larger of the two sizes.
  BitVector& operator|=(const BitVector& other) {
    if (other.nbits_ > nbits_) {
      nbits_ = other.nbits_;
      words_.resize(other.words_.size(), 0);
    }
    for (std::size_t i = 0; i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }

  BitVector& operator&=(const BitVector& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
    }
    return *this;
  }

  friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }
  friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }

  // True if every set bit of `query` is also set here.
  bool ContainsAll(const BitVector& query) const {
    for (std::size_t i = 0; i < query.words_.size(); ++i) {
      const std::uint64_t mine = i < words_.size() ? words_[i] : 0;
      if ((query.words_[i] & ~mine) != 0) return false;
    }
    return true;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    if (a.nbits_ != b.nbits_) return false;
    return a.words_ == b.words_;
  }

  std::size_t WireBytes() const noexcept { return words_.size() * 8 + 4; }

  std::string ToString() const {
    std::string s = "bits[" + std::to_string(nbits_) + ";{";
    bool first = true;
    for (std::size_t i = 0; i < nbits_; ++i) {
      if (Test(i)) {
        if (!first) s += ',';
        s += std::to_string(i);
        first = false;
      }
    }
    s += "}]";
    return s;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nw::astrolabe
