// Zone naming. A zone is identified by a slash path, e.g. "/", "/usa",
// "/usa/ithaca", "/usa/ithaca/node7". The paper (§3) models zones as a
// DNS-like hierarchy of tables; every agent owns one leaf zone.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

namespace nw::astrolabe {

class ZonePath {
 public:
  ZonePath() = default;  // root "/"

  // Parses "/a/b/c". Accepts "/" for root. Components must be non-empty
  // and slash-free.
  static ZonePath Parse(std::string_view path) {
    ZonePath z;
    assert(!path.empty() && path.front() == '/');
    std::size_t pos = 1;
    while (pos < path.size()) {
      std::size_t next = path.find('/', pos);
      if (next == std::string_view::npos) next = path.size();
      assert(next > pos);
      z.components_.emplace_back(path.substr(pos, next - pos));
      pos = next + 1;
    }
    return z;
  }

  static ZonePath Root() { return ZonePath(); }

  bool IsRoot() const noexcept { return components_.empty(); }
  std::size_t Depth() const noexcept { return components_.size(); }

  const std::string& Component(std::size_t i) const {
    assert(i < components_.size());
    return components_[i];
  }

  const std::string& Leaf() const {
    assert(!components_.empty());
    return components_.back();
  }

  ZonePath Parent() const {
    assert(!IsRoot());
    ZonePath p = *this;
    p.components_.pop_back();
    return p;
  }

  ZonePath Child(std::string name) const {
    ZonePath c = *this;
    c.components_.push_back(std::move(name));
    return c;
  }

  // The prefix of this path with `depth` components (depth <= Depth()).
  ZonePath Prefix(std::size_t depth) const {
    assert(depth <= Depth());
    ZonePath p;
    p.components_.assign(components_.begin(),
                         components_.begin() + static_cast<long>(depth));
    return p;
  }

  // True if this zone is `other` or an ancestor of `other`.
  bool IsPrefixOf(const ZonePath& other) const {
    if (Depth() > other.Depth()) return false;
    for (std::size_t i = 0; i < Depth(); ++i) {
      if (components_[i] != other.components_[i]) return false;
    }
    return true;
  }

  std::string ToString() const {
    if (components_.empty()) return "/";
    std::string s;
    for (const auto& c : components_) {
      s += '/';
      s += c;
    }
    return s;
  }

  friend bool operator==(const ZonePath& a, const ZonePath& b) {
    return a.components_ == b.components_;
  }
  friend bool operator!=(const ZonePath& a, const ZonePath& b) {
    return !(a == b);
  }

 private:
  std::vector<std::string> components_;
};

}  // namespace nw::astrolabe
