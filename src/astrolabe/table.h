// Zone tables: the "collection of hierarchical database tables" of §3.
// A Table holds one row per child zone (or per agent, at the deepest
// level). Rows carry owner versions for gossip merging and a local refresh
// time for failure detection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "astrolabe/value.h"

namespace nw::astrolabe {

// Attribute map. std::map gives deterministic iteration order, which the
// simulator relies on for replayability.
using Row = std::map<std::string, AttrValue>;

inline std::size_t RowWireBytes(const Row& row) {
  std::size_t n = 8;
  for (const auto& [k, v] : row) n += k.size() + 2 + v.WireBytes();
  return n;
}

// A versioned row as stored in a table replica.
struct RowEntry {
  Row attrs;
  // Owner-issued version; strictly increasing per row owner. Gossip keeps
  // the entry with the larger version.
  std::uint64_t version = 0;
  // Local wall-clock (sim time) when this entry last changed version; rows
  // that are not refreshed within the failure timeout are evicted.
  double last_refresh = 0;
};

class Table {
 public:
  using Map = std::map<std::string, RowEntry>;

  bool Has(const std::string& key) const { return rows_.contains(key); }

  const RowEntry* Find(const std::string& key) const {
    auto it = rows_.find(key);
    return it == rows_.end() ? nullptr : &it->second;
  }

  RowEntry& Upsert(const std::string& key) { return rows_[key]; }

  void Erase(const std::string& key) { rows_.erase(key); }

  // Merges one remote entry; returns true if it replaced/added local state.
  bool MergeEntry(const std::string& key, const RowEntry& incoming,
                  double now) {
    auto it = rows_.find(key);
    if (it == rows_.end()) {
      RowEntry e = incoming;
      e.last_refresh = now;
      rows_.emplace(key, std::move(e));
      return true;
    }
    if (incoming.version > it->second.version) {
      it->second.attrs = incoming.attrs;
      it->second.version = incoming.version;
      it->second.last_refresh = now;
      return true;
    }
    return false;
  }

  // Drops rows whose last refresh is older than `cutoff`, except `keep`
  // (the caller's own row, which it alone refreshes).
  std::size_t ExpireOlderThan(double cutoff, const std::string& keep) {
    std::size_t evicted = 0;
    for (auto it = rows_.begin(); it != rows_.end();) {
      if (it->first != keep && it->second.last_refresh < cutoff) {
        it = rows_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    return evicted;
  }

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }
  Map::const_iterator begin() const { return rows_.begin(); }
  Map::const_iterator end() const { return rows_.end(); }

  std::size_t WireBytes() const {
    std::size_t n = 8;
    for (const auto& [k, e] : rows_) n += k.size() + 10 + RowWireBytes(e.attrs);
    return n;
  }

 private:
  Map rows_;
};

}  // namespace nw::astrolabe
