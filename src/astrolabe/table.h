// Zone tables: the "collection of hierarchical database tables" of §3.
// A Table holds one row per child zone (or per agent, at the deepest
// level). Rows carry owner versions for gossip merging and a local refresh
// time for failure detection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "astrolabe/value.h"

namespace nw::astrolabe {

// Attribute map. std::map gives deterministic iteration order, which the
// simulator relies on for replayability.
using Row = std::map<std::string, AttrValue>;

inline std::size_t RowWireBytes(const Row& row) {
  std::size_t n = 8;
  for (const auto& [k, v] : row) n += k.size() + 2 + v.WireBytes();
  return n;
}

// Compact summary of a replica for digest-first anti-entropy (wire format
// v2, PROTOCOLS.md): per row, the held version and the version at which
// its content last changed. Versions are owner-issued and totally ordered,
// so two replicas can reconcile from the digest alone — rows with equal
// versions are identical and never re-sent, and a matching content_version
// proves the receiver's row body is current (only the heartbeat differs).
struct DigestEntry {
  std::uint64_t version = 0;
  std::uint64_t content_version = 0;
};
using TableDigest = std::map<std::string, DigestEntry>;

inline std::size_t DigestWireBytes(const TableDigest& digest) {
  std::size_t n = 8;
  for (const auto& [k, v] : digest) n += k.size() + 18;  // key + 2 u64 + len
  return n;
}

// A versioned row as stored in a table replica.
struct RowEntry {
  Row attrs;
  // Owner-issued version; strictly increasing per row owner. Gossip keeps
  // the entry with the larger version. The owner re-issues it every round
  // even when nothing changed — the version is also the liveness heartbeat
  // the failure detector watches.
  std::uint64_t version = 0;
  // The version at which `attrs` last actually changed (always <= version).
  // A replica whose version is >= the owner's content_version holds the
  // current attributes; only the heartbeat needs forwarding to it, not the
  // row body (RowRefresh below).
  std::uint64_t content_version = 0;
  // Local wall-clock (sim time) when this entry last changed version; rows
  // that are not refreshed within the failure timeout are evicted.
  double last_refresh = 0;
};

// Heartbeat-only update for a row whose content the receiver already
// holds: advances version/last_refresh without shipping the attributes.
// ~20 bytes on the wire versus a full row body.
struct RowRefresh {
  std::string key;
  std::uint64_t version = 0;
  std::uint64_t content_version = 0;
};

inline std::size_t RefreshWireBytes(const RowRefresh& r) {
  return r.key.size() + 18;  // key + two u64 + length
}

class Table {
 public:
  using Map = std::map<std::string, RowEntry>;

  bool Has(const std::string& key) const { return rows_.contains(key); }

  const RowEntry* Find(const std::string& key) const {
    auto it = rows_.find(key);
    return it == rows_.end() ? nullptr : &it->second;
  }

  // Hands out a mutable row, creating it if absent. Conservatively bumps
  // the content epoch — the caller gets write access to the row body. A
  // heartbeat-only reissue must use Refresh() instead so it stays
  // epoch-neutral.
  RowEntry& Upsert(const std::string& key) {
    ++content_epoch_;
    return rows_[key];
  }

  // Heartbeat-only reissue of an existing row: the version (liveness) and
  // refresh clock advance, the body — and therefore the content epoch —
  // stay untouched. No-op if the row is absent.
  void Refresh(const std::string& key, std::uint64_t version, double now) {
    auto it = rows_.find(key);
    if (it == rows_.end()) return;
    it->second.version = version;
    it->second.last_refresh = now;
  }

  void Erase(const std::string& key) {
    if (rows_.erase(key) > 0) ++content_epoch_;
  }

  // Merges one remote entry; returns true if it replaced/added local state.
  bool MergeEntry(const std::string& key, const RowEntry& incoming,
                  double now) {
    auto it = rows_.find(key);
    if (it == rows_.end()) {
      RowEntry e = incoming;
      e.last_refresh = now;
      rows_.emplace(key, std::move(e));
      ++content_epoch_;
      return true;
    }
    if (incoming.version > it->second.version) {
      // Owners stamp a globally unique content_version per body (the node
      // id is embedded in the version), so an equal content_version proves
      // the incoming body is byte-identical to ours: only the heartbeat
      // advanced, the stored attributes and the content epoch stay put.
      // 0 means un-stamped (hand-built rows): no proof, copy conservatively.
      if (incoming.content_version == 0 ||
          incoming.content_version != it->second.content_version) {
        it->second.attrs = incoming.attrs;
        ++content_epoch_;
      }
      it->second.version = incoming.version;
      it->second.content_version = incoming.content_version;
      it->second.last_refresh = now;
      return true;
    }
    return false;
  }

  // Applies a heartbeat-only refresh. Only valid when the local copy
  // already reflects the exact content the heartbeat vouches for — same
  // content_version (same author stream) and version at least as new as
  // the content change; otherwise it is dropped and the digest exchange
  // ships the full row instead. A refresh never creates a row, so it
  // cannot resurrect an expired one.
  bool MergeRefresh(const RowRefresh& refresh, double now) {
    auto it = rows_.find(refresh.key);
    if (it == rows_.end()) return false;
    RowEntry& mine = it->second;
    if (refresh.version <= mine.version) return false;
    if (mine.content_version != refresh.content_version) return false;
    mine.version = refresh.version;
    mine.last_refresh = now;
    return true;
  }

  // Drops rows whose last refresh is older than `cutoff`, except `keep`
  // (the caller's own row, which it alone refreshes).
  std::size_t ExpireOlderThan(double cutoff, const std::string& keep) {
    std::size_t evicted = 0;
    for (auto it = rows_.begin(); it != rows_.end();) {
      if (it->first != keep && it->second.last_refresh < cutoff) {
        it = rows_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    if (evicted > 0) ++content_epoch_;
    return evicted;
  }

  // ---- digest-first reconciliation ------------------------------------
  TableDigest MakeDigest() const {
    TableDigest digest;
    for (const auto& [key, entry] : rows_) {
      digest.emplace(key, DigestEntry{entry.version, entry.content_version});
    }
    return digest;
  }

  // What the digest's sender needs from this replica, split by cost:
  // full row bodies for entries it is missing or whose content changed
  // past its version, and heartbeat-only refreshes for entries where it
  // holds the current content but an older version. Equal versions mean
  // the identical owner-issued row — never re-sent at all.
  struct Delta {
    std::vector<std::pair<std::string, RowEntry>> rows;
    std::vector<RowRefresh> refreshes;
  };
  // Restriction of a peer's full inventory digest to what we actually need
  // pushed back: rows it holds newer than ours (with our versions, so it
  // can choose refresh vs body) and rows it holds that we lack at all
  // (version 0 = explicit request). Rows where we are ahead or tied buy
  // the peer nothing and are omitted — this is what keeps the reply leg's
  // digest O(divergence) instead of O(table).
  TableDigest RequestsAgainst(const TableDigest& inventory) const {
    TableDigest requests;
    for (const auto& [key, theirs] : inventory) {
      auto it = rows_.find(key);
      if (it == rows_.end()) {
        requests.emplace(key, DigestEntry{0, 0});
      } else if (theirs.version > it->second.version) {
        requests.emplace(key, DigestEntry{it->second.version,
                                          it->second.content_version});
      }
    }
    return requests;
  }

  Delta DeltaAgainst(const TableDigest& digest) const {
    Delta out;
    for (const auto& [key, entry] : rows_) {
      auto it = digest.find(key);
      if (it == digest.end()) {
        out.rows.emplace_back(key, entry);
      } else if (entry.version > it->second.version) {
        // Heartbeat-only if the peer provably holds the current content:
        // it has seen past the content change AND its row came from the
        // same author stream (content_version matches — two concurrent
        // authors of a key, e.g. during an election flap, each stamp their
        // own content_version, so a mismatch means the bodies may differ).
        if (it->second.version >= entry.content_version &&
            it->second.content_version == entry.content_version) {
          out.refreshes.push_back(
              RowRefresh{key, entry.version, entry.content_version});
        } else {
          out.rows.emplace_back(key, entry);
        }
      }
    }
    return out;
  }

  // Delta for an explicit request list (a RequestsAgainst digest): only the
  // requested keys are considered — keys absent from the list are ones the
  // requester is already current on (or ahead of), never shipped.
  Delta DeltaForRequests(const TableDigest& requests) const {
    Delta out;
    for (const auto& [key, want] : requests) {
      auto it = rows_.find(key);
      if (it == rows_.end()) continue;
      const RowEntry& entry = it->second;
      if (entry.version <= want.version) continue;
      if (want.version >= entry.content_version &&
          want.content_version == entry.content_version) {
        out.refreshes.push_back(
            RowRefresh{key, entry.version, entry.content_version});
      } else {
        out.rows.emplace_back(key, entry);
      }
    }
    return out;
  }

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }
  Map::const_iterator begin() const { return rows_.begin(); }
  Map::const_iterator end() const { return rows_.end(); }

  // Monotone counter of content-changing mutations (DESIGN.md §11): row
  // bodies written (Upsert, MergeEntry with a different content stream)
  // and rows removed (Erase, expiry). Heartbeat-only updates — Refresh,
  // MergeRefresh, and same-content MergeEntry version advances — leave it
  // untouched. An unchanged epoch proves the table's aggregate-relevant
  // content is unchanged, which is what lets the agent's dirty-tracked
  // recomputation skip the level entirely. Copied by the copy constructor
  // (a COW clone holds the same content), reset only by constructing a
  // fresh Table.
  std::uint64_t content_epoch() const noexcept { return content_epoch_; }

  std::size_t WireBytes() const {
    std::size_t n = 8;
    for (const auto& [k, e] : rows_) n += k.size() + 10 + RowWireBytes(e.attrs);
    return n;
  }

 private:
  Map rows_;
  std::uint64_t content_epoch_ = 0;
};

}  // namespace nw::astrolabe
