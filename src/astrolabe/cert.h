// Simulated certificate infrastructure (paper §3: "secure, through
// pervasive use of certificates"; §8: publisher authentication).
//
// The *structure* of a PKI is implemented faithfully — key pairs, signed
// certificates, issuance chains (root authority -> zone authority ->
// agent / aggregation-function certificates), expiry, and validation on
// receipt. The cryptographic primitive is a keyed-hash simulation (this
// repository is built offline, without a crypto library): signatures detect
// any tampering with certified content and any issuer whose public key is
// not in the trust chain, which is exactly what the reproduced experiments
// exercise. It is NOT secure against an adversary who knows the scheme.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"

namespace nw::astrolabe {

using PublicKey = std::uint64_t;
using PrivateKey = std::uint64_t;
using Signature = std::uint64_t;

struct KeyPair {
  PublicKey pub = 0;
  PrivateKey priv = 0;
};

KeyPair GenerateKeyPair(util::DeterministicRng& rng);

// Derives the public key of a private key (the simulation's one-way map).
PublicKey DerivePublic(PrivateKey priv);

Signature SignDigest(PrivateKey priv, std::uint64_t digest);
bool VerifyDigest(PublicKey pub, std::uint64_t digest, Signature sig);

enum class CertKind {
  kZoneAuthority,  // names a zone's signing key; issued by the root
  kAgent,          // admits an agent (with key) into a zone; issued by zone
  kFunction,       // carries aggregation-function code; issued by zone
  kPublisher,      // authorizes a publisher identity; issued by zone
};

struct Certificate {
  CertKind kind = CertKind::kAgent;
  std::string subject;                       // agent/zone/function name
  PublicKey subject_key = 0;                 // key being certified (if any)
  std::map<std::string, std::string> claims; // e.g. {"code": "...SQL..."}
  double not_before = 0;
  double not_after = 0;
  PublicKey issuer = 0;
  Signature signature = 0;

  // Canonical digest over every field except the signature.
  std::uint64_t Digest() const;

  // Signature check only (no chain walk, no expiry).
  bool VerifySignature() const;

  // Approximate serialized size for bandwidth accounting.
  std::size_t WireBytes() const;
};

const char* CertKindName(CertKind k) noexcept;

// Issues and validates certificates for one authority key.
class Authority {
 public:
  Authority(std::string name, KeyPair keys)
      : name_(std::move(name)), keys_(keys) {}

  const std::string& name() const noexcept { return name_; }
  PublicKey public_key() const noexcept { return keys_.pub; }

  Certificate Issue(CertKind kind, std::string subject, PublicKey subject_key,
                    std::map<std::string, std::string> claims,
                    double not_before, double not_after) const;

 private:
  std::string name_;
  KeyPair keys_;
};

// Validation failure reasons, surfaced so tests can assert the exact cause.
enum class CertStatus {
  kOk,
  kBadSignature,
  kExpired,
  kNotYetValid,
  kUntrustedIssuer,
};

const char* CertStatusName(CertStatus s) noexcept;

// Validates `cert` at time `now` against a trust set: either the cert is
// signed directly by `root`, or by an issuer whose own kZoneAuthority
// certificate (in `intermediates`) chains to `root`.
CertStatus ValidateChain(const Certificate& cert,
                         const std::vector<Certificate>& intermediates,
                         PublicKey root, double now);

}  // namespace nw::astrolabe
