// AttrValue: the dynamically typed value stored in Astrolabe MIB attributes
// and produced by aggregation functions. Paper §3: rows hold "a time-varying
// list of attributes exported by the machine ... containing any sort of
// value".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "astrolabe/bitvector.h"

namespace nw::astrolabe {

class AttrValue;
using ValueList = std::vector<AttrValue>;

class AttrValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kBits, kList };

  AttrValue() = default;
  AttrValue(bool b) : v_(b) {}                       // NOLINT(runtime/explicit)
  AttrValue(std::int64_t i) : v_(i) {}               // NOLINT(runtime/explicit)
  AttrValue(int i) : v_(std::int64_t{i}) {}          // NOLINT(runtime/explicit)
  AttrValue(double d) : v_(d) {}                     // NOLINT(runtime/explicit)
  AttrValue(std::string s) : v_(std::move(s)) {}     // NOLINT(runtime/explicit)
  AttrValue(const char* s) : v_(std::string(s)) {}   // NOLINT(runtime/explicit)
  AttrValue(BitVector b) : v_(std::move(b)) {}       // NOLINT(runtime/explicit)
  AttrValue(ValueList l) : v_(std::move(l)) {}       // NOLINT(runtime/explicit)

  Type type() const noexcept { return static_cast<Type>(v_.index()); }
  bool IsNull() const noexcept { return type() == Type::kNull; }
  bool IsNumeric() const noexcept {
    return type() == Type::kInt || type() == Type::kDouble;
  }

  bool AsBool() const;
  std::int64_t AsInt() const;
  double AsDouble() const;           // accepts int or double
  const std::string& AsString() const;
  const BitVector& AsBits() const;
  const ValueList& AsList() const;
  BitVector& MutableBits();

  // Total order within same type; numerics compare cross int/double.
  // Throws TypeError for incomparable types.
  int Compare(const AttrValue& other) const;

  bool Equals(const AttrValue& other) const;

  std::string ToString() const;

  // Approximate serialized size, used by the simulator's bandwidth model.
  std::size_t WireBytes() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               BitVector, ValueList>
      v_;
};

// Raised on attribute type mismatches during aggregation evaluation.
class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

const char* TypeName(AttrValue::Type t) noexcept;

}  // namespace nw::astrolabe
