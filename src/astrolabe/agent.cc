#include "astrolabe/agent.h"

#include <algorithm>
#include <cassert>

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "util/log.h"

namespace nw::astrolabe {

namespace {

constexpr const char* kGossipType = "astro.gossip";
constexpr const char* kGossipReplyType = "astro.gossip_reply";
constexpr const char* kGossipFinalType = "astro.gossip_final";

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first || !ia->second.Equals(ib->second)) return false;
  }
  return true;
}

}  // namespace

const char* GossipWireModeName(GossipWireMode mode) noexcept {
  switch (mode) {
    case GossipWireMode::kFull:
      return "full";
    case GossipWireMode::kDelta:
      return "delta";
  }
  return "?";
}

std::optional<GossipWireMode> GossipWireModeFromName(std::string_view name) {
  if (name == "full") return GossipWireMode::kFull;
  if (name == "delta") return GossipWireMode::kDelta;
  return std::nullopt;
}

const char* DetectorModeName(DetectorMode mode) noexcept {
  switch (mode) {
    case DetectorMode::kFixed:
      return "fixed";
    case DetectorMode::kPhiAccrual:
      return "phi";
  }
  return "?";
}

std::optional<DetectorMode> DetectorModeFromName(std::string_view name) {
  if (name == "fixed") return DetectorMode::kFixed;
  if (name == "phi") return DetectorMode::kPhiAccrual;
  return std::nullopt;
}

std::string DefaultCoreFunctionCode(std::int64_t contacts_per_zone) {
  // Elect the least-loaded representatives (paper §5: selection "combines
  // the local knowledge of availability ... the load on those paths and the
  // load on each node"), count members, and expose mean load upward.
  return "SELECT TOP(" + std::to_string(contacts_per_zone) +
         ", contacts ORDER BY load ASC) AS contacts, "
         "SUM(nmembers) AS nmembers, AVG(load) AS load";
}

std::size_t Agent::GossipPayload::DigestBytes() const {
  std::size_t n = 8 * cert_ids.size();
  for (const auto& part : digests) {
    n += part.zone.size() + 2 + DigestWireBytes(part.rows);
  }
  return n;
}

std::size_t Agent::GossipPayload::DeltaBytes() const {
  std::size_t n = 0;
  for (const auto& part : deltas) {
    n += part.zone.size() + 10;
    for (const auto& [key, entry] : part.rows) {
      n += key.size() + 10 + RowWireBytes(entry.attrs);
    }
    for (const auto& refresh : part.refreshes) n += RefreshWireBytes(refresh);
  }
  if (tables.empty()) {  // delta-mode message: cert bodies ride the delta
    for (const auto& cert : certs) n += cert.WireBytes();
  }
  return n;
}

std::size_t Agent::GossipPayload::FullBytes() const {
  std::size_t n = 0;
  for (const auto& snap : tables) n += snap.table->WireBytes();
  if (!tables.empty()) {
    for (const auto& cert : certs) n += cert.WireBytes();
  }
  return n;
}

std::size_t Agent::GossipPayload::WireBytes() const {
  return zone.size() + 8 + DigestBytes() + DeltaBytes() + FullBytes();
}

obs::MetricsRegistry* Agent::Metrics() {
  auto* net = attached_network();
  auto* m = net != nullptr ? net->metrics() : nullptr;
  if (m != nullptr && !obs_.init) {
    obs_.rounds = m->Counter("astro.agent.gossip_rounds");
    obs_.exchanges = m->Counter("astro.agent.exchanges_sent");
    obs_.rows_merged = m->Counter("astro.agent.rows_merged");
    obs_.rows_expired = m->Counter("astro.agent.rows_expired");
    obs_.recomputes = m->Counter("astro.agent.aggregate_recomputes");
    obs_.recompute_skips = m->Counter("astro.agent.recompute_skips");
    obs_.agg_evals = m->Counter("astro.agent.agg_evals");
    obs_.cert_rejects = m->Counter("astro.agent.certs_rejected");
    obs_.elections = m->Counter("astro.agent.representative_changes");
    obs_.integrity_drops = m->Counter("astro.agent.integrity_drops");
    obs_.digest_bytes = m->Counter("astrolabe.gossip.digest_bytes");
    obs_.delta_bytes = m->Counter("astrolabe.gossip.delta_bytes");
    obs_.full_bytes = m->Counter("astrolabe.gossip.full_bytes");
    obs_.rows_sent = m->Counter("astrolabe.gossip.rows_sent");
    obs_.rows_suppressed = m->Counter("astrolabe.gossip.rows_suppressed");
    obs_.certs_sent = m->Counter("astrolabe.gossip.certs_sent");
    obs_.init = true;
  }
  return m;
}

obs::EventTracer* Agent::Tracer() const {
  auto* net = attached_network();
  return net != nullptr ? net->tracer() : nullptr;
}

void Agent::NoteCertReject(const std::string& subject) {
  ++stats_.certs_rejected;
  if (auto* m = Metrics()) m->Add(obs_.cert_rejects, id());
  if (auto* t = Tracer()) {
    t->Record(alive() ? Now() : 0.0, id(), obs::EventCategory::kCert,
              "cert.reject", 0, 0, subject);
  }
}

void Agent::TraceElectionChanges() {
  std::uint32_t mask = 0;
  for (std::size_t level = 0; level < Depth(); ++level) {
    if (RepresentsAt(level)) mask |= 1u << level;
  }
  if (rep_mask_ != kNoRepMask && mask != rep_mask_) {
    if (auto* m = Metrics()) m->Add(obs_.elections, id());
    if (auto* t = Tracer()) {
      t->Record(Now(), id(), obs::EventCategory::kElection, "election.change",
                mask, rep_mask_);
    }
  }
  rep_mask_ = mask;
}

Agent::Agent(AgentConfig config)
    : config_(std::move(config)), detector_(config_.phi) {
  assert(config_.path.Depth() >= 1);
  tables_.reserve(Depth());
  for (std::size_t i = 0; i < Depth(); ++i) {
    tables_.push_back(std::make_shared<Table>());
  }
  agg_memo_.resize(Depth());
}

Agent::~Agent() = default;

void Agent::Start() {
  assert(alive() && "add the agent to a network before Start()");
  started_ = true;
  if (!mib_.contains(kAttrContacts)) {
    mib_[kAttrContacts] = ValueList{AttrValue(std::int64_t{id()})};
  }
  if (!mib_.contains(kAttrMembers)) mib_[kAttrMembers] = std::int64_t{1};
  if (!mib_.contains(kAttrLoad)) mib_[kAttrLoad] = 0.0;
  RefreshOwnRow();
  RecomputeAggregates();
  // Desynchronize the first round across agents.
  Schedule(config_.gossip_period * Rng().NextDouble(), [this] { GossipRound(); });
}

void Agent::OnRestart() {
  // Volatile replicas are lost with the process; re-join from seeds.
  for (auto& t : tables_) t = std::make_shared<Table>();
  // Fresh tables restart their content epochs, so every memo key would
  // alias: drop the memos wholesale.
  for (auto& memo : agg_memo_) memo = AggMemo{};
  peer_known_certs_.clear();  // also process memory
  detector_.Clear();          // arrival histories die with the process
  leaf_round_ = 0;
  leaf_cursor_ = 0;
  rep_mask_ = kNoRepMask;  // representation re-baselines with the new state
  if (started_) {
    RefreshOwnRow();
    RecomputeAggregates();
    Schedule(config_.gossip_period * Rng().NextDouble(),
             [this] { GossipRound(); });
  }
  for (const auto& hook : restart_hooks_) hook();
}

void Agent::SetLocalAttr(const std::string& name, AttrValue value) {
  mib_[name] = std::move(value);
  if (started_ && alive()) {
    RefreshOwnRow();
    RecomputeAggregates();
  }
}

void Agent::RemoveLocalAttr(const std::string& name) {
  mib_.erase(name);
  if (started_ && alive()) {
    RefreshOwnRow();
    RecomputeAggregates();
  }
}

bool Agent::InstallFunction(const Certificate& cert) {
  if (cert.kind != CertKind::kFunction) return false;
  const double now = alive() ? Now() : 0.0;
  if (ValidateChain(cert, zone_authorities_, config_.trust_root, now) !=
      CertStatus::kOk) {
    NoteCertReject(cert.subject);
    return false;
  }
  auto code_it = cert.claims.find("code");
  if (code_it == cert.claims.end()) {
    NoteCertReject(cert.subject);
    return false;
  }
  // Version gate: only upgrade.
  std::int64_t version = 0;
  if (auto v = cert.claims.find("version"); v != cert.claims.end()) {
    version = std::atoll(v->second.c_str());
  }
  auto existing = functions_.find(cert.subject);
  if (existing != functions_.end()) {
    std::int64_t have = 0;
    if (auto v = existing->second.cert.claims.find("version");
        v != existing->second.cert.claims.end()) {
      have = std::atoll(v->second.c_str());
    }
    if (version <= have) return false;  // not newer: ignore silently
  }
  sql::Query query;
  try {
    query = sql::ParseQuery(code_it->second);
  } catch (const sql::ParseError& e) {
    util::LogWarn("agent %s: rejecting unparsable function '%s': %s",
                  path().ToString().c_str(), cert.subject.c_str(), e.what());
    NoteCertReject(cert.subject);
    return false;
  }
  functions_[cert.subject] =
      InstalledFunction{cert, sql::CompiledQuery::Compile(std::move(query))};
  ++fn_generation_;  // part of every memo key: invalidates all levels
  if (started_ && alive()) RecomputeAggregates();
  return true;
}

bool Agent::AddZoneAuthority(const Certificate& cert) {
  if (cert.kind != CertKind::kZoneAuthority) return false;
  const double now = alive() ? Now() : 0.0;
  if (ValidateChain(cert, {}, config_.trust_root, now) != CertStatus::kOk) {
    NoteCertReject(cert.subject);
    return false;
  }
  for (const auto& existing : zone_authorities_) {
    if (existing.subject_key == cert.subject_key) return true;
  }
  zone_authorities_.push_back(cert);
  return true;
}

std::vector<std::string> Agent::InstalledFunctionNames() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

Row Agent::ZoneSummary(std::size_t level) const {
  assert(level < Depth());
  // Serve the recomputation memo when it provably matches the live table.
  const AggMemo& memo = agg_memo_[level];
  if (!config_.force_full_recompute && memo.valid &&
      memo.fn_generation == fn_generation_ &&
      memo.input_epoch == tables_[level]->content_epoch()) {
    return memo.agg;
  }
  return AggregateOf(*tables_[level]);
}

Row Agent::AggregateOf(const Table& table) const {
  Row out;
  // Later functions override earlier ones on output-name collisions, same
  // as the pre-compiled insert_or_assign merge did.
  for (const auto& [name, fn] : functions_) fn.plan.EvalInto(table, out);
  return out;
}

std::vector<sim::NodeId> Agent::ContactsOf(std::size_t level,
                                           const std::string& child_key) const {
  std::vector<sim::NodeId> out;
  if (level >= Depth()) return out;
  const RowEntry* entry = tables_[level]->Find(child_key);
  if (entry == nullptr) return out;
  auto it = entry->attrs.find(kAttrContacts);
  if (it == entry->attrs.end() ||
      it->second.type() != AttrValue::Type::kList) {
    return out;
  }
  for (const AttrValue& v : it->second.AsList()) {
    if (v.type() == AttrValue::Type::kInt) {
      out.push_back(static_cast<sim::NodeId>(v.AsInt()));
    }
  }
  return out;
}

bool Agent::RepresentsAt(std::size_t level) const {
  assert(level < Depth());
  if (level + 1 == Depth()) return true;  // leaf table: every member gossips
  const auto contacts = ContactsOf(level, config_.path.Component(level));
  return std::find(contacts.begin(), contacts.end(), id()) != contacts.end();
}

void Agent::RegisterHandler(const std::string& type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void Agent::WarmStartTable(std::size_t level, std::shared_ptr<Table> table) {
  assert(level < Depth());
  tables_[level] = std::move(table);
  // The replaced table has its own epoch counter; a stale memo comparing
  // against it would alias. Rare (experiment setup only): drop them all.
  for (auto& memo : agg_memo_) memo = AggMemo{};
}

void Agent::OnMessage(const sim::Message& msg) {
  // Envelope verification (wire-format v3) guards every protocol riding on
  // the agent — gossip, mc.*, pub/sub, news — so a corrupted frame becomes
  // a counted loss instead of poisoning MIBs or caches.
  if (!sim::IntegrityOk(msg)) {
    ++stats_.integrity_drops;
    if (auto* m = Metrics()) m->Add(obs_.integrity_drops, id());
    if (auto* t = Tracer();
        t != nullptr && t->Enabled(obs::EventCategory::kIntegrity)) {
      t->Record(Now(), id(), obs::EventCategory::kIntegrity, "integrity.drop",
                msg.from, msg.wire_bytes, msg.type);
    }
    return;
  }
  if (msg.type == kGossipType) {
    HandleGossipInit(msg);
    return;
  }
  if (msg.type == kGossipReplyType) {
    HandleGossipReply(msg);
    return;
  }
  if (msg.type == kGossipFinalType) {
    HandleGossipFinal(msg);
    return;
  }
  auto it = handlers_.find(msg.type);
  if (it != handlers_.end()) {
    it->second(msg);
  } else {
    util::LogWarn("agent %s: dropping message of unknown type '%s'",
                  path().ToString().c_str(), msg.type.c_str());
  }
}

namespace {
// Row versions encode the owner's issue time (milliseconds, high bits) plus
// a node tiebreak, so any replica can judge how old a row is from the
// version alone.
std::uint64_t EncodeVersion(double now, sim::NodeId id) {
  return (static_cast<std::uint64_t>(now * 1000.0) << 10) |
         (static_cast<std::uint64_t>(id) & 1023u);
}
double VersionTime(std::uint64_t version) {
  return static_cast<double>(version >> 10) / 1000.0;
}
// Detector key of a monitored row: level-qualified so same-named children
// of different zones track independently.
std::string DetectorKey(std::size_t level, const std::string& key) {
  return std::to_string(level) + "/" + key;
}
}  // namespace

std::uint64_t Agent::NextVersion() {
  const double now = alive() ? Now() : 0.0;
  version_counter_ = std::max(version_counter_ + 1, EncodeVersion(now, id()));
  return version_counter_;
}

Table& Agent::MutableTableAt(std::size_t level) {
  assert(level < Depth());
  // Copy-on-write: clone if this replica is shared (warm start).
  if (tables_[level].use_count() > 1) {
    tables_[level] = std::make_shared<Table>(*tables_[level]);
  }
  return *tables_[level];
}

void Agent::RefreshOwnRow() {
  const double now = alive() ? Now() : 0.0;
  const std::string& key = config_.path.Leaf();
  // Every round re-versions the row (the version doubles as the liveness
  // heartbeat), but content_version — and the leaf table's content epoch —
  // only move when the attributes really change: a pure heartbeat reissue
  // must not dirty the aggregation memo (DESIGN.md §11).
  const RowEntry* current = tables_[Depth() - 1]->Find(key);
  const bool changed = current == nullptr || current->version == 0 ||
                       !RowsEqual(current->attrs, mib_);
  Table& leaf_table = MutableTableAt(Depth() - 1);
  if (changed) {
    RowEntry& entry = leaf_table.Upsert(key);
    entry.attrs = mib_;
    entry.version = NextVersion();
    entry.content_version = entry.version;
    entry.last_refresh = now;
  } else {
    leaf_table.Refresh(key, NextVersion(), now);
  }
}

void Agent::RecomputeAggregates() {
  ++agg_stats_.recompute_calls;
  if (auto* m = Metrics()) m->Add(obs_.recomputes, id());
  const double now = alive() ? Now() : 0.0;
  const bool force = config_.force_full_recompute;
  auto* tracer = Tracer();
  const bool trace = tracer != nullptr &&
                     tracer->Enabled(obs::EventCategory::kAggregation);
  // Bottom-up: the summary of the zone at `level` components feeds the
  // table one level up, like a spreadsheet recomputation (paper §3) — but
  // dirty-tracked (DESIGN.md §11): a level whose input table's content
  // epoch is unchanged since the memoized evaluation is served from the
  // memo, and an unchanged parent epoch on top of that proves the written
  // row still equals the cached aggregate, skipping the RowsEqual compare
  // as well. Either way the write decisions — and hence the version
  // sequence, the row bytes, and the gossip — are bit-identical to
  // evaluating every level every time (force_full_recompute does exactly
  // that; tests/aggregation_cache_test.cc pins the equivalence).
  for (std::size_t level = Depth() - 1; level >= 1; --level) {
    AggMemo& memo = agg_memo_[level];
    const std::uint64_t input_epoch = tables_[level]->content_epoch();
    const bool hit = !force && memo.valid &&
                     memo.fn_generation == fn_generation_ &&
                     memo.input_epoch == input_epoch;
    if (hit) {
      ++agg_stats_.cache_hits;
      if (auto* m = Metrics()) m->Add(obs_.recompute_skips, id());
      if (trace) {
        tracer->Record(now, id(), obs::EventCategory::kAggregation,
                       "agg.cache_hit", level, input_epoch);
      }
    } else {
      memo.agg = AggregateOf(*tables_[level]);
      memo.input_epoch = input_epoch;
      memo.fn_generation = fn_generation_;
      memo.valid = true;
      ++agg_stats_.levels_evaluated;
      if (auto* m = Metrics()) m->Add(obs_.agg_evals, id());
      if (trace) {
        tracer->Record(now, id(), obs::EventCategory::kAggregation,
                       "agg.eval", level, input_epoch);
      }
    }
    const std::string& key = config_.path.Component(level - 1);
    const RowEntry* current = tables_[level - 1]->Find(key);
    bool changed;
    if (hit && memo.parent_clean && current != nullptr &&
        memo.parent_epoch == tables_[level - 1]->content_epoch()) {
      // Same aggregate as the memoized pass and no content-changing
      // mutation has touched the parent table since we last saw the row
      // equal to it: the compare outcome is forced.
      changed = false;
      ++agg_stats_.compare_skips;
    } else {
      changed = current == nullptr || !RowsEqual(current->attrs, memo.agg);
    }
    const bool stale =
        current != nullptr &&
        now - current->last_refresh >= config_.gossip_period * 0.5;
    if (changed || stale) {
      Table& parent = MutableTableAt(level - 1);
      if (changed) {
        RowEntry& entry = parent.Upsert(key);
        entry.attrs = memo.agg;
        entry.version = NextVersion();
        entry.content_version = entry.version;
        entry.last_refresh = now;
      } else {
        // Stale-only reissue: a pure heartbeat — the row body, its
        // content_version, and the parent's content epoch stay untouched.
        parent.Refresh(key, NextVersion(), now);
      }
    }
    // In every outcome the parent row now carries (a RowsEqual match of)
    // memo.agg; remember the epoch that certifies it.
    memo.parent_clean = true;
    memo.parent_epoch = tables_[level - 1]->content_epoch();
  }
}

void Agent::ExpireRows() {
  const std::uint64_t expired_before = stats_.rows_expired;
  const double now = Now();
  const double cutoff =
      now - config_.gossip_period * config_.fail_timeout_rounds;
  if (config_.detector == DetectorMode::kFixed) {
    if (cutoff <= 0) return;
    for (std::size_t level = 0; level < Depth(); ++level) {
      const std::string& keep = config_.path.Component(level);
      // Probe on the const replica first so a converged shared table is not
      // cloned needlessly.
      bool any = false;
      for (const auto& [key, entry] : *tables_[level]) {
        if (key != keep && entry.last_refresh < cutoff) {
          any = true;
          break;
        }
      }
      if (any) {
        stats_.rows_expired +=
            MutableTableAt(level).ExpireOlderThan(cutoff, keep);
      }
    }
  } else {
    // Phi-accrual: judge each row against its own observed version-advance
    // rhythm; rows without enough samples yet fall back to the fixed rule.
    for (std::size_t level = 0; level < Depth(); ++level) {
      const std::string& keep = config_.path.Component(level);
      std::vector<std::string> doomed;  // decided on the const replica
      for (const auto& [key, entry] : *tables_[level]) {
        if (key == keep) continue;
        const std::string dkey = DetectorKey(level, key);
        bool expire;
        if (detector_.SampleCount(dkey) >= config_.phi.min_samples) {
          expire = detector_.Suspect(dkey, now, config_.gossip_period);
        } else {
          expire = cutoff > 0 && entry.last_refresh < cutoff;
        }
        if (expire) doomed.push_back(key);
      }
      if (doomed.empty()) continue;
      Table& local = MutableTableAt(level);
      for (const std::string& key : doomed) local.Erase(key);
      stats_.rows_expired += doomed.size();
      // Arrival history is kept: if the row comes back, its learned rhythm
      // still applies (and keeps adapting).
    }
  }
  const std::uint64_t expired = stats_.rows_expired - expired_before;
  if (expired > 0) {
    if (auto* m = Metrics()) m->Add(obs_.rows_expired, id(), expired);
  }
}

void Agent::GossipRound() {
  ++stats_.rounds;
  if (auto* m = Metrics()) m->Add(obs_.rounds, id());
  if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kGossip)) {
    t->Record(Now(), id(), obs::EventCategory::kGossip, "gossip.round",
              stats_.rounds);
  }
  RefreshOwnRow();
  RecomputeAggregates();
  ExpireRows();
  TraceElectionChanges();
  for (std::size_t level = Depth(); level-- > 0;) {
    if (!RepresentsAt(level)) continue;
    DoGossipAt(level);
  }
  const double jitter = 0.9 + 0.2 * Rng().NextDouble();
  Schedule(config_.gossip_period * jitter, [this] { GossipRound(); });
}

void Agent::DoGossipAt(std::size_t level) {
  // Candidate partners: contacts of sibling rows in this table.
  std::vector<sim::NodeId> candidates;
  const std::string& own_key = config_.path.Component(level);
  for (const auto& [key, entry] : *tables_[level]) {
    if (key == own_key) continue;
    auto it = entry.attrs.find(kAttrContacts);
    if (it == entry.attrs.end() ||
        it->second.type() != AttrValue::Type::kList) {
      continue;
    }
    for (const AttrValue& v : it->second.AsList()) {
      if (v.type() == AttrValue::Type::kInt) {
        candidates.push_back(static_cast<sim::NodeId>(v.AsInt()));
      }
    }
  }
  sim::NodeId partner = sim::kInvalidNode;
  if (level + 1 == Depth()) {
    // Leaf zones are the failure-detection domain: a sibling's row that goes
    // `fail_timeout_rounds` without a fresher version is evicted and the
    // membership count dips until it is re-learned. Random partner choice
    // over siblings *and* cross-zone introducers leaves an unbounded tail on
    // that staleness, so rotate deterministically through the siblings —
    // direct anti-entropy with each one at least every |zone| rounds keeps
    // live rows clear of the timeout. Every fourth round goes to the seed
    // mix instead: introducers must stay in the rotation permanently or two
    // view-closed groups could gossip among themselves forever and never
    // merge their membership views.
    const bool seed_round = (leaf_round_++ % 4 == 3);
    if (seed_round || candidates.empty()) {
      for (sim::NodeId s : seeds_) {
        if (s != id()) candidates.push_back(s);
      }
      if (candidates.empty()) return;
      partner = candidates[Rng().NextBelow(candidates.size())];
    } else {
      partner = candidates[leaf_cursor_++ % candidates.size()];
    }
  } else {
    if (candidates.empty()) return;
    partner = candidates[Rng().NextBelow(candidates.size())];
  }
  ++stats_.exchanges_sent;
  if (auto* m = Metrics()) m->Add(obs_.exchanges, id());
  if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kGossip)) {
    t->Record(Now(), id(), obs::EventCategory::kGossip, "gossip.exchange",
              partner, level);
  }
  GossipPayload payload = config_.wire_mode == GossipWireMode::kFull
                              ? BuildFullPayload(level)
                              : BuildDigestPayload(level);
  AttachCerts(payload, partner);
  SendGossip(partner, kGossipType, std::move(payload));
}

Agent::GossipPayload Agent::BuildFullPayload(std::size_t level) const {
  GossipPayload payload;
  payload.zone = config_.path.Prefix(level).ToString();
  // Exchange every table on the common path (root .. level): this is how
  // aggregated state flows back down to the leaves.
  for (std::size_t j = 0; j <= level; ++j) {
    payload.tables.push_back(TableSnapshot{
        config_.path.Prefix(j).ToString(),
        std::make_shared<const Table>(*tables_[j])});
  }
  return payload;
}

Agent::GossipPayload Agent::BuildDigestPayload(std::size_t level) const {
  GossipPayload payload;
  payload.zone = config_.path.Prefix(level).ToString();
  for (std::size_t j = 0; j <= level; ++j) {
    payload.digests.push_back(TableDigestPart{
        config_.path.Prefix(j).ToString(), tables_[j]->MakeDigest()});
  }
  return payload;
}

Agent::GossipPayload Agent::BuildDeltaPayload(const GossipPayload& request,
                                              std::size_t level,
                                              bool attach_digests) {
  GossipPayload payload;
  payload.zone = config_.path.Prefix(level).ToString();
  for (const auto& part : request.digests) {
    const ZonePath zone = ZonePath::Parse(part.zone);
    const std::size_t j = zone.Depth();
    if (j > level) continue;
    if (!(config_.path.Prefix(j) == zone)) continue;  // not on our path
    // The reply leg answers a full inventory digest (anything the digest
    // does not mention, the initiator lacks outright); the final leg
    // answers an explicit request list (anything it does not mention, the
    // replier is already current on).
    auto delta = attach_digests ? tables_[j]->DeltaAgainst(part.rows)
                                : tables_[j]->DeltaForRequests(part.rows);
    // Suppressed = rows whose body stayed home: version ties plus the rows
    // reduced to heartbeat-only refreshes.
    stats_.rows_suppressed += tables_[j]->size() - delta.rows.size();
    if (!delta.rows.empty() || !delta.refreshes.empty()) {
      payload.deltas.push_back(TableDeltaPart{
          part.zone, std::move(delta.rows), std::move(delta.refreshes)});
    }
    if (attach_digests) {
      // What we still need pushed back, not our whole inventory — absence
      // of a key tells the initiator we are current on it.
      TableDigest requests = tables_[j]->RequestsAgainst(part.rows);
      if (!requests.empty()) {
        payload.digests.push_back(
            TableDigestPart{part.zone, std::move(requests)});
      }
    }
  }
  return payload;
}

void Agent::AttachCerts(GossipPayload& payload, sim::NodeId peer) {
  std::set<std::uint64_t>& known = peer_known_certs_[peer];
  auto offer = [&](const Certificate& cert) {
    const std::uint64_t cert_id = cert.Digest();
    payload.cert_ids.push_back(cert_id);
    // Ship the body only if the peer's last advertised inventory lacks it;
    // optimistically mark it held so the round trip does not echo it back.
    if (known.insert(cert_id).second) payload.certs.push_back(cert);
  };
  for (const auto& cert : zone_authorities_) offer(cert);
  for (const auto& [name, fn] : functions_) offer(fn.cert);
}

void Agent::NoteCertInventory(sim::NodeId peer,
                              const std::vector<std::uint64_t>& ids) {
  // The advertised inventory is authoritative: it revokes optimistic marks
  // whose cert body was lost in flight, so the body is re-sent.
  peer_known_certs_[peer] = std::set<std::uint64_t>(ids.begin(), ids.end());
}

void Agent::SendGossip(sim::NodeId to, const char* type,
                       GossipPayload payload) {
  const std::size_t digest_bytes = payload.DigestBytes();
  const std::size_t delta_bytes = payload.DeltaBytes();
  const std::size_t full_bytes = payload.FullBytes();
  std::uint64_t rows = 0;
  for (const auto& part : payload.deltas) rows += part.rows.size();
  for (const auto& snap : payload.tables) rows += snap.table->size();
  stats_.digest_bytes += digest_bytes;
  stats_.delta_bytes += delta_bytes;
  stats_.full_bytes += full_bytes;
  stats_.rows_sent += rows;
  stats_.certs_sent += payload.certs.size();
  if (auto* m = Metrics()) {
    if (digest_bytes > 0) m->Add(obs_.digest_bytes, id(), digest_bytes);
    if (delta_bytes > 0) m->Add(obs_.delta_bytes, id(), delta_bytes);
    if (full_bytes > 0) m->Add(obs_.full_bytes, id(), full_bytes);
    if (rows > 0) m->Add(obs_.rows_sent, id(), rows);
    if (!payload.certs.empty()) {
      m->Add(obs_.certs_sent, id(), payload.certs.size());
    }
  }
  if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kGossip)) {
    if (!payload.digests.empty()) {
      t->Record(Now(), id(), obs::EventCategory::kGossip, "gossip.digest", to,
                digest_bytes);
    }
    if (!payload.deltas.empty()) {
      t->Record(Now(), id(), obs::EventCategory::kGossip, "gossip.delta", to,
                rows);
    }
  }
  const std::size_t wire = payload.WireBytes();
  Send(sim::Message::Make(id(), to, type, std::move(payload), wire));
}

std::size_t Agent::CommonLevelWith(const std::string& peer_zone_text) const {
  std::size_t common = 0;
  const ZonePath peer_zone = ZonePath::Parse(peer_zone_text);
  const std::size_t max_level = std::min(peer_zone.Depth(), Depth() - 1);
  for (std::size_t j = 1; j <= max_level; ++j) {
    if (peer_zone.Prefix(j) == config_.path.Prefix(j)) {
      common = j;
    } else {
      break;
    }
  }
  return common;
}

void Agent::HandleGossipInit(const sim::Message& msg) {
  const auto& payload = msg.As<GossipPayload>();
  NoteCertInventory(msg.from, payload.cert_ids);
  MergeCerts(payload.certs);
  const std::size_t reply_level = CommonLevelWith(payload.zone);
  if (!payload.digests.empty()) {
    // Digest-first initiation (wire v2): answer with the rows the digest
    // proves the initiator is missing, plus our own digests so its final
    // push can complete the reconciliation.
    GossipPayload out =
        BuildDeltaPayload(payload, reply_level, /*attach_digests=*/true);
    AttachCerts(out, msg.from);
    SendGossip(msg.from, kGossipReplyType, std::move(out));
    return;
  }
  // Full-snapshot initiation (wire v1): merge, then answer with our view of
  // the deepest common table (push-pull).
  MergeTables(payload);
  RecomputeAggregates();
  GossipPayload out = BuildFullPayload(reply_level);
  AttachCerts(out, msg.from);
  SendGossip(msg.from, kGossipReplyType, std::move(out));
}

void Agent::HandleGossipReply(const sim::Message& msg) {
  const auto& payload = msg.As<GossipPayload>();
  NoteCertInventory(msg.from, payload.cert_ids);
  MergeCerts(payload.certs);
  if (payload.digests.empty() && payload.deltas.empty()) {
    // Full-snapshot reply: merge and the exchange is complete.
    MergeTables(payload);
    RecomputeAggregates();
    return;
  }
  // Delta reply: merge the peer's newer rows first so the final push only
  // carries rows the peer genuinely lacks (post-merge ties are suppressed).
  MergeDeltas(payload);
  RecomputeAggregates();
  const std::size_t level = CommonLevelWith(payload.zone);
  GossipPayload out =
      BuildDeltaPayload(payload, level, /*attach_digests=*/false);
  AttachCerts(out, msg.from);
  if (out.deltas.empty() && out.certs.empty()) return;  // nothing to push
  SendGossip(msg.from, kGossipFinalType, std::move(out));
}

void Agent::HandleGossipFinal(const sim::Message& msg) {
  const auto& payload = msg.As<GossipPayload>();
  NoteCertInventory(msg.from, payload.cert_ids);
  MergeCerts(payload.certs);
  MergeDeltas(payload);
  RecomputeAggregates();
}

template <typename Rows>
void Agent::MergeRows(const std::string& zone_text, const Rows& rows) {
  const double now = Now();
  const ZonePath zone = ZonePath::Parse(zone_text);
  const std::size_t level = zone.Depth();
  if (level >= Depth()) return;
  if (!(config_.path.Prefix(level) == zone)) return;  // not on our path
  // Probe before COW: skip row sets that change nothing.
  bool any_newer = false;
  for (const auto& [key, entry] : rows) {
    const RowEntry* mine = tables_[level]->Find(key);
    if (mine == nullptr || entry.version > mine->version) {
      any_newer = true;
      break;
    }
  }
  if (!any_newer) return;
  Table& local = MutableTableAt(level);
  const double stale_cutoff =
      now - config_.gossip_period * config_.fail_timeout_rounds;
  const std::uint64_t merged_before = stats_.rows_merged;
  for (const auto& [key, entry] : rows) {
    if (level + 1 == Depth() && key == config_.path.Leaf()) {
      continue;  // we alone author our MIB row
    }
    // Deletion stability: a row we evicted (or never had) must not be
    // resurrected by a peer that still carries a stale copy. The issue
    // time embedded in the version tells us whether the owner is still
    // refreshing it.
    if (!local.Has(key) && VersionTime(entry.version) < stale_cutoff) {
      continue;
    }
    if (local.MergeEntry(key, entry, now)) {
      ++stats_.rows_merged;
      // A version advance is the row's liveness heartbeat: feed the
      // accrual detector's inter-arrival history.
      if (config_.detector == DetectorMode::kPhiAccrual) {
        detector_.Heartbeat(DetectorKey(level, key), now);
      }
    }
  }
  const std::uint64_t merged = stats_.rows_merged - merged_before;
  if (merged > 0) {
    if (auto* m = Metrics()) m->Add(obs_.rows_merged, id(), merged);
    if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kMerge)) {
      t->Record(Now(), id(), obs::EventCategory::kMerge, "gossip.merge",
                merged, level);
    }
  }
}

void Agent::MergeTables(const GossipPayload& payload) {
  for (const auto& snap : payload.tables) MergeRows(snap.zone, *snap.table);
}

void Agent::MergeDeltas(const GossipPayload& payload) {
  for (const auto& part : payload.deltas) {
    MergeRows(part.zone, part.rows);
    MergeRefreshes(part.zone, part.refreshes);
  }
}

void Agent::MergeRefreshes(const std::string& zone_text,
                           const std::vector<RowRefresh>& refreshes) {
  if (refreshes.empty()) return;
  const ZonePath zone = ZonePath::Parse(zone_text);
  const std::size_t level = zone.Depth();
  if (level >= Depth()) return;
  if (!(config_.path.Prefix(level) == zone)) return;  // not on our path
  const double now = Now();
  // Probe before COW: skip refresh sets that change nothing.
  bool any_newer = false;
  for (const auto& refresh : refreshes) {
    const RowEntry* mine = tables_[level]->Find(refresh.key);
    if (mine != nullptr && refresh.version > mine->version &&
        mine->content_version == refresh.content_version) {
      any_newer = true;
      break;
    }
  }
  if (!any_newer) return;
  Table& local = MutableTableAt(level);
  for (const auto& refresh : refreshes) {
    if (level + 1 == Depth() && refresh.key == config_.path.Leaf()) {
      continue;  // we alone author our MIB row
    }
    if (local.MergeRefresh(refresh, now) &&
        config_.detector == DetectorMode::kPhiAccrual) {
      detector_.Heartbeat(DetectorKey(level, refresh.key), now);
    }
  }
}

void Agent::MergeCerts(const std::vector<Certificate>& certs) {
  for (const Certificate& cert : certs) {
    switch (cert.kind) {
      case CertKind::kZoneAuthority:
        AddZoneAuthority(cert);
        break;
      case CertKind::kFunction:
        InstallFunction(cert);
        break;
      default:
        break;  // other kinds are not gossiped by the agent layer
    }
  }
}

}  // namespace nw::astrolabe
