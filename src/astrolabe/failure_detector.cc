#include "astrolabe/failure_detector.h"

#include <algorithm>
#include <cmath>

namespace nw::astrolabe {

void PhiAccrualDetector::Heartbeat(const std::string& key, double now) {
  auto [it, inserted] = histories_.try_emplace(key);
  History& h = it->second;
  if (inserted) {
    h.intervals.assign(config_.window, 0.0);
    h.last = now;
    return;
  }
  const double interval = now - h.last;
  if (interval < 0) return;  // out-of-order sample: keep the newest anchor
  h.intervals[h.next] = interval;
  h.next = (h.next + 1) % config_.window;
  h.count += 1;
  h.last = now;
}

std::size_t PhiAccrualDetector::SampleCount(const std::string& key) const {
  const auto it = histories_.find(key);
  return it == histories_.end() ? 0 : it->second.count;
}

double PhiAccrualDetector::LastArrival(const std::string& key) const {
  const auto it = histories_.find(key);
  return it == histories_.end() ? 0.0 : it->second.last;
}

void PhiAccrualDetector::ModelOf(const History& h, double* mean,
                                 double* std_dev) const {
  const std::size_t n = std::min(h.count, config_.window);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += h.intervals[i];
  *mean = n > 0 ? sum / double(n) : 0.0;
  double var = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = h.intervals[i] - *mean;
    var += d * d;
  }
  if (n > 0) var /= double(n);
  *std_dev = std::max(std::sqrt(var), config_.min_std);
}

double PhiAccrualDetector::Phi(const std::string& key, double now) const {
  const auto it = histories_.find(key);
  if (it == histories_.end() || it->second.count == 0) return 0.0;
  const History& h = it->second;
  double mean = 0, std_dev = 0;
  ModelOf(h, &mean, &std_dev);
  const double elapsed = now - h.last;
  // P(interval > elapsed) under N(mean, std_dev^2).
  const double z = (elapsed - mean) / (std_dev * std::sqrt(2.0));
  const double p_later = std::max(0.5 * std::erfc(z), 1e-15);
  return -std::log10(p_later);
}

bool PhiAccrualDetector::Suspect(const std::string& key, double now,
                                 double period) const {
  const auto it = histories_.find(key);
  if (it == histories_.end()) return false;
  const double elapsed = now - it->second.last;
  if (elapsed < config_.floor_rounds * period) return false;
  if (elapsed > config_.cap_rounds * period) return true;
  if (it->second.count < config_.min_samples) return false;
  return Phi(key, now) > config_.threshold;
}

}  // namespace nw::astrolabe
