#include "astrolabe/sql/lexer.h"

#include <cctype>
#include <unordered_map>

#include "astrolabe/sql/ast.h"

namespace nw::astrolabe::sql {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

const std::unordered_map<std::string, TokKind>& Keywords() {
  static const std::unordered_map<std::string, TokKind> kw = {
      {"select", TokKind::kSelect}, {"as", TokKind::kAs},
      {"where", TokKind::kWhere},   {"and", TokKind::kAnd},
      {"or", TokKind::kOr},         {"not", TokKind::kNot},
      {"true", TokKind::kTrue},     {"false", TokKind::kFalse},
      {"null", TokKind::kNull},     {"order", TokKind::kOrder},
      {"by", TokKind::kBy},         {"asc", TokKind::kAsc},
      {"desc", TokKind::kDesc},     {"min", TokKind::kMin},
      {"max", TokKind::kMax},       {"sum", TokKind::kSum},
      {"avg", TokKind::kAvg},       {"count", TokKind::kCount},
      {"first", TokKind::kFirst},   {"top", TokKind::kTop},
  };
  return kw;
}

[[noreturn]] void Fail(std::size_t pos, const std::string& what) {
  throw ParseError("lex error at offset " + std::to_string(pos) + ": " + what);
}

}  // namespace

std::vector<Token> Lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < n ? src[i + off] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_' || src[i] == '.')) {
        ++i;
      }
      const std::string word = Lower(src.substr(start, i - start));
      auto it = Keywords().find(word);
      if (it != Keywords().end()) {
        t.kind = it->second;
      } else {
        t.kind = TokKind::kIdent;
        t.text = std::string(src.substr(start, i - start));
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      if (peek() == 'e' || peek() == 'E') {
        std::size_t save = i;
        ++i;
        if (peek() == '+' || peek() == '-') ++i;
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        } else {
          i = save;
        }
      }
      const std::string num(src.substr(start, i - start));
      if (is_double) {
        t.kind = TokKind::kDouble;
        t.dbl_val = std::stod(num);
      } else {
        t.kind = TokKind::kInt;
        t.int_val = std::stoll(num);
      }
    } else if (c == '\'') {
      ++i;
      std::string body;
      while (i < n && src[i] != '\'') {
        body += src[i];
        ++i;
      }
      if (i >= n) Fail(t.pos, "unterminated string literal");
      ++i;  // closing quote
      t.kind = TokKind::kString;
      t.text = std::move(body);
    } else {
      switch (c) {
        case '(': t.kind = TokKind::kLParen; ++i; break;
        case ')': t.kind = TokKind::kRParen; ++i; break;
        case ',': t.kind = TokKind::kComma; ++i; break;
        case '*': t.kind = TokKind::kStar; ++i; break;
        case '+': t.kind = TokKind::kPlus; ++i; break;
        case '-': t.kind = TokKind::kMinus; ++i; break;
        case '/': t.kind = TokKind::kSlash; ++i; break;
        case '%': t.kind = TokKind::kPercent; ++i; break;
        case '=':
          t.kind = TokKind::kEq;
          i += (peek(1) == '=') ? 2 : 1;
          break;
        case '!':
          if (peek(1) != '=') Fail(i, "expected '=' after '!'");
          t.kind = TokKind::kNe;
          i += 2;
          break;
        case '<':
          if (peek(1) == '=') { t.kind = TokKind::kLe; i += 2; }
          else if (peek(1) == '>') { t.kind = TokKind::kNe; i += 2; }
          else { t.kind = TokKind::kLt; ++i; }
          break;
        case '>':
          if (peek(1) == '=') { t.kind = TokKind::kGe; i += 2; }
          else { t.kind = TokKind::kGt; ++i; }
          break;
        default:
          Fail(i, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

const char* TokKindName(TokKind k) noexcept {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "int";
    case TokKind::kDouble: return "double";
    case TokKind::kString: return "string";
    case TokKind::kSelect: return "SELECT";
    case TokKind::kAs: return "AS";
    case TokKind::kWhere: return "WHERE";
    case TokKind::kAnd: return "AND";
    case TokKind::kOr: return "OR";
    case TokKind::kNot: return "NOT";
    case TokKind::kTrue: return "TRUE";
    case TokKind::kFalse: return "FALSE";
    case TokKind::kNull: return "NULL";
    case TokKind::kOrder: return "ORDER";
    case TokKind::kBy: return "BY";
    case TokKind::kAsc: return "ASC";
    case TokKind::kDesc: return "DESC";
    case TokKind::kMin: return "MIN";
    case TokKind::kMax: return "MAX";
    case TokKind::kSum: return "SUM";
    case TokKind::kAvg: return "AVG";
    case TokKind::kCount: return "COUNT";
    case TokKind::kFirst: return "FIRST";
    case TokKind::kTop: return "TOP";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kComma: return "','";
    case TokKind::kStar: return "'*'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kEq: return "'='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace nw::astrolabe::sql
