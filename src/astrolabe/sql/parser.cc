#include "astrolabe/sql/parser.h"
#include <cctype>

#include <utility>

#include "astrolabe/sql/lexer.h"

namespace nw::astrolabe::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(Lex(src)) {}

  Query ParseQuery() {
    Expect(TokKind::kSelect);
    Query q;
    q.items.push_back(ParseSelectItem());
    while (Accept(TokKind::kComma)) q.items.push_back(ParseSelectItem());
    if (Accept(TokKind::kWhere)) q.where = ParseExpr();
    Expect(TokKind::kEnd);
    // Assign default output names and reject duplicates.
    for (std::size_t i = 0; i < q.items.size(); ++i) {
      auto& item = q.items[i];
      if (item.out_name.empty()) {
        if (item.arg && item.arg->kind == ExprKind::kAttrRef) {
          item.out_name = item.arg->name;
        } else {
          item.out_name = "col" + std::to_string(i);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (q.items[j].out_name == item.out_name) {
          throw ParseError("duplicate output column '" + item.out_name + "'");
        }
      }
    }
    return q;
  }

  ExprPtr ParseStandaloneExpr() {
    ExprPtr e = ParseExpr();
    Expect(TokKind::kEnd);
    return e;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }

  bool Check(TokKind k) const { return Cur().kind == k; }

  bool Accept(TokKind k) {
    if (Check(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Token Expect(TokKind k) {
    if (!Check(k)) {
      throw ParseError(std::string("expected ") + TokKindName(k) + " but got " +
                       TokKindName(Cur().kind) + " at offset " +
                       std::to_string(Cur().pos));
    }
    return toks_[pos_++];
  }

  SelectItem ParseSelectItem() {
    SelectItem item;
    switch (Cur().kind) {
      case TokKind::kMin: item.agg = AggKind::kMin; break;
      case TokKind::kMax: item.agg = AggKind::kMax; break;
      case TokKind::kSum: item.agg = AggKind::kSum; break;
      case TokKind::kAvg: item.agg = AggKind::kAvg; break;
      case TokKind::kOr: item.agg = AggKind::kOrBits; break;
      case TokKind::kAnd: item.agg = AggKind::kAndBits; break;
      case TokKind::kCount: item.agg = AggKind::kCount; break;
      case TokKind::kFirst: item.agg = AggKind::kFirst; break;
      case TokKind::kTop: item.agg = AggKind::kTop; break;
      default:
        throw ParseError(std::string("expected aggregation function, got ") +
                         TokKindName(Cur().kind) + " at offset " +
                         std::to_string(Cur().pos));
    }
    ++pos_;
    Expect(TokKind::kLParen);
    switch (item.agg) {
      case AggKind::kCount:
        if (Accept(TokKind::kStar)) {
          item.agg = AggKind::kCountStar;
        } else {
          item.arg = ParseExpr();
        }
        break;
      case AggKind::kFirst: {
        item.k = Expect(TokKind::kInt).int_val;
        Expect(TokKind::kComma);
        item.arg = ParseExpr();
        break;
      }
      case AggKind::kTop: {
        item.k = Expect(TokKind::kInt).int_val;
        Expect(TokKind::kComma);
        item.arg = ParseExpr();
        Expect(TokKind::kOrder);
        Expect(TokKind::kBy);
        item.order_by = ParseExpr();
        if (Accept(TokKind::kDesc)) {
          item.descending = true;
        } else {
          Accept(TokKind::kAsc);
        }
        break;
      }
      default:
        item.arg = ParseExpr();
        break;
    }
    if ((item.agg == AggKind::kFirst || item.agg == AggKind::kTop) &&
        item.k <= 0) {
      throw ParseError("FIRST/TOP count must be positive");
    }
    Expect(TokKind::kRParen);
    if (Accept(TokKind::kAs)) item.out_name = ExpectName();
    return item;
  }

  // Output names may collide with keywords (e.g. "AS avg"); accept both.
  std::string ExpectName() {
    if (Check(TokKind::kIdent)) return toks_[pos_++].text;
    const TokKind k = Cur().kind;
    if (k == TokKind::kMin || k == TokKind::kMax || k == TokKind::kSum ||
        k == TokKind::kAvg || k == TokKind::kCount || k == TokKind::kFirst ||
        k == TokKind::kTop) {
      std::string name = TokKindName(k);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      ++pos_;
      return name;
    }
    Expect(TokKind::kIdent);  // throws with a useful message
    return {};
  }

  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (Accept(TokKind::kOr)) {
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (Accept(TokKind::kAnd)) {
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), ParseNot());
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (Accept(TokKind::kNot)) {
      return Expr::Unary(ExprKind::kNot, ParseNot());
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    BinOp op;
    switch (Cur().kind) {
      case TokKind::kEq: op = BinOp::kEq; break;
      case TokKind::kNe: op = BinOp::kNe; break;
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    ++pos_;
    return Expr::Binary(op, std::move(lhs), ParseAdditive());
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    for (;;) {
      if (Accept(TokKind::kPlus)) {
        lhs = Expr::Binary(BinOp::kAdd, std::move(lhs), ParseMultiplicative());
      } else if (Accept(TokKind::kMinus)) {
        lhs = Expr::Binary(BinOp::kSub, std::move(lhs), ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      if (Accept(TokKind::kStar)) {
        lhs = Expr::Binary(BinOp::kMul, std::move(lhs), ParseUnary());
      } else if (Accept(TokKind::kSlash)) {
        lhs = Expr::Binary(BinOp::kDiv, std::move(lhs), ParseUnary());
      } else if (Accept(TokKind::kPercent)) {
        lhs = Expr::Binary(BinOp::kMod, std::move(lhs), ParseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr ParseUnary() {
    if (Accept(TokKind::kMinus)) {
      return Expr::Unary(ExprKind::kUnaryNeg, ParseUnary());
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kInt:
        ++pos_;
        return Expr::Literal(AttrValue(t.int_val));
      case TokKind::kDouble:
        ++pos_;
        return Expr::Literal(AttrValue(t.dbl_val));
      case TokKind::kString:
        ++pos_;
        return Expr::Literal(AttrValue(t.text));
      case TokKind::kTrue:
        ++pos_;
        return Expr::Literal(AttrValue(true));
      case TokKind::kFalse:
        ++pos_;
        return Expr::Literal(AttrValue(false));
      case TokKind::kNull:
        ++pos_;
        return Expr::Literal(AttrValue());
      case TokKind::kLParen: {
        ++pos_;
        ExprPtr e = ParseExpr();
        Expect(TokKind::kRParen);
        return e;
      }
      case TokKind::kIdent: {
        ++pos_;
        std::string name = t.text;
        if (Accept(TokKind::kLParen)) {
          std::vector<ExprPtr> args;
          if (!Check(TokKind::kRParen)) {
            args.push_back(ParseExpr());
            while (Accept(TokKind::kComma)) args.push_back(ParseExpr());
          }
          Expect(TokKind::kRParen);
          return Expr::Call(std::move(name), std::move(args));
        }
        return Expr::Attr(std::move(name));
      }
      default:
        throw ParseError(std::string("unexpected ") + TokKindName(t.kind) +
                         " at offset " + std::to_string(t.pos));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Query ParseQuery(std::string_view src) { return Parser(src).ParseQuery(); }

ExprPtr ParseExpression(std::string_view src) {
  return Parser(src).ParseStandaloneExpr();
}

}  // namespace nw::astrolabe::sql
