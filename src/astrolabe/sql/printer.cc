#include "astrolabe/sql/printer.h"

namespace nw::astrolabe::sql {

namespace {

const char* BinOpText(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

std::string LiteralText(const AttrValue& v) {
  switch (v.type()) {
    case AttrValue::Type::kNull: return "NULL";
    case AttrValue::Type::kBool: return v.AsBool() ? "TRUE" : "FALSE";
    case AttrValue::Type::kInt: return std::to_string(v.AsInt());
    case AttrValue::Type::kDouble: {
      // Print with enough precision to round-trip, and force a decimal
      // point so it re-lexes as a double.
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      std::string s = buf;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case AttrValue::Type::kString: return "'" + v.AsString() + "'";
    default:
      // Bits/lists cannot appear as source literals.
      return v.ToString();
  }
}

const char* AggName(AggKind agg) {
  switch (agg) {
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kCount:
    case AggKind::kCountStar: return "COUNT";
    case AggKind::kOrBits: return "OR";
    case AggKind::kAndBits: return "AND";
    case AggKind::kFirst: return "FIRST";
    case AggKind::kTop: return "TOP";
  }
  return "?";
}

}  // namespace

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return LiteralText(expr.literal);
    case ExprKind::kAttrRef:
      return expr.name;
    case ExprKind::kUnaryNeg:
      return "(-" + ToString(*expr.args[0]) + ")";
    case ExprKind::kNot:
      return "(NOT " + ToString(*expr.args[0]) + ")";
    case ExprKind::kBinary:
      return "(" + ToString(*expr.args[0]) + " " + BinOpText(expr.op) + " " +
             ToString(*expr.args[1]) + ")";
    case ExprKind::kCall: {
      std::string out = expr.name + "(";
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i) out += ", ";
        out += ToString(*expr.args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string ToString(const Query& query) {
  std::string out = "SELECT ";
  for (std::size_t i = 0; i < query.items.size(); ++i) {
    const SelectItem& item = query.items[i];
    if (i) out += ", ";
    out += AggName(item.agg);
    out += "(";
    switch (item.agg) {
      case AggKind::kCountStar:
        out += "*";
        break;
      case AggKind::kFirst:
        out += std::to_string(item.k) + ", " + ToString(*item.arg);
        break;
      case AggKind::kTop:
        out += std::to_string(item.k) + ", " + ToString(*item.arg) +
               " ORDER BY " + ToString(*item.order_by) +
               (item.descending ? " DESC" : " ASC");
        break;
      default:
        out += ToString(*item.arg);
        break;
    }
    out += ") AS " + item.out_name;
  }
  if (query.where) out += " WHERE " + ToString(*query.where);
  return out;
}

}  // namespace nw::astrolabe::sql
