// Evaluator for aggregation queries and scalar predicates.
//
// Null semantics (SQL-like, simplified):
//  * a reference to a missing attribute yields null;
//  * any operator with a null operand yields null;
//  * rows whose aggregated expression is null (or type-errors) are skipped;
//  * a null or type-erroring WHERE / predicate counts as false.
#pragma once

#include "astrolabe/sql/ast.h"
#include "astrolabe/table.h"

namespace nw::astrolabe::sql {

// Evaluates a scalar expression against one row. Missing attributes yield
// null; genuine type mismatches throw TypeError.
AttrValue EvalScalar(const Expr& expr, const Row& row);

// Predicate evaluation: null and type errors map to false.
bool EvalPredicate(const Expr& expr, const Row& row);

// Evaluates an aggregation query over a table, producing the summary row
// that the zone contributes to its parent (paper §3).
Row EvalQuery(const Query& query, const Table& table);

}  // namespace nw::astrolabe::sql
