// AST for the aggregation-function dialect (paper §3: "aggregation
// functions, which are expressions in SQL that take any number of
// attributes from the child table and produce new attributes").
//
// Grammar (case-insensitive keywords):
//   query       := SELECT item (',' item)* [WHERE expr]
//   item        := agg [AS ident]
//   agg         := MIN|MAX|SUM|AVG|OR|AND '(' expr ')'
//                | COUNT '(' ('*' | expr) ')'
//                | FIRST '(' int ',' expr ')'
//                | TOP '(' int ',' expr ORDER BY expr [ASC|DESC] ')'
//   expr        := disjunction of comparisons over +,-,*,/,% with literals,
//                  attribute references and builtin calls
//                  (BIT, CONTAINS, LEN, COALESCE, IF, MINOF, MAXOF, ISNULL)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "astrolabe/value.h"

namespace nw::astrolabe::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Builtin scalar functions, resolved once when the Call node is built so
// evaluation never re-examines the (case-insensitive) name. kUnknown is
// not a parse error — exactly as before, an unrecognized name parses fine
// and throws TypeError when the call is evaluated.
enum class Builtin : std::uint8_t {
  kBit, kContains, kLen, kCoalesce, kIf, kMinOf, kMaxOf, kIsNull,
  kUnknown,
};

constexpr Builtin ResolveBuiltin(std::string_view name) noexcept {
  constexpr std::pair<std::string_view, Builtin> kBuiltins[] = {
      {"bit", Builtin::kBit},         {"contains", Builtin::kContains},
      {"len", Builtin::kLen},         {"coalesce", Builtin::kCoalesce},
      {"if", Builtin::kIf},           {"minof", Builtin::kMinOf},
      {"maxof", Builtin::kMaxOf},     {"isnull", Builtin::kIsNull},
  };
  for (const auto& [candidate, builtin] : kBuiltins) {
    if (name.size() != candidate.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const char lower =
          (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
      if (lower != candidate[i]) {
        match = false;
        break;
      }
    }
    if (match) return builtin;
  }
  return Builtin::kUnknown;
}

enum class ExprKind {
  kLiteral,   // value
  kAttrRef,   // name
  kUnaryNeg,  // args[0]
  kNot,       // args[0]
  kBinary,    // op, args[0], args[1]
  kCall,      // name (builtin), args
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

struct Expr {
  ExprKind kind;
  AttrValue literal;            // kLiteral
  std::string name;             // kAttrRef / kCall
  Builtin builtin = Builtin::kUnknown;  // kCall: resolved at parse time
  BinOp op = BinOp::kAdd;       // kBinary
  std::vector<ExprPtr> args;

  static ExprPtr Literal(AttrValue v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr Attr(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAttrRef;
    e->name = std::move(name);
    return e;
  }
  static ExprPtr Unary(ExprKind kind, ExprPtr inner) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->args.push_back(std::move(inner));
    return e;
  }
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCall;
    e->name = std::move(name);
    e->builtin = ResolveBuiltin(e->name);
    e->args = std::move(args);
    return e;
  }
};

enum class AggKind {
  kMin, kMax, kSum, kAvg, kCount, kCountStar, kOrBits, kAndBits,
  kFirst,  // FIRST(k, expr): first k scalar values across rows, lists flatten
  kTop,    // TOP(k, expr ORDER BY key [DESC])
};

struct SelectItem {
  AggKind agg;
  std::int64_t k = 0;          // FIRST / TOP
  ExprPtr arg;                 // null for COUNT(*)
  ExprPtr order_by;            // TOP only
  bool descending = false;     // TOP only
  std::string out_name;
};

struct Query {
  std::vector<SelectItem> items;
  ExprPtr where;  // may be null
};

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace nw::astrolabe::sql
