#include "astrolabe/sql/eval.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace nw::astrolabe::sql {

namespace {

bool IsNull(const AttrValue& v) { return v.IsNull(); }

AttrValue EvalBinary(BinOp op, const AttrValue& l, const AttrValue& r) {
  // Logical operators get (SQL-ish) short-circuit-like null handling:
  // false AND null = false, true OR null = true.
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    auto as_tri = [](const AttrValue& v) -> int {  // -1 null, 0 false, 1 true
      if (v.IsNull()) return -1;
      return v.AsBool() ? 1 : 0;
    };
    const int a = as_tri(l);
    const int b = as_tri(r);
    if (op == BinOp::kAnd) {
      if (a == 0 || b == 0) return AttrValue(false);
      if (a == -1 || b == -1) return AttrValue();
      return AttrValue(true);
    }
    if (a == 1 || b == 1) return AttrValue(true);
    if (a == -1 || b == -1) return AttrValue();
    return AttrValue(false);
  }

  if (IsNull(l) || IsNull(r)) return AttrValue();

  switch (op) {
    case BinOp::kAdd:
      if (l.type() == AttrValue::Type::kString ||
          r.type() == AttrValue::Type::kString) {
        return AttrValue(l.AsString() + r.AsString());
      }
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() + r.AsInt());
      }
      return AttrValue(l.AsDouble() + r.AsDouble());
    case BinOp::kSub:
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() - r.AsInt());
      }
      return AttrValue(l.AsDouble() - r.AsDouble());
    case BinOp::kMul:
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() * r.AsInt());
      }
      return AttrValue(l.AsDouble() * r.AsDouble());
    case BinOp::kDiv: {
      const double d = r.AsDouble();
      if (d == 0.0) return AttrValue();  // division by zero -> null
      return AttrValue(l.AsDouble() / d);
    }
    case BinOp::kMod: {
      const std::int64_t d = r.AsInt();
      if (d == 0) return AttrValue();
      return AttrValue(l.AsInt() % d);
    }
    case BinOp::kEq: return AttrValue(l.Equals(r));
    case BinOp::kNe: return AttrValue(!l.Equals(r));
    case BinOp::kLt: return AttrValue(l.Compare(r) < 0);
    case BinOp::kLe: return AttrValue(l.Compare(r) <= 0);
    case BinOp::kGt: return AttrValue(l.Compare(r) > 0);
    case BinOp::kGe: return AttrValue(l.Compare(r) >= 0);
    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // handled above
  }
  return AttrValue();
}

AttrValue EvalCall(const Expr& expr, const Row& row);

}  // namespace

AttrValue EvalScalar(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kAttrRef: {
      auto it = row.find(expr.name);
      return it == row.end() ? AttrValue() : it->second;
    }
    case ExprKind::kUnaryNeg: {
      AttrValue v = EvalScalar(*expr.args[0], row);
      if (v.IsNull()) return v;
      if (v.type() == AttrValue::Type::kInt) return AttrValue(-v.AsInt());
      return AttrValue(-v.AsDouble());
    }
    case ExprKind::kNot: {
      AttrValue v = EvalScalar(*expr.args[0], row);
      if (v.IsNull()) return v;
      return AttrValue(!v.AsBool());
    }
    case ExprKind::kBinary:
      return EvalBinary(expr.op, EvalScalar(*expr.args[0], row),
                        EvalScalar(*expr.args[1], row));
    case ExprKind::kCall:
      return EvalCall(expr, row);
  }
  return AttrValue();
}

namespace {

AttrValue EvalCall(const Expr& expr, const Row& row) {
  std::string fn = expr.name;
  for (char& c : fn) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

  auto arity = [&](std::size_t n) {
    if (expr.args.size() != n) {
      throw TypeError("builtin " + fn + " expects " + std::to_string(n) +
                      " argument(s)");
    }
  };

  if (fn == "bit") {
    // BIT(bits, i): true iff bit i is set. Out-of-range -> false.
    arity(2);
    AttrValue bits = EvalScalar(*expr.args[0], row);
    AttrValue idx = EvalScalar(*expr.args[1], row);
    if (bits.IsNull() || idx.IsNull()) return AttrValue();
    const std::int64_t i = idx.AsInt();
    const BitVector& bv = bits.AsBits();
    if (i < 0 || static_cast<std::size_t>(i) >= bv.size()) {
      return AttrValue(false);
    }
    return AttrValue(bv.Test(static_cast<std::size_t>(i)));
  }
  if (fn == "contains") {
    // CONTAINS(list, v) or CONTAINS(string, substring).
    arity(2);
    AttrValue hay = EvalScalar(*expr.args[0], row);
    AttrValue needle = EvalScalar(*expr.args[1], row);
    if (hay.IsNull() || needle.IsNull()) return AttrValue();
    if (hay.type() == AttrValue::Type::kString) {
      return AttrValue(hay.AsString().find(needle.AsString()) !=
                       std::string::npos);
    }
    for (const auto& v : hay.AsList()) {
      if (v.Equals(needle)) return AttrValue(true);
    }
    return AttrValue(false);
  }
  if (fn == "len") {
    arity(1);
    AttrValue v = EvalScalar(*expr.args[0], row);
    if (v.IsNull()) return AttrValue();
    switch (v.type()) {
      case AttrValue::Type::kString:
        return AttrValue(static_cast<std::int64_t>(v.AsString().size()));
      case AttrValue::Type::kList:
        return AttrValue(static_cast<std::int64_t>(v.AsList().size()));
      case AttrValue::Type::kBits:
        return AttrValue(static_cast<std::int64_t>(v.AsBits().PopCount()));
      default:
        throw TypeError("LEN expects string, list or bits");
    }
  }
  if (fn == "coalesce") {
    for (const auto& arg : expr.args) {
      AttrValue v = EvalScalar(*arg, row);
      if (!v.IsNull()) return v;
    }
    return AttrValue();
  }
  if (fn == "if") {
    arity(3);
    AttrValue c = EvalScalar(*expr.args[0], row);
    if (c.IsNull()) return AttrValue();
    return EvalScalar(c.AsBool() ? *expr.args[1] : *expr.args[2], row);
  }
  if (fn == "minof" || fn == "maxof") {
    arity(2);
    AttrValue a = EvalScalar(*expr.args[0], row);
    AttrValue b = EvalScalar(*expr.args[1], row);
    if (a.IsNull()) return b;
    if (b.IsNull()) return a;
    const int c = a.Compare(b);
    if (fn == "minof") return c <= 0 ? a : b;
    return c >= 0 ? a : b;
  }
  if (fn == "isnull") {
    arity(1);
    return AttrValue(EvalScalar(*expr.args[0], row).IsNull());
  }
  throw TypeError("unknown builtin function '" + expr.name + "'");
}

// Aggregation accumulator over the (filtered) rows of a table.
struct Accumulator {
  const SelectItem& item;
  std::size_t row_count = 0;       // rows passing WHERE
  std::size_t value_count = 0;     // non-null inputs
  AttrValue extreme;               // MIN/MAX running value
  double sum_d = 0;
  std::int64_t sum_i = 0;
  bool all_int = true;
  BitVector bits;                  // OR/AND over bit vectors
  std::int64_t mask = 0;           // OR/AND over ints
  bool mask_mode = false;
  bool and_first = true;
  ValueList collected;             // FIRST
  std::vector<std::pair<AttrValue, AttrValue>> keyed;  // TOP: (key, value)

  explicit Accumulator(const SelectItem& i) : item(i) {}

  void AddRow(const Row& row) {
    ++row_count;
    if (item.agg == AggKind::kCountStar) return;
    AttrValue v;
    try {
      v = EvalScalar(*item.arg, row);
    } catch (const TypeError&) {
      return;  // heterogeneous rows: skip
    }
    if (v.IsNull()) return;
    try {
      Feed(v, row);
    } catch (const TypeError&) {
      // Mixed-type columns: skip offending rows.
    }
  }

  void Feed(const AttrValue& v, const Row& row) {
    switch (item.agg) {
      case AggKind::kMin:
      case AggKind::kMax: {
        if (value_count == 0) {
          extreme = v;
        } else {
          const int c = v.Compare(extreme);
          if ((item.agg == AggKind::kMin && c < 0) ||
              (item.agg == AggKind::kMax && c > 0)) {
            extreme = v;
          }
        }
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvg: {
        if (v.type() == AttrValue::Type::kInt) {
          sum_i += v.AsInt();
        } else {
          all_int = false;
        }
        sum_d += v.AsDouble();
        break;
      }
      case AggKind::kCount:
        break;  // value_count tracks it
      case AggKind::kOrBits:
      case AggKind::kAndBits: {
        if (v.type() == AttrValue::Type::kInt) {
          mask_mode = true;
          if (item.agg == AggKind::kOrBits) {
            mask |= v.AsInt();
          } else {
            mask = and_first ? v.AsInt() : (mask & v.AsInt());
          }
        } else {
          const BitVector& bv = v.AsBits();
          if (item.agg == AggKind::kOrBits) {
            bits |= bv;
          } else {
            if (and_first) {
              bits = bv;
            } else {
              bits &= bv;
            }
          }
        }
        and_first = false;
        break;
      }
      case AggKind::kFirst: {
        if (static_cast<std::int64_t>(collected.size()) >= item.k) break;
        if (v.type() == AttrValue::Type::kList) {
          for (const auto& elem : v.AsList()) {
            if (static_cast<std::int64_t>(collected.size()) >= item.k) break;
            collected.push_back(elem);
          }
        } else {
          collected.push_back(v);
        }
        break;
      }
      case AggKind::kTop: {
        AttrValue key = EvalScalar(*item.order_by, row);
        if (key.IsNull()) return;
        keyed.emplace_back(std::move(key), v);
        break;
      }
      case AggKind::kCountStar:
        break;  // handled in AddRow
    }
    ++value_count;
  }

  // Produces the final value; null means "omit the attribute".
  AttrValue Finish() {
    switch (item.agg) {
      case AggKind::kCountStar:
        return AttrValue(static_cast<std::int64_t>(row_count));
      case AggKind::kCount:
        return AttrValue(static_cast<std::int64_t>(value_count));
      case AggKind::kMin:
      case AggKind::kMax:
        return value_count ? extreme : AttrValue();
      case AggKind::kSum:
        if (value_count == 0) return AttrValue(std::int64_t{0});
        return all_int ? AttrValue(sum_i) : AttrValue(sum_d);
      case AggKind::kAvg:
        return value_count ? AttrValue(sum_d / double(value_count))
                           : AttrValue();
      case AggKind::kOrBits:
      case AggKind::kAndBits:
        if (value_count == 0) return AttrValue();
        return mask_mode ? AttrValue(mask) : AttrValue(bits);
      case AggKind::kFirst:
        return AttrValue(std::move(collected));
      case AggKind::kTop: {
        std::stable_sort(keyed.begin(), keyed.end(),
                         [this](const auto& a, const auto& b) {
                           const int c = a.first.Compare(b.first);
                           return item.descending ? c > 0 : c < 0;
                         });
        ValueList out;
        for (const auto& [key, val] : keyed) {
          if (static_cast<std::int64_t>(out.size()) >= item.k) break;
          if (val.type() == AttrValue::Type::kList) {
            for (const auto& elem : val.AsList()) {
              if (static_cast<std::int64_t>(out.size()) >= item.k) break;
              out.push_back(elem);
            }
          } else {
            out.push_back(val);
          }
        }
        return AttrValue(std::move(out));
      }
    }
    return AttrValue();
  }
};

}  // namespace

bool EvalPredicate(const Expr& expr, const Row& row) {
  try {
    AttrValue v = EvalScalar(expr, row);
    return !v.IsNull() && v.AsBool();
  } catch (const TypeError&) {
    return false;
  }
}

Row EvalQuery(const Query& query, const Table& table) {
  std::vector<Accumulator> accs;
  accs.reserve(query.items.size());
  for (const auto& item : query.items) accs.emplace_back(item);

  for (const auto& [key, entry] : table) {
    if (query.where && !EvalPredicate(*query.where, entry.attrs)) continue;
    for (auto& acc : accs) acc.AddRow(entry.attrs);
  }

  Row out;
  for (auto& acc : accs) {
    AttrValue v = acc.Finish();
    if (!v.IsNull()) out[acc.item.out_name] = std::move(v);
  }
  return out;
}

}  // namespace nw::astrolabe::sql
