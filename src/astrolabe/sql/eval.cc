#include "astrolabe/sql/eval.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "astrolabe/sql/accumulator.h"

namespace nw::astrolabe::sql {

namespace {

bool IsNull(const AttrValue& v) { return v.IsNull(); }

AttrValue EvalBinary(BinOp op, const AttrValue& l, const AttrValue& r) {
  // Logical operators get (SQL-ish) short-circuit-like null handling:
  // false AND null = false, true OR null = true.
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    auto as_tri = [](const AttrValue& v) -> int {  // -1 null, 0 false, 1 true
      if (v.IsNull()) return -1;
      return v.AsBool() ? 1 : 0;
    };
    const int a = as_tri(l);
    const int b = as_tri(r);
    if (op == BinOp::kAnd) {
      if (a == 0 || b == 0) return AttrValue(false);
      if (a == -1 || b == -1) return AttrValue();
      return AttrValue(true);
    }
    if (a == 1 || b == 1) return AttrValue(true);
    if (a == -1 || b == -1) return AttrValue();
    return AttrValue(false);
  }

  if (IsNull(l) || IsNull(r)) return AttrValue();

  switch (op) {
    case BinOp::kAdd:
      if (l.type() == AttrValue::Type::kString ||
          r.type() == AttrValue::Type::kString) {
        return AttrValue(l.AsString() + r.AsString());
      }
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() + r.AsInt());
      }
      return AttrValue(l.AsDouble() + r.AsDouble());
    case BinOp::kSub:
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() - r.AsInt());
      }
      return AttrValue(l.AsDouble() - r.AsDouble());
    case BinOp::kMul:
      if (l.type() == AttrValue::Type::kInt &&
          r.type() == AttrValue::Type::kInt) {
        return AttrValue(l.AsInt() * r.AsInt());
      }
      return AttrValue(l.AsDouble() * r.AsDouble());
    case BinOp::kDiv: {
      const double d = r.AsDouble();
      if (d == 0.0) return AttrValue();  // division by zero -> null
      return AttrValue(l.AsDouble() / d);
    }
    case BinOp::kMod: {
      const std::int64_t d = r.AsInt();
      if (d == 0) return AttrValue();
      return AttrValue(l.AsInt() % d);
    }
    case BinOp::kEq: return AttrValue(l.Equals(r));
    case BinOp::kNe: return AttrValue(!l.Equals(r));
    case BinOp::kLt: return AttrValue(l.Compare(r) < 0);
    case BinOp::kLe: return AttrValue(l.Compare(r) <= 0);
    case BinOp::kGt: return AttrValue(l.Compare(r) > 0);
    case BinOp::kGe: return AttrValue(l.Compare(r) >= 0);
    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // handled above
  }
  return AttrValue();
}

AttrValue EvalCall(const Expr& expr, const Row& row);

}  // namespace

AttrValue EvalScalar(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kAttrRef: {
      auto it = row.find(expr.name);
      return it == row.end() ? AttrValue() : it->second;
    }
    case ExprKind::kUnaryNeg: {
      AttrValue v = EvalScalar(*expr.args[0], row);
      if (v.IsNull()) return v;
      if (v.type() == AttrValue::Type::kInt) return AttrValue(-v.AsInt());
      return AttrValue(-v.AsDouble());
    }
    case ExprKind::kNot: {
      AttrValue v = EvalScalar(*expr.args[0], row);
      if (v.IsNull()) return v;
      return AttrValue(!v.AsBool());
    }
    case ExprKind::kBinary:
      return EvalBinary(expr.op, EvalScalar(*expr.args[0], row),
                        EvalScalar(*expr.args[1], row));
    case ExprKind::kCall:
      return EvalCall(expr, row);
  }
  return AttrValue();
}

namespace {

// Dispatches on the Builtin opcode resolved at parse time (ast.h), so no
// per-call name normalization (and its string allocation) happens here.
AttrValue EvalCall(const Expr& expr, const Row& row) {
  auto arity = [&](const char* fn, std::size_t n) {
    if (expr.args.size() != n) {
      throw TypeError("builtin " + std::string(fn) + " expects " +
                      std::to_string(n) + " argument(s)");
    }
  };

  switch (expr.builtin) {
    case Builtin::kBit: {
      // BIT(bits, i): true iff bit i is set. Out-of-range -> false.
      arity("bit", 2);
      AttrValue bits = EvalScalar(*expr.args[0], row);
      AttrValue idx = EvalScalar(*expr.args[1], row);
      if (bits.IsNull() || idx.IsNull()) return AttrValue();
      const std::int64_t i = idx.AsInt();
      const BitVector& bv = bits.AsBits();
      if (i < 0 || static_cast<std::size_t>(i) >= bv.size()) {
        return AttrValue(false);
      }
      return AttrValue(bv.Test(static_cast<std::size_t>(i)));
    }
    case Builtin::kContains: {
      // CONTAINS(list, v) or CONTAINS(string, substring).
      arity("contains", 2);
      AttrValue hay = EvalScalar(*expr.args[0], row);
      AttrValue needle = EvalScalar(*expr.args[1], row);
      if (hay.IsNull() || needle.IsNull()) return AttrValue();
      if (hay.type() == AttrValue::Type::kString) {
        return AttrValue(hay.AsString().find(needle.AsString()) !=
                         std::string::npos);
      }
      for (const auto& v : hay.AsList()) {
        if (v.Equals(needle)) return AttrValue(true);
      }
      return AttrValue(false);
    }
    case Builtin::kLen: {
      arity("len", 1);
      AttrValue v = EvalScalar(*expr.args[0], row);
      if (v.IsNull()) return AttrValue();
      switch (v.type()) {
        case AttrValue::Type::kString:
          return AttrValue(static_cast<std::int64_t>(v.AsString().size()));
        case AttrValue::Type::kList:
          return AttrValue(static_cast<std::int64_t>(v.AsList().size()));
        case AttrValue::Type::kBits:
          return AttrValue(static_cast<std::int64_t>(v.AsBits().PopCount()));
        default:
          throw TypeError("LEN expects string, list or bits");
      }
    }
    case Builtin::kCoalesce: {
      for (const auto& arg : expr.args) {
        AttrValue v = EvalScalar(*arg, row);
        if (!v.IsNull()) return v;
      }
      return AttrValue();
    }
    case Builtin::kIf: {
      arity("if", 3);
      AttrValue c = EvalScalar(*expr.args[0], row);
      if (c.IsNull()) return AttrValue();
      return EvalScalar(c.AsBool() ? *expr.args[1] : *expr.args[2], row);
    }
    case Builtin::kMinOf:
    case Builtin::kMaxOf: {
      arity(expr.builtin == Builtin::kMinOf ? "minof" : "maxof", 2);
      AttrValue a = EvalScalar(*expr.args[0], row);
      AttrValue b = EvalScalar(*expr.args[1], row);
      if (a.IsNull()) return b;
      if (b.IsNull()) return a;
      const int c = a.Compare(b);
      if (expr.builtin == Builtin::kMinOf) return c <= 0 ? a : b;
      return c >= 0 ? a : b;
    }
    case Builtin::kIsNull: {
      arity("isnull", 1);
      return AttrValue(EvalScalar(*expr.args[0], row).IsNull());
    }
    case Builtin::kUnknown:
      break;
  }
  throw TypeError("unknown builtin function '" + expr.name + "'");
}

}  // namespace

bool EvalPredicate(const Expr& expr, const Row& row) {
  try {
    AttrValue v = EvalScalar(expr, row);
    return !v.IsNull() && v.AsBool();
  } catch (const TypeError&) {
    return false;
  }
}

Row EvalQuery(const Query& query, const Table& table) {
  std::vector<internal::Accumulator> accs;
  accs.reserve(query.items.size());
  for (const auto& item : query.items) accs.emplace_back(item);

  for (const auto& [key, entry] : table) {
    if (query.where && !EvalPredicate(*query.where, entry.attrs)) continue;
    for (auto& acc : accs) acc.AddRow(entry.attrs);
  }

  Row out;
  for (auto& acc : accs) {
    AttrValue v = acc.Finish();
    if (!v.IsNull()) out[acc.item.out_name] = std::move(v);
  }
  return out;
}

}  // namespace nw::astrolabe::sql
