#include "astrolabe/sql/plan.h"

#include <algorithm>
#include <utility>

#include "astrolabe/sql/accumulator.h"
#include "astrolabe/sql/eval.h"

namespace nw::astrolabe::sql {

namespace {

const AttrValue* FindAttr(const Row& row, const std::string& name) {
  auto it = row.find(name);
  return it == row.end() ? nullptr : &it->second;
}

// Fast TOP(k, attr ORDER BY attr): accumulates (key, value) as pointers
// into the live rows and copies only the k survivors at Finish. Matches
// Accumulator's kTop semantics exactly: null values and null keys are
// skipped, the sort is stable, and list values flatten into the output.
struct TopAcc {
  const SelectItem& item;
  std::vector<std::pair<const AttrValue*, const AttrValue*>> keyed;

  explicit TopAcc(const SelectItem& i) : item(i) {}

  void Add(const AttrValue* v, const AttrValue* key) {
    if (v == nullptr || v->IsNull()) return;
    if (key == nullptr || key->IsNull()) return;
    keyed.emplace_back(key, v);
  }

  AttrValue Finish() {
    std::stable_sort(keyed.begin(), keyed.end(),
                     [this](const auto& a, const auto& b) {
                       const int c = a.first->Compare(*b.first);
                       return item.descending ? c > 0 : c < 0;
                     });
    ValueList out;
    for (const auto& [key, val] : keyed) {
      if (static_cast<std::int64_t>(out.size()) >= item.k) break;
      if (val->type() == AttrValue::Type::kList) {
        for (const auto& elem : val->AsList()) {
          if (static_cast<std::int64_t>(out.size()) >= item.k) break;
          out.push_back(elem);
        }
      } else {
        out.push_back(*val);
      }
    }
    return AttrValue(std::move(out));
  }
};

bool IsBareAttr(const ExprPtr& e) {
  return e != nullptr && e->kind == ExprKind::kAttrRef;
}

}  // namespace

CompiledQuery CompiledQuery::Compile(Query query) {
  CompiledQuery plan;
  plan.query_ = std::make_shared<const Query>(std::move(query));
  plan.items_.reserve(plan.query_->items.size());
  for (const SelectItem& item : plan.query_->items) {
    ItemPlan ip;
    ip.item = &item;
    if (item.agg == AggKind::kTop) {
      if (IsBareAttr(item.arg) && IsBareAttr(item.order_by)) {
        ip.kind = ItemKind::kTop;
        ip.arg_attr = &item.arg->name;
        ip.order_attr = &item.order_by->name;
      }
    } else if (item.agg == AggKind::kCountStar) {
      ip.kind = ItemKind::kSimple;  // arg_attr stays null: counts rows only
    } else if (IsBareAttr(item.arg)) {
      ip.kind = ItemKind::kSimple;
      ip.arg_attr = &item.arg->name;
    }
    plan.items_.push_back(ip);
  }
  return plan;
}

Row CompiledQuery::Eval(const Table& table) const {
  Row out;
  EvalInto(table, out);
  return out;
}

void CompiledQuery::EvalInto(const Table& table, Row& out) const {
  std::vector<internal::Accumulator> accs;
  std::vector<TopAcc> tops;
  accs.reserve(items_.size());
  tops.reserve(items_.size());
  for (const ItemPlan& ip : items_) {
    accs.emplace_back(*ip.item);
    tops.emplace_back(*ip.item);  // only used for kTop, cheap otherwise
  }

  const Expr* where = query_->where.get();
  for (const auto& [key, entry] : table) {
    const Row& row = entry.attrs;
    if (where && !EvalPredicate(*where, row)) continue;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const ItemPlan& ip = items_[i];
      switch (ip.kind) {
        case ItemKind::kSimple:
          accs[i].AddValue(ip.arg_attr ? FindAttr(row, *ip.arg_attr) : nullptr,
                           row);
          break;
        case ItemKind::kTop:
          tops[i].Add(FindAttr(row, *ip.arg_attr),
                      FindAttr(row, *ip.order_attr));
          break;
        case ItemKind::kGeneric:
          accs[i].AddRow(row);
          break;
      }
    }
  }

  for (std::size_t i = 0; i < items_.size(); ++i) {
    AttrValue v = items_[i].kind == ItemKind::kTop ? tops[i].Finish()
                                                   : accs[i].Finish();
    if (!v.IsNull()) out.insert_or_assign(items_[i].item->out_name,
                                          std::move(v));
  }
}

}  // namespace nw::astrolabe::sql
