// Pretty-printer for the aggregation SQL AST: produces canonical text
// that re-parses to an equivalent tree (used for debugging, for showing
// installed functions, and by the parse/print round-trip tests).
#pragma once

#include <string>

#include "astrolabe/sql/ast.h"

namespace nw::astrolabe::sql {

// Canonical text of a scalar expression (fully parenthesized except for
// atoms, so operator precedence never changes meaning on re-parse).
std::string ToString(const Expr& expr);

// Canonical text of a full query.
std::string ToString(const Query& query);

}  // namespace nw::astrolabe::sql
