// Tokenizer for the aggregation SQL dialect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nw::astrolabe::sql {

enum class TokKind {
  kIdent, kInt, kDouble, kString,
  // keywords
  kSelect, kAs, kWhere, kAnd, kOr, kNot, kTrue, kFalse, kNull,
  kOrder, kBy, kAsc, kDesc,
  kMin, kMax, kSum, kAvg, kCount, kFirst, kTop,
  // punctuation / operators
  kLParen, kRParen, kComma, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;     // identifier / string literal body
  std::int64_t int_val = 0;
  double dbl_val = 0;
  std::size_t pos = 0;  // byte offset, for error messages
};

// Tokenizes the full input; throws ParseError on malformed input.
std::vector<Token> Lex(std::string_view src);

const char* TokKindName(TokKind k) noexcept;

}  // namespace nw::astrolabe::sql
