// Compiled aggregation query plans (DESIGN.md §11).
//
// A CompiledQuery is a sql::Query lowered once — at Agent::InstallFunction
// time — into a form the per-round recomputation can execute without
// re-examining the AST shape: builtins are already enum opcodes (ast.h),
// and each SELECT item is classified into the cheapest executable form:
//
//   * kSimple  — COUNT(*) or an aggregate over a bare attribute reference:
//                the value is looked up in the row map once and fed by
//                pointer, with no AttrValue copy per row;
//   * kTop     — TOP(k, attr ORDER BY attr): both the value and the sort
//                key are plain lookups, accumulated as pointer pairs and
//                only copied for the k survivors at Finish;
//   * kGeneric — anything else falls back to the reference Accumulator
//                (accumulator.h), which the fast paths must match exactly.
//
// Results are byte-identical to the interpreted sql::EvalQuery — pinned by
// tests/aggregation_cache_test.cc and bench/bench_micro.cc.
#pragma once

#include <memory>
#include <vector>

#include "astrolabe/sql/ast.h"
#include "astrolabe/table.h"

namespace nw::astrolabe::sql {

class CompiledQuery {
 public:
  CompiledQuery() = default;

  // Takes ownership of the query; the plan holds pointers into it, so it
  // lives in a shared_ptr (CompiledQuery stays cheaply copyable — agents
  // copy InstalledFunction values around).
  static CompiledQuery Compile(Query query);

  bool valid() const { return query_ != nullptr; }
  const Query& query() const { return *query_; }

  // Evaluates the plan over a table, producing the zone summary row.
  Row Eval(const Table& table) const;

  // Same, but emits into `out` (no intermediate Row copy). `out` need not
  // be empty; existing attributes with other names are left alone.
  void EvalInto(const Table& table, Row& out) const;

 private:
  enum class ItemKind { kGeneric, kSimple, kTop };

  struct ItemPlan {
    const SelectItem* item = nullptr;
    ItemKind kind = ItemKind::kGeneric;
    // kSimple: the pre-interned attribute name (null for COUNT(*)).
    const std::string* arg_attr = nullptr;
    // kTop: value and sort-key attribute names.
    const std::string* order_attr = nullptr;
  };

  std::shared_ptr<const Query> query_;
  std::vector<ItemPlan> items_;
};

}  // namespace nw::astrolabe::sql
