// The reference aggregation accumulator shared by the interpreter
// (EvalQuery, eval.cc) and the compiled-plan fallback path (plan.cc).
// Its semantics — null skipping, per-row TypeError skipping, the SUM
// int/double promotion, TOP's stable sort and list flattening — define
// what an aggregation function means; the compiled fast paths in plan.cc
// must reproduce them byte for byte (pinned by
// tests/aggregation_cache_test.cc).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "astrolabe/sql/ast.h"
#include "astrolabe/sql/eval.h"
#include "astrolabe/table.h"

namespace nw::astrolabe::sql::internal {

// Aggregation accumulator over the (filtered) rows of a table.
struct Accumulator {
  const SelectItem& item;
  std::size_t row_count = 0;       // rows passing WHERE
  std::size_t value_count = 0;     // non-null inputs
  AttrValue extreme;               // MIN/MAX running value
  double sum_d = 0;
  std::int64_t sum_i = 0;
  bool all_int = true;
  BitVector bits;                  // OR/AND over bit vectors
  std::int64_t mask = 0;           // OR/AND over ints
  bool mask_mode = false;
  bool and_first = true;
  ValueList collected;             // FIRST
  std::vector<std::pair<AttrValue, AttrValue>> keyed;  // TOP: (key, value)

  explicit Accumulator(const SelectItem& i) : item(i) {}

  void AddRow(const Row& row) {
    ++row_count;
    if (item.agg == AggKind::kCountStar) return;
    AttrValue v;
    try {
      v = EvalScalar(*item.arg, row);
    } catch (const TypeError&) {
      return;  // heterogeneous rows: skip
    }
    if (v.IsNull()) return;
    try {
      Feed(v, row);
    } catch (const TypeError&) {
      // Mixed-type columns: skip offending rows.
    }
  }

  // Compiled-plan fast path (plan.cc): the argument is a bare attribute
  // reference already looked up in place, so no EvalScalar copy is made.
  // `v == nullptr` means the attribute is absent (same as a null value).
  void AddValue(const AttrValue* v, const Row& row) {
    ++row_count;
    if (item.agg == AggKind::kCountStar) return;
    if (v == nullptr || v->IsNull()) return;
    try {
      Feed(*v, row);
    } catch (const TypeError&) {
      // Mixed-type columns: skip offending rows.
    }
  }

  void Feed(const AttrValue& v, const Row& row) {
    switch (item.agg) {
      case AggKind::kMin:
      case AggKind::kMax: {
        if (value_count == 0) {
          extreme = v;
        } else {
          const int c = v.Compare(extreme);
          if ((item.agg == AggKind::kMin && c < 0) ||
              (item.agg == AggKind::kMax && c > 0)) {
            extreme = v;
          }
        }
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvg: {
        if (v.type() == AttrValue::Type::kInt) {
          sum_i += v.AsInt();
        } else {
          all_int = false;
        }
        sum_d += v.AsDouble();
        break;
      }
      case AggKind::kCount:
        break;  // value_count tracks it
      case AggKind::kOrBits:
      case AggKind::kAndBits: {
        if (v.type() == AttrValue::Type::kInt) {
          mask_mode = true;
          if (item.agg == AggKind::kOrBits) {
            mask |= v.AsInt();
          } else {
            mask = and_first ? v.AsInt() : (mask & v.AsInt());
          }
        } else {
          const BitVector& bv = v.AsBits();
          if (item.agg == AggKind::kOrBits) {
            bits |= bv;
          } else {
            if (and_first) {
              bits = bv;
            } else {
              bits &= bv;
            }
          }
        }
        and_first = false;
        break;
      }
      case AggKind::kFirst: {
        if (static_cast<std::int64_t>(collected.size()) >= item.k) break;
        if (v.type() == AttrValue::Type::kList) {
          for (const auto& elem : v.AsList()) {
            if (static_cast<std::int64_t>(collected.size()) >= item.k) break;
            collected.push_back(elem);
          }
        } else {
          collected.push_back(v);
        }
        break;
      }
      case AggKind::kTop: {
        AttrValue key = EvalScalar(*item.order_by, row);
        if (key.IsNull()) return;
        keyed.emplace_back(std::move(key), v);
        break;
      }
      case AggKind::kCountStar:
        break;  // handled in AddRow
    }
    ++value_count;
  }

  // Produces the final value; null means "omit the attribute".
  AttrValue Finish() {
    switch (item.agg) {
      case AggKind::kCountStar:
        return AttrValue(static_cast<std::int64_t>(row_count));
      case AggKind::kCount:
        return AttrValue(static_cast<std::int64_t>(value_count));
      case AggKind::kMin:
      case AggKind::kMax:
        return value_count ? extreme : AttrValue();
      case AggKind::kSum:
        if (value_count == 0) return AttrValue(std::int64_t{0});
        return all_int ? AttrValue(sum_i) : AttrValue(sum_d);
      case AggKind::kAvg:
        return value_count ? AttrValue(sum_d / double(value_count))
                           : AttrValue();
      case AggKind::kOrBits:
      case AggKind::kAndBits:
        if (value_count == 0) return AttrValue();
        return mask_mode ? AttrValue(mask) : AttrValue(bits);
      case AggKind::kFirst:
        return AttrValue(std::move(collected));
      case AggKind::kTop: {
        std::stable_sort(keyed.begin(), keyed.end(),
                         [this](const auto& a, const auto& b) {
                           const int c = a.first.Compare(b.first);
                           return item.descending ? c > 0 : c < 0;
                         });
        ValueList out;
        for (const auto& [key, val] : keyed) {
          if (static_cast<std::int64_t>(out.size()) >= item.k) break;
          if (val.type() == AttrValue::Type::kList) {
            for (const auto& elem : val.AsList()) {
              if (static_cast<std::int64_t>(out.size()) >= item.k) break;
              out.push_back(elem);
            }
          } else {
            out.push_back(val);
          }
        }
        return AttrValue(std::move(out));
      }
    }
    return AttrValue();
  }
};

}  // namespace nw::astrolabe::sql::internal
