// Recursive-descent parser for the aggregation SQL dialect.
#pragma once

#include <string_view>

#include "astrolabe/sql/ast.h"

namespace nw::astrolabe::sql {

// Parses a full aggregation query ("SELECT ... [WHERE ...]").
// Throws ParseError on malformed input.
Query ParseQuery(std::string_view src);

// Parses a standalone scalar expression (used for subscription predicates
// and publisher targeting predicates). Throws ParseError.
ExprPtr ParseExpression(std::string_view src);

}  // namespace nw::astrolabe::sql
