#include "astrolabe/deployment.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>

namespace nw::astrolabe {

namespace {

unsigned ResolveSimThreads(unsigned configured) {
  if (configured != 0) return configured;
  if (const char* env = std::getenv("NEWSWIRE_SIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 64) return static_cast<unsigned>(v);
  }
  return 1;
}

std::size_t DepthFor(std::size_t n, std::size_t branching) {
  std::size_t depth = 1;
  std::size_t capacity = branching;
  while (capacity < n) {
    capacity *= branching;
    ++depth;
  }
  return depth;
}

ZonePath MakePath(std::size_t index, std::size_t depth, std::size_t branching,
                  const std::vector<std::string>& top_level_names) {
  // The base-`branching` digits of `index`, most significant first, name
  // the internal zones; the leaf component is the globally unique agent
  // name.
  std::vector<std::size_t> digits(depth, 0);
  std::size_t x = index;
  for (std::size_t j = depth; j-- > 0;) {
    digits[j] = x % branching;
    x /= branching;
  }
  ZonePath path;
  for (std::size_t j = 0; j + 1 < depth; ++j) {
    if (j == 0 && digits[j] < top_level_names.size()) {
      path = path.Child(top_level_names[digits[j]]);
    } else {
      path = path.Child("z" + std::to_string(digits[j]));
    }
  }
  return path.Child("n" + std::to_string(index));
}

}  // namespace

Deployment::Deployment(DeploymentConfig config)
    : config_(config),
      sim_(config.seed),
      net_(sim_, config.net),
      root_authority_("root", [&] {
        util::DeterministicRng rng(config.seed ^ 0x526f6f74ull /*'Root'*/);
        return GenerateKeyPair(rng);
      }()) {
  assert(config_.num_agents >= 1);
  assert(config_.branching >= 2);
  if (config_.metrics != nullptr) net_.SetMetrics(config_.metrics);
  if (config_.tracer != nullptr) net_.SetTracer(config_.tracer);
  depth_ = DepthFor(config_.num_agents, config_.branching);

  core_fn_cert_ = root_authority_.Issue(
      CertKind::kFunction, "core", 0,
      {{"code", DefaultCoreFunctionCode(config_.contacts_per_zone)},
       {"version", "1"}},
      0, 1e18);

  paths_.reserve(config_.num_agents);
  agents_.reserve(config_.num_agents);
  for (std::size_t i = 0; i < config_.num_agents; ++i) {
    paths_.push_back(
        MakePath(i, depth_, config_.branching, config_.top_level_names));
    AgentConfig ac;
    ac.path = paths_.back();
    ac.gossip_period = config_.gossip_period;
    ac.fail_timeout_rounds = config_.fail_timeout_rounds;
    ac.contacts_per_zone = config_.contacts_per_zone;
    ac.wire_mode = config_.gossip_wire;
    ac.detector = config_.detector;
    ac.phi = config_.phi;
    ac.force_full_recompute = config_.force_full_recompute;
    ac.trust_root = root_authority_.public_key();
    agents_.push_back(std::make_unique<Agent>(std::move(ac)));
    net_.AddNode(agents_.back().get());
    agents_.back()->WarmObservability();
    agents_.back()->InstallFunction(core_fn_cert_);
  }
  sim_.SetThreads(ResolveSimThreads(config_.sim_threads));

  // Seed peers play the role of the statically configured "introducers"
  // the paper defers to the wider Astrolabe effort (§8: automatic zone
  // configuration is out of scope). For each agent we configure, per
  // hierarchy level l, a couple of random peers whose path shares exactly l
  // components: gossiping with such a peer merges the tables of the common
  // prefix, which bootstraps sibling-zone discovery at every level.
  util::DeterministicRng seed_rng(config_.seed ^ 0x5365656473ull /*'Seeds'*/);
  std::map<std::string, std::vector<std::size_t>> by_prefix;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    for (std::size_t level = 0; level < depth_; ++level) {
      by_prefix[paths_[i].Prefix(level).ToString()].push_back(i);
    }
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    std::vector<sim::NodeId> seeds;
    auto add_from = [&](const std::vector<std::size_t>& pool,
                        std::size_t want) {
      for (std::size_t tries = 0;
           tries < pool.size() * 2 + 8 && want > 0; ++tries) {
        const std::size_t j = pool[seed_rng.NextBelow(pool.size())];
        if (j == i) continue;
        const sim::NodeId candidate = agents_[j]->id();
        if (std::find(seeds.begin(), seeds.end(), candidate) == seeds.end()) {
          seeds.push_back(candidate);
          --want;
        }
      }
    };
    // Siblings in the leaf-parent zone...
    add_from(by_prefix[paths_[i].Prefix(depth_ - 1).ToString()],
             config_.seed_peers);
    // ...plus introducers sharing exactly `level` components.
    for (std::size_t level = 0; level + 1 < depth_; ++level) {
      add_from(by_prefix[paths_[i].Prefix(level).ToString()], 2);
    }
    agents_[i]->SetSeedPeers(std::move(seeds));
  }
}

Deployment::~Deployment() = default;

void Deployment::StartAll() {
  for (auto& agent : agents_) agent->Start();
}

void Deployment::WarmStart() {
  const double now = sim_.Now();

  // One shared Table object per zone, keyed by zone path.
  std::map<std::string, std::shared_ptr<Table>> tables;
  // Distinct zone paths per level, deepest first.
  std::vector<std::vector<ZonePath>> zones_by_level(depth_);

  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const ZonePath& path = paths_[i];
    const std::string parent = path.Prefix(depth_ - 1).ToString();
    auto [it, inserted] = tables.try_emplace(parent, nullptr);
    if (inserted) {
      it->second = std::make_shared<Table>();
      zones_by_level[depth_ - 1].push_back(path.Prefix(depth_ - 1));
    }
    RowEntry& row = it->second->Upsert(path.Leaf());
    // The agent's current MIB, with the membership defaults Start() would
    // have established.
    row.attrs = agents_[i]->LocalRow();
    if (!row.attrs.contains(kAttrContacts)) {
      row.attrs[kAttrContacts] =
          ValueList{AttrValue(std::int64_t{agents_[i]->id()})};
    }
    if (!row.attrs.contains(kAttrMembers)) {
      row.attrs[kAttrMembers] = std::int64_t{1};
    }
    if (!row.attrs.contains(kAttrLoad)) row.attrs[kAttrLoad] = 0.0;
    row.version = 1;
    row.content_version = 1;
    row.last_refresh = now;
  }

  // Aggregate bottom-up with the functions installed on the agents
  // (assumed uniform, as gossip would make them).
  const Agent& reference = *agents_.front();
  for (std::size_t level = depth_ - 1; level >= 1; --level) {
    for (const ZonePath& zone : zones_by_level[level]) {
      const std::string parent = zone.Prefix(level - 1).ToString();
      auto [it, inserted] = tables.try_emplace(parent, nullptr);
      if (inserted) {
        it->second = std::make_shared<Table>();
        zones_by_level[level - 1].push_back(zone.Prefix(level - 1));
      }
      RowEntry& row = it->second->Upsert(zone.Leaf());
      row.attrs = reference.AggregateOf(*tables.at(zone.ToString()));
      row.version = 1;
      row.content_version = 1;
      row.last_refresh = now;
    }
  }

  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (std::size_t j = 0; j < depth_; ++j) {
      agents_[i]->WarmStartTable(j, tables.at(paths_[i].Prefix(j).ToString()));
    }
  }
}

Certificate Deployment::InstallFunctionEverywhere(const std::string& name,
                                                  const std::string& code,
                                                  std::int64_t version) {
  Certificate cert = root_authority_.Issue(
      CertKind::kFunction, name, 0,
      {{"code", code}, {"version", std::to_string(version)}}, 0, 1e18);
  for (auto& agent : agents_) agent->InstallFunction(cert);
  return cert;
}

void Deployment::RunFor(double seconds) {
  sim_.RunUntil(sim_.Now() + seconds);
}

}  // namespace astrolabe

