#include "astrolabe/cert.h"

namespace nw::astrolabe {

using util::Fnv1a64;
using util::HashCombine;
using util::Mix64;

PublicKey DerivePublic(PrivateKey priv) { return Mix64(priv ^ 0xa5a5a5a5a5a5a5a5ull); }

KeyPair GenerateKeyPair(util::DeterministicRng& rng) {
  KeyPair kp;
  kp.priv = rng.NextU64();
  kp.pub = DerivePublic(kp.priv);
  return kp;
}

Signature SignDigest(PrivateKey priv, std::uint64_t digest) {
  return HashCombine(DerivePublic(priv), digest);
}

bool VerifyDigest(PublicKey pub, std::uint64_t digest, Signature sig) {
  return sig == HashCombine(pub, digest);
}

std::uint64_t Certificate::Digest() const {
  std::uint64_t h = Fnv1a64(subject);
  h = HashCombine(h, static_cast<std::uint64_t>(kind));
  h = HashCombine(h, subject_key);
  for (const auto& [k, v] : claims) {
    h = HashCombine(h, Fnv1a64(k));
    h = HashCombine(h, Fnv1a64(v));
  }
  h = HashCombine(h, static_cast<std::uint64_t>(not_before * 1e6));
  h = HashCombine(h, static_cast<std::uint64_t>(not_after * 1e6));
  h = HashCombine(h, issuer);
  return h;
}

bool Certificate::VerifySignature() const {
  return VerifyDigest(issuer, Digest(), signature);
}

std::size_t Certificate::WireBytes() const {
  std::size_t n = 64 + subject.size();
  for (const auto& [k, v] : claims) n += k.size() + v.size() + 4;
  return n;
}

const char* CertKindName(CertKind k) noexcept {
  switch (k) {
    case CertKind::kZoneAuthority: return "zone-authority";
    case CertKind::kAgent: return "agent";
    case CertKind::kFunction: return "function";
    case CertKind::kPublisher: return "publisher";
  }
  return "?";
}

Certificate Authority::Issue(CertKind kind, std::string subject,
                             PublicKey subject_key,
                             std::map<std::string, std::string> claims,
                             double not_before, double not_after) const {
  Certificate c;
  c.kind = kind;
  c.subject = std::move(subject);
  c.subject_key = subject_key;
  c.claims = std::move(claims);
  c.not_before = not_before;
  c.not_after = not_after;
  c.issuer = keys_.pub;
  c.signature = SignDigest(keys_.priv, c.Digest());
  return c;
}

const char* CertStatusName(CertStatus s) noexcept {
  switch (s) {
    case CertStatus::kOk: return "ok";
    case CertStatus::kBadSignature: return "bad-signature";
    case CertStatus::kExpired: return "expired";
    case CertStatus::kNotYetValid: return "not-yet-valid";
    case CertStatus::kUntrustedIssuer: return "untrusted-issuer";
  }
  return "?";
}

CertStatus ValidateChain(const Certificate& cert,
                         const std::vector<Certificate>& intermediates,
                         PublicKey root, double now) {
  if (!cert.VerifySignature()) return CertStatus::kBadSignature;
  if (now < cert.not_before) return CertStatus::kNotYetValid;
  if (now > cert.not_after) return CertStatus::kExpired;
  if (cert.issuer == root) return CertStatus::kOk;
  for (const Certificate& inter : intermediates) {
    if (inter.kind != CertKind::kZoneAuthority) continue;
    if (inter.subject_key != cert.issuer) continue;
    // One level of intermediates suffices for the zone hierarchy we model;
    // recursion would allow deeper chains.
    const CertStatus s = ValidateChain(inter, {}, root, now);
    if (s == CertStatus::kOk) return CertStatus::kOk;
  }
  return CertStatus::kUntrustedIssuer;
}

}  // namespace nw::astrolabe
