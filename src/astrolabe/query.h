// Remote queries over the replicated zone state — the monitoring /
// data-mining face of Astrolabe (paper §3: "monitoring, management and
// data-mining of large-scale distributed systems"; §4 uses it as the
// management service for the pub/sub overlay itself).
//
// A client sends an aggregation query (the same SQL dialect as the
// mobile aggregation functions) to any agent, naming the zone level to
// evaluate against; the agent runs it over its local replica and returns
// the summary row. Queries are strictly read-only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "astrolabe/agent.h"

namespace nw::astrolabe {

class QueryService {
 public:
  struct Result {
    bool ok = false;
    std::string error;  // set when !ok
    Row row;
  };
  using Callback = std::function<void(const Result&)>;

  struct Config {
    double timeout = 5.0;  // seconds before a pending query fails
  };

  explicit QueryService(Agent& agent) : QueryService(agent, Config{}) {}
  QueryService(Agent& agent, Config config);

  // Evaluates `sql` against `peer`'s replica of the zone with `level`
  // path components (0 = the root table) and invokes `cb` exactly once —
  // with the resulting row, or with ok=false on parse errors, bad levels,
  // or timeout (peer dead / message lost).
  void QueryZone(sim::NodeId peer, std::size_t level, const std::string& sql,
                 Callback cb);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t answered = 0;   // served for remote clients
    std::uint64_t rejected = 0;   // malformed queries we refused to run
    std::uint64_t timeouts = 0;
  };
  const Stats& stats() const { return stats_; }

  static constexpr const char* kRequestType = "astro.query";
  static constexpr const char* kResponseType = "astro.query_resp";

 private:
  struct Request {
    std::uint64_t id = 0;
    std::size_t level = 0;
    std::string sql;
  };
  struct Response {
    std::uint64_t id = 0;
    bool ok = false;
    std::string error;
    Row row;
  };

  void HandleRequest(const sim::Message& msg);
  void HandleResponse(const sim::Message& msg);

  Agent& agent_;
  Config config_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Callback> pending_;
  Stats stats_;
};

}  // namespace nw::astrolabe
