// Phi-accrual failure detection (DESIGN.md §10): instead of the paper's
// fixed fail_timeout_rounds row expiry, each agent learns the observed
// inter-arrival distribution of version advances per monitored row and
// converts the time since the last advance into a suspicion level
//
//   phi(e) = -log10( P(interval > e) )
//
// under a normal model of the sampled intervals. A fixed timeout tuned for
// healthy 1 s gossip misfires the moment a slow-but-alive node stretches
// its rounds to 8 s; the accrual detector re-centers on the observed 8 s
// rhythm after a handful of samples and stops suspecting it.
//
// The detector is deliberately clock-agnostic: it consumes the timestamps
// it is handed (simulated seconds here), holds a bounded per-key window,
// and is deterministic — no wall clock, no randomness.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nw::astrolabe {

struct PhiAccrualConfig {
  double threshold = 8.0;    // suspect when phi exceeds this
  std::size_t window = 20;   // inter-arrival samples kept per key
  std::size_t min_samples = 3;  // below this, callers fall back to the
                                // legacy fixed timeout
  double min_std = 0.1;      // seconds; floors the model's sigma so a
                             // perfectly regular heartbeat still tolerates
                             // scheduling jitter
  double floor_rounds = 6;   // never suspect within this many periods of
                             // the last arrival, whatever phi says. The
                             // default matches the legacy
                             // fail_timeout_rounds, so phi is never more
                             // trigger-happy than the fixed rule it
                             // replaces — adaptivity only ever extends
                             // the benefit of the doubt (short outages
                             // that the fixed cutoff rode out, like a
                             // sub-6-round crash/restart, still ride out)
  double cap_rounds = 16;    // always suspect past this many silent
                             // periods (bounds detection time when the
                             // learned distribution is very wide)
};

class PhiAccrualDetector {
 public:
  PhiAccrualDetector() = default;
  explicit PhiAccrualDetector(PhiAccrualConfig config) : config_(config) {}

  // Records an arrival for `key` at time `now`. The first arrival only
  // anchors the clock; intervals accumulate from the second one on.
  void Heartbeat(const std::string& key, double now);

  bool Known(const std::string& key) const {
    return histories_.contains(key);
  }
  std::size_t SampleCount(const std::string& key) const;
  // Time of the most recent arrival; 0 if the key is unknown.
  double LastArrival(const std::string& key) const;

  // Suspicion level at `now`: 0 when the key is unknown or the elapsed
  // silence is ordinary, growing without bound as the silence becomes
  // implausible under the observed interval distribution.
  double Phi(const std::string& key, double now) const;

  // Full expiry decision for a heartbeat nominally issued every `period`
  // seconds: the phi threshold bracketed by the floor/cap round bounds.
  bool Suspect(const std::string& key, double now, double period) const;

  void Forget(const std::string& key) { histories_.erase(key); }
  void Clear() { histories_.clear(); }

  const PhiAccrualConfig& config() const noexcept { return config_; }

 private:
  struct History {
    std::vector<double> intervals;  // ring buffer of config_.window entries
    std::size_t next = 0;           // ring write cursor
    std::size_t count = 0;          // total intervals ever recorded
    double last = 0;                // time of the most recent arrival
  };

  // Mean and (floored) standard deviation over the windowed intervals.
  void ModelOf(const History& h, double* mean, double* std_dev) const;

  PhiAccrualConfig config_;
  std::map<std::string, History> histories_;
};

}  // namespace nw::astrolabe
