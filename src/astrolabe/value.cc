#include "astrolabe/value.h"

#include <cmath>

namespace nw::astrolabe {

namespace {
[[noreturn]] void ThrowType(const char* want, AttrValue::Type got) {
  throw TypeError(std::string("expected ") + want + ", got " + TypeName(got));
}
}  // namespace

const char* TypeName(AttrValue::Type t) noexcept {
  switch (t) {
    case AttrValue::Type::kNull: return "null";
    case AttrValue::Type::kBool: return "bool";
    case AttrValue::Type::kInt: return "int";
    case AttrValue::Type::kDouble: return "double";
    case AttrValue::Type::kString: return "string";
    case AttrValue::Type::kBits: return "bits";
    case AttrValue::Type::kList: return "list";
  }
  return "?";
}

bool AttrValue::AsBool() const {
  if (auto* b = std::get_if<bool>(&v_)) return *b;
  ThrowType("bool", type());
}

std::int64_t AttrValue::AsInt() const {
  if (auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  ThrowType("int", type());
}

double AttrValue::AsDouble() const {
  if (auto* d = std::get_if<double>(&v_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  ThrowType("double", type());
}

const std::string& AttrValue::AsString() const {
  if (auto* s = std::get_if<std::string>(&v_)) return *s;
  ThrowType("string", type());
}

const BitVector& AttrValue::AsBits() const {
  if (auto* b = std::get_if<BitVector>(&v_)) return *b;
  ThrowType("bits", type());
}

BitVector& AttrValue::MutableBits() {
  if (auto* b = std::get_if<BitVector>(&v_)) return *b;
  ThrowType("bits", type());
}

const ValueList& AttrValue::AsList() const {
  if (auto* l = std::get_if<ValueList>(&v_)) return *l;
  ThrowType("list", type());
}

int AttrValue::Compare(const AttrValue& other) const {
  if (IsNumeric() && other.IsNumeric()) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    throw TypeError(std::string("cannot compare ") + TypeName(type()) +
                    " with " + TypeName(other.type()));
  }
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool: {
      const int a = AsBool() ? 1 : 0;
      const int b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case Type::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      throw TypeError(std::string("type ") + TypeName(type()) +
                      " is not ordered");
  }
}

bool AttrValue::Equals(const AttrValue& other) const {
  if (IsNumeric() && other.IsNumeric()) return AsDouble() == other.AsDouble();
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kNull: return true;
    case Type::kBool: return AsBool() == other.AsBool();
    case Type::kString: return AsString() == other.AsString();
    case Type::kBits: return AsBits() == other.AsBits();
    case Type::kList: {
      const auto& a = AsList();
      const auto& b = other.AsList();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    default: return false;  // unreachable: int/double handled above
  }
}

std::string AttrValue::ToString() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return AsBool() ? "true" : "false";
    case Type::kInt: return std::to_string(AsInt());
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case Type::kString: return "'" + AsString() + "'";
    case Type::kBits: return AsBits().ToString();
    case Type::kList: {
      std::string s = "[";
      const auto& l = AsList();
      for (std::size_t i = 0; i < l.size(); ++i) {
        if (i) s += ',';
        s += l[i].ToString();
      }
      return s + "]";
    }
  }
  return "?";
}

std::size_t AttrValue::WireBytes() const {
  switch (type()) {
    case Type::kNull: return 1;
    case Type::kBool: return 1;
    case Type::kInt: return 8;
    case Type::kDouble: return 8;
    case Type::kString: return 2 + AsString().size();
    case Type::kBits: return AsBits().WireBytes();
    case Type::kList: {
      std::size_t n = 2;
      for (const auto& v : AsList()) n += v.WireBytes();
      return n;
    }
  }
  return 1;
}

}  // namespace nw::astrolabe
