// Deployment: builds a complete simulated Astrolabe system — a network, N
// agents arranged in a uniform zone hierarchy, a root certificate
// authority, and the default representative-election aggregation function —
// and offers a warm start that installs converged table replicas directly
// (used by experiments that measure dissemination rather than gossip
// convergence).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "astrolabe/agent.h"
#include "astrolabe/cert.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace nw::astrolabe {

struct DeploymentConfig {
  std::size_t num_agents = 16;
  std::size_t branching = 8;  // max children per zone (paper §3: "say, 64")
  // Optional human-readable names for the top-level zones (e.g. regions);
  // zones beyond the list keep their generated "z<i>" names.
  std::vector<std::string> top_level_names;
  double gossip_period = 2.0;
  double fail_timeout_rounds = 6;
  std::int64_t contacts_per_zone = 3;
  GossipWireMode gossip_wire = GossipWireMode::kDelta;
  DetectorMode detector = DetectorMode::kPhiAccrual;
  PhiAccrualConfig phi;  // kPhiAccrual tuning, forwarded to every agent
  // Escape hatch: disable the dirty-tracked aggregation memo in every
  // agent (AgentConfig::force_full_recompute).
  bool force_full_recompute = false;
  std::size_t seed_peers = 3;  // bootstrap contacts per agent
  sim::NetworkConfig net;
  std::uint64_t seed = 1;
  // Simulator worker shards (DESIGN.md §9). 1 = classic sequential engine;
  // any value produces bit-identical runs. 0 = read NEWSWIRE_SIM_THREADS
  // from the environment (defaulting to 1), so whole test suites can be
  // replayed under the parallel engine without per-test plumbing.
  unsigned sim_threads = 0;
  // Optional observability sinks, installed on the network before any
  // agent joins. Caller-owned; must outlive the deployment.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventTracer* tracer = nullptr;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  std::size_t size() const { return agents_.size(); }
  Agent& agent(std::size_t i) { return *agents_[i]; }
  const Agent& agent(std::size_t i) const { return *agents_[i]; }

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  const DeploymentConfig& config() const { return config_; }

  const Authority& root_authority() const { return root_authority_; }
  PublicKey trust_root() const { return root_authority_.public_key(); }

  // Zone depth of every leaf (all agents share it in the uniform layout).
  std::size_t Depth() const { return depth_; }

  // The leaf path assigned to agent i.
  const ZonePath& PathFor(std::size_t i) const { return paths_[i]; }

  // Calls Agent::Start() on every agent (begin gossiping).
  void StartAll();

  // Installs converged replicas into every agent, as if gossip had run to
  // completion at time sim().Now().
  void WarmStart();

  // Issues and installs an additional aggregation function on every agent.
  // Returns the certificate so tests can tamper with copies of it.
  Certificate InstallFunctionEverywhere(const std::string& name,
                                        const std::string& code,
                                        std::int64_t version = 1);

  // Advances simulated time by `seconds`.
  void RunFor(double seconds);

 private:
  DeploymentConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  std::size_t depth_ = 1;
  std::vector<ZonePath> paths_;
  std::vector<std::unique_ptr<Agent>> agents_;
  Authority root_authority_;
  Certificate core_fn_cert_;
};

}  // namespace nw::astrolabe
