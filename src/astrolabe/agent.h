// The Astrolabe agent (paper §3): one per machine. Owns the machine's MIB
// row, replicates the zone tables on its path to the root, gossips them
// epidemically, recomputes aggregation functions whenever child tables
// change, detects failures by row expiry, and spreads signed
// aggregation-function certificates as mobile code.
//
// Table replicas are held through shared_ptr with copy-on-write so that a
// converged system (e.g. the 100k-leaf dissemination experiments, which
// warm-start the replicas) shares one physical table per zone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "astrolabe/cert.h"
#include "astrolabe/failure_detector.h"
#include "astrolabe/sql/ast.h"
#include "astrolabe/sql/plan.h"
#include "astrolabe/table.h"
#include "astrolabe/zone_path.h"
#include "sim/network.h"

namespace nw::astrolabe {

// Gossip wire format (PROTOCOLS.md "Gossip wire format v2"):
//  * kFull  — v1: every exchange ships full zone-table snapshots plus the
//    whole certificate set; wire bytes grow with zone size.
//  * kDelta — v2 (default): a digest-first three-leg reconciliation; only
//    rows whose owner version differs cross the wire, so steady-state
//    bytes grow with churn instead of zone size.
// Both modes converge replicas to the identical state (enforced by
// tests/gossip_equivalence_test.cc).
enum class GossipWireMode { kFull, kDelta };

const char* GossipWireModeName(GossipWireMode mode) noexcept;
// "full" / "delta" -> mode; nullopt on anything else.
std::optional<GossipWireMode> GossipWireModeFromName(std::string_view name);

// Row-expiry (failure detection) mode:
//  * kFixed — legacy: a row expires after fail_timeout_rounds gossip
//    periods without a fresher version, whatever the observed rhythm.
//  * kPhiAccrual — default: per-row phi-accrual detection over the
//    observed version-advance intervals (failure_detector.h); the fixed
//    rule remains the cold-start fallback until enough samples accrue.
enum class DetectorMode { kFixed, kPhiAccrual };

const char* DetectorModeName(DetectorMode mode) noexcept;
// "fixed" / "phi" -> mode; nullopt on anything else.
std::optional<DetectorMode> DetectorModeFromName(std::string_view name);

struct AgentConfig {
  ZonePath path;                  // full leaf path, depth >= 1
  double gossip_period = 2.0;     // seconds between rounds
  double fail_timeout_rounds = 6; // fixed-mode row expiry (and the phi
                                  // cold-start fallback), in gossip periods
  std::int64_t contacts_per_zone = 3;  // representatives per zone (paper §5)
  PublicKey trust_root = 0;       // anchor for certificate validation
  GossipWireMode wire_mode = GossipWireMode::kDelta;
  DetectorMode detector = DetectorMode::kPhiAccrual;
  PhiAccrualConfig phi;           // tuning for kPhiAccrual
  // Escape hatch (--force-full-recompute in newswire_sim): disable the
  // dirty-tracked aggregation memo and re-evaluate every level on every
  // RecomputeAggregates, as the engine did before DESIGN.md §11. Both modes
  // are bit-identical in every observable (pinned by
  // tests/aggregation_cache_test.cc); this exists to measure the saving and
  // to bisect should the memo ever be suspected.
  bool force_full_recompute = false;
};

// Well-known attribute names maintained by the agent itself.
inline constexpr const char* kAttrContacts = "contacts";   // list<int NodeId>
inline constexpr const char* kAttrMembers = "nmembers";    // int
inline constexpr const char* kAttrLoad = "load";           // double
// Health score in [0,1] (1 = healthy), published by the multicast layer
// from retransmit/corruption evidence so representative election and
// failover can route around gray nodes (DESIGN.md §10).
inline constexpr const char* kAttrHealth = "health";       // double

// The default aggregation function installed in every zone: elects the
// k least-loaded contacts as zone representatives and counts members.
std::string DefaultCoreFunctionCode(std::int64_t contacts_per_zone);

class Agent : public sim::Node {
 public:
  explicit Agent(AgentConfig config);
  ~Agent() override;

  // Begins gossip; must be called after the node is added to the network.
  void Start();

  // Registers this agent's metric ids eagerly. Called by Deployment right
  // after the agent joins the network: registration mutates the shared
  // registry and must not first happen inside a parallel-window event.
  void WarmObservability() { (void)Metrics(); }

  // ---- Local MIB -------------------------------------------------------
  void SetLocalAttr(const std::string& name, AttrValue value);
  void RemoveLocalAttr(const std::string& name);
  const Row& LocalRow() const { return mib_; }

  // ---- Mobile code -----------------------------------------------------
  // Installs an aggregation function carried by a kFunction certificate
  // (claim "code" holds the SQL). Returns false (and installs nothing) if
  // the chain does not validate or the code does not parse.
  bool InstallFunction(const Certificate& cert);
  // Adds a zone-authority certificate to the local trust store (validated
  // against the trust root first).
  bool AddZoneAuthority(const Certificate& cert);
  std::vector<std::string> InstalledFunctionNames() const;

  // ---- Introspection / queries ------------------------------------------
  const AgentConfig& config() const { return config_; }
  const ZonePath& path() const { return config_.path; }
  std::size_t Depth() const { return config_.path.Depth(); }

  // Table of the zone with `level` path components (0 = root table).
  // level must be < Depth().
  const Table& TableAt(std::size_t level) const { return *tables_[level]; }

  // Locally evaluated summary row of the zone with `level` components;
  // level == 0 gives the whole-system (root) summary.
  Row ZoneSummary(std::size_t level) const;

  // Evaluates every installed aggregation function over an arbitrary
  // table (used by the warm-start path to precompute converged replicas).
  Row AggregateOf(const Table& table) const;

  // Representatives of a child row of the level-`level` table, resolved
  // from its "contacts" attribute. Empty if unknown.
  std::vector<sim::NodeId> ContactsOf(std::size_t level,
                                      const std::string& child_key) const;

  // True if this agent currently represents its child zone in the
  // level-`level` table (always true at the deepest level).
  bool RepresentsAt(std::size_t level) const;

  // ---- Application messaging ---------------------------------------------
  // Upper layers (multicast, pub/sub, news) register handlers for their
  // message types; all non-gossip messages are dispatched through these.
  using Handler = std::function<void(const sim::Message&)>;
  void RegisterHandler(const std::string& type, Handler handler);

  // Invoked after a simulated process restart, so layers composed onto the
  // agent (caches, repair timers) can reset their volatile state and
  // reschedule their timers.
  void AddRestartHook(std::function<void()> hook) {
    restart_hooks_.push_back(std::move(hook));
  }
  using sim::Node::Send;  // expose for the layers composed onto this agent
  using sim::Node::Schedule;
  using sim::Node::Now;
  using sim::Node::Rng;
  // Exposed so composed layers can reach the network's optional
  // metrics()/tracer() (null before the agent joins a network).
  using sim::Node::attached_network;

  // Peers used to re-join after a restart or when tables are empty.
  void SetSeedPeers(std::vector<sim::NodeId> seeds) { seeds_ = std::move(seeds); }

  // ---- Warm start --------------------------------------------------------
  // Directly installs a (shared) replica of a zone table, as if gossip had
  // already converged. Used by large-scale experiments to skip the O(N)
  // convergence phase they do not measure.
  void WarmStartTable(std::size_t level, std::shared_ptr<Table> table);

  // ---- Stats -------------------------------------------------------------
  struct GossipStats {
    std::uint64_t rounds = 0;
    std::uint64_t exchanges_sent = 0;
    std::uint64_t rows_merged = 0;
    std::uint64_t rows_expired = 0;
    std::uint64_t certs_rejected = 0;
    // Frames dropped by envelope-checksum verification (wire-format v3);
    // corruption degrades into loss instead of poisoning the MIBs.
    std::uint64_t integrity_drops = 0;
    // Wire-format accounting (see GossipWireMode): rows shipped vs rows the
    // digest proved the peer already had, cert bodies actually sent, and
    // payload bytes split by kind.
    std::uint64_t rows_sent = 0;
    std::uint64_t rows_suppressed = 0;
    std::uint64_t certs_sent = 0;
    std::uint64_t digest_bytes = 0;
    std::uint64_t delta_bytes = 0;
    std::uint64_t full_bytes = 0;
  };
  const GossipStats& gossip_stats() const { return stats_; }

  // Aggregation-engine accounting (DESIGN.md §11). Per RecomputeAggregates
  // call, every level in [1, Depth()) is either evaluated or served from
  // the memo, so `levels_evaluated + cache_hits ==
  // recompute_calls * (Depth() - 1)` — and with force_full_recompute the
  // cache_hits term is identically zero.
  struct AggStats {
    std::uint64_t recompute_calls = 0;   // RecomputeAggregates invocations
    std::uint64_t levels_evaluated = 0;  // levels actually re-aggregated
    std::uint64_t cache_hits = 0;        // levels served from the memo
    std::uint64_t compare_skips = 0;     // RowsEqual compares proven away
  };
  const AggStats& agg_stats() const { return agg_stats_; }

  // The row-expiry failure detector (read-only; for tests and health
  // introspection). Only consulted when config().detector == kPhiAccrual.
  const PhiAccrualDetector& failure_detector() const { return detector_; }

  // sim::Node
  void OnMessage(const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct InstalledFunction {
    Certificate cert;
    // Compiled once at install time; per-round recomputation never touches
    // the AST shape again (builtin opcodes, classified accumulators).
    sql::CompiledQuery plan;
  };

  // Dirty-tracked recomputation memo, one slot per level (DESIGN.md §11).
  // A slot is a hit when the input table's content epoch and the function
  // generation both match; `parent_clean` additionally remembers that the
  // parent row was last seen (or written) equal to `agg`, so an unchanged
  // parent epoch proves the RowsEqual compare away too.
  struct AggMemo {
    bool valid = false;
    bool parent_clean = false;
    std::uint64_t input_epoch = 0;
    std::uint64_t fn_generation = 0;
    std::uint64_t parent_epoch = 0;
    Row agg;  // cached aggregate of tables_[level]
  };

  struct TableSnapshot {
    std::string zone;  // path of the zone this table belongs to
    std::shared_ptr<const Table> table;
  };
  struct TableDigestPart {
    std::string zone;
    // Init leg: the sender's full inventory (key -> versions). Reply leg:
    // the replier's request list — only rows it needs pushed back.
    TableDigest rows;
  };
  struct TableDeltaPart {
    std::string zone;
    std::vector<std::pair<std::string, RowEntry>> rows;  // content the peer lacks
    std::vector<RowRefresh> refreshes;  // heartbeat-only version advances
    bool empty() const { return rows.empty() && refreshes.empty(); }
  };
  // One gossip message. The exchange stage is carried by the message type
  // (astro.gossip / astro.gossip_reply / astro.gossip_final); the wire mode
  // is implied by which fields are populated: full snapshots (v1) or
  // digests/deltas (v2). Cert bodies are deduplicated against the per-peer
  // inventory in both modes; `cert_ids` always advertises the sender's full
  // certificate inventory so the receiver learns what not to send back.
  struct GossipPayload {
    std::string zone;  // path of the zone whose table level anchors this
    std::vector<TableSnapshot> tables;        // full mode
    std::vector<TableDigestPart> digests;     // delta mode: init + reply
    std::vector<TableDeltaPart> deltas;       // delta mode: reply + final
    std::vector<std::uint64_t> cert_ids;      // sender's cert inventory
    std::vector<Certificate> certs;           // bodies the peer lacks
    std::size_t DigestBytes() const;  // digest parts + cert-id inventory
    std::size_t DeltaBytes() const;   // delta rows (+ cert bodies, delta mode)
    std::size_t FullBytes() const;    // snapshots (+ cert bodies, full mode)
    std::size_t WireBytes() const;
  };

  void GossipRound();
  void RefreshOwnRow();
  void RecomputeAggregates();
  void ExpireRows();
  void DoGossipAt(std::size_t level);
  void HandleGossipInit(const sim::Message& msg);
  void HandleGossipReply(const sim::Message& msg);
  void HandleGossipFinal(const sim::Message& msg);
  // Deepest level whose zone path is shared with `peer_zone`.
  std::size_t CommonLevelWith(const std::string& peer_zone) const;
  void MergeTables(const GossipPayload& payload);
  void MergeDeltas(const GossipPayload& payload);
  // Shared merge core: one remote row set for the table of `zone`.
  template <typename Rows>
  void MergeRows(const std::string& zone_text, const Rows& rows);
  // Heartbeat-only version advances for rows whose content we already hold.
  void MergeRefreshes(const std::string& zone_text,
                      const std::vector<RowRefresh>& refreshes);
  void MergeCerts(const std::vector<Certificate>& certs);
  GossipPayload BuildFullPayload(std::size_t level) const;
  GossipPayload BuildDigestPayload(std::size_t level) const;
  // Delta rows of every local table (0..level) against the peer's digests;
  // `attach_digests` adds our own digests so the peer can push back what we
  // are missing (the reply leg of the three-leg reconciliation).
  GossipPayload BuildDeltaPayload(const GossipPayload& request,
                                  std::size_t level, bool attach_digests);
  // Cert dedup: advertise the full inventory, ship only bodies the peer is
  // not known to hold, and optimistically mark them as held (the peer's
  // next advertised inventory corrects us if the message was lost).
  void AttachCerts(GossipPayload& payload, sim::NodeId peer);
  void NoteCertInventory(sim::NodeId peer,
                         const std::vector<std::uint64_t>& ids);
  // Sends one gossip message and attributes its bytes/rows to the stats and
  // the astrolabe.gossip.* metrics.
  void SendGossip(sim::NodeId to, const char* type, GossipPayload payload);
  std::uint64_t NextVersion();

  // Copy-on-write access to a table replica.
  Table& MutableTableAt(std::size_t level);

  // ---- observability (all null-safe; ids registered lazily) -------------
  obs::MetricsRegistry* Metrics();
  obs::EventTracer* Tracer() const;
  void NoteCertReject(const std::string& subject);
  // Detects changes to the set of levels this agent represents and emits
  // an election event (the first evaluation only sets the baseline).
  void TraceElectionChanges();
  struct ObsIds {
    bool init = false;
    std::uint32_t rounds, exchanges, rows_merged, rows_expired, recomputes,
        cert_rejects, elections, integrity_drops;
    std::uint32_t recompute_skips, agg_evals;
    std::uint32_t digest_bytes, delta_bytes, full_bytes, rows_sent,
        rows_suppressed, certs_sent;
  };
  static constexpr std::uint32_t kNoRepMask = 0xffffffffu;

  AgentConfig config_;
  Row mib_;
  std::vector<std::shared_ptr<Table>> tables_;  // size == Depth()
  std::vector<AggMemo> agg_memo_;               // size == Depth(); [0] unused
  // Bumped whenever the installed-function set changes; part of every memo
  // key, so an install invalidates all levels at once.
  std::uint64_t fn_generation_ = 0;
  AggStats agg_stats_;
  std::map<std::string, InstalledFunction> functions_;
  std::vector<Certificate> zone_authorities_;
  std::map<std::string, Handler> handlers_;
  std::vector<std::function<void()>> restart_hooks_;
  std::vector<sim::NodeId> seeds_;
  // Cert ids (Certificate::Digest()) each peer is believed to hold, rebuilt
  // from the inventory every gossip message advertises. Volatile (cleared
  // on restart): worst case a cert body is re-sent once.
  std::map<sim::NodeId, std::set<std::uint64_t>> peer_known_certs_;
  std::uint64_t version_counter_ = 0;
  // Leaf-level partner schedule: rounds since restart and the rotation
  // cursor over leaf siblings (see DoGossipAt).
  std::uint64_t leaf_round_ = 0;
  std::uint64_t leaf_cursor_ = 0;
  bool started_ = false;
  GossipStats stats_;
  // Per-row arrival history for kPhiAccrual, keyed "<level>/<row key>".
  // Survives row expiry (so a re-learned row keeps its rhythm) but not a
  // process restart.
  PhiAccrualDetector detector_;
  ObsIds obs_{};
  std::uint32_t rep_mask_ = kNoRepMask;  // bit l: represents at level l
};

}  // namespace nw::astrolabe
