// The Astrolabe agent (paper §3): one per machine. Owns the machine's MIB
// row, replicates the zone tables on its path to the root, gossips them
// epidemically, recomputes aggregation functions whenever child tables
// change, detects failures by row expiry, and spreads signed
// aggregation-function certificates as mobile code.
//
// Table replicas are held through shared_ptr with copy-on-write so that a
// converged system (e.g. the 100k-leaf dissemination experiments, which
// warm-start the replicas) shares one physical table per zone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "astrolabe/cert.h"
#include "astrolabe/sql/ast.h"
#include "astrolabe/table.h"
#include "astrolabe/zone_path.h"
#include "sim/network.h"

namespace nw::astrolabe {

struct AgentConfig {
  ZonePath path;                  // full leaf path, depth >= 1
  double gossip_period = 2.0;     // seconds between rounds
  double fail_timeout_rounds = 6; // row expiry, in units of gossip_period
  std::int64_t contacts_per_zone = 3;  // representatives per zone (paper §5)
  PublicKey trust_root = 0;       // anchor for certificate validation
};

// Well-known attribute names maintained by the agent itself.
inline constexpr const char* kAttrContacts = "contacts";   // list<int NodeId>
inline constexpr const char* kAttrMembers = "nmembers";    // int
inline constexpr const char* kAttrLoad = "load";           // double

// The default aggregation function installed in every zone: elects the
// k least-loaded contacts as zone representatives and counts members.
std::string DefaultCoreFunctionCode(std::int64_t contacts_per_zone);

class Agent : public sim::Node {
 public:
  explicit Agent(AgentConfig config);
  ~Agent() override;

  // Begins gossip; must be called after the node is added to the network.
  void Start();

  // ---- Local MIB -------------------------------------------------------
  void SetLocalAttr(const std::string& name, AttrValue value);
  void RemoveLocalAttr(const std::string& name);
  const Row& LocalRow() const { return mib_; }

  // ---- Mobile code -----------------------------------------------------
  // Installs an aggregation function carried by a kFunction certificate
  // (claim "code" holds the SQL). Returns false (and installs nothing) if
  // the chain does not validate or the code does not parse.
  bool InstallFunction(const Certificate& cert);
  // Adds a zone-authority certificate to the local trust store (validated
  // against the trust root first).
  bool AddZoneAuthority(const Certificate& cert);
  std::vector<std::string> InstalledFunctionNames() const;

  // ---- Introspection / queries ------------------------------------------
  const AgentConfig& config() const { return config_; }
  const ZonePath& path() const { return config_.path; }
  std::size_t Depth() const { return config_.path.Depth(); }

  // Table of the zone with `level` path components (0 = root table).
  // level must be < Depth().
  const Table& TableAt(std::size_t level) const { return *tables_[level]; }

  // Locally evaluated summary row of the zone with `level` components;
  // level == 0 gives the whole-system (root) summary.
  Row ZoneSummary(std::size_t level) const;

  // Evaluates every installed aggregation function over an arbitrary
  // table (used by the warm-start path to precompute converged replicas).
  Row AggregateOf(const Table& table) const;

  // Representatives of a child row of the level-`level` table, resolved
  // from its "contacts" attribute. Empty if unknown.
  std::vector<sim::NodeId> ContactsOf(std::size_t level,
                                      const std::string& child_key) const;

  // True if this agent currently represents its child zone in the
  // level-`level` table (always true at the deepest level).
  bool RepresentsAt(std::size_t level) const;

  // ---- Application messaging ---------------------------------------------
  // Upper layers (multicast, pub/sub, news) register handlers for their
  // message types; all non-gossip messages are dispatched through these.
  using Handler = std::function<void(const sim::Message&)>;
  void RegisterHandler(const std::string& type, Handler handler);

  // Invoked after a simulated process restart, so layers composed onto the
  // agent (caches, repair timers) can reset their volatile state and
  // reschedule their timers.
  void AddRestartHook(std::function<void()> hook) {
    restart_hooks_.push_back(std::move(hook));
  }
  using sim::Node::Send;  // expose for the layers composed onto this agent
  using sim::Node::Schedule;
  using sim::Node::Now;
  using sim::Node::Rng;
  // Exposed so composed layers can reach the network's optional
  // metrics()/tracer() (null before the agent joins a network).
  using sim::Node::attached_network;

  // Peers used to re-join after a restart or when tables are empty.
  void SetSeedPeers(std::vector<sim::NodeId> seeds) { seeds_ = std::move(seeds); }

  // ---- Warm start --------------------------------------------------------
  // Directly installs a (shared) replica of a zone table, as if gossip had
  // already converged. Used by large-scale experiments to skip the O(N)
  // convergence phase they do not measure.
  void WarmStartTable(std::size_t level, std::shared_ptr<Table> table);

  // ---- Stats -------------------------------------------------------------
  struct GossipStats {
    std::uint64_t rounds = 0;
    std::uint64_t exchanges_sent = 0;
    std::uint64_t rows_merged = 0;
    std::uint64_t rows_expired = 0;
    std::uint64_t certs_rejected = 0;
  };
  const GossipStats& gossip_stats() const { return stats_; }

  // sim::Node
  void OnMessage(const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct InstalledFunction {
    Certificate cert;
    sql::Query query;
  };

  struct TableSnapshot {
    std::string zone;  // path of the zone this table belongs to
    std::shared_ptr<const Table> table;
  };
  struct GossipPayload {
    std::string zone;  // path of the zone whose table level anchors this
    bool reply = false;
    std::vector<TableSnapshot> tables;
    std::vector<Certificate> certs;  // zone authorities + functions
    std::size_t WireBytes() const;
  };

  void GossipRound();
  void RefreshOwnRow();
  void RecomputeAggregates();
  void ExpireRows();
  void DoGossipAt(std::size_t level);
  void HandleGossip(const sim::Message& msg, bool reply);
  void MergeTables(const GossipPayload& payload);
  void MergeCerts(const std::vector<Certificate>& certs);
  GossipPayload BuildPayload(std::size_t level, bool reply) const;
  std::uint64_t NextVersion();

  // Copy-on-write access to a table replica.
  Table& MutableTableAt(std::size_t level);

  // ---- observability (all null-safe; ids registered lazily) -------------
  obs::MetricsRegistry* Metrics();
  obs::EventTracer* Tracer() const;
  void NoteCertReject(const std::string& subject);
  // Detects changes to the set of levels this agent represents and emits
  // an election event (the first evaluation only sets the baseline).
  void TraceElectionChanges();
  struct ObsIds {
    bool init = false;
    std::uint32_t rounds, exchanges, rows_merged, rows_expired, recomputes,
        cert_rejects, elections;
  };
  static constexpr std::uint32_t kNoRepMask = 0xffffffffu;

  AgentConfig config_;
  Row mib_;
  std::vector<std::shared_ptr<Table>> tables_;  // size == Depth()
  std::map<std::string, InstalledFunction> functions_;
  std::vector<Certificate> zone_authorities_;
  std::map<std::string, Handler> handlers_;
  std::vector<std::function<void()>> restart_hooks_;
  std::vector<sim::NodeId> seeds_;
  std::uint64_t version_counter_ = 0;
  bool started_ = false;
  GossipStats stats_;
  ObsIds obs_{};
  std::uint32_t rep_mask_ = kNoRepMask;  // bit l: represents at level l
};

}  // namespace nw::astrolabe
