#include "astrolabe/query.h"

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"

namespace nw::astrolabe {

QueryService::QueryService(Agent& agent, Config config)
    : agent_(agent), config_(config) {
  agent_.RegisterHandler(kRequestType, [this](const sim::Message& msg) {
    HandleRequest(msg);
  });
  agent_.RegisterHandler(kResponseType, [this](const sim::Message& msg) {
    HandleResponse(msg);
  });
}

void QueryService::QueryZone(sim::NodeId peer, std::size_t level,
                             const std::string& sql, Callback cb) {
  const std::uint64_t id = next_id_++;
  Request req{id, level, sql};
  pending_.emplace(id, std::move(cb));
  ++stats_.sent;
  agent_.Send(sim::Message::Make(agent_.id(), peer, kRequestType,
                                 std::move(req), 32 + sql.size()));
  agent_.Schedule(config_.timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Callback cb = std::move(it->second);
    pending_.erase(it);
    ++stats_.timeouts;
    Result result;
    result.ok = false;
    result.error = "timeout";
    cb(result);
  });
}

void QueryService::HandleRequest(const sim::Message& msg) {
  const auto& req = msg.As<Request>();
  Response resp;
  resp.id = req.id;
  if (req.level >= agent_.Depth()) {
    resp.error = "level out of range";
    ++stats_.rejected;
  } else {
    try {
      const sql::Query query = sql::ParseQuery(req.sql);
      resp.row = sql::EvalQuery(query, agent_.TableAt(req.level));
      resp.ok = true;
      ++stats_.answered;
    } catch (const sql::ParseError& e) {
      resp.error = e.what();
      ++stats_.rejected;
    } catch (const TypeError& e) {
      resp.error = e.what();
      ++stats_.rejected;
    }
  }
  const std::size_t wire = 24 + resp.error.size() + RowWireBytes(resp.row);
  agent_.Send(sim::Message::Make(agent_.id(), msg.from, kResponseType,
                                 std::move(resp), wire));
}

void QueryService::HandleResponse(const sim::Message& msg) {
  const auto& resp = msg.As<Response>();
  auto it = pending_.find(resp.id);
  if (it == pending_.end()) return;  // answered after timeout: drop
  Callback cb = std::move(it->second);
  pending_.erase(it);
  Result result;
  result.ok = resp.ok;
  result.error = resp.error;
  result.row = resp.row;
  cb(result);
}

}  // namespace nw::astrolabe
