// Bloom filter over subscription subjects (paper §6).
//
// The paper's base scheme hashes each subscription to a single bit
// (hashes == 1) in an array of ~1000 bits; subscription arrays are
// aggregated up the zone tree with binary OR. The number of hash
// functions is configurable for the accuracy ablation (E5).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "astrolabe/bitvector.h"
#include "util/hash.h"

namespace nw::pubsub {

struct BloomConfig {
  std::size_t bits = 1024;
  std::size_t hashes = 1;  // paper default: one bit per subscription
  std::uint64_t seed = 0x426c6f6f6dull;  // shared system-wide
};

class BloomFilter {
 public:
  explicit BloomFilter(BloomConfig config)
      : config_(config), bits_(config.bits) {}

  // The bit positions a subject maps to.
  std::vector<std::size_t> Positions(std::string_view subject) const {
    std::vector<std::size_t> out;
    out.reserve(config_.hashes);
    for (std::size_t i = 0; i < config_.hashes; ++i) {
      out.push_back(static_cast<std::size_t>(
          util::HashWithSeed(subject, config_.seed + i) % config_.bits));
    }
    return out;
  }

  void Add(std::string_view subject) {
    for (std::size_t pos : Positions(subject)) bits_.Set(pos);
  }

  bool MightContain(std::string_view subject) const {
    for (std::size_t pos : Positions(subject)) {
      if (!bits_.Test(pos)) return false;
    }
    return true;
  }

  void Clear() { bits_ = astrolabe::BitVector(config_.bits); }

  const astrolabe::BitVector& bits() const { return bits_; }
  const BloomConfig& config() const { return config_; }

  // True if an aggregated array `agg` admits a publication stamped with
  // `positions` (every stamped bit set).
  static bool Admits(const astrolabe::BitVector& agg,
                     const std::vector<std::size_t>& positions) {
    for (std::size_t pos : positions) {
      if (pos >= agg.size() || !agg.Test(pos)) return false;
    }
    return true;
  }

 private:
  BloomConfig config_;
  astrolabe::BitVector bits_;
};

}  // namespace nw::pubsub
