#include "pubsub/category_subscriptions.h"

namespace nw::pubsub {

using astrolabe::AttrValue;
using astrolabe::Row;
using multicast::Item;

std::string CategoryAttrFor(const std::string& publisher) {
  return "pub_" + publisher;
}

std::string CategoryFunctionNameFor(const std::string& publisher) {
  return "pubsub.cat." + publisher;
}

std::string CategoryFunctionCodeFor(const std::string& publisher) {
  const std::string attr = CategoryAttrFor(publisher);
  return "SELECT OR(" + attr + ") AS " + attr;
}

CategorySubscriptions::CategorySubscriptions(astrolabe::Agent& agent,
                                             multicast::MulticastService& mc)
    : agent_(agent), mc_(mc) {
  mc_.SetForwardFilter([](const Item& item, const Row& child_row) {
    return ChildAdmits(item, child_row);
  });
  mc_.SetDeliveryCallback([this](const Item& item) { OnDeliver(item); });
}

void CategorySubscriptions::Subscribe(const std::string& publisher,
                                      std::uint64_t mask) {
  const std::string attr = CategoryAttrFor(publisher);
  if (mask == 0) {
    masks_.erase(publisher);
    agent_.RemoveLocalAttr(attr);
    return;
  }
  masks_[publisher] = mask;
  agent_.SetLocalAttr(attr, static_cast<std::int64_t>(mask));
}

std::uint64_t CategorySubscriptions::MaskFor(
    const std::string& publisher) const {
  auto it = masks_.find(publisher);
  return it == masks_.end() ? 0 : it->second;
}

void CategorySubscriptions::Publish(Item item, const std::string& publisher,
                                    std::uint64_t categories,
                                    const astrolabe::ZonePath& scope) {
  item.metadata[kAttrPublisher] = publisher;
  item.metadata[kAttrCatMask] = static_cast<std::int64_t>(categories);
  if (item.published_at == 0) item.published_at = agent_.Now();
  ++stats_.published;
  mc_.SendToZone(scope, std::move(item));
}

bool CategorySubscriptions::ChildAdmits(const Item& item,
                                        const Row& child_row) {
  auto pub_it = item.metadata.find(kAttrPublisher);
  auto mask_it = item.metadata.find(kAttrCatMask);
  if (pub_it == item.metadata.end() || mask_it == item.metadata.end()) {
    return true;  // untargeted multicast
  }
  auto agg = child_row.find(CategoryAttrFor(pub_it->second.AsString()));
  if (agg == child_row.end() ||
      agg->second.type() != AttrValue::Type::kInt) {
    return false;  // no subscriber below this child for that publisher
  }
  return (static_cast<std::uint64_t>(agg->second.AsInt()) &
          static_cast<std::uint64_t>(mask_it->second.AsInt())) != 0;
}

void CategorySubscriptions::OnDeliver(const Item& item) {
  auto pub_it = item.metadata.find(kAttrPublisher);
  auto mask_it = item.metadata.find(kAttrCatMask);
  if (pub_it == item.metadata.end() || mask_it == item.metadata.end()) {
    ++stats_.delivered;
    if (on_news_) on_news_(item);
    return;
  }
  const std::uint64_t wanted = MaskFor(pub_it->second.AsString());
  if ((wanted & static_cast<std::uint64_t>(mask_it->second.AsInt())) == 0) {
    ++stats_.rejected;
    return;
  }
  ++stats_.delivered;
  if (on_news_) on_news_(item);
}

}  // namespace nw::pubsub
