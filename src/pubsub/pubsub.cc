#include "pubsub/pubsub.h"

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"

namespace nw::pubsub {

using astrolabe::AttrValue;
using astrolabe::Row;
using astrolabe::ValueList;
using multicast::Item;

bool SubjectIsUnder(const std::string& subject, const std::string& ancestor) {
  if (subject == ancestor) return true;
  return subject.size() > ancestor.size() &&
         subject.compare(0, ancestor.size(), ancestor) == 0 &&
         subject[ancestor.size()] == '.';
}

std::vector<std::string> SubjectPrefixes(const std::string& subject) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < subject.size();) {
    const std::size_t dot = subject.find('.', pos);
    if (dot == std::string::npos) break;
    out.push_back(subject.substr(0, dot));
    pos = dot + 1;
  }
  out.push_back(subject);
  return out;
}

PubSubService::PubSubService(astrolabe::Agent& agent,
                             multicast::MulticastService& mc,
                             PubSubOptions options)
    : agent_(agent), mc_(mc), options_(options), filter_(options.bloom) {
  agent_.SetLocalAttr(kAttrSubs, filter_.bits());
  mc_.SetForwardFilter([](const Item& item, const Row& child_row) {
    return ChildAdmits(item, child_row);
  });
  mc_.SetDeliveryCallback([this](const Item& item) { OnDeliver(item); });
}

void PubSubService::Subscribe(const std::string& subject) {
  if (!subjects_.insert(subject).second) return;
  RebuildFilter();
}

void PubSubService::Unsubscribe(const std::string& subject) {
  if (subjects_.erase(subject) == 0) return;
  RebuildFilter();
}

void PubSubService::SetPredicate(const std::string& sql_expr) {
  predicate_ = std::shared_ptr<const astrolabe::sql::Expr>(
      astrolabe::sql::ParseExpression(sql_expr).release());
  predicate_text_ = sql_expr;
}

void PubSubService::RebuildFilter() {
  filter_.Clear();
  for (const std::string& subject : subjects_) filter_.Add(subject);
  // Republishing the MIB attribute makes the change flow up through the
  // OR aggregation within a few gossip rounds (paper §6: "within tens of
  // seconds the root zone will have all the information").
  agent_.SetLocalAttr(kAttrSubs, filter_.bits());
}

void PubSubService::Publish(Item item, const std::string& subject,
                            const astrolabe::ZonePath& scope,
                            const std::string& forward_predicate) {
  item.metadata[kAttrSubject] = subject;
  auto group_for = [this](const std::string& s) {
    ValueList group;
    for (std::size_t pos : filter_.Positions(s)) {
      group.push_back(AttrValue(static_cast<std::int64_t>(pos)));
    }
    return group;
  };
  if (options_.hierarchical_subjects) {
    // One group per prefix: a zone subscribed to any ancestor admits.
    ValueList groups;
    for (const std::string& prefix : SubjectPrefixes(subject)) {
      groups.push_back(AttrValue(group_for(prefix)));
    }
    item.metadata[kAttrSubBits] = std::move(groups);
  } else {
    item.metadata[kAttrSubBits] = group_for(subject);
  }
  if (!forward_predicate.empty()) {
    // Validate eagerly so the publisher learns about malformed predicates
    // rather than every forwarder silently dropping.
    astrolabe::sql::ParseExpression(forward_predicate);
    item.metadata[kAttrFwdPredicate] = forward_predicate;
  }
  if (item.published_at == 0) item.published_at = agent_.Now();
  ++stats_.published;
  mc_.SendToZone(scope, std::move(item));
}

namespace {
// Forwarders see the same predicate strings repeatedly (once per child per
// hop); memoize the parse.
const astrolabe::sql::Expr* CachedPredicate(const std::string& text) {
  static std::map<std::string, std::shared_ptr<const astrolabe::sql::Expr>>
      cache;
  auto it = cache.find(text);
  if (it == cache.end()) {
    std::shared_ptr<const astrolabe::sql::Expr> parsed;
    try {
      parsed = std::shared_ptr<const astrolabe::sql::Expr>(
          astrolabe::sql::ParseExpression(text).release());
    } catch (const astrolabe::sql::ParseError&) {
      parsed = nullptr;  // cache the failure too
    }
    it = cache.emplace(text, std::move(parsed)).first;
  }
  return it->second.get();
}
}  // namespace

bool PubSubService::ChildAdmits(const Item& item, const Row& child_row) {
  // Publisher-controlled forwarding predicate (§8 extension): evaluated
  // against the child zone's aggregated attributes at every hop, and
  // against the leaf MIB row at the last hop.
  if (auto pred_it = item.metadata.find(kAttrFwdPredicate);
      pred_it != item.metadata.end()) {
    const astrolabe::sql::Expr* pred =
        CachedPredicate(pred_it->second.AsString());
    if (pred == nullptr ||
        !astrolabe::sql::EvalPredicate(*pred, child_row)) {
      return false;
    }
  }
  auto bits_it = item.metadata.find(kAttrSubBits);
  if (bits_it == item.metadata.end()) return true;  // untargeted: flood
  auto subs_it = child_row.find(kAttrSubs);
  if (subs_it == child_row.end() ||
      subs_it->second.type() != AttrValue::Type::kBits) {
    // No aggregated filter known for this child (e.g. not yet converged):
    // err on the side of delivery; the leaf re-check stays exact.
    return true;
  }
  const astrolabe::BitVector& agg = subs_it->second.AsBits();
  auto all_set = [&agg](const ValueList& group) {
    for (const AttrValue& v : group) {
      const std::int64_t pos = v.AsInt();
      if (pos < 0 || static_cast<std::size_t>(pos) >= agg.size() ||
          !agg.Test(static_cast<std::size_t>(pos))) {
        return false;
      }
    }
    return true;
  };
  // Either a flat conjunctive group (exact-subject stamping) or a
  // disjunction of groups (hierarchical stamping: one per prefix).
  const ValueList& stamped = bits_it->second.AsList();
  const bool grouped =
      !stamped.empty() && stamped.front().type() == AttrValue::Type::kList;
  if (!grouped) return all_set(stamped);
  for (const AttrValue& g : stamped) {
    if (all_set(g.AsList())) return true;
  }
  return false;
}

bool PubSubService::SubjectMatchesLocally(const std::string& subject) const {
  if (subjects_.contains(subject)) return true;
  if (!options_.hierarchical_subjects) return false;
  for (const std::string& mine : subjects_) {
    if (SubjectIsUnder(subject, mine)) return true;
  }
  return false;
}

bool PubSubService::Matches(const Item& item) const {
  auto subj_it = item.metadata.find(kAttrSubject);
  if (subj_it == item.metadata.end()) return false;
  if (!SubjectMatchesLocally(subj_it->second.AsString())) return false;
  return !predicate_ ||
         astrolabe::sql::EvalPredicate(*predicate_, item.metadata);
}

void PubSubService::OnDeliver(const Item& item) {
  auto subj_it = item.metadata.find(kAttrSubject);
  if (subj_it == item.metadata.end()) {
    // Untargeted multicast: hand through.
    ++stats_.delivered;
    if (on_news_) on_news_(item);
    return;
  }
  // Exact re-check (paper §6): Bloom admission may be a false positive.
  if (!SubjectMatchesLocally(subj_it->second.AsString())) {
    // Distinguish a genuine filter collision (this leaf's own filter
    // admits the stamped bits) from ordinary relay traffic.
    Row self;
    self[kAttrSubs] = filter_.bits();
    if (ChildAdmits(item, self)) {
      ++stats_.false_positives;
    } else {
      ++stats_.relay_discards;
    }
    return;
  }
  if (predicate_ &&
      !astrolabe::sql::EvalPredicate(*predicate_, item.metadata)) {
    ++stats_.predicate_rejected;
    return;
  }
  ++stats_.delivered;
  if (on_news_) on_news_(item);
}

}  // namespace nw::pubsub
