// The paper's §7 "early internal prototype" subscription scheme: each
// publisher is represented by its own MIB attribute holding a small bit
// mask of news categories the subscriber wants from that publisher; masks
// are aggregated up the tree by binary OR, one aggregation term per
// publisher. The scheme works but scales linearly with the number of
// publishers (one attribute + one aggregation each) — the comparison that
// motivates the Bloom-filter design (reproduced in E9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "multicast/multicast.h"

namespace nw::pubsub {

// Metadata attribute names on publications.
inline constexpr const char* kAttrPublisher = "publisher";
inline constexpr const char* kAttrCatMask = "catmask";

// MIB attribute and aggregation function for one publisher.
std::string CategoryAttrFor(const std::string& publisher);
std::string CategoryFunctionNameFor(const std::string& publisher);
std::string CategoryFunctionCodeFor(const std::string& publisher);

class CategorySubscriptions {
 public:
  using NewsCallback = std::function<void(const multicast::Item&)>;

  CategorySubscriptions(astrolabe::Agent& agent,
                        multicast::MulticastService& mc);

  // Subscribe to `publisher` items in any category of `mask` (bit i set =
  // category i wanted). mask == 0 unsubscribes.
  void Subscribe(const std::string& publisher, std::uint64_t mask);
  std::uint64_t MaskFor(const std::string& publisher) const;

  void SetNewsCallback(NewsCallback cb) { on_news_ = std::move(cb); }

  // Publishes an item from `publisher` tagged with the given category mask.
  void Publish(multicast::Item item, const std::string& publisher,
               std::uint64_t categories,
               const astrolabe::ZonePath& scope = astrolabe::ZonePath::Root());

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t rejected = 0;  // reached the leaf but mask mismatch
  };
  const Stats& stats() const { return stats_; }

  // Forwarding decision, shared with tests: the aggregated per-publisher
  // mask of the child must intersect the item's categories. A child with
  // no aggregated attribute has no subscribers for that publisher.
  static bool ChildAdmits(const multicast::Item& item,
                          const astrolabe::Row& child_row);

 private:
  void OnDeliver(const multicast::Item& item);

  astrolabe::Agent& agent_;
  multicast::MulticastService& mc_;
  std::map<std::string, std::uint64_t> masks_;
  NewsCallback on_news_;
  Stats stats_;
};

}  // namespace nw::pubsub
