// Publish/subscribe on top of the Astrolabe multicast (paper §6).
//
// Each leaf publishes a Bloom filter of its subscriptions in its MIB
// ("subs" attribute); an aggregation function ORs the filters up the tree;
// publications are stamped with their subject's bit positions; forwarding
// components test the stamped bits against each child zone's aggregated
// filter; and the leaf performs the exact subject (and optional SQL
// predicate) re-check the paper requires because Bloom matches can be
// false positives.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "astrolabe/sql/ast.h"
#include "multicast/multicast.h"
#include "pubsub/bloom_filter.h"

namespace nw::pubsub {

// Metadata attribute names used on publications.
inline constexpr const char* kAttrSubject = "subject";
// Bloom positions stamped on the item: either a flat list<int> (one
// conjunctive group — exact-subject matching) or a list of list<int>
// (disjunction of groups — hierarchical matching stamps one group per
// subject prefix). A child admits if any group is fully present.
inline constexpr const char* kAttrSubBits = "subbits";
inline constexpr const char* kAttrFwdPredicate = "fwd_pred";  // SQL (§8)

// Dot-separated subject hierarchy helpers ("tech.linux.kernel" is under
// "tech.linux" and "tech"). Part of the §7 direction of enriching "the
// subscription space within which our Bloom filters operate".
bool SubjectIsUnder(const std::string& subject, const std::string& ancestor);
std::vector<std::string> SubjectPrefixes(const std::string& subject);
// MIB / aggregated attribute holding the subscription Bloom filter.
inline constexpr const char* kAttrSubs = "subs";

// SQL aggregation function that merges subscription filters up the tree.
inline constexpr const char* kSubsFunctionName = "pubsub.subs";
inline const char* SubsFunctionCode() { return "SELECT OR(subs) AS subs"; }

struct PubSubStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;        // exact matches handed to the app
  // Items that reached this leaf *because its own filter admitted them*
  // yet failed the exact re-check — genuine Bloom collisions (§6).
  std::uint64_t false_positives = 0;
  // Items seen only because this node relayed them for its zone; not a
  // filter error.
  std::uint64_t relay_discards = 0;
  std::uint64_t predicate_rejected = 0;
};

struct PubSubOptions {
  BloomConfig bloom;
  // When true, a subscription to "tech" also receives "tech.linux",
  // "tech.linux.kernel", ...: publications stamp one Bloom group per
  // subject prefix and the leaf re-check performs the prefix match.
  bool hierarchical_subjects = false;
};

class PubSubService {
 public:
  using NewsCallback = std::function<void(const multicast::Item&)>;

  // Attaches to an agent+multicast pair. Installs the forwarding filter
  // and the delivery re-check; maintains the "subs" MIB attribute.
  PubSubService(astrolabe::Agent& agent, multicast::MulticastService& mc,
                BloomConfig bloom)
      : PubSubService(agent, mc, PubSubOptions{bloom, false}) {}
  PubSubService(astrolabe::Agent& agent, multicast::MulticastService& mc,
                PubSubOptions options);

  // ---- subscriber side ---------------------------------------------------
  void Subscribe(const std::string& subject);
  void Unsubscribe(const std::string& subject);
  bool IsSubscribed(const std::string& subject) const {
    return subjects_.contains(subject);
  }
  const std::set<std::string>& subjects() const { return subjects_; }

  // Optional richer selection (paper §8): an SQL predicate over the item
  // metadata, evaluated after the exact subject match. Throws
  // sql::ParseError on malformed input.
  void SetPredicate(const std::string& sql_expr);
  void ClearPredicate() { predicate_.reset(); }

  void SetNewsCallback(NewsCallback cb) { on_news_ = std::move(cb); }

  // ---- publisher side ------------------------------------------------------
  // Stamps subject + Bloom positions onto the item and disseminates it
  // within `scope` (root by default). `forward_predicate` implements the
  // paper's §8 "future feature": an SQL predicate over the *aggregated
  // attributes of each child zone* that must hold before the item is
  // forwarded into that zone (e.g. "premium = 1" to deliver only where
  // premium subscribers exist — leaf rows are MIB rows, so the same test
  // selects the final recipients). Throws sql::ParseError if malformed.
  void Publish(multicast::Item item, const std::string& subject,
               const astrolabe::ZonePath& scope = astrolabe::ZonePath::Root(),
               const std::string& forward_predicate = "");

  const PubSubStats& stats() const { return stats_; }
  const BloomFilter& filter() const { return filter_; }

  // True iff the item's subject is locally subscribed and the optional
  // predicate accepts its metadata. Used by repair/state-transfer paths
  // that bypass the normal delivery flow; does not update stats.
  bool Matches(const multicast::Item& item) const;

  // The forwarding-filter decision, exposed for tests: does `child_row`'s
  // aggregated state admit an item with these metadata attributes?
  static bool ChildAdmits(const multicast::Item& item,
                          const astrolabe::Row& child_row);

 private:
  void RebuildFilter();
  void OnDeliver(const multicast::Item& item);
  bool SubjectMatchesLocally(const std::string& subject) const;

  astrolabe::Agent& agent_;
  multicast::MulticastService& mc_;
  PubSubOptions options_;
  BloomFilter filter_;
  std::set<std::string> subjects_;
  std::optional<std::string> predicate_text_;
  std::shared_ptr<const astrolabe::sql::Expr> predicate_;
  NewsCallback on_news_;
  PubSubStats stats_;
};

}  // namespace nw::pubsub
