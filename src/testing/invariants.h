// Reusable system-invariant checkers (DESIGN.md §5): the properties a
// NewsWire deployment must satisfy after faults heal and repair quiesces,
// extracted from the ad-hoc loops that used to live in torture_test.cc.
//
// Each checker returns a structured InvariantReport rather than asserting,
// so tests, benches, and the CLI can all consume the same verdicts:
//
//   testing::DeliveryRecorder rec(sys);
//   ... run scenario ...
//   EXPECT_TRUE(testing::CheckNoDuplicateDelivery(sys, rec).ok());
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "astrolabe/deployment.h"
#include "newswire/system.h"

namespace nw::testing {

// ---- reports -----------------------------------------------------------

struct Violation {
  std::string detail;
};

struct InvariantReport {
  std::string invariant;          // e.g. "membership-agreement"
  std::vector<Violation> violations;
  std::size_t checked = 0;        // facts inspected (deliveries, agents, ...)
  double completeness = 1.0;      // set by CheckSubscriberCompleteness

  bool ok() const noexcept { return violations.empty(); }
  // "<invariant>: ok (N checked)" or the first few violations, for use in
  // EXPECT_TRUE(report.ok()) << report.Summary().
  std::string Summary() const;
};

// ---- delivery recording ------------------------------------------------

// One accepted delivery at a live subscriber. `incarnation` is the
// subscriber node's incarnation at delivery time: a crash wipes the
// process-memory cache, so re-receiving an item after a restart is
// legitimate, while a duplicate within one incarnation is a bug.
struct DeliveryRecord {
  double time = 0;
  std::size_t subscriber = 0;
  std::uint32_t incarnation = 0;
  std::string item_id;
  std::string subject;
  std::string scope;

  bool operator==(const DeliveryRecord& other) const = default;
};

// Installs an accounting handler on every subscriber of `sys` and records
// the full delivery trace. Construct before running the scenario and keep
// alive for the lifetime of the system.
//
// Handlers run inside simulator events, which may execute on different
// worker shards concurrently under the parallel engine (DESIGN.md §9), so
// each subscriber appends to its own single-writer buffer. trace() merges
// the buffers canonically by (time, subscriber, arrival order), which is
// identical for every thread count — the merged trace and TraceHash() are
// engine-mode-independent.
class DeliveryRecorder {
 public:
  explicit DeliveryRecorder(newswire::NewswireSystem& sys);

  DeliveryRecorder(const DeliveryRecorder&) = delete;
  DeliveryRecorder& operator=(const DeliveryRecorder&) = delete;

  // Canonically merged trace; call only outside RunFor (between windows).
  const std::vector<DeliveryRecord>& trace() const;

  // Order-sensitive digest of the whole trace; two runs of the same
  // (config, seed, fault plan) must produce equal hashes — at any
  // --sim-threads setting.
  std::uint64_t TraceHash() const;

 private:
  newswire::NewswireSystem& sys_;
  // Per-subscriber append-only buffers (single writer: that node's events).
  std::vector<std::vector<DeliveryRecord>> per_sub_;
  mutable std::vector<DeliveryRecord> trace_;  // cached canonical merge
};

// ---- published-item bookkeeping ----------------------------------------

// What a scenario published, for completeness accounting.
struct PublishedItem {
  std::string id;
  std::string subject;
  std::string scope = "/";
};

// ---- checkers ----------------------------------------------------------

// Every live agent's root-zone summary agrees the membership is
// `expected_members` (or at least `min_members` when > 0, for lossy steady
// states where a row may be mid-refresh; over-counting is always a
// violation).
InvariantReport CheckMembershipAgreement(astrolabe::Deployment& dep,
                                         std::int64_t expected_members,
                                         std::int64_t min_members = 0);
// NewswireSystem variant: expected = live node count of the deployment.
InvariantReport CheckMembershipAgreement(newswire::NewswireSystem& sys);

// Every live subscriber's cache holds every published item matching one of
// its subjects (and whose scope covers it). The report's `completeness`
// field carries the achieved ratio; a ratio below `min_completeness`
// yields per-item violations.
InvariantReport CheckSubscriberCompleteness(
    newswire::NewswireSystem& sys, const std::vector<PublishedItem>& published,
    double min_completeness = 1.0);

// No subscriber accepted the same item twice within one incarnation.
InvariantReport CheckNoDuplicateDelivery(newswire::NewswireSystem& sys,
                                         const DeliveryRecorder& recorder);

// Every delivery went to a subscriber whose zone path lies inside the
// item's dissemination scope (paper §8: scoped items never leak).
InvariantReport CheckNoScopeLeak(newswire::NewswireSystem& sys,
                                 const DeliveryRecorder& recorder);

// Every delivery went to an actual subscriber of the item's subject.
InvariantReport CheckSubscriptionSoundness(newswire::NewswireSystem& sys,
                                           const DeliveryRecorder& recorder);

// Two delivery traces are bit-identical (replay determinism).
InvariantReport CheckReplayIdentical(const std::vector<DeliveryRecord>& a,
                                     const std::vector<DeliveryRecord>& b);

// Both traces delivered the same set of (subscriber, item) pairs — order,
// timing, and duplicate re-deliveries across incarnations are ignored.
// This is the right equality for fault scenarios compared against a
// fault-free run: a crashed subscriber loses its cache, so cache-based
// completeness under-reports even when every delivery happened.
InvariantReport CheckSameDeliverySets(const std::vector<DeliveryRecord>& a,
                                      const std::vector<DeliveryRecord>& b);

// Content-only hash of every agent's replicated state: zone paths, row
// keys, and attribute names/values at every level — deliberately excluding
// row versions and refresh times. Two runs that converged to the same
// knowledge hash identically even when their gossip trajectories (message
// counts, timing, version numbers) differed; the wire-format equivalence
// tests compare full- and delta-mode runs through this.
std::uint64_t MibContentHash(astrolabe::Deployment& dep);

}  // namespace nw::testing
