#include "testing/invariants.h"

#include <algorithm>
#include <map>
#include <set>

#include "astrolabe/agent.h"
#include "astrolabe/zone_path.h"
#include "util/hash.h"

namespace nw::testing {

namespace {

// Exact or (when the system runs hierarchical subjects, §7) dot-prefix
// subscription match: "tech" covers "tech.linux".
bool MatchesSubject(const std::string& subscribed, const std::string& subject,
                    bool hierarchical) {
  if (subscribed == subject) return true;
  if (!hierarchical) return false;
  return subject.size() > subscribed.size() &&
         subject.compare(0, subscribed.size(), subscribed) == 0 &&
         subject[subscribed.size()] == '.';
}

bool SubscribedTo(newswire::NewswireSystem& sys, std::size_t subscriber,
                  const std::string& subject) {
  for (const std::string& s : sys.SubjectsOf(subscriber)) {
    if (MatchesSubject(s, subject, sys.config().hierarchical_subjects)) {
      return true;
    }
  }
  return false;
}

bool ScopeCovers(const std::string& scope, const astrolabe::ZonePath& path) {
  return astrolabe::ZonePath::Parse(scope).IsPrefixOf(path);
}

bool SubscriberAlive(newswire::NewswireSystem& sys, std::size_t i) {
  return sys.deployment().net().IsAlive(sys.subscriber_agent(i).id());
}

}  // namespace

std::string InvariantReport::Summary() const {
  std::string out = invariant + ": ";
  if (ok()) {
    return out + "ok (" + std::to_string(checked) + " checked)";
  }
  out += std::to_string(violations.size()) + " violation(s) of " +
         std::to_string(checked) + " checked";
  constexpr std::size_t kMaxListed = 5;
  for (std::size_t i = 0; i < std::min(violations.size(), kMaxListed); ++i) {
    out += "\n  - " + violations[i].detail;
  }
  if (violations.size() > kMaxListed) {
    out += "\n  ... " + std::to_string(violations.size() - kMaxListed) +
           " more";
  }
  return out;
}

DeliveryRecorder::DeliveryRecorder(newswire::NewswireSystem& sys)
    : sys_(sys), per_sub_(sys.subscriber_count()) {
  for (std::size_t i = 0; i < sys_.subscriber_count(); ++i) {
    sys_.subscriber(i).AddNewsHandler(
        [this, i](const newswire::NewsItem& item, double) {
          DeliveryRecord rec;
          rec.time = sys_.Now();
          rec.subscriber = i;
          rec.incarnation =
              sys_.deployment().net().Incarnation(sys_.subscriber_agent(i).id());
          rec.item_id = item.Id();
          rec.subject = item.subject;
          rec.scope = item.scope;
          // Only subscriber i's own events run this handler, so the
          // per-subscriber buffer stays single-writer under the parallel
          // engine; trace() merges the buffers canonically.
          per_sub_[i].push_back(std::move(rec));
        });
  }
}

const std::vector<DeliveryRecord>& DeliveryRecorder::trace() const {
  std::size_t total = 0;
  for (const auto& buf : per_sub_) total += buf.size();
  if (trace_.size() != total) {
    // Canonical merge: (time, subscriber, per-subscriber arrival order).
    // Each buffer is time-ordered on its own, so a stable sort keyed on
    // (time, subscriber) preserves arrival order within a subscriber.
    trace_.clear();
    trace_.reserve(total);
    for (const auto& buf : per_sub_) {
      trace_.insert(trace_.end(), buf.begin(), buf.end());
    }
    std::stable_sort(trace_.begin(), trace_.end(),
                     [](const DeliveryRecord& a, const DeliveryRecord& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.subscriber < b.subscriber;
                     });
  }
  return trace_;
}

std::uint64_t DeliveryRecorder::TraceHash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) { h = util::HashCombine(h, v); };
  for (const DeliveryRecord& rec : trace()) {
    std::uint64_t time_bits;
    static_assert(sizeof time_bits == sizeof rec.time);
    __builtin_memcpy(&time_bits, &rec.time, sizeof time_bits);
    mix(time_bits);
    mix(rec.subscriber);
    mix(rec.incarnation);
    mix(util::Fnv1a64(rec.item_id));
    mix(util::Fnv1a64(rec.scope));
  }
  return h;
}

InvariantReport CheckMembershipAgreement(astrolabe::Deployment& dep,
                                         std::int64_t expected_members,
                                         std::int64_t min_members) {
  InvariantReport report;
  report.invariant = "membership-agreement";
  if (min_members <= 0) min_members = expected_members;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    if (!dep.net().IsAlive(dep.agent(i).id())) continue;
    ++report.checked;
    astrolabe::Row summary = dep.agent(i).ZoneSummary(0);
    auto it = summary.find(astrolabe::kAttrMembers);
    if (it == summary.end()) {
      report.violations.push_back(
          {"agent " + std::to_string(i) + " has no membership summary"});
      continue;
    }
    const std::int64_t members = it->second.AsInt();
    if (members < min_members || members > expected_members) {
      report.violations.push_back(
          {"agent " + std::to_string(i) + " sees " + std::to_string(members) +
           " members, want [" + std::to_string(min_members) + ", " +
           std::to_string(expected_members) + "]"});
    }
  }
  return report;
}

InvariantReport CheckMembershipAgreement(newswire::NewswireSystem& sys) {
  astrolabe::Deployment& dep = sys.deployment();
  std::int64_t live = 0;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    if (dep.net().IsAlive(dep.agent(i).id())) ++live;
  }
  return CheckMembershipAgreement(dep, live);
}

InvariantReport CheckSubscriberCompleteness(
    newswire::NewswireSystem& sys, const std::vector<PublishedItem>& published,
    double min_completeness) {
  InvariantReport report;
  report.invariant = "subscriber-completeness";
  std::size_t expected = 0, got = 0;
  std::vector<Violation> missing;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (!SubscriberAlive(sys, i)) continue;
    const astrolabe::ZonePath& path = sys.subscriber_agent(i).path();
    for (const PublishedItem& item : published) {
      if (!SubscribedTo(sys, i, item.subject)) continue;
      if (!ScopeCovers(item.scope, path)) continue;
      ++expected;
      if (sys.subscriber(i).cache().Contains(item.id)) {
        ++got;
      } else {
        missing.push_back({"subscriber " + std::to_string(i) + " (" +
                           path.ToString() + ") is missing " + item.id +
                           " [" + item.subject + "]"});
      }
    }
  }
  report.checked = expected;
  report.completeness = expected ? double(got) / double(expected) : 1.0;
  if (report.completeness < min_completeness) {
    report.violations = std::move(missing);
  }
  return report;
}

InvariantReport CheckNoDuplicateDelivery(newswire::NewswireSystem& sys,
                                         const DeliveryRecorder& recorder) {
  (void)sys;
  InvariantReport report;
  report.invariant = "no-duplicate-delivery";
  // (subscriber, incarnation, item) must be unique: the cache deduplicates
  // within a process lifetime, and only a crash may reset it.
  std::set<std::tuple<std::size_t, std::uint32_t, std::string>> seen;
  for (const DeliveryRecord& rec : recorder.trace()) {
    ++report.checked;
    if (!seen.insert({rec.subscriber, rec.incarnation, rec.item_id}).second) {
      report.violations.push_back(
          {"subscriber " + std::to_string(rec.subscriber) + " accepted " +
           rec.item_id + " twice within incarnation " +
           std::to_string(rec.incarnation)});
    }
  }
  return report;
}

InvariantReport CheckNoScopeLeak(newswire::NewswireSystem& sys,
                                 const DeliveryRecorder& recorder) {
  InvariantReport report;
  report.invariant = "no-scope-leak";
  for (const DeliveryRecord& rec : recorder.trace()) {
    ++report.checked;
    const astrolabe::ZonePath& path =
        sys.subscriber_agent(rec.subscriber).path();
    if (!ScopeCovers(rec.scope, path)) {
      report.violations.push_back(
          {"item " + rec.item_id + " scoped to " + rec.scope + " leaked to " +
           path.ToString()});
    }
  }
  return report;
}

InvariantReport CheckSubscriptionSoundness(newswire::NewswireSystem& sys,
                                           const DeliveryRecorder& recorder) {
  InvariantReport report;
  report.invariant = "subscription-soundness";
  for (const DeliveryRecord& rec : recorder.trace()) {
    ++report.checked;
    if (!SubscribedTo(sys, rec.subscriber, rec.subject)) {
      report.violations.push_back(
          {"non-subscriber " + std::to_string(rec.subscriber) + " received " +
           rec.item_id + " [" + rec.subject + "]"});
    }
  }
  return report;
}

InvariantReport CheckReplayIdentical(const std::vector<DeliveryRecord>& a,
                                     const std::vector<DeliveryRecord>& b) {
  InvariantReport report;
  report.invariant = "replay-identical";
  report.checked = std::max(a.size(), b.size());
  if (a.size() != b.size()) {
    report.violations.push_back(
        {"trace lengths differ: " + std::to_string(a.size()) + " vs " +
         std::to_string(b.size())});
    return report;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      report.violations.push_back(
          {"trace diverges at record " + std::to_string(i) + ": " +
           a[i].item_id + "@sub" + std::to_string(a[i].subscriber) + " vs " +
           b[i].item_id + "@sub" + std::to_string(b[i].subscriber)});
      if (report.violations.size() >= 5) break;
    }
  }
  return report;
}

InvariantReport CheckSameDeliverySets(const std::vector<DeliveryRecord>& a,
                                      const std::vector<DeliveryRecord>& b) {
  InvariantReport report;
  report.invariant = "same-delivery-sets";
  auto as_set = [](const std::vector<DeliveryRecord>& trace) {
    std::set<std::pair<std::size_t, std::string>> out;
    for (const DeliveryRecord& rec : trace) out.insert({rec.subscriber, rec.item_id});
    return out;
  };
  const auto sa = as_set(a);
  const auto sb = as_set(b);
  report.checked = std::max(sa.size(), sb.size());
  for (const auto& [sub, item] : sa) {
    if (!sb.contains({sub, item})) {
      report.violations.push_back({"subscriber " + std::to_string(sub) +
                                   " got " + item + " only in trace A"});
    }
  }
  for (const auto& [sub, item] : sb) {
    if (!sa.contains({sub, item})) {
      report.violations.push_back({"subscriber " + std::to_string(sub) +
                                   " got " + item + " only in trace B"});
    }
  }
  return report;
}

std::uint64_t MibContentHash(astrolabe::Deployment& dep) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) { h = util::HashCombine(h, v); };
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const astrolabe::Agent& agent = dep.agent(i);
    mix(util::Fnv1a64(agent.path().ToString()));
    for (std::size_t level = 0; level < agent.Depth(); ++level) {
      for (const auto& [key, entry] : agent.TableAt(level)) {
        mix(util::Fnv1a64(key));
        for (const auto& [name, value] : entry.attrs) {
          mix(util::Fnv1a64(name));
          mix(util::Fnv1a64(value.ToString()));
        }
      }
    }
  }
  return h;
}

}  // namespace nw::testing
