#include "newswire/workload.h"

#include <cmath>

namespace nw::newswire {

double NewsWorkload::RateAt(double t) const {
  const double phase = 2.0 * 3.14159265358979 * t / config_.day_seconds;
  return 1.0 + config_.diurnal_amplitude * std::sin(phase);
}

void NewsWorkload::ScheduleAll() {
  const double start = sys_.Now();
  const double rate_per_sec = config_.base_items_per_hour / 3600.0;
  const double peak = rate_per_sec * (1.0 + config_.diurnal_amplitude);

  // Routine stream: non-homogeneous Poisson by thinning against the peak.
  double t = 0;
  while (t < config_.duration) {
    t += rng_.NextExponential(1.0 / std::max(peak, 1e-9));
    if (t >= config_.duration) break;
    if (!rng_.NextBool(RateAt(t) * rate_per_sec / peak)) continue;
    const std::string subject = sys_.RandomSubject();
    const std::int64_t urgency = 4 + std::int64_t(rng_.NextBelow(5));
    const std::size_t publisher = next_publisher_++ % sys_.publisher_count();
    sys_.deployment().sim().At(
        start + t, [this, publisher, subject, urgency, start, t] {
          PublishOne(publisher, subject, urgency, /*burst=*/false, start + t);
        });
    ++stats_.routine_scheduled;
  }

  // Breaking-news bursts: homogeneous Poisson, each a cluster of urgent
  // items on a single subject.
  double bt = 0;
  while (true) {
    bt += rng_.NextExponential(3600.0 / std::max(config_.bursts_per_hour, 1e-9));
    if (bt >= config_.duration) break;
    ++stats_.bursts;
    const std::string subject = sys_.RandomSubject();
    const std::size_t publisher = next_publisher_++ % sys_.publisher_count();
    for (std::size_t k = 0; k < config_.burst_items; ++k) {
      const double when =
          bt + config_.burst_span * double(k) / double(config_.burst_items);
      if (when >= config_.duration) break;
      sys_.deployment().sim().At(
          start + when, [this, publisher, subject, start, when] {
            PublishOne(publisher, subject, /*urgency=*/1, /*burst=*/true,
                       start + when);
          });
      ++stats_.burst_items;
    }
  }
}

void NewsWorkload::PublishOne(std::size_t publisher,
                              const std::string& subject,
                              std::int64_t urgency, bool burst, double now) {
  NewsItem item;
  item.subject = subject;
  item.headline = (burst ? "BREAKING " : "story ") + subject;
  item.urgency = urgency;
  item.body_bytes = config_.body_min +
                    rng_.NextBelow(config_.body_max - config_.body_min + 1);
  Publisher& pub = sys_.publisher(publisher);
  const std::uint64_t seq = pub.next_seq();
  if (!pub.Publish(item)) {
    ++stats_.throttled;
    return;
  }
  Published record;
  record.id = pub.name() + "#" + std::to_string(seq);
  record.subject = subject;
  record.at = now;
  record.burst = burst;
  published_.push_back(record);

  if (rng_.NextBool(config_.revision_prob)) {
    NewsItem prev = item;
    prev.publisher = pub.name();
    prev.seq = seq;
    MaybeScheduleRevision(publisher, prev);
  }
}

void NewsWorkload::MaybeScheduleRevision(std::size_t publisher,
                                         const NewsItem& item) {
  const double delay = rng_.NextExponential(config_.revision_delay_mean);
  ++stats_.revisions_scheduled;
  sys_.deployment().sim().After(delay, [this, publisher, item] {
    NewsItem updated;
    updated.subject = item.subject;
    updated.headline = item.headline + " (updated)";
    updated.urgency = item.urgency;
    updated.body_bytes = item.body_bytes + 200;
    Publisher& pub = sys_.publisher(publisher);
    const std::uint64_t seq = pub.next_seq();
    if (!pub.PublishRevision(item, updated)) {
      ++stats_.throttled;
      return;
    }
    Published record;
    record.id = pub.name() + "#" + std::to_string(seq);
    record.subject = item.subject;
    record.at = sys_.Now();
    record.revision = true;
    published_.push_back(record);
  });
}

}  // namespace nw::newswire
