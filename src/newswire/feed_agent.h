// Bootstrap feed agents (paper §10): "we have already developed some
// agents that are capable of transforming the current RSS/HTML information
// from some publishers into message streams for the system to bootstrap
// it." A FeedAgent runs next to a NewsWire publisher: it polls a legacy
// pull-model site (baseline::PullServer) over the simulated network —
// RSS summary first, then bodies of unseen articles — and republishes each
// new article into NewsWire.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "baseline/pull.h"
#include "newswire/publisher.h"

namespace nw::newswire {

struct FeedAgentConfig {
  sim::NodeId legacy_server = 0;
  double poll_interval = 60.0;
  std::uint64_t categories = 1;  // category mask stamped on republished items
};

class FeedAgent {
 public:
  FeedAgent(astrolabe::Agent& agent, Publisher& publisher,
            FeedAgentConfig config);

  void Start();

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t republished = 0;
    std::uint64_t throttled = 0;  // rejected by the publisher's flow control
  };
  const Stats& stats() const { return stats_; }

 private:
  void Poll();
  void OnResponse(const sim::Message& msg);

  astrolabe::Agent& agent_;
  Publisher& publisher_;
  FeedAgentConfig config_;
  std::set<std::uint64_t> seen_;
  std::uint64_t max_seen_ = 0;
  Stats stats_;
};

}  // namespace nw::newswire
