// The news item model (paper §7): items carry NITF-like metadata —
// publisher, subject, category set, urgency, revision chain — used both
// for subscription matching and for cache management (§9). Metadata is
// represented as an Astrolabe attribute row so subscriber SQL predicates
// (§8) evaluate over it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "astrolabe/table.h"
#include "multicast/multicast.h"

namespace nw::newswire {

struct NewsItem {
  std::string publisher;
  std::uint64_t seq = 0;  // per-publisher; (publisher, seq) is the unique id
  std::string subject;    // e.g. "tech.linux" — the subscription key
  std::string headline;
  std::size_t body_bytes = 2048;
  std::uint64_t categories = 0;  // NITF-style category bitmask
  std::int64_t revision = 1;
  std::string supersedes;  // id of the item this revision replaces
  std::int64_t urgency = 5;  // NITF urgency 1 (flash) .. 8 (routine)
  double published_at = 0;
  std::uint64_t signature = 0;  // publisher authentication (§8)
  // Dissemination scope (paper §8: zone-restricted publishing). Signed, and
  // honored by the repair/state-transfer paths so scoped items never leak
  // outside their zone.
  std::string scope = "/";
  // Publisher-controlled targeting predicate (§8 "future feature"): SQL
  // over zone-aggregate / leaf MIB attributes, checked at every forwarding
  // hop and re-checked on repair arrivals. Empty = deliver to all
  // subscribers of the subject.
  std::string forward_predicate;

  // Unique id (paper §9: "news items are uniquely identified by the
  // publisher as part of the news item meta-data").
  std::string Id() const { return publisher + "#" + std::to_string(seq); }

  // Digest covering all authenticated fields.
  std::uint64_t Digest() const;

  // Converts to/from the metadata row carried on the wire.
  astrolabe::Row ToMetadata() const;
  static std::optional<NewsItem> FromMetadata(const astrolabe::Row& row);

  // Wraps this item into a multicast item (metadata + body size).
  multicast::Item ToMulticastItem() const;
  static std::optional<NewsItem> FromMulticastItem(const multicast::Item& item);
};

}  // namespace nw::newswire
