#include "newswire/feed_agent.h"

namespace nw::newswire {

using baseline::PullMode;
using baseline::PullServer;

FeedAgent::FeedAgent(astrolabe::Agent& agent, Publisher& publisher,
                     FeedAgentConfig config)
    : agent_(agent), publisher_(publisher), config_(config) {
  agent_.RegisterHandler(PullServer::kResponseType,
                         [this](const sim::Message& msg) { OnResponse(msg); });
}

void FeedAgent::Start() {
  agent_.Schedule(config_.poll_interval * agent_.Rng().NextDouble(),
                  [this] { Poll(); });
}

void FeedAgent::Poll() {
  ++stats_.polls;
  PullServer::Request req;
  req.mode = PullMode::kRssSummary;
  agent_.Send(sim::Message::Make(agent_.id(), config_.legacy_server,
                                 PullServer::kRequestType, req, 32));
  agent_.Schedule(config_.poll_interval, [this] { Poll(); });
}

void FeedAgent::OnResponse(const sim::Message& msg) {
  const auto& resp = msg.As<PullServer::Response>();
  if (resp.not_modified) return;
  if (resp.summaries) {
    // RSS summary: if it names unseen articles, fetch their bodies.
    bool any_new = false;
    for (const auto& article : resp.articles) {
      if (!seen_.contains(article.id)) any_new = true;
    }
    if (any_new) {
      PullServer::Request req;
      req.mode = PullMode::kFullPage;
      req.bodies_only = true;
      req.last_seen_id = max_seen_;
      agent_.Send(sim::Message::Make(agent_.id(), config_.legacy_server,
                                     PullServer::kRequestType, req, 32));
    }
    return;
  }
  // Bodies in hand: republish each unseen article into NewsWire.
  for (const auto& article : resp.articles) {
    if (!seen_.insert(article.id).second) continue;
    max_seen_ = std::max(max_seen_, article.id);
    NewsItem item;
    item.subject = article.subject;
    item.headline = "feed:" + std::to_string(article.id);
    item.body_bytes = article.body_bytes;
    item.categories = config_.categories;
    if (publisher_.Publish(std::move(item))) {
      ++stats_.republished;
    } else {
      ++stats_.throttled;
    }
  }
}

}  // namespace nw::newswire
