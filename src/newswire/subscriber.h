// The subscriber application (paper §8, §9): subscribes to subjects (plus
// an optional SQL predicate over item metadata), caches delivered items,
// verifies publisher signatures, repairs missed items through peer
// anti-entropy over the cache, and catches up via state transfer when
// joining.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "astrolabe/cert.h"
#include "newswire/message_cache.h"
#include "pubsub/pubsub.h"
#include "util/stats.h"

namespace nw::newswire {

struct SubscriberConfig {
  double repair_interval = 10.0;  // 0 disables peer anti-entropy (§9)
  double repair_window = 60.0;    // how far back digests reach
  MessageCache::Config cache;
  // When true, items from unknown publishers or with bad signatures are
  // rejected (paper §8: restrictions "to handle the authentication of
  // publishers, to assure the authenticity of the data they publish").
  bool verify_publishers = false;
};

class Subscriber {
 public:
  // Called with each accepted item and its end-to-end latency (seconds).
  using NewsHandler = std::function<void(const NewsItem&, double latency)>;

  Subscriber(astrolabe::Agent& agent, pubsub::PubSubService& pubsub,
             SubscriberConfig config);

  // Begins the repair timer. Call after the agent is on the network.
  void Start();

  void Subscribe(const std::string& subject) { pubsub_.Subscribe(subject); }
  void Unsubscribe(const std::string& subject) { pubsub_.Unsubscribe(subject); }
  void SetPredicate(const std::string& sql) { pubsub_.SetPredicate(sql); }
  // Handlers are additive: the system harness installs its accounting
  // handler and applications add their own alongside it.
  void AddNewsHandler(NewsHandler handler) {
    handlers_.push_back(std::move(handler));
  }
  // Legacy-style setter kept as an alias for single-handler callers.
  void SetNewsHandler(NewsHandler handler) {
    AddNewsHandler(std::move(handler));
  }

  // Registers a trusted publisher certificate (kPublisher, subject_key =
  // the publisher's verification key).
  void AddPublisherCert(const astrolabe::Certificate& cert);

  // Join state transfer (§9): asks `peer` for recent items matching our
  // subscriptions.
  void RequestStateTransfer(sim::NodeId peer);

  // Archives an item into the local cache without subscription matching.
  // Used by the publisher application running on the same node (§8: the
  // publisher is "an application identical to the subscriber application
  // core"), so its own output is always repairable from the source.
  void ArchiveLocal(const NewsItem& item) {
    cache_.Insert(item, agent_.Now());
  }

  const MessageCache& cache() const { return cache_; }
  const util::SampleStats& latency() const { return latency_; }

  struct Stats {
    std::uint64_t received = 0;          // accepted via normal delivery
    std::uint64_t repaired = 0;          // recovered via peer anti-entropy
    std::uint64_t state_transfer = 0;    // received while joining
    std::uint64_t bad_signature = 0;
    std::uint64_t unknown_publisher = 0;
    std::uint64_t repair_rounds = 0;
  };
  const Stats& stats() const { return stats_; }

  // Wire protocol types.
  static constexpr const char* kDigestType = "nw.digest";
  static constexpr const char* kRepairType = "nw.repair";
  static constexpr const char* kXferReqType = "nw.xfer_req";
  static constexpr const char* kXferType = "nw.xfer";

  struct Digest {
    double since = 0;
    std::string requester_path;  // scoped items only repair inside scope
    std::vector<std::string> subjects;
    std::vector<std::string> known_ids;
    std::size_t WireBytes() const;
  };
  struct ItemBatch {
    std::vector<NewsItem> items;
    bool is_state_transfer = false;
    std::size_t WireBytes() const;
  };
  struct XferRequest {
    double since = 0;
    std::string requester_path;
    std::vector<std::string> subjects;
  };

 private:
  enum class Source { kDelivery, kRepair, kStateTransfer };

  // Observability (null-safe; ids registered lazily on first use).
  obs::MetricsRegistry* Metrics();
  obs::EventTracer* Tracer() const;
  struct ObsIds {
    bool init = false;
    std::uint32_t accepted, repaired, state_transfer, latency, dup_suppressed,
        repair_rounds, pull_served, rejected;
  };

  void OnNews(const multicast::Item& item);
  bool Accept(const NewsItem& item, Source source);
  void RepairRound();
  void HandleDigest(const sim::Message& msg);
  void HandleBatch(const sim::Message& msg);
  void HandleXferRequest(const sim::Message& msg);
  std::vector<sim::NodeId> LeafPeers() const;

  astrolabe::Agent& agent_;
  pubsub::PubSubService& pubsub_;
  SubscriberConfig config_;
  MessageCache cache_;
  std::vector<NewsHandler> handlers_;
  std::map<std::string, astrolabe::PublicKey> publisher_keys_;
  util::SampleStats latency_;
  Stats stats_;
  ObsIds obs_{};
  bool started_ = false;
};

}  // namespace nw::newswire
