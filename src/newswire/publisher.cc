#include "newswire/publisher.h"

namespace nw::newswire {

Publisher::Publisher(astrolabe::Agent& agent, pubsub::PubSubService& pubsub,
                     PublisherConfig config)
    : agent_(agent),
      pubsub_(pubsub),
      config_(std::move(config)),
      flow_(config_.max_items_per_sec, config_.burst) {}

bool Publisher::Publish(NewsItem item, const astrolabe::ZonePath& scope) {
  if (!flow_.TryConsume(agent_.Now())) {
    ++stats_.throttled;
    return false;
  }
  item.publisher = config_.name;
  item.seq = next_seq_++;
  item.published_at = agent_.Now();
  item.scope = scope.ToString();
  item.signature = astrolabe::SignDigest(config_.signing_key, item.Digest());
  const std::string subject = item.subject;
  ++stats_.published;
  if (hook_) hook_(item);
  pubsub_.Publish(item.ToMulticastItem(), subject, scope,
                  item.forward_predicate);
  return true;
}

bool Publisher::PublishRevision(const NewsItem& prev, NewsItem updated,
                                const astrolabe::ZonePath& scope) {
  updated.supersedes = prev.Id();
  updated.revision = prev.revision + 1;
  if (updated.subject.empty()) updated.subject = prev.subject;
  return Publish(std::move(updated), scope);
}

}  // namespace nw::newswire
