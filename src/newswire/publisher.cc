#include "newswire/publisher.h"

namespace nw::newswire {

Publisher::Publisher(astrolabe::Agent& agent, pubsub::PubSubService& pubsub,
                     PublisherConfig config)
    : agent_(agent),
      pubsub_(pubsub),
      config_(std::move(config)),
      flow_(config_.max_items_per_sec, config_.burst) {
  // Register metric ids up front: registration mutates the shared registry
  // and must not first happen inside a parallel-window event.
  (void)Metrics();
}

obs::MetricsRegistry* Publisher::Metrics() {
  auto* net = agent_.attached_network();
  auto* m = net != nullptr ? net->metrics() : nullptr;
  if (m != nullptr && !obs_.init) {
    obs_.published = m->Counter("newswire.publisher.published");
    obs_.throttled = m->Counter("newswire.publisher.throttled");
    obs_.init = true;
  }
  return m;
}

bool Publisher::Publish(NewsItem item, const astrolabe::ZonePath& scope) {
  if (!flow_.TryConsume(agent_.Now())) {
    ++stats_.throttled;
    if (auto* m = Metrics()) m->Add(obs_.throttled, agent_.id());
    return false;
  }
  item.publisher = config_.name;
  item.seq = next_seq_++;
  item.published_at = agent_.Now();
  item.scope = scope.ToString();
  item.signature = astrolabe::SignDigest(config_.signing_key, item.Digest());
  const std::string subject = item.subject;
  ++stats_.published;
  if (auto* m = Metrics()) m->Add(obs_.published, agent_.id());
  if (auto* net = agent_.attached_network(); net != nullptr) {
    if (auto* t = net->tracer();
        t != nullptr && t->Enabled(obs::EventCategory::kPublish)) {
      t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kPublish,
                "pub.item", item.seq, item.body_bytes, item.Id());
    }
  }
  if (hook_) hook_(item);
  pubsub_.Publish(item.ToMulticastItem(), subject, scope,
                  item.forward_predicate);
  return true;
}

bool Publisher::PublishRevision(const NewsItem& prev, NewsItem updated,
                                const astrolabe::ZonePath& scope) {
  updated.supersedes = prev.Id();
  updated.revision = prev.revision + 1;
  if (updated.subject.empty()) updated.subject = prev.subject;
  return Publish(std::move(updated), scope);
}

}  // namespace nw::newswire
