#include "newswire/subscriber.h"

#include <algorithm>

#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "util/log.h"

namespace nw::newswire {

using astrolabe::AttrValue;

std::size_t Subscriber::Digest::WireBytes() const {
  std::size_t n = 16 + requester_path.size();
  for (const auto& s : subjects) n += s.size() + 2;
  for (const auto& s : known_ids) n += s.size() + 2;
  return n;
}

std::size_t Subscriber::ItemBatch::WireBytes() const {
  std::size_t n = 8;
  for (const auto& item : items) {
    n += astrolabe::RowWireBytes(item.ToMetadata()) + item.body_bytes;
  }
  return n;
}

obs::MetricsRegistry* Subscriber::Metrics() {
  auto* net = agent_.attached_network();
  auto* m = net != nullptr ? net->metrics() : nullptr;
  if (m != nullptr && !obs_.init) {
    obs_.accepted = m->Counter("newswire.subscriber.accepted");
    obs_.repaired = m->Counter("newswire.subscriber.repaired");
    obs_.state_transfer = m->Counter("newswire.subscriber.state_transfer");
    obs_.latency = m->Histogram("newswire.subscriber.latency_s",
                                obs::MetricsRegistry::LatencyBucketsSeconds());
    obs_.dup_suppressed = m->Counter("newswire.cache.duplicate_suppressed");
    obs_.repair_rounds = m->Counter("newswire.subscriber.repair_rounds");
    obs_.pull_served = m->Counter("newswire.cache.pull_items_served");
    obs_.rejected = m->Counter("newswire.subscriber.rejected");
    obs_.init = true;
  }
  return m;
}

obs::EventTracer* Subscriber::Tracer() const {
  auto* net = agent_.attached_network();
  return net != nullptr ? net->tracer() : nullptr;
}

Subscriber::Subscriber(astrolabe::Agent& agent,
                       pubsub::PubSubService& pubsub, SubscriberConfig config)
    : agent_(agent),
      pubsub_(pubsub),
      config_(config),
      cache_(config.cache) {
  pubsub_.SetNewsCallback([this](const multicast::Item& item) {
    OnNews(item);
  });
  agent_.RegisterHandler(kDigestType, [this](const sim::Message& msg) {
    HandleDigest(msg);
  });
  agent_.RegisterHandler(kRepairType, [this](const sim::Message& msg) {
    HandleBatch(msg);
  });
  agent_.RegisterHandler(kXferReqType, [this](const sim::Message& msg) {
    HandleXferRequest(msg);
  });
  agent_.RegisterHandler(kXferType, [this](const sim::Message& msg) {
    HandleBatch(msg);
  });
  agent_.AddRestartHook([this] {
    // The cache is process memory: a restarted node comes back empty and
    // must re-arm its repair timer (the old one died with the process).
    cache_ = MessageCache(config_.cache);
    if (started_) Start();
  });
  // Register metric ids up front: registration mutates the shared registry
  // and must not first happen inside a parallel-window event.
  (void)Metrics();
}

void Subscriber::Start() {
  started_ = true;
  if (config_.repair_interval > 0) {
    agent_.Schedule(config_.repair_interval * (0.5 + agent_.Rng().NextDouble()),
                    [this] { RepairRound(); });
  }
}

void Subscriber::AddPublisherCert(const astrolabe::Certificate& cert) {
  if (cert.kind != astrolabe::CertKind::kPublisher) return;
  publisher_keys_[cert.subject] = cert.subject_key;
}

void Subscriber::OnNews(const multicast::Item& item) {
  auto news = NewsItem::FromMulticastItem(item);
  if (!news) {
    util::LogWarn("subscriber %s: malformed news item '%s'",
                  agent_.path().ToString().c_str(), item.id.c_str());
    return;
  }
  Accept(*news, Source::kDelivery);
}

bool Subscriber::Accept(const NewsItem& item, Source source) {
  if (config_.verify_publishers) {
    auto key = publisher_keys_.find(item.publisher);
    if (key == publisher_keys_.end()) {
      ++stats_.unknown_publisher;
      if (auto* m = Metrics()) m->Add(obs_.rejected, agent_.id());
      return false;
    }
    if (!astrolabe::VerifyDigest(key->second, item.Digest(), item.signature)) {
      ++stats_.bad_signature;
      if (auto* m = Metrics()) m->Add(obs_.rejected, agent_.id());
      return false;
    }
  }
  if (!item.forward_predicate.empty()) {
    // Publisher targeting (§8): arrivals that bypassed the forwarding
    // filter (repair, state transfer) must still satisfy the predicate
    // against this machine's own MIB row.
    try {
      auto pred = astrolabe::sql::ParseExpression(item.forward_predicate);
      if (!astrolabe::sql::EvalPredicate(*pred, agent_.LocalRow())) {
        return false;
      }
    } catch (const astrolabe::sql::ParseError&) {
      return false;
    }
  }
  if (!cache_.Insert(item, agent_.Now())) {  // dup or stale revision
    if (auto* m = Metrics()) m->Add(obs_.dup_suppressed, agent_.id());
    if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kCache)) {
      t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kCache,
                "cache.dup", 0, 0, item.Id());
    }
    return false;
  }
  switch (source) {
    case Source::kDelivery: ++stats_.received; break;
    case Source::kRepair: ++stats_.repaired; break;
    case Source::kStateTransfer: ++stats_.state_transfer; break;
  }
  const double latency = agent_.Now() - item.published_at;
  latency_.Add(latency);
  if (auto* m = Metrics()) {
    m->Add(obs_.accepted, agent_.id());
    if (source == Source::kRepair) m->Add(obs_.repaired, agent_.id());
    if (source == Source::kStateTransfer) {
      m->Add(obs_.state_transfer, agent_.id());
    }
    m->Observe(obs_.latency, agent_.id(), latency);
  }
  if (auto* t = Tracer(); t != nullptr) {
    const obs::EventCategory cat = source == Source::kDelivery
                                       ? obs::EventCategory::kDeliver
                                       : obs::EventCategory::kRepair;
    if (t->Enabled(cat)) {
      t->Record(agent_.Now(), agent_.id(), cat,
                source == Source::kDelivery       ? "news.accept"
                : source == Source::kRepair       ? "news.accept.repair"
                                                  : "news.accept.xfer",
                item.seq, std::uint64_t(latency * 1e6) /*us*/, item.Id());
    }
  }
  for (const auto& handler : handlers_) handler(item, latency);
  return true;
}

std::vector<sim::NodeId> Subscriber::LeafPeers() const {
  // Anti-entropy partners: siblings in the leaf zone plus representatives
  // of sibling zones at every level. The cross-zone partners matter when a
  // forwarding loss cut off an entire zone — no sibling inside it has the
  // item, but a peer across the tree does.
  std::vector<sim::NodeId> peers;
  for (std::size_t level = 0; level < agent_.Depth(); ++level) {
    const std::string& own_key = agent_.path().Component(level);
    for (const auto& [key, entry] : agent_.TableAt(level)) {
      if (key == own_key) continue;
      auto it = entry.attrs.find(astrolabe::kAttrContacts);
      if (it == entry.attrs.end() ||
          it->second.type() != AttrValue::Type::kList) {
        continue;
      }
      for (const AttrValue& v : it->second.AsList()) {
        if (v.type() == AttrValue::Type::kInt) {
          peers.push_back(static_cast<sim::NodeId>(v.AsInt()));
        }
      }
    }
  }
  return peers;
}

void Subscriber::RepairRound() {
  ++stats_.repair_rounds;
  if (auto* m = Metrics()) m->Add(obs_.repair_rounds, agent_.id());
  const auto peers = LeafPeers();
  if (!peers.empty()) {
    const sim::NodeId peer = peers[agent_.Rng().NextBelow(peers.size())];
    Digest digest;
    digest.since = std::max(0.0, agent_.Now() - config_.repair_window);
    digest.requester_path = agent_.path().ToString();
    digest.subjects.assign(pubsub_.subjects().begin(),
                           pubsub_.subjects().end());
    digest.known_ids = cache_.IdsSince(digest.since);
    if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kRepair)) {
      t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kRepair,
                "repair.digest", peer, digest.known_ids.size());
    }
    const std::size_t wire = digest.WireBytes();
    agent_.Send(sim::Message::Make(agent_.id(), peer, kDigestType,
                                   std::move(digest), wire));
  }
  agent_.Schedule(config_.repair_interval * (0.9 + 0.2 * agent_.Rng().NextDouble()),
                  [this] { RepairRound(); });
}

namespace {
// Scoped items (§8) may only be handed to peers inside their scope.
bool ScopeCovers(const NewsItem& item, const std::string& peer_path) {
  return astrolabe::ZonePath::Parse(item.scope)
      .IsPrefixOf(astrolabe::ZonePath::Parse(peer_path));
}
}  // namespace

void Subscriber::HandleDigest(const sim::Message& msg) {
  const auto& digest = msg.As<Digest>();
  ItemBatch batch;
  for (NewsItem& item : cache_.ItemsSince(digest.since, digest.subjects)) {
    if (!ScopeCovers(item, digest.requester_path)) continue;
    if (std::find(digest.known_ids.begin(), digest.known_ids.end(),
                  item.Id()) == digest.known_ids.end()) {
      batch.items.push_back(std::move(item));
    }
  }
  if (batch.items.empty()) return;
  if (auto* m = Metrics()) {
    m->Add(obs_.pull_served, agent_.id(), batch.items.size());
  }
  if (auto* t = Tracer(); t != nullptr && t->Enabled(obs::EventCategory::kRepair)) {
    t->Record(agent_.Now(), agent_.id(), obs::EventCategory::kRepair,
              "repair.serve", msg.from, batch.items.size());
  }
  const std::size_t wire = batch.WireBytes();
  agent_.Send(sim::Message::Make(agent_.id(), msg.from, kRepairType,
                                 std::move(batch), wire));
}

void Subscriber::HandleBatch(const sim::Message& msg) {
  const auto& batch = msg.As<ItemBatch>();
  const Source source =
      msg.type == kXferType ? Source::kStateTransfer : Source::kRepair;
  for (const NewsItem& item : batch.items) {
    // Repair bypasses the Bloom path; apply the exact local match.
    if (!pubsub_.Matches(item.ToMulticastItem())) continue;
    Accept(item, source);
  }
}

void Subscriber::HandleXferRequest(const sim::Message& msg) {
  const auto& req = msg.As<XferRequest>();
  ItemBatch batch;
  batch.is_state_transfer = true;
  for (NewsItem& item : cache_.ItemsSince(req.since, req.subjects)) {
    if (ScopeCovers(item, req.requester_path)) {
      batch.items.push_back(std::move(item));
    }
  }
  const std::size_t wire = batch.WireBytes();
  agent_.Send(sim::Message::Make(agent_.id(), msg.from, kXferType,
                                 std::move(batch), wire));
}

void Subscriber::RequestStateTransfer(sim::NodeId peer) {
  XferRequest req;
  req.since = std::max(0.0, agent_.Now() - config_.repair_window);
  req.requester_path = agent_.path().ToString();
  req.subjects.assign(pubsub_.subjects().begin(), pubsub_.subjects().end());
  agent_.Send(sim::Message::Make(agent_.id(), peer, kXferReqType, req, 64));
}

}  // namespace nw::newswire
