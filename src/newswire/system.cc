#include "newswire/system.h"

#include <algorithm>
#include <cassert>

namespace nw::newswire {

namespace {

astrolabe::DeploymentConfig MakeDeploymentConfig(const SystemConfig& cfg) {
  astrolabe::DeploymentConfig dc;
  dc.num_agents = cfg.num_subscribers + cfg.num_publishers;
  dc.branching = cfg.branching;
  dc.top_level_names = cfg.region_names;
  dc.gossip_period = cfg.gossip_period;
  dc.contacts_per_zone = cfg.contacts_per_zone;
  dc.gossip_wire = cfg.gossip_wire;
  dc.detector = cfg.detector;
  dc.force_full_recompute = cfg.force_full_recompute;
  dc.net = cfg.net;
  dc.seed = cfg.seed;
  dc.sim_threads = cfg.sim_threads;
  dc.metrics = cfg.metrics;
  dc.tracer = cfg.tracer;
  return dc;
}

}  // namespace

NewswireSystem::NewswireSystem(SystemConfig config)
    : config_(config),
      dep_(MakeDeploymentConfig(config)),
      rng_(config.seed ^ 0x4e657773ull /*'News'*/) {
  const std::size_t n = dep_.size();
  assert(config_.num_publishers >= 1);
  assert(config_.num_publishers < n);

  // Subject catalog.
  catalog_.reserve(config_.catalog_size);
  for (std::size_t s = 0; s < config_.catalog_size; ++s) {
    catalog_.push_back("subject." + std::to_string(s));
  }

  // Publisher placement: evenly spaced so publishers land in different
  // zones ("just another Astrolabe leaf node", §8).
  std::vector<bool> is_publisher(n, false);
  const std::size_t stride = n / config_.num_publishers;
  for (std::size_t j = 0; j < config_.num_publishers; ++j) {
    is_publisher[j * stride] = true;
  }

  // The subscription-filter aggregation (§6).
  dep_.InstallFunctionEverywhere(pubsub::kSubsFunctionName,
                                 pubsub::SubsFunctionCode());

  // Per-node services.
  mc_.reserve(n);
  ps_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mc_.push_back(std::make_unique<multicast::MulticastService>(
        dep_.agent(i), config_.multicast));
    ps_.push_back(std::make_unique<pubsub::PubSubService>(
        dep_.agent(i), *mc_[i],
        pubsub::PubSubOptions{config_.bloom, config_.hierarchical_subjects}));
  }

  // Publisher identities and applications.
  util::DeterministicRng key_rng(config_.seed ^ 0x5075626cull /*'Publ'*/);
  std::vector<astrolabe::Certificate> publisher_certs;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_publisher[i]) continue;
    const std::size_t j = publisher_nodes_.size();
    publisher_nodes_.push_back(i);
    const astrolabe::KeyPair keys = astrolabe::GenerateKeyPair(key_rng);
    PublisherConfig pc;
    pc.name = "pub" + std::to_string(j);
    pc.max_items_per_sec = config_.publisher_rate;
    pc.burst = config_.publisher_burst;
    pc.signing_key = keys.priv;
    publishers_.push_back(
        std::make_unique<Publisher>(dep_.agent(i), *ps_[i], pc));
    publisher_certs.push_back(dep_.root_authority().Issue(
        astrolabe::CertKind::kPublisher, pc.name, keys.pub, {}, 0, 1e18));
    publisher_cores_.push_back(
        std::make_unique<Subscriber>(dep_.agent(i), *ps_[i], config_.subscriber));
    // The publisher archives its own output so repair always has a source.
    publishers_.back()->SetPublishHook(
        [core = publisher_cores_.back().get()](const NewsItem& item) {
          core->ArchiveLocal(item);
        });
  }

  // Subscriber applications with Zipf-assigned subjects.
  SubscriberConfig sc = config_.subscriber;
  sc.verify_publishers = config_.verify_publishers;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_publisher[i]) continue;
    const std::size_t s = subscribers_.size();
    subscriber_nodes_.push_back(i);
    subscribers_.push_back(
        std::make_unique<Subscriber>(dep_.agent(i), *ps_[i], sc));
    Subscriber& sub = *subscribers_.back();
    for (const auto& cert : publisher_certs) sub.AddPublisherCert(cert);

    std::vector<std::string> mine;
    for (std::size_t tries = 0;
         tries < config_.subjects_per_subscriber * 8 &&
         mine.size() < config_.subjects_per_subscriber;
         ++tries) {
      const std::string& subject =
          catalog_[rng_.NextZipf(catalog_.size(), config_.zipf_skew)];
      if (std::find(mine.begin(), mine.end(), subject) != mine.end()) continue;
      mine.push_back(subject);
      sub.Subscribe(subject);
      ++expected_by_subject_[subject];
    }
    assigned_subjects_.push_back(std::move(mine));

    delivery_log_.emplace_back();
    delivery_cursor_.push_back(0);
    sub.SetNewsHandler([this, s](const NewsItem& item, double latency) {
      // Runs inside a simulator event, possibly on a worker shard; only
      // this subscriber's node ever executes here, so the per-subscriber
      // log is single-writer. Aggregation happens in FoldDeliveries().
      delivery_log_[s].emplace_back(item.Id(), latency);
    });
  }

  if (config_.run_gossip) dep_.StartAll();
  if (config_.warm_start) dep_.WarmStart();
  for (auto& sub : subscribers_) sub->Start();
  for (auto& core : publisher_cores_) core->Start();
}

NewswireSystem::~NewswireSystem() = default;

Subscriber& NewswireSystem::subscriber(std::size_t i) {
  return *subscribers_[i];
}
Publisher& NewswireSystem::publisher(std::size_t j) { return *publishers_[j]; }

astrolabe::Agent& NewswireSystem::subscriber_agent(std::size_t i) {
  return dep_.agent(subscriber_nodes_[i]);
}
astrolabe::Agent& NewswireSystem::publisher_agent(std::size_t j) {
  return dep_.agent(publisher_nodes_[j]);
}
multicast::MulticastService& NewswireSystem::multicast_at(std::size_t node) {
  return *mc_[node];
}
pubsub::PubSubService& NewswireSystem::pubsub_at(std::size_t node) {
  return *ps_[node];
}

std::size_t NewswireSystem::ExpectedRecipients(
    const std::string& subject) const {
  auto it = expected_by_subject_.find(subject);
  return it == expected_by_subject_.end() ? 0 : it->second;
}

const std::string& NewswireSystem::RandomSubject() {
  return catalog_[rng_.NextZipf(catalog_.size(), config_.zipf_skew)];
}

std::string NewswireSystem::PublishArticle(std::size_t publisher_idx,
                                           const std::string& subject,
                                           const astrolabe::ZonePath& scope) {
  Publisher& pub = *publishers_[publisher_idx];
  NewsItem item;
  item.subject = subject;
  item.headline = subject + " story " + std::to_string(pub.next_seq());
  item.body_bytes = config_.body_bytes;
  item.categories = 1;
  const std::uint64_t seq = pub.next_seq();
  if (!pub.Publish(item, scope)) return "";
  return pub.name() + "#" + std::to_string(seq);
}

multicast::MulticastStats NewswireSystem::MulticastTotals() const {
  multicast::MulticastStats total;
  for (const auto& mc : mc_) {
    const multicast::MulticastStats& s = mc->stats();
    total.delivered += s.delivered;
    total.duplicates += s.duplicates;
    total.forwards += s.forwards;
    total.forward_bytes += s.forward_bytes;
    total.filtered += s.filtered;
    total.queue_drops += s.queue_drops;
    total.queue_shed += s.queue_shed;
    total.misrouted += s.misrouted;
    total.acks_received += s.acks_received;
    total.retransmits += s.retransmits;
    total.failovers += s.failovers;
    total.abandoned += s.abandoned;
    total.pending_overflow += s.pending_overflow;
    total.dup_hops_received += s.dup_hops_received;
    total.quarantines += s.quarantines;
  }
  return total;
}

void NewswireSystem::FoldDeliveries() const {
  // Fold un-aggregated log suffixes in subscriber order: deterministic
  // regardless of how deliveries interleaved across shards at runtime.
  for (std::size_t s = 0; s < delivery_log_.size(); ++s) {
    const auto& log = delivery_log_[s];
    for (std::size_t k = delivery_cursor_[s]; k < log.size(); ++k) {
      ++delivered_count_[log[k].first];
      ++total_delivered_;
      latencies_.Add(log[k].second);
    }
    delivery_cursor_[s] = log.size();
  }
}

std::size_t NewswireSystem::DeliveredCount(const std::string& item_id) const {
  FoldDeliveries();
  auto it = delivered_count_.find(item_id);
  return it == delivered_count_.end() ? 0 : it->second;
}

const util::SampleStats& NewswireSystem::latencies() const {
  FoldDeliveries();
  return latencies_;
}

std::uint64_t NewswireSystem::total_delivered() const {
  FoldDeliveries();
  return total_delivered_;
}

void NewswireSystem::ResetDeliveryLog() {
  for (auto& log : delivery_log_) log.clear();
  std::fill(delivery_cursor_.begin(), delivery_cursor_.end(), 0);
  delivered_count_.clear();
  latencies_ = util::SampleStats();
  total_delivered_ = 0;
}

const sim::TrafficStats& NewswireSystem::PublisherTraffic(std::size_t j) {
  return dep_.net().StatsFor(dep_.agent(publisher_nodes_[j]).id());
}

}  // namespace nw::newswire
