// The end-system message cache (paper §9): feeds the application, manages
// items by their revision metadata (superseded revisions are fused /
// garbage-collected), serves anti-entropy repair requests from peers, and
// provides the state transfer for joining nodes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "newswire/news_item.h"

namespace nw::newswire {

class MessageCache {
 public:
  struct Config {
    std::size_t capacity = 1000;   // max cached items (LRU-by-insertion)
    bool fuse_revisions = true;    // drop superseded revisions on arrival
  };

  MessageCache() : MessageCache(Config{}) {}
  explicit MessageCache(Config config) : config_(config) {}

  // Inserts an item; returns false if an item with the same id (or a newer
  // revision of the same story) is already cached. `now` drives eviction
  // bookkeeping.
  bool Insert(const NewsItem& item, double now);

  bool Contains(const std::string& id) const { return items_.contains(id); }
  const NewsItem* Find(const std::string& id) const;
  std::size_t size() const { return items_.size(); }

  // Ids of items received at or after `since` (for repair digests).
  std::vector<std::string> IdsSince(double since) const;

  // Items received at or after `since`, optionally restricted to the given
  // subjects (empty = all). Used for repair replies and join state
  // transfer.
  std::vector<NewsItem> ItemsSince(
      double since, const std::vector<std::string>& subjects = {}) const;

  struct Stats {
    std::uint64_t inserted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t superseded_dropped = 0;  // revision fusion (§9)
    std::uint64_t stale_revisions_rejected = 0;
    std::uint64_t evicted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    NewsItem item;
    double received_at = 0;
  };

  Config config_;
  std::map<std::string, Entry> items_;
  std::deque<std::string> order_;  // insertion order for eviction
  // Ids known to be superseded by a newer revision; arrivals of these are
  // rejected even if the newer revision displaced them first.
  std::map<std::string, bool> superseded_;
  std::deque<std::string> superseded_order_;
  Stats stats_;
};

}  // namespace nw::newswire
