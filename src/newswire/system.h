// NewswireSystem: wires a complete simulated NewsWire deployment — an
// Astrolabe zone tree whose leaves run the multicast forwarding component,
// the Bloom-filter pub/sub layer, and either a subscriber or a publisher
// application — plus a synthetic workload (subject catalog with Zipf
// popularity) and delivery metrics. Examples and every benchmark build on
// this harness.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "astrolabe/deployment.h"
#include "multicast/multicast.h"
#include "newswire/publisher.h"
#include "newswire/subscriber.h"
#include "pubsub/pubsub.h"
#include "util/stats.h"

namespace nw::newswire {

struct SystemConfig {
  std::size_t num_subscribers = 64;
  std::size_t num_publishers = 1;
  std::size_t branching = 8;
  // Optional names for the top-level zones (regions), e.g. {"asia", "eu"}.
  std::vector<std::string> region_names;
  double gossip_period = 2.0;
  std::int64_t contacts_per_zone = 3;
  astrolabe::GossipWireMode gossip_wire = astrolabe::GossipWireMode::kDelta;
  astrolabe::DetectorMode detector = astrolabe::DetectorMode::kPhiAccrual;
  // Escape hatch (--force-full-recompute): run the pre-§11 evaluate-every-
  // level aggregation engine instead of the dirty-tracked memo.
  bool force_full_recompute = false;
  sim::NetworkConfig net;
  pubsub::BloomConfig bloom;
  bool hierarchical_subjects = false;  // §7: "tech" also matches "tech.*"
  multicast::MulticastConfig multicast;
  SubscriberConfig subscriber;
  double publisher_rate = 1000.0;  // flow-control rate (items/s)
  double publisher_burst = 2000.0;

  // Workload: subjects are drawn from a catalog with Zipf popularity.
  std::size_t catalog_size = 64;
  std::size_t subjects_per_subscriber = 4;
  double zipf_skew = 0.8;
  std::size_t body_bytes = 2048;

  bool verify_publishers = false;
  bool warm_start = true;  // install converged replicas directly
  bool run_gossip = true;  // start the epidemic protocol
  std::uint64_t seed = 1;
  // Simulator worker shards (DESIGN.md §9); forwarded to the deployment.
  // 1 = sequential engine, 0 = read NEWSWIRE_SIM_THREADS (default 1).
  unsigned sim_threads = 0;
  // Optional observability sinks (see src/obs), forwarded to the network
  // before any node joins. Caller-owned; must outlive the system.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventTracer* tracer = nullptr;
};

class NewswireSystem {
 public:
  explicit NewswireSystem(SystemConfig config);
  ~NewswireSystem();

  NewswireSystem(const NewswireSystem&) = delete;
  NewswireSystem& operator=(const NewswireSystem&) = delete;

  astrolabe::Deployment& deployment() { return dep_; }
  const SystemConfig& config() const { return config_; }
  double Now() { return dep_.sim().Now(); }
  void RunFor(double seconds) { dep_.RunFor(seconds); }

  // ---- topology --------------------------------------------------------
  std::size_t node_count() const { return dep_.size(); }
  std::size_t subscriber_count() const { return subscriber_nodes_.size(); }
  std::size_t publisher_count() const { return publisher_nodes_.size(); }

  Subscriber& subscriber(std::size_t i);
  Publisher& publisher(std::size_t j);
  astrolabe::Agent& subscriber_agent(std::size_t i);
  astrolabe::Agent& publisher_agent(std::size_t j);
  multicast::MulticastService& multicast_at(std::size_t node);
  pubsub::PubSubService& pubsub_at(std::size_t node);
  // Deployment node index of subscriber i / publisher j.
  std::size_t subscriber_node(std::size_t i) const {
    return subscriber_nodes_[i];
  }
  std::size_t publisher_node(std::size_t j) const {
    return publisher_nodes_[j];
  }

  // ---- workload --------------------------------------------------------
  const std::vector<std::string>& catalog() const { return catalog_; }
  const std::vector<std::string>& SubjectsOf(std::size_t subscriber) const {
    return assigned_subjects_[subscriber];
  }
  // How many subscribers are subscribed to `subject`.
  std::size_t ExpectedRecipients(const std::string& subject) const;
  // A Zipf-popular subject from the catalog.
  const std::string& RandomSubject();

  // Publishes an article; returns its id, or "" if flow control refused.
  std::string PublishArticle(
      std::size_t publisher, const std::string& subject,
      const astrolabe::ZonePath& scope = astrolabe::ZonePath::Root());

  // Sum of the per-node forwarding-component counters across the whole
  // deployment (acks, retransmits, failovers, shed items, ...).
  multicast::MulticastStats MulticastTotals() const;

  // ---- delivery metrics --------------------------------------------------
  std::size_t DeliveredCount(const std::string& item_id) const;
  const util::SampleStats& latencies() const;
  std::uint64_t total_delivered() const;
  void ResetDeliveryLog();

  // Publisher-side network cost (egress bytes/messages of publisher j).
  const sim::TrafficStats& PublisherTraffic(std::size_t j);

 private:
  SystemConfig config_;
  astrolabe::Deployment dep_;
  util::DeterministicRng rng_;
  std::vector<std::string> catalog_;

  std::vector<std::unique_ptr<multicast::MulticastService>> mc_;
  std::vector<std::unique_ptr<pubsub::PubSubService>> ps_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;   // by subscriber idx
  std::vector<std::unique_ptr<Publisher>> publishers_;     // by publisher idx
  // §8: "under the covers of the publisher is an application identical to
  // the subscriber application core" — publisher nodes run one too, so
  // they answer repair digests and participate in the overlay fully.
  std::vector<std::unique_ptr<Subscriber>> publisher_cores_;
  std::vector<std::size_t> subscriber_nodes_;
  std::vector<std::size_t> publisher_nodes_;
  std::vector<std::vector<std::string>> assigned_subjects_;

  std::map<std::string, std::size_t> expected_by_subject_;

  // Delivery accounting. Subscriber delivery handlers run inside simulator
  // events, which may execute on different worker shards concurrently
  // (DESIGN.md §9), so each subscriber appends to its own log — a
  // single-writer structure — and the aggregate views below are folded
  // lazily, in subscriber order, when an accessor is called (always outside
  // a parallel window). Folding in subscriber order is also what makes the
  // aggregates identical across engine modes: each subscriber's own log is
  // bit-identical regardless of thread count.
  void FoldDeliveries() const;
  mutable std::vector<std::vector<std::pair<std::string, double>>>
      delivery_log_;                               // by subscriber idx
  mutable std::vector<std::size_t> delivery_cursor_;  // folded prefix length
  mutable std::map<std::string, std::size_t> delivered_count_;
  mutable util::SampleStats latencies_;
  mutable std::uint64_t total_delivered_ = 0;
};

}  // namespace nw::newswire
