// The publisher application (paper §8): "under the covers ... an
// application identical to the subscriber application core, insofar as it
// is just another Astrolabe leaf node". Publishing is subject to a
// restrictive rule set: authenticated identity (a kPublisher certificate
// binding the name to a signing key) and token-bucket flow control.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "astrolabe/cert.h"
#include "newswire/news_item.h"
#include "pubsub/pubsub.h"
#include "util/token_bucket.h"

namespace nw::newswire {

struct PublisherConfig {
  std::string name;
  double max_items_per_sec = 5.0;  // flow-control rate (§8)
  double burst = 10.0;
  astrolabe::PrivateKey signing_key = 0;
};

class Publisher {
 public:
  Publisher(astrolabe::Agent& agent, pubsub::PubSubService& pubsub,
            PublisherConfig config);

  // Assigns the sequence number and timestamp, signs the item, and
  // disseminates it within `scope`. Returns false (and publishes nothing)
  // if flow control rejects the item.
  bool Publish(NewsItem item, const astrolabe::ZonePath& scope =
                                  astrolabe::ZonePath::Root());

  // Publishes an updated revision superseding `prev` (same story chain).
  bool PublishRevision(const NewsItem& prev, NewsItem updated,
                       const astrolabe::ZonePath& scope =
                           astrolabe::ZonePath::Root());

  const std::string& name() const { return config_.name; }
  std::uint64_t next_seq() const { return next_seq_; }

  // Invoked with every successfully published (signed, sequenced) item —
  // e.g. to archive it in the node's message cache for repair.
  using PublishHook = std::function<void(const NewsItem&)>;
  void SetPublishHook(PublishHook hook) { hook_ = std::move(hook); }

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t throttled = 0;  // rejected by flow control
  };
  const Stats& stats() const { return stats_; }

 private:
  // Observability (null-safe; ids registered lazily on first use).
  obs::MetricsRegistry* Metrics();
  struct ObsIds {
    bool init = false;
    std::uint32_t published, throttled;
  };

  astrolabe::Agent& agent_;
  pubsub::PubSubService& pubsub_;
  PublisherConfig config_;
  util::TokenBucket flow_;
  std::uint64_t next_seq_ = 1;
  PublishHook hook_;
  Stats stats_;
  ObsIds obs_{};
};

}  // namespace nw::newswire
