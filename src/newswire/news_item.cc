#include "newswire/news_item.h"

#include "util/hash.h"

namespace nw::newswire {

using astrolabe::AttrValue;
using astrolabe::Row;

std::uint64_t NewsItem::Digest() const {
  using util::Fnv1a64;
  using util::HashCombine;
  std::uint64_t h = Fnv1a64(publisher);
  h = HashCombine(h, seq);
  h = HashCombine(h, Fnv1a64(subject));
  h = HashCombine(h, Fnv1a64(headline));
  h = HashCombine(h, body_bytes);
  h = HashCombine(h, categories);
  h = HashCombine(h, static_cast<std::uint64_t>(revision));
  h = HashCombine(h, Fnv1a64(supersedes));
  h = HashCombine(h, static_cast<std::uint64_t>(urgency));
  h = HashCombine(h, Fnv1a64(scope));
  h = HashCombine(h, Fnv1a64(forward_predicate));
  return h;
}

Row NewsItem::ToMetadata() const {
  Row row;
  row["publisher"] = publisher;
  row["seq"] = static_cast<std::int64_t>(seq);
  row["headline"] = headline;
  row["categories"] = static_cast<std::int64_t>(categories);
  row["revision"] = revision;
  if (!supersedes.empty()) row["supersedes"] = supersedes;
  row["urgency"] = urgency;
  row["published_at"] = published_at;
  row["signature"] = static_cast<std::int64_t>(signature);
  row["scope"] = scope;
  // Attribute names shared with the pub/sub layer so repair and
  // state-transfer copies behave like first-hand deliveries.
  if (!forward_predicate.empty()) row["fwd_pred"] = forward_predicate;
  if (!subject.empty()) row["subject"] = subject;
  return row;
}

std::optional<NewsItem> NewsItem::FromMetadata(const Row& row) {
  NewsItem item;
  try {
    item.publisher = row.at("publisher").AsString();
    item.seq = static_cast<std::uint64_t>(row.at("seq").AsInt());
    item.headline = row.at("headline").AsString();
    item.categories = static_cast<std::uint64_t>(row.at("categories").AsInt());
    item.revision = row.at("revision").AsInt();
    if (auto it = row.find("supersedes"); it != row.end()) {
      item.supersedes = it->second.AsString();
    }
    item.urgency = row.at("urgency").AsInt();
    item.published_at = row.at("published_at").AsDouble();
    if (auto it = row.find("scope"); it != row.end()) {
      item.scope = it->second.AsString();
    }
    if (auto it = row.find("fwd_pred"); it != row.end()) {
      item.forward_predicate = it->second.AsString();
    }
    item.signature = static_cast<std::uint64_t>(row.at("signature").AsInt());
    if (auto it = row.find("subject"); it != row.end()) {
      item.subject = it->second.AsString();
    }
  } catch (const astrolabe::TypeError&) {
    return std::nullopt;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
  return item;
}

multicast::Item NewsItem::ToMulticastItem() const {
  multicast::Item item;
  item.id = Id();
  item.metadata = ToMetadata();
  item.body_bytes = body_bytes;
  item.published_at = published_at;
  return item;
}

std::optional<NewsItem> NewsItem::FromMulticastItem(
    const multicast::Item& item) {
  auto news = FromMetadata(item.metadata);
  if (news) news->body_bytes = item.body_bytes;
  return news;
}

}  // namespace nw::newswire
