#include "newswire/message_cache.h"

#include <algorithm>

namespace nw::newswire {

bool MessageCache::Insert(const NewsItem& item, double now) {
  const std::string id = item.Id();
  if (items_.contains(id)) {
    ++stats_.duplicates;
    return false;
  }
  if (config_.fuse_revisions && superseded_.contains(id)) {
    // A newer revision already arrived; this copy is stale (§9: items can
    // be "garbage collected, or fused ... into a more compact form").
    ++stats_.stale_revisions_rejected;
    return false;
  }

  if (config_.fuse_revisions && !item.supersedes.empty() &&
      item.supersedes != id) {  // a self-referential chain is malformed
    // Record the chain and drop the replaced revision if cached.
    if (superseded_.emplace(item.supersedes, true).second) {
      superseded_order_.push_back(item.supersedes);
      if (superseded_order_.size() > config_.capacity * 4) {
        superseded_.erase(superseded_order_.front());
        superseded_order_.pop_front();
      }
    }
    auto old = items_.find(item.supersedes);
    if (old != items_.end()) {
      items_.erase(old);
      order_.erase(std::find(order_.begin(), order_.end(), item.supersedes));
      ++stats_.superseded_dropped;
    }
  }

  items_.emplace(id, Entry{item, now});
  order_.push_back(id);
  ++stats_.inserted;
  while (items_.size() > config_.capacity) {
    items_.erase(order_.front());
    order_.pop_front();
    ++stats_.evicted;
  }
  return true;
}

const NewsItem* MessageCache::Find(const std::string& id) const {
  auto it = items_.find(id);
  return it == items_.end() ? nullptr : &it->second.item;
}

std::vector<std::string> MessageCache::IdsSince(double since) const {
  std::vector<std::string> out;
  for (const auto& [id, entry] : items_) {
    if (entry.received_at >= since) out.push_back(id);
  }
  return out;
}

std::vector<NewsItem> MessageCache::ItemsSince(
    double since, const std::vector<std::string>& subjects) const {
  std::vector<NewsItem> out;
  for (const auto& [id, entry] : items_) {
    if (entry.received_at < since) continue;
    if (!subjects.empty() &&
        std::find(subjects.begin(), subjects.end(), entry.item.subject) ==
            subjects.end()) {
      continue;
    }
    out.push_back(entry.item);
  }
  return out;
}

}  // namespace nw::newswire
