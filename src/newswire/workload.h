// Synthetic news workload generator: a non-homogeneous Poisson article
// stream with a diurnal rate curve, breaking-news bursts (a cluster of
// urgent items on one subject), and follow-up revisions that supersede
// earlier items (§9 revision metadata). Stands in for the Reuters/AP
// feeds the paper's production deployment would consume (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "newswire/system.h"
#include "util/rng.h"

namespace nw::newswire {

struct WorkloadConfig {
  double duration = 3600;            // seconds of stream to schedule
  double base_items_per_hour = 60;   // fleet-wide average at rate 1.0
  double diurnal_amplitude = 0.6;    // 0 = flat; 1 = rate swings 0..2x
  double day_seconds = 86400;        // period of the diurnal curve
  double bursts_per_hour = 0.5;      // breaking-news burst frequency
  std::size_t burst_items = 8;       // items per burst
  double burst_span = 90;            // seconds a burst stretches over
  double revision_prob = 0.2;        // chance an item gets a revision
  double revision_delay_mean = 180;  // seconds until the revision
  std::size_t body_min = 600;
  std::size_t body_max = 4000;
  std::uint64_t seed = 1;
};

class NewsWorkload {
 public:
  struct Published {
    std::string id;
    std::string subject;
    double at = 0;
    bool burst = false;
    bool revision = false;
  };

  NewsWorkload(NewswireSystem& system, WorkloadConfig config)
      : sys_(system), config_(config), rng_(config.seed ^ 0x574cull) {}

  // Schedules the entire stream on the simulator, starting at Now().
  // Items rotate across the system's publishers; burst items carry
  // urgency 1, routine items urgency 4..8.
  void ScheduleAll();

  const std::vector<Published>& published() const { return published_; }

  struct Stats {
    std::size_t routine_scheduled = 0;
    std::size_t bursts = 0;
    std::size_t burst_items = 0;
    std::size_t revisions_scheduled = 0;
    std::size_t throttled = 0;  // rejected by publisher flow control
  };
  const Stats& stats() const { return stats_; }

  // Instantaneous rate multiplier of the diurnal curve at offset t.
  double RateAt(double t) const;

 private:
  void PublishOne(std::size_t publisher, const std::string& subject,
                  std::int64_t urgency, bool burst, double now);
  void MaybeScheduleRevision(std::size_t publisher, const NewsItem& item);

  NewswireSystem& sys_;
  WorkloadConfig config_;
  util::DeterministicRng rng_;
  std::vector<Published> published_;
  std::size_t next_publisher_ = 0;
  Stats stats_;
};

}  // namespace nw::newswire
