// Aligned-column table printing for benchmark output. Every experiment
// binary prints its results through this so EXPERIMENTS.md rows can be
// regenerated verbatim.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nw::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string Int(long long v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
  }

  void Print(FILE* out = stdout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::fprintf(out, "%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::fprintf(out, "\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    std::fprintf(out, "%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nw::util
