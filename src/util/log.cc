#include "util/log.h"

#include <cstdio>

namespace nw::util {

LogLevel& GlobalLogLevel() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void SetLogLevel(LogLevel level) noexcept { GlobalLogLevel() = level; }

namespace internal {

void LogLine(LogLevel level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace internal
}  // namespace nw::util
