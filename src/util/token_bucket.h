// Token-bucket rate limiter, used for publisher flow control (paper §8:
// restrictions on publishers "to perform flow control").
//
// Time is supplied by the caller in seconds (simulation time), so the same
// limiter works under the discrete-event simulator.
#pragma once

#include <algorithm>
#include <cassert>

namespace nw::util {

class TokenBucket {
 public:
  // rate: tokens added per second; burst: bucket capacity. A zero rate is
  // a burst-only bucket: the initial allowance never refills.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {
    assert(rate >= 0 && burst > 0);
  }

  // Attempts to consume `cost` tokens at time `now` (seconds, monotone
  // non-decreasing across calls). Returns true iff admitted.
  bool TryConsume(double now, double cost = 1.0) {
    Refill(now);
    if (tokens_ + 1e-9 >= cost) {
      tokens_ -= cost;
      return true;
    }
    return false;
  }

  double AvailableTokens(double now) {
    Refill(now);
    return tokens_;
  }

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void Refill(double now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

}  // namespace nw::util
