// Minimal command-line flag parsing for the scenario tools: --name=value
// or --name value; bare --name sets a boolean. Unknown flags are
// collected so the caller can reject typos.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace nw::util {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    MarkKnown(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const {
    MarkKnown(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback) const {
    MarkKnown(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& name, bool fallback) const {
    MarkKnown(name);
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0" && it->second != "no";
  }

  // Flags given on the command line but never queried by the program.
  std::vector<std::string> UnknownFlags() const {
    std::vector<std::string> out;
    for (const auto& [name, value] : values_) {
      if (!known_.contains(name)) out.push_back(name);
    }
    return out;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  void MarkKnown(const std::string& name) const { known_[name] = true; }

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> known_;
  std::vector<std::string> positional_;
};

}  // namespace nw::util
