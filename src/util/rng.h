// Deterministic random number generation for simulation workloads.
//
// Every stochastic decision in the system (gossip partner choice, link loss,
// workload arrivals) draws from a DeterministicRng seeded by the experiment,
// so a given (seed, parameters) pair replays exactly.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.h"

namespace nw::util {

// splitmix64-based generator. Small state, high quality for simulation use,
// and trivially forkable into independent streams.
class DeterministicRng {
 public:
  explicit DeterministicRng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed) {}

  std::uint64_t NextU64() noexcept {
    state_ += 0x9e3779b97f4a7c15ull;
    return Mix64(state_);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for
    // simulation bounds (<< 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean) noexcept {
    assert(mean > 0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Zipf-like rank selection over n items with exponent s (s=0 -> uniform).
  // Used for skewed subscription popularity.
  std::size_t NextZipf(std::size_t n, double s) {
    assert(n > 0);
    if (s <= 0.0) return static_cast<std::size_t>(NextBelow(n));
    // Inverse-CDF over precomputed weights would be heavy per call; use
    // rejection-free approximate inversion adequate for workload skew.
    double u = NextDouble();
    double h = 0.0;
    double total = 0.0;
    for (std::size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
    for (std::size_t i = 1; i <= n; ++i) {
      h += (1.0 / std::pow(double(i), s)) / total;
      if (u <= h) return i - 1;
    }
    return n - 1;
  }

  template <typename T>
  const T& Pick(std::span<const T> items) noexcept {
    assert(!items.empty());
    return items[NextBelow(items.size())];
  }

  template <typename T>
  const T& Pick(const std::vector<T>& items) noexcept {
    return Pick(std::span<const T>(items));
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child stream (e.g. one per node).
  DeterministicRng Fork(std::uint64_t stream_id) noexcept {
    return DeterministicRng(HashCombine(state_, Mix64(stream_id)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace nw::util
