// Minimal leveled logging. Disabled below the configured level at runtime;
// the default level is kWarn so large simulations stay quiet.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace nw::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel& GlobalLogLevel() noexcept;
void SetLogLevel(LogLevel level) noexcept;

namespace internal {
void LogLine(LogLevel level, const std::string& msg);

template <typename... Args>
void Logf(LogLevel level, const char* fmt, Args&&... args) {
  if (level < GlobalLogLevel()) return;
  char buf[1024];
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg): printf-style sink.
  std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
  LogLine(level, buf);
}
}  // namespace internal

template <typename... Args>
void LogDebug(const char* fmt, Args&&... args) {
  internal::Logf(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void LogInfo(const char* fmt, Args&&... args) {
  internal::Logf(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void LogWarn(const char* fmt, Args&&... args) {
  internal::Logf(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void LogError(const char* fmt, Args&&... args) {
  internal::Logf(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

}  // namespace nw::util
