// Deterministic, seedable hash primitives.
//
// The simulator and the Bloom-filter subscription layer need hashes that are
// stable across runs and platforms, so we avoid std::hash (whose value is
// unspecified) and provide small, well-known mixers instead.
#pragma once

#include <cstdint>
#include <string_view>

namespace nw::util {

// 64-bit FNV-1a over an arbitrary byte string.
constexpr std::uint64_t Fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Fast 64-bit finalizer (the splitmix64 step). Good avalanche behaviour;
// used to derive independent hash functions from a single base hash.
constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Seeded string hash: h_i(s) = Mix64(Fnv1a64(s) ^ Mix64(seed)).
constexpr std::uint64_t HashWithSeed(std::string_view bytes,
                                     std::uint64_t seed) noexcept {
  return Mix64(Fnv1a64(bytes) ^ Mix64(seed));
}

constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace nw::util
