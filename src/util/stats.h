// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nw::util {

// Accumulates samples and answers summary queries. Keeps all samples so
// exact percentiles are available; experiment sample counts are modest.
class SampleStats {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t Count() const noexcept { return samples_.size(); }
  bool Empty() const noexcept { return samples_.empty(); }

  double Sum() const noexcept {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  double Mean() const noexcept { return Empty() ? 0.0 : Sum() / Count(); }

  double Min() const noexcept {
    double m = std::numeric_limits<double>::infinity();
    for (double x : samples_) m = std::min(m, x);
    return Empty() ? 0.0 : m;
  }

  double Max() const noexcept {
    double m = -std::numeric_limits<double>::infinity();
    for (double x : samples_) m = std::max(m, x);
    return Empty() ? 0.0 : m;
  }

  double StdDev() const noexcept {
    if (Count() < 2) return 0.0;
    double mu = Mean();
    double acc = 0;
    for (double x : samples_) acc += (x - mu) * (x - mu);
    return std::sqrt(acc / (Count() - 1));
  }

  // Exact percentile by nearest-rank; q is clamped into [0,100], so an
  // out-of-range quantile can never index out of bounds.
  double Percentile(double q) const {
    if (Empty()) return 0.0;
    EnsureSorted();
    const std::size_t n = samples_.size();
    q = std::clamp(q, 0.0, 100.0);
    // Multiply before dividing: 100.0/100.0*n style rounding must not push
    // the rank past n (nor below 1 for q == 0).
    auto rank = static_cast<std::size_t>(std::ceil(q * double(n) / 100.0));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return samples_[rank - 1];
  }

  double Median() const { return Percentile(50); }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Monotonic counter set keyed by small enum-like ints; convenience for
// traffic accounting in the simulator.
struct Counter {
  std::uint64_t value = 0;
  void Inc(std::uint64_t by = 1) noexcept { value += by; }
};

}  // namespace nw::util
