// E10 — End-to-end reliability through the message cache (paper §9: "The
// same cache is used for assisting in achieving end-to-end reliability in
// the case of forwarding node failures, and for a limited state transfer
// to participants that are joining the system").
//
// Part 1: a burst of items is published while 20% of the nodes (k=1
// forwarding, so some act as sole forwarders) crash mid-burst; we track
// completeness over time as the peer anti-entropy repairs the holes.
//
// Part 2: a node joins (restarts empty) after the burst and catches up
// via state transfer from a cache peer.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace nw;

int main() {
  bench::BenchReport report(
      "cache_recovery",
      "The message cache assists end-to-end reliability under forwarding "
      "node failures and provides limited state transfer to joining "
      "participants (paper §9)");
  report.Note("128 subscribers, k=1 forwarding, 20% crashes mid-burst, "
              "anti-entropy repair every 5s; then a joiner catches up");
  std::printf(
      "E10 part 1: completeness over time with 20%% crashes mid-burst "
      "(k=1, repair every 5s)\n\n");
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 128;
  cfg.branching = 8;
  cfg.catalog_size = 2;
  cfg.subjects_per_subscriber = 2;
  cfg.multicast.redundancy = 1;
  cfg.subscriber.repair_interval = 5.0;
  cfg.subscriber.repair_window = 600.0;
  cfg.warm_start = true;
  cfg.run_gossip = true;
  cfg.seed = 77;
  newswire::NewswireSystem sys(cfg);
  sys.RunFor(10);

  std::vector<std::pair<std::string, std::string>> published;
  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(sys.Now() + k * 0.5, [&sys, &published] {
      const std::string subject = sys.RandomSubject();
      const std::string id = sys.PublishArticle(0, subject);
      if (!id.empty()) published.emplace_back(id, subject);
    });
  }
  util::DeterministicRng kill_rng(5);
  sys.deployment().sim().At(sys.Now() + 5.0, [&] {
    std::size_t killed = 0;
    while (killed < sys.subscriber_count() / 5) {
      const std::size_t i =
          std::size_t(kill_rng.NextBelow(sys.subscriber_count()));
      if (sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
        sys.deployment().net().Kill(sys.subscriber_agent(i).id());
        ++killed;
      }
    }
  });

  auto completeness = [&] {
    std::size_t got = 0, expected = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      if (!sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
        continue;
      }
      const auto& subjects = sys.SubjectsOf(i);
      for (const auto& [id, subject] : published) {
        if (std::find(subjects.begin(), subjects.end(), subject) ==
            subjects.end()) {
          continue;
        }
        ++expected;
        if (sys.subscriber(i).cache().Contains(id)) ++got;
      }
    }
    return expected ? 100.0 * double(got) / double(expected) : 0.0;
  };

  util::TablePrinter t1({"t_after_burst_s", "completeness%", "repaired_items"});
  const double burst_end = sys.Now() + 10.0;
  for (double checkpoint : {0.0, 15.0, 30.0, 60.0, 120.0}) {
    const double target = burst_end + checkpoint;
    if (target > sys.Now()) sys.RunFor(target - sys.Now());
    std::uint64_t repaired = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      repaired += sys.subscriber(i).stats().repaired;
    }
    const double pct = completeness();
    t1.AddRow({util::TablePrinter::Num(checkpoint, 0),
               util::TablePrinter::Num(pct, 2),
               util::TablePrinter::Int(long(repaired))});
    report.Measure(
        "completeness_pct_t" + std::to_string(int(checkpoint)) + "s", pct,
        "%");
  }
  t1.Print();

  std::printf(
      "\nE10 part 2: join state transfer — a crashed subscriber restarts "
      "empty and catches up from a cache peer\n\n");
  // Restart one victim and let it state-transfer.
  std::size_t victim = SIZE_MAX;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (!sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
      victim = i;
      break;
    }
  }
  util::TablePrinter t2({"joiner_cache_before", "joiner_cache_after",
                         "items_via_state_transfer", "catchup_time_s"});
  if (victim != SIZE_MAX) {
    sys.deployment().net().Restart(sys.subscriber_agent(victim).id());
    // Caches are volatile: a restart models a fresh join. Ask a live peer.
    std::size_t donor = (victim + 1) % sys.subscriber_count();
    while (!sys.deployment().net().IsAlive(
        sys.subscriber_agent(donor).id())) {
      donor = (donor + 1) % sys.subscriber_count();
    }
    const std::size_t before = sys.subscriber(victim).cache().size();
    const double t_start = sys.Now();
    sys.subscriber(victim).RequestStateTransfer(
        sys.subscriber_agent(donor).id());
    sys.RunFor(5);
    t2.AddRow({util::TablePrinter::Int(long(before)),
               util::TablePrinter::Int(long(sys.subscriber(victim).cache().size())),
               util::TablePrinter::Int(
                   long(sys.subscriber(victim).stats().state_transfer)),
               util::TablePrinter::Num(sys.Now() - t_start, 1)});
    report.Measure("joiner_items_via_state_transfer",
                   double(sys.subscriber(victim).stats().state_transfer));
    report.Measure("joiner_catchup_time", sys.Now() - t_start, "s");
  }
  t2.Print();
  report.WriteFile();
  std::printf(
      "\nReading: forwarding-node failures cut whole subtrees at k=1, but "
      "peer anti-entropy over the message cache restores completeness "
      "within a few repair rounds, and a joiner recovers the recent window "
      "in one exchange — both §9 claims.\n");
  return 0;
}
