// E2 — Publisher load: one-to-many direct push vs NewsWire collaborative
// dissemination (paper §2: direct personalized push "clearly has
// scalability limitations"; the collaborative system "significantly
// reduces the compute and network load at the publishers").
//
// For each subscriber count N we publish 5 articles (2 KB bodies) to every
// subscriber and report the traffic that leaves the *publisher's* machine,
// plus the time the last subscriber waits when the publisher uplink is a
// 1 MB/s link.
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/pull.h"
#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr int kItems = 5;
constexpr std::size_t kBody = 2048;
constexpr double kUplink = 1e6;  // 1 MB/s publisher uplink

struct Result {
  double publisher_mb = 0;
  double publisher_msgs = 0;
  double last_delivery_s = 0;
  double delivered_frac = 0;
};

Result RunDirectPush(std::size_t n) {
  sim::Simulator sim(11);
  sim::NetworkConfig nc;
  nc.base_latency = 0.04;
  nc.jitter_frac = 0.2;
  nc.uplink_bytes_per_sec = kUplink;
  sim::Network net(sim, nc);
  baseline::DirectPushServer server;
  net.AddNode(&server);
  std::vector<std::unique_ptr<baseline::DirectPushClient>> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<baseline::DirectPushClient>());
    net.AddNode(clients.back().get());
    server.AddSubscriber(clients.back()->id());
  }
  for (int k = 0; k < kItems; ++k) {
    sim.At(k * 1.0, [&server, &sim, k] {
      baseline::Article a;
      a.id = std::uint64_t(k) + 1;
      a.created_at = sim.Now();
      a.body_bytes = kBody;
      server.Publish(a);
    });
  }
  sim.RunUntilIdle();
  Result r;
  const auto& stats = net.StatsFor(server.id());
  r.publisher_mb = double(stats.bytes_sent) / 1e6;
  r.publisher_msgs = double(stats.messages_sent);
  std::uint64_t delivered = 0;
  for (const auto& c : clients) {
    delivered += c->received();
    r.last_delivery_s = std::max(r.last_delivery_s, c->latency().Max());
  }
  r.delivered_frac = double(delivered) / double(n * kItems);
  return r;
}

Result RunNewswire(std::size_t n) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = n;
  cfg.num_publishers = 1;
  cfg.branching = 16;
  cfg.net.base_latency = 0.04;
  cfg.net.jitter_frac = 0.2;
  cfg.net.uplink_bytes_per_sec = kUplink;
  cfg.catalog_size = 1;  // every subscriber wants every item
  cfg.subjects_per_subscriber = 1;
  cfg.body_bytes = kBody;
  cfg.warm_start = true;
  cfg.run_gossip = false;  // isolate dissemination traffic
  cfg.subscriber.repair_interval = 0;
  cfg.seed = 11;
  newswire::NewswireSystem sys(cfg);
  for (int k = 0; k < kItems; ++k) {
    sys.deployment().sim().At(k * 1.0, [&sys] {
      sys.PublishArticle(0, sys.catalog()[0]);
    });
  }
  sys.RunFor(120);
  Result r;
  const auto& stats = sys.PublisherTraffic(0);
  r.publisher_mb = double(stats.bytes_sent) / 1e6;
  r.publisher_msgs = double(stats.messages_sent);
  r.last_delivery_s = sys.latencies().Max();
  r.delivered_frac =
      double(sys.total_delivered()) / double(sys.subscriber_count() * kItems);
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E2: publisher egress, direct one-to-many push vs NewsWire (5 items x "
      "2KB, 1 MB/s publisher uplink)\n\n");
  util::TablePrinter table({"subscribers", "system", "pub_MB_sent",
                            "pub_msgs", "last_delivery_s", "delivered%"});
  bench::BenchReport report(
      "publisher_load",
      "Direct personalized push has clear scalability limitations; the "
      "collaborative system significantly reduces publisher compute and "
      "network load (paper §2)");
  report.Note("5 items x 2KB to every subscriber, 1 MB/s publisher uplink");
  for (std::size_t n : {100u, 1000u, 10000u, 50000u}) {
    Result direct = RunDirectPush(n);
    table.AddRow({util::TablePrinter::Int(long(n)), "direct-push",
                  util::TablePrinter::Num(direct.publisher_mb, 2),
                  util::TablePrinter::Int(long(direct.publisher_msgs)),
                  util::TablePrinter::Num(direct.last_delivery_s, 2),
                  util::TablePrinter::Num(100 * direct.delivered_frac, 1)});
    Result wire = RunNewswire(n);
    table.AddRow({util::TablePrinter::Int(long(n)), "newswire",
                  util::TablePrinter::Num(wire.publisher_mb, 2),
                  util::TablePrinter::Int(long(wire.publisher_msgs)),
                  util::TablePrinter::Num(wire.last_delivery_s, 2),
                  util::TablePrinter::Num(100 * wire.delivered_frac, 1)});
    const std::string suffix = "_" + std::to_string(n);
    report.Measure("direct_pub_mb" + suffix, direct.publisher_mb, "MB");
    report.Measure("newswire_pub_mb" + suffix, wire.publisher_mb, "MB");
    report.Measure("direct_last_delivery" + suffix, direct.last_delivery_s,
                   "s");
    report.Measure("newswire_last_delivery" + suffix, wire.last_delivery_s,
                   "s");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: direct push grows the publisher's egress linearly with N "
      "and serializes the fan-out on its uplink (the last subscriber's "
      "latency grows linearly too). NewsWire's publisher sends only to the "
      "representatives of the top-level zones, so its egress is flat in N — "
      "the collaborative overlay carries the rest (paper §2).\n");
  return 0;
}
