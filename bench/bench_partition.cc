// E13 — Network partition and healing (paper §10 lists "node failure &
// automatic zone reconfiguration, and the impact of those issues on
// end-to-end reliability" among the issues under experimentation).
//
// A top-level zone is partitioned away mid-stream. We track each side's
// membership view, what the isolated zone misses while cut off, and how
// completely and quickly the §9 cache anti-entropy back-fills it after
// the heal.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

int main() {
  std::printf(
      "E13: partition of one top-level zone during a news stream "
      "(64 subscribers, gossip 2s, repair 5s)\n\n");
  bench::BenchReport report(
      "partition",
      "Node failure and automatic zone reconfiguration, and their impact on "
      "end-to-end reliability (paper §10)");
  report.Note("one top-level zone partitioned t=20..40 during a 60s stream; "
              "anti-entropy back-fills after the heal");

  newswire::SystemConfig cfg;
  cfg.num_subscribers = 63;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 2;
  cfg.subjects_per_subscriber = 2;
  cfg.subscriber.repair_interval = 5.0;
  cfg.subscriber.repair_window = 600.0;
  cfg.warm_start = true;
  cfg.run_gossip = true;
  cfg.seed = 21;
  newswire::NewswireSystem sys(cfg);
  sys.RunFor(10);

  // The publisher (node 0) lives in z0; partition z3 away.
  std::vector<std::size_t> isolated;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (sys.subscriber_agent(i).path().Component(0) == "z3") {
      isolated.push_back(i);
    }
  }
  auto minority_members = [&] {
    astrolabe::Row s = sys.subscriber_agent(isolated[0]).ZoneSummary(0);
    return s.contains(astrolabe::kAttrMembers)
               ? s.at(astrolabe::kAttrMembers).AsInt()
               : 0;
  };
  auto majority_members = [&] {
    astrolabe::Row s = sys.subscriber_agent(0).ZoneSummary(0);
    return s.contains(astrolabe::kAttrMembers)
               ? s.at(astrolabe::kAttrMembers).AsInt()
               : 0;
  };
  auto isolated_completeness = [&](const std::vector<std::string>& ids) {
    std::size_t got = 0, expected = 0;
    for (std::size_t i : isolated) {
      const auto& subjects = sys.SubjectsOf(i);
      for (const auto& id : ids) {
        // catalog has 2 subjects, everyone has both.
        (void)subjects;
        ++expected;
        if (sys.subscriber(i).cache().Contains(id)) ++got;
      }
    }
    return expected ? 100.0 * double(got) / double(expected) : 0.0;
  };

  // Stream one item per second for 60 s; partition between t=20 and t=40.
  std::vector<std::string> ids;
  std::vector<std::string> during_partition_ids;
  const double t0 = sys.Now();
  for (int k = 0; k < 60; ++k) {
    sys.deployment().sim().At(t0 + k, [&sys, &ids, &during_partition_ids, t0,
                                       k] {
      const std::string id = sys.PublishArticle(0, sys.catalog()[k % 2]);
      if (id.empty()) return;
      ids.push_back(id);
      if (k >= 20 && k < 40) during_partition_ids.push_back(id);
    });
  }
  sys.deployment().sim().At(t0 + 20, [&] {
    for (std::size_t i : isolated) {
      sys.deployment().net().SetPartitionGroup(sys.subscriber_agent(i).id(),
                                               1);
    }
  });
  util::TablePrinter table({"phase", "t_s", "majority_view", "minority_view",
                            "isolated_zone_completeness%"});
  auto snapshot = [&](const char* phase) {
    const double pct = isolated_completeness(ids);
    table.AddRow({phase, util::TablePrinter::Num(sys.Now() - t0, 0),
                  util::TablePrinter::Int(long(majority_members())),
                  util::TablePrinter::Int(long(minority_members())),
                  util::TablePrinter::Num(pct, 1)});
    report.Measure(std::string("isolated_completeness_pct_") + phase, pct,
                   "%");
  };

  sys.RunFor(19);
  snapshot("pre-partition");
  sys.RunFor(19);  // t ~ 38: deep in the partition
  snapshot("partitioned");
  sys.deployment().sim().At(t0 + 40, [&] {
    sys.deployment().net().HealPartitions();
  });
  sys.RunFor(7);  // t ~ 45
  snapshot("just-healed");
  sys.RunFor(30);  // t ~ 75
  snapshot("healed+30s");
  sys.RunFor(60);  // t ~ 135
  snapshot("healed+90s");
  table.Print();

  std::uint64_t repaired = 0;
  for (std::size_t i : isolated) {
    repaired += sys.subscriber(i).stats().repaired;
  }
  std::printf(
      "\nitems published during the partition: %zu; recovered by the "
      "isolated zone via anti-entropy: %llu item-deliveries\n",
      during_partition_ids.size(),
      static_cast<unsigned long long>(repaired));
  report.Measure("items_during_partition", double(during_partition_ids.size()));
  report.Measure("repaired_item_deliveries", double(repaired));
  report.WriteFile();
  std::printf(
      "\nReading: each side's membership view shrinks to its own island "
      "(eventual consistency under partition), re-merges within a few "
      "gossip rounds of the heal, and the cache anti-entropy back-fills "
      "everything the isolated zone missed — end-to-end reliability "
      "through partition, the §10 experiment.\n");
  return 0;
}
