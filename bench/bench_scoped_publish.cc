// E11 — Zone-scoped and predicate-targeted publishing (paper §8: a
// publisher can "restrict the scope of the dissemination ... for example
// ... disseminate localized news items in Asia", and — as a planned
// feature — attach predicates over child-zone attributes, e.g. "send some
// item only to premium subscribers").
//
// 4095 subscribers (a uniform 16^3 tree), all subscribed to the subject. We publish at every
// scope depth and report delivery confinement and total network traffic
// saved versus a root publish; then we attach a premium predicate and
// report targeting precision.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

newswire::SystemConfig BaseConfig() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 4095;  // +1 publisher = 16^3 exactly: a uniform tree
  cfg.branching = 16;  // depth 3
  cfg.catalog_size = 1;
  cfg.subjects_per_subscriber = 1;
  cfg.warm_start = true;
  cfg.run_gossip = false;
  cfg.subscriber.repair_interval = 0;
  cfg.subscriber.cache.capacity = 64;
  cfg.seed = 19;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "E11 part 1: zone-scoped publishing — confinement and traffic saved "
      "(4095 subscribers, everyone subscribed)\n\n");
  util::TablePrinter t1({"scope_depth", "scope", "recipients",
                         "outside_leaks", "total_MB", "vs_root%"});
  bench::BenchReport report(
      "scoped_publish",
      "A publisher can restrict the scope of dissemination to a zone (e.g. "
      "localized news in Asia) and target by predicate, e.g. premium "
      "subscribers only (paper §8)");
  report.Note("4095 subscribers in a uniform 16^3 tree, all subscribed");
  double root_mb = 0;
  for (std::size_t depth : {0u, 1u, 2u}) {
    newswire::NewswireSystem sys(BaseConfig());
    sys.RunFor(2);
    const astrolabe::ZonePath scope =
        sys.publisher_agent(0).path().Prefix(depth);
    sys.deployment().net().ResetStats();
    const std::string id = sys.PublishArticle(0, sys.catalog()[0], scope);
    sys.RunFor(60);
    std::size_t recipients = 0, leaks = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      const bool inside = scope.IsPrefixOf(sys.subscriber_agent(i).path());
      const bool got = sys.subscriber(i).cache().Contains(id);
      if (got && inside) ++recipients;
      if (got && !inside) ++leaks;
    }
    const double mb =
        double(sys.deployment().net().TotalStats().bytes_sent) / 1e6;
    if (depth == 0) root_mb = mb;
    t1.AddRow({util::TablePrinter::Int(long(depth)), scope.ToString(),
               util::TablePrinter::Int(long(recipients)),
               util::TablePrinter::Int(long(leaks)),
               util::TablePrinter::Num(mb, 2),
               util::TablePrinter::Num(root_mb > 0 ? 100 * mb / root_mb : 100,
                                       1)});
    const std::string suffix = "_depth" + std::to_string(depth);
    report.Measure("outside_leaks" + suffix, double(leaks));
    report.Measure("traffic_vs_root_pct" + suffix,
                   root_mb > 0 ? 100 * mb / root_mb : 100, "%");
  }
  t1.Print();

  std::printf(
      "\nE11 part 2: predicate-targeted delivery (\"premium = 1\"), 25%% "
      "premium subscribers\n\n");
  util::TablePrinter t2({"predicate", "premium_reached", "non_premium_leaks",
                         "total_MB"});
  for (bool use_pred : {false, true}) {
    newswire::SystemConfig cfg = BaseConfig();
    newswire::NewswireSystem sys(cfg);
    sys.deployment().InstallFunctionEverywhere(
        "premium", "SELECT MAX(premium) AS premium");
    std::size_t premium_count = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      if (i % 4 == 0) {
        sys.subscriber_agent(i).SetLocalAttr("premium", std::int64_t{1});
        ++premium_count;
      }
    }
    sys.deployment().WarmStart();
    sys.RunFor(2);
    sys.deployment().net().ResetStats();
    newswire::NewsItem item;
    item.subject = sys.catalog()[0];
    item.headline = "premium bulletin";
    if (use_pred) item.forward_predicate = "premium = 1";
    sys.publisher(0).Publish(item);
    sys.RunFor(60);
    std::size_t premium_got = 0, leaks = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      const bool premium = (i % 4 == 0);
      const bool got = sys.subscriber(i).cache().Contains("pub0#1");
      if (premium && got) ++premium_got;
      if (!premium && got) ++leaks;
    }
    t2.AddRow({use_pred ? "premium = 1" : "(none)",
               util::TablePrinter::Int(long(premium_got)) + "/" +
                   util::TablePrinter::Int(long(premium_count)),
               util::TablePrinter::Int(long(leaks)),
               util::TablePrinter::Num(
                   double(sys.deployment().net().TotalStats().bytes_sent) /
                       1e6,
                   2)});
    const std::string key = use_pred ? "pred" : "nopred";
    report.Measure("premium_reached_" + key, double(premium_got));
    report.Measure("non_premium_leaks_" + key, double(leaks));
  }
  t2.Print();
  report.WriteFile();
  std::printf(
      "\nReading: scoping to a depth-d zone confines delivery exactly and "
      "cuts traffic by roughly the zone's share of the tree; the predicate "
      "extension prunes whole zones without premium subscribers and "
      "filters precisely at the leaves (paper §8).\n");
  return 0;
}
