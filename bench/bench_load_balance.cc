// A2 (ablation) — Load-aware representative election (paper §5: the
// election function "combines the local knowledge of availability of
// independent network paths to a node, the load on those paths and the
// load on each node").
//
// With gossip running, forwarding components report their utilization
// into the "load" MIB attribute. Under a sustained publication stream the
// hottest representatives should be rotated out by the aggregation
// function. We compare load feedback on vs off by how evenly forwarding
// work spreads over the nodes.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

struct Outcome {
  double mean_fwd = 0;
  double p99_fwd = 0;
  double max_fwd = 0;
  double top1pct_share = 0;  // share of all forwards done by the top 1%
};

Outcome Run(bool load_feedback) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 511;
  cfg.branching = 8;
  cfg.catalog_size = 1;
  cfg.subjects_per_subscriber = 1;
  cfg.gossip_period = 1.0;  // quick re-election
  cfg.multicast.report_load = load_feedback;
  cfg.multicast.load_report_interval = 2.0;
  cfg.multicast.forward_bytes_per_sec = 2e6;
  cfg.warm_start = true;
  cfg.run_gossip = true;
  cfg.subscriber.repair_interval = 0;
  cfg.seed = 9;
  newswire::NewswireSystem sys(cfg);
  sys.RunFor(10);

  // Sustained stream: 2 items/s for 120 s.
  for (int k = 0; k < 240; ++k) {
    sys.deployment().sim().At(sys.Now() + k * 0.5, [&sys] {
      sys.PublishArticle(0, sys.catalog()[0]);
    });
  }
  sys.RunFor(180);

  std::vector<double> forwards;
  double total = 0;
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    const double f = double(sys.multicast_at(i).stats().forwards);
    forwards.push_back(f);
    total += f;
  }
  std::sort(forwards.begin(), forwards.end());
  Outcome out;
  util::SampleStats s;
  for (double f : forwards) s.Add(f);
  out.mean_fwd = s.Mean();
  out.p99_fwd = s.Percentile(99);
  out.max_fwd = s.Max();
  double top = 0;
  const std::size_t top_n = std::max<std::size_t>(1, forwards.size() / 100);
  for (std::size_t i = forwards.size() - top_n; i < forwards.size(); ++i) {
    top += forwards[i];
  }
  out.top1pct_share = total > 0 ? 100.0 * top / total : 0;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "A2 (ablation): load-aware representative election — forwarding-work "
      "distribution over 511 nodes during a 2 items/s stream\n\n");
  util::TablePrinter table({"load_feedback", "mean_fwd", "p99_fwd", "max_fwd",
                            "top1%_share%"});
  bench::BenchReport report(
      "load_balance",
      "Representative election combines path availability with the load on "
      "paths and nodes, spreading forwarding work (paper §5)");
  report.Note("511 nodes, sustained 2 items/s stream; load feedback on/off");
  for (bool feedback : {false, true}) {
    Outcome out = Run(feedback);
    table.AddRow({feedback ? "on" : "off",
                  util::TablePrinter::Num(out.mean_fwd, 1),
                  util::TablePrinter::Num(out.p99_fwd, 0),
                  util::TablePrinter::Num(out.max_fwd, 0),
                  util::TablePrinter::Num(out.top1pct_share, 1)});
    const std::string key = feedback ? "_feedback_on" : "_feedback_off";
    report.Measure("max_forwards" + key, out.max_fwd);
    report.Measure("p99_forwards" + key, out.p99_fwd);
    report.Measure("top1pct_share" + key, out.top1pct_share, "%");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: without feedback the initially elected representatives "
      "carry the whole stream forever; with the §5 load attribute flowing "
      "through the aggregation, hot nodes are rotated out and the work "
      "spreads across more of the population (lower max and top-1%% "
      "share).\n");
  return 0;
}
