// E9 — Filtering cost: why the Bloom filter replaces per-subscription
// attributes (paper §6: "Having an attribute for each possible
// subscription would be poorly scalable because the work done for
// purposes of filtering would be at least linear in the number of
// subscriptions").
//
// google-benchmark suite comparing, as the number of distinct
// subscriptions S grows:
//   * per-forward admission test (Bloom vs category-mask vs one attribute
//     per subscription),
//   * the aggregation recomputation a zone performs when a child row
//     changes (one OR(subs) query vs S per-attribute queries),
//   * the MIB bytes gossip must carry.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "astrolabe/sql/eval.h"
#include "bench_report.h"
#include "astrolabe/sql/parser.h"
#include "astrolabe/table.h"
#include "pubsub/bloom_filter.h"
#include "pubsub/category_subscriptions.h"
#include "pubsub/pubsub.h"

using namespace nw;
using astrolabe::AttrValue;
using astrolabe::Row;
using astrolabe::Table;

namespace {

std::string SubjectName(std::size_t i) {
  return "subject." + std::to_string(i);
}

// ---- per-forward admission ----

void BM_AdmitBloom(benchmark::State& state) {
  const std::size_t subs = std::size_t(state.range(0));
  pubsub::BloomConfig cfg;
  cfg.bits = 1024;
  pubsub::BloomFilter filter(cfg);
  for (std::size_t s = 0; s < subs; ++s) filter.Add(SubjectName(s));
  Row child;
  child[pubsub::kAttrSubs] = filter.bits();
  multicast::Item item;
  item.metadata[pubsub::kAttrSubBits] = astrolabe::ValueList{
      AttrValue(std::int64_t(filter.Positions(SubjectName(0))[0]))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pubsub::PubSubService::ChildAdmits(item, child));
  }
  state.SetLabel("constant in #subscriptions");
}
BENCHMARK(BM_AdmitBloom)->Arg(16)->Arg(256)->Arg(4096);

void BM_AdmitCategoryMask(benchmark::State& state) {
  const std::size_t publishers = std::size_t(state.range(0));
  Row child;
  for (std::size_t p = 0; p < publishers; ++p) {
    child[pubsub::CategoryAttrFor("pub" + std::to_string(p))] =
        std::int64_t{0xff};
  }
  multicast::Item item;
  item.metadata[pubsub::kAttrPublisher] = std::string("pub0");
  item.metadata[pubsub::kAttrCatMask] = std::int64_t{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pubsub::CategorySubscriptions::ChildAdmits(item, child));
  }
  state.SetLabel("lookup among #publishers attributes");
}
BENCHMARK(BM_AdmitCategoryMask)->Arg(16)->Arg(256)->Arg(4096);

void BM_AdmitPerSubscriptionAttributes(benchmark::State& state) {
  // The strawman §6 rejects: one attribute per subscription in every row.
  const std::size_t subs = std::size_t(state.range(0));
  Row child;
  for (std::size_t s = 0; s < subs; ++s) {
    child["sub_" + SubjectName(s)] = true;
  }
  const std::string wanted = "sub_" + SubjectName(subs / 2);
  for (auto _ : state) {
    auto it = child.find(wanted);
    benchmark::DoNotOptimize(it != child.end() && it->second.AsBool());
  }
  state.SetLabel("map over #subscription attributes");
}
BENCHMARK(BM_AdmitPerSubscriptionAttributes)->Arg(16)->Arg(256)->Arg(4096);

// ---- aggregation recomputation on child change ----

Table MakeChildTable(std::size_t rows, std::size_t subs, bool per_attr) {
  Table t;
  pubsub::BloomConfig cfg;
  cfg.bits = 1024;
  for (std::size_t r = 0; r < rows; ++r) {
    astrolabe::RowEntry e;
    if (per_attr) {
      for (std::size_t s = r % 4; s < subs; s += 4) {
        e.attrs["sub_" + SubjectName(s)] = true;
      }
    } else {
      pubsub::BloomFilter f(cfg);
      for (std::size_t s = r % 4; s < subs; s += 4) f.Add(SubjectName(s));
      e.attrs[pubsub::kAttrSubs] = f.bits();
    }
    e.version = 1;
    t.MergeEntry("n" + std::to_string(r), e, 0.0);
  }
  return t;
}

void BM_AggregateBloomFilter(benchmark::State& state) {
  const std::size_t subs = std::size_t(state.range(0));
  Table t = MakeChildTable(64, subs, /*per_attr=*/false);
  const auto query = astrolabe::sql::ParseQuery(pubsub::SubsFunctionCode());
  for (auto _ : state) {
    benchmark::DoNotOptimize(astrolabe::sql::EvalQuery(query, t));
  }
  state.SetLabel("one OR() query regardless of #subscriptions");
}
BENCHMARK(BM_AggregateBloomFilter)->Arg(16)->Arg(256)->Arg(4096);

void BM_AggregatePerSubscriptionAttributes(benchmark::State& state) {
  const std::size_t subs = std::size_t(state.range(0));
  Table t = MakeChildTable(64, subs, /*per_attr=*/true);
  // One aggregation term per subscription attribute — the linear work the
  // paper calls out. (Queries are pre-parsed; only evaluation is timed.)
  std::vector<astrolabe::sql::Query> queries;
  for (std::size_t s = 0; s < subs; ++s) {
    const std::string attr = "sub_" + SubjectName(s);
    queries.push_back(
        astrolabe::sql::ParseQuery("SELECT MAX(" + attr + ") AS " + attr));
  }
  for (auto _ : state) {
    Row out;
    for (const auto& q : queries) {
      Row r = astrolabe::sql::EvalQuery(q, t);
      for (auto& [k, v] : r) out.insert_or_assign(k, std::move(v));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("S queries: linear in #subscriptions");
}
BENCHMARK(BM_AggregatePerSubscriptionAttributes)->Arg(16)->Arg(256)->Arg(4096);

// ---- gossiped state size ----

void BM_MibWireBytes(benchmark::State& state) {
  const std::size_t subs = std::size_t(state.range(0));
  pubsub::BloomConfig cfg;
  cfg.bits = 1024;
  pubsub::BloomFilter f(cfg);
  Row bloom_row, attr_row;
  for (std::size_t s = 0; s < subs; ++s) {
    f.Add(SubjectName(s));
    attr_row["sub_" + SubjectName(s)] = true;
  }
  bloom_row[pubsub::kAttrSubs] = f.bits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(astrolabe::RowWireBytes(bloom_row));
    benchmark::DoNotOptimize(astrolabe::RowWireBytes(attr_row));
  }
  state.counters["bloom_bytes"] =
      double(astrolabe::RowWireBytes(bloom_row));
  state.counters["per_attr_bytes"] =
      double(astrolabe::RowWireBytes(attr_row));
}
BENCHMARK(BM_MibWireBytes)->Arg(16)->Arg(256)->Arg(4096);

// Console output plus a machine-readable record of every timed run.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::BenchReport& report) : report_(report) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      report_.Measure(run.benchmark_name(), run.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report(
      "filter_cost",
      "One attribute per possible subscription would be poorly scalable: "
      "filtering work would be at least linear in the number of "
      "subscriptions, while the Bloom filter is constant (paper §6)");
  report.Note("google-benchmark microsuite: per-forward admission, "
              "aggregation recompute, and gossiped MIB bytes vs #subs");
  RecordingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.WriteFile();
  return 0;
}
