// E7 — Publisher flooding / DoS (paper §8: "The selection and filtering
// mechanisms used in each forwarding component protect the system from
// flooding by publishers"; §1: news sites "become completely useless
// under overload").
//
// A legitimate publisher emits 1 item/s while a rogue publisher tries to
// emit 200 items/s. Forwarding components have a constrained byte budget.
// We compare: (a) no admission control, (b) publisher flow control caps
// the rogue at 2 items/s, and report what happens to the legitimate
// traffic.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

struct Outcome {
  double legit_delivered_pct = 0;
  double legit_p99_ms = 0;
  double rogue_admitted = 0;
  double queue_drops = 0;
};

Outcome Run(bool flow_control) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 126;
  cfg.num_publishers = 2;  // publisher 0 = legit, publisher 1 = rogue
  cfg.branching = 8;
  cfg.catalog_size = 2;
  cfg.subjects_per_subscriber = 2;  // everyone takes both subjects
  cfg.body_bytes = 4096;
  // Constrained forwarding plane: 300 KB/s per node, bounded queues.
  cfg.multicast.forward_bytes_per_sec = 300e3;
  cfg.multicast.forward_burst_bytes = 300e3;
  cfg.multicast.max_queue_items = 64;
  cfg.net.uplink_bytes_per_sec = 10e6;
  cfg.publisher_rate = flow_control ? 2.0 : 1e9;
  cfg.publisher_burst = flow_control ? 4.0 : 1e9;
  cfg.warm_start = true;
  cfg.run_gossip = false;
  cfg.subscriber.repair_interval = 0;
  cfg.seed = 41;
  newswire::NewswireSystem sys(cfg);

  util::SampleStats legit_latency;
  std::vector<std::string> legit_ids;
  const double t0 = sys.Now();
  for (int s = 0; s < 30; ++s) {
    // Legit: one item per second.
    sys.deployment().sim().At(t0 + s, [&sys, &legit_ids] {
      const std::string id = sys.PublishArticle(0, sys.catalog()[0]);
      if (!id.empty()) legit_ids.push_back(id);
    });
    // Rogue: 200 attempts per second on the other subject.
    for (int r = 0; r < 200; ++r) {
      sys.deployment().sim().At(t0 + s + r * 0.005, [&sys] {
        sys.PublishArticle(1, sys.catalog()[1]);
      });
    }
  }
  sys.RunFor(90);

  Outcome out;
  std::size_t got = 0, expected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    const auto& subjects = sys.SubjectsOf(i);
    if (std::find(subjects.begin(), subjects.end(), sys.catalog()[0]) ==
        subjects.end()) {
      continue;
    }
    for (const auto& id : legit_ids) {
      ++expected;
      if (sys.subscriber(i).cache().Contains(id)) ++got;
    }
  }
  out.legit_delivered_pct =
      expected ? 100.0 * double(got) / double(expected) : 0;
  // Latency of legitimate items only: approximate with the global p99 when
  // flow control is on (rogue items are few), otherwise recompute from
  // subscriber caches is not possible; use delivered latencies of legit
  // ids via per-item accounting below.
  out.legit_p99_ms = sys.latencies().Percentile(99) * 1e3;
  out.rogue_admitted = double(sys.publisher(1).stats().published);
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    out.queue_drops += double(sys.multicast_at(i).stats().queue_drops);
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E7: a rogue publisher floods (200 attempts/s) while a legitimate "
      "one publishes 1 item/s through a constrained forwarding plane\n\n");
  util::TablePrinter table({"flow_control", "rogue_items_admitted",
                            "queue_drops", "legit_delivered%",
                            "all_items_p99_ms"});
  Outcome off = Run(false);
  table.AddRow({"off", util::TablePrinter::Int(long(off.rogue_admitted)),
                util::TablePrinter::Int(long(off.queue_drops)),
                util::TablePrinter::Num(off.legit_delivered_pct, 1),
                util::TablePrinter::Num(off.legit_p99_ms, 0)});
  Outcome on = Run(true);
  table.AddRow({"on (2 items/s cap)",
                util::TablePrinter::Int(long(on.rogue_admitted)),
                util::TablePrinter::Int(long(on.queue_drops)),
                util::TablePrinter::Num(on.legit_delivered_pct, 1),
                util::TablePrinter::Num(on.legit_p99_ms, 0)});
  table.Print();
  bench::BenchReport report(
      "flood_control",
      "Selection and filtering in each forwarding component protect the "
      "system from flooding by publishers (paper §8)");
  report.Note("rogue publisher floods 200 attempts/s against a legitimate "
              "1 item/s stream through a constrained forwarding plane");
  report.Measure("legit_delivered_pct_no_fc", off.legit_delivered_pct, "%");
  report.Measure("legit_delivered_pct_fc", on.legit_delivered_pct, "%");
  report.Measure("rogue_admitted_no_fc", off.rogue_admitted);
  report.Measure("rogue_admitted_fc", on.rogue_admitted);
  report.Measure("queue_drops_no_fc", off.queue_drops);
  report.Measure("queue_drops_fc", on.queue_drops);
  report.Measure("p99_ms_no_fc", off.legit_p99_ms, "ms");
  report.Measure("p99_ms_fc", on.legit_p99_ms, "ms");
  report.WriteFile();
  std::printf(
      "\nReading: without admission control the flood overflows the "
      "bounded forwarding queues and legitimate items are dropped or "
      "delayed; the paper's publisher flow control (§8) caps the rogue at "
      "the entry point, keeping legitimate delivery complete and fast.\n");
  return 0;
}
