// Machine-readable benchmark output (shared by every bench_*.cc).
//
// Each experiment harness keeps printing its human-facing table, and
// additionally declares the paper claim it exercises plus the numbers it
// measured through a BenchReport. WriteFile() serialises the report as
// BENCH_<name>.json into $BENCH_JSON_DIR (or the working directory), so CI
// and tooling can diff measured values against the paper without scraping
// stdout. Percentiles come from util::SampleStats (exact nearest-rank).
#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace nw::bench {

class BenchReport {
 public:
  // `name` keys the output file (BENCH_<name>.json); `claim` is the paper
  // statement the experiment tests, quoted or paraphrased.
  BenchReport(std::string name, std::string claim);

  // A single measured scalar, e.g. Measure("redundant_frac_4_polls", 0.71).
  void Measure(const std::string& key, double value,
               const std::string& unit = "");

  // A full sample distribution; serialised as count/mean/min/max/stddev and
  // p50/p90/p99 percentiles.
  void Samples(const std::string& key, const util::SampleStats& stats,
               const std::string& unit = "");

  // Free-form commentary (workload description, reading guidance).
  void Note(const std::string& text);

  std::string ToJson() const;

  // BENCH_<name>.json under $BENCH_JSON_DIR if set, else the cwd.
  static std::string OutputPath(const std::string& name);

  // Writes the JSON file; prints a one-line confirmation (or a warning on
  // failure) and returns whether the write succeeded.
  bool WriteFile() const;

 private:
  struct Scalar {
    std::string key;
    double value;
    std::string unit;
  };
  struct Distribution {
    std::string key;
    std::string unit;
    std::size_t count;
    double mean, min, max, stddev, p50, p90, p99;
  };

  std::string name_;
  std::string claim_;
  std::vector<Scalar> measured_;
  std::vector<Distribution> samples_;
  std::vector<std::string> notes_;
};

}  // namespace nw::bench
