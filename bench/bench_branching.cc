// E8 — Zone branching factor (paper §3: "Each of these tables is limited
// to some small size (say, 64 rows); thus the hierarchy may be several
// levels deep").
//
// Fixed 4096 subscribers; sweep the branching factor and report the tree
// depth, delivery latency, and the forwarding load concentration (mean
// and max forwards per node) — the trade-off that motivates bounded table
// sizes.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

int main() {
  std::printf(
      "E8: branching factor sweep at 4096 subscribers (10 items, warm "
      "replicas)\n\n");
  util::TablePrinter table({"branching", "depth", "p50_ms", "p99_ms",
                            "mean_fwd/node", "max_fwd/node"});
  bench::BenchReport report(
      "branching",
      "Zone tables are limited to some small size (say, 64 rows), so the "
      "hierarchy may be several levels deep (paper §3)");
  report.Note("4096 subscribers, 10 items, warm replicas; sweep branching");
  for (std::size_t b : {4u, 8u, 16u, 64u}) {
    newswire::SystemConfig cfg;
    cfg.num_subscribers = 4096;
    cfg.branching = b;
    cfg.catalog_size = 1;
    cfg.subjects_per_subscriber = 1;
    cfg.warm_start = true;
    cfg.run_gossip = false;
    cfg.subscriber.repair_interval = 0;
    cfg.subscriber.cache.capacity = 16;
    cfg.seed = 13;
    newswire::NewswireSystem sys(cfg);
    for (int k = 0; k < 10; ++k) {
      sys.deployment().sim().At(k * 0.5, [&sys] {
        sys.PublishArticle(0, sys.catalog()[0]);
      });
    }
    sys.RunFor(60);
    std::uint64_t total_fwd = 0, max_fwd = 0;
    for (std::size_t i = 0; i < sys.node_count(); ++i) {
      const std::uint64_t f = sys.multicast_at(i).stats().forwards;
      total_fwd += f;
      max_fwd = std::max(max_fwd, f);
    }
    table.AddRow(
        {util::TablePrinter::Int(long(b)),
         util::TablePrinter::Int(long(sys.deployment().Depth())),
         util::TablePrinter::Num(sys.latencies().Percentile(50) * 1e3, 0),
         util::TablePrinter::Num(sys.latencies().Percentile(99) * 1e3, 0),
         util::TablePrinter::Num(double(total_fwd) / double(sys.node_count()),
                                 2),
         util::TablePrinter::Int(long(max_fwd))});
    const std::string suffix = "_b" + std::to_string(b);
    report.Samples("latency" + suffix, sys.latencies(), "s");
    report.Measure("depth" + suffix, double(sys.deployment().Depth()));
    report.Measure("max_forwards_per_node" + suffix, double(max_fwd));
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: small branching gives deep trees (more hops, higher "
      "latency) but spreads forwarding across many representatives; large "
      "branching flattens the tree at the cost of concentrating fan-out on "
      "few nodes — the paper's 64-row table cap sits at the flat end of "
      "this trade-off.\n");
  return 0;
}
