// E12 — Micro-costs of the building blocks (paper §3/§5): aggregation
// evaluation, gossip-table merging, certificate operations, Bloom
// operations, zone-path handling, and the per-hop multicast decision.
#include <benchmark/benchmark.h>

#include "astrolabe/cert.h"
#include "astrolabe/sql/eval.h"
#include "astrolabe/sql/parser.h"
#include "astrolabe/sql/plan.h"
#include "astrolabe/table.h"
#include "astrolabe/zone_path.h"
#include "astrolabe/agent.h"
#include "bench_report.h"
#include "pubsub/bloom_filter.h"
#include "util/rng.h"

using namespace nw;
using astrolabe::AttrValue;
using astrolabe::RowEntry;
using astrolabe::Table;

namespace {

Table MakeTable(std::size_t rows) {
  Table t;
  util::DeterministicRng rng(3);
  for (std::size_t r = 0; r < rows; ++r) {
    RowEntry e;
    e.attrs[astrolabe::kAttrContacts] =
        astrolabe::ValueList{AttrValue(std::int64_t(r))};
    e.attrs[astrolabe::kAttrMembers] = std::int64_t(1 + rng.NextBelow(100));
    e.attrs[astrolabe::kAttrLoad] = rng.NextDouble();
    e.version = r + 1;
    t.MergeEntry("n" + std::to_string(r), e, 0.0);
  }
  return t;
}

void BM_ParseCoreAggregation(benchmark::State& state) {
  const std::string code = astrolabe::DefaultCoreFunctionCode(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(astrolabe::sql::ParseQuery(code));
  }
}
BENCHMARK(BM_ParseCoreAggregation);

void BM_EvalCoreAggregation(benchmark::State& state) {
  Table t = MakeTable(std::size_t(state.range(0)));
  const auto query =
      astrolabe::sql::ParseQuery(astrolabe::DefaultCoreFunctionCode(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(astrolabe::sql::EvalQuery(query, t));
  }
}
BENCHMARK(BM_EvalCoreAggregation)->Arg(8)->Arg(64)->Arg(256);

void BM_EvalCoreAggregationCompiled(benchmark::State& state) {
  Table t = MakeTable(std::size_t(state.range(0)));
  const auto plan = astrolabe::sql::CompiledQuery::Compile(
      astrolabe::sql::ParseQuery(astrolabe::DefaultCoreFunctionCode(3)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.Eval(t));
  }
}
BENCHMARK(BM_EvalCoreAggregationCompiled)->Arg(8)->Arg(64)->Arg(256);

void BM_TableMerge(benchmark::State& state) {
  Table incoming = MakeTable(std::size_t(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Table local = MakeTable(std::size_t(state.range(0)) / 2);
    state.ResumeTiming();
    for (const auto& [key, entry] : incoming) {
      local.MergeEntry(key, entry, 1.0);
    }
    benchmark::DoNotOptimize(local);
  }
}
BENCHMARK(BM_TableMerge)->Arg(8)->Arg(64)->Arg(256);

void BM_TableWireBytes(benchmark::State& state) {
  Table t = MakeTable(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.WireBytes());
  }
}
BENCHMARK(BM_TableWireBytes);

void BM_CertIssue(benchmark::State& state) {
  util::DeterministicRng rng(1);
  astrolabe::Authority authority("root", astrolabe::GenerateKeyPair(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.Issue(
        astrolabe::CertKind::kFunction, "fn", 0,
        {{"code", "SELECT MAX(load) AS load"}, {"version", "1"}}, 0, 1e18));
  }
}
BENCHMARK(BM_CertIssue);

void BM_CertValidateChain(benchmark::State& state) {
  util::DeterministicRng rng(1);
  astrolabe::Authority root("root", astrolabe::GenerateKeyPair(rng));
  const astrolabe::KeyPair zone_keys = astrolabe::GenerateKeyPair(rng);
  astrolabe::Authority zone("usa", zone_keys);
  const auto zone_cert = root.Issue(astrolabe::CertKind::kZoneAuthority,
                                    "usa", zone.public_key(), {}, 0, 1e18);
  const auto agent_cert =
      zone.Issue(astrolabe::CertKind::kAgent, "n1", 1, {}, 0, 1e18);
  const std::vector<astrolabe::Certificate> inter{zone_cert};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        astrolabe::ValidateChain(agent_cert, inter, root.public_key(), 10));
  }
}
BENCHMARK(BM_CertValidateChain);

void BM_BloomAddAndTest(benchmark::State& state) {
  pubsub::BloomConfig cfg;
  cfg.bits = 1024;
  pubsub::BloomFilter f(cfg);
  int i = 0;
  for (auto _ : state) {
    const std::string subject = "subject." + std::to_string(i++ % 1000);
    f.Add(subject);
    benchmark::DoNotOptimize(f.MightContain(subject));
  }
}
BENCHMARK(BM_BloomAddAndTest);

void BM_BitVectorOr(benchmark::State& state) {
  astrolabe::BitVector a(std::size_t(state.range(0)));
  astrolabe::BitVector b(std::size_t(state.range(0)));
  for (std::size_t i = 0; i < a.size(); i += 7) a.Set(i);
  for (std::size_t i = 0; i < b.size(); i += 11) b.Set(i);
  for (auto _ : state) {
    astrolabe::BitVector c = a;
    c |= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVectorOr)->Arg(1024)->Arg(16384);

void BM_ZonePathParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        astrolabe::ZonePath::Parse("/usa/ny/ithaca/campus/n12345"));
  }
}
BENCHMARK(BM_ZonePathParse);

void BM_PredicateEval(benchmark::State& state) {
  const auto pred = astrolabe::sql::ParseExpression(
      "urgency <= 3 AND CONTAINS(headline, 'election') AND premium = 1");
  astrolabe::Row row;
  row["urgency"] = std::int64_t{2};
  row["headline"] = "election night special";
  row["premium"] = std::int64_t{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(astrolabe::sql::EvalPredicate(*pred, row));
  }
}
BENCHMARK(BM_PredicateEval);

// Console output plus a machine-readable record of every timed run.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::BenchReport& report) : report_(report) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      report_.Measure(run.benchmark_name(), run.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report(
      "micro",
      "Micro-costs of the building blocks: aggregation evaluation, table "
      "merge, certificate operations, Bloom and zone-path handling "
      "(paper §3/§5)");
  RecordingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.WriteFile();
  return 0;
}
