// A3 (ablation) — Hierarchical subject subscriptions (paper §7: moving
// beyond the per-publisher bitmask prototype, "we expect to do much more
// as we move towards NewsML and begin to enrich the subscription space
// within which our Bloom filters operate").
//
// A news taxonomy of 8 sections x 16 topics. Subscribers who want a whole
// section can either (a) subscribe to all 16 topic subjects individually
// (flat matching) or (b) subscribe to the single section prefix
// (hierarchical matching). We compare filter state, routing traffic, and
// correctness.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr std::size_t kSections = 8;
constexpr std::size_t kTopics = 16;

std::string TopicSubject(std::size_t section, std::size_t topic) {
  return "sec" + std::to_string(section) + ".topic" + std::to_string(topic);
}

struct Outcome {
  double delivered_ok = 0;    // fraction of expected deliveries that arrived
  double avg_bits_set = 0;    // filter occupancy per subscriber
  double total_mb = 0;
  std::uint64_t false_pos = 0;
};

Outcome Run(bool hierarchical) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 255;
  cfg.branching = 4;
  cfg.hierarchical_subjects = hierarchical;
  cfg.catalog_size = 1;  // harness catalog unused; we subscribe manually
  cfg.subjects_per_subscriber = 0;
  cfg.warm_start = false;  // subscriptions set below, then warm
  cfg.run_gossip = false;
  cfg.subscriber.repair_interval = 0;
  cfg.seed = 77;
  newswire::NewswireSystem sys(cfg);

  // Every subscriber follows one whole section.
  std::vector<std::size_t> section_of(sys.subscriber_count());
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    const std::size_t section = i % kSections;
    section_of[i] = section;
    if (hierarchical) {
      sys.subscriber(i).Subscribe("sec" + std::to_string(section));
    } else {
      for (std::size_t t = 0; t < kTopics; ++t) {
        sys.subscriber(i).Subscribe(TopicSubject(section, t));
      }
    }
  }
  sys.deployment().WarmStart();
  sys.RunFor(2);
  sys.deployment().net().ResetStats();

  // One item per topic.
  for (std::size_t s = 0; s < kSections; ++s) {
    for (std::size_t t = 0; t < kTopics; ++t) {
      newswire::NewsItem item;
      item.subject = TopicSubject(s, t);
      item.body_bytes = 1024;
      sys.publisher(0).Publish(item);
    }
  }
  sys.RunFor(60);

  Outcome out;
  std::size_t got = 0, expected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    expected += kTopics;  // every topic of the followed section
    got += sys.subscriber(i).cache().size();
    out.avg_bits_set +=
        double(sys.pubsub_at(sys.subscriber_node(i)).filter().bits().PopCount());
    out.false_pos += sys.pubsub_at(sys.subscriber_node(i)).stats().false_positives;
  }
  out.avg_bits_set /= double(sys.subscriber_count());
  out.delivered_ok = double(got) / double(expected);
  out.total_mb =
      double(sys.deployment().net().TotalStats().bytes_sent) / 1e6;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "A3 (ablation): following whole sections — 16 per-topic "
      "subscriptions (flat) vs one prefix subscription (hierarchical, §7 "
      "extension); 255 subscribers, 8 sections x 16 topics\n\n");
  util::TablePrinter table({"matching", "subs/node", "filter_bits_set",
                            "delivered%", "bloom_false_pos", "total_MB"});
  Outcome flat = Run(false);
  table.AddRow({"flat (16 topics each)", "16",
                util::TablePrinter::Num(flat.avg_bits_set, 1),
                util::TablePrinter::Num(100 * flat.delivered_ok, 2),
                util::TablePrinter::Int(long(flat.false_pos)),
                util::TablePrinter::Num(flat.total_mb, 2)});
  Outcome hier = Run(true);
  table.AddRow({"hierarchical (1 prefix)", "1",
                util::TablePrinter::Num(hier.avg_bits_set, 1),
                util::TablePrinter::Num(100 * hier.delivered_ok, 2),
                util::TablePrinter::Int(long(hier.false_pos)),
                util::TablePrinter::Num(hier.total_mb, 2)});
  table.Print();
  bench::BenchReport report(
      "hierarchy",
      "Enriching the subscription space (towards NewsML) lets one prefix "
      "subscription replace many per-topic ones (paper §7)");
  report.Note("255 subscribers, 8 sections x 16 topics; flat vs prefix");
  report.Measure("delivered_pct_flat", 100 * flat.delivered_ok, "%");
  report.Measure("delivered_pct_hier", 100 * hier.delivered_ok, "%");
  report.Measure("filter_bits_flat", flat.avg_bits_set);
  report.Measure("filter_bits_hier", hier.avg_bits_set);
  report.Measure("total_mb_flat", flat.total_mb, "MB");
  report.Measure("total_mb_hier", hier.total_mb, "MB");
  report.WriteFile();
  std::printf(
      "\nReading: both deliver the full section; the hierarchical scheme "
      "needs one subscription and one filter bit per section instead of "
      "16, so subscription state (and its gossip) shrinks by an order of "
      "magnitude while publications stamp one extra Bloom group per "
      "taxonomy level — the enriched subscription space of §7 at "
      "near-zero routing cost.\n");
  return 0;
}
