// E1 — The pull-model redundancy claim (paper §1).
//
// "a consumer who returns 4 times during a day receives about 70%
// redundant data. Consumers who return more frequently ... receive a much
// higher rate of redundant data."
//
// Workload: a Slashdot-like site publishing ~25 articles/day (Poisson),
// front page of 25 articles, simulated for 3 days. One client per
// (mode, polls/day) cell. Columns report total bytes pulled, the fraction
// that was redundant, and the mean staleness (age of an article when the
// client first sees it).
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/pull.h"
#include "bench_report.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace nw;
using baseline::PullClient;
using baseline::PullMode;
using baseline::PullServer;

namespace {

constexpr double kDay = 86400.0;
constexpr double kDays = 3.0;
constexpr double kArticlesPerDay = 25.0;
constexpr std::size_t kBodyBytes = 2048;
constexpr std::size_t kSummaryBytes = 96;

void ScheduleArrivals(sim::Simulator& sim, PullServer& server,
                      util::DeterministicRng& rng) {
  double t = 0;
  int n = 0;
  while (t < kDay * kDays) {
    t += rng.NextExponential(kDay / kArticlesPerDay);
    if (t >= kDay * kDays) break;
    sim.At(t, [&server, n] {
      server.AddArticle(kBodyBytes, kSummaryBytes,
                        "story" + std::to_string(n));
    });
    ++n;
  }
}

}  // namespace

int main() {
  std::printf(
      "E1: pull-model redundancy vs poll rate (paper claim: 4 pulls/day -> "
      "~70%% redundant on a full front page)\n"
      "workload: %.0f articles/day Poisson, %.0f-day run, front page 25, "
      "body %zu B, summary %zu B\n\n",
      kArticlesPerDay, kDays, kBodyBytes, kSummaryBytes);

  const std::vector<double> polls_per_day = {1, 2, 4, 8, 24, 96};
  const std::vector<PullMode> modes = {PullMode::kFullPage,
                                       PullMode::kRssSummary,
                                       PullMode::kDeltaSince};

  util::TablePrinter table({"mode", "polls/day", "MB pulled", "redundant%",
                            "staleness_mean_s", "articles_seen"});

  bench::BenchReport report(
      "pull_redundancy",
      "A consumer who returns 4 times during a day receives about 70% "
      "redundant data; more frequent consumers receive much more (paper §1)");
  report.Note("Slashdot-like workload: 25 articles/day Poisson, 3-day run, "
              "front page of 25, one client per (mode, polls/day) cell");

  for (PullMode mode : modes) {
    for (double rate : polls_per_day) {
      sim::Simulator sim(42);
      sim::NetworkConfig nc;
      nc.base_latency = 0.05;
      nc.jitter_frac = 0.1;
      sim::Network net(sim, nc);
      PullServer server(25);
      net.AddNode(&server);
      PullClient::Config cc;
      cc.server = server.id();
      cc.mode = mode;
      cc.poll_interval = kDay / rate;
      cc.start_offset = 120.0;
      PullClient client(cc);
      net.AddNode(&client);
      util::DeterministicRng workload_rng(7);
      ScheduleArrivals(sim, server, workload_rng);
      client.Start();
      sim.RunUntil(kDay * kDays);

      const auto& s = client.stats();
      const double redundant =
          s.bytes_received == 0
              ? 0.0
              : 100.0 * double(s.redundant_bytes) / double(s.bytes_received);
      table.AddRow({baseline::PullModeName(mode), util::TablePrinter::Num(rate, 0),
                    util::TablePrinter::Num(double(s.bytes_received) / 1e6, 2),
                    util::TablePrinter::Num(redundant, 1),
                    util::TablePrinter::Num(s.staleness.Mean(), 0),
                    util::TablePrinter::Int(long(s.new_articles))});
      report.Measure(std::string(baseline::PullModeName(mode)) +
                         "_redundant_pct_" + std::to_string(int(rate)) +
                         "_polls",
                     redundant, "%");
      if (mode == PullMode::kFullPage && rate == 4) {
        report.Samples("fullpage_4polls_staleness", s.staleness, "s");
      }
    }
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: full-page redundancy at 4 polls/day reproduces the ~70%% "
      "claim; RSS summaries shrink the redundant volume but keep the "
      "polling cost; delta-encoding removes redundancy entirely at the "
      "price of server state. Staleness falls only with poll rate — the "
      "pull model trades bandwidth for freshness (paper §1).\n");
  return 0;
}
