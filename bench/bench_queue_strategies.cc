// A1 (ablation) — Forwarding-queue fill strategies (paper §9: "The best
// strategy to fill queues is still under research. We are experimenting
// with weighted round-robin strategies, as well as some more aggressive
// techniques").
//
// A constrained forwarding plane carries a mix of routine items (urgency
// 8) and rare flash bulletins (urgency 1). We compare the §9 strategies
// by the latency each class experiences.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

struct Outcome {
  util::SampleStats flash;
  util::SampleStats routine;
  double delivered_pct = 0;
};

Outcome Run(multicast::QueueStrategy strategy) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 255;
  cfg.branching = 4;
  cfg.catalog_size = 1;
  cfg.subjects_per_subscriber = 1;
  cfg.body_bytes = 8192;
  cfg.multicast.queue_strategy = strategy;
  cfg.multicast.forward_bytes_per_sec = 150e3;  // tight budget -> queueing
  cfg.multicast.forward_burst_bytes = 150e3;
  cfg.multicast.max_queue_items = 4096;
  cfg.warm_start = true;
  cfg.run_gossip = false;
  cfg.subscriber.repair_interval = 0;
  cfg.seed = 3;
  newswire::NewswireSystem sys(cfg);

  Outcome out;
  // Per-subscriber handler classifies latency by urgency.
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    sys.subscriber(i).SetNewsHandler(
        [&out](const newswire::NewsItem& item, double latency) {
          if (item.urgency <= 2) {
            out.flash.Add(latency);
          } else {
            out.routine.Add(latency);
          }
        });
  }
  // 120 routine items over 12 s, one flash bulletin every 3 s.
  int published = 0;
  for (int k = 0; k < 120; ++k) {
    sys.deployment().sim().At(k * 0.1, [&sys, &published] {
      newswire::NewsItem item;
      item.subject = sys.catalog()[0];
      item.urgency = 8;
      if (sys.publisher(0).Publish(item)) ++published;
    });
  }
  for (int f = 0; f < 4; ++f) {
    sys.deployment().sim().At(2.0 + f * 3.0, [&sys, &published] {
      newswire::NewsItem item;
      item.subject = sys.catalog()[0];
      item.urgency = 1;
      if (sys.publisher(0).Publish(item)) ++published;
    });
  }
  sys.RunFor(240);
  out.delivered_pct =
      100.0 * double(out.flash.Count() + out.routine.Count()) /
      double(sys.subscriber_count() * published);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "A1 (ablation): queue-fill strategies under a congested forwarding "
      "plane — 120 routine items + 4 flash bulletins, 255 subscribers\n\n");
  util::TablePrinter table({"strategy", "flash_p50_s", "flash_p99_s",
                            "routine_p99_s", "delivered%"});
  bench::BenchReport report(
      "queue_strategies",
      "The best strategy to fill forwarding queues is still under research: "
      "weighted round-robin vs more aggressive techniques (paper §9)");
  report.Note("congested forwarding plane: 120 routine items + 4 flash "
              "bulletins, 255 subscribers");
  for (auto strategy : {multicast::QueueStrategy::kWeightedRoundRobin,
                        multicast::QueueStrategy::kRoundRobin,
                        multicast::QueueStrategy::kUrgencyFirst}) {
    Outcome out = Run(strategy);
    table.AddRow({multicast::QueueStrategyName(strategy),
                  util::TablePrinter::Num(out.flash.Percentile(50), 2),
                  util::TablePrinter::Num(out.flash.Percentile(99), 2),
                  util::TablePrinter::Num(out.routine.Percentile(99), 2),
                  util::TablePrinter::Num(out.delivered_pct, 1)});
    const std::string name = multicast::QueueStrategyName(strategy);
    report.Samples("flash_latency_" + name, out.flash, "s");
    report.Samples("routine_latency_" + name, out.routine, "s");
    report.Measure("delivered_pct_" + name, out.delivered_pct, "%");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: round-robin variants treat the flash bulletin like any "
      "queued item, so it inherits the congestion backlog; the aggressive "
      "urgency-first strategy lets bulletins overtake the backlog at every "
      "hop at a small cost to routine tail latency — the trade-off the "
      "paper leaves open in §9.\n");
  return 0;
}
