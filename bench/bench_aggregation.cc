// E18 — Incremental aggregation: dirty-tracked recomputation vs full
// re-evaluation at the paper's zone size ("say, 64" children, §3).
//
// Every gossip receipt and every gossip round ends in RecomputeAggregates,
// and the paper's sizing argument assumes that cost stays modest as zones
// fill out. A full recompute evaluates every installed SQL function over
// every level's table each time — at 64-row zone tables, almost always to
// reproduce the aggregate it computed moments ago, because between content
// changes gossip traffic is pure heartbeat (version/last_refresh churn).
// The incremental engine (DESIGN.md §11) keys a per-level memo on the
// input table's content epoch and skips levels whose content provably did
// not change; the memo must be behaviorally invisible (the equivalence
// suite asserts bit-identical runs), so the only thing left to measure is
// the work it avoids.
//
// Grid: engine {incremental, force-full} on a 128-agent deployment with
// branching 64 — two full 64-leaf zones, the paper's nominal zone size —
// measured over a 60 s steady-state window after convergence. The gate
// asserts the incremental engine performs at most 1/5 of the full
// engine's aggregate evaluations in steady state (EXPERIMENTS.md E18),
// and that both runs converge to the same replicated state.
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "astrolabe/agent.h"
#include "astrolabe/deployment.h"
#include "bench_report.h"
#include "testing/invariants.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr std::size_t kAgents = 128;
constexpr std::size_t kBranching = 64;  // the paper's nominal zone size
constexpr double kWarmupSeconds = 30;   // convergence + detector settle
constexpr double kMeasureSeconds = 60;
constexpr double kGatedRatio = 5.0;

struct RunResult {
  std::uint64_t recompute_calls = 0;  // during the measurement window
  std::uint64_t levels_evaluated = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t mib_hash = 0;  // replicated-state digest after the window
  // Wall-clock cost of one per-level recompute (ZoneSummary of the 64-row
  // leaf zone) in the post-window steady state: memo-served for the
  // incremental engine, a full evaluation when forced.
  util::SampleStats recompute_path;
};

RunResult Run(bool force_full) {
  astrolabe::DeploymentConfig cfg;
  cfg.num_agents = kAgents;
  cfg.branching = kBranching;
  cfg.gossip_period = 1.0;
  cfg.force_full_recompute = force_full;
  cfg.seed = 0xE18;
  cfg.sim_threads = 1;  // pin: this bench times nothing, but keep runs fixed
  astrolabe::Deployment dep(cfg);
  dep.StartAll();
  dep.RunFor(kWarmupSeconds);

  std::uint64_t calls0 = 0, evals0 = 0, hits0 = 0;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& st = dep.agent(i).agg_stats();
    calls0 += st.recompute_calls;
    evals0 += st.levels_evaluated;
    hits0 += st.cache_hits;
  }
  dep.RunFor(kMeasureSeconds);

  RunResult out;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const auto& st = dep.agent(i).agg_stats();
    out.recompute_calls += st.recompute_calls;
    out.levels_evaluated += st.levels_evaluated;
    out.cache_hits += st.cache_hits;
  }
  out.recompute_calls -= calls0;
  out.levels_evaluated -= evals0;
  out.cache_hits -= hits0;
  out.mib_hash = testing::MibContentHash(dep);

  // Time the per-level recompute path itself, post-window (steady state, no
  // further content changes): ZoneSummary(Depth - 1) is exactly what
  // RecomputeAggregates runs per level — served from the memo in the
  // incremental engine, a full SQL pass over the 64-row table when forced.
  for (std::size_t i = 0; i < dep.size(); ++i) {
    astrolabe::Agent& agent = dep.agent(i);
    const std::size_t level = agent.Depth() - 1;
    for (int rep = 0; rep < 16; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto row = agent.ZoneSummary(level);
      const auto t1 = std::chrono::steady_clock::now();
      if (row.empty()) std::printf("unexpected empty summary\n");
      out.recompute_path.Add(std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E18: incremental aggregation — dirty-tracked recomputation vs full "
      "re-evaluation\n(%zu agents, branching %zu: two full %zu-leaf zones; "
      "%.0fs steady-state window after %.0fs warmup; every recompute either "
      "evaluates a level's functions or serves the content-epoch memo)\n\n",
      kAgents, kBranching, kBranching, kMeasureSeconds, kWarmupSeconds);
  bench::BenchReport report(
      "aggregation",
      "Dirty-tracked incremental recomputation with compiled query plans "
      "cuts steady-state aggregate evaluation work by >=5x at the paper's "
      "nominal 64-child zone size, while remaining behaviorally invisible "
      "(bit-identical replicated state)");
  report.Note(
      "evals = levels actually re-evaluated during the measurement window, "
      "summed over all agents; memo_hits = levels served from the "
      "content-epoch memo. Steady-state gossip is heartbeat-dominated, so "
      "the full engine's evaluations are almost all redundant by "
      "construction — the equivalence suite (tests/aggregation_cache_test) "
      "proves the skipped work was unobservable");

  const RunResult incremental = Run(false);
  const RunResult full = Run(true);

  util::TablePrinter table({"engine", "recomputes", "evals", "memo hits",
                            "evals/recompute", "path p50 us"});
  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"incremental", incremental},
        {"force-full", full}}) {
    table.AddRow({name, util::TablePrinter::Int(long(r.recompute_calls)),
                  util::TablePrinter::Int(long(r.levels_evaluated)),
                  util::TablePrinter::Int(long(r.cache_hits)),
                  util::TablePrinter::Num(
                      r.recompute_calls
                          ? double(r.levels_evaluated) / double(r.recompute_calls)
                          : 0.0,
                      4),
                  util::TablePrinter::Num(
                      r.recompute_path.Percentile(50) * 1e6, 2)});
    const std::string tag = name;
    report.Measure("recompute_calls_" + tag, double(r.recompute_calls));
    report.Measure("agg_evals_" + tag, double(r.levels_evaluated));
    report.Measure("memo_hits_" + tag, double(r.cache_hits));
    report.Samples("recompute_path_seconds_" + tag, r.recompute_path, "s");
  }
  table.Print();

  // p50 wall-clock speedup of one per-level recompute: memo-served vs a
  // full evaluation. Informational (wall time is host-dependent); the gate
  // below is on counted evaluation work.
  const double inc_p50 = incremental.recompute_path.Percentile(50);
  const double recompute_p50_speedup =
      inc_p50 > 0 ? full.recompute_path.Percentile(50) / inc_p50 : 0.0;
  report.Measure("recompute_p50_speedup", recompute_p50_speedup);

  const double ratio =
      incremental.levels_evaluated > 0
          ? double(full.levels_evaluated) / double(incremental.levels_evaluated)
          : double(full.levels_evaluated);
  report.Measure("eval_work_ratio_full_over_incremental", ratio);
  report.Measure("states_identical",
                 incremental.mib_hash == full.mib_hash ? 1.0 : 0.0);
  report.WriteFile();

  std::printf(
      "\nReading: in steady state the zone tables' content epochs only move "
      "when an attribute actually changes, and heartbeat traffic (the bulk "
      "of gossip after convergence) leaves them untouched — so the memo "
      "serves nearly every recompute and the eval-work ratio lands around "
      "%.1fx. The force-full column is the legacy cost: one full SQL pass "
      "over a %zu-row table per installed function, per level, per gossip "
      "event.\n",
      ratio, kBranching);

  const bool ok = full.levels_evaluated > 0 && ratio >= kGatedRatio &&
                  incremental.mib_hash == full.mib_hash;
  if (!ok) {
    std::printf(
        "GATE FAILED: want eval-work ratio >= %.1fx (got %.2fx over full=%llu "
        "incremental=%llu) with identical replicated state (hashes %016llx "
        "vs %016llx)\n",
        kGatedRatio, ratio, (unsigned long long)full.levels_evaluated,
        (unsigned long long)incremental.levels_evaluated,
        (unsigned long long)incremental.mib_hash,
        (unsigned long long)full.mib_hash);
  }
  return ok ? 0 : 1;
}
