// E4 — Subscription propagation to the root (paper §6: "Eventually
// (within tens of seconds) the root zone will have all the information on
// whether there are leaf nodes ... that have subscribed to particular
// publications").
//
// A converged system gets one new subscription at a random leaf; we
// measure how long until an observer agent in a *different* top-level
// zone sees the subscription's bit in its aggregated root-table filters
// (which is exactly the state a forwarding decision consults).
#include <cstdio>
#include <memory>
#include <vector>

#include "astrolabe/deployment.h"
#include "bench_report.h"
#include "multicast/multicast.h"
#include "pubsub/pubsub.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace nw;
using astrolabe::Deployment;
using astrolabe::DeploymentConfig;

namespace {

// Time until `observer`'s root table shows `bit` set for the subscriber's
// top-level zone, polling every 0.25 s up to `limit` seconds.
double MeasureConvergence(Deployment& dep, std::size_t subscriber_idx,
                          std::size_t observer_idx, std::size_t bit,
                          double limit) {
  const std::string target_zone = dep.PathFor(subscriber_idx).Component(0);
  const double start = dep.sim().Now();
  while (dep.sim().Now() - start < limit) {
    dep.RunFor(0.25);
    const auto* row = dep.agent(observer_idx).TableAt(0).Find(target_zone);
    if (row == nullptr) continue;
    auto it = row->attrs.find(pubsub::kAttrSubs);
    if (it == row->attrs.end() ||
        it->second.type() != astrolabe::AttrValue::Type::kBits) {
      continue;
    }
    const auto& bits = it->second.AsBits();
    if (bit < bits.size() && bits.Test(bit)) {
      return dep.sim().Now() - start;
    }
  }
  return -1;
}

}  // namespace

int main() {
  std::printf(
      "E4: time for a new subscription to reach the root aggregation, as "
      "seen from a different top-level zone (gossip period 2s)\n\n");
  util::TablePrinter table({"agents", "branching", "depth", "trials",
                            "mean_s", "min_s", "max_s"});
  bench::BenchReport report(
      "subscription_convergence",
      "Within tens of seconds the root zone has all the information on "
      "whether there are leaf nodes that subscribed to particular "
      "publications (paper §6)");
  report.Note("one new subscription at a random leaf; convergence observed "
              "from a different top-level zone; gossip period 2s");
  for (auto [n, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {64, 4}, {256, 8}, {1024, 16}, {1024, 8}}) {
    DeploymentConfig cfg;
    cfg.num_agents = n;
    cfg.branching = b;
    cfg.gossip_period = 2.0;
    cfg.seed = 17;
    Deployment dep(cfg);
    dep.InstallFunctionEverywhere(pubsub::kSubsFunctionName,
                                  pubsub::SubsFunctionCode());
    std::vector<std::unique_ptr<multicast::MulticastService>> mc;
    std::vector<std::unique_ptr<pubsub::PubSubService>> ps;
    for (std::size_t i = 0; i < dep.size(); ++i) {
      mc.push_back(std::make_unique<multicast::MulticastService>(
          dep.agent(i), multicast::MulticastConfig{}));
      ps.push_back(std::make_unique<pubsub::PubSubService>(
          dep.agent(i), *mc[i], pubsub::BloomConfig{}));
    }
    dep.StartAll();
    dep.RunFor(60);  // membership convergence

    util::SampleStats times;
    const int kTrials = 5;
    pubsub::BloomFilter probe(pubsub::BloomConfig{});
    for (int t = 0; t < kTrials; ++t) {
      // Subscriber in the first top-level zone, observer in the last.
      const std::size_t subscriber = std::size_t(t);
      const std::size_t observer = dep.size() - 1 - std::size_t(t);
      const std::string subject = "probe.subject." + std::to_string(t);
      const std::size_t bit = probe.Positions(subject)[0];
      ps[subscriber]->Subscribe(subject);
      const double took =
          MeasureConvergence(dep, subscriber, observer, bit, 120);
      if (took >= 0) times.Add(took);
    }
    table.AddRow({util::TablePrinter::Int(long(n)),
                  util::TablePrinter::Int(long(b)),
                  util::TablePrinter::Int(long(dep.Depth())),
                  util::TablePrinter::Int(long(times.Count())),
                  util::TablePrinter::Num(times.Mean(), 1),
                  util::TablePrinter::Num(times.Min(), 1),
                  util::TablePrinter::Num(times.Max(), 1)});
    report.Samples("convergence_" + std::to_string(n) + "agents_b" +
                       std::to_string(b),
                   times, "s");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: a new subscription climbs one aggregation level per few "
      "gossip rounds, landing in the 'tens of seconds' the paper promises; "
      "deeper hierarchies take proportionally longer (depth x O(rounds)), "
      "independent of total system size.\n");
  return 0;
}
