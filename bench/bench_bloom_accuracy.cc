// E5 — Bloom filter accuracy vs array size (paper §6: "the accuracy can
// be made as good as desired by varying the size of the bit array, and we
// believe that a relatively small array will be more than adequate" —
// suggesting ~1000 bits).
//
// Part 1 measures the false-positive probability of the aggregated
// (root-level) filter directly, for varying array sizes and subscription
// populations, with the paper's one-bit-per-subscription scheme and with
// k=4 hashes for comparison.
//
// Part 2 runs a small NewsWire system and counts the wasted forwarding
// caused by collisions (items that reach leaves nobody subscribed to).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "pubsub/bloom_filter.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

double MeasureFalsePositiveRate(std::size_t bits, std::size_t hashes,
                                std::size_t subscriptions) {
  pubsub::BloomConfig cfg;
  cfg.bits = bits;
  cfg.hashes = hashes;
  pubsub::BloomFilter filter(cfg);
  for (std::size_t s = 0; s < subscriptions; ++s) {
    filter.Add("subscribed.subject." + std::to_string(s));
  }
  const int kProbes = 20000;
  int fp = 0;
  for (int p = 0; p < kProbes; ++p) {
    if (filter.MightContain("unrelated.subject." + std::to_string(p))) ++fp;
  }
  return double(fp) / kProbes;
}

}  // namespace

int main() {
  std::printf(
      "E5 part 1: false-positive probability of the aggregated "
      "subscription filter\n\n");
  util::TablePrinter t1({"bits", "distinct_subs", "fp%_k1(paper)", "fp%_k4"});
  bench::BenchReport report(
      "bloom_accuracy",
      "Filter accuracy can be made as good as desired by varying the bit "
      "array size; a relatively small (~1000-bit) array is more than "
      "adequate (paper §6)");
  report.Note("part 1: direct fp probability; part 2: wasted forwarding in "
              "a 512-subscriber system publishing 100 unpopular probes");
  for (std::size_t bits : {256u, 1024u, 4096u, 16384u}) {
    for (std::size_t subs : {50u, 200u, 1000u}) {
      const double fp_k1 = MeasureFalsePositiveRate(bits, 1, subs);
      const double fp_k4 = MeasureFalsePositiveRate(bits, 4, subs);
      t1.AddRow({util::TablePrinter::Int(long(bits)),
                 util::TablePrinter::Int(long(subs)),
                 util::TablePrinter::Num(100 * fp_k1, 2),
                 util::TablePrinter::Num(100 * fp_k4, 2)});
      if (subs == 200) {
        const std::string suffix = std::to_string(bits) + "bits_200subs";
        report.Measure("fp_pct_k1_" + suffix, 100 * fp_k1, "%");
        report.Measure("fp_pct_k4_" + suffix, 100 * fp_k4, "%");
      }
    }
  }
  t1.Print();

  std::printf(
      "\nE5 part 2: wasted forwarding in a live system (512 subscribers, "
      "200-subject catalog, publishing 100 unpopular probes)\n\n");
  util::TablePrinter t2({"bits", "forwards", "wasted_arrivals",
                         "wasted_forward%"});
  for (std::size_t bits : {64u, 256u, 1024u, 4096u}) {
    newswire::SystemConfig cfg;
    cfg.num_subscribers = 512;
    cfg.branching = 8;
    cfg.bloom.bits = bits;
    cfg.catalog_size = 200;
    cfg.subjects_per_subscriber = 4;
    cfg.warm_start = true;
    cfg.run_gossip = false;
    cfg.subscriber.repair_interval = 0;
    cfg.seed = 23;
    newswire::NewswireSystem sys(cfg);
    // Publish probe subjects NOBODY subscribes to: all traffic they cause
    // is false-positive waste.
    for (int k = 0; k < 100; ++k) {
      sys.deployment().sim().At(k * 0.1, [&sys, k] {
        newswire::NewsItem item;
        item.subject = "noone.reads." + std::to_string(k);
        item.body_bytes = 1024;
        sys.publisher(0).Publish(item);
      });
    }
    sys.RunFor(60);
    std::uint64_t forwards = 0, fp = 0;
    for (std::size_t i = 0; i < sys.node_count(); ++i) {
      forwards += sys.multicast_at(i).stats().forwards;
      fp += sys.pubsub_at(i).stats().false_positives +
            sys.pubsub_at(i).stats().relay_discards;
    }
    // Every forward of these probes is waste; normalize per publication
    // against a full broadcast (which would be ~N forwards each).
    const double wasted =
        100.0 * double(forwards) / double(100 * sys.node_count());
    t2.AddRow({util::TablePrinter::Int(long(bits)),
               util::TablePrinter::Int(long(forwards)),
               util::TablePrinter::Int(long(fp)),
               util::TablePrinter::Num(wasted, 2)});
    report.Measure("wasted_forward_pct_" + std::to_string(bits) + "bits",
                   wasted, "%");
  }
  t2.Print();
  report.WriteFile();
  std::printf(
      "\nReading: with the paper's ~1000-bit array and a news-scale subject "
      "population, collision-driven waste is a small percent of a "
      "broadcast; shrinking the array degrades sharply, enlarging it buys "
      "accuracy linearly in MIB bytes (paper §6).\n");
  return 0;
}
