// E6 — Robustness to node failures (paper §1/§2: the infrastructure
// "guarantees delivery even in the face of publisher overload or denial
// of service attacks"; §9: multiple representatives forward each item "to
// increase the robustness of the delivery").
//
// A 256-subscriber system publishes a stream of items while a fraction f
// of the nodes is killed mid-stream. We sweep f and the forwarding
// redundancy k, with and without the cache anti-entropy repair, and
// report delivery completeness to the *surviving* subscribers.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

struct Outcome {
  double delivered_pct = 0;
  double repaired = 0;
};

Outcome Run(double kill_frac, int redundancy, bool repair) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 256;
  cfg.branching = 8;
  cfg.catalog_size = 4;
  cfg.subjects_per_subscriber = 2;
  cfg.multicast.redundancy = redundancy;
  cfg.subscriber.repair_interval = repair ? 5.0 : 0.0;
  cfg.subscriber.repair_window = 600.0;
  cfg.warm_start = true;
  cfg.run_gossip = true;  // re-election repairs routing after the kills
  cfg.seed = 31;
  newswire::NewswireSystem sys(cfg);
  sys.RunFor(10);

  // Publish 30 items over 30 seconds; kill nodes at t=15.
  std::vector<std::pair<std::string, std::string>> published;
  for (int k = 0; k < 30; ++k) {
    sys.deployment().sim().At(sys.Now() + k * 1.0, [&sys, &published] {
      const std::string subject = sys.RandomSubject();
      const std::string id = sys.PublishArticle(0, subject);
      if (!id.empty()) published.emplace_back(id, subject);
    });
  }
  util::DeterministicRng kill_rng(99);
  std::vector<std::size_t> victims;
  sys.deployment().sim().At(sys.Now() + 15.0, [&] {
    const std::size_t kills =
        std::size_t(kill_frac * double(sys.subscriber_count()));
    while (victims.size() < kills) {
      const std::size_t i = std::size_t(
          kill_rng.NextBelow(sys.subscriber_count()));
      if (std::find(victims.begin(), victims.end(), i) == victims.end()) {
        victims.push_back(i);
        sys.deployment().net().Kill(sys.subscriber_agent(i).id());
      }
    }
  });
  sys.RunFor(150);  // stream + repair time

  // Completeness over surviving subscribers only.
  std::size_t got = 0, expected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (!sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
      continue;
    }
    const auto& subjects = sys.SubjectsOf(i);
    for (const auto& [id, subject] : published) {
      if (std::find(subjects.begin(), subjects.end(), subject) ==
          subjects.end()) {
        continue;
      }
      ++expected;
      if (sys.subscriber(i).cache().Contains(id)) ++got;
    }
  }
  Outcome out;
  out.delivered_pct = expected ? 100.0 * double(got) / double(expected) : 100;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    out.repaired += double(sys.subscriber(i).stats().repaired);
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E6: delivery completeness to surviving subscribers when a fraction "
      "of nodes crashes mid-stream (256 subscribers, 30 items)\n\n");
  util::TablePrinter table({"kill_frac", "redundancy_k", "repair",
                            "delivered%", "items_repaired"});
  bench::BenchReport report(
      "robustness",
      "Multiple representatives forward each item to increase delivery "
      "robustness; the infrastructure guarantees delivery despite failures "
      "(paper §1/§2/§9)");
  report.Note("256 subscribers, 30 items; fraction f crashes mid-stream; "
              "completeness measured over surviving subscribers");
  for (double f : {0.0, 0.1, 0.2, 0.3}) {
    const std::string fkey = std::to_string(int(100 * f)) + "pct_killed";
    for (int k : {1, 2, 3}) {
      // Raw multicast robustness.
      Outcome raw = Run(f, k, false);
      table.AddRow({util::TablePrinter::Num(f, 2), util::TablePrinter::Int(k),
                    "off", util::TablePrinter::Num(raw.delivered_pct, 2),
                    util::TablePrinter::Int(long(raw.repaired))});
      report.Measure("delivered_pct_k" + std::to_string(k) + "_" + fkey,
                     raw.delivered_pct, "%");
    }
    // End-to-end with the §9 cache repair, at k=1 (worst case).
    Outcome fixed = Run(f, 1, true);
    table.AddRow({util::TablePrinter::Num(f, 2), util::TablePrinter::Int(1),
                  "on", util::TablePrinter::Num(fixed.delivered_pct, 2),
                  util::TablePrinter::Int(long(fixed.repaired))});
    report.Measure("delivered_pct_k1_repair_" + fkey, fixed.delivered_pct,
                   "%");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: redundancy k>=2 keeps raw dissemination near-complete "
      "through heavy failures (a zone is cut only if all k representatives "
      "die simultaneously), and the §9 cache anti-entropy closes the "
      "remaining gap even at k=1 — the end-to-end guarantee the paper "
      "claims.\n");
  return 0;
}
