// E16 — Parallel simulation engine: scaling and golden-trace equivalence.
//
// DESIGN.md §9: the sharded conservative-window engine must (a) reproduce
// the 1-thread run bit for bit — same EventTracer sequence hash, same MIB
// content hash, same delivery trace — and (b) actually buy wall-clock
// speedup on a workload big enough to amortize the window barriers. This
// harness runs a 256-node NewsWire deployment under a compound fault plan
// (zone partition + crashes + a loss burst) at 1 and 4 simulator threads
// and exit-code-gates both properties:
//
//   * trace-hash equality between the 1-thread and 4-thread runs is ALWAYS
//     enforced — a divergence means the parallel engine corrupted the
//     simulation, regardless of hardware;
//   * the >= 3x speedup gate applies only when the host actually has >= 4
//     hardware threads; on smaller machines it is waived and reported as
//     such in BENCH_sim_scale.json (speedup_gate_waived = 1).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "testing/invariants.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr double kWarmupSeconds = 10;
constexpr double kPublishSeconds = 30;
constexpr double kSettleSeconds = 90;
constexpr double kRequiredSpeedup = 3.0;

// Compound plan over the 256-node tree (numbered in the 32-node scheme
// scaled up: branching 4, nodes 0..255): one second-level zone partitions
// away, two unrelated nodes crash and restart, and a loss burst strains
// the repair layer.
constexpr const char* kPlan =
    "partition@8 groups=64,65,66,67,68,69,70,71; heal@24; "
    "crash@5 node=130; crash@9 node=200; restart@28 node=130; "
    "restart@30 node=200; loss@12..20 p=0.15";

struct RunResult {
  unsigned threads = 1;
  double wall_seconds = 0;
  std::uint64_t event_hash = 0;     // EventTracer::SequenceHash
  std::uint64_t delivery_hash = 0;  // DeliveryRecorder::TraceHash
  std::uint64_t mib_hash = 0;       // replicated-state content hash
  std::uint64_t delivered = 0;
};

RunResult Run(unsigned threads) {
  obs::EventTracer tracer(1 << 18);
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 255;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 8;
  cfg.subjects_per_subscriber = 3;
  cfg.gossip_period = 1.0;
  cfg.multicast.redundancy = 2;
  cfg.subscriber.repair_interval = 10.0;
  cfg.subscriber.repair_window = 3600.0;
  cfg.seed = 0xE16;
  cfg.sim_threads = threads;
  cfg.tracer = &tracer;
  newswire::NewswireSystem sys(cfg);
  testing::DeliveryRecorder recorder(sys);

  const auto start = std::chrono::steady_clock::now();
  sys.RunFor(kWarmupSeconds);
  const double base = sys.Now();
  auto plan = sim::FaultPlan::Parse(kPlan);
  if (!plan) {
    std::fprintf(stderr, "bench_sim_scale: bad fault plan\n");
    std::exit(2);
  }
  plan->ApplyTo(sys.deployment().net(), base);
  for (int k = 0; k < int(kPublishSeconds); ++k) {
    sys.deployment().sim().At(base + k, [&sys, k] {
      sys.PublishArticle(0, sys.catalog()[std::size_t(k) % 8]);
    });
  }
  sys.RunFor(kPublishSeconds + kSettleSeconds);
  const auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.threads = threads;
  r.wall_seconds = std::chrono::duration<double>(stop - start).count();
  r.event_hash = tracer.SequenceHash();
  r.delivery_hash = recorder.TraceHash();
  r.mib_hash = testing::MibContentHash(sys.deployment());
  r.delivered = sys.total_delivered();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E16: parallel engine scaling, 256-node tree, plan \"%s\"\n\n", kPlan);

  const RunResult seq = Run(1);
  const RunResult par = Run(4);

  const bool hashes_equal = seq.event_hash == par.event_hash &&
                            seq.delivery_hash == par.delivery_hash &&
                            seq.mib_hash == par.mib_hash &&
                            seq.delivered == par.delivered;
  const double speedup =
      par.wall_seconds > 0 ? seq.wall_seconds / par.wall_seconds : 0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool speedup_gate_waived = hw < 4;
  const bool speedup_ok = speedup >= kRequiredSpeedup;

  util::TablePrinter table({"threads", "wall_s", "delivered", "event_hash"});
  for (const RunResult* r : {&seq, &par}) {
    char wall[32], hash[32];
    std::snprintf(wall, sizeof wall, "%.2f", r->wall_seconds);
    std::snprintf(hash, sizeof hash, "%016llx",
                  (unsigned long long)r->event_hash);
    table.AddRow({std::to_string(r->threads), wall,
                  std::to_string(r->delivered), hash});
  }
  table.Print();
  std::printf("\nspeedup(4/1): %.2fx  (hardware threads: %u)\n", speedup, hw);
  std::printf("trace equivalence: %s\n", hashes_equal ? "IDENTICAL" : "DIVERGED");
  if (speedup_gate_waived) {
    std::printf("speedup gate: WAIVED (host has %u < 4 hardware threads)\n",
                hw);
  } else {
    std::printf("speedup gate (>= %.1fx): %s\n", kRequiredSpeedup,
                speedup_ok ? "PASS" : "FAIL");
  }

  bench::BenchReport report(
      "sim_scale",
      "DESIGN.md §9: the sharded conservative-window engine is bit-identical "
      "to the sequential engine for any fault plan and seed, and scales the "
      "simulation across cores");
  report.Measure("nodes", 256, "count");
  report.Measure("wall_seconds_1_thread", seq.wall_seconds, "s");
  report.Measure("wall_seconds_4_threads", par.wall_seconds, "s");
  report.Measure("speedup_4_threads", speedup, "x");
  report.Measure("hardware_threads", hw, "count");
  report.Measure("trace_hashes_identical", hashes_equal ? 1 : 0, "bool");
  report.Measure("speedup_gate_waived", speedup_gate_waived ? 1 : 0, "bool");
  report.Measure("delivered", double(seq.delivered), "count");
  report.Note(std::string("Exit-code gates: trace-hash equality between the "
                          "1- and 4-thread runs is always enforced; the >= "
                          "3x speedup gate applies only on hosts with >= 4 "
                          "hardware threads and was ") +
              (speedup_gate_waived ? "waived on this host." : "enforced."));
  report.WriteFile();

  if (!hashes_equal) return 1;
  if (!speedup_gate_waived && !speedup_ok) return 1;
  return 0;
}
