// E17 — Gray-failure resilience: phi-accrual vs fixed-timeout detection
// with 30% of the population running slow.
//
// The paper (§4, §10) leans on Astrolabe's failure detection to keep the
// dissemination tree healthy, but a fixed k-round timeout conflates "slow"
// with "dead": a gray node that still answers — 8x late — gets its rows
// expired every few rounds, churning zone membership and representative
// elections while the node is, in fact, alive. The gray-failure layer
// replaces the fixed cutoff with a phi-accrual detector that learns
// each peer's observed
// gossip rhythm (DESIGN.md §10), plus a health score that steers
// representative election and hop failover away from gray nodes.
//
// Grid: detector {fixed, phi} on a 64-node tree with 30% of the
// subscribers gray (timers stretched 8x, inbound frames +50 ms) for the
// whole publishing phase. Nobody ever crashes, so every row expiry is by
// definition a false suspicion. The gates assert phi cuts false
// suspicions at least in half while delivery stays complete and p99
// first-delivery latency stays in the multicast/repair regime.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "astrolabe/agent.h"
#include "bench_report.h"
#include "newswire/system.h"
#include "sim/fault_plan.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr double kWarmupSeconds = 15;
constexpr double kMeasureSeconds = 60;
constexpr double kSettleSeconds = 120;
constexpr double kGrayFactor = 8;     // timer stretch on gray nodes
constexpr double kGrayDelay = 0.05;   // inbound processing delay, seconds
constexpr double kRepairInterval = 10;
// p99 budget: a gray leaf's first copy may ride one or two repair rounds
// (20 s period) after capped-backoff retransmissions give up on it, but a
// healthy detector must not let latency drift into fixed-expiry churn
// territory beyond that.
constexpr double kP99Budget = 45;

struct RunResult {
  double eventual_frac = 0;       // (sub, item) pairs delivered at all
  double p99_latency = 0;         // first-delivery latency across pairs
  std::uint64_t false_suspicions = 0;  // row expiries; nobody ever dies
  std::uint64_t quarantines = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t failovers = 0;
};

RunResult Run(astrolabe::DetectorMode detector) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 63;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 8;
  cfg.subjects_per_subscriber = 3;
  cfg.gossip_period = 1.0;
  cfg.multicast.redundancy = 1;
  cfg.multicast.reliable.enabled = true;
  cfg.subscriber.repair_interval = kRepairInterval;
  cfg.subscriber.repair_window = 3600.0;
  cfg.detector = detector;
  cfg.seed = 0xE17;
  newswire::NewswireSystem sys(cfg);

  // First-delivery latency per (subscriber, item) pair.
  std::map<std::pair<std::size_t, std::string>, double> first;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    sys.subscriber(i).AddNewsHandler(
        [&first, i](const newswire::NewsItem& item, double latency) {
          auto [it, inserted] = first.try_emplace({i, item.Id()}, latency);
          if (!inserted) it->second = std::min(it->second, latency);
        });
  }
  sys.RunFor(kWarmupSeconds);
  const double t0 = sys.Now();

  // 30% gray: every subscriber with index % 10 in {0,1,2} runs slow for
  // the whole publishing phase plus a short tail, then recovers. The
  // pattern is index-based (not random) so both grid cells stress the
  // same tree positions.
  sim::FaultPlan plan;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (i % 10 >= 3) continue;
    plan.GraySlow(0, kMeasureSeconds + 15, sys.subscriber_agent(i).id(),
                  kGrayFactor, kGrayDelay);
  }
  plan.ApplyTo(sys.deployment().net(), t0);

  std::vector<std::pair<std::string, std::string>> published;  // (id, subject)
  for (int k = 0; k < int(kMeasureSeconds); ++k) {
    sys.deployment().sim().At(t0 + k, [&sys, &published] {
      const std::string subject = sys.RandomSubject();
      const std::string id = sys.PublishArticle(0, subject);
      if (!id.empty()) published.emplace_back(id, subject);
    });
  }
  sys.RunFor(kMeasureSeconds + kSettleSeconds);

  std::size_t expected = 0, ever = 0;
  util::SampleStats latencies;
  for (const auto& [id, subject] : published) {
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      const auto& mine = sys.SubjectsOf(i);
      if (std::find(mine.begin(), mine.end(), subject) == mine.end()) continue;
      ++expected;
      auto it = first.find({i, id});
      if (it == first.end()) continue;
      ++ever;
      latencies.Add(it->second);
    }
  }

  RunResult out;
  out.eventual_frac = expected ? double(ever) / double(expected) : 1.0;
  out.p99_latency = latencies.Percentile(99);
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    out.false_suspicions +=
        sys.deployment().agent(i).gossip_stats().rows_expired;
  }
  const auto mc = sys.MulticastTotals();
  out.quarantines = mc.quarantines;
  out.retransmits = mc.retransmits;
  out.failovers = mc.failovers;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E17: gray-failure resilience — phi-accrual vs fixed-timeout row "
      "expiry\n(64 nodes, 30%% of subscribers gray: timers %.0fx slower, "
      "+%.0f ms inbound delay, for the whole %.0fs publishing phase; nobody "
      "crashes, so every row expiry is a false suspicion)\n\n",
      kGrayFactor, kGrayDelay * 1e3, kMeasureSeconds);
  bench::BenchReport report(
      "gray_failure",
      "Adaptive phi-accrual failure detection tolerates gray (slow but "
      "alive) nodes that a fixed gossip-round timeout repeatedly declares "
      "dead, halving false suspicions while delivery stays complete");
  report.Note("false_suspicions = astrolabe row expiries summed over all "
              "nodes; the gray plan stretches timers without killing "
              "anyone, so the true-positive count is zero by construction");

  util::TablePrinter table({"detector", "eventual", "p99 s", "false susp",
                            "quarantine", "retx", "failover"});
  const RunResult fixed = Run(astrolabe::DetectorMode::kFixed);
  const RunResult phi = Run(astrolabe::DetectorMode::kPhiAccrual);
  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"fixed", fixed},
        {"phi", phi}}) {
    table.AddRow({name, util::TablePrinter::Num(r.eventual_frac, 4),
                  util::TablePrinter::Num(r.p99_latency, 2),
                  util::TablePrinter::Int(long(r.false_suspicions)),
                  util::TablePrinter::Int(long(r.quarantines)),
                  util::TablePrinter::Int(long(r.retransmits)),
                  util::TablePrinter::Int(long(r.failovers))});
    const std::string tag = name;
    report.Measure("eventual_frac_" + tag, r.eventual_frac);
    report.Measure("p99_latency_" + tag, r.p99_latency, "s");
    report.Measure("false_suspicions_" + tag, double(r.false_suspicions));
    report.Measure("quarantines_" + tag, double(r.quarantines));
  }
  table.Print();

  const double ratio = phi.false_suspicions > 0
                           ? double(fixed.false_suspicions) /
                                 double(phi.false_suspicions)
                           : double(fixed.false_suspicions);
  report.Measure("false_suspicion_ratio_fixed_over_phi", ratio);
  report.WriteFile();

  std::printf(
      "\nReading: the fixed 6-round timeout expires a gray node's rows in "
      "every silence longer than 6 s, and at %.0fx stretch the node's "
      "real gossip period sits well past that — so its membership flaps "
      "for the whole gray window. The phi detector learns the stretched "
      "rhythm within a few samples and stops suspecting; gray nodes stay "
      "in their zones, and the multicast layer routes around their "
      "slowness with retransmission, failover, and health-aware election "
      "instead of repeated eviction.\n",
      kGrayFactor);

  // Phi must keep delivery complete and fast; the fixed detector is the
  // legacy being measured, so it only gets a repair-layer floor (its
  // depressed eventual fraction and repair-regime p99 are the finding,
  // not a regression).
  const bool ok = fixed.false_suspicions > 0 &&
                  phi.false_suspicions * 2 <= fixed.false_suspicions &&
                  phi.eventual_frac >= 0.999 &&
                  fixed.eventual_frac >= 0.99 &&
                  phi.p99_latency <= kP99Budget;
  if (!ok) {
    std::printf(
        "GATE FAILED: want fixed false suspicions > 0 (got %llu), phi at "
        "most half of fixed (got %llu), eventual phi>=0.999 (got %.4f) and "
        "fixed>=0.99 (got %.4f), phi p99<=%.0fs (got %.2f)\n",
        (unsigned long long)fixed.false_suspicions,
        (unsigned long long)phi.false_suspicions, phi.eventual_frac,
        fixed.eventual_frac, kP99Budget, phi.p99_latency);
  }
  return ok ? 0 : 1;
}
