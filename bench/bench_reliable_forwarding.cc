// E15 — Reliable hop-by-hop forwarding vs fire-and-forget under churn.
//
// The paper (§9, §10) argues the dissemination tree must keep delivering
// while "machines crash and recover continuously". PR 6 adds a reliable
// relay discipline: every downward hop is acknowledged, timed out,
// retransmitted with backoff, and failed over to an alternate
// representative of the same child zone. This harness measures what that
// buys over the legacy fire-and-forget relay when both run above the same
// anti-entropy repair layer.
//
// Grid: churn {0, 5}% x relay mode {reliable, fire-and-forget} on a
// 64-node tree. Each cell streams one article per second for 60 s while
// the churn engine holds ~churn% of the population down at any instant
// (kills spread one per second, each victim down 3 s). A delivery counts
// as "prompt" when its first copy arrives within kPromptSeconds — well
// inside the 20 s repair period, so prompt deliveries are the multicast
// layer's own work, and anything later rode the repair train.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr double kWarmupSeconds = 15;
constexpr double kMeasureSeconds = 60;
constexpr double kSettleSeconds = 90;
constexpr double kDownSeconds = 3;
constexpr double kRepairInterval = 20;
// Budget for the multicast layer to deliver on its own — half a repair
// period: covers the 3 s churn downtime plus capped-backoff (2 s)
// retransmissions across a couple of consecutive failed hops, but none of
// the 20 s-period repair rounds.
constexpr double kPromptSeconds = 10;

struct RunResult {
  double prompt_frac = 0;     // (sub, item) pairs first delivered promptly
  double eventual_frac = 0;   // pairs delivered at all (repair included)
  double p99_latency = 0;     // first-delivery latency across pairs
  std::uint64_t retransmits = 0;
  std::uint64_t failovers = 0;
};

RunResult Run(double churn_pct, bool reliable) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 63;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 8;
  cfg.subjects_per_subscriber = 3;
  cfg.gossip_period = 1.0;
  cfg.multicast.redundancy = 1;  // isolate the relay discipline
  cfg.multicast.reliable.enabled = reliable;
  cfg.subscriber.repair_interval = kRepairInterval;
  cfg.subscriber.repair_window = 3600.0;
  cfg.seed = 0xE15;
  newswire::NewswireSystem sys(cfg);

  // First-delivery latency per (subscriber, item) pair.
  std::map<std::pair<std::size_t, std::string>, double> first;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    sys.subscriber(i).AddNewsHandler(
        [&first, i](const newswire::NewsItem& item, double latency) {
          auto [it, inserted] = first.try_emplace({i, item.Id()}, latency);
          if (!inserted) it->second = std::min(it->second, latency);
        });
  }
  sys.RunFor(kWarmupSeconds);

  // Churn engine (as in E14): each second kill `victims` live subscribers;
  // each stays down kDownSeconds, short of the 6 s membership fail-timeout.
  // Sized so ~churn_pct% of the population is dead at any instant:
  // victims/s * downtime = churn_pct% * nodes.
  const std::size_t victims = std::size_t(
      churn_pct / 100.0 * double(sys.node_count()) / kDownSeconds + 0.5);
  util::DeterministicRng churn_rng(cfg.seed ^ 0xC0FFEE);
  auto& net = sys.deployment().net();
  std::deque<std::pair<double, sim::NodeId>> down;
  const double t0 = sys.Now();
  if (victims > 0) {
    for (int k = 0; k < int(kMeasureSeconds); ++k) {
      sys.deployment().sim().At(t0 + k, [&] {
        while (!down.empty() && down.front().first <= sys.Now()) {
          net.Restart(down.front().second);
          down.pop_front();
        }
        for (std::size_t v = 0; v < victims; ++v) {
          const std::size_t i =
              std::size_t(churn_rng.NextBelow(sys.subscriber_count()));
          const sim::NodeId id = sys.subscriber_agent(i).id();
          if (!net.IsAlive(id)) continue;
          net.Kill(id);
          down.emplace_back(sys.Now() + kDownSeconds, id);
        }
      });
    }
    // Final drain: victims of the last ticks must come back too, or they
    // would sit dead through the whole settle phase.
    sys.deployment().sim().At(t0 + kMeasureSeconds + kDownSeconds, [&] {
      while (!down.empty()) {
        net.Restart(down.front().second);
        down.pop_front();
      }
    });
  }

  std::vector<std::pair<std::string, std::string>> published;  // (id, subject)
  for (int k = 0; k < int(kMeasureSeconds); ++k) {
    sys.deployment().sim().At(t0 + k, [&sys, &published] {
      const std::string subject = sys.RandomSubject();
      const std::string id = sys.PublishArticle(0, subject);
      if (!id.empty()) published.emplace_back(id, subject);
    });
  }
  sys.RunFor(kMeasureSeconds + kSettleSeconds);

  // Expected pairs: every subscriber of the item's subject, whether or not
  // it was down when the item streamed — the churn engine restarts
  // everyone, so everything is eventually owed.
  std::size_t expected = 0, prompt = 0, ever = 0;
  util::SampleStats latencies;
  for (const auto& [id, subject] : published) {
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      const auto& mine = sys.SubjectsOf(i);
      if (std::find(mine.begin(), mine.end(), subject) == mine.end()) continue;
      ++expected;
      auto it = first.find({i, id});
      if (it == first.end()) continue;
      ++ever;
      latencies.Add(it->second);
      if (it->second <= kPromptSeconds) ++prompt;
    }
  }

  const auto mc = sys.MulticastTotals();
  RunResult out;
  out.prompt_frac = expected ? double(prompt) / double(expected) : 1.0;
  out.eventual_frac = expected ? double(ever) / double(expected) : 1.0;
  out.p99_latency = latencies.Percentile(99);
  out.retransmits = mc.retransmits;
  out.failovers = mc.failovers;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E15: reliable hop-by-hop forwarding vs fire-and-forget relays\n"
      "(64 nodes, redundancy 1, repair every %.0fs; \"prompt\" = first "
      "delivery within %.0fs, i.e. without the repair layer's help; churn%% "
      "= fraction of the population held down at any instant, each victim "
      "down %.0fs)\n\n",
      kRepairInterval, kPromptSeconds, kDownSeconds);
  bench::BenchReport report(
      "reliable_forwarding",
      "Hop-level acks with retransmission and representative failover keep "
      "delivery prompt under continuous churn, where fire-and-forget relays "
      "lose a measurable fraction of deliveries to the slow repair path");
  report.Note("prompt_frac = (subscriber,item) pairs first delivered within "
              "the prompt window / pairs owed; p99 over first-delivery "
              "latency of delivered pairs");

  util::TablePrinter table({"churn%", "mode", "prompt", "eventual", "p99 s",
                            "retx", "failover"});
  RunResult cell[2][2];
  for (int c = 0; c < 2; ++c) {
    const double churn = c == 0 ? 0.0 : 5.0;
    for (int m = 0; m < 2; ++m) {
      const bool reliable = m == 0;
      const RunResult r = Run(churn, reliable);
      cell[c][m] = r;
      table.AddRow({util::TablePrinter::Num(churn, 0),
                    reliable ? "reliable" : "fire-and-forget",
                    util::TablePrinter::Num(r.prompt_frac, 4),
                    util::TablePrinter::Num(r.eventual_frac, 4),
                    util::TablePrinter::Num(r.p99_latency, 2),
                    util::TablePrinter::Int(long(r.retransmits)),
                    util::TablePrinter::Int(long(r.failovers))});
      const std::string tag = std::string(reliable ? "reliable" : "legacy") +
                              "_churn" + std::to_string(int(churn));
      report.Measure("prompt_frac_" + tag, r.prompt_frac);
      report.Measure("eventual_frac_" + tag, r.eventual_frac);
      report.Measure("p99_latency_" + tag, r.p99_latency, "s");
      report.Measure("retransmits_" + tag, double(r.retransmits));
    }
  }
  table.Print();

  const RunResult& rel5 = cell[1][0];
  const RunResult& leg5 = cell[1][1];
  const double p99_ratio =
      rel5.p99_latency > 0 ? leg5.p99_latency / rel5.p99_latency : 0;
  report.Measure("prompt_frac_reliable_churn5", rel5.prompt_frac);
  report.Measure("prompt_gap_churn5", rel5.prompt_frac - leg5.prompt_frac);
  report.Measure("p99_ratio_churn5", p99_ratio);
  report.WriteFile();

  std::printf(
      "\nReading: under churn the legacy relay silently loses every hop "
      "whose representative died, and those items wait for a repair round "
      "(%.0fs period) — visible as a depressed prompt fraction and a p99 "
      "in the repair regime. The reliable relay retransmits through the "
      "outage and fails over to sibling representatives, so nearly every "
      "delivery stays in the multicast fast path.\n",
      kRepairInterval);

  const bool ok = rel5.prompt_frac >= 0.99 &&
                  leg5.prompt_frac <= rel5.prompt_frac - 0.005 &&
                  p99_ratio >= 2.0;
  if (!ok) {
    std::printf(
        "GATE FAILED: want reliable prompt>=0.99 (got %.4f), legacy at "
        "least 0.005 below it (got %.4f), p99 ratio>=2 (got %.2f)\n",
        rel5.prompt_frac, leg5.prompt_frac, p99_ratio);
  }
  return ok ? 0 : 1;
}
