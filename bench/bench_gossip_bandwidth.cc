// E14 — Gossip wire-format bandwidth: full snapshots (v1) vs digest/delta
// reconciliation (v2, PROTOCOLS.md "Gossip wire format v2").
//
// The paper's infrastructure leans on Astrolabe's claim that its gossip
// load stays small and constant per node. The v1 format broke that in
// spirit: every exchange shipped whole zone tables, so steady-state bytes
// per round grew with zone size even when nothing changed. v2 sends row
// digests first and ships only rows the peer provably lacks (full bodies
// for changed content, ~20-byte heartbeat refreshes otherwise), so the
// steady-state cost is digests + heartbeats, and full bodies are paid only
// for genuine churn.
//
// Grid: leaf zone size x churn rate x wire mode, each measured as
// steady-state gossip bytes per gossip round (one period, whole zone)
// after convergence. Churn cycles ~N% of the subscribers per period
// through kill/restart, so restarted members keep pulling full tables —
// the delta path's worst case.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace nw;

namespace {

constexpr double kPeriod = 1.0;
constexpr double kWarmupSeconds = 30;
constexpr double kMeasureSeconds = 60;

struct RunResult {
  double bytes_per_round = 0;
  double msgs_per_round = 0;
};

RunResult Run(std::size_t zone_size, double churn_pct,
              astrolabe::GossipWireMode mode) {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = zone_size - 1;  // + 1 publisher = one flat leaf zone
  cfg.num_publishers = 1;
  cfg.branching = zone_size;
  cfg.catalog_size = 4;
  cfg.subjects_per_subscriber = 2;
  cfg.gossip_period = kPeriod;
  cfg.subscriber.repair_interval = 0;  // isolate the gossip layer's traffic
  cfg.gossip_wire = mode;
  cfg.seed = 0xE14;
  newswire::NewswireSystem sys(cfg);
  sys.RunFor(kWarmupSeconds);

  // Churn engine: each period, kill `victims` live subscribers; each stays
  // down five periods, then restarts (and must re-pull every replica).
  const std::size_t victims =
      std::size_t(churn_pct / 100.0 * double(zone_size) + 0.5);
  util::DeterministicRng rng(cfg.seed ^ zone_size);
  auto& net = sys.deployment().net();
  std::deque<std::pair<double, sim::NodeId>> down;  // (restart time, node)
  const double t0 = sys.Now();
  if (victims > 0) {
    for (int k = 0; k < int(kMeasureSeconds); ++k) {
      sys.deployment().sim().At(t0 + k * kPeriod, [&] {
        while (!down.empty() && down.front().first <= sys.Now()) {
          net.Restart(down.front().second);
          down.pop_front();
        }
        for (std::size_t v = 0; v < victims; ++v) {
          const std::size_t i =
              std::size_t(rng.NextBelow(sys.subscriber_count()));
          const sim::NodeId id = sys.subscriber_agent(i).id();
          if (!net.IsAlive(id)) continue;
          net.Kill(id);
          down.emplace_back(sys.Now() + 5 * kPeriod, id);
        }
      });
    }
  }

  const auto before = net.StatsForTypePrefix("astro.gossip");
  sys.RunFor(kMeasureSeconds);
  const auto after = net.StatsForTypePrefix("astro.gossip");
  const double rounds = kMeasureSeconds / kPeriod;
  RunResult out;
  out.bytes_per_round = double(after.bytes - before.bytes) / rounds;
  out.msgs_per_round = double(after.messages - before.messages) / rounds;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E14: steady-state gossip bandwidth, full-snapshot (v1) vs "
      "digest/delta (v2) wire format\n"
      "(one flat leaf zone; %gs period; %.0fs measurement after "
      "convergence; churn = %%%% of members killed per period, down 5 "
      "periods)\n\n",
      kPeriod, kMeasureSeconds);
  bench::BenchReport report(
      "gossip_bandwidth",
      "Gossip keeps per-round load nearly constant: digest-first delta "
      "reconciliation pays O(zone) tiny digests plus O(churn) row bodies, "
      "where full snapshots pay O(zone) bodies every round");
  report.Note("bytes/round aggregated over the whole zone; delta mode "
              "ships full bodies only to members that restarted (empty "
              "digest) or fell behind a content change");

  util::TablePrinter table({"zone", "churn%", "full B/round", "delta B/round",
                            "ratio", "delta msgs/round"});
  double ratio_64_churn5 = 0;
  for (std::size_t zone : {8u, 16u, 32u, 64u}) {
    for (double churn : {0.0, 5.0}) {
      const RunResult full = Run(zone, churn, astrolabe::GossipWireMode::kFull);
      const RunResult delta =
          Run(zone, churn, astrolabe::GossipWireMode::kDelta);
      const double ratio = delta.bytes_per_round > 0
                               ? full.bytes_per_round / delta.bytes_per_round
                               : 0;
      if (zone == 64 && churn == 5.0) ratio_64_churn5 = ratio;
      table.AddRow({std::to_string(zone), util::TablePrinter::Num(churn, 0),
                    util::TablePrinter::Num(full.bytes_per_round, 0),
                    util::TablePrinter::Num(delta.bytes_per_round, 0),
                    util::TablePrinter::Num(ratio, 1),
                    util::TablePrinter::Num(delta.msgs_per_round, 0)});
      const std::string tag =
          "zone" + std::to_string(zone) + "_churn" +
          std::to_string(int(churn));
      report.Measure("full_bytes_per_round_" + tag, full.bytes_per_round, "B");
      report.Measure("delta_bytes_per_round_" + tag, delta.bytes_per_round,
                     "B");
      report.Measure("ratio_" + tag, ratio);
    }
  }
  table.Print();
  report.Measure("ratio_zone64_churn5", ratio_64_churn5);
  report.WriteFile();
  std::printf(
      "\nReading: full-mode bytes/round grow with the square of zone size "
      "(every member ships every row every round); delta-mode rounds cost "
      "digests plus heartbeat refreshes, so the gap widens with zone size "
      "and survives churn — restarted members pull full tables in both "
      "formats, but only delta stops paying once they catch up.\n");
  return ratio_64_churn5 >= 5.0 ? 0 : 1;
}
