#include "bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nw::bench {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendNum(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void AppendKeyStr(std::string& out, const char* key, const std::string& v) {
  out += '"';
  out += key;
  out += "\": \"";
  AppendEscaped(out, v);
  out += '"';
}

void AppendKeyNum(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\": ";
  AppendNum(out, v);
}

}  // namespace

BenchReport::BenchReport(std::string name, std::string claim)
    : name_(std::move(name)), claim_(std::move(claim)) {}

void BenchReport::Measure(const std::string& key, double value,
                          const std::string& unit) {
  measured_.push_back(Scalar{key, value, unit});
}

void BenchReport::Samples(const std::string& key,
                          const util::SampleStats& stats,
                          const std::string& unit) {
  samples_.push_back(Distribution{
      key, unit, stats.Count(), stats.Mean(), stats.Min(), stats.Max(),
      stats.StdDev(), stats.Percentile(50), stats.Percentile(90),
      stats.Percentile(99)});
}

void BenchReport::Note(const std::string& text) { notes_.push_back(text); }

std::string BenchReport::ToJson() const {
  std::string out = "{\n  ";
  AppendKeyStr(out, "bench", name_);
  out += ",\n  ";
  AppendKeyStr(out, "claim", claim_);
  out += ",\n  \"measured\": [";
  for (std::size_t i = 0; i < measured_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    AppendKeyStr(out, "key", measured_[i].key);
    out += ", ";
    AppendKeyNum(out, "value", measured_[i].value);
    if (!measured_[i].unit.empty()) {
      out += ", ";
      AppendKeyStr(out, "unit", measured_[i].unit);
    }
    out += '}';
  }
  out += measured_.empty() ? "]" : "\n  ]";
  out += ",\n  \"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Distribution& d = samples_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    AppendKeyStr(out, "key", d.key);
    if (!d.unit.empty()) {
      out += ", ";
      AppendKeyStr(out, "unit", d.unit);
    }
    out += ", ";
    AppendKeyNum(out, "count", double(d.count));
    out += ", ";
    AppendKeyNum(out, "mean", d.mean);
    out += ", ";
    AppendKeyNum(out, "min", d.min);
    out += ", ";
    AppendKeyNum(out, "max", d.max);
    out += ", ";
    AppendKeyNum(out, "stddev", d.stddev);
    out += ", ";
    AppendKeyNum(out, "p50", d.p50);
    out += ", ";
    AppendKeyNum(out, "p90", d.p90);
    out += ", ";
    AppendKeyNum(out, "p99", d.p99);
    out += '}';
  }
  out += samples_.empty() ? "]" : "\n  ]";
  out += ",\n  \"notes\": [";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    AppendEscaped(out, notes_[i]);
    out += '"';
  }
  out += notes_.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string BenchReport::OutputPath(const std::string& name) {
  std::string path;
  if (const char* dir = std::getenv("BENCH_JSON_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name + ".json";
  return path;
}

bool BenchReport::WriteFile() const {
  const std::string path = OutputPath(name_);
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  std::fclose(out);
  if (ok) std::printf("\n[bench json -> %s]\n", path.c_str());
  return ok;
}

}  // namespace nw::bench
