// E3 — End-to-end delivery latency vs system size (paper abstract/§9:
// "deliver news updates to hundreds of thousands of subscribers within
// tens of seconds of the moment of publishing").
//
// Subscribers are arranged in a uniform zone tree (branching 64, as §3
// suggests); replicas are warm-started (the subscription-convergence side
// of the claim is measured separately in E4) and 10 items are published.
// We report the delivery latency distribution and the tree depth.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "newswire/system.h"
#include "util/table_printer.h"

using namespace nw;

int main() {
  std::printf(
      "E3: delivery latency vs number of subscribers (branching 64, warm "
      "replicas, 40ms +-20%% links, 10 items x 2KB)\n\n");
  util::TablePrinter table({"subscribers", "depth", "p50_ms", "p99_ms",
                            "max_ms", "delivered%", "max_hops"});
  bench::BenchReport report(
      "delivery_latency",
      "Deliver news updates to hundreds of thousands of subscribers within "
      "tens of seconds of the moment of publishing (paper abstract/§9)");
  report.Note("branching 64, warm replicas, 40ms +-20% links, 10 items x 2KB");
  for (std::size_t n : {1000u, 4000u, 16000u, 64000u, 100000u}) {
    newswire::SystemConfig cfg;
    cfg.num_subscribers = n;
    cfg.num_publishers = 1;
    cfg.branching = 64;
    cfg.net.base_latency = 0.04;
    cfg.net.jitter_frac = 0.5;
    cfg.catalog_size = 1;
    cfg.subjects_per_subscriber = 1;
    cfg.warm_start = true;
    cfg.run_gossip = false;
    cfg.subscriber.repair_interval = 0;
    cfg.subscriber.cache.capacity = 16;  // keep memory flat at 100k nodes
    cfg.seed = 5;
    newswire::NewswireSystem sys(cfg);

    for (int k = 0; k < 10; ++k) {
      sys.deployment().sim().At(k * 0.5, [&sys] {
        sys.PublishArticle(0, sys.catalog()[0]);
      });
    }
    sys.RunFor(90);
    const auto& lat = sys.latencies();
    const double delivered =
        100.0 * double(sys.total_delivered()) /
        double(sys.subscriber_count() * 10);
    // Depth of the zone tree; each level is one relay hop.
    const std::size_t depth = sys.deployment().Depth();
    const int max_hops = int(depth);
    table.AddRow({util::TablePrinter::Int(long(n)),
                  util::TablePrinter::Int(long(depth)),
                  util::TablePrinter::Num(lat.Percentile(50) * 1e3, 0),
                  util::TablePrinter::Num(lat.Percentile(99) * 1e3, 0),
                  util::TablePrinter::Num(lat.Max() * 1e3, 0),
                  util::TablePrinter::Num(delivered, 2),
                  util::TablePrinter::Int(max_hops)});
    const std::string suffix = "_" + std::to_string(n);
    report.Samples("latency" + suffix, lat, "s");
    report.Measure("delivered_pct" + suffix, delivered, "%");
  }
  table.Print();
  report.WriteFile();
  std::printf(
      "\nReading: latency grows with tree depth (log_64 N), not with N "
      "itself — 100k subscribers are reached in well under the paper's "
      "tens-of-seconds budget once subscription state has converged. The "
      "gossip-side convergence that dominates the paper's 'tens of "
      "seconds' figure is measured in E4.\n");
  return 0;
}
