// Quickstart: the smallest complete NewsWire system.
//
// Builds a 32-node simulated deployment (31 subscribers + 1 publisher),
// subscribes three nodes to "tech.linux", publishes two stories, and
// shows who received what, when, and what it cost the publisher.
//
//   ./examples/quickstart
#include <cstdio>

#include "newswire/system.h"

using namespace nw;

int main() {
  // 1. Describe the system: one publisher, 31 subscribers, zone branching
  //    of 4, the paper's 1024-bit subscription Bloom filter.
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 31;
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.catalog_size = 8;  // harness assigns random subjects; we add our own
  cfg.seed = 2024;
  newswire::NewswireSystem sys(cfg);

  // 2. Hand-pick three subscribers for our subject, one of them with an
  //    SQL predicate over the item metadata (paper §8).
  sys.subscriber(2).Subscribe("tech.linux");
  sys.subscriber(11).Subscribe("tech.linux");
  sys.subscriber(29).Subscribe("tech.linux");
  sys.subscriber(29).SetPredicate("urgency <= 2");  // breaking news only

  for (std::size_t i : {2u, 11u, 29u}) {
    sys.subscriber(i).SetNewsHandler(
        [i](const newswire::NewsItem& item, double latency) {
          std::printf("  subscriber %2zu <- %-10s '%s' (%.0f ms after publish)\n",
                      i, item.Id().c_str(), item.headline.c_str(),
                      latency * 1e3);
        });
  }

  // 3. Let the epidemic propagate the new subscriptions up the zone tree.
  std::printf("gossiping subscriptions toward the root...\n");
  sys.RunFor(30);

  // 4. Publish: one routine story, one urgent bulletin.
  newswire::NewsItem routine;
  routine.subject = "tech.linux";
  routine.headline = "Kernel 2.4.18 released";
  routine.urgency = 5;
  sys.publisher(0).Publish(routine);

  newswire::NewsItem urgent;
  urgent.subject = "tech.linux";
  urgent.headline = "Critical remote hole, patch now";
  urgent.urgency = 1;
  sys.publisher(0).Publish(urgent);

  std::printf("published 2 items on 'tech.linux':\n");
  sys.RunFor(30);

  // 5. What did it cost the publisher?
  const auto& traffic = sys.PublisherTraffic(0);
  std::printf(
      "\npublisher egress: %llu messages, %.1f KB "
      "(subscriber 29 got only the urgent item - its predicate filtered "
      "the routine one)\n",
      static_cast<unsigned long long>(traffic.messages_sent),
      double(traffic.bytes_sent) / 1e3);
  return 0;
}
