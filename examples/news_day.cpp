// A compressed news day: the synthetic wire-service workload (diurnal
// rate, breaking-news bursts, follow-up revisions) flowing through a
// 128-subscriber NewsWire deployment with the urgency-first forwarding
// strategy. Shows the numbers a wire-service operator would watch:
// burst-vs-routine latency, revision fusion, and the diurnal curve.
//
//   ./examples/news_day
#include <cstdio>
#include <map>

#include "newswire/system.h"
#include "newswire/workload.h"

using namespace nw;

int main() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 126;
  cfg.num_publishers = 2;
  cfg.branching = 8;
  cfg.catalog_size = 12;
  cfg.subjects_per_subscriber = 4;
  cfg.multicast.queue_strategy = multicast::QueueStrategy::kUrgencyFirst;
  cfg.subscriber.repair_interval = 10.0;
  cfg.seed = 9;
  newswire::NewswireSystem sys(cfg);

  // Separate latency books for urgent (burst) vs routine items.
  util::SampleStats urgent_latency, routine_latency;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    sys.subscriber(i).AddNewsHandler(
        [&](const newswire::NewsItem& item, double latency) {
          (item.urgency <= 2 ? urgent_latency : routine_latency).Add(latency);
        });
  }
  sys.RunFor(20);

  // Two hours of a (compressed) news day: the diurnal period is squeezed
  // so the rate visibly swings within the run.
  newswire::WorkloadConfig wl;
  wl.duration = 7200;
  wl.base_items_per_hour = 90;
  wl.diurnal_amplitude = 0.8;
  wl.day_seconds = 7200;  // one "day" = the whole run
  wl.bursts_per_hour = 2.0;
  wl.burst_items = 6;
  wl.revision_prob = 0.3;
  wl.seed = 4242;
  newswire::NewsWorkload workload(sys, wl);
  workload.ScheduleAll();
  std::printf("scheduled: %zu routine items, %zu bursts (%zu items); "
              "revisions follow stochastically\n",
              workload.stats().routine_scheduled, workload.stats().bursts,
              workload.stats().burst_items);
  sys.RunFor(wl.duration + 120);
  std::printf("revisions published during the run: %zu\n",
              workload.stats().revisions_scheduled);

  // Published-rate histogram per 15-minute bucket (the diurnal curve).
  std::map<int, int> buckets;
  for (const auto& p : workload.published()) {
    buckets[int(p.at / 900.0)]++;
  }
  std::printf("\npublication rate by 15-min bucket (diurnal curve):\n");
  for (const auto& [bucket, count] : buckets) {
    std::printf("  %3d-%3d min  %3d  %s\n", bucket * 15, bucket * 15 + 15,
                count, std::string(std::size_t(count), '#').c_str());
  }

  std::printf("\nlatency: urgent p99 %.0f ms over %zu deliveries, "
              "routine p99 %.0f ms over %zu deliveries\n",
              urgent_latency.Percentile(99) * 1e3, urgent_latency.Count(),
              routine_latency.Percentile(99) * 1e3, routine_latency.Count());

  std::uint64_t fused = 0, stale = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    fused += sys.subscriber(i).cache().stats().superseded_dropped;
    stale += sys.subscriber(i).cache().stats().stale_revisions_rejected;
  }
  std::printf("revision management in subscriber caches: %llu superseded "
              "revisions fused away, %llu stale revisions rejected (§9)\n",
              static_cast<unsigned long long>(fused),
              static_cast<unsigned long long>(stale));
  return 0;
}
