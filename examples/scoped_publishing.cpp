// Scoped and targeted publishing (paper §8): a world-news wire with
// regional zones. A publisher inside Asia posts a local item only into
// /asia ("This for example allows the publisher to disseminate localized
// news items in Asia"), and a premium bulletin is steered by a forwarding
// predicate to premium subscribers only — the §8 "future feature".
//
//   ./examples/scoped_publishing
#include <cstdio>

#include "newswire/system.h"

using namespace nw;

int main() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 255;  // + 1 publisher = 4 even regions of 64
  cfg.num_publishers = 1;
  cfg.branching = 4;
  cfg.region_names = {"asia", "europe", "americas", "africa"};
  cfg.catalog_size = 1;  // one channel: "world.news"
  cfg.subjects_per_subscriber = 1;
  cfg.seed = 11;
  newswire::NewswireSystem sys(cfg);

  // Premium flag on every 5th subscriber, aggregated with MAX so zones
  // advertise whether premium customers live below them.
  sys.deployment().InstallFunctionEverywhere("premium",
                                             "SELECT MAX(premium) AS premium");
  std::size_t premium_total = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); i += 5) {
    sys.subscriber_agent(i).SetLocalAttr("premium", std::int64_t{1});
    ++premium_total;
  }
  sys.deployment().WarmStart();
  sys.RunFor(10);

  const astrolabe::ZonePath asia = astrolabe::ZonePath::Parse("/asia");
  std::printf("publisher lives at %s\n",
              sys.publisher_agent(0).path().ToString().c_str());

  // 1. A world item to everyone.
  const std::string world_id = sys.PublishArticle(0, sys.catalog()[0]);
  // 2. A local item scoped to /asia.
  const std::string asia_id =
      sys.PublishArticle(0, sys.catalog()[0], asia);
  // 3. A premium bulletin, root-scoped but predicate-targeted.
  newswire::NewsItem premium_item;
  premium_item.subject = sys.catalog()[0];
  premium_item.headline = "premium market flash";
  premium_item.forward_predicate = "premium = 1";
  sys.publisher(0).Publish(premium_item);
  const std::string premium_id = "pub0#3";
  sys.RunFor(30);

  std::size_t world_got = 0, asia_got = 0, asia_outside = 0, premium_got = 0,
              premium_leak = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    const auto& sub = sys.subscriber(i);
    const bool in_asia = asia.IsPrefixOf(sys.subscriber_agent(i).path());
    const bool is_premium = (i % 5 == 0);
    if (sub.cache().Contains(world_id)) ++world_got;
    if (sub.cache().Contains(asia_id)) {
      if (in_asia) {
        ++asia_got;
      } else {
        ++asia_outside;
      }
    }
    if (sub.cache().Contains(premium_id)) {
      if (is_premium) {
        ++premium_got;
      } else {
        ++premium_leak;
      }
    }
  }

  std::printf("\nworld item   : delivered to %zu/%zu subscribers\n",
              world_got, sys.subscriber_count());
  std::printf("asia item    : delivered to %zu subscribers inside /asia, "
              "%zu leaked outside\n",
              asia_got, asia_outside);
  std::printf("premium item : delivered to %zu/%zu premium subscribers, "
              "%zu leaked to non-premium\n",
              premium_got, premium_total, premium_leak);
  std::printf(
      "\nThe forwarding components pruned whole regions for the scoped "
      "item and whole premium-free zones for the targeted one — no "
      "per-recipient work at the publisher (paper §8).\n");
  return 0;
}
