// Astrolabe as an infrastructure-management service (paper §4): before it
// carries any news, the same substrate monitors the machines it runs on.
// Agents export load / bandwidth / free-disk attributes; signed
// aggregation functions compute fleet-wide summaries and "real-time
// guidance concerning which elements are in the min/max category, and
// hence represent targets for new operations".
//
//   ./examples/astrolabe_monitoring
#include <cstdio>

#include "astrolabe/deployment.h"
#include "util/rng.h"

using namespace nw;
using astrolabe::AttrValue;
using astrolabe::Deployment;
using astrolabe::DeploymentConfig;

namespace {

void PrintFleetSummary(Deployment& dep, std::size_t observer) {
  astrolabe::Row summary = dep.agent(observer).ZoneSummary(0);
  auto num = [&](const char* attr) {
    auto it = summary.find(attr);
    return it == summary.end() ? 0.0 : it->second.AsDouble();
  };
  std::printf(
      "  fleet summary (as seen by %s): machines=%lld avg_load=%.2f "
      "max_load=%.2f min_disk_gb=%.0f total_bw_mbps=%.0f\n",
      dep.agent(observer).path().ToString().c_str(),
      static_cast<long long>(num("nmembers")), num("load"),
      num("max_load"), num("min_disk"), num("total_bw"));
  if (auto it = summary.find("idle_targets"); it != summary.end()) {
    std::printf("  least-loaded targets for new work:");
    for (const AttrValue& v : it->second.AsList()) {
      std::printf(" node%lld", static_cast<long long>(v.AsInt()));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  DeploymentConfig cfg;
  cfg.num_agents = 64;
  cfg.branching = 4;
  cfg.gossip_period = 2.0;
  cfg.seed = 3;
  Deployment dep(cfg);

  // Management aggregations, distributed as signed mobile code (§3/§4).
  // Note the self-composing shape: each output attribute re-aggregates
  // itself one level up (MAX of maxes, MIN of mins, SUM of sums), which is
  // what makes the computation correct at every depth of the tree.
  dep.InstallFunctionEverywhere(
      "mgmt.load",
      "SELECT MAX(max_load) AS max_load, "
      "MIN(min_disk) AS min_disk, SUM(total_bw) AS total_bw");
  dep.InstallFunctionEverywhere(
      "mgmt.targets", "SELECT TOP(3, contacts ORDER BY load ASC) AS idle_targets");

  // Each machine exports its vital signs.
  util::DeterministicRng rng(42);
  for (std::size_t i = 0; i < dep.size(); ++i) {
    const double load = rng.NextDouble();
    dep.agent(i).SetLocalAttr("load", load);      // drives the core election
    dep.agent(i).SetLocalAttr("max_load", load);  // MAX-composes upward
    dep.agent(i).SetLocalAttr("min_disk", double(20 + rng.NextBelow(200)));
    dep.agent(i).SetLocalAttr("total_bw", double(10 + rng.NextBelow(90)));
  }
  dep.StartAll();

  std::printf("gossiping management state across 64 machines...\n");
  dep.RunFor(60);
  PrintFleetSummary(dep, 0);

  // A hot spot develops on one machine; within a few gossip rounds every
  // zone sees the new max and steers new work elsewhere.
  std::printf("\nmachine 17 saturates (load -> 0.99)...\n");
  dep.agent(17).SetLocalAttr("load", 0.99);
  dep.agent(17).SetLocalAttr("max_load", 0.99);
  dep.RunFor(30);
  PrintFleetSummary(dep, 40);  // observed from a different zone

  // Machines fail; membership and aggregates adjust without any operator
  // action (§4: "guaranteed eventual consistency is essential to the
  // operation of a critical infrastructure").
  std::printf("\nmachines 5, 6, 7 crash...\n");
  dep.net().Kill(dep.agent(5).id());
  dep.net().Kill(dep.agent(6).id());
  dep.net().Kill(dep.agent(7).id());
  dep.RunFor(60);
  PrintFleetSummary(dep, 0);

  std::printf(
      "\nThe same zone tree, gossip, and aggregation machinery later routes "
      "news items — the management plane and the delivery plane are one "
      "system (paper §4).\n");
  return 0;
}
