// The paper's first planned configuration (§10): "targeted towards the
// publishing of technical news articles by sites such as Slashdot.org,
// Wired, The Register, SilliconValley.com, News.com".
//
// Five tech publishers — two native NewsWire publishers and three legacy
// pull-model sites bridged by RSS feed agents — serve 500 subscribers
// with Zipf-skewed interests. Prints the delivery report the operator of
// such a network would look at.
//
//   ./examples/tech_news_network
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "baseline/pull.h"
#include "newswire/feed_agent.h"
#include "newswire/system.h"
#include "util/rng.h"

using namespace nw;

namespace {

const char* kSections[] = {"tech.linux",    "tech.security", "tech.hardware",
                           "tech.internet", "tech.science",  "tech.games"};

}  // namespace

int main() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 500;
  cfg.num_publishers = 5;
  cfg.branching = 8;
  cfg.catalog_size = 6;
  cfg.subjects_per_subscriber = 2;
  cfg.zipf_skew = 1.0;  // slashdot-style popularity skew
  cfg.verify_publishers = true;
  cfg.subscriber.repair_interval = 10.0;
  cfg.seed = 1986;
  newswire::NewswireSystem sys(cfg);

  // Rename the harness catalog onto real sections for the printout.
  std::map<std::string, std::string> section_of;
  for (std::size_t s = 0; s < 6; ++s) {
    section_of[sys.catalog()[s]] = kSections[s];
  }

  // Publishers 0-1 are native ("slashdot", "theregister" in spirit);
  // publishers 2-4 republish legacy pull-model sites through feed agents.
  std::vector<std::unique_ptr<baseline::PullServer>> legacy_sites;
  std::vector<std::unique_ptr<newswire::FeedAgent>> feeds;
  for (std::size_t j = 2; j < 5; ++j) {
    legacy_sites.push_back(std::make_unique<baseline::PullServer>(25));
    sys.deployment().net().AddNode(legacy_sites.back().get());
    newswire::FeedAgentConfig fc;
    fc.legacy_server = legacy_sites.back()->id();
    fc.poll_interval = 30.0;  // the bridge still pulls; subscribers don't
    feeds.push_back(std::make_unique<newswire::FeedAgent>(
        sys.publisher_agent(j), sys.publisher(j), fc));
    feeds.back()->Start();
  }

  std::printf("converging 500-subscriber tech-news network (5 publishers, "
              "3 of them legacy sites behind feed agents)...\n");
  sys.RunFor(40);

  // Half an hour of simulated news flow.
  util::DeterministicRng rng(7);
  int native_published = 0;
  for (int minute = 0; minute < 30; ++minute) {
    sys.deployment().sim().At(sys.Now() + minute * 60.0, [&] {
      // Native publishers post directly.
      for (std::size_t j = 0; j < 2; ++j) {
        if (rng.NextBool(0.35)) {
          newswire::NewsItem item;
          item.subject = sys.catalog()[rng.NextZipf(6, 1.0)];
          item.headline = "story-" + std::to_string(native_published++);
          item.urgency = 1 + std::int64_t(rng.NextBelow(8));
          sys.publisher(j).Publish(item);
        }
      }
      // Legacy sites post to their own front pages; feed agents bridge.
      for (auto& site : legacy_sites) {
        if (rng.NextBool(0.25)) {
          site->AddArticle(1500 + rng.NextBelow(2000), 96,
                           sys.catalog()[rng.NextZipf(6, 1.0)]);
        }
      }
    });
  }
  sys.RunFor(1900);

  // ---- operator's report ----
  std::printf("\n== half a simulated hour of tech news ==\n");
  for (std::size_t j = 0; j < 5; ++j) {
    const auto& pub = sys.publisher(j);
    const auto& traffic = sys.PublisherTraffic(j);
    std::string suffix;
    if (j >= 2) {
      suffix = " (" + std::to_string(feeds[j - 2]->stats().polls) +
               " legacy polls)";
    }
    std::printf("  %-6s (%s): %3llu items published, egress (incl. gossip) %6.1f KB%s\n",
                pub.name().c_str(), j < 2 ? "native" : "feed-agent bridge",
                static_cast<unsigned long long>(pub.stats().published),
                double(traffic.bytes_sent) / 1e3, suffix.c_str());
  }
  std::printf("\n  section subscriptions and deliveries:\n");
  for (std::size_t s = 0; s < 6; ++s) {
    std::printf("    %-14s %3zu subscribers\n", kSections[s],
                sys.ExpectedRecipients(sys.catalog()[s]));
  }
  const auto& lat = sys.latencies();
  std::printf(
      "\n  deliveries: %llu total | latency p50 %.0f ms, p99 %.0f ms, max "
      "%.2f s\n",
      static_cast<unsigned long long>(sys.total_delivered()),
      lat.Percentile(50) * 1e3, lat.Percentile(99) * 1e3, lat.Max());
  std::uint64_t repaired = 0, fp = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    repaired += sys.subscriber(i).stats().repaired;
  }
  for (std::size_t i = 0; i < sys.node_count(); ++i) {
    fp += sys.pubsub_at(i).stats().false_positives;
  }
  std::printf("  anti-entropy repairs: %llu, Bloom false-positive "
              "deliveries: %llu\n",
              static_cast<unsigned long long>(repaired),
              static_cast<unsigned long long>(fp));
  std::printf(
      "\nCompare §1 of the paper: the same period served by polling would "
      "have cost each subscriber a front-page download per poll — here "
      "only the three bridge agents poll, once each 30 s, and everyone "
      "else receives pushed items within ~a hundred milliseconds.\n");
  return 0;
}
