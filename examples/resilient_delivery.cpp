// Resilient delivery: what the paper's robustness story looks like from
// the operator's seat (§1 "guarantees delivery even in the face of
// publisher overload or denial of service"; §9 cache-based end-to-end
// reliability and joining-node state transfer).
//
// Timeline: a 200-subscriber network streams bulletins; at t+15s a fifth
// of the machines crash (including forwarding representatives); gossip
// re-elects representatives, anti-entropy repairs the holes, and a
// crashed node restarts and catches up via state transfer.
//
//   ./examples/resilient_delivery
#include <cstdio>
#include <vector>

#include "newswire/system.h"
#include "util/rng.h"

using namespace nw;

namespace {

double Completeness(newswire::NewswireSystem& sys,
                    const std::vector<std::string>& ids) {
  std::size_t got = 0, expected = 0;
  for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
    if (!sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
      continue;
    }
    for (const auto& id : ids) {
      ++expected;
      if (sys.subscriber(i).cache().Contains(id)) ++got;
    }
  }
  return expected ? 100.0 * double(got) / double(expected) : 0.0;
}

}  // namespace

int main() {
  newswire::SystemConfig cfg;
  cfg.num_subscribers = 200;
  cfg.branching = 8;
  cfg.catalog_size = 1;  // a single "breaking.news" channel
  cfg.subjects_per_subscriber = 1;
  cfg.multicast.redundancy = 1;  // worst case: no redundant forwarding
  cfg.subscriber.repair_interval = 5.0;
  cfg.subscriber.repair_window = 600.0;
  cfg.seed = 404;
  newswire::NewswireSystem sys(cfg);
  std::printf("t=%5.1fs  converging 200-subscriber network...\n", sys.Now());
  sys.RunFor(20);

  // Stream 20 bulletins over 20 seconds.
  std::vector<std::string> ids;
  for (int k = 0; k < 20; ++k) {
    sys.deployment().sim().At(sys.Now() + k, [&sys, &ids] {
      const std::string id = sys.PublishArticle(0, sys.catalog()[0]);
      if (!id.empty()) ids.push_back(id);
    });
  }

  // Crash 40 machines mid-stream.
  util::DeterministicRng rng(1);
  std::vector<std::size_t> victims;
  sys.deployment().sim().At(sys.Now() + 15, [&] {
    while (victims.size() < 40) {
      const std::size_t i = std::size_t(rng.NextBelow(sys.subscriber_count()));
      if (sys.deployment().net().IsAlive(sys.subscriber_agent(i).id())) {
        victims.push_back(i);
        sys.deployment().net().Kill(sys.subscriber_agent(i).id());
      }
    }
    std::printf("t=%5.1fs  !! 40 machines crashed (forwarders included)\n",
                sys.Now());
  });

  sys.RunFor(22);
  std::printf("t=%5.1fs  burst done: completeness among survivors %.1f%%\n",
              sys.Now(), Completeness(sys, ids));
  for (double wait : {15.0, 30.0, 60.0}) {
    sys.RunFor(wait);
    std::uint64_t repaired = 0;
    for (std::size_t i = 0; i < sys.subscriber_count(); ++i) {
      repaired += sys.subscriber(i).stats().repaired;
    }
    std::printf(
        "t=%5.1fs  anti-entropy at work: completeness %.1f%% "
        "(%llu items repaired so far)\n",
        sys.Now(), Completeness(sys, ids),
        static_cast<unsigned long long>(repaired));
  }

  // One victim reboots and catches up.
  const std::size_t reborn = victims.front();
  sys.deployment().net().Restart(sys.subscriber_agent(reborn).id());
  std::printf("t=%5.1fs  subscriber %zu restarts with an empty cache...\n",
              sys.Now(), reborn);
  sys.RunFor(1);  // ask before the periodic anti-entropy gets there first
  std::size_t donor = (reborn + 1) % sys.subscriber_count();
  while (!sys.deployment().net().IsAlive(sys.subscriber_agent(donor).id())) {
    donor = (donor + 1) % sys.subscriber_count();
  }
  sys.subscriber(reborn).RequestStateTransfer(sys.subscriber_agent(donor).id());
  sys.RunFor(5);
  std::printf(
      "t=%5.1fs  state transfer from subscriber %zu: cache now holds %zu "
      "items (%llu via transfer)\n",
      sys.Now(), donor, sys.subscriber(reborn).cache().size(),
      static_cast<unsigned long long>(
          sys.subscriber(reborn).stats().state_transfer));

  std::printf(
      "\nNo central server, no retransmission from the publisher: the "
      "overlay healed through re-elected representatives and peer caches "
      "(paper §9).\n");
  return 0;
}
